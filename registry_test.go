package strongdecomp

import (
	"context"
	"errors"
	"testing"
)

func TestAlgorithmsListsAllConstructions(t *testing.T) {
	got := make(map[string]bool)
	for _, name := range Algorithms() {
		got[name] = true
	}
	for _, want := range []string{
		"linial-saks", "rozhon-ghaffari", "mpx", "sequential",
		"chang-ghaffari", "chang-ghaffari-improved",
	} {
		if !got[want] {
			t.Fatalf("registry missing %q: %v", want, Algorithms())
		}
	}
}

func TestLookupEveryRegisteredConstruction(t *testing.T) {
	g := GridGraph(8, 8)
	for _, name := range Algorithms() {
		d, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if d.Info().Name != name {
			t.Fatalf("Lookup(%q) reports name %q", name, d.Info().Name)
		}
		dec, err := d.Decompose(context.Background(), g, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := VerifyDecomposition(g, dec, -1, false); err != nil {
			t.Fatalf("%s produced invalid decomposition: %v", name, err)
		}
	}
}

func TestLookupUnknownName(t *testing.T) {
	if _, err := Lookup("no-such-construction"); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Fatalf("want ErrUnknownAlgorithm, got %v", err)
	}
}

func TestRegisterDuplicateRejected(t *testing.T) {
	factory := func() Decomposer {
		return DecomposerFuncs{Meta: AlgorithmInfo{Name: "test-dup"}}
	}
	if err := Register("test-dup", factory); err != nil {
		t.Fatal(err)
	}
	defer Unregister("test-dup")
	if err := Register("test-dup", factory); !errors.Is(err, ErrDuplicateAlgorithm) {
		t.Fatalf("want ErrDuplicateAlgorithm, got %v", err)
	}
}

func TestRegisterInvalidRejected(t *testing.T) {
	if err := Register("", nil); err == nil {
		t.Fatal("empty registration accepted")
	}
	err := Register("test-misnamed", func() Decomposer {
		return DecomposerFuncs{Meta: AlgorithmInfo{Name: "other"}}
	})
	if err == nil {
		Unregister("test-misnamed")
		t.Fatal("mismatched factory name accepted")
	}
}

// TestRegisteredConstructionReachableFromFacade registers a throwaway
// construction and drives it through the classic facade entry points — the
// drop-in extension path the registry exists for.
func TestRegisteredConstructionReachableFromFacade(t *testing.T) {
	err := Register("test-singleton", func() Decomposer {
		return DecomposerFuncs{
			Meta: AlgorithmInfo{Name: "test-singleton", Model: "deterministic", Diameter: "strong"},
			DecomposeFunc: func(_ context.Context, g *Graph, _ RunOptions) (*Decomposition, error) {
				d := &Decomposition{Assign: make([]int, g.N()), Color: make([]int, g.N()), K: g.N(), Colors: 1}
				for v := range d.Assign {
					d.Assign[v] = v
				}
				return d, nil
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer Unregister("test-singleton")

	g := PathGraph(5)
	d, err := Decompose(g, WithAlgorithmName("test-singleton"))
	if err != nil {
		t.Fatal(err)
	}
	if d.K != 5 {
		t.Fatalf("singleton decomposition has %d clusters, want 5", d.K)
	}
	// A construction without a Carve side reports a useful error.
	if _, err := BallCarve(g, 0.5, WithAlgorithmName("test-singleton")); err == nil {
		t.Fatal("Carve on decompose-only construction succeeded")
	}
}

func TestAlgorithmInfosOrdered(t *testing.T) {
	infos := AlgorithmInfos()
	if len(infos) < 6 {
		t.Fatalf("want >= 6 infos, got %d", len(infos))
	}
	for i := 1; i < len(infos); i++ {
		if infos[i].Order < infos[i-1].Order {
			t.Fatalf("infos out of order at %d: %+v", i, infos)
		}
	}
}
