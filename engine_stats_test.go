package strongdecomp_test

import (
	"context"
	"testing"

	"strongdecomp"
)

// TestEngineStatsSnapshot pins the Stats() observability contract the
// serving layer's /metrics endpoint depends on: identity fields, run and
// batch counts, and the component-merge counter that distinguishes
// single-component runs from stitched multi-component ones.
func TestEngineStatsSnapshot(t *testing.T) {
	e := strongdecomp.NewEngine(
		strongdecomp.WithEngineAlgorithm("sequential"),
		strongdecomp.WithWorkers(3),
	)

	s := e.Stats()
	if s.Algorithm != "sequential" || s.Workers != 3 {
		t.Fatalf("identity fields = (%q, %d), want (sequential, 3)", s.Algorithm, s.Workers)
	}
	if s.Runs != 0 || s.Batches != 0 || s.ComponentMerges != 0 || s.InFlight != 0 {
		t.Fatalf("fresh engine has nonzero counters: %+v", s)
	}

	ctx := context.Background()
	connected := strongdecomp.PathGraph(16)
	if _, err := e.Decompose(ctx, connected, nil); err != nil {
		t.Fatal(err)
	}
	s = e.Stats()
	if s.Runs != 1 || s.ComponentMerges != 0 {
		t.Fatalf("after connected run: Runs=%d Merges=%d, want 1, 0", s.Runs, s.ComponentMerges)
	}

	// Three components → three unit runs and one merge pass.
	split, err := strongdecomp.NewGraph(9, [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {6, 7}, {7, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Decompose(ctx, split, nil); err != nil {
		t.Fatal(err)
	}
	s = e.Stats()
	if s.Runs != 4 || s.ComponentMerges != 1 {
		t.Fatalf("after split run: Runs=%d Merges=%d, want 4, 1", s.Runs, s.ComponentMerges)
	}

	if _, err := e.DecomposeBatch(ctx, []*strongdecomp.Graph{connected, connected}, nil); err != nil {
		t.Fatal(err)
	}
	s = e.Stats()
	if s.Batches != 1 || s.Runs != 6 {
		t.Fatalf("after batch: Batches=%d Runs=%d, want 1, 6", s.Batches, s.Runs)
	}
	if s.InFlight != 0 {
		t.Fatalf("idle engine reports InFlight=%d", s.InFlight)
	}

	c := s.Counters()
	for _, key := range []string{"workers", "runs", "batches", "component_merges", "in_flight", "max_parallel"} {
		if _, ok := c[key]; !ok {
			t.Errorf("Counters() missing %q", key)
		}
	}
	if c["runs"] != s.Runs || c["workers"] != 3 {
		t.Fatalf("Counters() disagrees with snapshot: %v vs %+v", c, s)
	}
}

// TestEngineStatsCarveMerge covers the carving path's merge counter.
func TestEngineStatsCarveMerge(t *testing.T) {
	e := strongdecomp.NewEngine(strongdecomp.WithEngineAlgorithm("sequential"))
	split, err := strongdecomp.NewGraph(6, [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Carve(context.Background(), split, 0.5, nil); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.ComponentMerges != 1 || s.Runs != 2 {
		t.Fatalf("Runs=%d Merges=%d, want 2, 1", s.Runs, s.ComponentMerges)
	}
}
