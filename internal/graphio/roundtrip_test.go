package graphio

import (
	"bytes"
	"fmt"
	"testing"

	"strongdecomp/internal/graph"
)

// generatorCorpus instantiates every synthetic family in
// internal/graph/gen.go at small sizes (including one disconnected and one
// subdivided graph, which exercise isolated-structure and degree-2 paths).
func generatorCorpus() map[string]*graph.Graph {
	const seed = 42
	return map[string]*graph.Graph{
		"path":                graph.Path(9),
		"cycle":               graph.Cycle(12),
		"complete":            graph.Complete(6),
		"star":                graph.Star(7),
		"grid":                graph.Grid(3, 4),
		"torus":               graph.Torus(4, 4),
		"hypercube":           graph.Hypercube(3),
		"binary-tree":         graph.BinaryTree(10),
		"random-tree":         graph.RandomTree(16, seed),
		"caterpillar":         graph.Caterpillar(5, 3),
		"lollipop":            graph.Lollipop(5, 4),
		"gnp":                 graph.Gnp(24, 0.2, seed),
		"connected-gnp":       graph.ConnectedGnp(24, 0.15, seed),
		"regularish":          graph.RandomRegularish(20, 4, seed),
		"subdivided":          graph.Subdivide(graph.Cycle(5), 3),
		"subdivided-expander": graph.SubdividedExpander(6, 3, 4, seed),
		"cluster-graph":       graph.ClusterGraph(3, 6, 0.5, seed),
		"disjoint-union":      graph.DisjointUnion(graph.Path(3), graph.Cycle(5)),
		"single-node":         graph.Path(1),
		"empty":               graph.Path(0),
	}
}

// TestRoundTripAllGeneratorsAllFormats is the round-trip property test:
// every generator family survives a write/read cycle through every format
// with isomorphic (in fact identical) adjacency and an unchanged content
// hash.
func TestRoundTripAllGeneratorsAllFormats(t *testing.T) {
	formats := []Format{FormatEdgeList, FormatMETIS, FormatJSON, FormatCSR}
	for name, g := range generatorCorpus() {
		for _, f := range formats {
			t.Run(fmt.Sprintf("%s/%v", name, f), func(t *testing.T) {
				var buf bytes.Buffer
				if err := Write(&buf, g, f); err != nil {
					t.Fatalf("write: %v", err)
				}
				got, err := Read(bytes.NewReader(buf.Bytes()), f)
				if err != nil {
					t.Fatalf("read: %v", err)
				}
				assertSameGraph(t, g, got)
				if Hash(g) != Hash(got) {
					t.Error("content hash changed across round trip")
				}
			})
		}
	}
}

// assertSameGraph demands identical node count and adjacency. Node ids are
// preserved by every format, so identity — not just isomorphism — is the
// contract.
func assertSameGraph(t *testing.T, want, got *graph.Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("got n=%d m=%d, want n=%d m=%d", got.N(), got.M(), want.N(), want.M())
	}
	for v := 0; v < want.N(); v++ {
		a, b := want.Neighbors(v), got.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("node %d: degree %d, want %d", v, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d: neighbor[%d] = %d, want %d", v, i, b[i], a[i])
			}
		}
	}
}
