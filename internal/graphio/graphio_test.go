package graphio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"strongdecomp/internal/graph"
)

func mustGraph(t *testing.T, n int, edges [][2]int) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDetectFormat(t *testing.T) {
	cases := map[string]Format{
		"g.el": FormatEdgeList, "g.edges": FormatEdgeList,
		"g.edgelist": FormatEdgeList, "g.txt": FormatEdgeList,
		"g.metis": FormatMETIS, "g.graph": FormatMETIS,
		"g.json": FormatJSON, "G.JSON": FormatJSON,
	}
	for path, want := range cases {
		got, err := DetectFormat(path)
		if err != nil || got != want {
			t.Errorf("DetectFormat(%q) = %v, %v; want %v", path, got, err, want)
		}
	}
	if _, err := DetectFormat("g.bin"); err == nil {
		t.Error("DetectFormat accepted unknown extension")
	}
}

func TestParseFormat(t *testing.T) {
	for name, want := range map[string]Format{
		"edgelist": FormatEdgeList, "METIS": FormatMETIS, "json": FormatJSON,
	} {
		got, err := ParseFormat(name)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseFormat("hdf5"); err == nil {
		t.Error("ParseFormat accepted unknown name")
	}
}

func TestReadEdgeList(t *testing.T) {
	in := "# a comment\n% another\n\n0 1\n2 1\n1   2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("got n=%d m=%d, want 3, 2", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatal("missing edges after parse")
	}
}

func TestReadEdgeListDirective(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("# n 5\n0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 || g.M() != 1 {
		t.Fatalf("got n=%d m=%d, want 5, 1", g.N(), g.M())
	}
	if _, err := ReadEdgeList(strings.NewReader("# n 2\n0 4\n")); err == nil {
		t.Error("directive smaller than max endpoint must error")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for name, in := range map[string]string{
		"three fields":  "0 1 7\n",
		"one field":     "3\n",
		"non-numeric":   "a b\n",
		"negative":      "-1 2\n",
		"self loop":     "3 3\n",
		"huge node":     "0 999999999\n",
		"bad directive": "# n x\n0 1\n",
	} {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error, got none", name)
		}
	}
}

func TestReadMETIS(t *testing.T) {
	// Path 0-1-2 plus isolated node 3.
	in := "% comment\n4 2\n2\n1 3\n2\n\n"
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 2 {
		t.Fatalf("got n=%d m=%d, want 4, 2", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.Degree(3) != 0 {
		t.Fatal("wrong adjacency after parse")
	}
}

func TestReadMETISErrors(t *testing.T) {
	for name, in := range map[string]string{
		"empty":             "",
		"bad header":        "x y\n",
		"one header field":  "4\n",
		"weighted":          "2 1 011\n2\n1\n",
		"missing lines":     "3 2\n2\n",
		"neighbor range":    "2 1\n3\n1\n",
		"neighbor zero":     "2 1\n0\n1\n",
		"self loop":         "2 1\n1\n2\n",
		"edge count high":   "3 5\n2\n1 3\n2\n",
		"edge count low":    "3 1\n2\n1 3\n2\n",
		"asymmetric":        "3 2\n2\n1\n\n",
		"compensating asym": "4 1\n2\n\n\n3\n", // 0→1 and 3→2: entry count matches 2m but edges don't
		"repeated neighbor": "3 1\n2 2\n\n\n",  // 0 lists 1 twice, 1 never lists 0
		"huge node count":   "99999999999 0\n",
		"huge edge count":   "2 200000000\n2\n1\n", // m impossible on n nodes; must fail fast, no prealloc
		"negative edges":    "2 -1\n\n\n",
		"non-numeric entry": "2 1\n2 q\n1\n",
	} {
		if _, err := ReadMETIS(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error, got none", name)
		}
	}
}

func TestReadJSON(t *testing.T) {
	g, err := ReadJSON(strings.NewReader(`{"n": 3, "edges": [[0,1],[1,2]]}`))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("got n=%d m=%d, want 3, 2", g.N(), g.M())
	}
	for name, in := range map[string]string{
		"garbage":      "{",
		"negative n":   `{"n": -1}`,
		"out of range": `{"n": 2, "edges": [[0,5]]}`,
		"self loop":    `{"n": 2, "edges": [[1,1]]}`,
		"triple":       `{"n": 3, "edges": [[0,1,2]]}`,
		"huge n":       `{"n": 99999999999}`,
	} {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error, got none", name)
		}
	}
}

func TestHashCanonical(t *testing.T) {
	a := mustGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	// Same graph from shuffled, duplicated, reversed edges.
	b := mustGraph(t, 4, [][2]int{{3, 2}, {1, 0}, {2, 1}, {0, 1}})
	if Hash(a) != Hash(b) {
		t.Error("hash differs across edge orderings of the same graph")
	}
	c := mustGraph(t, 4, [][2]int{{0, 1}, {1, 2}})
	if Hash(a) == Hash(c) {
		t.Error("hash collides across different edge sets")
	}
	d := mustGraph(t, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if Hash(a) == Hash(d) {
		t.Error("hash ignores node count")
	}
}

func TestHashFormatIndependent(t *testing.T) {
	g := graph.Torus(4, 5)
	want := Hash(g)
	for _, f := range []Format{FormatEdgeList, FormatMETIS, FormatJSON} {
		var buf bytes.Buffer
		if err := Write(&buf, g, f); err != nil {
			t.Fatalf("%v: write: %v", f, err)
		}
		got, err := Read(&buf, f)
		if err != nil {
			t.Fatalf("%v: read: %v", f, err)
		}
		if Hash(got) != want {
			t.Errorf("%v: hash changed across a serialization round trip", f)
		}
	}
}

func TestLoadSave(t *testing.T) {
	g := graph.Grid(3, 4)
	dir := t.TempDir()
	for _, ext := range []string{".el", ".metis", ".json"} {
		path := filepath.Join(dir, "g"+ext)
		if err := Save(path, g); err != nil {
			t.Fatalf("Save(%s): %v", ext, err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatalf("Load(%s): %v", ext, err)
		}
		if Hash(got) != Hash(g) {
			t.Errorf("%s: loaded graph differs from saved graph", ext)
		}
	}
	if err := Save(filepath.Join(dir, "g.bin"), g); err == nil {
		t.Error("Save accepted unknown extension")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("Load of missing file must error")
	}
}
