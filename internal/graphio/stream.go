package graphio

// Out-of-core CSR construction: BuildCSRStream turns an arbitrary edge
// stream into a binary .csr snapshot without ever materializing the
// graph's adjacency in RAM. Arcs (both directions of each undirected
// edge) are packed into uint64 words and buffered up to a configurable
// cap; full buffers are sorted and spilled as temp-file runs; a final
// k-way merge with adjacent-arc dedup streams the targets payload to a
// temp file while counting degrees, and the snapshot (header, offsets,
// targets, SHA-256 footer) is then assembled with one sequential copy
// through the hash and an atomic rename — the same crash-safe discipline
// as SaveCSR. Peak memory is the arc buffer plus one O(n) degree array;
// edge volume is bounded only by disk.
//
// The output is defined to be byte-identical to the in-memory path
// (graph.Builder + SaveCSR) on the same edge multiset: duplicate edges
// produce duplicate arc pairs in both directions, so adjacent dedup of
// the sorted arc stream is exactly the Builder's compaction, and sorted
// arcs yield sorted CSR rows.

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
)

// defaultStreamArcs is the default in-memory arc-buffer cap (1<<21 arcs
// = 16 MiB); each undirected edge costs two arcs.
const defaultStreamArcs = 1 << 21

// minStreamArcs keeps pathological caps from spilling a run per arc; it
// is deliberately tiny so tests (and fuzzing) can force many-run merges
// on small inputs.
const minStreamArcs = 16

// errStreamPoisoned matches Builder's use-after-Build latch.
var errStreamPoisoned = errors.New("graphio: stream Build already called")

// StreamOption configures a StreamBuilder.
type StreamOption func(*StreamBuilder)

// WithStreamMemory caps the in-memory arc buffer (2 arcs per edge;
// values below a small floor are raised to it). Lower caps spill more,
// smaller runs.
func WithStreamMemory(arcs int) StreamOption {
	return func(sb *StreamBuilder) {
		if arcs > 0 {
			sb.memArcs = max(arcs, minStreamArcs)
		}
	}
}

// WithStreamTempDir places the spill runs and payload temp files under
// dir instead of the destination snapshot's directory.
func WithStreamTempDir(dir string) StreamOption {
	return func(sb *StreamBuilder) { sb.tmpDir = dir }
}

// streamRun is one sorted spill file: arcs records how many packed words
// the run must contain, so a truncated or tampered file is detected as a
// hard error at merge time instead of silently dropping edges.
type streamRun struct {
	path string
	arcs int64
}

// StreamBuilder accumulates an edge stream destined for a .csr snapshot.
// Errors latch like graph.Builder's: the first bad edge poisons the
// builder and Build reports it. Not safe for concurrent use.
type StreamBuilder struct {
	n       int
	memArcs int
	tmpDir  string
	buf     []uint64
	runs    []streamRun
	spilled int64 // total arcs across runs
	err     error
	done    bool
}

// NewStreamBuilder starts an out-of-core build of an n-node graph whose
// snapshot will be written by Build. The node count is fixed up front —
// the CSR header and offsets array need it — and is subject to the same
// MaxNodes cap as every other graphio input.
func NewStreamBuilder(n int, opts ...StreamOption) (*StreamBuilder, error) {
	if n < 0 {
		return nil, fmt.Errorf("graphio: stream builder with %d nodes", n)
	}
	if n > MaxNodes {
		return nil, fmt.Errorf("graphio: stream builder declares %d nodes (cap %d)", n, MaxNodes)
	}
	sb := &StreamBuilder{n: n, memArcs: defaultStreamArcs}
	for _, opt := range opts {
		opt(sb)
	}
	return sb, nil
}

// AddEdge records the undirected edge {u, v}. Out-of-range endpoints and
// self-loops latch an error (reported by Build); duplicate edges are
// legal and deduplicated during the merge, exactly like graph.Builder.
func (sb *StreamBuilder) AddEdge(u, v int) {
	if sb.err != nil {
		return
	}
	if sb.done {
		sb.err = errStreamPoisoned
		return
	}
	if u < 0 || v < 0 || u >= sb.n || v >= sb.n {
		sb.err = fmt.Errorf("graphio: stream edge (%d,%d) out of range [0,%d)", u, v, sb.n)
		return
	}
	if u == v {
		sb.err = fmt.Errorf("graphio: stream self-loop at %d", u)
		return
	}
	sb.buf = append(sb.buf, uint64(u)<<32|uint64(uint32(v)), uint64(v)<<32|uint64(uint32(u)))
	if len(sb.buf) >= sb.memArcs {
		sb.err = sb.spill()
	}
}

// spill sorts the arc buffer and writes it out as one run.
func (sb *StreamBuilder) spill() error {
	if len(sb.buf) == 0 {
		return nil
	}
	slices.Sort(sb.buf)
	f, err := os.CreateTemp(sb.tmpDir, ".csr-run-*")
	if err != nil {
		return fmt.Errorf("graphio: stream spill: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var word [wordBytes]byte
	for _, a := range sb.buf {
		binary.LittleEndian.PutUint64(word[:], a)
		if _, err := bw.Write(word[:]); err != nil {
			f.Close()
			os.Remove(f.Name())
			return fmt.Errorf("graphio: stream spill: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("graphio: stream spill: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("graphio: stream spill: %w", err)
	}
	sb.runs = append(sb.runs, streamRun{path: f.Name(), arcs: int64(len(sb.buf))})
	sb.spilled += int64(len(sb.buf))
	sb.buf = sb.buf[:0]
	return nil
}

// discard removes every spill file; called on all exits from Build.
func (sb *StreamBuilder) discard() {
	for _, r := range sb.runs {
		os.Remove(r.path)
	}
	sb.runs = nil
}

// arcCursor walks one sorted arc sequence during the merge: either a
// spill run (br set) or the in-memory tail (mem set). A run that ends
// before its recorded arc count is a truncation error.
type arcCursor struct {
	next   uint64
	ok     bool
	br     *bufio.Reader
	f      *os.File
	remain int64
	mem    []uint64
	path   string
}

func (c *arcCursor) advance() error {
	if c.br != nil {
		if c.remain == 0 {
			c.ok = false
			return nil
		}
		var word [wordBytes]byte
		if _, err := io.ReadFull(c.br, word[:]); err != nil {
			return fmt.Errorf("%w: stream run %s truncated with %d arcs unread: %w",
				ErrSnapshotCorrupt, filepath.Base(c.path), c.remain, err)
		}
		c.next = binary.LittleEndian.Uint64(word[:])
		c.remain--
		return nil
	}
	if len(c.mem) == 0 {
		c.ok = false
		return nil
	}
	c.next = c.mem[0]
	c.mem = c.mem[1:]
	return nil
}

func (c *arcCursor) close() {
	if c.f != nil {
		c.f.Close()
	}
}

// Build merges the spilled runs and the in-memory tail into a .csr
// snapshot at path (temp file + atomic rename, like SaveCSR) and
// retires the builder. The merge deduplicates arcs, counts degrees into
// the only O(n) array of the pipeline, streams targets to a payload temp
// file, and then assembles header + offsets + targets through the
// checksum in one sequential pass.
func (sb *StreamBuilder) Build(path string) (err error) {
	defer sb.discard()
	if sb.err != nil {
		return sb.err
	}
	if sb.done {
		return errStreamPoisoned
	}
	sb.done = true
	slices.Sort(sb.buf)

	cursors := make([]*arcCursor, 0, len(sb.runs)+1)
	defer func() {
		for _, c := range cursors {
			c.close()
		}
	}()
	for _, r := range sb.runs {
		f, oerr := os.Open(r.path)
		if oerr != nil {
			return fmt.Errorf("graphio: stream merge: %w", oerr)
		}
		cursors = append(cursors, &arcCursor{
			ok: true, br: bufio.NewReaderSize(f, 1<<16), f: f, remain: r.arcs, path: r.path,
		})
	}
	cursors = append(cursors, &arcCursor{ok: true, mem: sb.buf})
	for _, c := range cursors {
		if err := c.advance(); err != nil {
			return err
		}
	}

	// Merge pass: deduped targets stream to a payload temp file while the
	// degree array accumulates row lengths.
	payload, err := os.CreateTemp(sb.tmpDir, ".csr-targets-*")
	if err != nil {
		return fmt.Errorf("graphio: stream merge: %w", err)
	}
	defer os.Remove(payload.Name())
	defer payload.Close()
	pw := bufio.NewWriterSize(payload, 1<<16)

	degrees := make([]int64, sb.n)
	var arcs int64
	var prev uint64
	havePrev := false
	var word [wordBytes]byte
	for {
		best := -1
		for i, c := range cursors {
			if c.ok && (best < 0 || c.next < cursors[best].next) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		arc := cursors[best].next
		if err := cursors[best].advance(); err != nil {
			return err
		}
		if havePrev && arc == prev {
			continue // duplicate edge: both its arcs collapse symmetrically
		}
		prev, havePrev = arc, true
		degrees[arc>>32]++
		binary.LittleEndian.PutUint64(word[:], arc&0xffffffff)
		if _, err := pw.Write(word[:]); err != nil {
			return fmt.Errorf("graphio: stream merge: %w", err)
		}
		arcs++
	}
	if err := pw.Flush(); err != nil {
		return fmt.Errorf("graphio: stream merge: %w", err)
	}
	if arcs%2 != 0 {
		return fmt.Errorf("graphio: stream merge produced %d arcs (odd: internal invariant broken)", arcs)
	}
	m := arcs / 2
	if m > maxSnapshotEdges {
		return fmt.Errorf("graphio: stream merge produced %d edges (cap %d)", m, maxSnapshotEdges)
	}

	// Assembly pass: header + offsets (prefix sums of the degree array) +
	// the payload file, hashed as written; footer appended unhashed.
	if _, err := payload.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("graphio: stream assemble: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".csr-tmp-*")
	if err != nil {
		return fmt.Errorf("graphio: stream assemble: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename

	h := sha256.New()
	bw := bufio.NewWriterSize(io.MultiWriter(tmp, h), 1<<16)
	var hdr [snapshotHeaderLen]byte
	copy(hdr[0:8], snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], SnapshotVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], 0)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(sb.n))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(m))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("graphio: stream assemble: %w", err)
	}
	var off int64
	binary.LittleEndian.PutUint64(word[:], 0)
	if _, err := bw.Write(word[:]); err != nil {
		return fmt.Errorf("graphio: stream assemble: %w", err)
	}
	for _, d := range degrees {
		off += d
		binary.LittleEndian.PutUint64(word[:], uint64(off))
		if _, err := bw.Write(word[:]); err != nil {
			return fmt.Errorf("graphio: stream assemble: %w", err)
		}
	}
	if n, err := io.Copy(bw, payload); err != nil {
		return fmt.Errorf("graphio: stream assemble: %w", err)
	} else if n != arcs*wordBytes {
		return fmt.Errorf("%w: targets payload is %d bytes, merge wrote %d", ErrSnapshotCorrupt, n, arcs*wordBytes)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graphio: stream assemble: %w", err)
	}
	if _, err := tmp.Write(h.Sum(nil)); err != nil {
		tmp.Close()
		return fmt.Errorf("graphio: stream assemble: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("graphio: stream assemble: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("graphio: stream assemble: %w", err)
	}
	return nil
}

// EdgeStream feeds edges to BuildCSRStream through emit; returning a
// non-nil error aborts the build with that error.
type EdgeStream func(emit func(u, v int)) error

// BuildCSRStream builds a .csr snapshot at path from an n-node edge
// stream without materializing the graph in memory: the one-shot wrapper
// around StreamBuilder. The written snapshot is byte-identical to
// building the same edges with graph.Builder and SaveCSR.
func BuildCSRStream(path string, n int, stream EdgeStream, opts ...StreamOption) error {
	sb, err := NewStreamBuilder(n, opts...)
	if err != nil {
		return err
	}
	if err := stream(sb.AddEdge); err != nil {
		sb.discard()
		return err
	}
	return sb.Build(path)
}
