//go:build linux || darwin

package graphio

// Memory-mapped file access for the binary snapshot loader on platforms
// with syscall.Mmap. The mapping is read-only and shared: the kernel pages
// the adjacency arrays in on demand and can evict them under pressure, so
// an open snapshot costs address space, not resident memory, until rows
// are touched.

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps path read-only and returns the mapped bytes plus an unmap
// function. Errors (including zero-length files, which cannot be mapped)
// make the caller fall back to a plain read.
func mmapFile(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size <= 0 || int64(int(size)) != size {
		return nil, nil, fmt.Errorf("graphio: cannot map %d-byte file", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() { _ = syscall.Munmap(data) }, nil
}
