package graphio

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"testing"

	"strongdecomp/internal/graph"
)

// assertBitIdenticalCSR demands the two graphs share byte-for-byte equal
// CSR arrays — the snapshot contract is stronger than isomorphism or even
// adjacency identity: the arrays themselves round-trip exactly.
func assertBitIdenticalCSR(t *testing.T, want, got *graph.Graph) {
	t.Helper()
	wo, wt := want.CSR()
	go_, gt := got.CSR()
	if !slices.Equal(wo, go_) {
		t.Fatalf("offsets differ: got %v, want %v", go_, wo)
	}
	if !slices.Equal(wt, gt) {
		t.Fatalf("targets differ: got %v, want %v", gt, wt)
	}
	if got.M() != want.M() {
		t.Fatalf("m = %d, want %d", got.M(), want.M())
	}
}

// TestSnapshotRoundTripAllGenerators is the snapshot property test: for
// every generator family, a write/read cycle through the binary format —
// both the streaming decode and the mmap file path, verified and trusted —
// reproduces the source CSR arrays bit-identically.
func TestSnapshotRoundTripAllGenerators(t *testing.T) {
	for name, g := range generatorCorpus() {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteCSR(&buf, g); err != nil {
				t.Fatalf("write: %v", err)
			}
			got, err := ReadCSR(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			assertBitIdenticalCSR(t, g, got)
			if Hash(g) != Hash(got) {
				t.Error("content hash changed across snapshot round trip")
			}

			path := filepath.Join(t.TempDir(), "g.csr")
			if err := Save(path, g); err != nil {
				t.Fatalf("save: %v", err)
			}
			mapped, err := Load(path)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			assertBitIdenticalCSR(t, g, mapped)

			trusted, err := LoadCSRTrusted(path)
			if err != nil {
				t.Fatalf("trusted load: %v", err)
			}
			assertBitIdenticalCSR(t, g, trusted)
		})
	}
}

// TestSnapshotTruncation checks that cutting a valid snapshot at every
// region boundary (and a few interior points) is rejected with
// ErrSnapshotCorrupt by both the streaming and the file loader.
func TestSnapshotTruncation(t *testing.T) {
	g := graph.ClusterGraph(3, 6, 0.5, 42)
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	cuts := []int{0, 4, snapshotHeaderLen - 1, snapshotHeaderLen,
		snapshotHeaderLen + 8*(g.N()+1), len(full) - snapshotFooterLen, len(full) - 1}
	for _, cut := range cuts {
		t.Run(fmt.Sprintf("cut-%d", cut), func(t *testing.T) {
			trunc := full[:cut]
			if _, err := ReadCSR(bytes.NewReader(trunc)); !errors.Is(err, ErrSnapshotCorrupt) {
				t.Errorf("ReadCSR(truncated@%d) = %v, want ErrSnapshotCorrupt", cut, err)
			}
			path := filepath.Join(t.TempDir(), "t.csr")
			if err := os.WriteFile(path, trunc, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := LoadCSR(path); !errors.Is(err, ErrSnapshotCorrupt) {
				t.Errorf("LoadCSR(truncated@%d) = %v, want ErrSnapshotCorrupt", cut, err)
			}
		})
	}
}

// TestSnapshotBitFlips flips one bit in every region of a valid snapshot
// (header fields, offsets, targets, checksum footer) and demands a typed
// rejection: nothing corrupt may decode into a graph.
func TestSnapshotBitFlips(t *testing.T) {
	g := graph.ConnectedGnp(24, 0.15, 42)
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	positions := []struct {
		name string
		off  int
	}{
		{"magic", 0},
		{"version", 8},
		{"flags", 12},
		{"node-count", 16},
		{"edge-count", 24},
		{"offsets", snapshotHeaderLen},
		{"targets", snapshotHeaderLen + 8*(g.N()+1) + 8},
		{"footer", len(full) - 16},
	}
	for _, pos := range positions {
		t.Run(pos.name, func(t *testing.T) {
			mut := bytes.Clone(full)
			mut[pos.off] ^= 0x10
			_, err := ReadCSR(bytes.NewReader(mut))
			if err == nil {
				t.Fatalf("bit flip in %s at byte %d decoded successfully", pos.name, pos.off)
			}
			if !errors.Is(err, ErrSnapshotCorrupt) && !errors.Is(err, ErrSnapshotVersion) {
				t.Errorf("bit flip in %s: err = %v, want ErrSnapshotCorrupt or ErrSnapshotVersion", pos.name, err)
			}
			path := filepath.Join(t.TempDir(), "m.csr")
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, lerr := LoadCSR(path); lerr == nil {
				t.Errorf("LoadCSR accepted bit flip in %s", pos.name)
			}
		})
	}
}

// TestSnapshotVersionGate pins the version policy: a snapshot declaring a
// future version fails with ErrSnapshotVersion (distinct from corruption),
// even when its checksum is internally consistent.
func TestSnapshotVersionGate(t *testing.T) {
	g := graph.Path(5)
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	mut := bytes.Clone(buf.Bytes())
	mut[8] = 2 // version 2
	// Recompute the footer so only the version differs.
	rehash := shaOf(mut[:len(mut)-snapshotFooterLen])
	copy(mut[len(mut)-snapshotFooterLen:], rehash)
	if _, err := ReadCSR(bytes.NewReader(mut)); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("future version: err = %v, want ErrSnapshotVersion", err)
	}
}

// TestSnapshotRejectsInvalidStructure builds a checksum-valid snapshot
// whose payload violates the CSR invariants (asymmetric adjacency) and
// checks that the validating loader rejects it while the checksum alone
// would not.
func TestSnapshotRejectsInvalidStructure(t *testing.T) {
	// A hand-built "graph" where node 0 lists neighbor 1 but node 1 lists
	// nothing: valid header, valid checksum, invalid CSR.
	data := make([]byte, 0, 128)
	var hdr [snapshotHeaderLen]byte
	copy(hdr[0:8], snapshotMagic)
	hdr[8] = SnapshotVersion
	hdr[16] = 2 // n = 2
	hdr[24] = 1 // m = 1
	data = append(data, hdr[:]...)
	for _, w := range []uint64{0, 1, 2} { // offsets: node 0 has 1 neighbor... but so does node 1
		data = append(data, le64(w)...)
	}
	for _, w := range []uint64{1, 0x7fffffff} { // targets: [1, garbage]
		data = append(data, le64(w)...)
	}
	data = append(data, shaOf(data)...)
	if _, err := ReadCSR(bytes.NewReader(data)); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("invalid structure: err = %v, want ErrSnapshotCorrupt", err)
	}
}

// TestSnapshotDetectAndParseFormat pins the format wiring: extension
// detection, name parsing, and the String form.
func TestSnapshotDetectAndParseFormat(t *testing.T) {
	if f, err := DetectFormat("x/y/graph.csr"); err != nil || f != FormatCSR {
		t.Errorf("DetectFormat(.csr) = %v, %v", f, err)
	}
	if f, err := ParseFormat("csr"); err != nil || f != FormatCSR {
		t.Errorf("ParseFormat(csr) = %v, %v", f, err)
	}
	if FormatCSR.String() != "csr" {
		t.Errorf("FormatCSR.String() = %q", FormatCSR.String())
	}
}

// le64 renders one little-endian 64-bit word.
func le64(w uint64) []byte {
	var b [8]byte
	for i := range b {
		b[i] = byte(w >> (8 * i))
	}
	return b[:]
}

// shaOf returns the SHA-256 of b as a slice (test helper for hand-built
// snapshots).
func shaOf(b []byte) []byte {
	sum := sha256.Sum256(b)
	return sum[:]
}

// TestSnapshotHugeHeaderNoAllocation: a 32-byte body whose header
// declares ~2^33 edges must fail fast on truncation without attempting
// the header-implied multi-gigabyte allocation — the allocation defense
// behind accepting csr uploads over HTTP.
func TestSnapshotHugeHeaderNoAllocation(t *testing.T) {
	var hdr [snapshotHeaderLen]byte
	copy(hdr[0:8], snapshotMagic)
	hdr[8] = SnapshotVersion
	// n = 0, m = maxSnapshotEdges - 1: header-implied payload ≈ 128 GiB.
	m := uint64(maxSnapshotEdges - 1)
	for i := 0; i < 8; i++ {
		hdr[24+i] = byte(m >> (8 * i))
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, err := ReadCSR(bytes.NewReader(hdr[:]))
	runtime.ReadMemStats(&after)
	if !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("err = %v, want ErrSnapshotCorrupt", err)
	}
	if grown := after.TotalAlloc - before.TotalAlloc; grown > 1<<20 {
		t.Fatalf("truncated huge-header snapshot allocated %d bytes", grown)
	}
}
