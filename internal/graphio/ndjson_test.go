package graphio

import (
	"bytes"
	"strings"
	"testing"

	"strongdecomp/internal/cluster"
)

func TestClusterStreamRoundTripDecomposition(t *testing.T) {
	d := &cluster.Decomposition{
		Assign: []int{0, 1, 0, 2, 1, 2, 2},
		Color:  []int{0, 1, 0},
		K:      3,
		Colors: 2,
	}
	var buf bytes.Buffer
	hdr := StreamHeader{Kind: "decompose", Algo: "test", N: 7, K: 3, Colors: 2, Seed: 4, Rounds: 11}
	if err := WriteClusterStream(&buf, hdr, d.Clusters()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadClusterStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.Kind != "decompose" || got.Header.N != 7 || got.Header.K != 3 || got.Header.Rounds != 11 {
		t.Fatalf("header changed: %+v", got.Header)
	}
	if len(got.Clusters) != 3 {
		t.Fatalf("streamed %d clusters, want 3", len(got.Clusters))
	}
	for _, c := range got.Clusters {
		if c.Color == nil || *c.Color != d.Color[c.ID] {
			t.Errorf("cluster %d color lost or wrong: %v", c.ID, c.Color)
		}
	}
	assign, err := got.Assign()
	if err != nil {
		t.Fatal(err)
	}
	for v := range d.Assign {
		if assign[v] != d.Assign[v] {
			t.Fatalf("assignment changed at node %d: %d vs %d", v, assign[v], d.Assign[v])
		}
	}
}

func TestClusterStreamRoundTripCarving(t *testing.T) {
	c := &cluster.Carving{
		Assign:  []int{0, cluster.Unclustered, 1, 0, cluster.Unclustered},
		K:       2,
		Centers: []int{0, 2},
	}
	var buf bytes.Buffer
	if err := WriteClusterStream(&buf, StreamHeader{Kind: "carve", N: 5, K: 2, Eps: 0.5}, c.Clusters()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadClusterStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range got.Clusters {
		if sc.Color != nil {
			t.Errorf("carving cluster %d carries a color", sc.ID)
		}
		if sc.Center == nil || *sc.Center != c.Centers[sc.ID] {
			t.Errorf("cluster %d center lost: %v", sc.ID, sc.Center)
		}
	}
	assign, err := got.Assign()
	if err != nil {
		t.Fatal(err)
	}
	// Dead nodes come back Unclustered — exactly the encoder's contract.
	for v := range c.Assign {
		if assign[v] != c.Assign[v] {
			t.Fatalf("assignment changed at node %d: %d vs %d", v, assign[v], c.Assign[v])
		}
	}
}

func TestClusterStreamFraming(t *testing.T) {
	d := &cluster.Decomposition{Assign: []int{0, 0}, Color: []int{0}, K: 1, Colors: 1}
	var buf bytes.Buffer
	if err := WriteClusterStream(&buf, StreamHeader{Kind: "decompose", N: 2, K: 1}, d.Clusters()); err != nil {
		t.Fatal(err)
	}
	full := buf.String()

	// Dropping the end record must be detected.
	lines := strings.Split(strings.TrimSpace(full), "\n")
	truncated := strings.Join(lines[:len(lines)-1], "\n")
	if _, err := ReadClusterStream(strings.NewReader(truncated)); err == nil {
		t.Error("truncated stream accepted")
	}
	// A stream that is not NDJSON at all.
	if _, err := ReadClusterStream(strings.NewReader("{\"type\":\"cluster\"}\n")); err == nil {
		t.Error("stream without header accepted")
	}
	// Duplicate membership must be rejected on reconstruction.
	bad := &StreamResult{
		Header:   StreamHeader{N: 3},
		Clusters: []StreamCluster{{ID: 0, Members: []int{0, 1}}, {ID: 1, Members: []int{1}}},
	}
	if _, err := bad.Assign(); err == nil {
		t.Error("overlapping clusters accepted")
	}
	// Out-of-range member.
	bad = &StreamResult{Header: StreamHeader{N: 2}, Clusters: []StreamCluster{{ID: 0, Members: []int{5}}}}
	if _, err := bad.Assign(); err == nil {
		t.Error("out-of-range member accepted")
	}
}

// TestClusterStreamNDJSONShape pins the wire format: one JSON object per
// line, first line a header, last line an end record.
func TestClusterStreamNDJSONShape(t *testing.T) {
	d := &cluster.Decomposition{Assign: []int{0, 1}, Color: []int{0, 0}, K: 2, Colors: 1}
	var buf bytes.Buffer
	if err := WriteClusterStream(&buf, StreamHeader{Kind: "decompose", N: 2, K: 2}, d.Clusters()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("stream has %d lines, want 4 (header, 2 clusters, end)", len(lines))
	}
	if !strings.Contains(lines[0], `"type":"header"`) {
		t.Errorf("first line is not a header: %s", lines[0])
	}
	if !strings.Contains(lines[len(lines)-1], `"type":"end"`) {
		t.Errorf("last line is not an end record: %s", lines[len(lines)-1])
	}
}
