package graphio

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"strongdecomp/internal/graph"
)

// ReadMETIS parses the METIS/Chaco adjacency format: a header line
// "n m [fmt]" followed by exactly n adjacency lines, where line i lists the
// 1-indexed neighbors of node i. A blank adjacency line is a node with no
// neighbors; lines starting with '%' are comments. Only unweighted graphs
// (fmt absent, "0", "00", or "000") are supported. Adjacency data must be
// symmetric with no repeated entries and must match the declared edge
// count m: every (u, v) entry is recorded as a directed occurrence, a
// duplicate occurrence is an error, and entries == 2·edges then forces
// each edge to appear in exactly both directions.
func ReadMETIS(r io.Reader) (*graph.Graph, error) {
	sc := lineScanner(r)
	n, m, err := readMETISHeader(sc)
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(n)
	// A directed occurrence (u, v) can only repeat within node u's own
	// adjacency line, so duplicate detection needs no map over all 2m
	// occurrences: one stamp slice, stamped with the current line's node,
	// detects repeats in O(1) with a single upfront allocation.
	lastListedBy := make([]int, n) // node v -> 1 + last u whose line listed v
	entries := 0
	for u := 0; u < n; u++ {
		text, ok := nextMETISLine(sc)
		if !ok {
			if err := sc.Err(); err != nil {
				return nil, fmt.Errorf("metis: %w", err)
			}
			return nil, fmt.Errorf("metis: want %d adjacency lines, got %d", n, u)
		}
		for _, field := range strings.Fields(text) {
			w, err := strconv.Atoi(field)
			if err != nil {
				return nil, fmt.Errorf("metis node %d: bad neighbor %q", u+1, field)
			}
			if w < 1 || w > n {
				return nil, fmt.Errorf("metis node %d: neighbor %d out of range [1,%d]", u+1, w, n)
			}
			v := w - 1
			if v == u {
				return nil, fmt.Errorf("metis node %d: self-loop", u+1)
			}
			if lastListedBy[v] == u+1 {
				return nil, fmt.Errorf("metis node %d: neighbor %d listed twice", u+1, w)
			}
			lastListedBy[v] = u + 1
			entries++
			b.AddEdge(u, v)
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("metis: %w", err)
	}
	if entries != 2*m || g.M() != m {
		return nil, fmt.Errorf("metis: header declares %d edges, adjacency encodes %d directed entries over %d distinct edges (want %d and %d: symmetric, no repeats)", m, entries, g.M(), 2*m, m)
	}
	return g, nil
}

// readMETISHeader consumes comments and the "n m [fmt]" header.
func readMETISHeader(sc interface {
	Scan() bool
	Text() string
	Err() error
}) (n, m int, err error) {
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 || len(fields) > 4 {
			return 0, 0, fmt.Errorf("metis: bad header %q (want \"n m [fmt]\")", text)
		}
		if len(fields) >= 3 {
			switch fields[2] {
			case "0", "00", "000":
			default:
				return 0, 0, fmt.Errorf("metis: weighted format code %q not supported", fields[2])
			}
		}
		n, err = strconv.Atoi(fields[0])
		if err != nil || n < 0 {
			return 0, 0, fmt.Errorf("metis: bad node count %q", fields[0])
		}
		if n > MaxNodes {
			return 0, 0, fmt.Errorf("metis: declared %d nodes exceeds limit %d", n, MaxNodes)
		}
		m, err = strconv.Atoi(fields[1])
		if err != nil || m < 0 {
			return 0, 0, fmt.Errorf("metis: bad edge count %q", fields[1])
		}
		if maxEdges := n * (n - 1) / 2; m > maxEdges {
			return 0, 0, fmt.Errorf("metis: %d edges impossible on %d nodes (max %d)", m, n, maxEdges)
		}
		return n, m, nil
	}
	if err := sc.Err(); err != nil {
		return 0, 0, fmt.Errorf("metis: %w", err)
	}
	return 0, 0, errors.New("metis: empty input (missing header)")
}

// nextMETISLine returns the next adjacency line, skipping comments only —
// blank lines are data (isolated nodes).
func nextMETISLine(sc interface {
	Scan() bool
	Text() string
}) (string, bool) {
	for sc.Scan() {
		text := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(text), "%") {
			continue
		}
		return text, true
	}
	return "", false
}

// WriteMETIS serializes g in the METIS adjacency format.
func WriteMETIS(w io.Writer, g *graph.Graph) error {
	if g == nil {
		return errors.New("metis: nil graph")
	}
	bw := newErrWriter(w)
	bw.printf("%d %d\n", g.N(), g.M())
	for u := 0; u < g.N(); u++ {
		for i, v := range g.Neighbors(u) {
			if i > 0 {
				bw.printf(" ")
			}
			bw.printf("%d", v+1)
		}
		bw.printf("\n")
	}
	return bw.err
}
