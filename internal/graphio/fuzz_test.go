package graphio

import (
	"bytes"
	"testing"
)

// FuzzEdgeList asserts the parser's crash-safety contract: arbitrary bytes
// either parse into a valid graph or return an error — never a panic — and
// an accepted input survives a write/read round trip with an identical
// content hash.
func FuzzEdgeList(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n2 0\n"))
	f.Add([]byte("# n 6\n0 1\n4 5\n"))
	f.Add([]byte("# comment\n% comment\n\n10 11\n"))
	f.Add([]byte("0 1 2\n"))
	f.Add([]byte("-3 7\n"))
	f.Add([]byte("99999999999999999999 1\n"))
	f.Add([]byte("a b\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write of parsed graph failed: %v", err)
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("reparse of written graph failed: %v", err)
		}
		if Hash(g) != Hash(back) {
			t.Fatal("hash changed across round trip")
		}
	})
}

// FuzzMETIS is the METIS-format twin of FuzzEdgeList.
func FuzzMETIS(f *testing.F) {
	f.Add([]byte("3 2\n2\n1 3\n2\n"))
	f.Add([]byte("% c\n4 2\n2\n1 3\n2\n\n"))
	f.Add([]byte("2 1 0\n2\n1\n"))
	f.Add([]byte("3 9\n2\n1\n\n"))
	f.Add([]byte("0 0\n"))
	f.Add([]byte("1\n"))
	f.Add([]byte("2 1\n0\n1\n"))
	f.Add([]byte("99999999999999999999 0\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadMETIS(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMETIS(&buf, g); err != nil {
			t.Fatalf("write of parsed graph failed: %v", err)
		}
		back, err := ReadMETIS(&buf)
		if err != nil {
			t.Fatalf("reparse of written graph failed: %v", err)
		}
		if Hash(g) != Hash(back) {
			t.Fatal("hash changed across round trip")
		}
	})
}
