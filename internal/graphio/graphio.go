// Package graphio moves graphs between bytes and graph.Graph: streaming
// parsers and writers for the three interchange formats the serving layer
// accepts (whitespace edge list, METIS adjacency, and a JSON graph
// document), extension-based format detection, and a stable content hash
// over the canonicalized edge set.
//
// Every reader is defensive: malformed input returns an error, never a
// panic, and declared sizes are capped (MaxNodes) so adversarial headers
// cannot force pathological allocations. Readers stream line by line and
// feed edges straight into a graph.Builder — no intermediate adjacency
// maps are materialized.
//
// The content hash is the cache identity of a graph in the serving layer:
// two byte streams that decode to the same simple graph (same node count,
// same edge set) hash identically regardless of format, edge order, edge
// duplication, or endpoint orientation, because hashing happens after the
// Builder canonicalizes.
package graphio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"strongdecomp/internal/graph"
)

// Format identifies a supported graph interchange format.
type Format int

const (
	// FormatUnknown is the zero Format; Load/Save reject it.
	FormatUnknown Format = iota
	// FormatEdgeList is a whitespace edge list: one "u v" pair per line,
	// '#' and '%' comments, and an optional "# n <count>" directive that
	// pins the node count (needed to round-trip trailing isolated nodes).
	FormatEdgeList
	// FormatMETIS is the METIS/Chaco adjacency format: an "n m" header
	// followed by one 1-indexed neighbor line per node; '%' comments.
	FormatMETIS
	// FormatJSON is the JSON graph document {"n": ..., "edges": [[u,v], ...]}.
	FormatJSON
	// FormatCSR is the versioned binary CSR snapshot (.csr): magic,
	// version, node/edge counts, the graph's two flat CSR arrays verbatim,
	// and a SHA-256 checksum footer. It is the only format whose load path
	// is not a parse — Load memory-maps the arrays in place (see snapshot.go
	// and the DESIGN.md format spec).
	FormatCSR
)

// MaxNodes caps the node count any parser accepts. Inputs declaring more
// nodes fail with an error instead of attempting the allocation; the cap
// exists so a handful of adversarial header bytes cannot demand gigabytes.
const MaxNodes = 1 << 24

// maxLineBytes bounds a single input line (METIS adjacency rows of dense
// graphs are long; anything beyond this is rejected, not buffered).
const maxLineBytes = 64 << 20

// String returns the canonical format name as accepted by ParseFormat
// and the HTTP ?format= parameter.
func (f Format) String() string {
	switch f {
	case FormatEdgeList:
		return "edgelist"
	case FormatMETIS:
		return "metis"
	case FormatJSON:
		return "json"
	case FormatCSR:
		return "csr"
	default:
		return "unknown"
	}
}

// ParseFormat resolves a format name ("edgelist", "metis", "json") as used
// by query parameters and CLI flags.
func ParseFormat(name string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "edgelist", "edge-list", "el", "edges":
		return FormatEdgeList, nil
	case "metis", "graph", "chaco":
		return FormatMETIS, nil
	case "json":
		return FormatJSON, nil
	case "csr", "snapshot":
		return FormatCSR, nil
	default:
		return FormatUnknown, fmt.Errorf("graphio: unknown format %q (want edgelist|metis|json|csr)", name)
	}
}

// DetectFormat infers the format from a file path's extension:
// .el/.edges/.edgelist/.txt → edge list, .metis/.graph → METIS,
// .json → JSON, .csr → binary CSR snapshot.
func DetectFormat(path string) (Format, error) {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".el", ".edges", ".edgelist", ".txt":
		return FormatEdgeList, nil
	case ".metis", ".graph":
		return FormatMETIS, nil
	case ".json":
		return FormatJSON, nil
	case ".csr":
		return FormatCSR, nil
	default:
		return FormatUnknown, fmt.Errorf("graphio: cannot detect format of %q (known extensions: .el .edges .edgelist .txt .metis .graph .json .csr)", path)
	}
}

// Read parses a graph from r in the given format.
func Read(r io.Reader, f Format) (*graph.Graph, error) {
	switch f {
	case FormatEdgeList:
		return ReadEdgeList(r)
	case FormatMETIS:
		return ReadMETIS(r)
	case FormatJSON:
		return ReadJSON(r)
	case FormatCSR:
		return ReadCSR(r)
	default:
		return nil, fmt.Errorf("graphio: cannot read format %v", f)
	}
}

// Write serializes g to w in the given format.
func Write(w io.Writer, g *graph.Graph, f Format) error {
	switch f {
	case FormatEdgeList:
		return WriteEdgeList(w, g)
	case FormatMETIS:
		return WriteMETIS(w, g)
	case FormatJSON:
		return WriteJSON(w, g)
	case FormatCSR:
		return WriteCSR(w, g)
	default:
		return fmt.Errorf("graphio: cannot write format %v", f)
	}
}

// Load reads the graph file at path, detecting the format from the
// extension. A .csr snapshot takes the mmap fast path (LoadCSR): the
// adjacency arrays are the mapped file pages, verified but never copied
// or rebuilt.
func Load(path string) (*graph.Graph, error) {
	f, err := DetectFormat(path)
	if err != nil {
		return nil, err
	}
	if f == FormatCSR {
		g, err := LoadCSR(path)
		if err != nil {
			return nil, fmt.Errorf("graphio: %s: %w", path, err)
		}
		return g, nil
	}
	file, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	defer file.Close()
	g, err := Read(bufio.NewReader(file), f)
	if err != nil {
		return nil, fmt.Errorf("graphio: %s: %w", path, err)
	}
	return g, nil
}

// Save writes g to path in the format detected from the extension. A
// .csr snapshot is written through a temp file and an atomic rename
// (SaveCSR), so readers never observe a half-written binary file.
func Save(path string, g *graph.Graph) error {
	f, err := DetectFormat(path)
	if err != nil {
		return err
	}
	if f == FormatCSR {
		return SaveCSR(path, g)
	}
	file, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graphio: %w", err)
	}
	w := bufio.NewWriter(file)
	if err := Write(w, g, f); err != nil {
		file.Close()
		return fmt.Errorf("graphio: %s: %w", path, err)
	}
	if err := w.Flush(); err != nil {
		file.Close()
		return fmt.Errorf("graphio: %s: %w", path, err)
	}
	return file.Close()
}

// lineScanner returns a line scanner with the package's buffer bounds.
func lineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxLineBytes)
	return sc
}
