package graphio

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"strongdecomp/internal/graph"
)

// memSave builds the same edges with the in-memory graph.Builder and
// SaveCSR, returning the snapshot bytes — the oracle BuildCSRStream is
// pinned against — or the Builder's error.
func memSave(t *testing.T, n int, edges [][2]int) ([]byte, error) {
	t.Helper()
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	path := filepath.Join(t.TempDir(), "mem.csr")
	if err := SaveCSR(path, g); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, nil
}

// streamSave builds the same edges out-of-core and returns the snapshot
// bytes. memArcs is the spill cap — small values force multi-run merges.
func streamSave(t *testing.T, n int, edges [][2]int, memArcs int) ([]byte, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "stream.csr")
	err := BuildCSRStream(path, n, func(emit func(u, v int)) error {
		for _, e := range edges {
			emit(e[0], e[1])
		}
		return nil
	}, WithStreamMemory(memArcs), WithStreamTempDir(t.TempDir()))
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, nil
}

// TestBuildCSRStreamMatchesBuilder pins the out-of-core path to the
// in-memory one byte for byte: random edge streams with duplicates, in
// shuffled order, across spill caps from "everything in memory" down to
// "dozens of runs".
func TestBuildCSRStreamMatchesBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, n := range []int{1, 2, 50, 700} {
		var edges [][2]int
		for i := 0; i < 4*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			edges = append(edges, [2]int{u, v})
			if rng.Intn(3) == 0 {
				edges = append(edges, [2]int{v, u}) // duplicate, reversed
			}
		}
		want, err := memSave(t, n, edges)
		if err != nil {
			t.Fatalf("n=%d: builder: %v", n, err)
		}
		for _, memArcs := range []int{1 << 20, minStreamArcs} {
			got, err := streamSave(t, n, edges, memArcs)
			if err != nil {
				t.Fatalf("n=%d memArcs=%d: %v", n, memArcs, err)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("n=%d memArcs=%d: stream snapshot differs from in-memory snapshot", n, memArcs)
			}
		}
	}
}

// TestBuildCSRStreamSpillsAndLoads forces real spill runs (cap floor,
// >minStreamArcs arcs) and checks the merged snapshot mmap-loads with
// full verification into the same graph the Builder produces.
func TestBuildCSRStreamSpillsAndLoads(t *testing.T) {
	n := 3000
	rng := rand.New(rand.NewSource(5))
	b := graph.NewBuilder(n)
	sb, err := NewStreamBuilder(n, WithStreamMemory(minStreamArcs), WithStreamTempDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		b.AddEdge(u, v)
		sb.AddEdge(u, v)
	}
	if len(sb.runs) < 2 {
		t.Fatalf("expected multiple spill runs, got %d", len(sb.runs))
	}
	want, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "big.csr")
	if err := sb.Build(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSR(path)
	if err != nil {
		t.Fatalf("mmap load: %v", err)
	}
	wo, wt := want.CSR()
	go_, gt := got.CSR()
	if len(wo) != len(go_) || len(wt) != len(gt) {
		t.Fatalf("CSR shapes differ: (%d,%d) vs (%d,%d)", len(wo), len(wt), len(go_), len(gt))
	}
	for i := range wo {
		if wo[i] != go_[i] {
			t.Fatalf("offsets differ at %d", i)
		}
	}
	for i := range wt {
		if wt[i] != gt[i] {
			t.Fatalf("targets differ at %d", i)
		}
	}
}

// TestStreamBuilderTruncatedRun corrupts a spill run on disk before the
// merge; Build must fail with ErrSnapshotCorrupt, never silently drop
// the missing arcs.
func TestStreamBuilderTruncatedRun(t *testing.T) {
	n := 2000
	rng := rand.New(rand.NewSource(9))
	sb, err := NewStreamBuilder(n, WithStreamMemory(minStreamArcs), WithStreamTempDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			sb.AddEdge(u, v)
		}
	}
	if len(sb.runs) == 0 {
		t.Fatal("no spill runs to truncate")
	}
	run := sb.runs[0]
	if err := os.Truncate(run.path, run.arcs*wordBytes/2); err != nil {
		t.Fatal(err)
	}
	err = sb.Build(filepath.Join(t.TempDir(), "trunc.csr"))
	if !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("truncated run: got %v, want ErrSnapshotCorrupt", err)
	}
}

// TestStreamBuilderErrorLatching mirrors graph.Builder's latched-error
// contract: bad input poisons the builder, later calls are no-ops, and
// Build after Build fails.
func TestStreamBuilderErrorLatching(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		feed func(sb *StreamBuilder)
	}{
		{"self-loop", func(sb *StreamBuilder) { sb.AddEdge(3, 3) }},
		{"out-of-range", func(sb *StreamBuilder) { sb.AddEdge(0, 99) }},
		{"negative", func(sb *StreamBuilder) { sb.AddEdge(-1, 2) }},
	}
	for _, tc := range cases {
		sb, err := NewStreamBuilder(10, WithStreamTempDir(dir))
		if err != nil {
			t.Fatal(err)
		}
		sb.AddEdge(0, 1)
		tc.feed(sb)
		sb.AddEdge(1, 2) // latched: ignored
		if err := sb.Build(filepath.Join(dir, tc.name+".csr")); err == nil {
			t.Errorf("%s: Build succeeded after poisoned input", tc.name)
		}
	}

	sb, err := NewStreamBuilder(4, WithStreamTempDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	sb.AddEdge(0, 1)
	path := filepath.Join(dir, "ok.csr")
	if err := sb.Build(path); err != nil {
		t.Fatal(err)
	}
	if err := sb.Build(path); !errors.Is(err, errStreamPoisoned) {
		t.Errorf("second Build: got %v, want poisoned error", err)
	}
	sb.AddEdge(2, 3)
	if sb.err == nil {
		t.Error("AddEdge after Build did not latch an error")
	}

	if _, err := NewStreamBuilder(-1); err == nil {
		t.Error("negative node count accepted")
	}
	if _, err := NewStreamBuilder(MaxNodes + 1); err == nil {
		t.Error("node count beyond MaxNodes accepted")
	}
}

// TestBuildCSRStreamAbort propagates the stream callback's error and
// leaves no snapshot behind.
func TestBuildCSRStreamAbort(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "abort.csr")
	boom := errors.New("upstream failed")
	err := BuildCSRStream(path, 10, func(emit func(u, v int)) error {
		emit(0, 1)
		return boom
	}, WithStreamTempDir(dir))
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the stream's own error", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("aborted build left a snapshot: %v", err)
	}
}

// FuzzBuildCSRStream drives the out-of-core builder with arbitrary edge
// streams — duplicates, self-loops, out-of-range endpoints, unsorted
// order — and differentially checks it against graph.Builder: both paths
// must agree on accept/reject, and on accept the snapshot must pass
// ReadCSR's full validation and match the in-memory snapshot byte for
// byte. The tiny spill cap routes even small inputs through the
// sort-spill-merge machinery.
func FuzzBuildCSRStream(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 0, 1, 1, 2, 2, 3, 3, 0})                // cycle
	f.Add([]byte{3, 0, 1, 0, 1, 1, 0})                      // duplicates both ways
	f.Add([]byte{5, 2, 2})                                  // self-loop: must reject
	f.Add([]byte{2, 0, 200})                                // out of range: must reject
	f.Add([]byte{8, 7, 0, 6, 1, 5, 2, 4, 3, 0, 3, 1, 4, 9}) // trailing odd byte ignored
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0])
		pairs := data[1:]
		var edges [][2]int
		for i := 0; i+1 < len(pairs); i += 2 {
			edges = append(edges, [2]int{int(pairs[i]), int(pairs[i+1])})
		}

		b := graph.NewBuilder(n)
		for _, e := range edges {
			b.AddEdge(e[0], e[1])
		}
		wantG, wantErr := b.Build()

		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.csr")
		gotErr := BuildCSRStream(path, n, func(emit func(u, v int)) error {
			for _, e := range edges {
				emit(e[0], e[1])
			}
			return nil
		}, WithStreamMemory(1), WithStreamTempDir(dir))

		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("accept/reject disagreement: builder err=%v, stream err=%v", wantErr, gotErr)
		}
		if gotErr != nil {
			if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("rejected input left a snapshot: %v", err)
			}
			return
		}

		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		g, err := ReadCSR(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("stream snapshot failed validation: %v", err)
		}
		if g.N() != wantG.N() || g.M() != wantG.M() {
			t.Fatalf("stream graph is (%d,%d), builder graph is (%d,%d)", g.N(), g.M(), wantG.N(), wantG.M())
		}
		memPath := filepath.Join(dir, "mem.csr")
		if err := SaveCSR(memPath, wantG); err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(memPath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, want) {
			t.Fatal("stream snapshot differs from in-memory snapshot")
		}
	})
}
