package graphio

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"

	"strongdecomp/internal/graph"
)

// hashDomain versions the hash encoding; bump it if the scheme changes so
// stale cache identities can never collide with fresh ones.
const hashDomain = "strongdecomp/graph/v1\n"

// Hash returns the stable content hash of g: the hex SHA-256 of the node
// count and the canonical (sorted, u<v) edge set. Because graph.Graph is
// always canonical, two graphs hash identically iff they have the same
// node count and edge set — independent of the byte format, edge order, or
// orientation they were parsed from. The serving layer uses this as the
// cache identity of a graph.
func Hash(g *graph.Graph) string {
	h := sha256.New()
	io.WriteString(h, hashDomain)
	var buf [binary.MaxVarintLen64]byte
	put := func(x int) {
		k := binary.PutUvarint(buf[:], uint64(x))
		h.Write(buf[:k])
	}
	put(g.N())
	put(g.M())
	// Stream the adjacency directly; Neighbors is sorted, so emitting the
	// u<v orientation walks the canonical edge list without materializing
	// it.
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				put(u)
				put(v)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
