//go:build !linux && !darwin

package graphio

// Fallback for platforms without syscall.Mmap support wired up: report
// mapping as unavailable so the snapshot loader reads the file into
// memory instead. The format and all verification behave identically;
// only the zero-copy property is lost.

import "errors"

// mmapFile always fails on this platform, selecting the read-everything
// fallback in loadSnapshot.
func mmapFile(path string) ([]byte, func(), error) {
	return nil, nil, errors.New("graphio: mmap unsupported on this platform")
}
