package graphio

// NDJSON result streaming: a decomposition or carving result serialized
// as newline-delimited JSON — one header record, one record per cluster,
// one end record — so multi-million-node results flow to the wire (or to
// a pipe) cluster by cluster without a second full in-memory copy of the
// assignment. The cluster records are fed from the zero-copy iterators on
// cluster.Carving/Decomposition (see cluster.Clusters).
//
//	{"type":"header","kind":"decompose","algo":"chang-ghaffari","n":8,"k":3,"colors":2,...}
//	{"type":"cluster","id":0,"color":0,"members":[0,2]}
//	{"type":"cluster","id":1,"color":1,"members":[1,4]}
//	...
//	{"type":"end","clusters":3}
//
// The trailing end record carries the cluster count, so a consumer can
// distinguish a complete stream from a truncated one.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"

	"strongdecomp/internal/cluster"
)

// StreamHeader is the first record of an NDJSON result stream.
type StreamHeader struct {
	Type string `json:"type"` // always "header"
	// Kind is "carve" or "decompose".
	Kind string `json:"kind"`
	Algo string `json:"algo"`
	// GraphHash is the content hash of the input graph (optional).
	GraphHash string  `json:"graph_hash,omitempty"`
	N         int     `json:"n"`
	K         int     `json:"k"`
	Colors    int     `json:"colors,omitempty"`
	Eps       float64 `json:"eps,omitempty"`
	Seed      int64   `json:"seed"`
	Rounds    int64   `json:"rounds,omitempty"`
}

// StreamCluster is one cluster record of an NDJSON result stream. Color
// and Center use -1 for "absent" in the cluster package; on the wire they
// are simply omitted then.
type StreamCluster struct {
	Type    string `json:"type"` // always "cluster"
	ID      int    `json:"id"`
	Color   *int   `json:"color,omitempty"`
	Center  *int   `json:"center,omitempty"`
	Members []int  `json:"members"`
}

// streamEnd terminates a stream; Clusters echoes the emitted count.
type streamEnd struct {
	Type     string `json:"type"` // always "end"
	Clusters int    `json:"clusters"`
}

// WriteClusterStream writes an NDJSON result stream: the header, one
// record per yielded cluster, and the end record. Each record is written
// (and flushed to w by the buffered writer) as it is produced, so memory
// stays bounded by one cluster regardless of the result size.
func WriteClusterStream(w io.Writer, hdr StreamHeader, clusters iter.Seq[cluster.ClusterView]) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	hdr.Type = "header"
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("graphio: encode stream header: %w", err)
	}
	count := 0
	rec := StreamCluster{Type: "cluster"}
	for v := range clusters {
		rec.ID = v.ID
		rec.Color, rec.Center = nil, nil
		if v.Color >= 0 {
			color := v.Color
			rec.Color = &color
		}
		if v.Center >= 0 {
			center := v.Center
			rec.Center = &center
		}
		rec.Members = v.Members
		if v.Members == nil {
			rec.Members = []int{} // "members":[] beats "members":null on the wire
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("graphio: encode cluster %d: %w", v.ID, err)
		}
		count++
	}
	if err := enc.Encode(streamEnd{Type: "end", Clusters: count}); err != nil {
		return fmt.Errorf("graphio: encode stream end: %w", err)
	}
	return bw.Flush()
}

// StreamResult is a fully decoded NDJSON result stream.
type StreamResult struct {
	Header   StreamHeader
	Clusters []StreamCluster
}

// Assign reconstructs the node → cluster assignment from the cluster
// records (Unclustered for nodes in no cluster) — the inverse of the
// streaming encode, used by consumers and the round-trip tests.
func (r *StreamResult) Assign() ([]int, error) {
	assign := make([]int, r.Header.N)
	for i := range assign {
		assign[i] = cluster.Unclustered
	}
	for _, c := range r.Clusters {
		for _, v := range c.Members {
			if v < 0 || v >= len(assign) {
				return nil, fmt.Errorf("graphio: cluster %d member %d outside [0, %d)", c.ID, v, len(assign))
			}
			if assign[v] != cluster.Unclustered {
				return nil, fmt.Errorf("graphio: node %d in clusters %d and %d", v, assign[v], c.ID)
			}
			assign[v] = c.ID
		}
	}
	return assign, nil
}

// ReadClusterStream decodes an NDJSON result stream, verifying framing:
// exactly one leading header, a terminal end record, and a cluster count
// matching the records seen (so truncated streams are detected).
func ReadClusterStream(r io.Reader) (*StreamResult, error) {
	dec := json.NewDecoder(r)
	var out StreamResult

	var hdr StreamHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("graphio: decode stream header: %w", err)
	}
	if hdr.Type != "header" {
		return nil, fmt.Errorf("graphio: first record is %q, want \"header\"", hdr.Type)
	}
	out.Header = hdr

	for {
		var raw struct {
			StreamCluster
			Clusters int `json:"clusters"`
		}
		if err := dec.Decode(&raw); err != nil {
			if errors.Is(err, io.EOF) {
				return nil, errors.New("graphio: stream truncated: no end record")
			}
			return nil, fmt.Errorf("graphio: decode stream record: %w", err)
		}
		switch raw.Type {
		case "cluster":
			out.Clusters = append(out.Clusters, raw.StreamCluster)
		case "end":
			if raw.Clusters != len(out.Clusters) {
				return nil, fmt.Errorf("graphio: end record claims %d clusters, stream carried %d", raw.Clusters, len(out.Clusters))
			}
			return &out, nil
		default:
			return nil, fmt.Errorf("graphio: unknown stream record type %q", raw.Type)
		}
	}
}
