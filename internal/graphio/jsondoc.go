package graphio

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"strongdecomp/internal/graph"
)

// Document is the JSON graph interchange document:
//
//	{"n": 4, "edges": [[0,1],[1,2],[2,3]]}
//
// It is the inline-graph payload of the HTTP API and the JSON file format
// of Load/Save. Name is optional free-form metadata. Edges is deliberately
// [][]int rather than [][2]int: encoding/json silently truncates oversized
// fixed arrays, and a weighted triple [u,v,w] must be rejected, not
// reinterpreted as the edge [u,v].
type Document struct {
	Name  string  `json:"name,omitempty"`
	N     int     `json:"n"`
	Edges [][]int `json:"edges"`
}

// FromDocument validates a document and builds the graph.
func FromDocument(doc *Document) (*graph.Graph, error) {
	if doc == nil {
		return nil, errors.New("graphio: nil document")
	}
	if doc.N < 0 {
		return nil, fmt.Errorf("graphio: negative node count %d", doc.N)
	}
	if doc.N > MaxNodes {
		return nil, fmt.Errorf("graphio: declared %d nodes exceeds limit %d", doc.N, MaxNodes)
	}
	b := graph.NewBuilder(doc.N)
	for i, e := range doc.Edges {
		if len(e) != 2 {
			return nil, fmt.Errorf("graphio: edge %d has %d endpoints, want 2", i, len(e))
		}
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	return g, nil
}

// ToDocument converts g to its JSON document form.
func ToDocument(g *graph.Graph) *Document {
	edges := make([][]int, 0, g.M())
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				edges = append(edges, []int{u, v})
			}
		}
	}
	return &Document{N: g.N(), Edges: edges}
}

// ReadJSON parses a JSON graph document, streaming the edges array one
// element at a time into the graph builder: the [][]int edge list of the
// Document form is never materialized, so peak parse memory is the
// builder's packed edge buffer plus one reused pair.
func ReadJSON(r io.Reader) (*graph.Graph, error) {
	dec := json.NewDecoder(r)
	if err := expectDelim(dec, '{'); err != nil {
		return nil, fmt.Errorf("graphio: decode json document: %w", err)
	}
	b := graph.NewAutoBuilder()
	declared := 0 // "n" field; missing means 0, exactly like the Document form
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("graphio: decode json document: %w", err)
		}
		key, ok := keyTok.(string)
		if !ok {
			return nil, fmt.Errorf("graphio: decode json document: unexpected token %v", keyTok)
		}
		switch key {
		case "n":
			if err := dec.Decode(&declared); err != nil {
				return nil, fmt.Errorf("graphio: decode json document: field n: %w", err)
			}
			if declared < 0 {
				return nil, fmt.Errorf("graphio: negative node count %d", declared)
			}
			if declared > MaxNodes {
				return nil, fmt.Errorf("graphio: declared %d nodes exceeds limit %d", declared, MaxNodes)
			}
		case "edges":
			if err := readJSONEdges(dec, b); err != nil {
				return nil, err
			}
		default:
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				return nil, fmt.Errorf("graphio: decode json document: field %s: %w", key, err)
			}
		}
	}
	if err := expectDelim(dec, '}'); err != nil {
		return nil, fmt.Errorf("graphio: decode json document: %w", err)
	}
	b.DeclareNodes(declared)
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	return g, nil
}

// readJSONEdges consumes the edges array (or null), feeding each pair into
// the builder through one reused two-element slice.
func readJSONEdges(dec *json.Decoder, b *graph.Builder) error {
	tok, err := dec.Token()
	if err != nil {
		return fmt.Errorf("graphio: decode json document: edges: %w", err)
	}
	if tok == nil {
		return nil // "edges": null
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return fmt.Errorf("graphio: decode json document: edges must be an array, got %v", tok)
	}
	e := make([]int, 0, 2)
	for i := 0; dec.More(); i++ {
		e = e[:0]
		if err := dec.Decode(&e); err != nil {
			return fmt.Errorf("graphio: decode json document: edge %d: %w", i, err)
		}
		if len(e) != 2 {
			return fmt.Errorf("graphio: edge %d has %d endpoints, want 2", i, len(e))
		}
		if e[0] >= MaxNodes || e[1] >= MaxNodes {
			return fmt.Errorf("graphio: edge %d endpoint exceeds limit %d", i, MaxNodes)
		}
		b.AddEdge(e[0], e[1])
	}
	return expectDelim(dec, ']')
}

// expectDelim consumes one token and checks it is the given delimiter.
func expectDelim(dec *json.Decoder, want json.Delim) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if d, ok := tok.(json.Delim); !ok || d != want {
		return fmt.Errorf("want %q, got %v", want, tok)
	}
	return nil
}

// WriteJSON serializes g as a JSON graph document.
func WriteJSON(w io.Writer, g *graph.Graph) error {
	if g == nil {
		return errors.New("graphio: nil graph")
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ToDocument(g))
}
