package graphio

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"strongdecomp/internal/graph"
)

// Document is the JSON graph interchange document:
//
//	{"n": 4, "edges": [[0,1],[1,2],[2,3]]}
//
// It is the inline-graph payload of the HTTP API and the JSON file format
// of Load/Save. Name is optional free-form metadata. Edges is deliberately
// [][]int rather than [][2]int: encoding/json silently truncates oversized
// fixed arrays, and a weighted triple [u,v,w] must be rejected, not
// reinterpreted as the edge [u,v].
type Document struct {
	Name  string  `json:"name,omitempty"`
	N     int     `json:"n"`
	Edges [][]int `json:"edges"`
}

// FromDocument validates a document and builds the graph.
func FromDocument(doc *Document) (*graph.Graph, error) {
	if doc == nil {
		return nil, errors.New("graphio: nil document")
	}
	if doc.N < 0 {
		return nil, fmt.Errorf("graphio: negative node count %d", doc.N)
	}
	if doc.N > MaxNodes {
		return nil, fmt.Errorf("graphio: declared %d nodes exceeds limit %d", doc.N, MaxNodes)
	}
	b := graph.NewBuilder(doc.N)
	for i, e := range doc.Edges {
		if len(e) != 2 {
			return nil, fmt.Errorf("graphio: edge %d has %d endpoints, want 2", i, len(e))
		}
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	return g, nil
}

// ToDocument converts g to its JSON document form.
func ToDocument(g *graph.Graph) *Document {
	edges := make([][]int, 0, g.M())
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				edges = append(edges, []int{u, v})
			}
		}
	}
	return &Document{N: g.N(), Edges: edges}
}

// ReadJSON parses a JSON graph document.
func ReadJSON(r io.Reader) (*graph.Graph, error) {
	dec := json.NewDecoder(r)
	var doc Document
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("graphio: decode json document: %w", err)
	}
	return FromDocument(&doc)
}

// WriteJSON serializes g as a JSON graph document.
func WriteJSON(w io.Writer, g *graph.Graph) error {
	if g == nil {
		return errors.New("graphio: nil graph")
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ToDocument(g))
}
