package graphio

// Binary CSR snapshots: the native persistence format of graph.Graph.
//
// A .csr file is the graph's two flat CSR arrays written verbatim behind a
// fixed header, with a SHA-256 checksum footer over everything before it:
//
//	[0:8)    magic "SDCSRBIN"
//	[8:12)   format version, uint32 LE (currently 1)
//	[12:16)  flags, uint32 LE (reserved, must be 0)
//	[16:24)  n = node count, uint64 LE
//	[24:32)  m = undirected edge count, uint64 LE
//	[32:...) offsets, (n+1)·8 bytes of int64 LE
//	[...:..) targets, 2m·8 bytes of int64 LE
//	[-32:)   SHA-256 over every preceding byte
//
// Because the payload *is* the in-memory representation, loading is not a
// parse: the mmap-backed loader (LoadCSR) verifies the checksum and wraps
// the mapped pages directly as the graph's adjacency arrays — zero copies,
// no Builder pass, no per-edge work. DESIGN.md ("Binary CSR snapshot
// format") documents the layout, versioning, and compatibility rules.
//
// Corruption is a first-class outcome, not a panic: a truncated file, a
// flipped bit, a wrong magic, or an unsupported version all surface as
// errors matching ErrSnapshotCorrupt / ErrSnapshotVersion, which the
// serving layer's tiered store uses to quarantine bad files instead of
// serving them.

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"unsafe"

	"strongdecomp/internal/graph"
)

// Typed snapshot failure modes. Callers branch with errors.Is; the serving
// layer's disk tier quarantines on either.
var (
	// ErrSnapshotCorrupt marks a .csr file whose bytes cannot be a valid
	// snapshot: bad magic, truncation, checksum mismatch, impossible
	// header sizes, or CSR arrays violating the graph invariants.
	ErrSnapshotCorrupt = errors.New("graphio: corrupt csr snapshot")
	// ErrSnapshotVersion marks a structurally plausible snapshot written
	// by a format version this build does not understand.
	ErrSnapshotVersion = errors.New("graphio: unsupported csr snapshot version")
)

// snapshotMagic identifies a binary CSR snapshot; it is the first 8 bytes
// of every .csr file.
const snapshotMagic = "SDCSRBIN"

// SnapshotVersion is the format version this build reads and writes.
// Readers reject other versions with ErrSnapshotVersion rather than
// guessing: the payload is raw memory, so a misread layout would corrupt
// silently. The compatibility policy (DESIGN.md) is: bump on any layout
// change, never reuse a version number.
const SnapshotVersion = 1

// snapshotHeaderLen and snapshotFooterLen frame the payload.
const (
	snapshotHeaderLen = 32
	snapshotFooterLen = sha256.Size
)

// maxSnapshotEdges caps the edge count a snapshot header may declare, so a
// few adversarial header bytes cannot demand a pathological allocation
// (the node cap is the package-wide MaxNodes).
const maxSnapshotEdges = 1 << 33

// wordBytes is the on-disk size of one offsets/targets element.
const wordBytes = 8

// hostIsCastable reports whether this machine can reinterpret the on-disk
// little-endian int64 payload as in-memory []int64/[]int without a
// conversion pass: 64-bit ints and little-endian byte order.
func hostIsCastable() bool {
	one := uint16(1)
	return unsafe.Sizeof(int(0)) == wordBytes && *(*byte)(unsafe.Pointer(&one)) == 1
}

// snapshotSize returns the exact byte length of a snapshot of an n-node,
// m-edge graph.
func snapshotSize(n, m int) int64 {
	return snapshotHeaderLen + int64(n+1)*wordBytes + 2*int64(m)*wordBytes + snapshotFooterLen
}

// WriteCSR writes g to w as a binary CSR snapshot (version
// SnapshotVersion), including the trailing SHA-256 checksum.
func WriteCSR(w io.Writer, g *graph.Graph) error {
	h := sha256.New()
	bw := bufio.NewWriterSize(io.MultiWriter(w, h), 1<<16)

	var hdr [snapshotHeaderLen]byte
	copy(hdr[0:8], snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], SnapshotVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], 0) // flags: reserved
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(g.N()))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(g.M()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("graphio: write snapshot header: %w", err)
	}

	offsets, targets := g.CSR()
	var buf [wordBytes]byte
	for _, o := range offsets {
		binary.LittleEndian.PutUint64(buf[:], uint64(o))
		if _, err := bw.Write(buf[:]); err != nil {
			return fmt.Errorf("graphio: write snapshot offsets: %w", err)
		}
	}
	for _, t := range targets {
		binary.LittleEndian.PutUint64(buf[:], uint64(t))
		if _, err := bw.Write(buf[:]); err != nil {
			return fmt.Errorf("graphio: write snapshot targets: %w", err)
		}
	}
	// The checksum covers header + payload; flush them into the hash
	// before reading its sum, then append the footer (not hashed).
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graphio: write snapshot: %w", err)
	}
	if _, err := w.Write(h.Sum(nil)); err != nil {
		return fmt.Errorf("graphio: write snapshot checksum: %w", err)
	}
	return nil
}

// snapshotHeader is the decoded fixed header of a snapshot.
type snapshotHeader struct {
	version uint32
	n, m    int
}

// parseSnapshotHeader validates magic, version, flags, and declared sizes.
func parseSnapshotHeader(hdr []byte) (snapshotHeader, error) {
	var out snapshotHeader
	if len(hdr) < snapshotHeaderLen {
		return out, fmt.Errorf("%w: %d-byte file is shorter than the %d-byte header", ErrSnapshotCorrupt, len(hdr), snapshotHeaderLen)
	}
	if string(hdr[0:8]) != snapshotMagic {
		return out, fmt.Errorf("%w: bad magic %q", ErrSnapshotCorrupt, hdr[0:8])
	}
	out.version = binary.LittleEndian.Uint32(hdr[8:12])
	if out.version != SnapshotVersion {
		return out, fmt.Errorf("%w: version %d (this build reads %d)", ErrSnapshotVersion, out.version, SnapshotVersion)
	}
	if flags := binary.LittleEndian.Uint32(hdr[12:16]); flags != 0 {
		return out, fmt.Errorf("%w: reserved flags 0x%x set", ErrSnapshotCorrupt, flags)
	}
	n := binary.LittleEndian.Uint64(hdr[16:24])
	m := binary.LittleEndian.Uint64(hdr[24:32])
	if n > MaxNodes {
		return out, fmt.Errorf("%w: header declares %d nodes (cap %d)", ErrSnapshotCorrupt, n, MaxNodes)
	}
	if m > maxSnapshotEdges {
		return out, fmt.Errorf("%w: header declares %d edges (cap %d)", ErrSnapshotCorrupt, m, maxSnapshotEdges)
	}
	out.n, out.m = int(n), int(m)
	return out, nil
}

// ReadCSR reads a binary CSR snapshot from an arbitrary reader, verifying
// the checksum and the full graph invariants. This is the streaming
// (copying) decode path used by Read and by HTTP uploads; opening a local
// file goes through LoadCSR, which maps the payload instead of copying it.
func ReadCSR(r io.Reader) (*graph.Graph, error) {
	h := sha256.New()
	tr := io.TeeReader(r, h)

	var hdrBuf [snapshotHeaderLen]byte
	if _, err := io.ReadFull(tr, hdrBuf[:]); err != nil {
		return nil, fmt.Errorf("%w: reading header: %w", ErrSnapshotCorrupt, err)
	}
	hdr, err := parseSnapshotHeader(hdrBuf[:])
	if err != nil {
		return nil, err
	}

	offsets, err := readInt64Words(tr, hdr.n+1)
	if err != nil {
		return nil, fmt.Errorf("%w: reading offsets: %w", ErrSnapshotCorrupt, err)
	}
	targets, err := readIntWords(tr, 2*hdr.m)
	if err != nil {
		return nil, fmt.Errorf("%w: reading targets: %w", ErrSnapshotCorrupt, err)
	}

	want := h.Sum(nil)
	var got [snapshotFooterLen]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		return nil, fmt.Errorf("%w: reading checksum footer: %w", ErrSnapshotCorrupt, err)
	}
	if !bytes.Equal(want, got[:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrSnapshotCorrupt)
	}

	g, err := graph.NewFromCSR(offsets, targets)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrSnapshotCorrupt, err)
	}
	return g, nil
}

// readInt64Words decodes n little-endian 64-bit words, streaming through
// a fixed chunk buffer. The destination grows with the bytes that
// actually arrive (append, geometric growth) rather than being sized
// from n up front: n comes from an attacker-controllable header, and a
// tiny truncated body must never be able to demand a huge allocation.
func readInt64Words(r io.Reader, n int) ([]int64, error) {
	out := make([]int64, 0, min(n, 4096))
	var chunk [512 * wordBytes]byte
	for len(out) < n {
		want := min((n-len(out))*wordBytes, len(chunk))
		if _, err := io.ReadFull(r, chunk[:want]); err != nil {
			return nil, err
		}
		for o := 0; o < want; o += wordBytes {
			out = append(out, int64(binary.LittleEndian.Uint64(chunk[o:o+wordBytes])))
		}
	}
	return out, nil
}

// readIntWords is readInt64Words for an []int destination (the targets
// array), with the same incremental-allocation defense.
func readIntWords(r io.Reader, n int) ([]int, error) {
	out := make([]int, 0, min(n, 4096))
	var chunk [512 * wordBytes]byte
	for len(out) < n {
		want := min((n-len(out))*wordBytes, len(chunk))
		if _, err := io.ReadFull(r, chunk[:want]); err != nil {
			return nil, err
		}
		for o := 0; o < want; o += wordBytes {
			out = append(out, int(int64(binary.LittleEndian.Uint64(chunk[o:o+wordBytes]))))
		}
	}
	return out, nil
}

// decodeSnapshot builds a graph from a complete in-memory (or mapped)
// snapshot image. With zeroCopy (64-bit little-endian hosts, 8-aligned
// data) the returned graph aliases data; otherwise the arrays are copied
// out. verifyStructure selects the full graph-invariant pass on top of
// the always-on checksum.
func decodeSnapshot(data []byte, zeroCopy, verifyStructure bool) (*graph.Graph, error) {
	hdr, err := parseSnapshotHeader(data)
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != snapshotSize(hdr.n, hdr.m) {
		return nil, fmt.Errorf("%w: file is %d bytes, header implies %d (truncated or padded)",
			ErrSnapshotCorrupt, len(data), snapshotSize(hdr.n, hdr.m))
	}
	body, footer := data[:len(data)-snapshotFooterLen], data[len(data)-snapshotFooterLen:]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], footer) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrSnapshotCorrupt)
	}

	offBytes := body[snapshotHeaderLen : snapshotHeaderLen+(hdr.n+1)*wordBytes]
	tgtBytes := body[snapshotHeaderLen+(hdr.n+1)*wordBytes:]

	var offsets []int64
	var targets []int
	if zeroCopy && hostIsCastable() && uintptr(unsafe.Pointer(&offBytes[0]))%wordBytes == 0 {
		offsets = unsafe.Slice((*int64)(unsafe.Pointer(&offBytes[0])), hdr.n+1)
		targets = []int{}
		if hdr.m > 0 {
			targets = unsafe.Slice((*int)(unsafe.Pointer(&tgtBytes[0])), 2*hdr.m)
		}
	} else {
		offsets = make([]int64, hdr.n+1)
		targets = make([]int, 2*hdr.m)
		for i := range offsets {
			offsets[i] = int64(binary.LittleEndian.Uint64(offBytes[i*wordBytes:]))
		}
		for i := range targets {
			targets[i] = int(int64(binary.LittleEndian.Uint64(tgtBytes[i*wordBytes:])))
		}
	}

	if !verifyStructure {
		return graph.WrapCSR(offsets, targets), nil
	}
	g, err := graph.NewFromCSR(offsets, targets)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrSnapshotCorrupt, err)
	}
	return g, nil
}

// loadSnapshot opens path, preferring an mmap mapping whose lifetime is
// tied to the returned graph (unmapped by a GC cleanup once the graph is
// unreachable); hosts or files that cannot map fall back to a full read.
func loadSnapshot(path string, verifyStructure bool) (*graph.Graph, error) {
	data, unmap, err := mmapFile(path)
	if err != nil {
		// Mapping unavailable (platform, empty file, alignment): read the
		// file into memory and decode from there.
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, fmt.Errorf("graphio: %w", rerr)
		}
		return decodeSnapshot(data, true, verifyStructure)
	}
	g, err := decodeSnapshot(data, true, verifyStructure)
	if err != nil {
		unmap()
		return nil, err
	}
	// The graph's CSR slices alias the mapping; unmap only when the graph
	// itself becomes unreachable. (A copying decode — non-castable host —
	// needs the mapping no longer; unmap immediately then.)
	if off, _ := g.CSR(); len(data) >= snapshotHeaderLen+wordBytes &&
		unsafe.SliceData(off) == (*int64)(unsafe.Pointer(&data[snapshotHeaderLen])) {
		runtime.AddCleanup(g, func(u func()) { u() }, unmap)
	} else {
		unmap()
	}
	return g, nil
}

// LoadCSR opens a binary CSR snapshot file with full verification:
// checksum plus the graph invariant pass. On 64-bit little-endian hosts
// the adjacency arrays are the mapped file pages themselves — no copy, no
// Builder pass; the mapping is released automatically when the graph is
// garbage collected.
func LoadCSR(path string) (*graph.Graph, error) {
	return loadSnapshot(path, true)
}

// LoadCSRTrusted opens a snapshot with checksum verification only,
// skipping the O(m log deg) structural pass. Use it exclusively for files
// this process (or a trusted peer) wrote through WriteCSR — the checksum
// proves the bytes are exactly what the writer produced, and the writer
// only ever serializes valid graphs. The serving layer's disk tier loads
// its own spill files through this path.
func LoadCSRTrusted(path string) (*graph.Graph, error) {
	return loadSnapshot(path, false)
}

// SaveCSR writes g to path as a binary snapshot via an adjacent temp file
// and an atomic rename, so a crash mid-write can never leave a truncated
// file at the final name.
func SaveCSR(path string, g *graph.Graph) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".csr-tmp-*")
	if err != nil {
		return fmt.Errorf("graphio: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := WriteCSR(tmp, g); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("graphio: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("graphio: %w", err)
	}
	return nil
}
