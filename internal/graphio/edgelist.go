package graphio

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"strongdecomp/internal/graph"
)

// ReadEdgeList parses a whitespace edge list: one "u v" pair per line with
// 0-based node ids. Blank lines are skipped; lines starting with '#' or '%'
// are comments, except the directive "# n <count>", which pins the node
// count so graphs with trailing isolated nodes round-trip. Without the
// directive the node count is max(endpoint)+1. Duplicate edges and swapped
// orientations are canonicalized away by the graph builder. Edges stream
// straight into the builder's packed edge buffer — no intermediate edge
// list is materialized.
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	sc := lineScanner(r)
	b := graph.NewAutoBuilder() // infers node count as max endpoint + 1
	declared := 0               // "# n <count>" directive, 0 if absent
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if text[0] == '#' || text[0] == '%' {
			if d, ok, err := edgeListDirective(text); err != nil {
				return nil, fmt.Errorf("edgelist line %d: %w", line, err)
			} else if ok {
				declared = d
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("edgelist line %d: want 2 fields \"u v\", got %d", line, len(fields))
		}
		u, err := parseNode(fields[0])
		if err != nil {
			return nil, fmt.Errorf("edgelist line %d: %w", line, err)
		}
		v, err := parseNode(fields[1])
		if err != nil {
			return nil, fmt.Errorf("edgelist line %d: %w", line, err)
		}
		if u == v {
			return nil, fmt.Errorf("edgelist line %d: self-loop at node %d", line, u)
		}
		b.AddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("edgelist: %w", err)
	}
	if declared > 0 {
		// Errors if an edge already referenced a node >= declared.
		b.DeclareNodes(declared)
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("edgelist: %w", err)
	}
	return g, nil
}

// edgeListDirective recognizes "# n <count>" (or "% n <count>") and returns
// the declared node count.
func edgeListDirective(text string) (int, bool, error) {
	fields := strings.Fields(text[1:])
	if len(fields) != 2 || fields[0] != "n" {
		return 0, false, nil // ordinary comment
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 0 {
		return 0, false, fmt.Errorf("bad node-count directive %q", text)
	}
	if n > MaxNodes {
		return 0, false, fmt.Errorf("declared %d nodes exceeds limit %d", n, MaxNodes)
	}
	return n, true, nil
}

// parseNode parses a 0-based node id, enforcing the MaxNodes cap.
func parseNode(s string) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad node id %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("negative node id %d", v)
	}
	if v >= MaxNodes {
		return 0, fmt.Errorf("node id %d exceeds limit %d", v, MaxNodes)
	}
	return v, nil
}

// WriteEdgeList serializes g as a whitespace edge list, emitting the
// "# n <count>" directive first so node count survives isolated nodes.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	if g == nil {
		return errors.New("edgelist: nil graph")
	}
	bw := newErrWriter(w)
	bw.printf("# n %d\n", g.N())
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				bw.printf("%d %d\n", u, v)
			}
		}
	}
	return bw.err
}

// errWriter folds write errors so serialization loops stay branch-free.
type errWriter struct {
	w   io.Writer
	err error
}

func newErrWriter(w io.Writer) *errWriter { return &errWriter{w: w} }

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
