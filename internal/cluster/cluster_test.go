package cluster

import (
	"testing"

	"strongdecomp/internal/graph"
)

func TestTreeDepthAndValidate(t *testing.T) {
	g := graph.Path(5)
	tr := NewTree(0)
	if err := tr.Add(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.Add(2, 1); err != nil {
		t.Fatal(err)
	}
	if d := tr.Depth(); d != 2 {
		t.Fatalf("depth = %d, want 2", d)
	}
	if err := tr.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestTreeAddRequiresParent(t *testing.T) {
	tr := NewTree(0)
	if err := tr.Add(2, 1); err == nil {
		t.Fatal("attached to absent parent")
	}
}

func TestTreeAddIdempotent(t *testing.T) {
	tr := NewTree(0)
	if err := tr.Add(1, 0); err != nil {
		t.Fatal(err)
	}
	// Second attachment of the same node is a no-op, keeping the original
	// parent (trees never rewire).
	if err := tr.Add(1, 0); err != nil {
		t.Fatal(err)
	}
	if len(tr.Parent) != 2 {
		t.Fatalf("tree has %d nodes", len(tr.Parent))
	}
}

func TestTreeValidateRejectsNonEdges(t *testing.T) {
	g := graph.Path(5)
	tr := NewTree(0)
	tr.Parent[3] = 0 // 0-3 is not an edge of the path
	if err := tr.Validate(g); err == nil {
		t.Fatal("non-edge accepted")
	}
}

func TestTreeValidateRejectsBadRoot(t *testing.T) {
	g := graph.Path(3)
	tr := NewTree(0)
	tr.Parent[0] = 1
	tr.Parent[1] = 0
	if err := tr.Validate(g); err == nil {
		t.Fatal("root with parent accepted")
	}
}

func TestCarvingMembersAndDeadFraction(t *testing.T) {
	c := &Carving{Assign: []int{0, 0, Unclustered, 1, 1, Unclustered}, K: 2}
	members := c.Members()
	if len(members[0]) != 2 || len(members[1]) != 2 {
		t.Fatalf("members %v", members)
	}
	if f := c.DeadFraction(nil); f != 2.0/6.0 {
		t.Fatalf("dead fraction %f", f)
	}
	if f := c.DeadFraction([]int{0, 2}); f != 0.5 {
		t.Fatalf("restricted dead fraction %f", f)
	}
	if f := c.DeadFraction([]int{}); f != 0 {
		t.Fatalf("empty-set dead fraction %f", f)
	}
}

func TestCheckCarvingAcceptsValid(t *testing.T) {
	g := graph.Path(6)
	// Clusters {0,1} and {4,5}; nodes 2,3 dead. Non-adjacent, diameter 1.
	c := &Carving{Assign: []int{0, 0, Unclustered, Unclustered, 1, 1}, K: 2}
	if err := CheckCarving(g, nil, c, 0.34, 1); err != nil {
		t.Fatal(err)
	}
}

func TestCheckCarvingRejectsAdjacentClusters(t *testing.T) {
	g := graph.Path(4)
	c := &Carving{Assign: []int{0, 0, 1, 1}, K: 2}
	if err := CheckCarving(g, nil, c, 1, -1); err == nil {
		t.Fatal("adjacent clusters accepted")
	}
}

func TestCheckCarvingRejectsExcessDead(t *testing.T) {
	g := graph.Path(10)
	assign := make([]int, 10)
	for i := range assign {
		assign[i] = Unclustered
	}
	assign[0] = 0
	c := &Carving{Assign: assign, K: 1}
	if err := CheckCarving(g, nil, c, 0.5, -1); err == nil {
		t.Fatal("90% dead accepted at eps=0.5")
	}
}

func TestCheckCarvingRejectsDisconnectedCluster(t *testing.T) {
	g := graph.Path(5)
	c := &Carving{Assign: []int{0, Unclustered, 0, Unclustered, Unclustered}, K: 1}
	// Non-adjacency holds, but cluster 0 = {0,2} is disconnected: must fail
	// the strong-diameter check and pass without it.
	if err := CheckCarving(g, nil, c, 0.8, -1); err != nil {
		t.Fatalf("diameterless check failed: %v", err)
	}
	if err := CheckCarving(g, nil, c, 0.8, 10); err == nil {
		t.Fatal("disconnected cluster accepted with diameter bound")
	}
}

func TestCheckCarvingRejectsDiameterViolation(t *testing.T) {
	g := graph.Path(6)
	assign := []int{0, 0, 0, 0, 0, 0}
	c := &Carving{Assign: assign, K: 1}
	if err := CheckCarving(g, nil, c, 0, 3); err == nil {
		t.Fatal("diameter 5 accepted with bound 3")
	}
	if err := CheckCarving(g, nil, c, 0, 5); err != nil {
		t.Fatal(err)
	}
}

func TestCheckCarvingRespectsAliveMask(t *testing.T) {
	g := graph.Path(4)
	alive := []bool{true, true, false, false}
	c := &Carving{Assign: []int{0, 0, Unclustered, Unclustered}, K: 1}
	if err := CheckCarving(g, alive, c, 0, 1); err != nil {
		t.Fatal(err)
	}
	// Assigning a dead node must fail.
	c2 := &Carving{Assign: []int{0, 0, 0, Unclustered}, K: 1}
	if err := CheckCarving(g, alive, c2, 0, -1); err == nil {
		t.Fatal("assignment of non-alive node accepted")
	}
}

func TestCheckCarvingRejectsEmptyCluster(t *testing.T) {
	g := graph.Path(3)
	c := &Carving{Assign: []int{0, 0, Unclustered}, K: 2}
	if err := CheckCarving(g, nil, c, 1, -1); err == nil {
		t.Fatal("empty cluster id accepted")
	}
}

func TestCheckWeakCarving(t *testing.T) {
	// Cycle of 6: cluster {0, 2} with Steiner relay 1, cluster {4}.
	g := graph.Cycle(6)
	tr0 := NewTree(0)
	if err := tr0.Add(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := tr0.Add(2, 1); err != nil {
		t.Fatal(err)
	}
	tr1 := NewTree(4)
	c := &Carving{
		Assign: []int{0, Unclustered, 0, Unclustered, 1, Unclustered},
		K:      2,
		Trees:  []*Tree{tr0, tr1},
	}
	if err := CheckWeakCarving(g, nil, c, 0.5, 2, 1); err != nil {
		t.Fatal(err)
	}
	// Depth bound violation.
	if err := CheckWeakCarving(g, nil, c, 0.5, 1, 1); err == nil {
		t.Fatal("depth 2 accepted with bound 1")
	}
	// Member missing from tree.
	c2 := &Carving{
		Assign: c.Assign,
		K:      2,
		Trees:  []*Tree{NewTree(0), tr1},
	}
	if err := CheckWeakCarving(g, nil, c2, 0.5, 2, 1); err == nil {
		t.Fatal("member outside tree accepted")
	}
}

func TestCheckWeakCarvingCongestion(t *testing.T) {
	// Path 0-1-2 with clusters {0} and {2}; node 1 dead but used as a
	// Steiner relay by both trees, so edge 0-1 has congestion 2: tree A is
	// 0 -> 1, tree B is 2 -> 1 -> 0.
	g := graph.Path(3)
	trA := NewTree(0)
	if err := trA.Add(1, 0); err != nil {
		t.Fatal(err)
	}
	trB := NewTree(2)
	if err := trB.Add(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := trB.Add(0, 1); err != nil {
		t.Fatal(err)
	}
	c := &Carving{
		Assign: []int{0, Unclustered, 1},
		K:      2,
		Trees:  []*Tree{trA, trB},
	}
	if err := CheckWeakCarving(g, nil, c, 0.5, 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := CheckWeakCarving(g, nil, c, 0.5, 2, 1); err == nil {
		t.Fatal("congestion 2 accepted with bound 1")
	}
}

func TestCheckDecomposition(t *testing.T) {
	g := graph.Path(6)
	d := &Decomposition{
		Assign: []int{0, 0, 1, 1, 2, 2},
		Color:  []int{0, 1, 0},
		K:      3,
		Colors: 2,
	}
	if err := CheckDecomposition(g, d, 1, true); err != nil {
		t.Fatal(err)
	}
	// Recolor so clusters 0 and 1 (adjacent) share a color: must fail.
	bad := &Decomposition{Assign: d.Assign, Color: []int{0, 0, 1}, K: 3, Colors: 2}
	if err := CheckDecomposition(g, bad, 1, true); err == nil {
		t.Fatal("same-color adjacency accepted")
	}
}

func TestCheckDecompositionRejectsUnassigned(t *testing.T) {
	g := graph.Path(2)
	d := &Decomposition{Assign: []int{0, Unclustered}, Color: []int{0}, K: 1, Colors: 1}
	if err := CheckDecomposition(g, d, -1, true); err == nil {
		t.Fatal("unassigned node accepted")
	}
}

func TestCheckDecompositionWeakDiameter(t *testing.T) {
	// Cluster {0, 2} on a path 0-1-2 where 1 is its own cluster: weak
	// diameter 2 through node 1, strong diameter undefined (disconnected).
	g := graph.Path(3)
	d := &Decomposition{
		Assign: []int{0, 1, 0},
		Color:  []int{0, 1},
		K:      2,
		Colors: 2,
	}
	if err := CheckDecomposition(g, d, 2, false); err != nil {
		t.Fatal(err)
	}
	if err := CheckDecomposition(g, d, 2, true); err == nil {
		t.Fatal("weakly-connected cluster accepted as strong")
	}
}

func TestNodeColor(t *testing.T) {
	d := &Decomposition{Assign: []int{1, 0}, Color: []int{3, 5}, K: 2, Colors: 6}
	if d.NodeColor(0) != 5 || d.NodeColor(1) != 3 {
		t.Fatalf("node colors wrong")
	}
}

func TestMaxDiameterHelpers(t *testing.T) {
	g := graph.Path(6)
	members := [][]int{{0, 1, 2}, {4, 5}}
	if d := MaxStrongDiameter(g, members); d != 2 {
		t.Fatalf("max strong %d", d)
	}
	if d := MaxWeakDiameter(g, members); d != 2 {
		t.Fatalf("max weak %d", d)
	}
	if d := MaxStrongDiameter(g, [][]int{{0, 2}}); d != -1 {
		t.Fatalf("disconnected max strong %d", d)
	}
}
