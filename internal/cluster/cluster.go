// Package cluster defines the output types shared by every decomposition and
// ball-carving algorithm in this repository — carvings, colored
// decompositions, and Steiner trees — together with the validators that the
// test suite and cmd/verify use as correctness oracles.
//
// Terminology follows the paper:
//
//   - A (C, D) strong-diameter network decomposition partitions the nodes
//     into clusters colored with C colors so that same-color clusters are
//     non-adjacent and each cluster's induced subgraph has diameter <= D.
//   - A strong-diameter ball carving with boundary parameter ε removes at
//     most an ε fraction of nodes and clusters the rest into non-adjacent
//     clusters of bounded induced diameter.
//   - A weak-diameter carving relaxes the diameter to be measured in the
//     host graph and augments each cluster with a Steiner tree of bounded
//     depth; each edge may appear in at most L trees (congestion).
package cluster

import (
	"fmt"

	"strongdecomp/internal/graph"
)

// Unclustered marks a node that belongs to no cluster (dead/removed).
const Unclustered = -1

// Tree is a Steiner tree over the host graph: Parent maps each tree node to
// its parent (the root maps to -1). Tree nodes may include relay nodes that
// are not cluster members; that is exactly what makes a cluster's diameter
// "weak".
type Tree struct {
	Root   int
	Parent map[int]int
}

// NewTree returns a tree containing only the root.
func NewTree(root int) *Tree {
	return &Tree{Root: root, Parent: map[int]int{root: -1}}
}

// Add attaches node v with parent p. The parent must already be in the tree.
func (t *Tree) Add(v, p int) error {
	if _, ok := t.Parent[p]; !ok {
		return fmt.Errorf("cluster: tree parent %d not in tree", p)
	}
	if _, ok := t.Parent[v]; ok {
		return nil // already present; keep the first attachment
	}
	t.Parent[v] = p
	return nil
}

// Has reports whether v is a tree node (member or relay).
func (t *Tree) Has(v int) bool {
	_, ok := t.Parent[v]
	return ok
}

// Depth returns the maximum root-to-node hop distance in the tree.
func (t *Tree) Depth() int {
	depth := make(map[int]int, len(t.Parent))
	var walk func(v int) int
	walk = func(v int) int {
		if v == t.Root {
			return 0
		}
		if d, ok := depth[v]; ok {
			return d
		}
		d := walk(t.Parent[v]) + 1
		depth[v] = d
		return d
	}
	max := 0
	for v := range t.Parent {
		if d := walk(v); d > max {
			max = d
		}
	}
	return max
}

// DepthOf returns the hop distance from v to the root along parent pointers,
// or -1 if v is not in the tree or the walk does not terminate.
func (t *Tree) DepthOf(v int) int {
	if _, ok := t.Parent[v]; !ok {
		return -1
	}
	d := 0
	for u := v; u != t.Root; u = t.Parent[u] {
		d++
		if d > len(t.Parent) {
			return -1
		}
	}
	return d
}

// Validate checks that the tree's edges exist in g and that every node
// reaches the root.
func (t *Tree) Validate(g *graph.Graph) error {
	for v, p := range t.Parent {
		if v == t.Root {
			if p != -1 {
				return fmt.Errorf("cluster: root %d has parent %d", v, p)
			}
			continue
		}
		if p < 0 || !g.HasEdge(v, p) {
			return fmt.Errorf("cluster: tree edge (%d,%d) not in graph", v, p)
		}
	}
	// Reachability: every node must reach the root without cycles.
	for v := range t.Parent {
		seen := 0
		for u := v; u != t.Root; u = t.Parent[u] {
			seen++
			if seen > len(t.Parent) {
				return fmt.Errorf("cluster: cycle in tree at %d", v)
			}
			if _, ok := t.Parent[u]; !ok {
				return fmt.Errorf("cluster: dangling tree node %d", u)
			}
		}
	}
	return nil
}

// Carving is the result of a ball-carving algorithm on a host graph: an
// assignment of surviving nodes to clusters. Dead (removed) nodes have
// Assign[v] == Unclustered. Centers and Trees are optional per-cluster
// metadata (weak carvers provide Steiner trees; strong carvers provide
// centers).
type Carving struct {
	Assign  []int   // node -> cluster id in [0, K) or Unclustered
	K       int     // number of clusters
	Centers []int   // cluster -> center node (optional, nil if absent)
	Trees   []*Tree // cluster -> Steiner tree (optional, nil if absent)
}

// Members returns per-cluster sorted member lists.
func (c *Carving) Members() [][]int {
	members := make([][]int, c.K)
	for v, cl := range c.Assign {
		if cl != Unclustered {
			members[cl] = append(members[cl], v)
		}
	}
	return members
}

// DeadFraction returns the fraction of nodes with no cluster, restricted to
// the given node set (nil means all nodes).
func (c *Carving) DeadFraction(nodes []int) float64 {
	if nodes == nil {
		dead := 0
		for _, cl := range c.Assign {
			if cl == Unclustered {
				dead++
			}
		}
		if len(c.Assign) == 0 {
			return 0
		}
		return float64(dead) / float64(len(c.Assign))
	}
	dead := 0
	for _, v := range nodes {
		if c.Assign[v] == Unclustered {
			dead++
		}
	}
	if len(nodes) == 0 {
		return 0
	}
	return float64(dead) / float64(len(nodes))
}

// Decomposition is a colored clustering of all nodes of the host graph.
type Decomposition struct {
	Assign  []int // node -> cluster id in [0, K)
	Color   []int // cluster -> color in [0, NumColors)
	K       int
	Colors  int   // number of colors
	Centers []int // optional cluster centers
}

// NodeColor returns the color of node v's cluster.
func (d *Decomposition) NodeColor(v int) int { return d.Color[d.Assign[v]] }

// Members returns per-cluster sorted member lists.
func (d *Decomposition) Members() [][]int {
	members := make([][]int, d.K)
	for v, cl := range d.Assign {
		members[cl] = append(members[cl], v)
	}
	return members
}
