package cluster

import (
	"testing"
)

func TestCarvingClusters(t *testing.T) {
	c := &Carving{
		Assign:  []int{1, Unclustered, 0, 1, 0, Unclustered, 2},
		K:       3,
		Centers: []int{2, 0, 6},
	}
	var got []ClusterView
	for v := range c.Clusters() {
		members := append([]int(nil), v.Members...) // views share a buffer
		got = append(got, ClusterView{ID: v.ID, Color: v.Color, Center: v.Center, Members: members})
	}
	want := []ClusterView{
		{ID: 0, Color: -1, Center: 2, Members: []int{2, 4}},
		{ID: 1, Color: -1, Center: 0, Members: []int{0, 3}},
		{ID: 2, Color: -1, Center: 6, Members: []int{6}},
	}
	checkViews(t, got, want)
}

func TestDecompositionClusters(t *testing.T) {
	d := &Decomposition{
		Assign: []int{0, 1, 0, 2, 1},
		Color:  []int{0, 1, 0},
		K:      3,
		Colors: 2,
	}
	var got []ClusterView
	for v := range d.Clusters() {
		members := append([]int(nil), v.Members...)
		got = append(got, ClusterView{ID: v.ID, Color: v.Color, Center: v.Center, Members: members})
	}
	want := []ClusterView{
		{ID: 0, Color: 0, Center: -1, Members: []int{0, 2}},
		{ID: 1, Color: 1, Center: -1, Members: []int{1, 4}},
		{ID: 2, Color: 0, Center: -1, Members: []int{3}},
	}
	checkViews(t, got, want)
}

// TestClustersMatchesMembers: the streaming iterator and the materializing
// Members() agree on every cluster, and early termination is honored.
func TestClustersMatchesMembers(t *testing.T) {
	d := &Decomposition{
		Assign: []int{3, 0, 1, 2, 3, 0, 1, 2, 0},
		Color:  []int{0, 1, 0, 1},
		K:      4,
		Colors: 2,
	}
	members := d.Members()
	n := 0
	for v := range d.Clusters() {
		if len(v.Members) != len(members[v.ID]) {
			t.Fatalf("cluster %d: %d members streamed, %d materialized", v.ID, len(v.Members), len(members[v.ID]))
		}
		for i, m := range v.Members {
			if m != members[v.ID][i] {
				t.Fatalf("cluster %d member %d: %d vs %d", v.ID, i, m, members[v.ID][i])
			}
		}
		n++
	}
	if n != d.K {
		t.Fatalf("streamed %d clusters, want %d", n, d.K)
	}

	stopped := 0
	for range d.Clusters() {
		stopped++
		break
	}
	if stopped != 1 {
		t.Fatal("early break not honored")
	}
}

func TestClustersAllocations(t *testing.T) {
	assign := make([]int, 4096)
	color := make([]int, 8)
	for i := range assign {
		assign[i] = i % 8
	}
	d := &Decomposition{Assign: assign, Color: color, K: 8, Colors: 1}
	allocs := testing.AllocsPerRun(10, func() {
		for v := range d.Clusters() {
			_ = v.Members
		}
	})
	// One offsets + one order + one next slice per full iteration; the
	// per-cluster views must not allocate.
	if allocs > 4 {
		t.Errorf("full iteration allocates %v times, want <= 4", allocs)
	}
}

func checkViews(t *testing.T, got, want []ClusterView) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("yielded %d clusters, want %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.ID != w.ID || g.Color != w.Color || g.Center != w.Center {
			t.Errorf("cluster %d: got %+v, want %+v", i, g, w)
		}
		if len(g.Members) != len(w.Members) {
			t.Errorf("cluster %d: members %v, want %v", i, g.Members, w.Members)
			continue
		}
		for j := range w.Members {
			if g.Members[j] != w.Members[j] {
				t.Errorf("cluster %d: members %v, want %v", i, g.Members, w.Members)
				break
			}
		}
	}
}
