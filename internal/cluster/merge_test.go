package cluster

import "testing"

func TestMergeDecompositions(t *testing.T) {
	// Two pieces over a 5-node host: nodes {0,2,4} and {1,3}.
	a := &Decomposition{Assign: []int{0, 1, 0}, Color: []int{0, 1}, K: 2, Colors: 2, Centers: []int{0, 1}}
	b := &Decomposition{Assign: []int{0, 0}, Color: []int{0}, K: 1, Colors: 1, Centers: []int{1}}
	d, err := MergeDecompositions(5, []Piece{
		{D: a, NodeOf: []int{0, 2, 4}},
		{D: b, NodeOf: []int{1, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantAssign := []int{0, 2, 1, 2, 0}
	for v, cl := range d.Assign {
		if cl != wantAssign[v] {
			t.Fatalf("node %d assigned %d, want %d", v, cl, wantAssign[v])
		}
	}
	if d.K != 3 || d.Colors != 2 {
		t.Fatalf("K=%d Colors=%d, want 3/2", d.K, d.Colors)
	}
	if d.Centers[2] != 3 {
		t.Fatalf("piece-b center not remapped: %v", d.Centers)
	}
}

func TestMergeDecompositionsErrors(t *testing.T) {
	full := &Decomposition{Assign: []int{0}, Color: []int{0}, K: 1, Colors: 1}
	if _, err := MergeDecompositions(2, []Piece{{D: full, NodeOf: []int{0}}}); err == nil {
		t.Fatal("uncovered node accepted")
	}
	if _, err := MergeDecompositions(1, []Piece{
		{D: full, NodeOf: []int{0}},
		{D: full, NodeOf: []int{0}},
	}); err == nil {
		t.Fatal("overlapping pieces accepted")
	}
	if _, err := MergeDecompositions(1, []Piece{{D: full, NodeOf: []int{5}}}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := MergeDecompositions(1, []Piece{{NodeOf: []int{0}}}); err == nil {
		t.Fatal("piece without decomposition accepted")
	}
	if _, err := MergeDecompositions(1, []Piece{{D: full, NodeOf: []int{0, 1}}}); err == nil {
		t.Fatal("mismatched assignment length accepted")
	}
}

func TestMergeCarvings(t *testing.T) {
	a := &Carving{Assign: []int{0, Unclustered}, K: 1, Centers: []int{0}}
	b := &Carving{Assign: []int{0}, K: 1, Centers: []int{0}}
	c, err := MergeCarvings(3, []Piece{
		{C: a, NodeOf: []int{0, 1}},
		{C: b, NodeOf: []int{2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, Unclustered, 1}
	for v, cl := range c.Assign {
		if cl != want[v] {
			t.Fatalf("node %d assigned %d, want %d", v, cl, want[v])
		}
	}
	if c.K != 2 || c.Centers[1] != 2 {
		t.Fatalf("bad merge: %+v", c)
	}
}
