package cluster

import (
	"fmt"

	"strongdecomp/internal/graph"
)

// CheckEdgeCut verifies the properties shared by weak and strong
// edge-version carvings of the subgraph induced by nodes (nil = all of g):
//
//   - every node of the subgraph is assigned to a cluster (no node dies);
//   - at most an eps fraction of the subgraph's edges is cut;
//   - every remaining (uncut) edge joins two nodes of the same cluster.
func CheckEdgeCut(g *graph.Graph, nodes []int, assign []int, k int, cut [][2]int, eps float64) error {
	if len(assign) != g.N() {
		return fmt.Errorf("edge carving: assign length %d, want %d", len(assign), g.N())
	}
	if nodes == nil {
		nodes = make([]int, g.N())
		for i := range nodes {
			nodes[i] = i
		}
	}
	inSet := make([]bool, g.N())
	for _, v := range nodes {
		inSet[v] = true
	}
	seen := make([]bool, k)
	for _, v := range nodes {
		cl := assign[v]
		if cl < 0 || cl >= k {
			return fmt.Errorf("edge carving: node %d unassigned or out of range (%d)", v, cl)
		}
		seen[cl] = true
	}
	for cl, ok := range seen {
		if !ok {
			return fmt.Errorf("edge carving: cluster %d empty", cl)
		}
	}
	isCut := make(map[[2]int]bool, len(cut))
	for _, e := range cut {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		if !g.HasEdge(u, v) {
			return fmt.Errorf("edge carving: cut edge (%d,%d) not in graph", u, v)
		}
		if !inSet[u] || !inSet[v] {
			return fmt.Errorf("edge carving: cut edge (%d,%d) outside the subgraph", u, v)
		}
		isCut[[2]int{u, v}] = true
	}
	// Edge budget.
	total := 0
	for _, v := range nodes {
		for _, u := range g.Neighbors(v) {
			if v < u && inSet[u] {
				total++
			}
		}
	}
	if total > 0 {
		frac := float64(len(isCut)) / float64(total)
		if frac > eps+1.0/float64(total)+1e-9 {
			return fmt.Errorf("edge carving: cut fraction %.4f exceeds eps %.4f", frac, eps)
		}
	}
	// Remaining edges are intra-cluster.
	for _, v := range nodes {
		for _, u := range g.Neighbors(v) {
			if v >= u || !inSet[u] {
				continue
			}
			if isCut[[2]int{v, u}] {
				continue
			}
			if assign[v] != assign[u] {
				return fmt.Errorf("edge carving: remaining edge (%d,%d) crosses clusters %d,%d",
					v, u, assign[v], assign[u])
			}
		}
	}
	return nil
}

// CheckEdgeCarving verifies a *strong* edge-version ball carving: the shared
// CheckEdgeCut properties plus connectivity of every cluster in the
// remaining graph and, when maxDiam >= 0, its diameter bound there.
func CheckEdgeCarving(g *graph.Graph, nodes []int, assign []int, k int, cut [][2]int, eps float64, maxDiam int) error {
	if err := CheckEdgeCut(g, nodes, assign, k, cut, eps); err != nil {
		return err
	}
	if nodes == nil {
		nodes = make([]int, g.N())
		for i := range nodes {
			nodes[i] = i
		}
	}
	isCut := make(map[[2]int]bool, len(cut))
	for _, e := range cut {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		isCut[[2]int{u, v}] = true
	}
	members := make([][]int, k)
	for _, v := range nodes {
		members[assign[v]] = append(members[assign[v]], v)
	}
	dist := make([]int, g.N())
	for cl, ms := range members {
		d, ok := remainingDiameter(g, ms, isCut, dist)
		if !ok {
			return fmt.Errorf("edge carving: cluster %d disconnected in the remaining graph", cl)
		}
		if maxDiam >= 0 && d > maxDiam {
			return fmt.Errorf("edge carving: cluster %d diameter %d exceeds %d", cl, d, maxDiam)
		}
	}
	return nil
}

// remainingDiameter computes the exact diameter of the cluster within the
// remaining graph (cluster nodes, uncut edges), or ok=false if disconnected.
func remainingDiameter(g *graph.Graph, members []int, isCut map[[2]int]bool, dist []int) (int, bool) {
	if len(members) <= 1 {
		return 0, true
	}
	in := make(map[int]bool, len(members))
	for _, v := range members {
		in[v] = true
	}
	diam := 0
	for _, src := range members {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.Neighbors(u) {
				if !in[v] || dist[v] != -1 {
					continue
				}
				a, b := u, v
				if a > b {
					a, b = b, a
				}
				if isCut[[2]int{a, b}] {
					continue
				}
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
		if len(queue) != len(members) {
			return 0, false
		}
		if d := dist[queue[len(queue)-1]]; d > diam {
			diam = d
		}
	}
	return diam, true
}
