package cluster

import "fmt"

// Piece is a decomposition or carving computed on an induced subgraph,
// together with the mapping from subgraph node IDs back to host-graph node
// IDs (NodeOf[local] = host). The Engine decomposes connected components
// independently — in the distributed model they literally run in parallel —
// and merges the pieces back into a host-graph result.
type Piece struct {
	D      *Decomposition
	C      *Carving
	NodeOf []int
}

// MergeDecompositions combines per-component decompositions into one
// decomposition of an n-node host graph. Cluster IDs are offset per piece;
// colors are reused across pieces, which is sound because distinct
// components are non-adjacent, so the merged color count is the maximum
// over pieces rather than the sum.
func MergeDecompositions(n int, pieces []Piece) (*Decomposition, error) {
	out := &Decomposition{Assign: make([]int, n)}
	for i := range out.Assign {
		out.Assign[i] = Unclustered
	}
	for _, p := range pieces {
		if p.D == nil {
			return nil, fmt.Errorf("cluster: merge piece without decomposition")
		}
		if len(p.D.Assign) != len(p.NodeOf) {
			return nil, fmt.Errorf("cluster: merge piece has %d assignments for %d nodes",
				len(p.D.Assign), len(p.NodeOf))
		}
		base := out.K
		for local, cl := range p.D.Assign {
			host := p.NodeOf[local]
			if host < 0 || host >= n {
				return nil, fmt.Errorf("cluster: merge node %d outside host graph", host)
			}
			if out.Assign[host] != Unclustered {
				return nil, fmt.Errorf("cluster: merge pieces overlap at node %d", host)
			}
			out.Assign[host] = base + cl
		}
		out.Color = append(out.Color, p.D.Color...)
		for _, c := range p.D.Centers {
			if c >= 0 && c < len(p.NodeOf) {
				out.Centers = append(out.Centers, p.NodeOf[c])
			} else {
				out.Centers = append(out.Centers, c)
			}
		}
		out.K += p.D.K
		if p.D.Colors > out.Colors {
			out.Colors = p.D.Colors
		}
	}
	for v, cl := range out.Assign {
		if cl == Unclustered {
			return nil, fmt.Errorf("cluster: merge left node %d unassigned", v)
		}
	}
	return out, nil
}

// MergeCarvings combines per-component carvings into one carving of an
// n-node host graph; nodes covered by no piece stay Unclustered (dead).
// Optional per-cluster Steiner trees are dropped: their node IDs are
// subgraph-local and no current caller consumes them across a merge.
func MergeCarvings(n int, pieces []Piece) (*Carving, error) {
	out := &Carving{Assign: make([]int, n)}
	for i := range out.Assign {
		out.Assign[i] = Unclustered
	}
	for _, p := range pieces {
		if p.C == nil {
			return nil, fmt.Errorf("cluster: merge piece without carving")
		}
		if len(p.C.Assign) != len(p.NodeOf) {
			return nil, fmt.Errorf("cluster: merge piece has %d assignments for %d nodes",
				len(p.C.Assign), len(p.NodeOf))
		}
		base := out.K
		for local, cl := range p.C.Assign {
			if cl == Unclustered {
				continue
			}
			host := p.NodeOf[local]
			if host < 0 || host >= n {
				return nil, fmt.Errorf("cluster: merge node %d outside host graph", host)
			}
			if out.Assign[host] != Unclustered {
				return nil, fmt.Errorf("cluster: merge pieces overlap at node %d", host)
			}
			out.Assign[host] = base + cl
		}
		for _, c := range p.C.Centers {
			if c >= 0 && c < len(p.NodeOf) {
				out.Centers = append(out.Centers, p.NodeOf[c])
			} else {
				out.Centers = append(out.Centers, c)
			}
		}
		out.K += p.C.K
	}
	return out, nil
}
