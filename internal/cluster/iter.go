package cluster

// Streaming cluster iteration. Serving multi-million-node results as one
// JSON document needs a second full in-memory representation (per-cluster
// [][]int member lists, or one giant assign array inside an encoder
// buffer). The iterators here yield one cluster at a time over a single
// counting-scatter permutation of the assignment — O(n) ints once, with
// every yielded member list a zero-copy view into that shared buffer — so
// an NDJSON encoder can stream clusters straight to the wire.

import "iter"

// ClusterView is one cluster yielded during streaming iteration.
type ClusterView struct {
	// ID is the cluster id in [0, K).
	ID int
	// Color is the cluster color for decompositions, -1 for carvings.
	Color int
	// Center is the cluster center when the construction reported one,
	// -1 otherwise.
	Center int
	// Members are the cluster's nodes in ascending order. The slice is a
	// read-only view into a buffer shared by the whole iteration — copy
	// it if it must outlive the yield.
	Members []int
}

// memberIndex is the counting-scatter layout shared by both iterators:
// order holds the nodes of cluster c at order[offsets[c]:offsets[c+1]],
// ascending within each cluster (nodes are scanned in increasing order).
func memberIndex(assign []int, k int) (offsets []int, order []int) {
	offsets = make([]int, k+1)
	kept := 0
	for _, c := range assign {
		if c != Unclustered {
			offsets[c+1]++
			kept++
		}
	}
	for c := 0; c < k; c++ {
		offsets[c+1] += offsets[c]
	}
	order = make([]int, kept)
	next := make([]int, k)
	copy(next, offsets[:k])
	for v, c := range assign {
		if c != Unclustered {
			order[next[c]] = v
			next[c]++
		}
	}
	return offsets, order
}

// Clusters iterates the carving's clusters in id order. Dead nodes
// (Assign == Unclustered) belong to no yielded cluster; consumers
// reconstructing an assignment mark missing nodes Unclustered.
func (c *Carving) Clusters() iter.Seq[ClusterView] {
	return func(yield func(ClusterView) bool) {
		offsets, order := memberIndex(c.Assign, c.K)
		for id := 0; id < c.K; id++ {
			center := -1
			if id < len(c.Centers) {
				center = c.Centers[id]
			}
			v := ClusterView{
				ID:      id,
				Color:   -1,
				Center:  center,
				Members: order[offsets[id]:offsets[id+1]],
			}
			if !yield(v) {
				return
			}
		}
	}
}

// Clusters iterates the decomposition's clusters in id order.
func (d *Decomposition) Clusters() iter.Seq[ClusterView] {
	return func(yield func(ClusterView) bool) {
		offsets, order := memberIndex(d.Assign, d.K)
		for id := 0; id < d.K; id++ {
			center := -1
			if id < len(d.Centers) {
				center = d.Centers[id]
			}
			v := ClusterView{
				ID:      id,
				Color:   d.Color[id],
				Center:  center,
				Members: order[offsets[id]:offsets[id+1]],
			}
			if !yield(v) {
				return
			}
		}
	}
}
