package cluster

import (
	"fmt"

	"strongdecomp/internal/graph"
)

// This file implements the correctness oracles. They are deliberately
// written as independent, brute-force re-derivations of each property so the
// algorithms cannot share a bug with their validator.

// CheckCarving verifies the defining properties of a ball carving of the
// alive subgraph of g (alive == nil means the whole graph):
//
//   - assignment shape: cluster ids are dense in [0, K), only alive nodes
//     are assigned;
//   - dead fraction <= eps (+ slack for integer rounding of one node);
//   - distinct clusters are non-adjacent;
//   - if maxStrongDiam >= 0, each cluster induces a connected subgraph of
//     diameter <= maxStrongDiam.
func CheckCarving(g *graph.Graph, alive []bool, c *Carving, eps float64, maxStrongDiam int) error {
	if len(c.Assign) != g.N() {
		return fmt.Errorf("carving: assign length %d, want %d", len(c.Assign), g.N())
	}
	seen := make([]bool, c.K)
	total, dead := 0, 0
	for v, cl := range c.Assign {
		if alive != nil && !alive[v] {
			if cl != Unclustered {
				return fmt.Errorf("carving: non-alive node %d assigned to %d", v, cl)
			}
			continue
		}
		total++
		if cl == Unclustered {
			dead++
			continue
		}
		if cl < 0 || cl >= c.K {
			return fmt.Errorf("carving: node %d has cluster %d out of [0,%d)", v, cl, c.K)
		}
		seen[cl] = true
	}
	for cl, ok := range seen {
		if !ok {
			return fmt.Errorf("carving: cluster %d is empty", cl)
		}
	}
	if total > 0 {
		frac := float64(dead) / float64(total)
		// One extra node of slack absorbs the integer rounding that the
		// paper's fractional bounds allow.
		slack := 1.0 / float64(total)
		if frac > eps+slack+1e-9 {
			return fmt.Errorf("carving: dead fraction %.4f exceeds eps %.4f", frac, eps)
		}
	}
	if err := checkNonAdjacent(g, c.Assign); err != nil {
		return err
	}
	if maxStrongDiam >= 0 {
		for cl, members := range c.Members() {
			d := graph.StrongDiameter(g, members)
			if d < 0 {
				return fmt.Errorf("carving: cluster %d induces a disconnected subgraph", cl)
			}
			if d > maxStrongDiam {
				return fmt.Errorf("carving: cluster %d strong diameter %d exceeds %d", cl, d, maxStrongDiam)
			}
		}
	}
	return nil
}

// CheckWeakCarving verifies a weak-diameter carving: assignment shape, dead
// fraction, non-adjacency, Steiner trees valid in g with depth <= maxDepth,
// every member a tree node, and per-edge tree congestion <= maxCongestion.
func CheckWeakCarving(g *graph.Graph, alive []bool, c *Carving, eps float64, maxDepth, maxCongestion int) error {
	if err := CheckCarving(g, alive, c, eps, -1); err != nil {
		return err
	}
	if len(c.Trees) != c.K {
		return fmt.Errorf("weak carving: %d trees for %d clusters", len(c.Trees), c.K)
	}
	members := c.Members()
	congestion := make(map[[2]int]int)
	for cl, t := range c.Trees {
		if t == nil {
			return fmt.Errorf("weak carving: cluster %d has no tree", cl)
		}
		if err := t.Validate(g); err != nil {
			return fmt.Errorf("weak carving: cluster %d: %w", cl, err)
		}
		for _, v := range members[cl] {
			if !t.Has(v) {
				return fmt.Errorf("weak carving: member %d of cluster %d not in tree", v, cl)
			}
		}
		if maxDepth >= 0 {
			if d := t.Depth(); d > maxDepth {
				return fmt.Errorf("weak carving: cluster %d tree depth %d exceeds %d", cl, d, maxDepth)
			}
		}
		for v, p := range t.Parent {
			if p == -1 {
				continue
			}
			u, w := v, p
			if u > w {
				u, w = w, u
			}
			congestion[[2]int{u, w}]++
		}
	}
	if maxCongestion >= 0 {
		for e, c := range congestion {
			if c > maxCongestion {
				return fmt.Errorf("weak carving: edge (%d,%d) used by %d trees, max %d", e[0], e[1], c, maxCongestion)
			}
		}
	}
	return nil
}

// CheckDecomposition verifies a (C, D) network decomposition of g:
//
//   - every node is assigned, cluster ids dense in [0, K);
//   - cluster colors in [0, Colors);
//   - same-color clusters are non-adjacent;
//   - if maxDiam >= 0: if strong, each cluster's induced diameter is
//     <= maxDiam; otherwise its weak (host graph) diameter is <= maxDiam.
func CheckDecomposition(g *graph.Graph, d *Decomposition, maxDiam int, strong bool) error {
	if len(d.Assign) != g.N() {
		return fmt.Errorf("decomposition: assign length %d, want %d", len(d.Assign), g.N())
	}
	if len(d.Color) != d.K {
		return fmt.Errorf("decomposition: %d colors for %d clusters", len(d.Color), d.K)
	}
	seen := make([]bool, d.K)
	for v, cl := range d.Assign {
		if cl < 0 || cl >= d.K {
			return fmt.Errorf("decomposition: node %d unassigned or out of range (%d)", v, cl)
		}
		seen[cl] = true
	}
	for cl, ok := range seen {
		if !ok {
			return fmt.Errorf("decomposition: cluster %d is empty", cl)
		}
	}
	for cl, col := range d.Color {
		if col < 0 || col >= d.Colors {
			return fmt.Errorf("decomposition: cluster %d color %d out of [0,%d)", cl, col, d.Colors)
		}
	}
	// Same-color clusters must be non-adjacent.
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			cu, cv := d.Assign[u], d.Assign[v]
			if cu != cv && d.Color[cu] == d.Color[cv] {
				return fmt.Errorf("decomposition: adjacent clusters %d,%d share color %d (edge %d-%d)",
					cu, cv, d.Color[cu], u, v)
			}
		}
	}
	if maxDiam >= 0 {
		for cl, members := range d.Members() {
			var diam int
			if strong {
				diam = graph.StrongDiameter(g, members)
				if diam < 0 {
					return fmt.Errorf("decomposition: cluster %d induces a disconnected subgraph", cl)
				}
			} else {
				diam = graph.WeakDiameter(g, nil, members)
				if diam < 0 {
					return fmt.Errorf("decomposition: cluster %d weakly disconnected", cl)
				}
			}
			if diam > maxDiam {
				return fmt.Errorf("decomposition: cluster %d diameter %d exceeds %d", cl, diam, maxDiam)
			}
		}
	}
	return nil
}

// MaxStrongDiameter returns the maximum induced diameter over all clusters
// of the carving, or -1 if some cluster is disconnected.
func MaxStrongDiameter(g *graph.Graph, members [][]int) int {
	max := 0
	for _, ms := range members {
		d := graph.StrongDiameter(g, ms)
		if d < 0 {
			return -1
		}
		if d > max {
			max = d
		}
	}
	return max
}

// MaxWeakDiameter returns the maximum weak diameter over all clusters, or -1
// if some cluster is disconnected in the host graph.
func MaxWeakDiameter(g *graph.Graph, members [][]int) int {
	max := 0
	for _, ms := range members {
		d := graph.WeakDiameter(g, nil, ms)
		if d < 0 {
			return -1
		}
		if d > max {
			max = d
		}
	}
	return max
}

func checkNonAdjacent(g *graph.Graph, assign []int) error {
	for u := 0; u < g.N(); u++ {
		if assign[u] == Unclustered {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if assign[v] == Unclustered {
				continue
			}
			if assign[u] != assign[v] {
				return fmt.Errorf("carving: clusters %d and %d adjacent via edge %d-%d",
					assign[u], assign[v], u, v)
			}
		}
	}
	return nil
}
