package graph

import (
	"testing"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate in reverse order
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 {
		t.Fatalf("N = %d, want 4", g.N())
	}
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3 (duplicate must be removed)", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatalf("edge 0-1 missing")
	}
	if g.HasEdge(0, 3) {
		t.Fatalf("phantom edge 0-3")
	}
	if d := g.Degree(1); d != 2 {
		t.Fatalf("Degree(1) = %d, want 2", d)
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(1, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 3)
	if _, err := b.Build(); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	b = NewBuilder(3)
	b.AddEdge(-1, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("negative endpoint accepted")
	}
}

func TestBuilderRejectsNegativeN(t *testing.T) {
	if _, err := NewBuilder(-1).Build(); err == nil {
		t.Fatal("negative node count accepted")
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d", g.M())
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := NewBuilder(0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 0 || g.M() != 0 || g.MaxDegree() != 0 {
		t.Fatalf("empty graph has non-zero stats")
	}
	if len(g.Edges()) != 0 {
		t.Fatalf("empty graph has edges")
	}
}

func TestNeighborsSorted(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(2, 4)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	b.AddEdge(2, 1)
	g := b.MustBuild()
	nbrs := g.Neighbors(2)
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i-1] >= nbrs[i] {
			t.Fatalf("neighbors unsorted: %v", nbrs)
		}
	}
}

func TestEdgesOrderedAndComplete(t *testing.T) {
	g := Cycle(5)
	edges := g.Edges()
	if len(edges) != 5 {
		t.Fatalf("cycle 5 has %d edges", len(edges))
	}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not in canonical order", e)
		}
	}
}

func TestEdgeIndex(t *testing.T) {
	g := Path(4)
	ei := NewEdgeIndex(g)
	if _, ok := ei.Lookup(0, 1); !ok {
		t.Fatal("edge 0-1 not indexed")
	}
	if _, ok := ei.Lookup(1, 0); !ok {
		t.Fatal("reverse lookup failed")
	}
	if _, ok := ei.Lookup(0, 3); ok {
		t.Fatal("phantom edge indexed")
	}
	// Indices must be dense and unique.
	seen := make(map[int]bool)
	for _, e := range g.Edges() {
		i, ok := ei.Lookup(e[0], e[1])
		if !ok || i < 0 || i >= g.M() || seen[i] {
			t.Fatalf("bad index %d for edge %v", i, e)
		}
		seen[i] = true
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic on invalid input")
		}
	}()
	b := NewBuilder(1)
	b.AddEdge(0, 0)
	b.MustBuild()
}
