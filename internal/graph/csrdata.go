package graph

// This file is the raw-CSR surface of the graph package: read-only access
// to the two flat adjacency arrays for serializers (graphio's binary
// snapshot writer streams them to disk verbatim) and a validating
// constructor that wraps externally supplied arrays — the path the
// mmap-backed snapshot loader uses to open a saved graph with no Builder
// pass: no edge buffer, no sort, no scatter.

import "fmt"

// CSR returns views of the graph's two flat adjacency arrays: offsets
// (length N()+1) and targets (length 2·M()). Node v's sorted neighbor row
// is targets[offsets[v]:offsets[v+1]]. The slices alias the graph's
// backing storage and must not be modified; they are the exact bytes the
// binary snapshot format persists.
func (g *Graph) CSR() (offsets []int64, targets []int) {
	return g.offsets, g.targets
}

// NewFromCSR wraps already-built CSR arrays in a Graph after validating
// every representation invariant (see the Graph doc comment): offsets
// monotone and anchored, rows strictly increasing with in-range targets
// and no self-loops, and adjacency symmetry. The arrays are adopted, not
// copied — the caller must not modify them afterwards — which is what
// lets the mmap snapshot loader open a multi-gigabyte graph without
// rebuilding or even touching most pages.
func NewFromCSR(offsets []int64, targets []int) (*Graph, error) {
	if err := validateCSR(offsets, targets); err != nil {
		return nil, err
	}
	return &Graph{offsets: offsets, targets: targets, m: len(targets) / 2}, nil
}

// WrapCSR wraps CSR arrays in a Graph without validating them. It exists
// for loaders that have already proven the arrays byte-identical to ones a
// valid Graph produced (an integrity-checksummed snapshot written by
// graph.CSR + graphio.WriteCSR); every other caller wants NewFromCSR.
// Handing WrapCSR arrays that violate the Graph invariants makes later
// traversals panic or return garbage.
func WrapCSR(offsets []int64, targets []int) *Graph {
	return &Graph{offsets: offsets, targets: targets, m: len(targets) / 2}
}

// validateCSR checks the full Graph invariant set over raw arrays in
// O(n + m): one monotonicity-and-sortedness pass, then a cursor-sweep
// symmetry check — as u ascends, each forward edge (u, v) must consume
// the next unconsumed back-edge slot of row v, which works (and costs no
// binary searches) precisely because rows are sorted.
func validateCSR(offsets []int64, targets []int) error {
	if len(offsets) == 0 {
		return fmt.Errorf("graph: csr offsets empty (need at least [0])")
	}
	n := len(offsets) - 1
	if offsets[0] != 0 {
		return fmt.Errorf("graph: csr offsets[0] = %d, want 0", offsets[0])
	}
	if offsets[n] != int64(len(targets)) {
		return fmt.Errorf("graph: csr offsets[%d] = %d, want len(targets) = %d", n, offsets[n], len(targets))
	}
	if len(targets)%2 != 0 {
		return fmt.Errorf("graph: csr targets length %d is odd", len(targets))
	}
	for v := 0; v < n; v++ {
		if offsets[v+1] < offsets[v] {
			return fmt.Errorf("graph: csr offsets decrease at node %d (%d -> %d)", v, offsets[v], offsets[v+1])
		}
		row := targets[offsets[v]:offsets[v+1]]
		prev := -1
		for _, u := range row {
			if u < 0 || u >= n {
				return fmt.Errorf("graph: csr node %d has neighbor %d outside [0,%d)", v, u, n)
			}
			if u == v {
				return fmt.Errorf("graph: csr self-loop at %d", v)
			}
			if u <= prev {
				return fmt.Errorf("graph: csr row of node %d not strictly increasing at neighbor %d", v, u)
			}
			prev = u
		}
	}
	// cursor[v] walks row v's backward neighbors (< v) in step with the
	// ascending sweep of u; every forward edge must find its mirror at the
	// cursor, and every cursor must end exactly at its row's first forward
	// neighbor.
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for u := 0; u < n; u++ {
		for _, v := range targets[offsets[u]:offsets[u+1]] {
			if v <= u {
				continue // back-edges are consumed from the other side
			}
			if cursor[v] >= offsets[v+1] || targets[cursor[v]] != u {
				return fmt.Errorf("graph: csr asymmetric edge: %d lists %d but not vice versa", u, v)
			}
			cursor[v]++
		}
	}
	for v := 0; v < n; v++ {
		if cursor[v] < offsets[v+1] && targets[cursor[v]] < v {
			return fmt.Errorf("graph: csr asymmetric edge: %d lists %d but not vice versa", v, targets[cursor[v]])
		}
	}
	return nil
}
