package graph

import "sort"

// This file contains the traversal and distance primitives shared by all
// decomposition algorithms. Every function takes an optional alive mask
// (nil means "all nodes alive") so that algorithms can operate on the
// subgraph induced by surviving nodes without materializing it.

// BFS runs a multi-source breadth-first search from srcs restricted to alive
// nodes and fills dist with hop distances (-1 for unreachable or dead
// nodes). dist must have length g.N(); it is reused as scratch to avoid
// allocation in hot loops. It returns the visited nodes in BFS order.
func BFS(g *Graph, alive []bool, srcs []int, dist []int) []int {
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int, 0, len(srcs))
	for _, s := range srcs {
		if alive != nil && !alive[s] {
			continue
		}
		if dist[s] == -1 {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Neighbors(u) {
			if dist[v] != -1 || (alive != nil && !alive[v]) {
				continue
			}
			dist[v] = dist[u] + 1
			queue = append(queue, v)
		}
	}
	return queue
}

// BFSTree runs a single-source BFS and returns (dist, parent) with
// parent[src] = -1 and parent[v] = -1 for unreachable v.
func BFSTree(g *Graph, alive []bool, src int) (dist, parent []int) {
	dist = make([]int, g.N())
	parent = make([]int, g.N())
	for i := range dist {
		dist[i], parent[i] = -1, -1
	}
	if alive != nil && !alive[src] {
		return dist, parent
	}
	dist[src] = 0
	queue := []int{src}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Neighbors(u) {
			if dist[v] != -1 || (alive != nil && !alive[v]) {
				continue
			}
			dist[v] = dist[u] + 1
			parent[v] = u
			queue = append(queue, v)
		}
	}
	return dist, parent
}

// Components returns the connected components of the alive subgraph, each as
// a sorted node list; components are ordered by their smallest node.
func Components(g *Graph, alive []bool) [][]int {
	s := getScratch()
	comps := s.Components(g, alive)
	putScratch(s)
	for _, comp := range comps {
		sortInts(comp)
	}
	return comps
}

// IsConnected reports whether the alive subgraph restricted to nodes is
// connected (an empty or singleton set is connected). Membership and visit
// state live in pooled stamp slices, not maps — this runs inside cluster
// validation on every verify pass.
func IsConnected(g *Graph, nodes []int) bool {
	s := getScratch()
	ok := s.IsConnected(g, nodes)
	putScratch(s)
	return ok
}

// InducedSubgraph returns the subgraph induced by nodes together with the
// mapping from new IDs (0..len(nodes)-1) back to the original IDs. The
// relative order of nodes is preserved, so original ID order determines new
// ID order when nodes is sorted. Nodes must be distinct. Callers holding a
// Scratch (e.g. the Engine's pooled workers) should use its method form to
// share remap buffers.
func InducedSubgraph(g *Graph, nodes []int) (*Graph, []int) {
	s := getScratch()
	sub, orig := s.InducedSubgraph(g, nodes)
	putScratch(s)
	return sub, orig
}

// Eccentricity returns the maximum distance from v to any alive node
// restricted to the nodes reachable from v, and the number of reached nodes.
func Eccentricity(g *Graph, alive []bool, v int, dist []int) (ecc, reached int) {
	order := BFS(g, alive, []int{v}, dist)
	if len(order) == 0 {
		return -1, 0
	}
	last := order[len(order)-1]
	return dist[last], len(order)
}

// StrongDiameter returns the exact diameter of the subgraph induced by
// nodes, or -1 if that subgraph is disconnected or empty. Cost is
// O(|nodes| * edges(induced)), intended for clusters, which are small.
func StrongDiameter(g *Graph, nodes []int) int {
	s := getScratch()
	diam := s.StrongDiameter(g, nodes)
	putScratch(s)
	return diam
}

// WeakDiameter returns the maximum pairwise distance between nodes measured
// in the alive subgraph of the host graph g (paths may leave the node set),
// or -1 if some pair is disconnected in the host subgraph.
func WeakDiameter(g *Graph, alive []bool, nodes []int) int {
	if len(nodes) == 0 {
		return -1
	}
	dist := make([]int, g.N())
	diam := 0
	for _, v := range nodes {
		BFS(g, alive, []int{v}, dist)
		for _, w := range nodes {
			if dist[w] == -1 {
				return -1
			}
			if dist[w] > diam {
				diam = dist[w]
			}
		}
	}
	return diam
}

// DiameterApprox returns a lower bound on the diameter of the alive subgraph
// via a double sweep from start, in O(m) time. The true diameter is between
// the returned value and twice it.
func DiameterApprox(g *Graph, alive []bool, start int) int {
	dist := make([]int, g.N())
	order := BFS(g, alive, []int{start}, dist)
	if len(order) == 0 {
		return 0
	}
	far := order[len(order)-1]
	order = BFS(g, alive, []int{far}, dist)
	if len(order) == 0 {
		return 0
	}
	return dist[order[len(order)-1]]
}

// PowerGraph returns G^k: nodes of g, with an edge between every pair at
// hop distance <= k in g. Used by the ABCP96 baseline. Cost O(n * m).
func PowerGraph(g *Graph, k int) *Graph {
	b := NewBuilder(g.N())
	dist := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		order := bfsBounded(g, v, k, dist)
		for _, w := range order {
			if w > v {
				b.AddEdge(v, w)
			}
		}
	}
	return b.MustBuild()
}

// bfsBounded explores up to depth k from src and returns visited nodes;
// dist is scratch of length g.N().
func bfsBounded(g *Graph, src, k int, dist []int) []int {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		if dist[u] == k {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return queue
}

// NeighborhoodSizes returns, for a BFS from srcs in the alive subgraph, the
// cumulative count of nodes within each distance d (index d holds
// |B_d(srcs)|). The slice has length maxEcc+1.
func NeighborhoodSizes(g *Graph, alive []bool, srcs []int, dist []int) []int {
	order := BFS(g, alive, srcs, dist)
	if len(order) == 0 {
		return nil
	}
	maxD := dist[order[len(order)-1]]
	sizes := make([]int, maxD+1)
	for _, v := range order {
		sizes[dist[v]]++
	}
	for d := 1; d <= maxD; d++ {
		sizes[d] += sizes[d-1]
	}
	return sizes
}

func sortInts(a []int) { sort.Ints(a) }
