package graph

import (
	"math/rand"
)

// Path returns the path graph 0-1-...-(n-1).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	return b.MustBuild()
}

// Cycle returns the cycle graph on n >= 3 nodes.
func Cycle(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	if n >= 3 {
		b.AddEdge(n-1, 0)
	}
	return b.MustBuild()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.MustBuild()
}

// Star returns the star with center 0 and n-1 leaves.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.MustBuild()
}

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.MustBuild()
}

// Torus returns the rows x cols torus (grid with wraparound). Both
// dimensions must be at least 3 to keep the graph simple.
func Torus(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddEdge(id(r, c), id(r, (c+1)%cols))
			b.AddEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return b.MustBuild()
}

// Hypercube returns the dim-dimensional hypercube on 2^dim nodes.
func Hypercube(dim int) *Graph {
	n := 1 << dim
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for d := 0; d < dim; d++ {
			u := v ^ (1 << d)
			if u > v {
				b.AddEdge(v, u)
			}
		}
	}
	return b.MustBuild()
}

// BinaryTree returns the complete-ish binary tree on n nodes where node v's
// children are 2v+1 and 2v+2.
func BinaryTree(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(v, (v-1)/2)
	}
	return b.MustBuild()
}

// RandomTree returns a uniformly random recursive tree on n nodes: node v
// attaches to a uniform node in 0..v-1.
func RandomTree(n int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(v, rng.Intn(v))
	}
	return b.MustBuild()
}

// Caterpillar returns a spine path of length spine with legs pendant leaves
// attached to every spine node.
func Caterpillar(spine, legs int) *Graph {
	n := spine * (1 + legs)
	b := NewBuilder(n)
	for s := 0; s+1 < spine; s++ {
		b.AddEdge(s, s+1)
	}
	next := spine
	for s := 0; s < spine; s++ {
		for l := 0; l < legs; l++ {
			b.AddEdge(s, next)
			next++
		}
	}
	return b.MustBuild()
}

// Lollipop returns a clique of size k attached to a path of length tail.
func Lollipop(k, tail int) *Graph {
	b := NewBuilder(k + tail)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			b.AddEdge(u, v)
		}
	}
	prev := 0
	for t := 0; t < tail; t++ {
		b.AddEdge(prev, k+t)
		prev = k + t
	}
	return b.MustBuild()
}

// Gnp returns an Erdős–Rényi G(n, p) random graph.
func Gnp(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	if p >= 1 {
		return Complete(n)
	}
	if p > 0 {
		// Geometric skipping over the n*(n-1)/2 potential edges.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < p {
					b.AddEdge(u, v)
				}
			}
		}
	}
	return b.MustBuild()
}

// ConnectedGnp returns G(n, p) with a Hamiltonian path over a random node
// permutation added, guaranteeing connectivity while keeping the random
// structure. It is the workhorse family of the experiments.
func ConnectedGnp(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	perm := rng.Perm(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(perm[i], perm[i+1])
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

// RandomRegularish returns a connected graph in which every node has degree
// close to d (between d and 2d due to dedup of the underlying union of d/2
// Hamiltonian cycles on random permutations). The family is an expander with
// high probability and serves as the expander workload.
func RandomRegularish(n, d int, seed int64) *Graph {
	if d < 2 {
		d = 2
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for c := 0; c < (d+1)/2; c++ {
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			u, v := perm[i], perm[(i+1)%n]
			if u != v {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

// Subdivide returns g with every edge replaced by a path of length pathLen
// (pathLen >= 1; pathLen == 1 returns a copy). The original nodes keep their
// identifiers; subdivision nodes are appended after them. This implements
// the Section 3 barrier construction: subdividing a constant-degree expander
// into paths of length log(n)/ε yields a graph with conductance Θ(ε/log n)
// where every poly(n)-size subgraph has diameter Ω(log² n / ε).
func Subdivide(g *Graph, pathLen int) *Graph {
	if pathLen <= 1 {
		b := NewBuilder(g.N())
		g.ForEachEdge(b.AddEdge)
		return b.MustBuild()
	}
	n := g.N() + g.M()*(pathLen-1)
	b := NewBuilder(n)
	next := g.N()
	g.ForEachEdge(func(u, v int) {
		prev := u
		for i := 0; i < pathLen-1; i++ {
			b.AddEdge(prev, next)
			prev = next
			next++
		}
		b.AddEdge(prev, v)
	})
	return b.MustBuild()
}

// SubdividedExpander builds the Section 3 barrier graph directly: a random
// near-d-regular expander on nExp nodes with every edge subdivided into a
// path of length pathLen.
func SubdividedExpander(nExp, d, pathLen int, seed int64) *Graph {
	return Subdivide(RandomRegularish(nExp, d, seed), pathLen)
}

// ClusterGraph returns k dense clusters of size sz (intra-cluster edge
// probability pIn) connected in a ring by single bridge edges. It models the
// "well-clusterable" workloads where decompositions find natural balls.
func ClusterGraph(k, sz int, pIn float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := k * sz
	b := NewBuilder(n)
	for c := 0; c < k; c++ {
		base := c * sz
		// Spanning path keeps each cluster connected at low pIn.
		for i := 0; i+1 < sz; i++ {
			b.AddEdge(base+i, base+i+1)
		}
		for i := 0; i < sz; i++ {
			for j := i + 1; j < sz; j++ {
				if rng.Float64() < pIn {
					b.AddEdge(base+i, base+j)
				}
			}
		}
	}
	for c := 0; c < k && k > 1; c++ {
		b.AddEdge(c*sz, ((c+1)%k)*sz)
	}
	return b.MustBuild()
}

// DisjointUnion returns the disjoint union of the given graphs, relabeling
// the i-th graph's nodes by the offset of the total size of its
// predecessors. It is used to test per-component behavior.
func DisjointUnion(gs ...*Graph) *Graph {
	n := 0
	for _, g := range gs {
		n += g.N()
	}
	b := NewBuilder(n)
	off := 0
	for _, g := range gs {
		g.ForEachEdge(func(u, v int) {
			b.AddEdge(u+off, v+off)
		})
		off += g.N()
	}
	return b.MustBuild()
}
