// Package graph provides the undirected-graph substrate shared by every
// algorithm in this repository: a compact adjacency representation, the
// synthetic graph families used in the experiments (including the subdivided
// expander of the paper's Section 3 barrier), and the traversal and metric
// primitives (BFS, connected components, diameters, induced subgraphs, power
// graphs) that the decomposition algorithms are built from.
//
// Graphs are simple (no self-loops, no parallel edges) and nodes are the
// integers 0..N()-1, matching the CONGEST-model convention of O(log n)-bit
// unique identifiers.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is an immutable simple undirected graph.
type Graph struct {
	adj [][]int // sorted neighbor lists
	m   int     // number of edges
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	n     int
	edges [][2]int
	err   error
}

// NewBuilder returns a Builder for a graph with n nodes (0..n-1).
func NewBuilder(n int) *Builder {
	b := &Builder{n: n}
	if n < 0 {
		b.err = errors.New("graph: negative node count")
	}
	return b
}

// AddEdge records the undirected edge {u, v}. Self-loops and out-of-range
// endpoints are rejected; duplicate edges are deduplicated at Build time.
func (b *Builder) AddEdge(u, v int) {
	if b.err != nil {
		return
	}
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		b.err = fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
		return
	}
	if u == v {
		b.err = fmt.Errorf("graph: self-loop at %d", u)
		return
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, [2]int{u, v})
}

// Build finalizes the graph, deduplicating edges and sorting adjacency lists.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i][0] != b.edges[j][0] {
			return b.edges[i][0] < b.edges[j][0]
		}
		return b.edges[i][1] < b.edges[j][1]
	})
	deg := make([]int, b.n)
	m := 0
	for i, e := range b.edges {
		if i > 0 && e == b.edges[i-1] {
			continue
		}
		deg[e[0]]++
		deg[e[1]]++
		m++
	}
	adj := make([][]int, b.n)
	buf := make([]int, 2*m)
	for v := 0; v < b.n; v++ {
		adj[v], buf = buf[:0:deg[v]], buf[deg[v]:]
	}
	for i, e := range b.edges {
		if i > 0 && e == b.edges[i-1] {
			continue
		}
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	for v := range adj {
		sort.Ints(adj[v])
	}
	return &Graph{adj: adj, m: m}, nil
}

// MustBuild is Build for graphs constructed from trusted generator code; it
// panics on error, which only happens on generator bugs.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges builds a graph with n nodes from an explicit edge list.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns v's neighbor list in increasing order. The returned
// slice is shared with the graph's internal storage and must not be
// modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	a := g.adj[u]
	i := sort.SearchInts(a, v)
	return i < len(a) && a[i] == v
}

// MaxDegree returns the maximum degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := range g.adj {
		if len(g.adj[v]) > max {
			max = len(g.adj[v])
		}
	}
	return max
}

// Edges returns all edges as (u, v) pairs with u < v, in sorted order.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// EdgeIndex assigns each undirected edge a dense index in [0, M()) following
// the order of Edges. It is used by Steiner-tree congestion accounting.
type EdgeIndex struct {
	g     *Graph
	index map[[2]int]int
}

// NewEdgeIndex builds the edge index for g.
func NewEdgeIndex(g *Graph) *EdgeIndex {
	idx := make(map[[2]int]int, g.m)
	for i, e := range g.Edges() {
		idx[e] = i
	}
	return &EdgeIndex{g: g, index: idx}
}

// Lookup returns the dense index of edge {u, v} and whether it exists.
func (ei *EdgeIndex) Lookup(u, v int) (int, bool) {
	if u > v {
		u, v = v, u
	}
	i, ok := ei.index[[2]int{u, v}]
	return i, ok
}
