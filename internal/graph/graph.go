// Package graph provides the undirected-graph substrate shared by every
// algorithm in this repository: a compact adjacency representation, the
// synthetic graph families used in the experiments (including the subdivided
// expander of the paper's Section 3 barrier), and the traversal and metric
// primitives (BFS, connected components, diameters, induced subgraphs, power
// graphs) that the decomposition algorithms are built from.
//
// Graphs are simple (no self-loops, no parallel edges) and nodes are the
// integers 0..N()-1, matching the CONGEST-model convention of O(log n)-bit
// unique identifiers.
//
// # Representation
//
// A Graph is stored in compressed-sparse-row (CSR) form: one flat offsets
// array of length N()+1 and one flat targets array of length 2·M(). Node v's
// neighbors are targets[offsets[v]:offsets[v+1]], sorted increasing.
// Neighbors therefore returns a subslice of shared storage — zero
// allocations, zero pointer chasing — and the whole adjacency structure is
// two contiguous allocations regardless of node count. DESIGN.md documents
// the layout invariants.
package graph

import (
	"errors"
	"fmt"
	"math"
	"slices"
)

// Graph is an immutable simple undirected graph in CSR form.
//
// Invariants (checked by the graph package's property tests):
//   - len(offsets) == N()+1, offsets[0] == 0, offsets non-decreasing,
//     offsets[N()] == len(targets) == 2*m;
//   - targets[offsets[v]:offsets[v+1]] is strictly increasing for every v
//     (simple graph: no duplicates, no self-loops);
//   - symmetry: u appears in v's row iff v appears in u's row.
type Graph struct {
	offsets []int64 // len N()+1; row v is targets[offsets[v]:offsets[v+1]]
	targets []int   // len 2*m; per-row sorted neighbor ids
	m       int     // number of undirected edges
}

// maxBuilderNodes bounds the node count a Builder accepts so endpoint pairs
// pack into a single uint64 sort key.
const maxBuilderNodes = math.MaxInt32

// Builder accumulates edges and produces an immutable Graph. Each edge is
// packed into one uint64 ((u<<32)|v with u < v), so the pending edge buffer
// costs 8 bytes per edge — half of the former [][2]int representation — and
// sorting it is a flat uint64 sort.
type Builder struct {
	n     int
	auto  bool // node count grows to max endpoint + 1
	edges []uint64
	err   error
}

// NewBuilder returns a Builder for a graph with n nodes (0..n-1).
func NewBuilder(n int) *Builder {
	b := &Builder{n: n}
	if n < 0 {
		b.err = errors.New("graph: negative node count")
	} else if n > maxBuilderNodes {
		b.err = fmt.Errorf("graph: node count %d exceeds limit %d", n, maxBuilderNodes)
	}
	return b
}

// NewAutoBuilder returns a Builder whose node count is inferred as the
// maximum endpoint + 1, for streaming inputs (e.g. edge lists) that do not
// declare a node count up front. DeclareNodes can pin a larger count at any
// point.
func NewAutoBuilder() *Builder {
	return &Builder{auto: true}
}

// DeclareNodes raises the node count to at least n; it is an error to
// declare fewer nodes than an already-seen endpoint requires.
func (b *Builder) DeclareNodes(n int) {
	if b.err != nil {
		return
	}
	if n < b.n {
		b.err = fmt.Errorf("graph: declared %d nodes but edges reference node %d", n, b.n-1)
		return
	}
	if n > maxBuilderNodes {
		b.err = fmt.Errorf("graph: node count %d exceeds limit %d", n, maxBuilderNodes)
		return
	}
	b.n = n
}

// AddEdge records the undirected edge {u, v}. Self-loops and out-of-range
// endpoints are rejected; duplicate edges are deduplicated at Build time.
func (b *Builder) AddEdge(u, v int) {
	if b.err != nil {
		return
	}
	if u < 0 || v < 0 || ((u >= b.n || v >= b.n) && !b.auto) {
		b.err = fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
		return
	}
	if u == v {
		b.err = fmt.Errorf("graph: self-loop at %d", u)
		return
	}
	if u > v {
		u, v = v, u
	}
	if b.auto && v >= b.n {
		if v >= maxBuilderNodes {
			b.err = fmt.Errorf("graph: node id %d exceeds limit %d", v, maxBuilderNodes)
			return
		}
		b.n = v + 1
	}
	b.edges = append(b.edges, uint64(u)<<32|uint64(v))
}

// Build finalizes the graph: one flat uint64 sort over the packed edges,
// then a counting pass and a scatter pass straight into the CSR arrays.
// Duplicate edges are skipped during both passes. No per-node sort is
// needed: scattering the (u,v)-sorted deduplicated edge list fills every
// row in increasing order (back-edges of earlier rows land first, forward
// edges after, both ascending), a property the graph tests assert.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	slices.Sort(b.edges)
	offsets := make([]int64, b.n+1)
	m := 0
	prev := ^uint64(0)
	for _, e := range b.edges {
		if e == prev {
			continue
		}
		prev = e
		offsets[e>>32+1]++
		offsets[e&0xffffffff+1]++
		m++
	}
	for v := 0; v < b.n; v++ {
		offsets[v+1] += offsets[v]
	}
	targets := make([]int, 2*m)
	// Scatter using offsets[v] as the row cursor; afterwards offsets[v]
	// holds the end of row v, i.e. the start of row v+1, so one shift
	// restores the offset array.
	prev = ^uint64(0)
	for _, e := range b.edges {
		if e == prev {
			continue
		}
		prev = e
		u, v := int(e>>32), int(e&0xffffffff)
		targets[offsets[u]] = v
		offsets[u]++
		targets[offsets[v]] = u
		offsets[v]++
	}
	for v := b.n; v > 0; v-- {
		offsets[v] = offsets[v-1]
	}
	offsets[0] = 0
	// Release the packed buffer and poison the builder: it fed this graph
	// and cannot produce it again.
	b.edges = nil
	b.err = errors.New("graph: Build already called")
	return &Graph{offsets: offsets, targets: targets, m: m}, nil
}

// MustBuild is Build for graphs constructed from trusted generator code; it
// panics on error, which only happens on generator bugs.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges builds a graph with n nodes from an explicit edge list.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// fromCSR wraps already-valid CSR arrays (internal constructor for
// Scratch.InducedSubgraph, which builds rows directly).
func fromCSR(offsets []int64, targets []int) *Graph {
	return &Graph{offsets: offsets, targets: targets, m: len(targets) / 2}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return int(g.offsets[v+1] - g.offsets[v]) }

// Neighbors returns v's neighbor list in increasing order. The returned
// slice is a view of the graph's flat CSR storage — no allocation — and
// must not be modified.
//
//sdlint:hotpath
func (g *Graph) Neighbors(v int) []int {
	lo, hi := g.offsets[v], g.offsets[v+1]
	return g.targets[lo:hi:hi]
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := slices.BinarySearch(g.Neighbors(u), v)
	return ok
}

// MaxDegree returns the maximum degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// Edges returns all edges as (u, v) pairs with u < v, in sorted order.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	g.ForEachEdge(func(u, v int) {
		out = append(out, [2]int{u, v})
	})
	return out
}

// ForEachEdge calls fn(u, v) for every edge with u < v, in sorted order,
// without materializing an edge list.
func (g *Graph) ForEachEdge(fn func(u, v int)) {
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				fn(u, v)
			}
		}
	}
}

// MemoryFootprint returns the approximate resident heap bytes of the graph:
// the two CSR arrays plus fixed overhead. The serving layer's graph store
// uses it as the eviction weight, so cache budgets are denominated in real
// bytes rather than abstract node+edge units.
func (g *Graph) MemoryFootprint() int {
	const wordBytes = 8 // int64 offsets and int targets on 64-bit platforms
	return wordBytes*(len(g.offsets)+len(g.targets)) + 64
}

// EdgeIndex assigns each undirected edge a dense index in [0, M()) following
// the order of Edges. It is used by Steiner-tree congestion accounting.
// With CSR adjacency the index is a pure offset computation — a prefix-sum
// array over forward degrees plus two binary searches — instead of a
// map[[2]int]int over every edge.
type EdgeIndex struct {
	g   *Graph
	fwd []int64 // fwd[u] = number of edges (a, b), a < b, with a < u
}

// NewEdgeIndex builds the edge index for g in O(n log maxDeg) time and one
// flat allocation.
func NewEdgeIndex(g *Graph) *EdgeIndex {
	fwd := make([]int64, g.N()+1)
	for u := 0; u < g.N(); u++ {
		row := g.Neighbors(u)
		first, _ := slices.BinarySearch(row, u) // no self-loops: first neighbor > u
		fwd[u+1] = fwd[u] + int64(len(row)-first)
	}
	return &EdgeIndex{g: g, fwd: fwd}
}

// Lookup returns the dense index of edge {u, v} and whether it exists.
func (ei *EdgeIndex) Lookup(u, v int) (int, bool) {
	if u > v {
		u, v = v, u
	}
	if u < 0 || v >= ei.g.N() {
		return 0, false
	}
	row := ei.g.Neighbors(u)
	j, ok := slices.BinarySearch(row, v)
	if !ok {
		return 0, false
	}
	first, _ := slices.BinarySearch(row, u)
	return int(ei.fwd[u]) + j - first, true
}
