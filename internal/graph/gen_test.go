package graph

import (
	"testing"
	"testing/quick"
)

func TestPathShape(t *testing.T) {
	g := Path(5)
	if g.N() != 5 || g.M() != 4 {
		t.Fatalf("path(5): n=%d m=%d", g.N(), g.M())
	}
	if g.Degree(0) != 1 || g.Degree(4) != 1 || g.Degree(2) != 2 {
		t.Fatalf("path degrees wrong")
	}
}

func TestCycleShape(t *testing.T) {
	g := Cycle(6)
	if g.N() != 6 || g.M() != 6 {
		t.Fatalf("cycle(6): n=%d m=%d", g.N(), g.M())
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("cycle degree(%d) = %d", v, g.Degree(v))
		}
	}
}

func TestCompleteShape(t *testing.T) {
	g := Complete(6)
	if g.M() != 15 {
		t.Fatalf("K6 has %d edges", g.M())
	}
	if d := StrongDiameter(g, []int{0, 1, 2, 3, 4, 5}); d != 1 {
		t.Fatalf("K6 diameter %d", d)
	}
}

func TestStarShape(t *testing.T) {
	g := Star(7)
	if g.Degree(0) != 6 {
		t.Fatalf("star center degree %d", g.Degree(0))
	}
	for v := 1; v < 7; v++ {
		if g.Degree(v) != 1 {
			t.Fatalf("star leaf degree %d", g.Degree(v))
		}
	}
}

func TestGridShape(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("grid n = %d", g.N())
	}
	// rows*(cols-1) + cols*(rows-1) edges
	if want := 3*3 + 4*2; g.M() != want {
		t.Fatalf("grid m = %d, want %d", g.M(), want)
	}
	all := make([]int, 12)
	for i := range all {
		all[i] = i
	}
	if d := StrongDiameter(g, all); d != 2+3 {
		t.Fatalf("grid diameter %d, want 5", d)
	}
}

func TestTorusIsRegular(t *testing.T) {
	g := Torus(4, 5)
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus degree(%d) = %d", v, g.Degree(v))
		}
	}
}

func TestHypercubeShape(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("Q4: n=%d m=%d", g.N(), g.M())
	}
	all := make([]int, 16)
	for i := range all {
		all[i] = i
	}
	if d := StrongDiameter(g, all); d != 4 {
		t.Fatalf("Q4 diameter %d", d)
	}
}

func TestTreesAreTrees(t *testing.T) {
	for _, g := range []*Graph{BinaryTree(17), RandomTree(40, 7), Caterpillar(6, 3)} {
		if g.M() != g.N()-1 {
			t.Fatalf("tree with n=%d has m=%d", g.N(), g.M())
		}
		if comps := Components(g, nil); len(comps) != 1 {
			t.Fatalf("tree disconnected: %d components", len(comps))
		}
	}
}

func TestGnpExtremes(t *testing.T) {
	if g := Gnp(10, 0, 1); g.M() != 0 {
		t.Fatalf("G(10,0) has %d edges", g.M())
	}
	if g := Gnp(10, 1, 1); g.M() != 45 {
		t.Fatalf("G(10,1) has %d edges", g.M())
	}
}

func TestGnpDeterministicInSeed(t *testing.T) {
	a, b := Gnp(50, 0.1, 42), Gnp(50, 0.1, 42)
	if a.M() != b.M() {
		t.Fatalf("same seed, different graphs")
	}
	c := Gnp(50, 0.1, 43)
	if a.M() == c.M() {
		// Not impossible, but with 1225 candidate edges a collision in edge
		// count AND identical structure would be suspicious; check structure.
		same := true
		for v := 0; v < 50 && same; v++ {
			av, cv := a.Neighbors(v), c.Neighbors(v)
			if len(av) != len(cv) {
				same = false
				break
			}
			for i := range av {
				if av[i] != cv[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatalf("different seeds produced identical graphs")
		}
	}
}

func TestConnectedGnpIsConnected(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := ConnectedGnp(100, 0.01, seed)
		if comps := Components(g, nil); len(comps) != 1 {
			t.Fatalf("seed %d: %d components", seed, len(comps))
		}
	}
}

func TestRandomRegularishDegreeBounds(t *testing.T) {
	g := RandomRegularish(100, 4, 3)
	if comps := Components(g, nil); len(comps) != 1 {
		t.Fatalf("expander disconnected")
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) < 2 || g.Degree(v) > 8 {
			t.Fatalf("degree(%d) = %d outside [2,8]", v, g.Degree(v))
		}
	}
}

func TestSubdivideCounts(t *testing.T) {
	g := Cycle(4) // n=4, m=4
	s := Subdivide(g, 3)
	if want := 4 + 4*2; s.N() != want {
		t.Fatalf("subdivided n = %d, want %d", s.N(), want)
	}
	if want := 4 * 3; s.M() != want {
		t.Fatalf("subdivided m = %d, want %d", s.M(), want)
	}
	// Original nodes keep degree; subdivision nodes have degree 2.
	for v := 0; v < 4; v++ {
		if s.Degree(v) != 2 {
			t.Fatalf("original node degree changed")
		}
	}
	for v := 4; v < s.N(); v++ {
		if s.Degree(v) != 2 {
			t.Fatalf("subdivision node degree %d", s.Degree(v))
		}
	}
	// pathLen <= 1 copies.
	c := Subdivide(g, 1)
	if c.N() != 4 || c.M() != 4 {
		t.Fatalf("identity subdivision changed the graph")
	}
}

func TestSubdividedExpanderConnected(t *testing.T) {
	g := SubdividedExpander(20, 4, 5, 11)
	if comps := Components(g, nil); len(comps) != 1 {
		t.Fatalf("subdivided expander disconnected")
	}
}

func TestClusterGraphShape(t *testing.T) {
	g := ClusterGraph(4, 10, 0.5, 9)
	if g.N() != 40 {
		t.Fatalf("cluster graph n = %d", g.N())
	}
	if comps := Components(g, nil); len(comps) != 1 {
		t.Fatalf("cluster graph disconnected")
	}
}

func TestDisjointUnion(t *testing.T) {
	g := DisjointUnion(Path(3), Cycle(4), Star(5))
	if g.N() != 12 {
		t.Fatalf("union n = %d", g.N())
	}
	if comps := Components(g, nil); len(comps) != 3 {
		t.Fatalf("union has %d components, want 3", len(comps))
	}
}

func TestLollipopShape(t *testing.T) {
	g := Lollipop(5, 7)
	if g.N() != 12 {
		t.Fatalf("lollipop n = %d", g.N())
	}
	if comps := Components(g, nil); len(comps) != 1 {
		t.Fatalf("lollipop disconnected")
	}
}

// Property: every generator yields a simple graph (no self-loops, no
// duplicate edges — guaranteed by Builder, so check degree sums).
func TestPropertyGeneratorsSimple(t *testing.T) {
	f := func(seedRaw uint8, sizeRaw uint8) bool {
		seed := int64(seedRaw)
		n := 5 + int(sizeRaw%60)
		for _, g := range []*Graph{
			Path(n), Cycle(n), Star(n), BinaryTree(n),
			RandomTree(n, seed), Gnp(n, 0.2, seed),
			ConnectedGnp(n, 0.05, seed), RandomRegularish(n, 4, seed),
		} {
			degSum := 0
			for v := 0; v < g.N(); v++ {
				degSum += g.Degree(v)
				for i, w := range g.Neighbors(v) {
					if w == v {
						return false // self loop
					}
					if i > 0 && g.Neighbors(v)[i-1] == w {
						return false // duplicate
					}
				}
			}
			if degSum != 2*g.M() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
