package graph

// Frontier-parallel traversal over the CSR representation.
//
// ParallelScratch is the multi-worker sibling of Scratch: a level-
// synchronous BFS whose frontier is scanned by several goroutines at once,
// with per-worker discovery buffers, an atomic claim protocol on a flat
// state array, and a read-only settled bitset published between levels.
// The defining property, which the differential tests pin, is that every
// operation reproduces its sequential oracle EXACTLY — not just equal
// distance arrays, but the identical visit order:
//
//   - Within one BFS level, sequential traversal discovers node v through
//     its minimum-rank frontier neighbor (earlier frontier nodes scan
//     first), and within one parent the CSR row ascends. So the sequential
//     order of level d+1 is exactly "sort by (min frontier rank of a
//     neighbor, node id)".
//   - The parallel scan computes that minimum rank with a CAS-minimum on
//     state[v] while exactly one worker (the one whose CAS moved the state
//     off "unvisited") records v in its buffer; the coordinator then sorts
//     the level by the packed key rank<<32|v and appends it to the order.
//
// Because the visit order is bit-identical, everything layered on top —
// component member order, induced-subgraph numbering, ball carving, the
// engine's golden fixtures — is unchanged when the parallel path is
// switched on. DESIGN.md ("Parallel traversal") documents the contract.

import (
	"context"
	"slices"
	"sync"
	"sync/atomic"
)

// DefaultParallelThreshold is the node count below which callers should
// prefer the sequential Scratch path: under it, the per-call O(n) state
// reset and the level-barrier overhead cost more than the parallelism
// recovers. Engine-level gating (WithParallelBFSThreshold) defaults to
// this value.
const DefaultParallelThreshold = 32768

// parallelChunk is the number of frontier slots a worker claims per
// atomic fetch-add. Large enough that the shared cursor is not contended
// (one atomic op per ~512 nodes scanned), small enough that an uneven
// degree distribution still load-balances: a frontier of a million nodes
// yields ~2000 steals.
const parallelChunk = 512

// parallelFanoutMin is the minimum frontier size worth fanning out to
// worker goroutines; smaller levels are scanned inline by the caller.
const parallelFanoutMin = 2 * parallelChunk

// Per-node claim states. Non-negative values are transient within one
// level scan: the minimum frontier rank that has reached the node so far.
const (
	psUnvisited int64 = -1 // never reached in this traversal
	psSettled   int64 = -2 // order position assigned, bitset mark published
	psDone      int64 = -3 // settled in a finished component (DiameterApprox)
)

// ParallelConfig gates frontier-parallel traversal: Workers is the fan-out
// width and Threshold the minimum node count for the parallel path to
// engage (0 means always). The zero value disables parallelism.
//
// The config travels by context (WithParallelConfig) because it must NOT
// be part of any algorithm's parameter identity: parallel and sequential
// runs produce bit-identical results, so caches keyed on Params treat
// them as the same computation.
type ParallelConfig struct {
	// Workers is the number of goroutines scanning a frontier; values
	// below 2 disable the parallel path.
	Workers int
	// Threshold is the minimum number of nodes before parallel traversal
	// engages; below it the zero-alloc sequential path wins.
	Threshold int
}

// Enabled reports whether parallel traversal should engage for an n-node
// workload under this config.
func (c ParallelConfig) Enabled(n int) bool {
	return c.Workers > 1 && n >= c.Threshold
}

// parallelCtxKey carries a ParallelConfig through a context.
type parallelCtxKey struct{}

// WithParallelConfig returns a context carrying cfg; algorithm layers that
// support frontier-parallel traversal (core.StrongCarveContext, the rg
// carver via core.CarveRGContext) read it with ParallelConfigFrom.
func WithParallelConfig(ctx context.Context, cfg ParallelConfig) context.Context {
	return context.WithValue(ctx, parallelCtxKey{}, cfg)
}

// ParallelConfigFrom extracts the ParallelConfig from ctx, reporting
// whether one was attached.
func ParallelConfigFrom(ctx context.Context) (ParallelConfig, bool) {
	cfg, ok := ctx.Value(parallelCtxKey{}).(ParallelConfig)
	return cfg, ok
}

// ParallelScratch holds the reusable state of frontier-parallel BFS: the
// flat claim array, the settled bitset, the order/key buffers, and one
// discovery buffer per worker. Like Scratch it is not safe for concurrent
// use (one traversal at a time) and its buffers only grow; unlike Scratch
// its per-call reset is O(n), which is why callers gate it behind a size
// threshold.
type ParallelScratch struct {
	state []int64  // per-node claim state; CAS-contended during a level scan
	marks []uint32 // settled bitset, published between levels (plain reads)
	order []int    // visit order so far; the live frontier is order[levelLo:levelHi]
	keys  []uint64 // rank<<32|v sort keys for the level being collected
	bufs  [][]int  // per-worker discovery buffers
	dist  []int    // internal distance array for DiameterApprox

	// Scan call context, published to workers by goroutine creation.
	g                *Graph
	alive            []bool
	levelLo, levelHi int
	cursor           atomic.Int64
	wg               sync.WaitGroup
}

// NewParallelScratch returns an empty ParallelScratch; buffers are sized
// on first use.
func NewParallelScratch() *ParallelScratch { return &ParallelScratch{} }

// begin resets the claim array and bitset for an n-node traversal.
func (ps *ParallelScratch) begin(n int) {
	if cap(ps.state) < n {
		ps.state = make([]int64, n)
	}
	ps.state = ps.state[:n]
	for i := range ps.state {
		ps.state[i] = psUnvisited
	}
	nw := (n + 31) / 32
	if cap(ps.marks) < nw {
		ps.marks = make([]uint32, nw)
	}
	ps.marks = ps.marks[:nw]
	clear(ps.marks)
	ps.order = ps.order[:0]
}

// ensureWorkers sizes the per-worker discovery buffers.
func (ps *ParallelScratch) ensureWorkers(workers int) {
	for len(ps.bufs) < workers {
		ps.bufs = append(ps.bufs, nil)
	}
}

// settle marks v visited: order position assigned, bitset bit published.
func (ps *ParallelScratch) settle(v int) {
	ps.state[v] = psSettled
	ps.marks[uint(v)>>5] |= 1 << (uint(v) & 31)
}

// BFS is the frontier-parallel variant of Scratch.BFS: identical
// semantics and an identical visit order (see the package comment for why
// order equality holds), with the frontier of each level scanned by up to
// workers goroutines. dist must have length g.N() and is fully reset; the
// returned order aliases the scratch and is only valid until the next use
// of ps.
func (ps *ParallelScratch) BFS(g *Graph, alive []bool, srcs []int, dist []int, workers int) []int {
	ps.begin(g.N())
	for i := range dist {
		dist[i] = -1
	}
	order := ps.order[:0]
	for _, v := range srcs {
		if alive != nil && !alive[v] {
			continue
		}
		if dist[v] == -1 {
			dist[v] = 0
			ps.settle(v)
			order = append(order, v)
		}
	}
	ps.order = order
	ps.levelLo, ps.levelHi = 0, len(order)
	ps.run(g, alive, dist, workers)
	return ps.order
}

// Components is the frontier-parallel variant of Scratch.Components:
// components ordered by smallest node, members in the sequential BFS
// discovery order. Only the returned component slices are allocated.
func (ps *ParallelScratch) Components(g *Graph, alive []bool, workers int) [][]int {
	n := g.N()
	ps.begin(n)
	var comps [][]int
	for v := 0; v < n; v++ {
		if ps.state[v] != psUnvisited || (alive != nil && !alive[v]) {
			continue
		}
		order := ps.bfsFrom(g, alive, v, nil, workers)
		comp := make([]int, len(order))
		copy(comp, order)
		comps = append(comps, comp)
	}
	return comps
}

// DiameterApprox is the frontier-parallel variant of
// Scratch.DiameterApprox: the same 2-sweep lower bound per component with
// the same far-node choice (visit orders are identical, so the sweep
// picks the same endpoints and returns the same value).
func (ps *ParallelScratch) DiameterApprox(g *Graph, alive []bool, workers int) int {
	n := g.N()
	if n == 0 {
		return 0
	}
	ps.begin(n)
	if cap(ps.dist) < n {
		ps.dist = make([]int, n)
	}
	dist := ps.dist[:n]
	for i := range dist {
		dist[i] = -1
	}
	diam := 0
	for v := 0; v < n; v++ {
		if ps.state[v] != psUnvisited || (alive != nil && !alive[v]) {
			continue
		}
		order := ps.bfsFrom(g, alive, v, dist, workers)
		far := order[len(order)-1]
		// Reopen the component for the second sweep: clear claim states,
		// bitset bits, and distances of exactly the visited nodes.
		for _, u := range order {
			ps.state[u] = psUnvisited
			ps.marks[uint(u)>>5] &^= 1 << (uint(u) & 31)
			dist[u] = -1
		}
		order = ps.bfsFrom(g, alive, far, dist, workers)
		if d := dist[order[len(order)-1]]; d > diam {
			diam = d
		}
		// Close the component for good; the outer scan skips psDone.
		for _, u := range order {
			ps.state[u] = psDone
			dist[u] = -1
		}
	}
	return diam
}

// NeighborhoodSizes is the frontier-parallel variant of the package-level
// NeighborhoodSizes: cumulative ball sizes per BFS distance from srcs in
// the alive subgraph.
func (ps *ParallelScratch) NeighborhoodSizes(g *Graph, alive []bool, srcs []int, dist []int, workers int) []int {
	order := ps.BFS(g, alive, srcs, dist, workers)
	if len(order) == 0 {
		return nil
	}
	maxD := dist[order[len(order)-1]]
	sizes := make([]int, maxD+1)
	for _, v := range order {
		sizes[dist[v]]++
	}
	for d := 1; d <= maxD; d++ {
		sizes[d] += sizes[d-1]
	}
	return sizes
}

// bfsFrom runs one single-source traversal on top of already-initialized
// claim state (it does NOT reset other nodes — Components and
// DiameterApprox rely on settled state persisting across components). The
// returned order aliases the scratch.
func (ps *ParallelScratch) bfsFrom(g *Graph, alive []bool, src int, dist []int, workers int) []int {
	ps.order = ps.order[:0]
	ps.settle(src)
	ps.order = append(ps.order, src)
	if dist != nil {
		dist[src] = 0
	}
	ps.levelLo, ps.levelHi = 0, 1
	ps.run(g, alive, dist, workers)
	return ps.order
}

// run drives the level loop: scan the current frontier, then sort and
// publish the discovered level, until the frontier empties.
func (ps *ParallelScratch) run(g *Graph, alive []bool, dist []int, workers int) {
	for d := 1; ps.levelHi > ps.levelLo; d++ {
		ps.scanFrontier(g, alive, workers)
		ps.collectLevel(d, dist)
	}
}

// scanFrontier dispatches the claim scan of order[levelLo:levelHi] across
// workers goroutines (inline when the level is too small to be worth the
// fan-out). Worker w appends its claimed discoveries to bufs[w].
func (ps *ParallelScratch) scanFrontier(g *Graph, alive []bool, workers int) {
	if workers < 1 {
		workers = 1
	}
	ps.ensureWorkers(workers)
	ps.g, ps.alive = g, alive
	ps.cursor.Store(int64(ps.levelLo))
	if workers == 1 || ps.levelHi-ps.levelLo < parallelFanoutMin {
		ps.scanLevel(0)
		return
	}
	for w := 1; w < workers; w++ {
		ps.wg.Add(1)
		go ps.scanWorker(w)
	}
	ps.scanLevel(0)
	ps.wg.Wait()
}

// scanWorker is the goroutine body of one fan-out worker.
func (ps *ParallelScratch) scanWorker(w int) {
	defer ps.wg.Done()
	ps.scanLevel(w)
}

// scanLevel claims parallelChunk-sized slices of the frontier via the
// shared cursor and scans their CSR rows. For each eligible neighbor it
// runs the CAS-minimum protocol on state[v]: the worker whose CAS moves
// the state off psUnvisited owns the discovery (records v in its buffer);
// later and concurrent scanners only lower the pending rank. Settled
// nodes short-circuit on the bitset with a plain load — the bits were
// published before the level started.
//
//sdlint:hotpath
func (ps *ParallelScratch) scanLevel(w int) {
	buf := ps.bufs[w][:0]
	g, alive := ps.g, ps.alive
	marks, state := ps.marks, ps.state
	frontier := ps.order[:ps.levelHi]
	end := int64(ps.levelHi)
	for {
		hi := ps.cursor.Add(parallelChunk)
		lo := hi - parallelChunk
		if lo >= end {
			break
		}
		if hi > end {
			hi = end
		}
		for r := lo; r < hi; r++ {
			u := frontier[r]
			for _, v := range g.Neighbors(u) {
				if marks[uint(v)>>5]&(1<<(uint(v)&31)) != 0 {
					continue
				}
				if alive != nil && !alive[v] {
					continue
				}
				s := atomic.LoadInt64(&state[v])
				for s == psUnvisited || s > r {
					if atomic.CompareAndSwapInt64(&state[v], s, r) {
						if s == psUnvisited {
							buf = append(buf, v)
						}
						break
					}
					s = atomic.LoadInt64(&state[v])
				}
			}
		}
	}
	ps.bufs[w] = buf
}

// collectLevel merges the per-worker discovery buffers into the next
// frontier in the sequential visit order: sort by rank<<32|v (minimum
// discovering frontier rank, then node id — both fit 32 bits since node
// counts are capped at MaxInt32), then assign distances, settle states,
// and publish bitset bits. Runs on the coordinator between level scans,
// so the plain stores here happen-before the next level's plain loads.
func (ps *ParallelScratch) collectLevel(d int, dist []int) {
	keys := ps.keys[:0]
	for w := range ps.bufs {
		for _, v := range ps.bufs[w] {
			keys = append(keys, uint64(ps.state[v])<<32|uint64(uint32(v)))
		}
		ps.bufs[w] = ps.bufs[w][:0]
	}
	slices.Sort(keys)
	ps.keys = keys
	order := ps.order
	ps.levelLo = len(order)
	for _, k := range keys {
		v := int(uint32(k))
		order = append(order, v)
		ps.settle(v)
		if dist != nil {
			dist[v] = d
		}
	}
	ps.order = order
	ps.levelHi = len(order)
}

// parallelPool backs the package-level convenience wrappers, mirroring
// scratchPool for the sequential paths.
var parallelPool = sync.Pool{New: func() any { return NewParallelScratch() }}

// ParallelBFS is the pooled frontier-parallel BFS: semantics of the
// package-level BFS (and an identical visit order), scanned by up to
// workers goroutines. Unlike ParallelScratch.BFS the returned order is a
// fresh slice.
func ParallelBFS(g *Graph, alive []bool, srcs []int, dist []int, workers int) []int {
	ps := parallelPool.Get().(*ParallelScratch)
	order := ps.BFS(g, alive, srcs, dist, workers)
	out := make([]int, len(order))
	copy(out, order)
	parallelPool.Put(ps)
	return out
}

// ParallelComponents is the pooled frontier-parallel variant of the
// package-level Components: each component's members sorted, components
// ordered by smallest node.
func ParallelComponents(g *Graph, alive []bool, workers int) [][]int {
	ps := parallelPool.Get().(*ParallelScratch)
	comps := ps.Components(g, alive, workers)
	parallelPool.Put(ps)
	for _, comp := range comps {
		sortInts(comp)
	}
	return comps
}

// ParallelDiameterApprox is the pooled frontier-parallel 2-sweep diameter
// approximation over the alive subgraph, equal by construction to
// Scratch.DiameterApprox on the same input.
func ParallelDiameterApprox(g *Graph, alive []bool, workers int) int {
	ps := parallelPool.Get().(*ParallelScratch)
	diam := ps.DiameterApprox(g, alive, workers)
	parallelPool.Put(ps)
	return diam
}

// ParallelNeighborhoodSizes is the pooled frontier-parallel variant of
// NeighborhoodSizes.
func ParallelNeighborhoodSizes(g *Graph, alive []bool, srcs []int, dist []int, workers int) []int {
	ps := parallelPool.Get().(*ParallelScratch)
	sizes := ps.NeighborhoodSizes(g, alive, srcs, dist, workers)
	parallelPool.Put(ps)
	return sizes
}

// ForChunks partitions [0, n) into parallelChunk-sized ranges and runs
// fn(worker, lo, hi) over them on up to workers goroutines, claiming
// ranges from a shared cursor (work stealing, no pre-partitioning). Every
// index lands in exactly one call; fn must be safe for concurrent
// invocation on disjoint ranges. The rg carver uses this for its
// per-phase seed and proposal scans.
func ForChunks(n, workers int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	if workers == 1 || n < parallelFanoutMin {
		fn(0, 0, n)
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	body := func(w int) {
		for {
			hi := cursor.Add(parallelChunk)
			lo := hi - parallelChunk
			if lo >= int64(n) {
				return
			}
			if hi > int64(n) {
				hi = int64(n)
			}
			fn(w, int(lo), int(hi))
		}
	}
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			body(w)
		}(w)
	}
	body(0)
	wg.Wait()
}
