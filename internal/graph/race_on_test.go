//go:build race

package graph

// raceEnabled reports whether the race detector is active; see
// race_off_test.go for the intended split.
const raceEnabled = true
