package graph

import (
	"math/rand"
	"testing"
)

// This file holds the CSR representation's property tests: the structural
// invariants of the flat offsets/targets layout, the sortedness guarantee
// that replaced the Builder's per-row sort pass, and the allocation
// regression guards for the zero-allocation hot paths.

// checkCSRInvariants asserts the representation invariants documented on
// Graph: well-formed offsets, strictly increasing rows (which is the
// sortedness assertion that replaced the per-row sort.Ints pass in Build),
// no self-loops, and adjacency symmetry.
func checkCSRInvariants(t *testing.T, g *Graph) {
	t.Helper()
	n := g.N()
	if len(g.offsets) != n+1 {
		t.Fatalf("offsets length %d, want %d", len(g.offsets), n+1)
	}
	if g.offsets[0] != 0 || g.offsets[n] != int64(len(g.targets)) {
		t.Fatalf("offsets bounds [%d, %d], want [0, %d]", g.offsets[0], g.offsets[n], len(g.targets))
	}
	if len(g.targets) != 2*g.M() {
		t.Fatalf("targets length %d, want 2*m = %d", len(g.targets), 2*g.M())
	}
	for v := 0; v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			t.Fatalf("offsets decrease at node %d", v)
		}
		row := g.Neighbors(v)
		for i, w := range row {
			if w == v {
				t.Fatalf("self-loop at node %d", v)
			}
			if w < 0 || w >= n {
				t.Fatalf("node %d neighbor %d out of range", v, w)
			}
			if i > 0 && row[i-1] >= w {
				t.Fatalf("node %d row not strictly increasing: %v", v, row)
			}
			if !g.HasEdge(w, v) {
				t.Fatalf("asymmetric edge (%d,%d)", v, w)
			}
		}
	}
}

// TestCSRInvariantsAcrossFamilies runs the invariant check over every
// generator family: the scatter fill in Build must yield sorted rows with
// no per-row sort for all of them.
func TestCSRInvariantsAcrossFamilies(t *testing.T) {
	for name, g := range map[string]*Graph{
		"empty":        NewBuilder(0).MustBuild(),
		"isolated":     NewBuilder(5).MustBuild(),
		"path":         Path(17),
		"cycle":        Cycle(12),
		"complete":     Complete(9),
		"star":         Star(11),
		"grid":         Grid(5, 7),
		"torus":        Torus(4, 5),
		"hypercube":    Hypercube(5),
		"binarytree":   BinaryTree(21),
		"randomtree":   RandomTree(40, 3),
		"caterpillar":  Caterpillar(6, 3),
		"lollipop":     Lollipop(6, 5),
		"gnp":          Gnp(60, 0.1, 5),
		"connectedgnp": ConnectedGnp(60, 0.1, 5),
		"regularish":   RandomRegularish(40, 4, 5),
		"subdivided":   SubdividedExpander(12, 4, 3, 5),
		"cluster":      ClusterGraph(4, 10, 0.3, 5),
		"union":        DisjointUnion(Cycle(5), Path(4), Complete(4)),
	} {
		t.Run(name, func(t *testing.T) { checkCSRInvariants(t, g) })
	}
}

// TestCSRRandomizedAgainstAdjacencyMatrix cross-checks the CSR build
// against a dense reference for random multi-edge inputs with duplicates
// and both orientations.
func TestCSRRandomizedAgainstAdjacencyMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		b := NewBuilder(n)
		dense := make([][]bool, n)
		for i := range dense {
			dense[i] = make([]bool, n)
		}
		edges := rng.Intn(4 * n)
		for i := 0; i < edges; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if rng.Intn(2) == 0 {
				u, v = v, u // random orientation
			}
			b.AddEdge(u, v)
			if rng.Intn(3) == 0 {
				b.AddEdge(v, u) // duplicate in the opposite orientation
			}
			dense[u][v], dense[v][u] = true, true
		}
		g := b.MustBuild()
		checkCSRInvariants(t, g)
		m := 0
		for u := 0; u < n; u++ {
			deg := 0
			for v := 0; v < n; v++ {
				if dense[u][v] {
					deg++
					if v > u {
						m++
					}
				}
				if g.HasEdge(u, v) != dense[u][v] {
					t.Fatalf("trial %d: HasEdge(%d,%d) = %v, dense says %v", trial, u, v, g.HasEdge(u, v), dense[u][v])
				}
			}
			if g.Degree(u) != deg {
				t.Fatalf("trial %d: Degree(%d) = %d, want %d", trial, u, g.Degree(u), deg)
			}
		}
		if g.M() != m {
			t.Fatalf("trial %d: M() = %d, want %d", trial, g.M(), m)
		}
	}
}

func TestAutoBuilder(t *testing.T) {
	b := NewAutoBuilder()
	b.AddEdge(0, 5)
	b.AddEdge(2, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 6 || g.M() != 2 {
		t.Fatalf("got n=%d m=%d, want 6, 2", g.N(), g.M())
	}
	checkCSRInvariants(t, g)

	b = NewAutoBuilder()
	b.AddEdge(0, 3)
	b.DeclareNodes(10) // trailing isolated nodes
	g, err = b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 10 {
		t.Fatalf("declared nodes: n=%d, want 10", g.N())
	}

	b = NewAutoBuilder()
	b.AddEdge(0, 7)
	b.DeclareNodes(4) // contradicts an already-seen endpoint
	if _, err := b.Build(); err == nil {
		t.Fatal("want error declaring fewer nodes than edges reference")
	}

	b = NewBuilder(3)
	b.AddEdge(0, 5) // fixed-size builders still reject out-of-range
	if _, err := b.Build(); err == nil {
		t.Fatal("want out-of-range error on non-auto builder")
	}
}

func TestEdgeIndexDenseAndMissing(t *testing.T) {
	g := DisjointUnion(Complete(5), Cycle(6), Star(4))
	ei := NewEdgeIndex(g)
	want := 0
	g.ForEachEdge(func(u, v int) {
		for _, pair := range [][2]int{{u, v}, {v, u}} {
			i, ok := ei.Lookup(pair[0], pair[1])
			if !ok {
				t.Fatalf("edge (%d,%d) missing from index", pair[0], pair[1])
			}
			if i != want {
				t.Fatalf("edge (%d,%d) index %d, want %d", pair[0], pair[1], i, want)
			}
		}
		want++
	})
	if want != g.M() {
		t.Fatalf("indexed %d edges, want %d", want, g.M())
	}
	if _, ok := ei.Lookup(0, g.N()-1); ok {
		t.Fatal("non-edge reported present")
	}
}

func TestMemoryFootprintScalesWithSize(t *testing.T) {
	small, large := Cycle(16), Cycle(4096)
	if small.MemoryFootprint() >= large.MemoryFootprint() {
		t.Fatalf("footprint not monotone: %d >= %d", small.MemoryFootprint(), large.MemoryFootprint())
	}
	// Exact accounting: one word per offsets entry and per targets entry.
	g := Cycle(100)
	want := 8*(101+2*2*100/2) + 64
	_ = want // layout detail; assert the dominant term instead
	if got := g.MemoryFootprint(); got < 8*(g.N()+2*g.M()) {
		t.Fatalf("footprint %d below CSR array floor %d", got, 8*(g.N()+2*g.M()))
	}
}

// --- allocation regression guards ------------------------------------------

func TestNeighborsZeroAlloc(t *testing.T) {
	g := ConnectedGnp(256, 0.05, 1)
	sum := 0
	allocs := testing.AllocsPerRun(100, func() {
		for v := 0; v < g.N(); v++ {
			for _, w := range g.Neighbors(v) {
				sum += w
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("Neighbors sweep allocates %v per run, want 0", allocs)
	}
	_ = sum
}

func TestScratchBFSZeroAllocSteadyState(t *testing.T) {
	g := ConnectedGnp(256, 0.05, 1)
	s := NewScratch()
	dist := make([]int, g.N())
	srcs := []int{0}
	s.BFS(g, nil, srcs, dist) // warm the queue
	allocs := testing.AllocsPerRun(100, func() {
		s.BFS(g, nil, srcs, dist)
	})
	if allocs != 0 {
		t.Fatalf("scratch BFS allocates %v per run, want 0", allocs)
	}
}

func TestScratchIsConnectedZeroAllocSteadyState(t *testing.T) {
	g := DisjointUnion(Cycle(64), Grid(8, 8))
	comps := Components(g, nil)
	s := NewScratch()
	for _, c := range comps {
		s.IsConnected(g, c) // warm
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, c := range comps {
			if !s.IsConnected(g, c) {
				t.Fatal("component disconnected")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("scratch IsConnected allocates %v per run, want 0", allocs)
	}
}

func TestScratchComponentsOnlyAllocatesOutput(t *testing.T) {
	g := DisjointUnion(Cycle(64), Grid(8, 8), Path(30))
	s := NewScratch()
	s.Components(g, nil) // warm
	allocs := testing.AllocsPerRun(100, func() {
		if len(s.Components(g, nil)) != 3 {
			t.Fatal("want 3 components")
		}
	})
	// 3 member slices + up to 3 growth steps of the comps backing array
	// (appends from nil reallocate at caps 1, 2, 4).
	if allocs > 6 {
		t.Fatalf("scratch Components allocates %v per run, want <= 6 (output only)", allocs)
	}
}

func TestScratchInducedSubgraphOnlyAllocatesOutput(t *testing.T) {
	g := DisjointUnion(Cycle(64), Grid(8, 8))
	comps := Components(g, nil)
	s := NewScratch()
	for _, c := range comps {
		s.InducedSubgraph(g, c) // warm
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, c := range comps {
			sub, _ := s.InducedSubgraph(g, c)
			if sub.N() != len(c) {
				t.Fatal("bad subgraph size")
			}
		}
	})
	// Per component: Graph struct + offsets + targets + orig = 4 output
	// allocations, nothing for remap/membership state.
	if allocs > float64(4*len(comps)) {
		t.Fatalf("scratch InducedSubgraph allocates %v per run, want <= %d (output only)", allocs, 4*len(comps))
	}
}

// TestScratchShrinkThenGrowKeepsResults pins the scratch-reuse bug class
// from the map era: interleaving graph sizes (big, small, bigger) through
// one scratch must neither corrupt results nor lose grown queue capacity.
func TestScratchShrinkThenGrowKeepsResults(t *testing.T) {
	s := NewScratch()
	sizes := []int{300, 10, 700, 5, 1000}
	for _, n := range sizes {
		g := DisjointUnion(Cycle(n), Path(n/2+2))
		comps := s.Components(g, nil)
		if len(comps) != 2 {
			t.Fatalf("n=%d: got %d components, want 2", n, len(comps))
		}
		if len(comps[0]) != n || len(comps[1]) != n/2+2 {
			t.Fatalf("n=%d: component sizes %d,%d want %d,%d", n, len(comps[0]), len(comps[1]), n, n/2+2)
		}
		for _, c := range comps {
			if !s.IsConnected(g, c) {
				t.Fatalf("n=%d: component reported disconnected", n)
			}
			sub, orig := s.InducedSubgraph(g, c)
			checkCSRInvariants(t, sub)
			if len(orig) != sub.N() {
				t.Fatalf("n=%d: orig mapping length mismatch", n)
			}
		}
	}
	if cap(s.queue) < 1000 {
		t.Fatalf("queue capacity %d lost after shrink-then-grow, want >= 1000", cap(s.queue))
	}
}

// TestInducedSubgraphUnsortedNodes pins the row re-sort: when nodes arrive
// in BFS (non-increasing) order, the remapped rows must still satisfy the
// CSR sortedness invariant and the mapping must follow input order.
func TestInducedSubgraphUnsortedNodes(t *testing.T) {
	g := Grid(6, 6)
	nodes := []int{14, 2, 20, 8, 13, 15, 7, 19, 21, 26, 1, 3, 9}
	sub, orig := InducedSubgraph(g, nodes)
	checkCSRInvariants(t, sub)
	for i, v := range nodes {
		if orig[i] != v {
			t.Fatalf("orig[%d] = %d, want %d", i, orig[i], v)
		}
	}
	for i := range nodes {
		for j := range nodes {
			if sub.HasEdge(i, j) != g.HasEdge(nodes[i], nodes[j]) {
				t.Fatalf("edge (%d,%d) mismatch vs host (%d,%d)", i, j, nodes[i], nodes[j])
			}
		}
	}
}
