package graph

import (
	"testing"
	"testing/quick"
)

func TestBFSDistancesOnPath(t *testing.T) {
	g := Path(6)
	dist := make([]int, g.N())
	order := BFS(g, nil, []int{0}, dist)
	if len(order) != 6 {
		t.Fatalf("visited %d nodes", len(order))
	}
	for v := 0; v < 6; v++ {
		if dist[v] != v {
			t.Fatalf("dist[%d] = %d", v, dist[v])
		}
	}
}

func TestBFSMultiSource(t *testing.T) {
	g := Path(7)
	dist := make([]int, g.N())
	BFS(g, nil, []int{0, 6}, dist)
	want := []int{0, 1, 2, 3, 2, 1, 0}
	for v, w := range want {
		if dist[v] != w {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], w)
		}
	}
}

func TestBFSRespectsAliveMask(t *testing.T) {
	g := Path(5)
	alive := []bool{true, true, false, true, true}
	dist := make([]int, g.N())
	order := BFS(g, alive, []int{0}, dist)
	if len(order) != 2 {
		t.Fatalf("visited %d nodes through dead node", len(order))
	}
	if dist[3] != -1 || dist[4] != -1 {
		t.Fatalf("reached across dead node: %v", dist)
	}
	// Dead source is skipped entirely.
	order = BFS(g, alive, []int{2}, dist)
	if len(order) != 0 {
		t.Fatalf("dead source visited %d nodes", len(order))
	}
}

func TestBFSTreeParents(t *testing.T) {
	g := Grid(3, 3)
	dist, parent := BFSTree(g, nil, 0)
	if parent[0] != -1 {
		t.Fatalf("root parent %d", parent[0])
	}
	for v := 1; v < g.N(); v++ {
		p := parent[v]
		if p == -1 {
			t.Fatalf("unreached node %d", v)
		}
		if !g.HasEdge(v, p) {
			t.Fatalf("parent edge %d-%d missing", v, p)
		}
		if dist[v] != dist[p]+1 {
			t.Fatalf("dist[%d]=%d but dist[parent]=%d", v, dist[v], dist[p])
		}
	}
}

func TestComponentsSplitsUnion(t *testing.T) {
	g := DisjointUnion(Path(3), Path(4))
	comps := Components(g, nil)
	if len(comps) != 2 || len(comps[0]) != 3 || len(comps[1]) != 4 {
		t.Fatalf("components: %v", comps)
	}
}

func TestComponentsWithMask(t *testing.T) {
	g := Path(5)
	alive := []bool{true, true, false, true, true}
	comps := Components(g, alive)
	if len(comps) != 2 {
		t.Fatalf("masked components: %v", comps)
	}
}

func TestIsConnected(t *testing.T) {
	g := Path(5)
	if !IsConnected(g, []int{1, 2, 3}) {
		t.Fatal("contiguous path segment reported disconnected")
	}
	if IsConnected(g, []int{0, 2}) {
		t.Fatal("gap segment reported connected")
	}
	if !IsConnected(g, nil) || !IsConnected(g, []int{3}) {
		t.Fatal("trivial sets must be connected")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Cycle(6)
	sub, orig := InducedSubgraph(g, []int{0, 1, 2, 4})
	if sub.N() != 4 {
		t.Fatalf("sub n = %d", sub.N())
	}
	// Edges 0-1, 1-2 survive; 4 is isolated within the set.
	if sub.M() != 2 {
		t.Fatalf("sub m = %d, want 2", sub.M())
	}
	if orig[3] != 4 {
		t.Fatalf("orig mapping %v", orig)
	}
}

func TestStrongDiameter(t *testing.T) {
	g := Path(10)
	all := make([]int, 10)
	for i := range all {
		all[i] = i
	}
	if d := StrongDiameter(g, all); d != 9 {
		t.Fatalf("path diameter %d", d)
	}
	if d := StrongDiameter(g, []int{0, 1, 5}); d != -1 {
		t.Fatalf("disconnected set diameter %d, want -1", d)
	}
	if d := StrongDiameter(g, nil); d != -1 {
		t.Fatalf("empty set diameter %d, want -1", d)
	}
	if d := StrongDiameter(g, []int{4}); d != 0 {
		t.Fatalf("singleton diameter %d", d)
	}
}

func TestWeakVsStrongDiameter(t *testing.T) {
	// On a cycle, two antipodal-ish arcs: the set {0, 3} on C6 has weak
	// diameter 3 (through the graph) but is disconnected as induced.
	g := Cycle(6)
	if d := WeakDiameter(g, nil, []int{0, 3}); d != 3 {
		t.Fatalf("weak diameter %d, want 3", d)
	}
	if d := StrongDiameter(g, []int{0, 3}); d != -1 {
		t.Fatalf("strong diameter %d, want -1", d)
	}
	// Weak diameter with a mask that disconnects the pair.
	alive := []bool{true, false, true, true, true, false}
	if d := WeakDiameter(g, alive, []int{0, 3}); d != -1 {
		t.Fatalf("masked weak diameter %d, want -1", d)
	}
}

func TestEccentricity(t *testing.T) {
	g := Path(7)
	dist := make([]int, g.N())
	ecc, reached := Eccentricity(g, nil, 3, dist)
	if ecc != 3 || reached != 7 {
		t.Fatalf("ecc=%d reached=%d", ecc, reached)
	}
	alive := make([]bool, 7)
	ecc, reached = Eccentricity(g, alive, 3, dist)
	if ecc != -1 || reached != 0 {
		t.Fatalf("dead eccentricity ecc=%d reached=%d", ecc, reached)
	}
}

func TestDiameterApproxBounds(t *testing.T) {
	g := Path(20)
	if d := DiameterApprox(g, nil, 5); d != 19 {
		// Double sweep is exact on trees.
		t.Fatalf("path diameter approx %d", d)
	}
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	exact := StrongDiameter(g, all)
	if d := DiameterApprox(g, nil, 0); d > exact {
		t.Fatalf("approx %d exceeds exact %d", d, exact)
	}
}

func TestPowerGraph(t *testing.T) {
	g := Path(5)
	p2 := PowerGraph(g, 2)
	if !p2.HasEdge(0, 2) || p2.HasEdge(0, 3) {
		t.Fatalf("P^2 edges wrong")
	}
	p4 := PowerGraph(g, 4)
	if p4.M() != 10 {
		t.Fatalf("P^4 of path(5) should be complete, m=%d", p4.M())
	}
}

func TestNeighborhoodSizes(t *testing.T) {
	g := Path(5)
	dist := make([]int, g.N())
	sizes := NeighborhoodSizes(g, nil, []int{0}, dist)
	want := []int{1, 2, 3, 4, 5}
	if len(sizes) != len(want) {
		t.Fatalf("sizes %v", sizes)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes %v, want %v", sizes, want)
		}
	}
	if s := NeighborhoodSizes(g, make([]bool, 5), []int{0}, dist); s != nil {
		t.Fatalf("dead sources gave sizes %v", s)
	}
}

// Property: BFS distances satisfy the triangle-ish property along edges:
// adjacent alive nodes differ by at most 1 in distance.
func TestPropertyBFSLipschitz(t *testing.T) {
	f := func(seed uint8, nRaw uint8) bool {
		n := 10 + int(nRaw%50)
		g := ConnectedGnp(n, 0.08, int64(seed))
		dist := make([]int, n)
		BFS(g, nil, []int{0}, dist)
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(u) {
				d := dist[u] - dist[v]
				if d < -1 || d > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: strong diameter >= weak diameter for connected induced sets.
func TestPropertyWeakLEStrong(t *testing.T) {
	f := func(seed uint8) bool {
		g := ConnectedGnp(40, 0.05, int64(seed))
		dist := make([]int, g.N())
		// Take a BFS ball around node 0 of radius 3: connected by construction.
		var ball []int
		BFS(g, nil, []int{0}, dist)
		for v := 0; v < g.N(); v++ {
			if dist[v] >= 0 && dist[v] <= 3 {
				ball = append(ball, v)
			}
		}
		sd := StrongDiameter(g, ball)
		wd := WeakDiameter(g, nil, ball)
		return sd >= 0 && wd >= 0 && wd <= sd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
