package graph

import (
	"slices"
	"strings"
	"testing"
)

// TestCSRAccessorRoundTrip: the arrays CSR() exposes reconstruct the same
// graph through NewFromCSR, sharing storage (zero copy).
func TestCSRAccessorRoundTrip(t *testing.T) {
	graphs := map[string]*Graph{
		"cluster":  ClusterGraph(3, 6, 0.5, 1),
		"gnp":      Gnp(40, 0.2, 2),
		"path":     Path(7),
		"single":   Path(1),
		"empty":    Path(0),
		"disjoint": DisjointUnion(Cycle(5), Star(4)),
	}
	for name, g := range graphs {
		offsets, targets := g.CSR()
		if len(offsets) != g.N()+1 || len(targets) != 2*g.M() {
			t.Fatalf("%s: CSR lengths %d/%d, want %d/%d", name, len(offsets), len(targets), g.N()+1, 2*g.M())
		}
		got, err := NewFromCSR(offsets, targets)
		if err != nil {
			t.Fatalf("%s: NewFromCSR rejected valid arrays: %v", name, err)
		}
		if got.N() != g.N() || got.M() != g.M() {
			t.Fatalf("%s: n=%d m=%d, want n=%d m=%d", name, got.N(), got.M(), g.N(), g.M())
		}
		for v := 0; v < g.N(); v++ {
			if !slices.Equal(got.Neighbors(v), g.Neighbors(v)) {
				t.Fatalf("%s: node %d rows differ", name, v)
			}
		}
	}
}

// TestNewFromCSRRejectsInvalid drives every structural violation a
// checksum cannot catch through the validator: these are the array shapes
// a hostile (or buggy-writer) snapshot could carry with a perfectly
// consistent checksum.
func TestNewFromCSRRejectsInvalid(t *testing.T) {
	cases := []struct {
		name    string
		offsets []int64
		targets []int
		wantSub string
	}{
		{"empty-offsets", []int64{}, nil, "offsets empty"},
		{"bad-anchor", []int64{1, 2}, []int{0}, "offsets[0]"},
		{"bad-terminal", []int64{0, 4}, []int{1, 0}, "want len(targets)"},
		{"odd-targets", []int64{0, 1, 1, 1}, []int{1}, "odd"},
		{"decreasing-offsets", []int64{0, 2, 1, 4}, []int{1, 2, 0, 0}, "decrease"},
		{"out-of-range-target", []int64{0, 1, 2}, []int{1, 5}, "outside"},
		{"negative-target", []int64{0, 1, 2}, []int{1, -1}, "outside"},
		{"self-loop", []int64{0, 1, 2}, []int{0, 0}, "self-loop"},
		{"unsorted-row", []int64{0, 2, 3, 5, 6}, []int{2, 1, 0, 0, 3, 2}, "strictly increasing"},
		{"duplicate-in-row", []int64{0, 2, 4}, []int{1, 1, 0, 0}, "strictly increasing"},
		// Nodes 0 and 2 both list 1, but node 1's row is empty.
		{"asymmetric-forward", []int64{0, 1, 1, 2}, []int{1, 1}, "vice versa"},
		// Nodes 1 and 2 carry back-edges their mirrors never announce.
		{"asymmetric-backward", []int64{0, 0, 1, 2}, []int{0, 1}, "vice versa"},
		// Every row sorted, every edge one-directional: 0→1→2→3→0.
		{"mismatched-pair", []int64{0, 1, 2, 3, 4}, []int{1, 2, 3, 0}, "vice versa"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewFromCSR(tc.offsets, tc.targets)
			if err == nil {
				t.Fatalf("NewFromCSR accepted %s", tc.name)
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestNewFromCSRAsymmetricTail: a row whose backward neighbors are not
// fully consumed by the sweep (the mirror rows are silent) must fail —
// this is the case the final cursor pass exists for.
func TestNewFromCSRAsymmetricTail(t *testing.T) {
	// Node 2 lists back-neighbor 1, but node 1's row is empty: the sweep
	// never consumes it, and only the final pass can notice.
	offsets := []int64{0, 0, 0, 1, 2}
	targets := []int{1, 2} // row 2: [1]; row 3: [2]
	if _, err := NewFromCSR(offsets, targets); err == nil {
		t.Fatal("unconsumed back-edge accepted")
	}
}

// TestWrapCSRTrustsCaller pins the no-validation contract: WrapCSR adopts
// arrays as-is (the snapshot loader has already proven them via checksum).
func TestWrapCSRTrustsCaller(t *testing.T) {
	g := Cycle(6)
	offsets, targets := g.CSR()
	w := WrapCSR(offsets, targets)
	if w.N() != 6 || w.M() != 6 || !slices.Equal(w.Neighbors(3), g.Neighbors(3)) {
		t.Fatal("WrapCSR changed the graph")
	}
}
