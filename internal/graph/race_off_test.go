//go:build !race

package graph

// raceEnabled reports whether the race detector is active — same split
// as the root package's race_off_test.go/race_on_test.go pair: the
// plain run executes the AllocsPerRun guards, the -race run skips them
// (the race runtime adds bookkeeping allocations, making alloc counts
// nondeterministic) and covers everything else with the detector.
const raceEnabled = false
