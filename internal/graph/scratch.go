package graph

import (
	"slices"
	"sync"
)

// Scratch holds the reusable per-traversal buffers (visit stamps, BFS
// queue, subgraph remap table, distance array) that make the hot graph
// operations allocation-free in steady state. A Scratch is not safe for
// concurrent use; pool one per worker (the Engine plumbs them through its
// sync.Pool). Buffers only ever grow — a shrink-then-grow sequence of graph
// sizes never discards grown capacity.
//
// Visit marks are generation stamps rather than booleans, so "clearing" the
// visited set between calls is a single counter increment instead of an
// O(n) memset.
type Scratch struct {
	mark  []int64 // mark[v] >= gen encodes per-call node state
	gen   int64
	remap []int // node -> dense id, valid only while mark[v] is current
	queue []int
	dist  []int
}

// NewScratch returns an empty Scratch; buffers are sized on first use.
func NewScratch() *Scratch { return &Scratch{} }

// grow ensures the stamped arrays cover n nodes and returns a fresh
// generation pair (gen, gen+1): callers use gen for "marked" and gen+1 for
// "marked and visited". Newly grown regions are zero, which never matches a
// live generation because gen starts above zero and only increases.
func (s *Scratch) grow(n int) int64 {
	if len(s.mark) < n {
		mark := make([]int64, n)
		copy(mark, s.mark)
		s.mark = mark
		remap := make([]int, n)
		copy(remap, s.remap)
		s.remap = remap
	}
	s.gen += 2
	return s.gen
}

// BFS is the scratch-owned variant of the package-level BFS: identical
// semantics, but the returned visit-order slice aliases the scratch queue
// and is only valid until the next use of s.
//
//sdlint:hotpath
func (s *Scratch) BFS(g *Graph, alive []bool, srcs []int, dist []int) []int {
	for i := range dist {
		dist[i] = -1
	}
	queue := s.queue[:0]
	for _, v := range srcs {
		if alive != nil && !alive[v] {
			continue
		}
		if dist[v] == -1 {
			dist[v] = 0
			queue = append(queue, v)
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Neighbors(u) {
			if dist[v] != -1 || (alive != nil && !alive[v]) {
				continue
			}
			dist[v] = dist[u] + 1
			queue = append(queue, v)
		}
	}
	s.queue = queue[:0]
	return queue
}

// Components returns the connected components of the alive subgraph in BFS
// visit order (components ordered by smallest node, members in discovery
// order). Only the returned component slices are allocated; all traversal
// state comes from the scratch.
func (s *Scratch) Components(g *Graph, alive []bool) [][]int {
	n := g.N()
	gen := s.grow(n)
	var comps [][]int
	for v := 0; v < n; v++ {
		if s.mark[v] == gen || (alive != nil && !alive[v]) {
			continue
		}
		q := s.queue[:0]
		q = append(q, v)
		s.mark[v] = gen
		for head := 0; head < len(q); head++ {
			for _, w := range g.Neighbors(q[head]) {
				if s.mark[w] != gen && (alive == nil || alive[w]) {
					s.mark[w] = gen
					q = append(q, w)
				}
			}
		}
		comp := make([]int, len(q))
		copy(comp, q)
		comps = append(comps, comp)
		s.queue = q[:0] // retain grown capacity for the next component
	}
	return comps
}

// IsConnected reports whether the subgraph induced by nodes is connected
// (an empty or singleton set is connected). Zero allocations.
//
//sdlint:hotpath
func (s *Scratch) IsConnected(g *Graph, nodes []int) bool {
	if len(nodes) <= 1 {
		return true
	}
	gen := s.grow(g.N())
	for _, v := range nodes {
		s.mark[v] = gen // member, not yet visited
	}
	q := s.queue[:0]
	q = append(q, nodes[0])
	s.mark[nodes[0]] = gen + 1
	reached := 1
	for head := 0; head < len(q); head++ {
		for _, w := range g.Neighbors(q[head]) {
			if s.mark[w] == gen {
				s.mark[w] = gen + 1
				reached++
				q = append(q, w)
			}
		}
	}
	s.queue = q[:0]
	return reached == len(nodes)
}

// InducedSubgraph returns the subgraph induced by the distinct node set
// nodes, with new ids assigned by position in nodes, plus the new-to-original
// id mapping. The CSR rows are built directly from the host graph's rows —
// no Builder, no edge buffer, no remap map — so the only allocations are the
// three output arrays.
func (s *Scratch) InducedSubgraph(g *Graph, nodes []int) (*Graph, []int) {
	gen := s.grow(g.N())
	orig := make([]int, len(nodes))
	for i, v := range nodes {
		s.mark[v] = gen
		s.remap[v] = i
		orig[i] = v
	}
	offsets := make([]int64, len(nodes)+1)
	for i, v := range nodes {
		d := int64(0)
		for _, w := range g.Neighbors(v) {
			if s.mark[w] == gen {
				d++
			}
		}
		offsets[i+1] = offsets[i] + d
	}
	targets := make([]int, offsets[len(nodes)])
	for i, v := range nodes {
		c := offsets[i]
		for _, w := range g.Neighbors(v) {
			if s.mark[w] == gen {
				targets[c] = s.remap[w]
				c++
			}
		}
		// Host rows are sorted by original id; when nodes is not in
		// increasing order the remapped row needs a local re-sort to keep
		// the CSR row invariant.
		slices.Sort(targets[offsets[i]:c])
	}
	return fromCSR(offsets, targets), orig
}

// StrongDiameter is the scratch-backed variant of the package-level
// StrongDiameter: exact diameter of the induced subgraph, -1 if
// disconnected or empty.
func (s *Scratch) StrongDiameter(g *Graph, nodes []int) int {
	if len(nodes) == 0 {
		return -1
	}
	sub, _ := s.InducedSubgraph(g, nodes)
	if cap(s.dist) < sub.N() {
		s.dist = make([]int, sub.N())
	}
	dist := s.dist[:sub.N()]
	diam := 0
	for v := 0; v < sub.N(); v++ {
		order := s.BFS(sub, nil, []int{v}, dist)
		if len(order) != sub.N() {
			return -1
		}
		if d := dist[order[len(order)-1]]; d > diam {
			diam = d
		}
	}
	return diam
}

// DiameterApprox is the linear-time 2-sweep diameter approximation over
// the alive subgraph (nil alive means all nodes): for each connected
// component, one BFS finds a far node and a second BFS from it reports
// that node's eccentricity. The returned value is the maximum over
// components — a lower bound on the true diameter, which is at most
// twice it. Total work is O(n + m) regardless of how many components the
// subgraph splits into, and steady-state allocations are zero: all
// traversal state lives in the scratch.
func (s *Scratch) DiameterApprox(g *Graph, alive []bool) int {
	n := g.N()
	if n == 0 {
		return 0
	}
	gen := s.grow(n)
	if cap(s.dist) < n {
		s.dist = make([]int, n)
	}
	dist := s.dist[:n]
	for i := range dist {
		dist[i] = -1
	}
	return s.diameterSweep(g, alive, dist, gen)
}

// diameterSweep is DiameterApprox's allocation-free core. On entry the
// scratch is grown, dist[v] == -1 for every v, and gen is a fresh mark
// generation; each component is swept exactly once (marked nodes are
// skipped) and dist's all-minus-one invariant is restored between sweeps
// by touching only the nodes the sweep visited.
//
//sdlint:hotpath
func (s *Scratch) diameterSweep(g *Graph, alive []bool, dist []int, gen int64) int {
	diam := 0
	for v := 0; v < g.N(); v++ {
		if s.mark[v] == gen || (alive != nil && !alive[v]) {
			continue
		}
		order := s.bfsSweep(g, alive, v, dist)
		for _, u := range order {
			s.mark[u] = gen
			dist[u] = -1
		}
		far := order[len(order)-1]
		order = s.bfsSweep(g, alive, far, dist)
		last := order[len(order)-1]
		if dist[last] > diam {
			diam = dist[last]
		}
		for _, u := range order {
			dist[u] = -1
		}
	}
	return diam
}

// bfsSweep is the single-source variant of Scratch.BFS backing the
// 2-sweep: identical traversal, but it skips BFS's O(n) distance reset —
// the caller guarantees dist[v] == -1 for every reachable v and restores
// that invariant afterward — so a sweep costs only its own component.
// The returned visit order aliases the scratch queue and is only valid
// until the next use of s.
//
//sdlint:hotpath
func (s *Scratch) bfsSweep(g *Graph, alive []bool, src int, dist []int) []int {
	queue := s.queue[:0]
	dist[src] = 0
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Neighbors(u) {
			if dist[v] != -1 || (alive != nil && !alive[v]) {
				continue
			}
			dist[v] = dist[u] + 1
			queue = append(queue, v)
		}
	}
	s.queue = queue[:0]
	return queue
}

// scratchPool backs the package-level convenience functions (IsConnected,
// InducedSubgraph, StrongDiameter), so even scratch-less callers reuse
// traversal state across calls.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

func getScratch() *Scratch  { return scratchPool.Get().(*Scratch) }
func putScratch(s *Scratch) { scratchPool.Put(s) }
