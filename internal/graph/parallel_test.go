package graph

import (
	"math/rand"
	"sync"
	"testing"
)

// The differential harness: every frontier-parallel primitive is checked
// against its sequential oracle over every generator family, a range of
// worker counts, and random alive-masks. The contract under test is
// strict — identical visit ORDER, not merely identical distances — since
// order equality is what keeps the engine's golden fixtures bit-identical
// when the parallel path is switched on. CI runs this file under -race
// three times (flaky-guard), so the claim protocol's atomics are also
// exercised for data races.

// diffWorkerCounts are the fan-out widths of the differential sweep.
var diffWorkerCounts = []int{1, 2, 4, 8}

// diffFamily is one generator instance of the differential sweep.
type diffFamily struct {
	name string
	g    *Graph
}

// diffFamilies instantiates every generator family in gen.go at a small
// size, plus large instances whose BFS levels exceed the inline-scan
// threshold so the goroutine fan-out and the CAS-minimum contention path
// genuinely run.
func diffFamilies() []diffFamily {
	return []diffFamily{
		{"path", Path(257)},
		{"cycle", Cycle(256)},
		{"complete", Complete(64)},
		{"star", Star(300)},
		{"grid", Grid(17, 19)},
		{"torus", Torus(16, 18)},
		{"hypercube", Hypercube(8)},
		{"binary-tree", BinaryTree(511)},
		{"random-tree", RandomTree(400, 3)},
		{"caterpillar", Caterpillar(40, 6)},
		{"lollipop", Lollipop(30, 90)},
		{"gnp", Gnp(500, 0.02, 11)},
		{"connected-gnp", ConnectedGnp(500, 0.015, 13)},
		{"regularish", RandomRegularish(600, 4, 17)},
		{"subdivided-expander", SubdividedExpander(16, 4, 3, 5)},
		{"cluster-graph", ClusterGraph(6, 50, 0.3, 19)},
		{"disjoint-union", DisjointUnion(Path(100), Cycle(101), Grid(9, 11), Star(60))},
		// Large instances: frontiers of thousands of nodes, so levels fan
		// out to real worker goroutines instead of the inline path.
		{"big-star", Star(6000)},
		{"big-gnp", ConnectedGnp(20000, 5.0/20000, 23)},
		{"big-regularish", RandomRegularish(16000, 8, 29)},
	}
}

// diffMasks returns the alive-masks of the sweep for an n-node graph: the
// nil mask plus deterministic random masks at two survival densities.
func diffMasks(n int, seed int64) [][]bool {
	rng := rand.New(rand.NewSource(seed))
	masks := [][]bool{nil}
	for _, density := range []float64{0.9, 0.6} {
		mask := make([]bool, n)
		for i := range mask {
			mask[i] = rng.Float64() < density
		}
		masks = append(masks, mask)
	}
	return masks
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParallelBFSDifferential pins ParallelScratch.BFS to Scratch.BFS:
// identical distance arrays AND identical visit order, single- and
// multi-source, across families, worker counts, and masks.
func TestParallelBFSDifferential(t *testing.T) {
	seq := NewScratch()
	par := NewParallelScratch()
	for _, fam := range diffFamilies() {
		n := fam.g.N()
		wantDist := make([]int, n)
		gotDist := make([]int, n)
		srcSets := [][]int{{0}, {n - 1, 0, n / 2, 0}}
		for mi, mask := range diffMasks(n, int64(31+n)) {
			for _, srcs := range srcSets {
				wantOrder := seq.BFS(fam.g, mask, srcs, wantDist)
				want := make([]int, len(wantOrder))
				copy(want, wantOrder)
				for _, workers := range diffWorkerCounts {
					gotOrder := par.BFS(fam.g, mask, srcs, gotDist, workers)
					if !equalIntSlices(want, gotOrder) {
						t.Fatalf("%s mask=%d workers=%d srcs=%v: visit order diverges from sequential oracle", fam.name, mi, workers, srcs)
					}
					if !equalIntSlices(wantDist, gotDist) {
						t.Fatalf("%s mask=%d workers=%d srcs=%v: dist array diverges from sequential oracle", fam.name, mi, workers, srcs)
					}
				}
			}
		}
	}
}

// TestParallelComponentsDifferential pins both component surfaces:
// ParallelScratch.Components against Scratch.Components (exact member
// order) and the pooled ParallelComponents against the package-level
// Components (sorted members).
func TestParallelComponentsDifferential(t *testing.T) {
	seq := NewScratch()
	par := NewParallelScratch()
	for _, fam := range diffFamilies() {
		for mi, mask := range diffMasks(fam.g.N(), int64(37+fam.g.N())) {
			want := seq.Components(fam.g, mask)
			wantSorted := Components(fam.g, mask)
			for _, workers := range diffWorkerCounts {
				got := par.Components(fam.g, mask, workers)
				if len(got) != len(want) {
					t.Fatalf("%s mask=%d workers=%d: %d components, oracle has %d", fam.name, mi, workers, len(got), len(want))
				}
				for i := range want {
					if !equalIntSlices(want[i], got[i]) {
						t.Fatalf("%s mask=%d workers=%d: component %d member order diverges", fam.name, mi, workers, i)
					}
				}
				gotSorted := ParallelComponents(fam.g, mask, workers)
				for i := range wantSorted {
					if !equalIntSlices(wantSorted[i], gotSorted[i]) {
						t.Fatalf("%s mask=%d workers=%d: sorted component %d diverges", fam.name, mi, workers, i)
					}
				}
			}
		}
	}
}

// TestParallelDiameterApproxDifferential pins the parallel 2-sweep to the
// sequential one: identical far-node choices (via identical visit order)
// imply an identical returned bound, not just one within the 2x envelope.
func TestParallelDiameterApproxDifferential(t *testing.T) {
	seq := NewScratch()
	par := NewParallelScratch()
	for _, fam := range diffFamilies() {
		for mi, mask := range diffMasks(fam.g.N(), int64(41+fam.g.N())) {
			want := seq.DiameterApprox(fam.g, mask)
			for _, workers := range diffWorkerCounts {
				if got := par.DiameterApprox(fam.g, mask, workers); got != want {
					t.Fatalf("%s mask=%d workers=%d: diameter approx %d, oracle %d", fam.name, mi, workers, got, want)
				}
				if got := ParallelDiameterApprox(fam.g, mask, workers); got != want {
					t.Fatalf("%s mask=%d workers=%d: pooled diameter approx %d, oracle %d", fam.name, mi, workers, got, want)
				}
			}
		}
	}
}

// TestParallelNeighborhoodSizesDifferential pins the cumulative
// ball-size profile the Theorem 2.1 carving consumes.
func TestParallelNeighborhoodSizesDifferential(t *testing.T) {
	par := NewParallelScratch()
	for _, fam := range diffFamilies() {
		n := fam.g.N()
		wantDist := make([]int, n)
		gotDist := make([]int, n)
		for mi, mask := range diffMasks(n, int64(43+n)) {
			for _, src := range []int{0, n / 2} {
				want := NeighborhoodSizes(fam.g, mask, []int{src}, wantDist)
				for _, workers := range diffWorkerCounts {
					got := par.NeighborhoodSizes(fam.g, mask, []int{src}, gotDist, workers)
					if !equalIntSlices(want, got) {
						t.Fatalf("%s mask=%d workers=%d src=%d: neighborhood sizes diverge", fam.name, mi, workers, src)
					}
					if !equalIntSlices(wantDist, gotDist) {
						t.Fatalf("%s mask=%d workers=%d src=%d: dist diverges", fam.name, mi, workers, src)
					}
				}
			}
		}
	}
}

// TestParallelBFSAllocs is the AllocsPerRun guard over the parallel
// frontier inner loop: with a warmed scratch and workers=1 (the same
// scanLevel/collectLevel code the fan-out workers execute, minus
// goroutine startup) a steady-state traversal performs zero heap
// allocations. The -race builds skip it like the other allocation
// guards: the race runtime instruments allocations.
func TestParallelBFSAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation guard is meaningless under -race instrumentation")
	}
	g := ConnectedGnp(4096, 4.0/4096, 7)
	ps := NewParallelScratch()
	dist := make([]int, g.N())
	srcs := []int{0}
	ps.BFS(g, nil, srcs, dist, 1) // warm buffers
	if avg := testing.AllocsPerRun(20, func() {
		ps.BFS(g, nil, srcs, dist, 1)
	}); avg != 0 {
		t.Errorf("ParallelScratch.BFS steady state allocates %.1f times per run, want 0", avg)
	}
	ps.DiameterApprox(g, nil, 1)
	if avg := testing.AllocsPerRun(10, func() {
		ps.DiameterApprox(g, nil, 1)
	}); avg != 0 {
		t.Errorf("ParallelScratch.DiameterApprox steady state allocates %.1f times per run, want 0", avg)
	}
}

// TestParallelScratchInterleavedReuse proves pooled reuse is safe: many
// goroutines concurrently pull scratches through the package pool and
// interleave BFS / Components / DiameterApprox calls (each with internal
// fan-out), every result checked against a fresh sequential oracle. A
// scratch whose claim state leaked across uses or across goroutines
// would produce wrong orders here.
func TestParallelScratchInterleavedReuse(t *testing.T) {
	graphs := []*Graph{
		ConnectedGnp(3000, 5.0/3000, 3),
		Star(2500),
		DisjointUnion(Grid(20, 25), Cycle(333), RandomTree(501, 9)),
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for rep := 0; rep < 6; rep++ {
		for gi, g := range graphs {
			wg.Add(1)
			go func(rep, gi int, g *Graph) {
				defer wg.Done()
				seq := NewScratch()
				dist := make([]int, g.N())
				wantDist := make([]int, g.N())
				workers := 1 + (rep+gi)%4
				order := ParallelBFS(g, nil, []int{gi}, dist, workers)
				wantOrder := seq.BFS(g, nil, []int{gi}, wantDist)
				if !equalIntSlices(order, wantOrder) || !equalIntSlices(dist, wantDist) {
					errs <- "interleaved BFS diverged"
					return
				}
				want := seq.Components(g, nil)
				got := ParallelComponents(g, nil, workers)
				if len(got) != len(want) {
					errs <- "interleaved Components diverged"
					return
				}
				if d, w := ParallelDiameterApprox(g, nil, workers), seq.DiameterApprox(g, nil); d != w {
					errs <- "interleaved DiameterApprox diverged"
				}
			}(rep, gi, g)
		}
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}

// TestForChunksCovers checks the work-stealing chunker visits every index
// exactly once for a spread of sizes and widths.
func TestForChunksCovers(t *testing.T) {
	for _, n := range []int{0, 1, parallelChunk - 1, parallelChunk, parallelFanoutMin, 3*parallelChunk + 17, 10000} {
		for _, workers := range diffWorkerCounts {
			var mu sync.Mutex
			seen := make([]int, n)
			ForChunks(n, workers, func(_, lo, hi int) {
				mu.Lock()
				for i := lo; i < hi; i++ {
					seen[i]++
				}
				mu.Unlock()
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, c)
				}
			}
		}
	}
}
