package graph

import "testing"

// exactDiameter is the brute-force reference: max eccentricity over all
// alive nodes within their own components.
func exactDiameter(g *Graph, alive []bool) int {
	dist := make([]int, g.N())
	diam := 0
	for v := 0; v < g.N(); v++ {
		if alive != nil && !alive[v] {
			continue
		}
		order := BFS(g, alive, []int{v}, dist)
		if d := dist[order[len(order)-1]]; d > diam {
			diam = d
		}
	}
	return diam
}

func TestScratchDiameterApproxExactFamilies(t *testing.T) {
	// Families where the 2-sweep is known to land exactly on the diameter:
	// a BFS from any node of a path, cycle, grid, star, or tree reaches a
	// peripheral node.
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"path-10", Path(10), 9},
		{"path-1", Path(1), 0},
		{"cycle-10", Cycle(10), 5},
		{"cycle-7", Cycle(7), 3},
		{"grid-4x5", Grid(4, 5), 7},
		{"star-8", Star(8), 2},
		{"complete-6", Complete(6), 1},
		{"union", DisjointUnion(Path(10), Cycle(6), Path(1)), 9},
	}
	s := NewScratch()
	for _, tc := range cases {
		if got := s.DiameterApprox(tc.g, nil); got != tc.want {
			t.Errorf("%s: DiameterApprox = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestScratchDiameterApproxBounds(t *testing.T) {
	// On arbitrary graphs the 2-sweep result is a lower bound on the true
	// diameter and never below half of it.
	s := NewScratch()
	for seed := int64(0); seed < 8; seed++ {
		g := Gnp(80, 0.04, seed)
		got := s.DiameterApprox(g, nil)
		exact := exactDiameter(g, nil)
		if got > exact {
			t.Fatalf("seed %d: approx %d exceeds exact %d", seed, got, exact)
		}
		if 2*got < exact {
			t.Fatalf("seed %d: approx %d below half of exact %d", seed, got, exact)
		}
	}
}

func TestScratchDiameterApproxAliveMask(t *testing.T) {
	g := Path(10)
	alive := make([]bool, g.N())
	for v := 0; v < 5; v++ {
		alive[v] = true
	}
	s := NewScratch()
	if got := s.DiameterApprox(g, alive); got != 4 {
		t.Fatalf("masked path: DiameterApprox = %d, want 4", got)
	}
	// Splitting the path into two alive runs makes the subgraph
	// disconnected; the max over components must win.
	for v := 7; v < 10; v++ {
		alive[v] = true
	}
	if got := s.DiameterApprox(g, alive); got != 4 {
		t.Fatalf("split path: DiameterApprox = %d, want 4", got)
	}
}

func TestScratchDiameterApproxInterleavedWithOtherScratchUse(t *testing.T) {
	// The sweep must tolerate a dirty dist array left behind by other
	// scratch users (StrongDiameter writes real distances into s.dist).
	g := Grid(6, 6)
	s := NewScratch()
	nodes := make([]int, g.N())
	for v := range nodes {
		nodes[v] = v
	}
	for i := 0; i < 3; i++ {
		if d := s.StrongDiameter(g, nodes); d != 10 {
			t.Fatalf("StrongDiameter = %d, want 10", d)
		}
		if d := s.DiameterApprox(g, nil); d != 10 {
			t.Fatalf("DiameterApprox = %d, want 10", d)
		}
	}
}

func TestScratchDiameterApproxZeroAllocSteadyState(t *testing.T) {
	g := DisjointUnion(ConnectedGnp(256, 0.05, 1), Grid(8, 8))
	s := NewScratch()
	s.DiameterApprox(g, nil) // warm the scratch buffers
	allocs := testing.AllocsPerRun(100, func() {
		s.DiameterApprox(g, nil)
	})
	if allocs != 0 {
		t.Fatalf("scratch DiameterApprox allocates %v per run, want 0", allocs)
	}
}
