package core

// This file implements the *edge version* of the Theorem 2.1 transformation
// and Theorem 2.2 carving, which the paper states as a corollary ("all
// results in Table 2 ... also apply to the edge version, where we remove at
// most an ε fraction of the edges ... the proofs for the edge version are
// essentially the same"). Nodes are never removed: instead at most an ε
// fraction of the edges is cut, every node ends up in a cluster, distinct
// clusters have no remaining edge between them, and each cluster — a
// connected component of the remaining graph — has bounded strong diameter
// measured within the remaining graph.

import (
	"context"
	"fmt"
	"math"
	"sort"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/registry"
	"strongdecomp/internal/rg"
	"strongdecomp/internal/rounds"
)

// EdgeCarving is a clustering of all nodes together with the cut edge set.
type EdgeCarving struct {
	Assign  []int
	K       int
	Centers []int
	Cut     [][2]int
}

// EdgeWeakCarver is the edge-version black box of the transformation.
type EdgeWeakCarver func(g *graph.Graph, nodes []int, eps float64, m *rounds.Meter) (*rg.EdgeCarving, error)

// StrongCarveEdges is the edge version of Theorem 2.1: using a weak-diameter
// edge carver as a black box, it cuts at most an eps fraction of the edges
// of the subgraph induced by nodes so that every remaining connected
// component has bounded strong diameter. The iteration structure mirrors the
// node version with edge counts in place of node counts: the giant-cluster
// ball grows until a radius whose boundary holds at most an eps/2 fraction
// of the ball's edges, and the boundary edges (not nodes) are cut.
func StrongCarveEdges(g *graph.Graph, nodes []int, eps float64, weak EdgeWeakCarver, m *rounds.Meter) (*EdgeCarving, error) {
	return StrongCarveEdgesContext(context.Background(), g, nodes, eps, weak, m)
}

// StrongCarveEdgesContext is StrongCarveEdges with cancellation observed
// before every component task.
func StrongCarveEdgesContext(ctx context.Context, g *graph.Graph, nodes []int, eps float64, weak EdgeWeakCarver, m *rounds.Meter) (*EdgeCarving, error) {
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("core: eps %v outside (0, 1]", eps)
	}
	if nodes == nil {
		nodes = allNodes(g.N())
	}
	out := &EdgeCarving{Assign: make([]int, g.N())}
	for i := range out.Assign {
		out.Assign[i] = cluster.Unclustered
	}
	if len(nodes) == 0 {
		return out, nil
	}

	totalEdges := inducedEdgeCount(g, maskOf(g.N(), nodes), nil)
	if totalEdges == 0 {
		// Isolated nodes: every node is its own cluster.
		for _, v := range nodes {
			out.Assign[v] = out.K
			out.Centers = append(out.Centers, v)
			out.K++
		}
		return out, nil
	}
	iterLimit := log2ceil(totalEdges) + 1
	epsWeak := eps / (2 * float64(log2ceil(totalEdges)))
	window := shellWindow(totalEdges, eps)

	cut := make(map[[2]int]bool)
	isCut := func(u, v int) bool {
		if u > v {
			u, v = v, u
		}
		return cut[[2]int{u, v}]
	}
	addCut := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		cut[[2]int{u, v}] = true
	}

	type task struct {
		comp []int
		iter int
	}
	var queue []task
	for _, comp := range componentsEdges(g, nodes, isCut) {
		queue = append(queue, task{comp: comp, iter: 1})
	}
	dist := make([]int, g.N())

	for len(queue) > 0 {
		if err := registry.CtxErr(ctx); err != nil {
			return nil, err
		}
		t := queue[0]
		queue = queue[1:]
		s := t.comp
		if len(s) == 0 {
			continue
		}
		sMask := maskOf(g.N(), s)
		mS := inducedEdgeCount(g, sMask, isCut)
		if len(s) == 1 || mS == 0 || t.iter > iterLimit {
			for _, v := range s {
				out.Assign[v] = out.K
			}
			out.Centers = append(out.Centers, s[0])
			out.K++
			continue
		}

		// The weak edge carver runs on the remaining subgraph: materialize
		// it so prior cuts are invisible to the black box.
		sub, orig := inducedMinusCut(g, s, isCut)
		wc, err := weak(sub, nil, epsWeak, m)
		if err != nil {
			return nil, fmt.Errorf("core: weak edge carver: %w", err)
		}

		// Gather sizes over Steiner trees: depth x congestion.
		members := wc.Carving.Members()
		maxDepth := 0
		for cl := range members {
			if tr := wc.Carving.Trees[cl]; tr != nil {
				if d := tr.Depth(); d > maxDepth {
					maxDepth = d
				}
			}
		}
		m.Charge("thm21/gather", int64(maxDepth+1)*int64(log2ceil(g.N())))

		threshold := float64(totalEdges) / math.Exp2(float64(t.iter))
		giant := -1
		for cl, ms := range members {
			if float64(internalEdges(sub, ms)) > threshold {
				giant = cl
				break
			}
		}

		if giant < 0 {
			// Commit the weak carver's cuts; recurse on the components.
			for _, e := range wc.Cut {
				addCut(orig[e[0]], orig[e[1]])
			}
			for _, comp := range componentsEdges(g, s, isCut) {
				queue = append(queue, task{comp: comp, iter: t.iter + 1})
			}
			continue
		}

		// Giant cluster: ball-grow from its tree root in the remaining
		// subgraph, counting internal edges per radius.
		root := orig[wc.Carving.Centers[giant]]
		rootDepth := memberTreeDepth(wc.Carving.Trees[giant], members[giant])
		order := bfsMinusCut(g, sMask, isCut, root, dist)
		edgeAt := cumulativeEdges(g, sMask, isCut, order, dist)
		maxLayer := len(edgeAt) - 1
		rStart := rootDepth
		if rStart > maxLayer {
			rStart = maxLayer
		}
		rStar := rStart
		for r := rStart; r < maxLayer && r < rStart+window; r++ {
			if float64(edgeAt[r]) >= (1-eps/2)*float64(sizeAt(edgeAt, r+1)) {
				rStar = r
				break
			}
			rStar = r + 1
		}
		m.Charge("thm21/bfs", int64(rStar)+2)

		var ball []int
		for _, v := range s {
			if dist[v] >= 0 && dist[v] <= rStar {
				ball = append(ball, v)
			}
		}
		// Cut every remaining edge leaving the ball.
		for _, v := range ball {
			for _, u := range g.Neighbors(v) {
				if sMask[u] && !isCut(v, u) && (dist[u] < 0 || dist[u] > rStar) {
					addCut(v, u)
				}
			}
		}
		for _, v := range ball {
			out.Assign[v] = out.K
		}
		out.Centers = append(out.Centers, root)
		out.K++
		var rest []int
		for _, v := range s {
			if dist[v] < 0 || dist[v] > rStar {
				rest = append(rest, v)
			}
		}
		for _, comp := range componentsEdges(g, rest, isCut) {
			queue = append(queue, task{comp: comp, iter: t.iter + 1})
		}
	}

	out.Cut = make([][2]int, 0, len(cut))
	for e := range cut {
		out.Cut = append(out.Cut, e)
	}
	sort.Slice(out.Cut, func(i, j int) bool {
		if out.Cut[i][0] != out.Cut[j][0] {
			return out.Cut[i][0] < out.Cut[j][0]
		}
		return out.Cut[i][1] < out.Cut[j][1]
	})
	return out, nil
}

// CarveEdgesRG is the edge version of Theorem 2.2: StrongCarveEdges
// instantiated with the deterministic weak edge carver of internal/rg.
func CarveEdgesRG(g *graph.Graph, nodes []int, eps float64, m *rounds.Meter) (*EdgeCarving, error) {
	return CarveEdgesRGContext(context.Background(), g, nodes, eps, m)
}

// CarveEdgesRGContext is CarveEdgesRG with cancellation support.
func CarveEdgesRGContext(ctx context.Context, g *graph.Graph, nodes []int, eps float64, m *rounds.Meter) (*EdgeCarving, error) {
	return StrongCarveEdgesContext(ctx, g, nodes, eps, rg.CarveEdges, m)
}

// --- helpers ---------------------------------------------------------------

// inducedEdgeCount counts uncut edges with both endpoints in the mask.
func inducedEdgeCount(g *graph.Graph, mask []bool, isCut func(u, v int) bool) int {
	count := 0
	for u := 0; u < g.N(); u++ {
		if !mask[u] {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if u < v && mask[v] && (isCut == nil || !isCut(u, v)) {
				count++
			}
		}
	}
	return count
}

// internalEdges counts edges of g with both endpoints in members.
func internalEdges(g *graph.Graph, members []int) int {
	in := make(map[int]bool, len(members))
	for _, v := range members {
		in[v] = true
	}
	count := 0
	for _, v := range members {
		for _, u := range g.Neighbors(v) {
			if v < u && in[u] {
				count++
			}
		}
	}
	return count
}

// componentsEdges returns the connected components of the remaining graph
// (mask minus cut edges) restricted to nodes.
func componentsEdges(g *graph.Graph, nodes []int, isCut func(u, v int) bool) [][]int {
	mask := maskOf(g.N(), nodes)
	seen := make(map[int]bool, len(nodes))
	var comps [][]int
	for _, s := range nodes {
		if seen[s] {
			continue
		}
		queue := []int{s}
		seen[s] = true
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.Neighbors(u) {
				if mask[v] && !seen[v] && !isCut(u, v) {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		comp := append([]int(nil), queue...)
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// bfsMinusCut is BFS in the remaining subgraph; dist is -1 off-tree.
func bfsMinusCut(g *graph.Graph, mask []bool, isCut func(u, v int) bool, src int, dist []int) []int {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	order := []int{src}
	for head := 0; head < len(order); head++ {
		u := order[head]
		for _, v := range g.Neighbors(u) {
			if mask[v] && dist[v] == -1 && !isCut(u, v) {
				dist[v] = dist[u] + 1
				order = append(order, v)
			}
		}
	}
	return order
}

// cumulativeEdges returns, per radius r, the number of remaining edges with
// both endpoints within distance r of the BFS source.
func cumulativeEdges(g *graph.Graph, mask []bool, isCut func(u, v int) bool, order []int, dist []int) []int {
	maxD := 0
	for _, v := range order {
		if dist[v] > maxD {
			maxD = dist[v]
		}
	}
	counts := make([]int, maxD+1)
	for _, v := range order {
		for _, u := range g.Neighbors(v) {
			if v < u && mask[u] && dist[u] >= 0 && !isCut(v, u) {
				d := dist[v]
				if dist[u] > d {
					d = dist[u]
				}
				counts[d]++
			}
		}
	}
	for d := 1; d <= maxD; d++ {
		counts[d] += counts[d-1]
	}
	return counts
}

// inducedMinusCut materializes the remaining subgraph on nodes, returning it
// with the new-to-original id mapping.
func inducedMinusCut(g *graph.Graph, nodes []int, isCut func(u, v int) bool) (*graph.Graph, []int) {
	toNew := make(map[int]int, len(nodes))
	orig := make([]int, len(nodes))
	for i, v := range nodes {
		toNew[v] = i
		orig[i] = v
	}
	b := graph.NewBuilder(len(nodes))
	for i, v := range nodes {
		for _, w := range g.Neighbors(v) {
			if j, ok := toNew[w]; ok && i < j && !isCut(v, w) {
				b.AddEdge(i, j)
			}
		}
	}
	return b.MustBuild(), orig
}
