package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/registry"
	"strongdecomp/internal/rounds"
)

// CutResult is the outcome of Lemma 3.1 on a connected node set V.
type CutResult struct {
	// IsCut reports which branch was taken.
	IsCut bool

	// Balanced sparse cut branch: V1 and V2 are non-adjacent, each holding
	// at least |V|/3 nodes; Separator = V \ (V1 ∪ V2) is small
	// (O(eps·|V|/log |V|)).
	V1, V2, Separator []int

	// Large small-diameter component branch: U has at least |V|/3 nodes and
	// strong diameter O(log²|V|/eps); Boundary is the set of nodes of V\U
	// adjacent to U (small).
	U, Boundary []int
}

// CutOrComponent implements Lemma 3.1: on the connected node set nodes of g
// it returns either a balanced sparse cut or a large small-diameter
// component. The implementation follows the paper's halving scheme: maintain
// a set S (initially V); per iteration compute the radii a and b at which
// the BFS ball around S reaches |V|/3 and 2|V|/3 nodes; if the [a, b] window
// is wide, cut at its thinnest layer; otherwise halve S by the in-order of a
// BFS tree rooted at the minimum-id node, keeping the half with the smaller
// a. When S is a single node, the thinnest layer in a window above a yields
// the component.
func CutOrComponent(g *graph.Graph, nodes []int, eps float64, m *rounds.Meter) (*CutResult, error) {
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("core: eps %v outside (0, 1]", eps)
	}
	nV := len(nodes)
	if nV == 0 {
		return nil, fmt.Errorf("core: empty node set")
	}
	if nV <= 3 {
		return &CutResult{U: append([]int(nil), nodes...)}, nil
	}

	mask := maskOf(g.N(), nodes)
	dist := make([]int, g.N())

	// Thinness target x: shells of relative size x = eps / (2·log₂ n) match
	// the paper's O(eps·n / log n) bounds. Window lengths guarantee a layer
	// of ratio <= e^x exists (ball sizes within a window span a factor <= 3).
	x := eps / (2 * float64(log2ceil(nV)))
	window := int(math.Ceil(math.Log(3)/x)) + 1

	// Deterministic halving order: in-order of a BFS tree from the min-id
	// node (nodes is sorted ascending by construction of Components, but do
	// not rely on it).
	order := inOrderPositions(g, mask, nodes)

	s := append([]int(nil), nodes...)
	for len(s) > 1 {
		sizes := graph.NeighborhoodSizes(g, mask, s, dist)
		maxLayer := len(sizes) - 1
		a := radiusReaching(sizes, (nV+2)/3)
		b := radiusReaching(sizes, (2*nV+2)/3)
		m.Charge("lemma31/bfs", int64(maxLayer)+1)

		if b-a >= window {
			// Wide window: cut at the thinnest layer r* in [a, b-2].
			rStar, _ := thinnestLayer(sizes, a, b-2)
			var v1, v2, sep []int
			for _, v := range nodes {
				switch {
				case dist[v] >= 0 && dist[v] <= rStar:
					v1 = append(v1, v)
				case dist[v] == rStar+1:
					sep = append(sep, v)
				default:
					v2 = append(v2, v)
				}
			}
			return &CutResult{IsCut: true, V1: v1, V2: v2, Separator: sep}, nil
		}

		// Narrow window: halve S, keep the half whose ball reaches |V|/3
		// sooner.
		s1, s2 := splitByOrder(s, order)
		sizes1 := graph.NeighborhoodSizes(g, mask, s1, dist)
		a1 := radiusReaching(sizes1, (nV+2)/3)
		sizes2 := graph.NeighborhoodSizes(g, mask, s2, dist)
		a2 := radiusReaching(sizes2, (nV+2)/3)
		m.Charge("lemma31/bfs", int64(maxLayer)+1)
		if a1 <= a2 {
			s = s1
		} else {
			s = s2
		}
	}

	// S = {v}: scan the window above a for the thinnest layer.
	v := s[0]
	sizes := graph.NeighborhoodSizes(g, mask, []int{v}, dist)
	a := radiusReaching(sizes, (nV+2)/3)
	hi := a + window
	if hi > len(sizes)-1 {
		hi = len(sizes) - 1
	}
	rStar, _ := thinnestLayer(sizes, a, hi)
	m.Charge("lemma31/bfs", int64(len(sizes)))

	var u, boundary []int
	for _, w := range nodes {
		if dist[w] >= 0 && dist[w] <= rStar {
			u = append(u, w)
		}
	}
	inU := maskOf(g.N(), u)
	for _, w := range nodes {
		if inU[w] {
			continue
		}
		for _, z := range g.Neighbors(w) {
			if inU[z] {
				boundary = append(boundary, w)
				break
			}
		}
	}
	return &CutResult{U: u, Boundary: boundary}, nil
}

// ImproveDiameter is the Theorem 3.2 transformation: given any
// strong-diameter ball carving algorithm A1, it produces a strong-diameter
// ball carving whose clusters have diameter O(log² n / eps), removing at
// most an eps fraction of the nodes. Per recursion level it runs A1 with a
// boundary parameter reduced by the recursion depth, applies Lemma 3.1 to
// every cluster, and recurses into the cut sides or the remainder away from
// an emitted component. Every branch shrinks by a factor 2/3, so the
// recursion depth is O(log n).
func ImproveDiameter(g *graph.Graph, nodes []int, eps float64, carver StrongCarver, m *rounds.Meter) (*cluster.Carving, error) {
	return ImproveDiameterContext(context.Background(), g, nodes, eps, withCtx(carver), m)
}

// ImproveDiameterContext is ImproveDiameter with cancellation: the context
// is checked before every recursion task and inside the carver.
func ImproveDiameterContext(ctx context.Context, g *graph.Graph, nodes []int, eps float64, carver CtxStrongCarver, m *rounds.Meter) (*cluster.Carving, error) {
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("core: eps %v outside (0, 1]", eps)
	}
	if nodes == nil {
		nodes = allNodes(g.N())
	}
	co := newCollector(g.N())
	if len(nodes) == 0 {
		return co.carving(), nil
	}
	total := len(nodes)
	// Recursion shrinks sets by 2/3 per level.
	levels := int(math.Ceil(math.Log(float64(total))/math.Log(1.5))) + 1
	epsCarve := eps / (4 * float64(levels))
	epsLemma := eps / 2

	type task struct {
		comp  []int
		level int
	}
	var queue []task
	for _, comp := range graph.Components(g, maskOf(g.N(), nodes)) {
		queue = append(queue, task{comp: comp, level: 0})
	}
	for len(queue) > 0 {
		if err := registry.CtxErr(ctx); err != nil {
			return nil, err
		}
		t := queue[0]
		queue = queue[1:]
		s := t.comp
		if len(s) == 0 {
			continue
		}
		if len(s) <= 3 || t.level > levels {
			co.emit(s, s[0])
			continue
		}
		carved, err := carver(ctx, g, s, epsCarve, m)
		if err != nil {
			return nil, fmt.Errorf("core: improve: carver: %w", err)
		}
		for _, members := range carved.Members() {
			if len(members) == 0 {
				continue
			}
			res, err := CutOrComponent(g, members, epsLemma, m)
			if err != nil {
				return nil, err
			}
			if res.IsCut {
				for _, side := range [][]int{res.V1, res.V2} {
					for _, comp := range graph.Components(g, maskOf(g.N(), side)) {
						queue = append(queue, task{comp: comp, level: t.level + 1})
					}
				}
				continue
			}
			co.emit(res.U, res.U[0])
			rest := subtract(members, res.U, res.Boundary)
			for _, comp := range graph.Components(g, maskOf(g.N(), rest)) {
				queue = append(queue, task{comp: comp, level: t.level + 1})
			}
		}
	}
	return co.carving(), nil
}

// CarveImproved is Theorem 3.3: ImproveDiameter instantiated with the
// Theorem 2.2 carver, achieving strong diameter O(log² n / eps)
// deterministically.
func CarveImproved(g *graph.Graph, nodes []int, eps float64, m *rounds.Meter) (*cluster.Carving, error) {
	return CarveImprovedContext(context.Background(), g, nodes, eps, m)
}

// CarveImprovedContext is CarveImproved with cancellation support.
func CarveImprovedContext(ctx context.Context, g *graph.Graph, nodes []int, eps float64, m *rounds.Meter) (*cluster.Carving, error) {
	return ImproveDiameterContext(ctx, g, nodes, eps, CarveRGContext, m)
}

// DecomposeImproved is Theorem 3.4: a deterministic strong-diameter network
// decomposition with O(log n) colors and O(log² n) cluster diameter.
func DecomposeImproved(g *graph.Graph, m *rounds.Meter) (*cluster.Decomposition, error) {
	return DecomposeImprovedContext(context.Background(), g, m)
}

// DecomposeImprovedContext is DecomposeImproved with cancellation support.
func DecomposeImprovedContext(ctx context.Context, g *graph.Graph, m *rounds.Meter) (*cluster.Decomposition, error) {
	return DecomposeContext(ctx, g, CarveImprovedContext, m)
}

// radiusReaching returns the smallest r with sizes[r] >= target (or the last
// layer if the target exceeds the reachable set).
func radiusReaching(sizes []int, target int) int {
	for r, sz := range sizes {
		if sz >= target {
			return r
		}
	}
	return len(sizes) - 1
}

// thinnestLayer returns the r in [lo, hi] minimizing sizes[r+1]/sizes[r],
// along with that ratio. Out-of-range radii clamp to the last layer (ratio
// 1, an empty shell).
func thinnestLayer(sizes []int, lo, hi int) (int, float64) {
	if lo < 0 {
		lo = 0
	}
	if hi < lo {
		hi = lo
	}
	bestR, bestRatio := lo, math.Inf(1)
	for r := lo; r <= hi; r++ {
		cur := float64(sizeAt(sizes, r))
		next := float64(sizeAt(sizes, r+1))
		if cur == 0 {
			continue
		}
		ratio := next / cur
		if ratio < bestRatio {
			bestR, bestRatio = r, ratio
		}
	}
	return bestR, bestRatio
}

// inOrderPositions computes each node's position in the pre-order traversal
// of a BFS tree of the masked subgraph rooted at the minimum-id node,
// children visited in increasing id. This is the deterministic global order
// the lemma uses for halving.
func inOrderPositions(g *graph.Graph, mask []bool, nodes []int) map[int]int {
	root := nodes[0]
	for _, v := range nodes {
		if v < root {
			root = v
		}
	}
	_, parent := graph.BFSTree(g, mask, root)
	children := make(map[int][]int, len(nodes))
	for _, v := range nodes {
		if p := parent[v]; p >= 0 {
			children[p] = append(children[p], v)
		}
	}
	for _, cs := range children {
		sort.Ints(cs)
	}
	pos := make(map[int]int, len(nodes))
	stack := []int{root}
	next := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		pos[v] = next
		next++
		cs := children[v]
		for i := len(cs) - 1; i >= 0; i-- {
			stack = append(stack, cs[i])
		}
	}
	return pos
}

// splitByOrder splits s into its first and second half by traversal order.
func splitByOrder(s []int, order map[int]int) (first, second []int) {
	sorted := append([]int(nil), s...)
	sort.Slice(sorted, func(i, j int) bool { return order[sorted[i]] < order[sorted[j]] })
	half := (len(sorted) + 1) / 2
	return sorted[:half], sorted[half:]
}

// subtract returns members minus the union of the given removal sets.
func subtract(members []int, removals ...[]int) []int {
	removed := make(map[int]bool)
	for _, rs := range removals {
		for _, v := range rs {
			removed[v] = true
		}
	}
	var out []int
	for _, v := range members {
		if !removed[v] {
			out = append(out, v)
		}
	}
	return out
}
