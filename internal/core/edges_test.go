package core

import (
	"testing"
	"testing/quick"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/rounds"
)

func TestCarveEdgesRGRejectsBadEps(t *testing.T) {
	g := graph.Path(4)
	for _, eps := range []float64{0, -0.5, 1.5} {
		if _, err := CarveEdgesRG(g, nil, eps, nil); err == nil {
			t.Fatalf("eps %v accepted", eps)
		}
	}
}

func TestCarveEdgesRGEmptyAndIsolated(t *testing.T) {
	g, err := graph.NewBuilder(0).Build()
	if err != nil {
		t.Fatal(err)
	}
	ec, err := CarveEdgesRG(g, nil, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ec.K != 0 {
		t.Fatalf("empty graph gave %d clusters", ec.K)
	}
	// Edgeless graph: every node its own cluster, nothing cut.
	iso, err := graph.NewBuilder(5).Build()
	if err != nil {
		t.Fatal(err)
	}
	ec, err = CarveEdgesRG(iso, nil, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ec.K != 5 || len(ec.Cut) != 0 {
		t.Fatalf("isolated nodes: k=%d cut=%d", ec.K, len(ec.Cut))
	}
}

func TestCarveEdgesRGInvariantsAcrossFamilies(t *testing.T) {
	for name, g := range testGraphs() {
		t.Run(name, func(t *testing.T) {
			for _, eps := range []float64{0.5, 0.25} {
				ec, err := CarveEdgesRG(g, nil, eps, nil)
				if err != nil {
					t.Fatal(err)
				}
				if err := cluster.CheckEdgeCarving(g, nil, ec.Assign, ec.K, ec.Cut, eps, -1); err != nil {
					t.Fatalf("eps=%v: %v", eps, err)
				}
			}
		})
	}
}

func TestCarveEdgesRGKeepsEveryNode(t *testing.T) {
	g := graph.ConnectedGnp(150, 0.03, 9)
	ec, err := CarveEdgesRG(g, nil, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v, cl := range ec.Assign {
		if cl == cluster.Unclustered {
			t.Fatalf("edge version removed node %d", v)
		}
	}
}

func TestCarveEdgesRGDeterministic(t *testing.T) {
	g := graph.Cycle(300)
	a, err := CarveEdgesRG(g, nil, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CarveEdgesRG(g, nil, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cut) != len(b.Cut) || a.K != b.K {
		t.Fatalf("nondeterministic: cuts %d/%d clusters %d/%d", len(a.Cut), len(b.Cut), a.K, b.K)
	}
}

func TestCarveEdgesRGOnSubset(t *testing.T) {
	g := graph.Path(30)
	nodes := []int{0, 1, 2, 3, 4, 5, 6, 7}
	ec, err := CarveEdgesRG(g, nodes, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 8; v < 30; v++ {
		if ec.Assign[v] != cluster.Unclustered {
			t.Fatalf("node %d outside subset assigned", v)
		}
	}
	if err := cluster.CheckEdgeCarving(g, nodes, ec.Assign, ec.K, ec.Cut, 0.5, -1); err != nil {
		t.Fatal(err)
	}
}

func TestCarveEdgesRGChargesRounds(t *testing.T) {
	g := graph.Cycle(200)
	m := rounds.NewMeter()
	if _, err := CarveEdgesRG(g, nil, 0.5, m); err != nil {
		t.Fatal(err)
	}
	if m.Component("thm21/bfs") == 0 && m.Component("rg/propose") == 0 {
		t.Fatalf("no rounds charged: %s", m)
	}
}

func TestPropertyCarveEdgesRG(t *testing.T) {
	f := func(seed uint8, nRaw uint8) bool {
		n := 20 + int(nRaw)%100
		g := graph.ConnectedGnp(n, 0.05, int64(seed))
		ec, err := CarveEdgesRG(g, nil, 0.5, nil)
		if err != nil {
			return false
		}
		return cluster.CheckEdgeCarving(g, nil, ec.Assign, ec.K, ec.Cut, 0.5, -1) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// On a long cycle the edge version must behave like the node version shape-
// wise: bounded-diameter clusters with a small cut.
func TestCarveEdgesRGCycleShape(t *testing.T) {
	g := graph.Cycle(2048)
	eps := 0.5
	ec, err := CarveEdgesRG(g, nil, eps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.CheckEdgeCarving(g, nil, ec.Assign, ec.K, ec.Cut, eps, -1); err != nil {
		t.Fatal(err)
	}
	if len(ec.Cut) == 0 {
		t.Fatal("cycle carving cut nothing — clusters cannot all be bounded")
	}
}
