package core

// Self-registration of the paper's deterministic constructions (and the
// RG20 weak-diameter baseline they transform) with the algorithm registry.
// Importing this package — which the facade and the bench harness always do
// — makes the constructions reachable via registry.Lookup.

import (
	"context"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/registry"
	"strongdecomp/internal/rg"
	"strongdecomp/internal/rounds"
)

func init() {
	registry.MustRegister("rozhon-ghaffari", func() registry.Decomposer {
		return registry.Funcs{
			Meta: registry.Info{
				Name:              "rozhon-ghaffari",
				Reference:         "[RG20]",
				Model:             "deterministic",
				Diameter:          "weak",
				PaperColors:       "O(log n)",
				PaperCarveDiam:    "O(log^3 n / eps)",
				PaperCarveRounds:  "O(log^6 n / eps^2)",
				PaperDecompDiam:   "O(log^3 n)",
				PaperDecompRounds: "O(log^7 n)",
				Order:             20,
			},
			CarveFunc: func(ctx context.Context, g *graph.Graph, eps float64, o registry.RunOptions) (*cluster.Carving, error) {
				return rgWeakCtx(ctx, g, o.Nodes, eps, o.Meter)
			},
			DecomposeFunc: func(ctx context.Context, g *graph.Graph, o registry.RunOptions) (*cluster.Decomposition, error) {
				return DecomposeContext(ctx, g, rgWeakCtx, o.Meter)
			},
		}
	})
	registry.MustRegister("chang-ghaffari", func() registry.Decomposer {
		return registry.Funcs{
			Meta: registry.Info{
				Name:              "chang-ghaffari",
				Reference:         "Theorems 2.2 and 2.3",
				CarveReference:    "Theorem 2.2",
				DecompReference:   "Theorem 2.3",
				Model:             "deterministic",
				Diameter:          "strong",
				PaperColors:       "O(log n)",
				PaperCarveDiam:    "O(log^3 n / eps)",
				PaperCarveRounds:  "O(log^7 n / eps^2)",
				PaperDecompDiam:   "O(log^3 n)",
				PaperDecompRounds: "O(log^8 n)",
				Order:             50,
			},
			CarveFunc: func(ctx context.Context, g *graph.Graph, eps float64, o registry.RunOptions) (*cluster.Carving, error) {
				return CarveRGContext(ctx, g, o.Nodes, eps, o.Meter)
			},
			DecomposeFunc: func(ctx context.Context, g *graph.Graph, o registry.RunOptions) (*cluster.Decomposition, error) {
				return DecomposeRGContext(ctx, g, o.Meter)
			},
		}
	})
	registry.MustRegister("chang-ghaffari-improved", func() registry.Decomposer {
		return registry.Funcs{
			Meta: registry.Info{
				Name:              "chang-ghaffari-improved",
				Reference:         "Theorems 3.3 and 3.4",
				CarveReference:    "Theorem 3.3",
				DecompReference:   "Theorem 3.4",
				Model:             "deterministic",
				Diameter:          "strong",
				PaperColors:       "O(log n)",
				PaperCarveDiam:    "O(log^2 n / eps)",
				PaperCarveRounds:  "O(log^10 n / eps^2)",
				PaperDecompDiam:   "O(log^2 n)",
				PaperDecompRounds: "O(log^11 n)",
				Order:             60,
			},
			CarveFunc: func(ctx context.Context, g *graph.Graph, eps float64, o registry.RunOptions) (*cluster.Carving, error) {
				return CarveImprovedContext(ctx, g, o.Nodes, eps, o.Meter)
			},
			DecomposeFunc: func(ctx context.Context, g *graph.Graph, o registry.RunOptions) (*cluster.Decomposition, error) {
				return DecomposeImprovedContext(ctx, g, o.Meter)
			},
		}
	})
}

// rgWeakCtx lifts the RG20 weak carver into the context-aware carver shape;
// the weak carver is the transformation's black box, so cancellation applies
// between invocations. Its clusters may induce disconnected subgraphs,
// which is exactly the weak-diameter behavior the Theorem 2.1
// transformation repairs.
func rgWeakCtx(ctx context.Context, g *graph.Graph, nodes []int, eps float64, m *rounds.Meter) (*cluster.Carving, error) {
	if err := registry.CtxErr(ctx); err != nil {
		return nil, err
	}
	return rg.Carve(g, nodes, eps, m)
}
