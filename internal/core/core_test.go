package core

import (
	"math"
	"testing"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/rg"
	"strongdecomp/internal/rounds"
)

// thm22DiameterBound computes the Theorem 2.1/2.2 strong diameter guarantee
// 2R + O(log n/eps) using the weak carver's worst-case depth bound.
func thm22DiameterBound(n int, eps float64) int {
	p := rg.ParamsFor(n, eps/(2*float64(log2ceil(n))))
	return 2*p.MaxDepth + 2*shellWindow(n, eps) + 2
}

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path":       graph.Path(120),
		"cycle":      graph.Cycle(90),
		"grid":       graph.Grid(11, 11),
		"tree":       graph.BinaryTree(127),
		"star":       graph.Star(64),
		"complete":   graph.Complete(32),
		"gnp":        graph.ConnectedGnp(130, 0.04, 3),
		"expander":   graph.RandomRegularish(96, 4, 5),
		"subdivided": graph.SubdividedExpander(12, 4, 4, 7),
		"clusters":   graph.ClusterGraph(4, 16, 0.4, 9),
		"union":      graph.DisjointUnion(graph.Path(30), graph.Grid(5, 5), graph.Star(12)),
	}
}

func TestStrongCarveRejectsBadEps(t *testing.T) {
	g := graph.Path(4)
	for _, eps := range []float64{0, -0.1, 1.2} {
		if _, err := CarveRG(g, nil, eps, nil); err == nil {
			t.Fatalf("eps %v accepted", eps)
		}
	}
}

func TestStrongCarveEmpty(t *testing.T) {
	g, err := graph.NewBuilder(0).Build()
	if err != nil {
		t.Fatal(err)
	}
	c, err := CarveRG(g, nil, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.K != 0 {
		t.Fatalf("empty graph gave %d clusters", c.K)
	}
}

func TestCarveRGInvariantsAcrossFamilies(t *testing.T) {
	for name, g := range testGraphs() {
		t.Run(name, func(t *testing.T) {
			for _, eps := range []float64{0.5, 0.25} {
				c, err := CarveRG(g, nil, eps, nil)
				if err != nil {
					t.Fatal(err)
				}
				bound := thm22DiameterBound(g.N(), eps)
				if err := cluster.CheckCarving(g, nil, c, eps, bound); err != nil {
					t.Fatalf("eps=%v: %v", eps, err)
				}
			}
		})
	}
}

func TestCarveRGIsDeterministic(t *testing.T) {
	g := graph.ConnectedGnp(110, 0.04, 21)
	a, err := CarveRG(g, nil, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CarveRG(g, nil, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Assign {
		if a.Assign[v] != b.Assign[v] {
			t.Fatalf("nondeterministic at node %d", v)
		}
	}
}

func TestCarveRGOnSubset(t *testing.T) {
	g := graph.Grid(10, 10)
	var nodes []int
	for v := 0; v < 50; v++ {
		nodes = append(nodes, v)
	}
	c, err := CarveRG(g, nodes, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 50; v < 100; v++ {
		if c.Assign[v] != cluster.Unclustered {
			t.Fatalf("node %d outside subset assigned", v)
		}
	}
	alive := make([]bool, g.N())
	for _, v := range nodes {
		alive[v] = true
	}
	if err := cluster.CheckCarving(g, alive, c, 0.5, thm22DiameterBound(50, 0.5)); err != nil {
		t.Fatal(err)
	}
}

func TestStrongCarveChargesAllTerms(t *testing.T) {
	g := graph.ConnectedGnp(120, 0.05, 8)
	m := rounds.NewMeter()
	if _, err := CarveRG(g, nil, 0.5, m); err != nil {
		t.Fatal(err)
	}
	// The three terms of Theorem 2.1: A's own rounds, Steiner-tree
	// gathering, and the ball-growing BFS.
	if m.Component("rg/propose") == 0 {
		t.Fatalf("weak carver charged nothing: %s", m)
	}
	if m.Component("thm21/gather") == 0 {
		t.Fatalf("no gather rounds: %s", m)
	}
	if m.Component("thm21/bfs") == 0 {
		t.Fatalf("no bfs rounds: %s", m)
	}
}

func TestDecomposeRGValid(t *testing.T) {
	for name, g := range testGraphs() {
		t.Run(name, func(t *testing.T) {
			d, err := DecomposeRG(g, nil)
			if err != nil {
				t.Fatal(err)
			}
			bound := thm22DiameterBound(g.N(), 0.5)
			if err := cluster.CheckDecomposition(g, d, bound, true); err != nil {
				t.Fatal(err)
			}
			if d.Colors > log2ceil(g.N())+2 {
				t.Fatalf("%d colors for n=%d (want <= log n + 2)", d.Colors, g.N())
			}
		})
	}
}

func TestDecomposeHalvesEachIteration(t *testing.T) {
	// With a deterministic carver at eps=1/2, iteration i clusters at least
	// half the remainder, so color class sizes certify the halving.
	g := graph.Grid(12, 12)
	d, err := DecomposeRG(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	perColor := make([]int, d.Colors)
	for v := 0; v < g.N(); v++ {
		perColor[d.NodeColor(v)]++
	}
	remaining := g.N()
	for col, cnt := range perColor {
		if 2*cnt < remaining-1 {
			t.Fatalf("color %d clustered %d of %d remaining", col, cnt, remaining)
		}
		remaining -= cnt
	}
}

func log2ceilTestHelper(n int) int { return log2ceil(n) }

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := log2ceilTestHelper(n); got != want {
			t.Fatalf("log2ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestShellWindowShrinksWithEps(t *testing.T) {
	if shellWindow(1000, 0.5) >= shellWindow(1000, 0.1) {
		t.Fatal("window must grow as eps shrinks")
	}
	if shellWindow(10, 0.5) < 2 {
		t.Fatal("window floor violated")
	}
}

// The transformation's diameter guarantee should be *measured* to hold with
// realized (not worst-case) R: the strong diameter of every cluster is at
// most 2·(realized weak depth) + the shell window.
func TestStrongCarveRealizedDiameter(t *testing.T) {
	g := graph.ConnectedGnp(150, 0.03, 12)
	eps := 0.5
	c, err := CarveRG(g, nil, eps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := cluster.MaxStrongDiameter(g, c.Members()); d < 0 {
		t.Fatal("disconnected cluster")
	} else {
		// Realized diameters should be far below the worst-case bound on a
		// benign random graph: sanity threshold log² n scale.
		loose := 4 * log2ceil(g.N()) * log2ceil(g.N()) * int(math.Ceil(1/eps))
		if d > loose {
			t.Fatalf("realized diameter %d suspiciously large (> %d)", d, loose)
		}
	}
}
