// Package core implements the paper's contributions:
//
//   - Theorem 2.1: a message-efficient deterministic transformation turning
//     any weak-diameter ball carving algorithm A into a strong-diameter ball
//     carving algorithm B (StrongCarve);
//   - Theorem 2.2: its instantiation with the deterministic weak carver of
//     internal/rg (CarveRG);
//   - Theorem 2.3: the strong-diameter network decomposition obtained by
//     log n repetitions of ball carving with ε = 1/2 (Decompose);
//   - Lemma 3.1: the balanced-sparse-cut-or-large-small-diameter-component
//     subroutine (CutOrComponent);
//   - Theorem 3.2: the diameter-improvement transformation (ImproveDiameter);
//   - Theorems 3.3/3.4: their instantiations (CarveImproved,
//     DecomposeImproved) achieving strong diameter O(log² n / ε).
//
// All algorithms are deterministic, operate on the subgraph induced by a
// node subset of a host graph, and charge their distributed cost to an
// optional rounds.Meter using the cost model described in DESIGN.md.
package core

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/registry"
	"strongdecomp/internal/rg"
	"strongdecomp/internal/rounds"
)

// WeakCarver is the black-box algorithm A of Theorem 2.1: it removes at most
// an eps fraction of nodes and clusters the remainder into non-adjacent
// clusters, each with a bounded-depth Steiner tree in the host graph.
type WeakCarver func(g *graph.Graph, nodes []int, eps float64, m *rounds.Meter) (*cluster.Carving, error)

// StrongCarver is the contract of algorithm B: it removes at most an eps
// fraction of nodes so that every remaining connected component (cluster)
// has bounded strong diameter.
type StrongCarver func(g *graph.Graph, nodes []int, eps float64, m *rounds.Meter) (*cluster.Carving, error)

// CtxStrongCarver is the context-aware StrongCarver contract used by the
// registry-facing entry points; cancellation is observed between carving
// iterations.
type CtxStrongCarver func(ctx context.Context, g *graph.Graph, nodes []int, eps float64, m *rounds.Meter) (*cluster.Carving, error)

// withCtx lifts a legacy StrongCarver into the context-aware shape; the
// carver itself runs to completion, cancellation applies between calls.
func withCtx(carver StrongCarver) CtxStrongCarver {
	return func(_ context.Context, g *graph.Graph, nodes []int, eps float64, m *rounds.Meter) (*cluster.Carving, error) {
		return carver(g, nodes, eps, m)
	}
}

// collector accumulates emitted clusters over the iterative process.
type collector struct {
	assign  []int
	centers []int
	k       int
}

func newCollector(n int) *collector {
	assign := make([]int, n)
	for i := range assign {
		assign[i] = cluster.Unclustered
	}
	return &collector{assign: assign}
}

func (co *collector) emit(members []int, center int) {
	for _, v := range members {
		co.assign[v] = co.k
	}
	co.centers = append(co.centers, center)
	co.k++
}

func (co *collector) carving() *cluster.Carving {
	return &cluster.Carving{Assign: co.assign, K: co.k, Centers: co.centers}
}

// StrongCarve is the Theorem 2.1 transformation. Given the black-box weak
// carver A, it computes a strong-diameter ball carving of the subgraph
// induced by nodes (nil = all of g) that removes at most an eps fraction of
// the nodes. Every emitted cluster is connected with strong diameter at most
// 2·R + O(log n / eps), where R is the realized Steiner-tree depth of A when
// invoked with boundary parameter eps / (2·ceil(log₂ n)).
//
// The algorithm runs ceil(log₂ n) iterations per surviving component. Each
// iteration invokes A with the reduced boundary parameter. If some cluster C
// is giant (larger than n/2^i), a BFS from the root of C's Steiner tree
// grows a ball, starting at C's tree depth, until a radius r* whose boundary
// shell holds at most an eps/2 fraction of the ball; the ball is emitted as
// a final cluster and the shell dies. Otherwise A's unclustered nodes die.
// Either way every surviving component halves, so log n iterations suffice.
func StrongCarve(g *graph.Graph, nodes []int, eps float64, weak WeakCarver, m *rounds.Meter) (*cluster.Carving, error) {
	return StrongCarveContext(context.Background(), g, nodes, eps, weak, m)
}

// StrongCarveContext is StrongCarve with cancellation: the context is
// checked before every component task, so a canceled run stops within one
// weak-carver invocation and returns registry.ErrCanceled.
func StrongCarveContext(ctx context.Context, g *graph.Graph, nodes []int, eps float64, weak WeakCarver, m *rounds.Meter) (*cluster.Carving, error) {
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("core: eps %v outside (0, 1]", eps)
	}
	if nodes == nil {
		nodes = allNodes(g.N())
	}
	co := newCollector(g.N())
	if len(nodes) == 0 {
		return co.carving(), nil
	}

	total := len(nodes)
	iterLimit := log2ceil(total) + 1
	epsWeak := eps / (2 * float64(log2ceil(total)))
	window := shellWindow(total, eps)

	alive := make([]bool, g.N())
	for _, v := range nodes {
		alive[v] = true
	}

	// Intra-component parallelism, when the context carries a config:
	// the component splits and the ball-growing BFS are the traversal
	// hot spots of a single giant component, and the parallel variants
	// are order-identical to the sequential ones, so enabling them never
	// changes the carving.
	pcfg, hasPcfg := graph.ParallelConfigFrom(ctx)
	components := func(mask []bool) [][]int {
		if hasPcfg && pcfg.Enabled(g.N()) {
			return graph.ParallelComponents(g, mask, pcfg.Workers)
		}
		return graph.Components(g, mask)
	}

	type task struct {
		comp []int
		iter int
	}
	var queue []task
	for _, comp := range components(maskOf(g.N(), nodes)) {
		queue = append(queue, task{comp: comp, iter: 1})
	}

	dist := make([]int, g.N())
	for len(queue) > 0 {
		if err := registry.CtxErr(ctx); err != nil {
			return nil, err
		}
		t := queue[0]
		queue = queue[1:]
		s := t.comp
		if len(s) == 0 {
			continue
		}
		if len(s) == 1 {
			co.emit(s, s[0])
			continue
		}
		if t.iter > iterLimit {
			// Unreachable by the halving invariant; emit the component
			// whole so the output stays a valid clustering.
			co.emit(s, s[0])
			continue
		}

		weakCarving, err := weak(g, s, epsWeak, m)
		if err != nil {
			return nil, fmt.Errorf("core: weak carver: %w", err)
		}
		members := weakCarving.Members()

		// Information gathering over Steiner trees to find cluster sizes:
		// depth x congestion rounds.
		maxDepth := 0
		for cl := range members {
			if tr := weakCarving.Trees[cl]; tr != nil {
				if d := tr.Depth(); d > maxDepth {
					maxDepth = d
				}
			}
		}
		congestion := log2ceil(g.N())
		m.Charge("thm21/gather", int64(maxDepth+1)*int64(congestion))

		threshold := float64(total) / math.Exp2(float64(t.iter))
		giant := -1
		for cl, ms := range members {
			if float64(len(ms)) > threshold {
				giant = cl
				break
			}
		}

		sMask := maskOf(g.N(), s)
		if giant < 0 {
			// Case (I): commit A's removals; recurse on survivor components.
			for _, v := range s {
				if weakCarving.Assign[v] == cluster.Unclustered {
					sMask[v] = false
					alive[v] = false
				}
			}
			for _, comp := range components(sMask) {
				queue = append(queue, task{comp: comp, iter: t.iter + 1})
			}
			continue
		}

		// Case (II): grow a ball from the giant cluster's tree root inside
		// G[S]; A's removals are NOT committed (the ball may swallow them).
		root := weakCarving.Centers[giant]
		depthR := memberTreeDepth(weakCarving.Trees[giant], members[giant])
		var sizes []int
		if hasPcfg && pcfg.Enabled(len(s)) {
			sizes = graph.ParallelNeighborhoodSizes(g, sMask, []int{root}, dist, pcfg.Workers)
		} else {
			sizes = graph.NeighborhoodSizes(g, sMask, []int{root}, dist)
		}
		maxLayer := len(sizes) - 1
		rStart := depthR
		if rStart > maxLayer {
			rStart = maxLayer
		}
		rStar := rStart
		for r := rStart; r < maxLayer && r < rStart+window; r++ {
			if float64(sizes[r]) >= (1-eps/2)*float64(sizeAt(sizes, r+1)) {
				rStar = r
				break
			}
			rStar = r + 1
		}
		m.Charge("thm21/bfs", int64(rStar)+2)

		var ball, shell []int
		for _, v := range s {
			switch {
			case dist[v] >= 0 && dist[v] <= rStar:
				ball = append(ball, v)
			case dist[v] == rStar+1:
				shell = append(shell, v)
			}
		}
		co.emit(ball, root)
		for _, v := range ball {
			sMask[v] = false
		}
		for _, v := range shell {
			sMask[v] = false
			alive[v] = false
		}
		for _, comp := range components(sMask) {
			queue = append(queue, task{comp: comp, iter: t.iter + 1})
		}
	}
	return co.carving(), nil
}

// CarveRG is Theorem 2.2: StrongCarve instantiated with the deterministic
// weak-diameter carver of internal/rg.
func CarveRG(g *graph.Graph, nodes []int, eps float64, m *rounds.Meter) (*cluster.Carving, error) {
	return CarveRGContext(context.Background(), g, nodes, eps, m)
}

// CarveRGContext is CarveRG with cancellation support. When the context
// carries a graph.ParallelConfig, the weak carver's ball-carving rounds
// additionally use the frontier-parallel scans of rg.CarveParallel —
// output-identical to rg.Carve, so determinism is preserved.
func CarveRGContext(ctx context.Context, g *graph.Graph, nodes []int, eps float64, m *rounds.Meter) (*cluster.Carving, error) {
	if cfg, ok := graph.ParallelConfigFrom(ctx); ok {
		weak := func(g *graph.Graph, nodes []int, eps float64, m *rounds.Meter) (*cluster.Carving, error) {
			return rg.CarveParallel(g, nodes, eps, m, cfg)
		}
		return StrongCarveContext(ctx, g, nodes, eps, weak, m)
	}
	return StrongCarveContext(ctx, g, nodes, eps, rg.Carve, m)
}

// Decompose is the standard reduction from network decomposition to ball
// carving used by Theorems 2.3 and 3.4: repeat the carver with eps = 1/2 on
// the remaining nodes; clusters found in iteration i receive color i. A
// deterministic carver yields at most ceil(log₂ n) + 1 colors.
func Decompose(g *graph.Graph, carver StrongCarver, m *rounds.Meter) (*cluster.Decomposition, error) {
	return DecomposeContext(context.Background(), g, withCtx(carver), m)
}

// DecomposeContext is the context-aware reduction: cancellation is observed
// before every color iteration and inside context-aware carvers.
func DecomposeContext(ctx context.Context, g *graph.Graph, carver CtxStrongCarver, m *rounds.Meter) (*cluster.Decomposition, error) {
	n := g.N()
	assign := make([]int, n)
	for i := range assign {
		assign[i] = cluster.Unclustered
	}
	var (
		color   []int
		centers []int
		k       int
	)
	remaining := allNodes(n)
	for iter := 0; len(remaining) > 0; iter++ {
		if err := registry.CtxErr(ctx); err != nil {
			return nil, err
		}
		if iter > 4*(log2ceil(n)+2) {
			return nil, fmt.Errorf("core: decomposition did not converge after %d colors", iter)
		}
		c, err := carver(ctx, g, remaining, 0.5, m)
		if err != nil {
			return nil, err
		}
		for i, members := range c.Members() {
			for _, v := range members {
				assign[v] = k
			}
			color = append(color, iter)
			center := i
			if len(c.Centers) == c.K {
				center = c.Centers[i]
			} else if len(members) > 0 {
				center = members[0]
			}
			centers = append(centers, center)
			k++
		}
		var rest []int
		for _, v := range remaining {
			if assign[v] == cluster.Unclustered {
				rest = append(rest, v)
			}
		}
		remaining = rest
	}
	colors := 0
	for _, col := range color {
		if col+1 > colors {
			colors = col + 1
		}
	}
	return &cluster.Decomposition{Assign: assign, Color: color, K: k, Colors: colors, Centers: centers}, nil
}

// DecomposeRG is Theorem 2.3: a deterministic strong-diameter network
// decomposition with O(log n) colors and O(log³ n) cluster diameter.
func DecomposeRG(g *graph.Graph, m *rounds.Meter) (*cluster.Decomposition, error) {
	return DecomposeRGContext(context.Background(), g, m)
}

// DecomposeRGContext is DecomposeRG with cancellation support.
func DecomposeRGContext(ctx context.Context, g *graph.Graph, m *rounds.Meter) (*cluster.Decomposition, error) {
	return DecomposeContext(ctx, g, CarveRGContext, m)
}

// memberTreeDepth returns the maximum tree depth over the given members
// (relay-only nodes deeper than every member do not matter for covering the
// cluster).
func memberTreeDepth(t *cluster.Tree, members []int) int {
	if t == nil {
		return 0
	}
	max := 0
	for _, v := range members {
		if d := t.DepthOf(v); d > max {
			max = d
		}
	}
	return max
}

// shellWindow returns the number of radius growth steps that guarantees a
// thin shell: growing by a factor 1/(1-eps/2) more than window times would
// exceed n nodes.
func shellWindow(n int, eps float64) int {
	growth := -math.Log(1 - eps/2)
	w := int(math.Ceil(math.Log(float64(n))/growth)) + 1
	if w < 2 {
		w = 2
	}
	return w
}

func sizeAt(sizes []int, r int) int {
	if r >= len(sizes) {
		return sizes[len(sizes)-1]
	}
	return sizes[r]
}

func maskOf(n int, nodes []int) []bool {
	mask := make([]bool, n)
	for _, v := range nodes {
		mask[v] = true
	}
	return mask
}

func allNodes(n int) []int {
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i
	}
	return nodes
}

func log2ceil(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}
