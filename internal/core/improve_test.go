package core

import (
	"math"
	"testing"
	"testing/quick"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/rounds"
)

// lemma31Bound is the O(log² n / eps) diameter guarantee with the
// implementation's constants: 2·(a + window) where a <= levels · (b-a window)
// and window = ceil(ln 3 / x) + 1, x = eps/(2 log₂ n).
func lemma31Bound(n int, eps float64) int {
	if n <= 1 {
		return 0
	}
	x := eps / (2 * float64(log2ceil(n)))
	window := int(math.Ceil(math.Log(3)/x)) + 1
	levels := log2ceil(n) + 1
	return 2 * (levels + 1) * window
}

func TestCutOrComponentRejectsBadInput(t *testing.T) {
	g := graph.Path(5)
	if _, err := CutOrComponent(g, []int{0, 1}, 0, nil); err == nil {
		t.Fatal("eps 0 accepted")
	}
	if _, err := CutOrComponent(g, nil, 0.5, nil); err == nil {
		t.Fatal("empty set accepted")
	}
}

func TestCutOrComponentTinySets(t *testing.T) {
	g := graph.Path(5)
	res, err := CutOrComponent(g, []int{1, 2, 3}, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.IsCut || len(res.U) != 3 {
		t.Fatalf("tiny set result %+v", res)
	}
}

// checkLemma31 verifies the outcome contract on a connected node set.
func checkLemma31(t *testing.T, g *graph.Graph, nodes []int, eps float64) *CutResult {
	t.Helper()
	res, err := CutOrComponent(g, nodes, eps, nil)
	if err != nil {
		t.Fatal(err)
	}
	nV := len(nodes)
	if res.IsCut {
		if len(res.V1)+len(res.V2)+len(res.Separator) != nV {
			t.Fatalf("cut does not partition: %d+%d+%d != %d",
				len(res.V1), len(res.V2), len(res.Separator), nV)
		}
		if 3*len(res.V1) < nV-2 || 3*len(res.V2) < nV-2 {
			t.Fatalf("unbalanced cut: |V1|=%d |V2|=%d n=%d", len(res.V1), len(res.V2), nV)
		}
		// Non-adjacency of the sides.
		in1 := make(map[int]bool, len(res.V1))
		for _, v := range res.V1 {
			in1[v] = true
		}
		for _, v := range res.V2 {
			for _, w := range g.Neighbors(v) {
				if in1[w] {
					t.Fatalf("cut sides adjacent via %d-%d", v, w)
				}
			}
		}
		return res
	}
	if 3*len(res.U) < nV-2 {
		t.Fatalf("component too small: |U|=%d n=%d", len(res.U), nV)
	}
	if d := graph.StrongDiameter(g, res.U); d < 0 || d > lemma31Bound(nV, eps) {
		t.Fatalf("component diameter %d exceeds bound %d (n=%d)", d, lemma31Bound(nV, eps), nV)
	}
	// Boundary really is the outer neighborhood of U within the set.
	inU := make(map[int]bool, len(res.U))
	for _, v := range res.U {
		inU[v] = true
	}
	inB := make(map[int]bool, len(res.Boundary))
	for _, v := range res.Boundary {
		inB[v] = true
	}
	inSet := make(map[int]bool, nV)
	for _, v := range nodes {
		inSet[v] = true
	}
	for _, v := range nodes {
		if inU[v] || inB[v] {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if inU[w] && inSet[v] {
				t.Fatalf("node %d adjacent to U but not in boundary", v)
			}
		}
	}
	return res
}

func TestCutOrComponentAcrossFamilies(t *testing.T) {
	for name, g := range testGraphs() {
		t.Run(name, func(t *testing.T) {
			comps := graph.Components(g, nil)
			for _, comp := range comps {
				checkLemma31(t, g, comp, 0.5)
			}
		})
	}
}

func TestCutOrComponentFindsCutOnLongPath(t *testing.T) {
	// A long path has huge b-a windows: the lemma must find a balanced
	// sparse cut (with a singleton separator).
	g := graph.Path(4000)
	nodes := make([]int, g.N())
	for i := range nodes {
		nodes[i] = i
	}
	res := checkLemma31(t, g, nodes, 0.5)
	if !res.IsCut {
		t.Fatal("expected a cut on the long path")
	}
	if len(res.Separator) > 2 {
		t.Fatalf("path separator has %d nodes", len(res.Separator))
	}
}

func TestCutOrComponentComponentOnExpanderish(t *testing.T) {
	// Low-diameter graphs have tiny [a,b] windows: component outcome.
	g := graph.Complete(60)
	nodes := make([]int, 60)
	for i := range nodes {
		nodes[i] = i
	}
	res := checkLemma31(t, g, nodes, 0.5)
	if res.IsCut {
		t.Fatal("complete graph should yield a component, not a cut")
	}
}

func TestCutOrComponentChargesRounds(t *testing.T) {
	g := graph.Grid(15, 15)
	nodes := make([]int, g.N())
	for i := range nodes {
		nodes[i] = i
	}
	m := rounds.NewMeter()
	if _, err := CutOrComponent(g, nodes, 0.5, m); err != nil {
		t.Fatal(err)
	}
	if m.Component("lemma31/bfs") == 0 {
		t.Fatalf("no rounds charged: %s", m)
	}
}

func TestImproveDiameterInvariants(t *testing.T) {
	for name, g := range testGraphs() {
		t.Run(name, func(t *testing.T) {
			for _, eps := range []float64{0.5, 0.25} {
				c, err := CarveImproved(g, nil, eps, nil)
				if err != nil {
					t.Fatal(err)
				}
				if err := cluster.CheckCarving(g, nil, c, eps, lemma31Bound(g.N(), eps/2)); err != nil {
					t.Fatalf("eps=%v: %v", eps, err)
				}
			}
		})
	}
}

func TestImproveDiameterBeatsThm22OnPathologicalInputs(t *testing.T) {
	// On a long path the Theorem 2.2 carving can leave long components
	// (anything below log³ n is legal); Theorem 3.3's post-processing must
	// bring the diameter down to the log²/eps regime.
	g := graph.Path(3000)
	eps := 0.5
	c, err := CarveImproved(g, nil, eps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := cluster.MaxStrongDiameter(g, c.Members()); d > lemma31Bound(g.N(), eps/2) {
		t.Fatalf("improved diameter %d exceeds lemma bound %d", d, lemma31Bound(g.N(), eps/2))
	}
}

func TestDecomposeImprovedValid(t *testing.T) {
	for _, name := range []string{"grid", "gnp", "subdivided", "union"} {
		g := testGraphs()[name]
		t.Run(name, func(t *testing.T) {
			d, err := DecomposeImproved(g, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := cluster.CheckDecomposition(g, d, lemma31Bound(g.N(), 0.25), true); err != nil {
				t.Fatal(err)
			}
			if d.Colors > log2ceil(g.N())+2 {
				t.Fatalf("%d colors", d.Colors)
			}
		})
	}
}

func TestPropertyImproveDiameterOnRandomGraphs(t *testing.T) {
	f := func(seed uint8, nRaw uint8) bool {
		n := 30 + int(nRaw)%100
		g := graph.ConnectedGnp(n, 0.05, int64(seed))
		c, err := CarveImproved(g, nil, 0.5, nil)
		if err != nil {
			return false
		}
		return cluster.CheckCarving(g, nil, c, 0.5, lemma31Bound(n, 0.25)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestSubtract(t *testing.T) {
	got := subtract([]int{1, 2, 3, 4, 5}, []int{2}, []int{4, 5})
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("subtract = %v", got)
	}
}

func TestThinnestLayer(t *testing.T) {
	sizes := []int{1, 10, 11, 30}
	r, ratio := thinnestLayer(sizes, 0, 2)
	if r != 1 {
		t.Fatalf("thinnest at %d (ratio %f)", r, ratio)
	}
	// Clamped range.
	r, _ = thinnestLayer(sizes, 5, 3)
	if r != 5 {
		t.Fatalf("clamped thinnest = %d", r)
	}
}

func TestRadiusReaching(t *testing.T) {
	sizes := []int{1, 3, 9, 9}
	if r := radiusReaching(sizes, 3); r != 1 {
		t.Fatalf("r = %d", r)
	}
	if r := radiusReaching(sizes, 100); r != 3 {
		t.Fatalf("unreachable target r = %d", r)
	}
}
