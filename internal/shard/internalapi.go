package shard

// Cluster-internal endpoints, mounted under /internal/ by the proxy:
// the peer cache protocol (GET/PUT result records), replica graph
// admission, and ring introspection. These carry no client traffic —
// peers call them directly with the internal header set — and their
// wire format is the same persisted-result record the disk tier writes
// (service.EncodeResultRecord), so a record fetched from a peer is
// exactly a record that could have been read from local disk.

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"strongdecomp/internal/graphio"
	"strongdecomp/internal/service"
)

// internalCacheGet serves GET /internal/cache/{hash}/{params}: the
// locally cached result record for (graph hash, params key), or 404.
// The lookup never computes and never networks — peers probing each
// other must terminate.
func (p *proxy) internalCacheGet(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	paramsKey, err := hex.DecodeString(r.PathValue("params"))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Errorf("params key: %w", err))
		return
	}
	res, ok := p.svc.CachedResult(hash, string(paramsKey))
	if !ok {
		writeJSONError(w, http.StatusNotFound, fmt.Errorf("no cached result for %s", hash))
		return
	}
	data, err := service.EncodeResultRecord(hash, string(paramsKey), res)
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, err)
		return
	}
	p.c.peerCacheServed.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// internalCachePut serves PUT /internal/cache/{hash}/{params}: replica
// admission of a result record pushed by a peer. Admission validates
// the record before caching it and fires no cluster hooks, so
// replication cannot echo around the ring.
func (p *proxy) internalCachePut(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	paramsKey, err := hex.DecodeString(r.PathValue("params"))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Errorf("params key: %w", err))
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPeerBodyBytes))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	if err := p.svc.AdmitResult(hash, string(paramsKey), data); err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// internalGraphPut serves PUT /internal/graphs/{hash}: replica
// admission of a graph snapshot pushed by a peer. The body is a CSR
// snapshot; its content hash must match the path, so a corrupt or
// misdirected push cannot poison the store under a wrong name.
func (p *proxy) internalGraphPut(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPeerBodyBytes))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	g, err := graphio.ReadCSR(bytes.NewReader(data))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Errorf("decode snapshot: %w", err))
		return
	}
	if got := graphio.Hash(g); got != hash {
		writeJSONError(w, http.StatusBadRequest, fmt.Errorf("snapshot hash %s does not match path %s", got, hash))
		return
	}
	p.svc.AdmitGraph(g)
	w.WriteHeader(http.StatusNoContent)
}

// ringView is the JSON shape of GET /internal/ring.
type ringView struct {
	Self     string   `json:"self"`
	VNodes   int      `json:"vnodes"`
	Replicas int      `json:"replicas"`
	Members  []Member `json:"members"`
	Live     []string `json:"live"`
}

// internalRing serves GET /internal/ring: the node's view of the
// cluster topology — membership, virtual-node count, and which peers it
// currently believes are alive. Peers with diverging Live sets are the
// debugging signal for routing disagreements.
func (p *proxy) internalRing(w http.ResponseWriter, r *http.Request) {
	view := ringView{
		Self:     p.c.self.ID,
		VNodes:   p.c.ring.VNodes(),
		Replicas: p.c.cfg.Replicas,
		Members:  p.c.ring.Members(),
	}
	for _, m := range view.Members {
		if p.c.alive(m.ID) {
			view.Live = append(view.Live, m.ID)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(view)
}
