package shard

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"strongdecomp/internal/graph"
	"strongdecomp/internal/graphio"
	"strongdecomp/internal/obs"
	"strongdecomp/internal/service"
)

// Config parameterizes NewCluster.
type Config struct {
	// SelfID names this process's shard; it must appear in Members.
	SelfID string
	// Members is the full cluster membership, this shard included.
	Members []Member
	// VNodes is the per-member virtual-node count (0: DefaultVNodes).
	VNodes int
	// ProbeInterval is how often peers are health-checked (0: 2s;
	// negative: no background probing — peers are then only marked down
	// when forwarding to them fails, and never revived).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (0: 1 second).
	ProbeTimeout time.Duration
	// PeerTimeout bounds one peer cache lookup or replication push
	// (0: 10 seconds).
	PeerTimeout time.Duration
	// Replicas is how many ring successors (beyond the owner) receive
	// copies of freshly computed results and stored graphs. 0 disables
	// replication; negative values are treated as 0. cmd/serve supplies
	// the default (1) through its flag default.
	Replicas int
	// Secret, when non-empty, is a shared token every cluster-internal
	// request must carry (X-Strongdecomp-Cluster-Key); requests with a
	// missing or mismatched token are rejected. All shards must be
	// started with the same value.
	Secret string
}

// ParseMembers parses the -cluster-peers flag format: a comma-separated
// list of id=url pairs, e.g.
// "shard0=http://127.0.0.1:8080,shard1=http://127.0.0.1:8081".
func ParseMembers(spec string) ([]Member, error) {
	var out []Member
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("shard: malformed peer %q (want id=url)", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("shard: duplicate peer ID %q", id)
		}
		seen[id] = true
		out = append(out, Member{ID: id, URL: strings.TrimRight(url, "/")})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("shard: empty peer list")
	}
	return out, nil
}

// Cluster is one shard's view of the serving tier: the (immutable) ring,
// the (mutable) liveness of its peers, the HTTP clients used to talk to
// them, and the counters the metrics endpoint exports. A Cluster is
// created once per process by cmd/serve and shared by the proxy handler
// and the service's ClusterHooks.
type Cluster struct {
	self        Member
	ring        *Ring
	members     []Member // sorted by ID, includes self
	cfg         Config
	client      *http.Client // bounded control-plane calls (probe, peer cache, replication)
	proxyClient *http.Client // unbounded: proxied computations and result streams

	mu         sync.Mutex
	down       map[string]bool
	draining   bool
	jobOwners  map[string]string // job ID -> member ID, learned from proxied submissions
	jobOrder   []string          // FIFO eviction order for jobOwners
	replicated map[string]bool   // graph hashes already pushed to successors

	stopProbe chan struct{}
	probeWG   sync.WaitGroup

	proxied          atomic.Int64
	proxyErrors      atomic.Int64
	servedLocal      atomic.Int64
	reroutes         atomic.Int64
	fanoutBatches    atomic.Int64
	fanoutJobLookups atomic.Int64
	peerCacheHits    atomic.Int64
	peerCacheMisses  atomic.Int64
	peerCacheServed  atomic.Int64
	resultReplicas   atomic.Int64
	graphReplicas    atomic.Int64
	replicaErrors    atomic.Int64
}

// maxJobOwners bounds the learned job-routing table; past it the oldest
// entries fall back to fan-out lookup.
const maxJobOwners = 8192

// maxReplicatedGraphs bounds the replication dedup set; past it the set
// resets and pushes become idempotent re-sends.
const maxReplicatedGraphs = 8192

// NewCluster validates the membership, builds the ring, and starts the
// background health prober.
func NewCluster(cfg Config) (*Cluster, error) {
	ring, err := NewRing(cfg.Members, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	self, ok := ring.Member(cfg.SelfID)
	if !ok {
		return nil, fmt.Errorf("shard: self ID %q not in member list", cfg.SelfID)
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout == 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.PeerTimeout == 0 {
		cfg.PeerTimeout = 10 * time.Second
	}
	if cfg.Replicas < 0 {
		cfg.Replicas = 0
	}
	c := &Cluster{
		self:        self,
		ring:        ring,
		members:     ring.Members(),
		cfg:         cfg,
		client:      &http.Client{Timeout: cfg.PeerTimeout},
		proxyClient: &http.Client{},
		down:        make(map[string]bool),
		jobOwners:   make(map[string]string),
		replicated:  make(map[string]bool),
		stopProbe:   make(chan struct{}),
	}
	if cfg.ProbeInterval > 0 {
		c.probeWG.Add(1)
		go c.probeLoop()
	}
	return c, nil
}

// Close stops the background prober. It does not touch in-flight proxied
// requests.
func (c *Cluster) Close() {
	select {
	case <-c.stopProbe:
	default:
		close(c.stopProbe)
	}
	c.probeWG.Wait()
}

// Self returns this process's member record.
func (c *Cluster) Self() Member { return c.self }

// Ring exposes the cluster's ring (for tests and topology endpoints).
func (c *Cluster) Ring() *Ring { return c.ring }

// SetDraining flips the draining flag readiness reports: a draining
// shard answers /readyz with 503 so load balancers stop routing to it
// while in-flight work settles.
func (c *Cluster) SetDraining(v bool) {
	c.mu.Lock()
	c.draining = v
	c.mu.Unlock()
}

// setPeerAuth stamps the cluster-internal credentials onto an outgoing
// peer request: the shard header naming this node, and the shared
// secret when one is configured. Every request a shard sends to a peer
// goes through here (forwards, pushes, lookups, probes excepted —
// /healthz is public).
func (c *Cluster) setPeerAuth(h http.Header) {
	h.Set(internalHeader, c.self.ID)
	if c.cfg.Secret != "" {
		h.Set(secretHeader, c.cfg.Secret)
	}
}

// authorizePeer validates an incoming request's cluster-internal
// credentials: the shard header must resolve to a ring member, and when
// a shared secret is configured the secret header must match it. This
// is what stops an ordinary client from forging the internal header to
// inject cache records or bypass routing.
func (c *Cluster) authorizePeer(r *http.Request) error {
	id := r.Header.Get(internalHeader)
	if id == "" {
		return fmt.Errorf("missing %s header", internalHeader)
	}
	if _, ok := c.ring.Member(id); !ok {
		return fmt.Errorf("%s names unknown shard %q", internalHeader, id)
	}
	if c.cfg.Secret != "" {
		got := r.Header.Get(secretHeader)
		if subtle.ConstantTimeCompare([]byte(got), []byte(c.cfg.Secret)) != 1 {
			return fmt.Errorf("missing or mismatched %s header", secretHeader)
		}
	}
	return nil
}

// alive reports whether a member is believed reachable. Self is always
// alive.
func (c *Cluster) alive(id string) bool {
	if id == c.self.ID {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.down[id]
}

// markDown records a peer as unreachable (a failed forward or probe).
func (c *Cluster) markDown(id string) {
	if id == c.self.ID {
		return
	}
	c.mu.Lock()
	c.down[id] = true
	c.mu.Unlock()
}

// markUp revives a peer after a successful probe.
func (c *Cluster) markUp(id string) {
	c.mu.Lock()
	delete(c.down, id)
	c.mu.Unlock()
}

// probeLoop health-checks every peer each interval, marking them up or
// down by whether /healthz answers. Probing is how a dead peer comes
// back: passive failure marking only ever takes peers out.
func (c *Cluster) probeLoop() {
	defer c.probeWG.Done()
	ticker := time.NewTicker(c.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopProbe:
			return
		case <-ticker.C:
			c.probeOnce()
		}
	}
}

// probeOnce probes every peer once, concurrently.
func (c *Cluster) probeOnce() {
	var wg sync.WaitGroup
	for _, m := range c.members {
		if m.ID == c.self.ID {
			continue
		}
		wg.Add(1)
		go func(m Member) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.URL+"/healthz", nil)
			if err != nil {
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				c.markDown(m.ID)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				c.markUp(m.ID)
			} else {
				c.markDown(m.ID)
			}
		}(m)
	}
	wg.Wait()
}

// Ready implements the readiness contract behind GET /readyz: an error
// while draining, and an error when so many peers are unreachable that
// this shard no longer sees a strict majority of the cluster — the
// quorum guard that stops a partitioned minority from serving stale
// routing.
func (c *Cluster) Ready() error {
	c.mu.Lock()
	draining := c.draining
	downCount := 0
	for _, m := range c.members {
		if m.ID != c.self.ID && c.down[m.ID] {
			downCount++
		}
	}
	c.mu.Unlock()
	if draining {
		return fmt.Errorf("shard %s is draining", c.self.ID)
	}
	live := len(c.members) - downCount // self included
	if live*2 <= len(c.members) {
		return fmt.Errorf("unreachable peers exceed quorum: %d of %d members live", live, len(c.members))
	}
	return nil
}

// HealthDetail is the topology block GET /healthz gains in cluster mode:
// shard identity, ring parameters, and per-peer liveness.
func (c *Cluster) HealthDetail() map[string]any {
	c.mu.Lock()
	draining := c.draining
	down := make(map[string]bool, len(c.down))
	for id, d := range c.down {
		down[id] = d
	}
	c.mu.Unlock()
	peers := make([]map[string]any, 0, len(c.members))
	for _, m := range c.members {
		peers = append(peers, map[string]any{
			"id":    m.ID,
			"url":   m.URL,
			"alive": m.ID == c.self.ID || !down[m.ID],
			"self":  m.ID == c.self.ID,
		})
	}
	return map[string]any{
		"shard_id": c.self.ID,
		"ring": map[string]any{
			"members":  len(c.members),
			"vnodes":   c.ring.VNodes(),
			"replicas": c.cfg.Replicas,
		},
		"peers":    peers,
		"draining": draining,
	}
}

// Stats exports the shard counters for /metrics (strongdecomp_shard_* in
// the Prometheus exposition, the "shard" block in JSON).
func (c *Cluster) Stats() map[string]int64 {
	c.mu.Lock()
	downCount := int64(0)
	for _, m := range c.members {
		if m.ID != c.self.ID && c.down[m.ID] {
			downCount++
		}
	}
	draining := int64(0)
	if c.draining {
		draining = 1
	}
	c.mu.Unlock()
	return map[string]int64{
		"proxied_total":            c.proxied.Load(),
		"proxy_errors_total":       c.proxyErrors.Load(),
		"served_local_total":       c.servedLocal.Load(),
		"reroutes_total":           c.reroutes.Load(),
		"fanout_batches_total":     c.fanoutBatches.Load(),
		"fanout_job_lookups_total": c.fanoutJobLookups.Load(),
		"peer_cache_hits_total":    c.peerCacheHits.Load(),
		"peer_cache_misses_total":  c.peerCacheMisses.Load(),
		"peer_cache_served_total":  c.peerCacheServed.Load(),
		"result_replicas_total":    c.resultReplicas.Load(),
		"graph_replicas_total":     c.graphReplicas.Load(),
		"replica_errors_total":     c.replicaErrors.Load(),
		"members":                  int64(len(c.members)),
		"peers_down":               downCount,
		"draining":                 draining,
	}
}

// Hooks returns the service.ClusterHooks wiring this cluster into a
// Service: the peer-cache miss path and the replication callbacks.
func (c *Cluster) Hooks() service.ClusterHooks {
	return service.ClusterHooks{
		PeerLookup:       c.PeerLookup,
		OnResultComputed: c.ReplicateResult,
		OnGraphStored:    c.ReplicateGraph,
	}
}

// PeerLookup is the peer tier of the service's result lookup (local LRU
// → local disk → here → compute): ask the key's live owner for its
// cached copy, and on an owner miss fan out to every other live peer —
// a result cached on any node is a network hop, never a recompute.
func (c *Cluster) PeerLookup(ctx context.Context, graphHash string, paramsKey string, n int) (*service.Result, bool) {
	owner, ok := c.ring.OwnerAmong(graphHash, c.alive)
	if ok && owner.ID != c.self.ID {
		if res, ok := c.fetchPeerResult(ctx, owner, graphHash, paramsKey, n); ok {
			c.peerCacheHits.Add(1)
			return res, true
		}
	}
	// Owner miss (or self-owned): fan out to the remaining live peers in
	// parallel; first hit wins. Replicas and previously-owning nodes
	// answer here after the ring shifted under a failure.
	type hit struct{ res *service.Result }
	results := make(chan hit, len(c.members))
	var wg sync.WaitGroup
	for _, m := range c.members {
		if m.ID == c.self.ID || (ok && m.ID == owner.ID) || !c.alive(m.ID) {
			continue
		}
		wg.Add(1)
		go func(m Member) {
			defer wg.Done()
			if res, ok := c.fetchPeerResult(ctx, m, graphHash, paramsKey, n); ok {
				results <- hit{res}
			}
		}(m)
	}
	go func() { wg.Wait(); close(results) }()
	if h, ok := <-results; ok {
		c.peerCacheHits.Add(1)
		return h.res, true
	}
	c.peerCacheMisses.Add(1)
	return nil, false
}

// fetchPeerResult asks one peer's /internal/cache endpoint for a result
// record and decodes it.
func (c *Cluster) fetchPeerResult(ctx context.Context, m Member, graphHash, paramsKey string, n int) (*service.Result, bool) {
	url := m.URL + "/internal/cache/" + graphHash + "/" + hex.EncodeToString([]byte(paramsKey))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, false
	}
	c.setPeerAuth(req.Header)
	obs.InjectTrace(ctx, req.Header)
	resp, err := c.client.Do(req)
	if err != nil {
		c.markDown(m.ID)
		return nil, false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBodyBytes))
	if err != nil {
		return nil, false
	}
	res, ok := service.DecodeResultRecord(data, graphHash, paramsKey, n)
	if !ok {
		return nil, false
	}
	return res, true
}

// ReplicateResult pushes a freshly computed result record to the key's
// ring successors, asynchronously and best-effort: replication narrows
// the window in which a shard death loses cached work, it is not a
// durability guarantee (the disk tier is).
func (c *Cluster) ReplicateResult(graphHash string, paramsKey string, res *service.Result) {
	targets := c.replicaTargets(graphHash)
	if len(targets) == 0 {
		return
	}
	data, err := service.EncodeResultRecord(graphHash, paramsKey, res)
	if err != nil {
		return
	}
	url := "/internal/cache/" + graphHash + "/" + hex.EncodeToString([]byte(paramsKey))
	go func() {
		for _, m := range targets {
			if c.push(m, url, "application/json", data) {
				c.resultReplicas.Add(1)
			}
		}
	}()
}

// ReplicateGraph pushes a newly stored graph's CSR snapshot to its ring
// successors (once per hash per process — PutGraph fires on every inline
// request, replication must not).
func (c *Cluster) ReplicateGraph(graphHash string, g *graph.Graph) {
	c.mu.Lock()
	if c.replicated[graphHash] {
		c.mu.Unlock()
		return
	}
	if len(c.replicated) >= maxReplicatedGraphs {
		c.replicated = make(map[string]bool)
	}
	c.replicated[graphHash] = true
	c.mu.Unlock()

	targets := c.replicaTargets(graphHash)
	if len(targets) == 0 {
		return
	}
	var buf bytes.Buffer
	if err := graphio.WriteCSR(&buf, g); err != nil {
		return
	}
	data := buf.Bytes()
	go func() {
		for _, m := range targets {
			if c.push(m, "/internal/graphs/"+graphHash, "application/octet-stream", data) {
				c.graphReplicas.Add(1)
			}
		}
	}()
}

// replicaTargets returns the live non-self members among the key's owner
// and its cfg.Replicas successors — the nodes that must hold a copy for
// the ring (minus one member) to keep serving the key.
func (c *Cluster) replicaTargets(key string) []Member {
	succ := c.ring.Successors(key, c.cfg.Replicas+1, c.alive)
	out := succ[:0:0]
	for _, m := range succ {
		if m.ID != c.self.ID {
			out = append(out, m)
		}
	}
	if len(out) > c.cfg.Replicas {
		out = out[:c.cfg.Replicas]
	}
	return out
}

// push PUTs one replication payload to a peer.
func (c *Cluster) push(m Member, path, contentType string, data []byte) bool {
	req, err := http.NewRequest(http.MethodPut, m.URL+path, bytes.NewReader(data))
	if err != nil {
		c.replicaErrors.Add(1)
		return false
	}
	req.Header.Set("Content-Type", contentType)
	c.setPeerAuth(req.Header)
	resp, err := c.client.Do(req)
	if err != nil {
		c.markDown(m.ID)
		c.replicaErrors.Add(1)
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		c.replicaErrors.Add(1)
		return false
	}
	return true
}

// recordJobOwner remembers which member answered a proxied job
// submission, so later polls route without fan-out.
func (c *Cluster) recordJobOwner(jobID, memberID string) {
	if jobID == "" {
		return
	}
	c.mu.Lock()
	if _, exists := c.jobOwners[jobID]; !exists {
		for len(c.jobOrder) >= maxJobOwners {
			delete(c.jobOwners, c.jobOrder[0])
			c.jobOrder = c.jobOrder[1:]
		}
		c.jobOrder = append(c.jobOrder, jobID)
	}
	c.jobOwners[jobID] = memberID
	c.mu.Unlock()
}

// jobOwner looks a job's recorded owner up.
func (c *Cluster) jobOwner(jobID string) (Member, bool) {
	c.mu.Lock()
	id, ok := c.jobOwners[jobID]
	c.mu.Unlock()
	if !ok {
		return Member{}, false
	}
	return c.ring.Member(id)
}

// liveMembers snapshots the members currently believed alive, self
// included, sorted by ID.
func (c *Cluster) liveMembers() []Member {
	out := make([]Member, 0, len(c.members))
	for _, m := range c.members {
		if c.alive(m.ID) {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
