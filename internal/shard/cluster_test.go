package shard

// In-process cluster tests: N shards, each a real service.Service behind
// a real proxy handler on a real httptest listener, wired exactly like
// cmd/serve wires them (late-bound hooks, proxy over local API handler).
// Liveness probing is disabled (ProbeInterval < 0) so tests control the
// failure model explicitly with markDown — no timing-dependent revival.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/graphio"
	"strongdecomp/internal/registry"
	"strongdecomp/internal/service"
	"strongdecomp/internal/service/httpapi"
)

// registerShardStub registers a deterministic seed-dependent construction
// and returns its name plus a counter of real computations.
func registerShardStub(t *testing.T) (string, *atomic.Int64) {
	t.Helper()
	name := fmt.Sprintf("shard-stub-%s", t.Name())
	count := &atomic.Int64{}
	err := registry.Register(name, func() registry.Decomposer {
		return registry.Funcs{
			Meta: registry.Info{Name: name, Model: "deterministic", Diameter: "strong"},
			DecomposeFunc: func(ctx context.Context, g *graph.Graph, opts registry.RunOptions) (*cluster.Decomposition, error) {
				count.Add(1)
				assign := make([]int, g.N())
				for v := range assign {
					assign[v] = (v + int(opts.Seed)) % 2
				}
				return &cluster.Decomposition{Assign: assign, Color: []int{0, 1}, K: 2, Colors: 2}, nil
			},
			CarveFunc: func(ctx context.Context, g *graph.Graph, eps float64, opts registry.RunOptions) (*cluster.Carving, error) {
				count.Add(1)
				assign := make([]int, g.N())
				for v := range assign {
					assign[v] = v % 2
				}
				return &cluster.Carving{Assign: assign, K: 2, Centers: []int{0, 1}}, nil
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { registry.Unregister(name) })
	return name, count
}

// swapHandler lets a listener start before the handler behind it exists —
// the member URLs must be known before the clusters can be built.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "not wired yet", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// testShard is one in-process cluster node.
type testShard struct {
	member  Member
	svc     *service.Service
	cluster *Cluster
	srv     *httptest.Server
	swap    *swapHandler
}

// newTestCluster builds an n-shard in-process cluster running algo.
func newTestCluster(t *testing.T, n int, algo string) []*testShard {
	t.Helper()
	shards := make([]*testShard, n)
	members := make([]Member, n)
	for i := range shards {
		sw := &swapHandler{}
		srv := httptest.NewServer(sw)
		t.Cleanup(srv.Close)
		members[i] = Member{ID: fmt.Sprintf("s%d", i), URL: srv.URL}
		shards[i] = &testShard{member: members[i], srv: srv, swap: sw}
	}
	for i := range shards {
		sh := shards[i]
		// The hooks close over sh so they can late-bind: the service needs
		// them at construction, before the cluster exists (the same
		// indirection cmd/serve uses).
		svc, err := service.New(service.Config{
			DefaultAlgorithm: algo,
			Cluster: service.ClusterHooks{
				PeerLookup: func(ctx context.Context, h, p string, nn int) (*service.Result, bool) {
					if c := sh.cluster; c != nil {
						return c.PeerLookup(ctx, h, p, nn)
					}
					return nil, false
				},
				OnResultComputed: func(h, p string, r *service.Result) {
					if c := sh.cluster; c != nil {
						c.ReplicateResult(h, p, r)
					}
				},
				OnGraphStored: func(h string, g *graph.Graph) {
					if c := sh.cluster; c != nil {
						c.ReplicateGraph(h, g)
					}
				},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(svc.Close)
		// Replicas is explicit: Config honors 0 as "no replication", and
		// these tests exercise the replication paths.
		c, err := NewCluster(Config{SelfID: sh.member.ID, Members: members, ProbeInterval: -1, Replicas: 1})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		sh.svc, sh.cluster = svc, c
		sh.swap.set(c.Handler(svc, httpapi.New(svc,
			httpapi.WithReadiness(c.Ready),
			httpapi.WithHealthDetail(c.HealthDetail),
			httpapi.WithClusterStats(c.Stats),
		)))
	}
	return shards
}

// shardIndex resolves a member ID back to its slice index.
func shardIndex(t *testing.T, shards []*testShard, id string) int {
	t.Helper()
	for i, sh := range shards {
		if sh.member.ID == id {
			return i
		}
	}
	t.Fatalf("no shard %q", id)
	return -1
}

// postJSON posts body to url and returns (status, response bytes).
func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// computeWire is the subset of the compute response the tests assert on.
type computeWire struct {
	GraphHash string `json:"graph_hash"`
	K         int    `json:"k"`
	Assign    []int  `json:"assign"`
	Cached    bool   `json:"cached"`
	Peer      bool   `json:"peer"`
}

// decodeWire unmarshals into out, failing the test on garbage.
func decodeWire(t *testing.T, data []byte, out any) {
	t.Helper()
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("decode %q: %v", data, err)
	}
}

// waitFor polls cond until true or the deadline, then fails.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestClusterProxyRoutesToOwner: a graph uploaded through a non-owner
// node lands on the ring owner, compute requests through any node answer
// correctly, and repeats are owner cache hits — the whole cluster
// behaves as one service.
func TestClusterProxyRoutesToOwner(t *testing.T) {
	algo, count := registerShardStub(t)
	shards := newTestCluster(t, 3, algo)
	g := graph.Cycle(16)
	hash := graphio.Hash(g)

	owner := shardIndex(t, shards, shards[0].cluster.Ring().Owner(hash).ID)
	coord := (owner + 1) % 3

	status, body := postJSON(t, shards[coord].srv.URL+"/v1/graphs", graphio.ToDocument(g))
	if status != http.StatusOK {
		t.Fatalf("upload via coordinator: status %d: %s", status, body)
	}
	var up struct {
		Hash string `json:"hash"`
	}
	decodeWire(t, body, &up)
	if up.Hash != hash {
		t.Fatalf("upload hash %s, want %s", up.Hash, hash)
	}
	if _, ok := shards[owner].svc.GetGraph(hash); !ok {
		t.Fatal("graph did not land on its ring owner")
	}

	req := map[string]any{"hash": hash, "algo": algo, "seed": 3}
	status, body = postJSON(t, shards[coord].srv.URL+"/v1/decompose", req)
	if status != http.StatusOK {
		t.Fatalf("decompose via coordinator: status %d: %s", status, body)
	}
	var first computeWire
	decodeWire(t, body, &first)
	if first.GraphHash != hash || len(first.Assign) != g.N() || first.Cached {
		t.Fatalf("first compute: %+v", first)
	}

	// Repeat through the third node: same owner, so a cache hit.
	third := 3 - owner - coord
	status, body = postJSON(t, shards[third].srv.URL+"/v1/decompose", req)
	if status != http.StatusOK {
		t.Fatalf("repeat via third node: status %d: %s", status, body)
	}
	var second computeWire
	decodeWire(t, body, &second)
	if !second.Cached {
		t.Fatal("repeat through another node missed the owner's cache")
	}
	for v := range first.Assign {
		if first.Assign[v] != second.Assign[v] {
			t.Fatalf("node %d: assign diverged across coordinators", v)
		}
	}
	if got := count.Load(); got != 1 {
		t.Fatalf("backend computed %d times, want 1", got)
	}
	if st := shards[coord].cluster.Stats(); st["proxied_total"] == 0 {
		t.Fatal("coordinator proxied nothing; requests were served locally")
	}
}

// TestClusterKillOwnerServesReplicatedResult is the resilience
// acceptance test: upload + decompose through a coordinator, kill the
// owning shard, and the result — replicated to the ring successor at
// compute time — still serves through the surviving nodes, without
// recomputation. New requests for the same graph also keep working.
func TestClusterKillOwnerServesReplicatedResult(t *testing.T) {
	algo, count := registerShardStub(t)
	shards := newTestCluster(t, 3, algo)
	g := graph.ClusterGraph(3, 8, 0.6, 7)
	hash := graphio.Hash(g)

	ring := shards[0].cluster.Ring()
	owner := shardIndex(t, shards, ring.Owner(hash).ID)
	succ := shardIndex(t, shards, ring.Successors(hash, 2, nil)[1].ID)
	coord := 3 - owner - succ // the node that is neither owner nor replica

	if status, body := postJSON(t, shards[coord].srv.URL+"/v1/graphs", graphio.ToDocument(g)); status != http.StatusOK {
		t.Fatalf("upload: status %d: %s", status, body)
	}
	req := map[string]any{"hash": hash, "algo": algo, "seed": 3}
	status, body := postJSON(t, shards[coord].srv.URL+"/v1/decompose", req)
	if status != http.StatusOK {
		t.Fatalf("decompose: status %d: %s", status, body)
	}
	var first computeWire
	decodeWire(t, body, &first)

	// Replication is asynchronous; wait for the successor to hold both the
	// graph snapshot and the result record before pulling the plug.
	paramsKey := registry.Params{Algorithm: algo, Kind: registry.KindDecompose, Seed: 3, Meter: true}.Key()
	waitFor(t, "replica graph on successor", func() bool {
		_, ok := shards[succ].svc.GetGraph(hash)
		return ok
	})
	waitFor(t, "replica result on successor", func() bool {
		_, ok := shards[succ].svc.CachedResult(hash, paramsKey)
		return ok
	})

	// Kill the owner: listener down, and the survivors' liveness marks it
	// dead (the probe loop is off; a real deployment gets here via probes
	// or the first failed forward).
	shards[owner].srv.Close()
	for i, sh := range shards {
		if i != owner {
			sh.cluster.markDown(shards[owner].member.ID)
		}
	}

	status, body = postJSON(t, shards[coord].srv.URL+"/v1/decompose", req)
	if status != http.StatusOK {
		t.Fatalf("decompose after owner death: status %d: %s", status, body)
	}
	var after computeWire
	decodeWire(t, body, &after)
	if !after.Cached {
		t.Fatal("survivor recomputed a result that was replicated to it")
	}
	for v := range first.Assign {
		if first.Assign[v] != after.Assign[v] {
			t.Fatalf("node %d: post-failure assign %d != original %d", v, after.Assign[v], first.Assign[v])
		}
	}
	if got := count.Load(); got != 1 {
		t.Fatalf("backend computed %d times across the failure, want 1", got)
	}

	// Fresh work on the same graph keeps flowing: a new seed computes on
	// the inheriting survivor from its replicated snapshot.
	fresh := map[string]any{"hash": hash, "algo": algo, "seed": 4}
	status, body = postJSON(t, shards[coord].srv.URL+"/v1/decompose", fresh)
	if status != http.StatusOK {
		t.Fatalf("fresh seed after owner death: status %d: %s", status, body)
	}
	var freshRes computeWire
	decodeWire(t, body, &freshRes)
	if freshRes.Cached || len(freshRes.Assign) != g.N() {
		t.Fatalf("fresh seed after owner death: %+v", freshRes)
	}
}

// TestClusterPeerLookup: the peer tier finds a result cached on another
// node — via the owner directly, and via fan-out once the owner is dead.
func TestClusterPeerLookup(t *testing.T) {
	algo, _ := registerShardStub(t)
	shards := newTestCluster(t, 3, algo)
	g := graph.Torus(4, 4)
	hash := graphio.Hash(g)

	ring := shards[0].cluster.Ring()
	owner := shardIndex(t, shards, ring.Owner(hash).ID)
	succ := shardIndex(t, shards, ring.Successors(hash, 2, nil)[1].ID)
	other := 3 - owner - succ

	shards[owner].svc.PutGraph(g)
	res, err := shards[owner].svc.Decompose(context.Background(), &service.Request{Hash: hash, Algo: algo, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	paramsKey := registry.Params{Algorithm: algo, Kind: registry.KindDecompose, Seed: 5, Meter: true}.Key()
	waitFor(t, "replica result on successor", func() bool {
		_, ok := shards[succ].svc.CachedResult(hash, paramsKey)
		return ok
	})

	got, ok := shards[other].cluster.PeerLookup(context.Background(), hash, paramsKey, g.N())
	if !ok {
		t.Fatal("peer lookup missed a result the live owner holds")
	}
	for v := range res.Decomposition.Assign {
		if got.Decomposition.Assign[v] != res.Decomposition.Assign[v] {
			t.Fatalf("node %d: peer copy diverges", v)
		}
	}

	// Owner dead: the fan-out leg finds the replica on the successor.
	shards[other].cluster.markDown(shards[owner].member.ID)
	if _, ok := shards[other].cluster.PeerLookup(context.Background(), hash, paramsKey, g.N()); !ok {
		t.Fatal("fan-out missed the successor's replica after owner death")
	}
	if hits := shards[other].cluster.Stats()["peer_cache_hits_total"]; hits != 2 {
		t.Fatalf("peer_cache_hits_total = %d, want 2", hits)
	}
}

// TestClusterJobsAcrossShards: a job submitted through one node is
// visible through every node — by the learned owner route on the
// submitting coordinator and by fan-out everywhere else.
func TestClusterJobsAcrossShards(t *testing.T) {
	algo, _ := registerShardStub(t)
	shards := newTestCluster(t, 3, algo)
	g := graph.Grid(5, 5)
	hash := graphio.Hash(g)

	owner := shardIndex(t, shards, shards[0].cluster.Ring().Owner(hash).ID)
	coord := (owner + 1) % 3
	third := 3 - owner - coord

	if status, body := postJSON(t, shards[coord].srv.URL+"/v1/graphs", graphio.ToDocument(g)); status != http.StatusOK {
		t.Fatalf("upload: status %d: %s", status, body)
	}
	status, body := postJSON(t, shards[coord].srv.URL+"/v2/jobs",
		map[string]any{"hash": hash, "algo": algo, "seed": 9})
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, body)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	decodeWire(t, body, &job)
	if job.ID == "" {
		t.Fatalf("submit answered without a job ID: %s", body)
	}
	if _, ok := shards[coord].cluster.jobOwner(job.ID); !ok && coord != owner {
		t.Fatal("coordinator did not learn the proxied job's owner")
	}

	// Poll from the third node (no learned route there: fan-out).
	waitFor(t, "job done via third node", func() bool {
		resp, err := http.Get(shards[third].srv.URL + "/v2/jobs/" + job.ID)
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		var j struct {
			State string `json:"state"`
		}
		return json.Unmarshal(data, &j) == nil && j.State == "done"
	})

	resp, err := http.Get(shards[third].srv.URL + "/v2/jobs/" + job.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result via third node: status %d: %s", resp.StatusCode, data)
	}
	var res computeWire
	decodeWire(t, data, &res)
	if res.GraphHash != hash || len(res.Assign) != g.N() {
		t.Fatalf("job result: %+v", res)
	}

	// Unknown IDs still 404 through the fan-out path.
	resp2, err := http.Get(shards[third].srv.URL + "/v2/jobs/no-such-job")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp2.StatusCode)
	}
}

// TestClusterBatchFanout: a batch posted to one node splits across the
// owning shards and reassembles in request order.
func TestClusterBatchFanout(t *testing.T) {
	algo, _ := registerShardStub(t)
	shards := newTestCluster(t, 3, algo)

	// Enough distinct graphs that at least two different shards own some.
	var graphs []*graph.Graph
	for n := 10; n < 18; n++ {
		graphs = append(graphs, graph.Cycle(n))
	}
	owners := make(map[string]bool)
	items := make([]map[string]any, 0, len(graphs))
	for _, g := range graphs {
		owners[shards[0].cluster.Ring().Owner(graphio.Hash(g)).ID] = true
		items = append(items, map[string]any{"graph": graphio.ToDocument(g), "algo": algo, "seed": 1})
	}
	if len(owners) < 2 {
		t.Fatal("test graphs all landed on one shard; balance assumption broken")
	}
	// One malformed item: errors must stay slot-local.
	items = append(items, map[string]any{"hash": "deadbeef", "algo": algo})

	status, body := postJSON(t, shards[0].srv.URL+"/v1/decompose/batch", map[string]any{"requests": items})
	if status != http.StatusOK {
		t.Fatalf("batch: status %d: %s", status, body)
	}
	var out struct {
		Results []struct {
			Result *computeWire `json:"result"`
			Error  string       `json:"error"`
		} `json:"results"`
	}
	decodeWire(t, body, &out)
	if len(out.Results) != len(items) {
		t.Fatalf("batch answered %d of %d items", len(out.Results), len(items))
	}
	for i, g := range graphs {
		slot := out.Results[i]
		if slot.Result == nil {
			t.Fatalf("item %d failed: %s", i, slot.Error)
		}
		if slot.Result.GraphHash != graphio.Hash(g) {
			t.Fatalf("item %d answered for graph %s, want %s", i, slot.Result.GraphHash, graphio.Hash(g))
		}
		if len(slot.Result.Assign) != g.N() {
			t.Fatalf("item %d: assign length %d, want %d", i, len(slot.Result.Assign), g.N())
		}
	}
	last := out.Results[len(items)-1]
	if last.Result != nil || last.Error == "" {
		t.Fatalf("malformed trailing item did not error: %+v", last)
	}
}

// TestClusterReadyQuorum pins the readiness contract: ready with a
// majority live, unready while draining or partitioned into a minority.
func TestClusterReadyQuorum(t *testing.T) {
	members := testMembers(3)
	c, err := NewCluster(Config{SelfID: members[0].ID, Members: members, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ready(); err != nil {
		t.Fatalf("fresh cluster unready: %v", err)
	}
	c.markDown(members[1].ID)
	if err := c.Ready(); err != nil {
		t.Fatalf("2 of 3 live is a majority, got: %v", err)
	}
	c.markDown(members[2].ID)
	if err := c.Ready(); err == nil {
		t.Fatal("1 of 3 live reported ready")
	}
	c.markUp(members[1].ID)
	c.markUp(members[2].ID)
	c.SetDraining(true)
	if err := c.Ready(); err == nil {
		t.Fatal("draining shard reported ready")
	}
	c.SetDraining(false)
	if err := c.Ready(); err != nil {
		t.Fatalf("undrained cluster unready: %v", err)
	}
}

// TestNewClusterRejectsForeignSelf: the self ID must be a ring member.
func TestNewClusterRejectsForeignSelf(t *testing.T) {
	if _, err := NewCluster(Config{SelfID: "ghost", Members: testMembers(3), ProbeInterval: -1}); err == nil {
		t.Fatal("self outside the membership accepted")
	}
}

// doReq performs an arbitrary request and returns (status, body).
func doReq(t *testing.T, req *http.Request) (int, []byte) {
	t.Helper()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestClusterInternalAuth pins the peer-authentication contract: the
// /internal/ surface and the internal-header routing bypass are only
// reachable with a shard header naming a ring member — a client forging
// the header (or omitting it on /internal/) is rejected, so it cannot
// inject cache records, push graphs, or pin its own request placement.
func TestClusterInternalAuth(t *testing.T) {
	algo, _ := registerShardStub(t)
	shards := newTestCluster(t, 3, algo)
	base := shards[0].srv.URL
	record := []byte(`{"schema":"strongdecomp/result/v1"}`)

	// /internal/ without the shard header: rejected before any admission.
	req, _ := http.NewRequest(http.MethodPut, base+"/internal/cache/deadbeef/00", bytes.NewReader(record))
	if status, body := doReq(t, req); status != http.StatusForbidden {
		t.Fatalf("headerless internal PUT: status %d (%s), want 403", status, body)
	}

	// /internal/ with a header naming a shard outside the ring: rejected.
	req, _ = http.NewRequest(http.MethodPut, base+"/internal/cache/deadbeef/00", bytes.NewReader(record))
	req.Header.Set(internalHeader, "mallory")
	if status, body := doReq(t, req); status != http.StatusForbidden {
		t.Fatalf("forged internal PUT: status %d (%s), want 403", status, body)
	}
	req, _ = http.NewRequest(http.MethodGet, base+"/internal/ring", nil)
	req.Header.Set(internalHeader, "mallory")
	if status, _ := doReq(t, req); status != http.StatusForbidden {
		t.Fatalf("forged ring introspection: status %d, want 403", status)
	}

	// A forged header on a public route must not bypass routing.
	g := graph.Cycle(9)
	body, _ := json.Marshal(map[string]any{"graph": graphio.ToDocument(g), "algo": algo})
	req, _ = http.NewRequest(http.MethodPost, base+"/v1/decompose", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(internalHeader, "mallory")
	if status, out := doReq(t, req); status != http.StatusForbidden {
		t.Fatalf("forged routing bypass: status %d (%s), want 403", status, out)
	}

	// A genuine member ID still passes (membership-only mode).
	req, _ = http.NewRequest(http.MethodGet, base+"/internal/ring", nil)
	req.Header.Set(internalHeader, shards[1].member.ID)
	if status, out := doReq(t, req); status != http.StatusOK {
		t.Fatalf("member-authenticated ring introspection: status %d (%s), want 200", status, out)
	}
}

// TestClusterSharedSecret: with Config.Secret set, membership alone is
// not enough — internal requests must also present the token.
func TestClusterSharedSecret(t *testing.T) {
	algo, _ := registerShardStub(t)
	members := testMembers(2)
	svc, err := service.New(service.Config{DefaultAlgorithm: algo})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	c, err := NewCluster(Config{SelfID: members[0].ID, Members: members, ProbeInterval: -1, Secret: "sesame"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	srv := httptest.NewServer(c.Handler(svc, httpapi.New(svc)))
	t.Cleanup(srv.Close)

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/internal/ring", nil)
	req.Header.Set(internalHeader, members[1].ID)
	if status, _ := doReq(t, req); status != http.StatusForbidden {
		t.Fatalf("member without secret: status %d, want 403", status)
	}
	req, _ = http.NewRequest(http.MethodGet, srv.URL+"/internal/ring", nil)
	req.Header.Set(internalHeader, members[1].ID)
	req.Header.Set(secretHeader, "wrong")
	if status, _ := doReq(t, req); status != http.StatusForbidden {
		t.Fatalf("member with wrong secret: status %d, want 403", status)
	}
	req, _ = http.NewRequest(http.MethodGet, srv.URL+"/internal/ring", nil)
	c.setPeerAuth(req.Header)
	if status, out := doReq(t, req); status != http.StatusOK {
		t.Fatalf("member with secret: status %d (%s), want 200", status, out)
	}
}

// TestClusterBatchCap: the coordinator enforces the API layer's batch
// cap before fan-out, matching the single-node 400 instead of splitting
// an oversized batch into passing sub-batches.
func TestClusterBatchCap(t *testing.T) {
	algo, _ := registerShardStub(t)
	shards := newTestCluster(t, 3, algo)
	items := make([]map[string]any, httpapi.MaxBatchRequests+1)
	for i := range items {
		items[i] = map[string]any{"hash": "deadbeef", "algo": algo}
	}
	status, body := postJSON(t, shards[0].srv.URL+"/v1/decompose/batch", map[string]any{"requests": items})
	if status != http.StatusBadRequest {
		t.Fatalf("oversized batch via coordinator: status %d (%.120s), want 400", status, body)
	}
}

// TestClusterReplicasZero: an explicit Replicas of 0 means no
// replication — no successor is ever targeted.
func TestClusterReplicasZero(t *testing.T) {
	members := testMembers(3)
	c, err := NewCluster(Config{SelfID: members[0].ID, Members: members, ProbeInterval: -1, Replicas: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.replicaTargets("0000000000000000000000000000000000000000000000000000000000000000"); len(got) != 0 {
		t.Fatalf("Replicas=0 still targets %v", got)
	}
}
