package shard

import (
	"fmt"
	"testing"
)

// testMembers builds n members named shard-0..shard-n-1.
func testMembers(n int) []Member {
	out := make([]Member, n)
	for i := range out {
		out[i] = Member{ID: fmt.Sprintf("shard-%d", i), URL: fmt.Sprintf("http://10.0.0.%d:8080", i+1)}
	}
	return out
}

// testKeys returns count distinct routing keys shaped like content hashes.
func testKeys(count int) []string {
	keys := make([]string, count)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return keys
}

// TestRingDeterminism: two rings built from the same membership — in any
// order — agree on every placement. This is the property the whole
// coordinator design rests on: every shard routes identically without
// coordination.
func TestRingDeterminism(t *testing.T) {
	members := testMembers(5)
	r1, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	reversed := make([]Member, len(members))
	for i, m := range members {
		reversed[len(members)-1-i] = m
	}
	r2, err := NewRing(reversed, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range testKeys(500) {
		if a, b := r1.Owner(key), r2.Owner(key); a.ID != b.ID {
			t.Fatalf("key %s: ring 1 says %s, ring 2 says %s", key[:12], a.ID, b.ID)
		}
	}
}

// TestRingBalance: with the default virtual-node count, no shard of a
// 5-member ring owns a wildly disproportionate key share.
func TestRingBalance(t *testing.T) {
	r, err := NewRing(testMembers(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	keys := testKeys(10000)
	for _, key := range keys {
		counts[r.Owner(key).ID]++
	}
	want := len(keys) / 5
	for id, got := range counts {
		if got < want/2 || got > want*2 {
			t.Errorf("%s owns %d of %d keys (fair share %d)", id, got, len(keys), want)
		}
	}
	if len(counts) != 5 {
		t.Fatalf("only %d of 5 members own keys", len(counts))
	}
}

// TestRingMinimalReshuffle: dropping one member moves only the keys it
// owned — every key owned by a survivor keeps its owner. The consistent-
// hashing property that makes membership changes cheap.
func TestRingMinimalReshuffle(t *testing.T) {
	members := testMembers(5)
	full, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	smaller, err := NewRing(members[:4], 0)
	if err != nil {
		t.Fatal(err)
	}
	dropped := members[4].ID
	moved := 0
	keys := testKeys(5000)
	for _, key := range keys {
		before, after := full.Owner(key), smaller.Owner(key)
		if before.ID == dropped {
			moved++
			continue
		}
		if before.ID != after.ID {
			t.Fatalf("key %s owned by survivor %s moved to %s", key[:12], before.ID, after.ID)
		}
	}
	if moved == 0 {
		t.Fatal("dropped member owned no keys; balance is broken")
	}
}

// TestRingDeadSkip: OwnerAmong with a dead owner resolves to the same
// successor Successors reports, and liveness filtering agrees with the
// unfiltered walk.
func TestRingDeadSkip(t *testing.T) {
	r, err := NewRing(testMembers(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range testKeys(200) {
		order := r.Successors(key, 4, nil)
		if len(order) != 4 {
			t.Fatalf("key %s: successor walk found %d of 4 members", key[:12], len(order))
		}
		dead := order[0].ID
		alive := func(id string) bool { return id != dead }
		got, ok := r.OwnerAmong(key, alive)
		if !ok {
			t.Fatalf("key %s: no live owner with one dead member", key[:12])
		}
		if got.ID != order[1].ID {
			t.Fatalf("key %s: dead-skip owner %s, want successor %s", key[:12], got.ID, order[1].ID)
		}
	}
}

// TestRingAllDead: when no member passes the liveness filter, OwnerAmong
// reports the cluster-down case instead of inventing an owner.
func TestRingAllDead(t *testing.T) {
	r, err := NewRing(testMembers(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.OwnerAmong("some-key", func(string) bool { return false }); ok {
		t.Fatal("OwnerAmong found an owner among zero live members")
	}
}

// TestNewRingRejectsBadMembership: empty rings, unnamed members, and
// duplicate IDs are construction errors.
func TestNewRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRing([]Member{{URL: "http://x"}}, 0); err == nil {
		t.Error("member with empty ID accepted")
	}
	if _, err := NewRing([]Member{{ID: "a", URL: "http://1"}, {ID: "a", URL: "http://2"}}, 0); err == nil {
		t.Error("duplicate member ID accepted")
	}
}

// TestParseMembers covers the -cluster-peers wire syntax.
func TestParseMembers(t *testing.T) {
	got, err := ParseMembers("a=http://h1:8080, b=http://h2:8080,c=http://h3:8080/")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d members, want 3", len(got))
	}
	if got[0].ID != "a" || got[0].URL != "http://h1:8080" {
		t.Fatalf("first member = %+v", got[0])
	}
	if got[2].URL != "http://h3:8080" {
		t.Fatalf("trailing slash not trimmed: %q", got[2].URL)
	}
	for _, bad := range []string{"", "a", "=http://x", "a=", "a=http://1,a=http://2"} {
		if _, err := ParseMembers(bad); err == nil {
			t.Errorf("ParseMembers(%q) accepted", bad)
		}
	}
}
