package shard

// End-to-end applications test: a 2-shard cluster where an app request
// enters through the non-owner coordinator. The proxy must forward
// POST /v2/apps/{app} to the graph's owner exactly like a decompose
// request (one hop, one shared trace ID, app-run span on the owner), the
// owner must compute the decomposition exactly once across different
// apps, and the repeat must be an app-cache hit on the owner.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"

	"strongdecomp/internal/graph"
	"strongdecomp/internal/graphio"
	"strongdecomp/internal/obs"
	"strongdecomp/internal/service"
	"strongdecomp/internal/service/httpapi"
)

func TestClusterAppForwardedToOwner(t *testing.T) {
	algo, count := registerShardStub(t)

	const n = 2
	shards := make([]*testShard, n)
	sinks := make([]*spanSink, n)
	members := make([]Member, n)
	for i := range shards {
		sw := &swapHandler{}
		srv := httptest.NewServer(sw)
		t.Cleanup(srv.Close)
		members[i] = Member{ID: fmt.Sprintf("s%d", i), URL: srv.URL}
		shards[i] = &testShard{member: members[i], srv: srv, swap: sw}
		sinks[i] = &spanSink{}
	}
	for i := range shards {
		sh := shards[i]
		svc, err := service.New(service.Config{DefaultAlgorithm: algo})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(svc.Close)
		c, err := NewCluster(Config{SelfID: sh.member.ID, Members: members, ProbeInterval: -1, Replicas: 0})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		sh.svc, sh.cluster = svc, c
		col := obs.NewCollector(slog.New(slog.NewJSONHandler(sinks[i], nil)))
		local := httpapi.New(svc,
			httpapi.WithReadiness(c.Ready),
			httpapi.WithObs(col),
			httpapi.WithServedBy(sh.member.ID),
		)
		sh.swap.set(col.Middleware(c.Handler(svc, local)))
	}

	g := graph.Grid(4, 4)
	var buf bytes.Buffer
	if err := graphio.Write(&buf, g, graphio.FormatJSON); err != nil {
		t.Fatal(err)
	}
	hash := graphio.Hash(g)
	owner, ok := shards[0].cluster.ring.OwnerAmong(hash, shards[0].cluster.alive)
	if !ok {
		t.Fatal("no owner")
	}
	ownerIdx := shardIndex(t, shards, owner.ID)
	coordIdx := (ownerIdx + 1) % n

	resp, err := http.Post(shards[coordIdx].srv.URL+"/v1/graphs?format=json", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status %d", resp.StatusCode)
	}

	// First app through the coordinator: forwarded, computed on the owner.
	status, body := postJSON(t, shards[coordIdx].srv.URL+"/v2/apps/diameter", map[string]any{"hash": hash, "seed": 1})
	if status != http.StatusOK {
		t.Fatalf("app status %d: %s", status, body)
	}
	var out struct {
		App                 string `json:"app"`
		Diameter            *int   `json:"diameter"`
		ScheduleCost        int    `json:"schedule_cost"`
		Cached              bool   `json:"cached"`
		DecompositionCached bool   `json:"decomposition_cached"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.App != "diameter" || out.Diameter == nil || *out.Diameter != 6 {
		t.Fatalf("grid-4x4 app response: %s", body)
	}
	if out.Cached {
		t.Fatalf("first app request flagged cached: %s", body)
	}
	if got := count.Load(); got != 1 {
		t.Fatalf("decomposition computed %d times, want 1", got)
	}

	// The request must have been served by the owner, one hop away, under
	// a single trace ID with app spans on the owner side only.
	ownerTraces := make(map[string]bool)
	for _, r := range sinks[ownerIdx].spans(t) {
		ownerTraces[r.TraceID] = true
	}
	var shared string
	for _, r := range sinks[coordIdx].spans(t) {
		if r.Stage == "proxy" && ownerTraces[r.TraceID] {
			shared = r.TraceID
		}
	}
	if shared == "" {
		t.Fatal("no proxy span sharing a trace ID with the owner")
	}
	ownerStages := make(map[string]int)
	for _, r := range sinks[ownerIdx].spans(t) {
		if r.TraceID != shared {
			continue
		}
		if r.Hop != 1 {
			t.Errorf("owner span %+v: want hop 1", r)
		}
		ownerStages[r.Stage]++
	}
	for _, want := range []string{"app-resolve", "app-run", "route"} {
		if ownerStages[want] == 0 {
			t.Errorf("owner missing %q span in trace %s: %v", want, shared, ownerStages)
		}
	}
	for _, r := range sinks[coordIdx].spans(t) {
		if r.TraceID == shared && r.Hop != 0 {
			t.Errorf("coordinator span %+v: want hop 0", r)
		}
	}

	// A second app reuses the owner's cached decomposition; the repeat of
	// the first is an app-cache hit. Neither recomputes.
	status, body = postJSON(t, shards[coordIdx].srv.URL+"/v2/apps/mis", map[string]any{"hash": hash, "seed": 1})
	if status != http.StatusOK {
		t.Fatalf("mis status %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.DecompositionCached {
		t.Fatalf("mis on the owner did not reuse the decomposition: %s", body)
	}
	status, body = postJSON(t, shards[coordIdx].srv.URL+"/v2/apps/diameter", map[string]any{"hash": hash, "seed": 1})
	if status != http.StatusOK {
		t.Fatalf("repeat status %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Cached {
		t.Fatalf("repeat app not served from the owner's app cache: %s", body)
	}
	if got := count.Load(); got != 1 {
		t.Fatalf("decomposition computed %d times across three app requests, want 1", got)
	}

	// The response names the serving shard.
	req, err := http.NewRequest(http.MethodPost, shards[coordIdx].srv.URL+"/v2/apps/diameter",
		bytes.NewReader([]byte(fmt.Sprintf(`{"hash":%q,"seed":1}`, hash))))
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get(httpapi.ServedByHeader); got != owner.ID {
		t.Errorf("%s = %q, want owner %q", httpapi.ServedByHeader, got, owner.ID)
	}
}
