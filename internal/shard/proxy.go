package shard

// The coordinator proxy: every shard mounts this handler, so any node of
// the cluster accepts the full v1/v2 API and routes each request to the
// shard the ring says owns it — clients need one address, not a cluster
// map. Routing needs only the graph hash (taken from the body, or
// computed from an inline graph), requests are forwarded byte-identical,
// and forwarded requests carry an internal header that pins them to the
// receiving node, so two shards with momentarily different liveness
// views can never bounce a request between them.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"strongdecomp/internal/graphio"
	"strongdecomp/internal/obs"
	"strongdecomp/internal/service"
	"strongdecomp/internal/service/httpapi"
)

// internalHeader marks cluster-internal requests: the receiving shard
// serves them locally, never proxies onward. Its value must name a ring
// member — an unknown value is rejected, not routed (see authorizePeer).
const internalHeader = "X-Strongdecomp-Shard"

// secretHeader carries the shared cluster secret (Config.Secret) on
// cluster-internal requests when one is configured.
const secretHeader = "X-Strongdecomp-Cluster-Key"

// maxProxyBodyBytes bounds request bodies buffered for routing; it
// matches the API layer's own body cap.
const maxProxyBodyBytes = 128 << 20

// maxPeerBodyBytes bounds peer responses buffered by the cluster client
// (result records, sub-batch responses).
const maxPeerBodyBytes = 128 << 20

// proxy is the routing handler for one shard.
type proxy struct {
	c     *Cluster
	svc   *service.Service
	local http.Handler
	mux   *http.ServeMux
}

// Handler wraps the shard's local API handler with consistent-hash
// routing and mounts the cluster-internal endpoints. Requests whose
// owner is this shard (and every request carrying the internal header)
// are served by local unchanged.
func (c *Cluster) Handler(svc *service.Service, local http.Handler) http.Handler {
	p := &proxy{c: c, svc: svc, local: local}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/graphs", p.putGraph)
	mux.HandleFunc("GET /v1/graphs/{hash}", p.byHashPath)
	mux.HandleFunc("POST /v1/decompose", p.compute)
	mux.HandleFunc("POST /v1/carve", p.compute)
	mux.HandleFunc("POST /v1/decompose/batch", p.batch)
	mux.HandleFunc("POST /v2/apps/{app}", p.compute)
	mux.HandleFunc("POST /v2/jobs", p.submitJob)
	mux.HandleFunc("GET /v2/jobs/{id}", p.jobByID)
	mux.HandleFunc("DELETE /v2/jobs/{id}", p.jobByID)
	mux.HandleFunc("GET /v2/jobs/{id}/result", p.jobByID)
	mux.HandleFunc("GET /internal/cache/{hash}/{params}", p.requirePeer(p.internalCacheGet))
	mux.HandleFunc("PUT /internal/cache/{hash}/{params}", p.requirePeer(p.internalCachePut))
	mux.HandleFunc("PUT /internal/graphs/{hash}", p.requirePeer(p.internalGraphPut))
	mux.HandleFunc("GET /internal/ring", p.requirePeer(p.internalRing))
	mux.Handle("/", local) // healthz, readyz, metrics, algorithms: always local
	p.mux = mux
	return p
}

// ServeHTTP pins internal requests to this node before any routing runs.
func (p *proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mux.ServeHTTP(w, r)
}

// requirePeer gates a cluster-internal endpoint on peer credentials:
// the shard header must name a ring member (and carry the shared secret
// when one is configured), so an ordinary client cannot inject cache
// records or graph replicas by calling /internal/ directly.
func (p *proxy) requirePeer(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if err := p.c.authorizePeer(r); err != nil {
			writeJSONError(w, http.StatusForbidden, err)
			return
		}
		h(w, r)
	}
}

// handleInternal intercepts requests carrying the internal header before
// any routing runs. A request forwarded by an authorized peer is pinned
// to this node (served locally, never proxied onward — two shards with
// momentarily different liveness views can never bounce a request
// between them); a request whose header fails peer authorization is
// rejected outright rather than routed, so a forged header cannot
// select its own placement. Returns true when the request was consumed.
func (p *proxy) handleInternal(w http.ResponseWriter, r *http.Request) bool {
	if r.Header.Get(internalHeader) == "" {
		return false
	}
	if err := p.c.authorizePeer(r); err != nil {
		writeJSONError(w, http.StatusForbidden, err)
		return true
	}
	p.local.ServeHTTP(w, r)
	return true
}

// readBody buffers a routed request's body (routing has to inspect it,
// and retrying a forward needs to replay it).
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxProxyBodyBytes))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Errorf("read request body: %w", err))
		return nil, false
	}
	return body, true
}

// serveLocal replays a buffered request into the local API handler.
func (p *proxy) serveLocal(w http.ResponseWriter, r *http.Request, body []byte) {
	p.c.servedLocal.Add(1)
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	p.local.ServeHTTP(w, r2)
}

// forward relays the request to member m verbatim (same method, path,
// query, body) with the internal header set. It returns an error only if
// no response was received — once m starts answering, its response is
// streamed through and the request is committed.
func (p *proxy) forward(w http.ResponseWriter, r *http.Request, body []byte, m Member) error {
	start := time.Now()
	req, err := http.NewRequestWithContext(r.Context(), r.Method, m.URL+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header = r.Header.Clone()
	p.c.setPeerAuth(req.Header)
	obs.InjectTrace(r.Context(), req.Header)
	resp, err := p.c.proxyClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	p.c.proxied.Add(1)
	copyResponse(w, resp)
	obs.Span(r.Context(), "proxy", start,
		slog.String("target", m.ID),
		slog.String("path", r.URL.Path),
		slog.Int("status", resp.StatusCode),
	)
	return nil
}

// copyResponse relays a peer response: headers, status, then the body
// with per-chunk flushing so NDJSON result streams flow through the
// proxy incrementally. Header keys the coordinator already wrote (the
// trace echo from its own middleware) win over the peer's copies —
// relaying those too would duplicate them on the wire — while headers
// only the peer set (its ServedByHeader stamp) pass through untouched.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	for k, vs := range resp.Header {
		if len(w.Header().Values(k)) > 0 {
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(&flushWriter{w: w}, resp.Body) // client hangups are the client's problem
}

// flushWriter flushes after every chunk so proxied streams stay streams.
type flushWriter struct{ w http.ResponseWriter }

func (f *flushWriter) Write(b []byte) (int, error) {
	n, err := f.w.Write(b)
	if flusher, ok := f.w.(http.Flusher); ok {
		flusher.Flush()
	}
	return n, err
}

// routeByKey serves a buffered request on the live owner of key: locally
// when this shard owns it, else by forwarding — retrying onto the next
// live owner when a forward dies in transit (the failure marks the peer
// down, so the ring re-resolves).
func (p *proxy) routeByKey(w http.ResponseWriter, r *http.Request, body []byte, key string) {
	for attempt := 0; attempt <= len(p.c.members); attempt++ {
		owner, ok := p.c.ring.OwnerAmong(key, p.c.alive)
		if !ok {
			p.c.proxyErrors.Add(1)
			writeJSONError(w, http.StatusBadGateway, fmt.Errorf("no live shard owns key %s", key))
			return
		}
		if owner.ID == p.c.self.ID {
			p.serveLocal(w, r, body)
			return
		}
		if err := p.forward(w, r, body, owner); err == nil {
			return
		}
		p.c.markDown(owner.ID)
		p.c.reroutes.Add(1)
	}
	p.c.proxyErrors.Add(1)
	writeJSONError(w, http.StatusBadGateway, fmt.Errorf("every candidate shard for key %s is unreachable", key))
}

// routeBody is the routing envelope of a compute/job body: enough to
// find the owning shard without touching the rest of the request.
type routeBody struct {
	Kind  string            `json:"kind"`
	Hash  string            `json:"hash"`
	Graph *graphio.Document `json:"graph"`
}

// routingKey extracts the graph hash a body routes by: the explicit
// hash, or the content hash of the inline graph.
func routingKey(body []byte) (string, error) {
	var rb routeBody
	if err := json.Unmarshal(body, &rb); err != nil {
		return "", fmt.Errorf("decode request: %w", err)
	}
	if rb.Hash != "" {
		return rb.Hash, nil
	}
	if rb.Graph == nil {
		return "", fmt.Errorf("request carries no graph and no hash")
	}
	g, err := graphio.FromDocument(rb.Graph)
	if err != nil {
		return "", err
	}
	return graphio.Hash(g), nil
}

// compute routes POST /v1/decompose and /v1/carve by graph hash.
func (p *proxy) compute(w http.ResponseWriter, r *http.Request) {
	if p.handleInternal(w, r) {
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	key, err := routingKey(body)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	p.routeByKey(w, r, body, key)
}

// putGraph routes POST /v1/graphs: the body is parsed once to learn the
// content hash (the routing key), then relayed verbatim to the owner.
func (p *proxy) putGraph(w http.ResponseWriter, r *http.Request) {
	if p.handleInternal(w, r) {
		return
	}
	format := graphio.FormatJSON
	if name := r.URL.Query().Get("format"); name != "" {
		var err error
		if format, err = graphio.ParseFormat(name); err != nil {
			writeJSONError(w, http.StatusBadRequest, err)
			return
		}
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	g, err := graphio.Read(bytes.NewReader(body), format)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	p.routeByKey(w, r, body, graphio.Hash(g))
}

// byHashPath routes GET /v1/graphs/{hash} by its path hash.
func (p *proxy) byHashPath(w http.ResponseWriter, r *http.Request) {
	if p.handleInternal(w, r) {
		return
	}
	// Serve locally when this shard holds the graph (replica or cached
	// copy) even if the ring points elsewhere — cheaper than a hop.
	hash := r.PathValue("hash")
	if _, ok := p.svc.GetGraph(hash); ok {
		p.c.servedLocal.Add(1)
		p.local.ServeHTTP(w, r)
		return
	}
	p.routeByKey(w, r, nil, hash)
}

// teeWriter captures a bounded copy of the response while relaying it —
// how the proxy learns job IDs from submissions it routes.
type teeWriter struct {
	http.ResponseWriter
	status int
	buf    bytes.Buffer
}

// teeCapBytes bounds the captured copy; job submissions answer with a
// small JSON document.
const teeCapBytes = 1 << 16

// WriteHeader records the status before relaying it.
func (t *teeWriter) WriteHeader(code int) {
	t.status = code
	t.ResponseWriter.WriteHeader(code)
}

// Write mirrors the body into the bounded buffer while relaying it.
func (t *teeWriter) Write(b []byte) (int, error) {
	if t.status == 0 {
		t.status = http.StatusOK
	}
	if t.buf.Len() < teeCapBytes {
		t.buf.Write(b[:min(len(b), teeCapBytes-t.buf.Len())])
	}
	return t.ResponseWriter.Write(b)
}

// Flush forwards flushes so streaming through a tee still streams.
func (t *teeWriter) Flush() {
	if flusher, ok := t.ResponseWriter.(http.Flusher); ok {
		flusher.Flush()
	}
}

// submitJob routes POST /v2/jobs like a compute request, then records
// which shard accepted the job so polls route directly.
func (p *proxy) submitJob(w http.ResponseWriter, r *http.Request) {
	if p.handleInternal(w, r) {
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	key, err := routingKey(body)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	owner, ok := p.c.ring.OwnerAmong(key, p.c.alive)
	tee := &teeWriter{ResponseWriter: w}
	p.routeByKey(tee, r, body, key)
	if tee.status == http.StatusAccepted && ok {
		var job struct {
			ID string `json:"id"`
		}
		if json.Unmarshal(tee.buf.Bytes(), &job) == nil {
			// The routing loop may have rerouted past a dead owner; the
			// live owner at route time is what the loop resolved first,
			// so re-resolve for the record.
			if m, ok := p.c.ring.OwnerAmong(key, p.c.alive); ok {
				owner = m
			}
			p.c.recordJobOwner(job.ID, owner.ID)
		}
	}
}

// jobByID routes GET/DELETE /v2/jobs/{id} and the result endpoint. Job
// IDs are random (not ring-placed), so routing uses the owner table
// learned at submission and falls back to asking every live peer.
func (p *proxy) jobByID(w http.ResponseWriter, r *http.Request) {
	if p.handleInternal(w, r) {
		return
	}
	id := r.PathValue("id")
	if _, err := p.svc.Job(id); err == nil {
		p.c.servedLocal.Add(1)
		p.local.ServeHTTP(w, r)
		return
	}
	if owner, ok := p.c.jobOwner(id); ok && owner.ID != p.c.self.ID && p.c.alive(owner.ID) {
		if err := p.forward(w, r, nil, owner); err == nil {
			return
		}
		p.c.markDown(owner.ID)
	}
	// Fan out: first peer that recognizes the ID answers.
	p.c.fanoutJobLookups.Add(1)
	for _, m := range p.c.liveMembers() {
		if m.ID == p.c.self.ID {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, m.URL+r.URL.RequestURI(), nil)
		if err != nil {
			continue
		}
		p.c.setPeerAuth(req.Header)
		obs.InjectTrace(r.Context(), req.Header)
		resp, err := p.c.proxyClient.Do(req)
		if err != nil {
			p.c.markDown(m.ID)
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		p.c.proxied.Add(1)
		p.c.recordJobOwner(id, m.ID)
		copyResponse(w, resp)
		resp.Body.Close()
		return
	}
	// Nobody knows the job: the local handler renders the canonical 404.
	p.local.ServeHTTP(w, r)
}

// batchWire mirrors the API layer's batch request/response shapes
// without committing to its field set: items stay raw bytes, routed by
// their envelope and reassembled in order.
type batchWire struct {
	Requests []json.RawMessage `json:"requests"`
}

// batchResultsWire decodes a sub-batch response.
type batchResultsWire struct {
	Results []json.RawMessage `json:"results"`
}

// batch fans POST /v1/decompose/batch out across the cluster: items
// group by owning shard, sub-batches execute in parallel on their
// owners, and the merged response preserves input order. A dead shard
// fails only its own items.
func (p *proxy) batch(w http.ResponseWriter, r *http.Request) {
	if p.handleInternal(w, r) {
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var wire batchWire
	if err := json.Unmarshal(body, &wire); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	// Enforce the API layer's cap before fan-out: split sub-batches could
	// otherwise admit an oversized batch that a single node would reject.
	if len(wire.Requests) > httpapi.MaxBatchRequests {
		writeJSONError(w, http.StatusBadRequest, fmt.Errorf("batch carries %d requests, limit %d", len(wire.Requests), httpapi.MaxBatchRequests))
		return
	}

	// Group item indices by owning member.
	groups := make(map[string][]int)
	memberByID := make(map[string]Member)
	results := make([]json.RawMessage, len(wire.Requests))
	for i, raw := range wire.Requests {
		key, err := routingKey(raw)
		if err != nil {
			results[i] = errorItem(err)
			continue
		}
		owner, ok := p.c.ring.OwnerAmong(key, p.c.alive)
		if !ok {
			results[i] = errorItem(fmt.Errorf("no live shard owns key %s", key))
			continue
		}
		groups[owner.ID] = append(groups[owner.ID], i)
		memberByID[owner.ID] = owner
	}

	var wg sync.WaitGroup
	var mu sync.Mutex // guards results slots written by sub-batches
	for id, indices := range groups {
		wg.Add(1)
		go func(m Member, indices []int) {
			defer wg.Done()
			sub := p.runSubBatch(r, m, wire.Requests, indices)
			mu.Lock()
			for j, idx := range indices {
				if j < len(sub) {
					results[idx] = sub[j]
				} else {
					results[idx] = errorItem(fmt.Errorf("shard %s answered %d of %d batch items", m.ID, len(sub), len(indices)))
				}
			}
			mu.Unlock()
		}(memberByID[id], indices)
	}
	wg.Wait()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(batchResultsWire{Results: results})
}

// runSubBatch executes the indexed subset of items on member m (locally
// for self) and returns the per-item results in subset order.
func (p *proxy) runSubBatch(r *http.Request, m Member, items []json.RawMessage, indices []int) []json.RawMessage {
	sub := batchWire{Requests: make([]json.RawMessage, 0, len(indices))}
	for _, idx := range indices {
		sub.Requests = append(sub.Requests, items[idx])
	}
	body, err := json.Marshal(sub)
	if err != nil {
		return nil
	}

	var data []byte
	if m.ID == p.c.self.ID {
		rec := newBufferedResponse()
		r2 := r.Clone(r.Context())
		r2.Body = io.NopCloser(bytes.NewReader(body))
		r2.ContentLength = int64(len(body))
		p.c.servedLocal.Add(1)
		p.local.ServeHTTP(rec, r2)
		if rec.status != http.StatusOK {
			return p.errorItems(indices, fmt.Errorf("local sub-batch failed with status %d", rec.status))
		}
		data = rec.buf.Bytes()
	} else {
		p.c.fanoutBatches.Add(1)
		req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, m.URL+"/v1/decompose/batch", bytes.NewReader(body))
		if err != nil {
			return p.errorItems(indices, err)
		}
		req.Header.Set("Content-Type", "application/json")
		p.c.setPeerAuth(req.Header)
		obs.InjectTrace(r.Context(), req.Header)
		resp, err := p.c.proxyClient.Do(req)
		if err != nil {
			p.c.markDown(m.ID)
			return p.errorItems(indices, fmt.Errorf("shard %s unreachable: %w", m.ID, err))
		}
		data, err = io.ReadAll(io.LimitReader(resp.Body, maxPeerBodyBytes))
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			return p.errorItems(indices, fmt.Errorf("shard %s sub-batch failed (status %d)", m.ID, resp.StatusCode))
		}
	}
	var out batchResultsWire
	if err := json.Unmarshal(data, &out); err != nil {
		return p.errorItems(indices, fmt.Errorf("undecodable sub-batch response: %w", err))
	}
	return out.Results
}

// errorItems renders one error into a result slot per index.
func (p *proxy) errorItems(indices []int, err error) []json.RawMessage {
	out := make([]json.RawMessage, len(indices))
	for i := range out {
		out[i] = errorItem(err)
	}
	return out
}

// errorItem renders a batch error slot in the API layer's item shape.
func errorItem(err error) json.RawMessage {
	data, _ := json.Marshal(map[string]string{"error": err.Error()})
	return data
}

// newBufferedResponse returns a response recorder for programmatic local
// sub-requests.
func newBufferedResponse() *bufferedResponse {
	return &bufferedResponse{header: make(http.Header)}
}

// bufferedResponse is a minimal in-memory http.ResponseWriter.
type bufferedResponse struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

// Header implements http.ResponseWriter.
func (b *bufferedResponse) Header() http.Header { return b.header }

// WriteHeader implements http.ResponseWriter.
func (b *bufferedResponse) WriteHeader(code int) { b.status = code }

// Write implements http.ResponseWriter.
func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.status == 0 {
		b.status = http.StatusOK
	}
	return b.buf.Write(p)
}

// writeJSONError renders a routing-layer error in the API's error shape.
func writeJSONError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
