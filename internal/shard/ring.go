// Package shard is the horizontal-scaling tier of the decomposition
// service: a consistent-hash ring assigns every graph (by its
// content-addressed graphio.Hash) to an owning shard, a coordinator
// proxy accepts the unchanged v1/v2 HTTP API on any node and routes each
// request to the owner, batches fan out across shards with merged
// results, and a peer cache protocol makes a decomposition cached on any
// node a network hop instead of a recompute (local LRU → local disk →
// owning peer → compute). Fresh computations and stored graphs replicate
// to the owner's ring successor, so killing one shard leaves its cached
// results servable by the survivor the ring reassigns them to.
//
// The partitioning mirrors the modularity the Chang–Ghaffari
// decomposition framework (arXiv:2102.09820) exploits algorithmically:
// work splits into independently-processed units — there clusters of a
// low-diameter decomposition, here content-addressed graphs — with no
// cross-unit coordination on the hot path. The distributed-construction
// view of such cluster topologies goes back to Elkin–Neiman
// (arXiv:1602.05437); see DESIGN.md "Cluster topology".
//
// The package sits strictly above internal/service (which stays
// cluster-agnostic behind service.ClusterHooks) and below cmd/serve,
// which enables it with -cluster-peers/-shard-id. Without those flags
// nothing here runs and the process is bit-identical to a single-node
// build.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// Member is one shard of the cluster: a stable ID (its ring identity)
// and the base URL peers reach it at.
type Member struct {
	// ID is the shard's stable name; ring placement depends only on it.
	ID string `json:"id"`
	// URL is the shard's base HTTP URL, e.g. "http://10.0.0.3:8080".
	URL string `json:"url"`
}

// DefaultVNodes is the per-member virtual-node count when Config leaves
// it zero. 64 points per member keeps the max/min load ratio across a
// handful of shards within a few percent while the whole ring stays a
// sub-kilobyte sorted slice.
const DefaultVNodes = 64

// ringPoint is one virtual node: a position on the 64-bit ring owned by
// a member.
type ringPoint struct {
	hash     uint64
	memberID string
}

// Ring is an immutable consistent-hash ring over the cluster members.
// Immutability is the concurrency story: lookups are lock-free reads,
// and liveness is layered on top via the alive predicate of OwnerAmong /
// Successors rather than by mutating the ring — so every shard computes
// identical placements from identical membership, dead or alive.
type Ring struct {
	vnodes  int
	points  []ringPoint // sorted by hash
	members map[string]Member
}

// NewRing builds a ring with vnodes virtual nodes per member (0 means
// DefaultVNodes). Member IDs must be unique and non-empty.
func NewRing(members []Member, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("shard: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		vnodes:  vnodes,
		points:  make([]ringPoint, 0, len(members)*vnodes),
		members: make(map[string]Member, len(members)),
	}
	for _, m := range members {
		if m.ID == "" {
			return nil, fmt.Errorf("shard: member with empty ID (url %q)", m.URL)
		}
		if _, dup := r.members[m.ID]; dup {
			return nil, fmt.Errorf("shard: duplicate member ID %q", m.ID)
		}
		r.members[m.ID] = m
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash:     ringHash(fmt.Sprintf("%s#%d", m.ID, i)),
				memberID: m.ID,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.memberID < b.memberID // total order even on (vanishing) hash ties
	})
	return r, nil
}

// ringHash maps a string onto the 64-bit ring: the first 8 bytes of its
// SHA-256, big-endian. SHA-256 (already the project's content-hash
// primitive) gives placement quality no sequence of member names can
// degrade.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Members returns the ring membership sorted by ID.
func (r *Ring) Members() []Member {
	out := make([]Member, 0, len(r.members))
	for _, m := range r.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Member resolves a member by ID.
func (r *Ring) Member(id string) (Member, bool) {
	m, ok := r.members[id]
	return m, ok
}

// VNodes reports the per-member virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner returns the member owning key: the first virtual node clockwise
// from the key's ring position.
func (r *Ring) Owner(key string) Member {
	m, _ := r.OwnerAmong(key, nil)
	return m
}

// OwnerAmong returns the first member clockwise from key for which alive
// returns true (nil means every member qualifies). ok is false only when
// no member qualifies at all — the cluster-down case.
func (r *Ring) OwnerAmong(key string, alive func(id string) bool) (Member, bool) {
	members := r.successors(key, 1, alive)
	if len(members) == 0 {
		return Member{}, false
	}
	return members[0], true
}

// Successors returns up to k distinct members clockwise from key,
// filtered by alive (nil admits all). The first entry is the owner, the
// rest are the replica targets in placement order — the members that
// inherit the key if the ones before them die.
func (r *Ring) Successors(key string, k int, alive func(id string) bool) []Member {
	return r.successors(key, k, alive)
}

func (r *Ring) successors(key string, k int, alive func(id string) bool) []Member {
	if k <= 0 || len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	var out []Member
	seen := make(map[string]bool, k)
	for i := 0; i < len(r.points) && len(out) < k; i++ {
		pt := r.points[(start+i)%len(r.points)]
		if seen[pt.memberID] {
			continue
		}
		seen[pt.memberID] = true
		if alive != nil && !alive(pt.memberID) {
			continue
		}
		out = append(out, r.members[pt.memberID])
	}
	return out
}
