package shard

// End-to-end tracing test: a 2-shard in-process cluster where every shard
// runs the full observability stack (collector middleware outside the
// proxy, WithObs + WithServedBy on the local API handler, slog JSON span
// records into a per-shard buffer) exactly as cmd/serve wires it. One
// request through a non-owner coordinator must produce span records on
// BOTH shards sharing one trace ID, with the hop counter incremented
// across the forward and the response naming the shard that served it.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"strongdecomp/internal/graph"
	"strongdecomp/internal/graphio"
	"strongdecomp/internal/obs"
	"strongdecomp/internal/service"
	"strongdecomp/internal/service/httpapi"
)

// spanSink is a thread-safe slog destination that parses span records
// back out for assertions.
type spanSink struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (s *spanSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.Write(p)
}

// spanRecord is the subset of a span line the test asserts on.
type spanRecord struct {
	Msg     string `json:"msg"`
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	Hop     int    `json:"hop"`
	Stage   string `json:"stage"`
}

// spans decodes every "span" record the sink holds.
func (s *spanSink) spans(t *testing.T) []spanRecord {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []spanRecord
	for _, line := range bytes.Split(s.buf.Bytes(), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec spanRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("undecodable log line %q: %v", line, err)
		}
		if rec.Msg == "span" {
			out = append(out, rec)
		}
	}
	return out
}

// stages collects the distinct stage names of a record set.
func stages(recs []spanRecord) map[string]bool {
	out := make(map[string]bool)
	for _, r := range recs {
		out[r.Stage] = true
	}
	return out
}

func TestClusterTraceSpansAcrossShards(t *testing.T) {
	algo, _ := registerShardStub(t)

	const n = 2
	shards := make([]*testShard, n)
	sinks := make([]*spanSink, n)
	members := make([]Member, n)
	for i := range shards {
		sw := &swapHandler{}
		srv := httptest.NewServer(sw)
		t.Cleanup(srv.Close)
		members[i] = Member{ID: fmt.Sprintf("s%d", i), URL: srv.URL}
		shards[i] = &testShard{member: members[i], srv: srv, swap: sw}
		sinks[i] = &spanSink{}
	}
	for i := range shards {
		sh := shards[i]
		svc, err := service.New(service.Config{DefaultAlgorithm: algo})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(svc.Close)
		c, err := NewCluster(Config{SelfID: sh.member.ID, Members: members, ProbeInterval: -1, Replicas: 0})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		sh.svc, sh.cluster = svc, c
		col := obs.NewCollector(slog.New(slog.NewJSONHandler(sinks[i], nil)))
		local := httpapi.New(svc,
			httpapi.WithReadiness(c.Ready),
			httpapi.WithClusterStats(c.Stats),
			httpapi.WithObs(col),
			httpapi.WithServedBy(sh.member.ID),
		)
		sh.swap.set(col.Middleware(c.Handler(svc, local)))
	}

	// Upload a graph, find its owner, and pick the OTHER shard as the
	// coordinator so the request must hop.
	g := graph.Path(16)
	var buf bytes.Buffer
	if err := graphio.Write(&buf, g, graphio.FormatJSON); err != nil {
		t.Fatal(err)
	}
	hash := graphio.Hash(g)
	owner, ok := shards[0].cluster.ring.OwnerAmong(hash, shards[0].cluster.alive)
	if !ok {
		t.Fatal("no owner")
	}
	ownerIdx := shardIndex(t, shards, owner.ID)
	coordIdx := (ownerIdx + 1) % n

	resp, err := http.Post(shards[coordIdx].srv.URL+"/v1/graphs?format=json", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status %d", resp.StatusCode)
	}

	status, body := postJSON(t, shards[coordIdx].srv.URL+"/v1/decompose", map[string]any{"hash": hash})
	if status != http.StatusOK {
		t.Fatalf("decompose status %d: %s", status, body)
	}

	coordSpans := sinks[coordIdx].spans(t)
	ownerSpans := sinks[ownerIdx].spans(t)
	if len(coordSpans) == 0 || len(ownerSpans) == 0 {
		t.Fatalf("want spans on both shards, got %d coordinator / %d owner", len(coordSpans), len(ownerSpans))
	}

	// Every span on either shard belongs to one of the two requests this
	// test made; the decompose trace is the one that shows up on both
	// sides. Collect trace IDs present on both shards.
	ownerTraces := make(map[string]bool)
	for _, r := range ownerSpans {
		ownerTraces[r.TraceID] = true
	}
	var shared string
	for _, r := range coordSpans {
		if ownerTraces[r.TraceID] {
			shared = r.TraceID
			break
		}
	}
	if shared == "" {
		t.Fatalf("no trace ID shared across shards:\ncoordinator %+v\nowner %+v", coordSpans, ownerSpans)
	}

	var coordShared, ownerShared []spanRecord
	for _, r := range coordSpans {
		if r.TraceID == shared {
			coordShared = append(coordShared, r)
		}
	}
	for _, r := range ownerSpans {
		if r.TraceID == shared {
			ownerShared = append(ownerShared, r)
		}
	}
	if s := stages(coordShared); !s["proxy"] || !s["route"] {
		t.Errorf("coordinator spans missing proxy/route: %+v", coordShared)
	}
	if s := stages(ownerShared); !s["route"] {
		t.Errorf("owner spans missing route: %+v", ownerShared)
	}
	for _, r := range coordShared {
		if r.Hop != 0 {
			t.Errorf("coordinator span %+v: want hop 0", r)
		}
	}
	for _, r := range ownerShared {
		if r.Hop != 1 {
			t.Errorf("owner span %+v: want hop 1", r)
		}
	}

	// The response must name the shard that served it and echo the
	// coordinator's root trace, not the peer's child trace.
	req, err := http.NewRequest(http.MethodPost, shards[coordIdx].srv.URL+"/v1/decompose",
		bytes.NewReader([]byte(fmt.Sprintf(`{"hash":%q}`, hash))))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceHeader, "clienttrace:clientspan:0")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get(httpapi.ServedByHeader); got != owner.ID {
		t.Errorf("%s = %q, want owner %q", httpapi.ServedByHeader, got, owner.ID)
	}
	if got := resp2.Header.Values(obs.TraceHeader); len(got) != 1 || got[0] != "clienttrace:clientspan:0" {
		t.Errorf("%s = %v, want the single root echo", obs.TraceHeader, got)
	}
}
