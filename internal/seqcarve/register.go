package seqcarve

// Self-registration of the sequential one-ball-at-a-time baseline with the
// algorithm registry. The carving side runs at the fixed eps = 1/2 growth
// argument and ignores the requested boundary parameter, so the
// construction carries no calibrated Table 2 bounds (PaperCarveDiam is
// empty, which excludes it from the eps-carving table).

import (
	"context"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/registry"
)

func init() {
	registry.MustRegister("sequential", func() registry.Decomposer {
		return registry.Funcs{
			Meta: registry.Info{
				Name:              "sequential",
				Display:           "sequential-baseline",
				Reference:         "[LS93 seq.]",
				Model:             "deterministic",
				Diameter:          "strong",
				PaperColors:       "O(log n)",
				PaperDecompDiam:   "O(log n)",
				PaperDecompRounds: "O(k·D) (k clusters)",
				Order:             40,
			},
			CarveFunc: func(ctx context.Context, g *graph.Graph, _ float64, o registry.RunOptions) (*cluster.Carving, error) {
				return CarveContext(ctx, g, o.Nodes, o.Meter)
			},
			DecomposeFunc: func(ctx context.Context, g *graph.Graph, o registry.RunOptions) (*cluster.Decomposition, error) {
				return DecomposeContext(ctx, g, o.Meter)
			},
		}
	})
}
