package seqcarve

import (
	"testing"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/core"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/rounds"
)

func TestCarveInvariants(t *testing.T) {
	tests := map[string]*graph.Graph{
		"path":     graph.Path(200),
		"grid":     graph.Grid(12, 12),
		"gnp":      graph.ConnectedGnp(150, 0.03, 3),
		"tree":     graph.BinaryTree(127),
		"complete": graph.Complete(40),
		"union":    graph.DisjointUnion(graph.Path(40), graph.Star(20)),
	}
	for name, g := range tests {
		t.Run(name, func(t *testing.T) {
			c := Carve(g, nil, nil)
			if err := cluster.CheckCarving(g, nil, c, 0.5, 2*log2ceil(g.N())); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCarveRoundsScaleWithClusterCount(t *testing.T) {
	// The sequential baseline pays per cluster; a long path (many balls)
	// must charge far more coordination rounds than a complete graph (one
	// ball).
	mPath, mComplete := rounds.NewMeter(), rounds.NewMeter()
	Carve(graph.Path(400), nil, mPath)
	Carve(graph.Complete(400), nil, mComplete)
	if mPath.Rounds() <= mComplete.Rounds() {
		t.Fatalf("sequential baseline should be slow on many clusters: path=%d complete=%d",
			mPath.Rounds(), mComplete.Rounds())
	}
}

func TestDecomposeValid(t *testing.T) {
	g := graph.ConnectedGnp(140, 0.04, 7)
	d := Decompose(g, nil)
	if err := cluster.CheckDecomposition(g, d, 2*log2ceil(g.N()), true); err != nil {
		t.Fatal(err)
	}
	if d.Colors > log2ceil(g.N())+2 {
		t.Fatalf("%d colors", d.Colors)
	}
}

func TestCarveSubsetOnly(t *testing.T) {
	g := graph.Path(30)
	c := Carve(g, []int{0, 1, 2, 3, 4}, nil)
	for v := 5; v < 30; v++ {
		if c.Assign[v] != cluster.Unclustered {
			t.Fatalf("node %d outside subset assigned", v)
		}
	}
}

func TestABCPTransformProducesValidCarving(t *testing.T) {
	g := graph.Grid(8, 8)
	m := rounds.NewMeter()
	c, stats, err := ABCPTransform(g, func(p *graph.Graph, pm *rounds.Meter) (*cluster.Decomposition, error) {
		return core.DecomposeRG(p, pm)
	}, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.CheckCarving(g, nil, c, 0.5, 2*log2ceil(g.N())); err != nil {
		t.Fatal(err)
	}
	if stats.MaxMessageBits == 0 {
		t.Fatal("no gathered topology measured")
	}
	// The point of experiment E5: gathered-topology messages dwarf the
	// CONGEST budget of O(log n) bits.
	if stats.MaxMessageBits <= int64(4*log2ceil(g.N())) {
		t.Fatalf("ABCP message size %d bits unexpectedly small", stats.MaxMessageBits)
	}
	if m.Component("abcp/power") == 0 || m.Component("abcp/gather") == 0 {
		t.Fatalf("missing round components: %s", m)
	}
}

func TestABCPTransformEmptyGraph(t *testing.T) {
	g, err := graph.NewBuilder(0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ABCPTransform(g, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLog2CeilLocal(t *testing.T) {
	if log2ceil(1) != 1 || log2ceil(16) != 4 || log2ceil(17) != 5 {
		t.Fatal("log2ceil broken")
	}
}
