// Package seqcarve implements the classic sequential ball-growing carving of
// [LS93]/[ABCP96] in two roles:
//
//   - Carve: the global sequential baseline. Repeatedly grow a ball around
//     the minimum-id live node until a radius r with |B(r+1)| <= 2|B(r)|
//     (r <= log₂ n), emit B(r), and kill the shell. As a distributed
//     algorithm this is the "one cluster at a time" strawman whose round
//     complexity scales with the number of clusters — the benchmark
//     harness uses it to show why the paper's parallel transformation wins.
//   - ABCPTransform: the transformation of Awerbuch, Berger, Cowen, and
//     Peleg [ABCP96] that the paper's Section 1.4 recaps: run a weak
//     decomposition on the power graph G^(2d), gather the topology of each
//     cluster's d-neighborhood into its center, carve centrally, and
//     broadcast. It needs messages as large as the gathered topology; the
//     implementation measures that size, reproducing the paper's motivation
//     for a small-message transformation (experiment E5).
package seqcarve

import (
	"context"
	"fmt"
	"math/bits"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/registry"
	"strongdecomp/internal/rounds"
)

// Carve computes a strong-diameter ball carving of the subgraph induced by
// nodes (nil = all of g) removing at most half of them — the sequential
// eps = 1/2 growth argument. Cluster diameters are at most 2·log₂ n.
//
// Rounds are charged per emitted ball: a BFS of depth r* + 2 plus the O(D)
// coordination to locate the next live minimum-id center, which is what
// makes this baseline slow when there are many clusters.
func Carve(g *graph.Graph, nodes []int, m *rounds.Meter) *cluster.Carving {
	c, _ := CarveContext(context.Background(), g, nodes, m)
	return c
}

// CarveContext is Carve with cancellation observed before every emitted
// ball; a background context never fails.
func CarveContext(ctx context.Context, g *graph.Graph, nodes []int, m *rounds.Meter) (*cluster.Carving, error) {
	n := g.N()
	if nodes == nil {
		nodes = make([]int, n)
		for i := range nodes {
			nodes[i] = i
		}
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = cluster.Unclustered
	}
	alive := make([]bool, n)
	for _, v := range nodes {
		alive[v] = true
	}
	dist := make([]int, n)
	var centers []int
	k := 0
	diamApprox := int64(approxDiameter(g, nodes, dist))
	for _, v := range nodes {
		if !alive[v] {
			continue
		}
		if err := registry.CtxErr(ctx); err != nil {
			return nil, err
		}
		// v is the minimum-id live node (nodes scanned in increasing order).
		sizes := graph.NeighborhoodSizes(g, alive, []int{v}, dist)
		rStar := len(sizes) - 1
		for r := 0; r < len(sizes)-1; r++ {
			if 2*sizes[r] >= sizes[r+1] {
				rStar = r
				break
			}
		}
		for w, d := range dist {
			switch {
			case d >= 0 && d <= rStar:
				assign[w] = k
				alive[w] = false
			case d == rStar+1:
				alive[w] = false // shell dies
			}
		}
		centers = append(centers, v)
		k++
		m.Charge("seq/ball", int64(rStar)+2)
		m.Charge("seq/coordinate", diamApprox+1)
	}
	return &cluster.Carving{Assign: assign, K: k, Centers: centers}, nil
}

// Decompose iterates Carve with color-per-iteration, yielding the
// sequential-baseline strong-diameter decomposition with <= log₂ n + 1
// colors and diameter <= 2 log₂ n.
func Decompose(g *graph.Graph, m *rounds.Meter) *cluster.Decomposition {
	d, _ := DecomposeContext(context.Background(), g, m)
	return d
}

// DecomposeContext is Decompose with cancellation observed inside every
// carving iteration; a background context never fails.
func DecomposeContext(ctx context.Context, g *graph.Graph, m *rounds.Meter) (*cluster.Decomposition, error) {
	n := g.N()
	assign := make([]int, n)
	for i := range assign {
		assign[i] = cluster.Unclustered
	}
	var (
		color   []int
		centers []int
		k       int
	)
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	for iter := 0; len(remaining) > 0; iter++ {
		c, err := CarveContext(ctx, g, remaining, m)
		if err != nil {
			return nil, err
		}
		for i, members := range c.Members() {
			for _, v := range members {
				assign[v] = k
			}
			color = append(color, iter)
			centers = append(centers, c.Centers[i])
			k++
		}
		var rest []int
		for _, v := range remaining {
			if assign[v] == cluster.Unclustered {
				rest = append(rest, v)
			}
		}
		remaining = rest
	}
	colors := 0
	for _, col := range color {
		if col+1 > colors {
			colors = col + 1
		}
	}
	return &cluster.Decomposition{Assign: assign, Color: color, K: k, Colors: colors, Centers: centers}, nil
}

// ABCPStats reports the message-size behavior of the ABCP96 transformation.
type ABCPStats struct {
	// MaxMessageBits is the largest single message the transformation ships:
	// the serialized topology of a cluster's d-neighborhood. In CONGEST
	// terms this must fit in O(log n) bits; the experiment shows it does not.
	MaxMessageBits int64
	// GatherEdges is the total number of edges gathered to cluster centers.
	GatherEdges int64
	// PowerGraphRounds charges the cost of simulating the weak decomposition
	// on G^(2d) (each power-graph round costs 2d real rounds).
	PowerGraphRounds int64
}

// ABCPTransform runs the [ABCP96] weak-to-strong transformation on g: a weak
// decomposition is computed on the power graph G^(2d) with d = log₂ n (the
// weak decomposition is produced by the supplied decomposer on the power
// graph), then per color every cluster gathers the topology of its
// d-neighborhood and carves strong-diameter balls centrally.
//
// It returns the resulting strong-diameter carving (the first carving layer,
// i.e. the eps = 1/2 ball carving used by the classic construction) together
// with the measured message statistics.
func ABCPTransform(
	g *graph.Graph,
	weakDecompose func(power *graph.Graph, m *rounds.Meter) (*cluster.Decomposition, error),
	m *rounds.Meter,
) (*cluster.Carving, *ABCPStats, error) {
	n := g.N()
	stats := &ABCPStats{}
	if n == 0 {
		return &cluster.Carving{Assign: nil}, stats, nil
	}
	d := log2ceil(n)
	power := graph.PowerGraph(g, 2*d)
	pm := rounds.NewMeter()
	weak, err := weakDecompose(power, pm)
	if err != nil {
		return nil, nil, fmt.Errorf("seqcarve: weak decomposition: %w", err)
	}
	// Every power-graph round is simulated by 2d rounds in G.
	stats.PowerGraphRounds = pm.Rounds() * int64(2*d)
	m.Charge("abcp/power", stats.PowerGraphRounds)

	assign := make([]int, n)
	for i := range assign {
		assign[i] = cluster.Unclustered
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	dist := make([]int, n)
	var centers []int
	k := 0
	idBits := int64(log2ceil(n) + 1)

	for color := 0; color < weak.Colors; color++ {
		for cl, members := range weak.Members() {
			if weak.Color[cl] != color || len(members) == 0 {
				continue
			}
			// Gather the topology of the cluster plus its d-hop
			// neighborhood to the center: the message size is the
			// serialized subgraph (2 ids per edge).
			region := neighborhood(g, members, d, dist)
			edges := int64(0)
			inRegion := make(map[int]bool, len(region))
			for _, v := range region {
				inRegion[v] = true
			}
			for _, v := range region {
				for _, w := range g.Neighbors(v) {
					if v < w && inRegion[w] {
						edges++
					}
				}
			}
			stats.GatherEdges += edges
			if msg := 2 * idBits * edges; msg > stats.MaxMessageBits {
				stats.MaxMessageBits = msg
			}
			m.Charge("abcp/gather", int64(d)+1)

			// Central sequential carving within the gathered region,
			// restricted to live cluster members.
			var live []int
			for _, v := range members {
				if alive[v] {
					live = append(live, v)
				}
			}
			for len(live) > 0 {
				src := live[0]
				sizes := graph.NeighborhoodSizes(g, alive, []int{src}, dist)
				rStar := len(sizes) - 1
				for r := 0; r < len(sizes)-1; r++ {
					if 2*sizes[r] >= sizes[r+1] {
						rStar = r
						break
					}
				}
				for w, dd := range dist {
					switch {
					case dd >= 0 && dd <= rStar:
						assign[w] = k
						alive[w] = false
					case dd == rStar+1:
						alive[w] = false
					}
				}
				centers = append(centers, src)
				k++
				var next []int
				for _, v := range live {
					if alive[v] {
						next = append(next, v)
					}
				}
				live = next
			}
			m.Charge("abcp/broadcast", int64(d)+1)
		}
	}
	return &cluster.Carving{Assign: assign, K: k, Centers: centers}, stats, nil
}

// neighborhood returns all nodes within hop distance d of the member set.
func neighborhood(g *graph.Graph, members []int, d int, dist []int) []int {
	order := graph.BFS(g, nil, members, dist)
	var out []int
	for _, v := range order {
		if dist[v] <= d {
			out = append(out, v)
		}
	}
	return out
}

func approxDiameter(g *graph.Graph, nodes []int, dist []int) int {
	if len(nodes) == 0 {
		return 0
	}
	alive := make([]bool, g.N())
	for _, v := range nodes {
		alive[v] = true
	}
	best := 0
	order := graph.BFS(g, alive, []int{nodes[0]}, dist)
	if len(order) > 0 {
		far := order[len(order)-1]
		order = graph.BFS(g, alive, []int{far}, dist)
		if len(order) > 0 {
			best = dist[order[len(order)-1]]
		}
	}
	return best
}

func log2ceil(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}
