package service

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/graphio"
	"strongdecomp/internal/registry"
)

// registerPersistStub registers a deterministic construction whose output
// is structurally valid under the persistence record validation: a 2-color
// decomposition whose assignment depends on the seed, and a carving with
// one dead node per three plus per-cluster Steiner trees (so the tree
// codec is exercised too). Returns (name, compute counter).
func registerPersistStub(t *testing.T) (string, *atomic.Int64) {
	t.Helper()
	name := fmt.Sprintf("persist-stub-%s", t.Name())
	count := &atomic.Int64{}
	err := registry.Register(name, func() registry.Decomposer {
		return registry.Funcs{
			Meta: registry.Info{Name: name, Model: "deterministic", Diameter: "strong"},
			DecomposeFunc: func(ctx context.Context, g *graph.Graph, opts registry.RunOptions) (*cluster.Decomposition, error) {
				count.Add(1)
				assign := make([]int, g.N())
				for v := range assign {
					assign[v] = (v + int(opts.Seed)) % 2
				}
				return &cluster.Decomposition{Assign: assign, Color: []int{0, 1}, K: 2, Colors: 2}, nil
			},
			CarveFunc: func(ctx context.Context, g *graph.Graph, eps float64, opts registry.RunOptions) (*cluster.Carving, error) {
				count.Add(1)
				assign := make([]int, g.N())
				for v := range assign {
					if v%3 == 0 {
						assign[v] = cluster.Unclustered
					} else {
						assign[v] = v % 2
					}
				}
				t0, t1 := cluster.NewTree(1), cluster.NewTree(2)
				return &cluster.Carving{Assign: assign, K: 2, Centers: []int{1, 2}, Trees: []*cluster.Tree{t0, t1}}, nil
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { registry.Unregister(name) })
	return name, count
}

// newPersistentService builds a service over dir defaulting to algo.
func newPersistentService(t *testing.T, dir, algo string) *Service {
	t.Helper()
	s, err := New(Config{DataDir: dir, DefaultAlgorithm: algo})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestServicePersistRestart is the restart property end-to-end: a graph
// uploaded and decomposed by one service instance is served by a second
// instance on the same data directory — the graph from its spilled CSR
// snapshot, the result from its spilled record, with zero recomputation.
func TestServicePersistRestart(t *testing.T) {
	dir := t.TempDir()
	g := graph.ClusterGraph(3, 8, 0.6, 7)
	ctx := context.Background()

	algo, count := registerPersistStub(t)
	s1 := newPersistentService(t, dir, algo)
	hash := s1.PutGraph(g)
	first, err := s1.Decompose(ctx, &Request{Hash: hash, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first request claims a cache hit")
	}
	carved, err := s1.Carve(ctx, &Request{Hash: hash, Eps: 0.25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st := s1.Stats(); st.Persist == nil || st.Persist.GraphSaves != 1 || st.Persist.ResultSaves != 2 {
		t.Fatalf("persist stats after first run: %+v", st.Persist)
	}
	if _, err := os.Stat(filepath.Join(dir, "graphs", hash+".csr")); err != nil {
		t.Fatalf("graph snapshot not spilled: %v", err)
	}
	s1.Close()

	// "Restart": a fresh service, same directory, empty memory tiers.
	s2 := newPersistentService(t, dir, algo)
	got, ok := s2.GetGraph(hash)
	if !ok {
		t.Fatal("restarted service does not serve the uploaded graph")
	}
	if graphio.Hash(got) != hash {
		t.Fatal("restarted service served a different graph")
	}
	res, err := s2.Decompose(ctx, &Request{Hash: hash, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("restarted service recomputed a persisted decomposition")
	}
	if res.Decomposition == nil || len(res.Decomposition.Assign) != g.N() {
		t.Fatal("persisted decomposition malformed")
	}
	// Bit-identical to the original computation (deterministic seeds make
	// this checkable directly).
	for v, c := range first.Decomposition.Assign {
		if res.Decomposition.Assign[v] != c {
			t.Fatalf("node %d: assign %d != original %d", v, res.Decomposition.Assign[v], c)
		}
	}
	res2, err := s2.Carve(ctx, &Request{Hash: hash, Eps: 0.25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.CacheHit || res2.Carving == nil {
		t.Fatal("restarted service recomputed a persisted carving")
	}
	for v, c := range carved.Carving.Assign {
		if res2.Carving.Assign[v] != c {
			t.Fatalf("carve node %d: assign %d != original %d", v, res2.Carving.Assign[v], c)
		}
	}
	st := s2.Stats()
	if st.Persist.GraphDiskHits != 1 || st.Persist.ResultDiskHits != 2 {
		t.Fatalf("restart persist stats: %+v", st.Persist)
	}
	if st.CacheMisses != 0 {
		t.Fatalf("restarted service recorded %d cache misses, want 0", st.CacheMisses)
	}
	if got := count.Load(); got != 2 {
		t.Fatalf("backend computed %d times across both lifetimes, want 2", got)
	}
	if res2.Carving.Trees == nil || res2.Carving.Trees[0] == nil || res2.Carving.Trees[0].Root != 1 {
		t.Fatal("persisted carving lost its Steiner trees")
	}
}

// TestServicePersistEvictionFallsThroughToDisk: a graph evicted from the
// memory LRU is transparently reloaded from its snapshot on the next
// by-hash request.
func TestServicePersistEvictionFallsThroughToDisk(t *testing.T) {
	dir := t.TempDir()
	algo, _ := registerPersistStub(t)
	s, err := New(Config{DataDir: dir, GraphStoreSize: 1, DefaultAlgorithm: algo})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g1, g2 := graph.Cycle(12), graph.Path(9)
	h1 := s.PutGraph(g1)
	s.PutGraph(g2) // evicts g1 from the 1-entry memory store
	if _, ok := s.graphs.get(h1); ok {
		t.Fatal("g1 still resident; eviction assumption broken")
	}
	got, ok := s.GetGraph(h1)
	if !ok {
		t.Fatal("evicted graph not reloaded from disk")
	}
	if graphio.Hash(got) != h1 {
		t.Fatal("disk tier returned the wrong graph")
	}
}

// TestServicePersistQuarantineCorruptGraph flips a bit in a spilled
// snapshot and checks the service refuses to serve it: the request misses,
// the file is renamed aside, and the quarantine counter moves.
func TestServicePersistQuarantineCorruptGraph(t *testing.T) {
	dir := t.TempDir()
	algo, _ := registerPersistStub(t)
	s1 := newPersistentService(t, dir, algo)
	hash := s1.PutGraph(graph.Grid(4, 5))
	s1.Close()

	path := filepath.Join(dir, "graphs", hash+".csr")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x04
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newPersistentService(t, dir, algo)
	if _, ok := s2.GetGraph(hash); ok {
		t.Fatal("corrupt snapshot was served")
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt snapshot not quarantined: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt snapshot still in serving namespace: %v", err)
	}
	if st := s2.Stats(); st.Persist.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Persist.Quarantined)
	}
}

// TestServicePersistQuarantineTamperedResult rewrites a persisted result
// record with an inconsistent assignment and checks the service
// quarantines it and recomputes rather than serving garbage.
func TestServicePersistQuarantineTamperedResult(t *testing.T) {
	dir := t.TempDir()
	g := graph.Cycle(10)
	ctx := context.Background()

	algo, _ := registerPersistStub(t)
	s1 := newPersistentService(t, dir, algo)
	hash := s1.PutGraph(g)
	if _, err := s1.Decompose(ctx, &Request{Hash: hash, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	s1.Close()

	// Tamper: truncate every result record to valid-JSON-prefix garbage.
	matches, err := filepath.Glob(filepath.Join(dir, "results", "*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want one result record, got %v (%v)", matches, err)
	}
	if err := os.WriteFile(matches[0], []byte(`{"schema":"strongdecomp/result/v1"`), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newPersistentService(t, dir, algo)
	res, err := s2.Decompose(ctx, &Request{Hash: hash, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("tampered record served as a cache hit")
	}
	st := s2.Stats()
	if st.Persist.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Persist.Quarantined)
	}
	if _, err := os.Stat(matches[0] + ".corrupt"); err != nil {
		t.Fatalf("tampered record not quarantined: %v", err)
	}
}

// TestServicePersistUnknownHashStaysUnknown: a by-hash request for a graph
// never uploaded fails with ErrUnknownGraph even with a data directory.
func TestServicePersistUnknownHashStaysUnknown(t *testing.T) {
	algo, _ := registerPersistStub(t)
	s := newPersistentService(t, t.TempDir(), algo)
	hash := strings.Repeat("ab", 32)
	_, err := s.Decompose(context.Background(), &Request{Hash: hash})
	if err == nil || !strings.Contains(err.Error(), "unknown graph") {
		t.Fatalf("err = %v, want ErrUnknownGraph", err)
	}
}

// TestValidHash pins the path-safety gate: only 64-char lowercase hex may
// reach the filesystem. Anything else — traversal attempts included — is
// rejected before a path is formed.
func TestValidHash(t *testing.T) {
	good := graphio.Hash(graph.Path(3))
	if !validHash(good) {
		t.Fatalf("real hash %q rejected", good)
	}
	for _, bad := range []string{
		"", "abc", strings.Repeat("g", 64), strings.Repeat("A", 64),
		"../../../../etc/passwd", strings.Repeat("a", 63) + "/",
		strings.Repeat("a", 65),
	} {
		if validHash(bad) {
			t.Errorf("validHash(%q) = true", bad)
		}
	}
}

// TestServicePersistBadDataDir: New surfaces an unusable data directory
// as a construction error instead of degrading silently.
func TestServicePersistBadDataDir(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{DataDir: filepath.Join(file, "nested")}); err == nil {
		t.Fatal("New accepted a data dir under a regular file")
	}
}

// TestServicePersistParamsKeyedSeparately: results for different Params
// on the same graph land in distinct records, and each is found again.
func TestServicePersistParamsKeyedSeparately(t *testing.T) {
	dir := t.TempDir()
	g := graph.Torus(4, 4)
	ctx := context.Background()

	algo, _ := registerPersistStub(t)
	s1 := newPersistentService(t, dir, algo)
	hash := s1.PutGraph(g)
	for seed := int64(0); seed < 3; seed++ {
		if _, err := s1.Decompose(ctx, &Request{Hash: hash, Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	s1.Close()

	matches, _ := filepath.Glob(filepath.Join(dir, "results", "*.json"))
	if len(matches) != 3 {
		t.Fatalf("want 3 result records, got %d", len(matches))
	}
	s2 := newPersistentService(t, dir, algo)
	for seed := int64(0); seed < 3; seed++ {
		res, err := s2.Decompose(ctx, &Request{Hash: hash, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !res.CacheHit {
			t.Fatalf("seed %d recomputed after restart", seed)
		}
	}
}

// TestDecodeResultRejectsBadMetadata: parseable records carrying
// out-of-range centers or tree node ids must be rejected (and hence
// quarantined), not served — result records have no checksum, so this
// validation is the only line of defense against bit rot in them.
func TestDecodeResultRejectsBadMetadata(t *testing.T) {
	const n = 10
	base := func() persistedResult {
		return persistedResult{
			Schema: resultSchema, GraphHash: "h", ParamsKey: []byte("p"),
			Kind: "carve", K: 2,
			Assign:  []int{0, 1, 0, 1, 0, 1, 0, 1, 0, 1},
			Centers: []int{0, 1},
		}
	}
	key := cacheKey{hash: "h", params: "p"}
	if _, ok := decodeJSON(t, base(), key, n); !ok {
		t.Fatal("valid base record rejected")
	}
	mutations := map[string]func(*persistedResult){
		"center-out-of-range":  func(r *persistedResult) { r.Centers[1] = n },
		"center-negative":      func(r *persistedResult) { r.Centers[1] = -1 },
		"centers-wrong-length": func(r *persistedResult) { r.Centers = []int{0} },
		"tree-root-oob":        func(r *persistedResult) { r.Trees = []persistedTree{{Root: n}} },
		"tree-parent-oob": func(r *persistedResult) {
			r.Trees = []persistedTree{{Root: 1, Parent: map[int]int{1: -1, n + 5: 1}}}
		},
		"tree-parent-value-oob": func(r *persistedResult) {
			r.Trees = []persistedTree{{Root: 1, Parent: map[int]int{1: -1, 2: n}}}
		},
	}
	for name, mutate := range mutations {
		rec := base()
		mutate(&rec)
		if _, ok := decodeJSON(t, rec, key, n); ok {
			t.Errorf("%s: corrupt record accepted", name)
		}
	}
}

// decodeJSON round-trips a record through its wire form into decodeResult.
func decodeJSON(t *testing.T, rec persistedResult, key cacheKey, n int) (*Result, bool) {
	t.Helper()
	data, err := json.Marshal(&rec)
	if err != nil {
		t.Fatal(err)
	}
	return decodeResult(data, key, n)
}

// TestServicePersistQuarantineConcurrentReaders: many readers racing onto
// the same corrupt snapshot quarantine it exactly once — the rename is
// the arbiter, losers see a missing file, and no .corrupt.corrupt
// double-rename artifacts appear. This is the failure mode of a shared
// data directory behind a concurrent API.
func TestServicePersistQuarantineConcurrentReaders(t *testing.T) {
	dir := t.TempDir()
	algo, _ := registerPersistStub(t)
	s1 := newPersistentService(t, dir, algo)
	hash := s1.PutGraph(graph.Grid(6, 6))
	s1.Close()

	path := filepath.Join(dir, "graphs", hash+".csr")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newPersistentService(t, dir, algo)
	const readers = 16
	var wg sync.WaitGroup
	var served atomic.Int64
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ok := s2.GetGraph(hash); ok {
				served.Add(1)
			}
		}()
	}
	wg.Wait()

	if got := served.Load(); got != 0 {
		t.Fatalf("%d concurrent readers were served a corrupt snapshot", got)
	}
	if got := s2.Stats().Persist.Quarantined; got != 1 {
		t.Fatalf("quarantined = %d under %d concurrent readers, want exactly 1", got, readers)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt snapshot not quarantined: %v", err)
	}
	if _, err := os.Stat(path + ".corrupt.corrupt"); !os.IsNotExist(err) {
		t.Fatal("double-quarantine artifact exists")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt snapshot still in serving namespace: %v", err)
	}
}
