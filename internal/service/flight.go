package service

import (
	"context"
	"sync"
	"sync/atomic"

	"strongdecomp/internal/registry"
)

// flightGroup deduplicates identical requests in flight: the first caller
// for a key starts the computation, every concurrent caller for the same
// key blocks on its completion and shares the result. Unlike a cache this
// holds no history — an entry lives exactly as long as one computation.
// The group is generic in the result type so the decomposition path
// (*Result) and the applications path (*AppResult) share one mechanism.
type flightGroup[V any] struct {
	mu    sync.Mutex
	calls map[cacheKey]*flightCall[V]
}

type flightCall[V any] struct {
	done    chan struct{} // closed when res/err are final
	res     V
	err     error
	parties atomic.Int64       // callers still waiting; mutated under flightGroup.mu
	cancel  context.CancelFunc // aborts the shared computation
}

func newFlightGroup[V any]() *flightGroup[V] {
	return &flightGroup[V]{calls: make(map[cacheKey]*flightCall[V])}
}

// do runs compute for key, collapsing concurrent identical calls onto one
// execution. The computation runs on its own context, detached from any
// single caller's cancellation: a caller that gives up (its context dies)
// leaves the flight with an ErrCanceled-matching error without poisoning
// the shared result, and only when the last interested caller has left is
// the computation itself canceled. shared reports whether this caller
// joined a flight another caller started.
func (f *flightGroup[V]) do(ctx context.Context, key cacheKey, compute func(ctx context.Context) (V, error)) (res V, err error, shared bool) {
	f.mu.Lock()
	if c, ok := f.calls[key]; ok {
		c.parties.Add(1)
		f.mu.Unlock()
		res, err = f.wait(ctx, key, c)
		return res, err, true
	}
	runCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	c := &flightCall[V]{done: make(chan struct{}), cancel: cancel}
	c.parties.Add(1)
	f.calls[key] = c
	f.mu.Unlock()

	go func() {
		c.res, c.err = compute(runCtx)
		f.forget(key, c)
		close(c.done)
		cancel()
	}()
	res, err = f.wait(ctx, key, c)
	return res, err, false
}

// wait blocks until the shared computation completes or the caller's own
// context dies. The last caller abandoning a flight cancels the
// computation and unlinks the call — under the group lock, so a new
// request can never join a flight that is already being torn down.
func (f *flightGroup[V]) wait(ctx context.Context, key cacheKey, c *flightCall[V]) (V, error) {
	select {
	case <-c.done:
		return c.res, c.err
	case <-ctx.Done():
		f.mu.Lock()
		if c.parties.Add(-1) == 0 {
			if f.calls[key] == c {
				delete(f.calls, key)
			}
			c.cancel()
		}
		f.mu.Unlock()
		var zero V
		return zero, registry.CtxErr(ctx)
	}
}

// forget unlinks c from the group if it is still the current flight for
// key (an abandoned flight may already have been replaced by a fresh one).
func (f *flightGroup[V]) forget(key cacheKey, c *flightCall[V]) {
	f.mu.Lock()
	if f.calls[key] == c {
		delete(f.calls, key)
	}
	f.mu.Unlock()
}
