package service

// The disk tier of the serving layer. When Config.DataDir is set, the
// Service becomes persistent: every stored graph is spilled to a binary
// CSR snapshot (content-addressed by its graphio.Hash, loaded back through
// the mmap path on a memory miss) and every computed result is spilled to
// a JSON record keyed by (graph hash, Params.Key()). Both tiers survive
// restarts — a rebooted server answers GET /v1/graphs/{hash} and repeated
// decompositions without re-upload or recomputation.
//
// Layout under the data directory:
//
//	<dir>/graphs/<graph-hash>.csr            binary CSR snapshot
//	<dir>/results/<graph-hash>-<params>.json persisted result record
//	<dir>/apps/<graph-hash>-<params>.json    persisted application record
//
// where <params> is the lowercase hex of the canonical Params.Key bytes
// (for app records, of the app-prefixed key — see appParamsKey).
// Every file is written via an adjacent temp file + atomic rename.
//
// Corruption policy: a file that fails checksum, decoding, or structural
// validation is never served. It is quarantined — renamed to
// "<name>.corrupt" so operators can inspect it — counted in
// PersistStats.Quarantined, and treated as a miss (the graph is gone, the
// result recomputes).

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/graphio"
)

// persistStore is the disk tier behind the in-memory graph store and
// result cache. All operations are best-effort and self-contained: a
// failed save is counted, a corrupt file is quarantined, and the caller
// proceeds as on a plain miss.
type persistStore struct {
	graphDir  string
	resultDir string
	appDir    string

	graphSaves     atomic.Int64
	graphDiskHits  atomic.Int64
	resultSaves    atomic.Int64
	resultDiskHits atomic.Int64
	appSaves       atomic.Int64
	appDiskHits    atomic.Int64
	quarantined    atomic.Int64
	saveErrors     atomic.Int64
}

// newPersistStore creates the data-directory layout.
func newPersistStore(dir string) (*persistStore, error) {
	p := &persistStore{
		graphDir:  filepath.Join(dir, "graphs"),
		resultDir: filepath.Join(dir, "results"),
		appDir:    filepath.Join(dir, "apps"),
	}
	for _, d := range []string{p.graphDir, p.resultDir, p.appDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("service: data dir: %w", err)
		}
	}
	return p, nil
}

// validHash reports whether h is a plausible graphio.Hash (64 lowercase
// hex characters). Hashes reach the disk tier from request bodies, so
// anything else must never touch a file path.
func validHash(h string) bool {
	if len(h) != 64 {
		return false
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// graphPath returns the snapshot path of a graph hash.
func (p *persistStore) graphPath(hash string) string {
	return filepath.Join(p.graphDir, hash+".csr")
}

// resultPath returns the record path of a cache key: the graph hash plus
// the hex SHA-256 of the canonical Params.Key bytes. Hashing (rather than
// hex-encoding the key itself) keeps the name fixed-length — algorithm
// names are caller-chosen and a raw-key name could exceed the filesystem's
// limit. The full key is stored inside the record and verified on load,
// so a hash collision can at worst cause a recompute, never a wrong
// answer.
func (p *persistStore) resultPath(key cacheKey) string {
	sum := sha256.Sum256([]byte(key.params))
	return filepath.Join(p.resultDir, key.hash+"-"+hex.EncodeToString(sum[:])+".json")
}

// quarantine renames a bad file out of the serving namespace. The rename
// (not a delete) keeps the evidence for operators. Concurrent readers of
// the same corrupt file race into this path together; the rename is the
// arbiter — it succeeds for exactly one of them (the others find the
// source already gone) — so the counter moves once per corrupt file and
// there is no double-rename error to surface.
func (p *persistStore) quarantine(path string) {
	if err := os.Rename(path, path+".corrupt"); err == nil {
		p.quarantined.Add(1)
	}
}

// saveGraph spills g's snapshot if it is not already on disk. Content
// addressing makes this idempotent: any existing file with this name holds
// the same graph.
func (p *persistStore) saveGraph(hash string, g *graph.Graph) {
	if !validHash(hash) {
		return
	}
	path := p.graphPath(hash)
	if _, err := os.Stat(path); err == nil {
		return
	}
	if err := graphio.SaveCSR(path, g); err != nil {
		p.saveErrors.Add(1)
		return
	}
	p.graphSaves.Add(1)
}

// loadGraph opens the spilled snapshot of hash, if present and intact.
// The snapshot's own checksum proves the bytes are as written (the writer
// only serializes valid graphs, so the structural pass is skipped), and
// the content hash is recomputed so a misplaced or stale file can never
// impersonate another graph. Any failure quarantines the file.
func (p *persistStore) loadGraph(hash string) (*graph.Graph, bool) {
	if !validHash(hash) {
		return nil, false
	}
	path := p.graphPath(hash)
	if _, err := os.Stat(path); err != nil {
		return nil, false
	}
	g, err := graphio.LoadCSRTrusted(path)
	if err != nil {
		p.quarantine(path)
		return nil, false
	}
	if graphio.Hash(g) != hash {
		p.quarantine(path)
		return nil, false
	}
	p.graphDiskHits.Add(1)
	return g, true
}

// persistedResult is the on-disk record of one computed result. The
// schema string gates decoding the way the snapshot version does: bump it
// on any layout change.
type persistedResult struct {
	Schema    string `json:"schema"`
	GraphHash string `json:"graph_hash"`
	// ParamsKey is the canonical Params.Key bytes (base64 on the wire via
	// encoding/json); it must round-trip to the requested key exactly.
	ParamsKey []byte  `json:"params_key"`
	Kind      string  `json:"kind"`
	Algo      string  `json:"algo"`
	Eps       float64 `json:"eps,omitempty"`
	Seed      int64   `json:"seed"`

	K       int   `json:"k"`
	Colors  int   `json:"colors,omitempty"`
	Assign  []int `json:"assign"`
	Color   []int `json:"color,omitempty"`
	Centers []int `json:"centers,omitempty"`

	Trees []persistedTree `json:"trees,omitempty"`

	Rounds    int64 `json:"rounds"`
	ElapsedNS int64 `json:"elapsed_ns"`
}

// persistedTree is the on-disk form of a cluster Steiner tree.
type persistedTree struct {
	Root   int         `json:"root"`
	Parent map[int]int `json:"parent"`
}

// resultSchema versions persistedResult.
const resultSchema = "strongdecomp/result/v1"

// EncodeResultRecord serializes a served result into the same
// schema-gated JSON record the disk tier spills — the wire form cluster
// peers exchange for replication and peer-cache lookups. paramsKey is the
// canonical Params.Key bytes. Results carrying neither a carving nor a
// decomposition cannot be encoded.
func EncodeResultRecord(graphHash string, paramsKey string, res *Result) ([]byte, error) {
	rec, ok := buildRecord(cacheKey{hash: graphHash, params: paramsKey}, res)
	if !ok {
		return nil, fmt.Errorf("service: result carries no payload to encode")
	}
	return json.Marshal(&rec)
}

// DecodeResultRecord is the inverse of EncodeResultRecord: it decodes and
// validates a result record against the expected graph hash and params
// key. n is the resolved graph's node count; a negative n skips the
// node-count cross-checks (record-internal consistency is still enforced)
// for callers that admit records for graphs they do not hold locally.
func DecodeResultRecord(data []byte, graphHash string, paramsKey string, n int) (*Result, bool) {
	return decodeResult(data, cacheKey{hash: graphHash, params: paramsKey}, n)
}

// buildRecord assembles the on-disk/on-wire record for a result; ok is
// false when the result carries no payload worth persisting.
func buildRecord(key cacheKey, res *Result) (persistedResult, bool) {
	rec := persistedResult{
		Schema:    resultSchema,
		GraphHash: res.GraphHash,
		ParamsKey: []byte(key.params),
		Kind:      res.Kind,
		Algo:      res.Algo,
		Eps:       res.Eps,
		Seed:      res.Seed,
		Rounds:    res.Rounds,
		ElapsedNS: int64(res.Elapsed),
	}
	switch {
	case res.Carving != nil:
		c := res.Carving
		rec.K, rec.Assign, rec.Centers = c.K, c.Assign, c.Centers
		for _, t := range c.Trees {
			if t == nil {
				rec.Trees = append(rec.Trees, persistedTree{Root: -1})
				continue
			}
			rec.Trees = append(rec.Trees, persistedTree{Root: t.Root, Parent: t.Parent})
		}
	case res.Decomposition != nil:
		d := res.Decomposition
		rec.K, rec.Colors, rec.Assign = d.K, d.Colors, d.Assign
		rec.Color, rec.Centers = d.Color, d.Centers
	default:
		return rec, false
	}
	return rec, true
}

// saveResult spills one computed result record, atomically.
func (p *persistStore) saveResult(key cacheKey, res *Result) {
	if !validHash(key.hash) {
		return
	}
	rec, ok := buildRecord(key, res)
	if !ok {
		return // nothing worth persisting
	}
	data, err := json.Marshal(&rec)
	if err != nil {
		p.saveErrors.Add(1)
		return
	}
	if err := writeFileAtomic(p.resultPath(key), data); err != nil {
		p.saveErrors.Add(1)
		return
	}
	p.resultSaves.Add(1)
}

// loadResult reads the spilled record for key, validating it against the
// resolved graph (n nodes) before it may be served. Undecodable or
// inconsistent records are quarantined and treated as a miss.
func (p *persistStore) loadResult(key cacheKey, n int) (*Result, bool) {
	if !validHash(key.hash) {
		return nil, false
	}
	path := p.resultPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	res, ok := decodeResult(data, key, n)
	if !ok {
		p.quarantine(path)
		return nil, false
	}
	p.resultDiskHits.Add(1)
	return res, true
}

// decodeResult turns a record's bytes back into a Result, enforcing every
// consistency rule that makes the record safe to serve: schema and key
// match, assignment length equals the graph's node count, cluster ids in
// range, and color metadata shaped like the kind demands. A negative n
// means the caller cannot resolve the graph locally (a cluster peer
// admitting a replica): the record's own assignment length stands in for
// the node count, so every range check below still holds internally.
func decodeResult(data []byte, key cacheKey, n int) (*Result, bool) {
	var rec persistedResult
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, false
	}
	if rec.Schema != resultSchema || rec.GraphHash != key.hash || string(rec.ParamsKey) != key.params {
		return nil, false
	}
	if n < 0 {
		n = len(rec.Assign)
	}
	if rec.K < 0 || len(rec.Assign) != n {
		return nil, false
	}
	minAssign := cluster.Unclustered // carvings may leave nodes unclustered
	if rec.Kind == "decompose" {
		minAssign = 0 // decompositions cover every node
	}
	for _, c := range rec.Assign {
		if c < minAssign || c >= rec.K {
			return nil, false
		}
	}
	// Centers and trees are node-id metadata; a parseable-but-corrupted
	// record must not smuggle out-of-range ids into responses.
	if rec.Centers != nil && len(rec.Centers) != rec.K {
		return nil, false
	}
	for _, c := range rec.Centers {
		if c < 0 || c >= n {
			return nil, false
		}
	}
	for _, t := range rec.Trees {
		if t.Root < -1 || t.Root >= n {
			return nil, false // Root == -1 marks an absent tree slot
		}
		for v, parent := range t.Parent {
			if v < 0 || v >= n || parent < -1 || parent >= n {
				return nil, false
			}
		}
	}
	out := &Result{
		GraphHash: rec.GraphHash,
		Kind:      rec.Kind,
		Algo:      rec.Algo,
		Eps:       rec.Eps,
		Seed:      rec.Seed,
		Rounds:    rec.Rounds,
		Elapsed:   time.Duration(rec.ElapsedNS),
	}
	switch rec.Kind {
	case "carve":
		c := &cluster.Carving{K: rec.K, Assign: rec.Assign, Centers: rec.Centers}
		for _, t := range rec.Trees {
			if t.Root < 0 {
				c.Trees = append(c.Trees, nil)
				continue
			}
			c.Trees = append(c.Trees, &cluster.Tree{Root: t.Root, Parent: t.Parent})
		}
		out.Carving = c
	case "decompose":
		if len(rec.Color) != rec.K {
			return nil, false
		}
		for _, col := range rec.Color {
			if col < 0 || col >= rec.Colors {
				return nil, false
			}
		}
		out.Decomposition = &cluster.Decomposition{
			K: rec.K, Colors: rec.Colors,
			Assign: rec.Assign, Color: rec.Color, Centers: rec.Centers,
		}
	default:
		return nil, false
	}
	return out, true
}

// persistedApp is the on-disk record of one application answer. Like
// persistedResult it is schema-gated and fully validated on load; unlike
// results, app records never travel between peers — the decomposition is
// what replicates, and apps recompute cheaply from it.
type persistedApp struct {
	Schema    string `json:"schema"`
	GraphHash string `json:"graph_hash"`
	// ParamsKey is the app-prefixed cache key's params bytes (see
	// appParamsKey); it must round-trip to the requested key exactly.
	ParamsKey []byte `json:"params_key"`
	App       string `json:"app"`
	Algo      string `json:"algo"`
	Seed      int64  `json:"seed"`

	InMIS        []bool   `json:"in_mis,omitempty"`
	ColorOf      []int    `json:"color_of,omitempty"`
	PaletteSize  int      `json:"palette_size,omitempty"`
	Diameter     int      `json:"diameter,omitempty"`
	SpannerEdges [][2]int `json:"spanner_edges,omitempty"`
	TreeEdges    int      `json:"tree_edges,omitempty"`
	CrossEdges   int      `json:"cross_edges,omitempty"`

	ScheduleCost int   `json:"schedule_cost"`
	Rounds       int64 `json:"rounds"`
	ElapsedNS    int64 `json:"elapsed_ns"`
}

// appSchema versions persistedApp.
const appSchema = "strongdecomp/app/v1"

// appPath returns the record path of an app cache key, with the same
// fixed-length naming scheme as resultPath. The app-prefixed params key
// hashes differently from the underlying decomposition's, so app and
// result records can never collide even though both derive from the same
// Params.
func (p *persistStore) appPath(key cacheKey) string {
	sum := sha256.Sum256([]byte(key.params))
	return filepath.Join(p.appDir, key.hash+"-"+hex.EncodeToString(sum[:])+".json")
}

// saveApp spills one application answer record, atomically.
func (p *persistStore) saveApp(key cacheKey, res *AppResult) {
	if !validHash(key.hash) {
		return
	}
	rec := persistedApp{
		Schema:       appSchema,
		GraphHash:    res.GraphHash,
		ParamsKey:    []byte(key.params),
		App:          res.App,
		Algo:         res.Algo,
		Seed:         res.Seed,
		InMIS:        res.InMIS,
		ColorOf:      res.ColorOf,
		PaletteSize:  res.PaletteSize,
		Diameter:     res.Diameter,
		SpannerEdges: res.SpannerEdges,
		TreeEdges:    res.TreeEdges,
		CrossEdges:   res.CrossEdges,
		ScheduleCost: res.ScheduleCost,
		Rounds:       res.Rounds,
		ElapsedNS:    int64(res.Elapsed),
	}
	data, err := json.Marshal(&rec)
	if err != nil {
		p.saveErrors.Add(1)
		return
	}
	if err := writeFileAtomic(p.appPath(key), data); err != nil {
		p.saveErrors.Add(1)
		return
	}
	p.appSaves.Add(1)
}

// loadApp reads the spilled app record for key, validating it against the
// resolved graph (n nodes) before it may be served. Undecodable or
// inconsistent records are quarantined and treated as a miss.
func (p *persistStore) loadApp(key cacheKey, n int) (*AppResult, bool) {
	if !validHash(key.hash) {
		return nil, false
	}
	path := p.appPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	res, ok := decodeApp(data, key, n)
	if !ok {
		p.quarantine(path)
		return nil, false
	}
	p.appDiskHits.Add(1)
	return res, true
}

// quarantineApp renames key's app record aside — the strict-mode path for
// a persisted answer that decodes cleanly but fails its verifier.
func (p *persistStore) quarantineApp(key cacheKey) {
	p.quarantine(p.appPath(key))
}

// decodeApp turns an app record's bytes back into an AppResult, enforcing
// the consistency rules that make it safe to serve: schema, hash, and key
// match; a valid app name; per-node payloads covering exactly n nodes;
// node ids and counters in range. Semantic verification (is the MIS
// actually maximal?) is the strict-mode serve path's job, not the
// decoder's.
func decodeApp(data []byte, key cacheKey, n int) (*AppResult, bool) {
	var rec persistedApp
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, false
	}
	if rec.Schema != appSchema || rec.GraphHash != key.hash || string(rec.ParamsKey) != key.params {
		return nil, false
	}
	if !validApp(rec.App) || rec.Rounds < 0 || rec.ScheduleCost < 0 {
		return nil, false
	}
	out := &AppResult{
		GraphHash:    rec.GraphHash,
		App:          rec.App,
		Algo:         rec.Algo,
		Seed:         rec.Seed,
		InMIS:        rec.InMIS,
		ColorOf:      rec.ColorOf,
		PaletteSize:  rec.PaletteSize,
		Diameter:     rec.Diameter,
		SpannerEdges: rec.SpannerEdges,
		TreeEdges:    rec.TreeEdges,
		CrossEdges:   rec.CrossEdges,
		ScheduleCost: rec.ScheduleCost,
		Rounds:       rec.Rounds,
		Elapsed:      time.Duration(rec.ElapsedNS),
	}
	switch rec.App {
	case AppMIS:
		if len(rec.InMIS) != n {
			return nil, false
		}
	case AppColoring:
		if len(rec.ColorOf) != n || rec.PaletteSize <= 0 {
			return nil, false
		}
		for _, c := range rec.ColorOf {
			if c < 0 || c >= rec.PaletteSize {
				return nil, false
			}
		}
	case AppDiameter:
		if rec.Diameter < 0 || (n > 0 && rec.Diameter >= n) {
			return nil, false
		}
	case AppSpanner:
		if rec.TreeEdges < 0 || rec.CrossEdges < 0 || rec.TreeEdges+rec.CrossEdges != len(rec.SpannerEdges) {
			return nil, false
		}
		for _, e := range rec.SpannerEdges {
			if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n || e[0] == e[1] {
				return nil, false
			}
		}
	}
	return out, true
}

// writeFileAtomic writes data via an adjacent temp file and a rename, the
// same crash-safety discipline as graphio.SaveCSR.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".result-tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// PersistStats is the disk-tier block of a Stats snapshot; present only
// when the service runs with a data directory.
type PersistStats struct {
	// GraphSaves / ResultSaves count successful spills over the service
	// lifetime (not files on disk — earlier runs contribute files too).
	GraphSaves  int64 `json:"graph_saves"`
	ResultSaves int64 `json:"result_saves"`
	// AppSaves counts successfully spilled application records.
	AppSaves int64 `json:"app_saves"`
	// GraphDiskHits / ResultDiskHits count memory misses answered from
	// disk — after a restart, the entire working set returns this way.
	GraphDiskHits  int64 `json:"graph_disk_hits"`
	ResultDiskHits int64 `json:"result_disk_hits"`
	// AppDiskHits counts app-cache memory misses answered from disk.
	AppDiskHits int64 `json:"app_disk_hits"`
	// Quarantined counts corrupt files renamed aside instead of served.
	Quarantined int64 `json:"quarantined"`
	// SaveErrors counts failed spill attempts (disk full, permissions).
	SaveErrors int64 `json:"save_errors"`
}

// snapshot captures the counters.
func (p *persistStore) snapshot() *PersistStats {
	return &PersistStats{
		GraphSaves:     p.graphSaves.Load(),
		ResultSaves:    p.resultSaves.Load(),
		AppSaves:       p.appSaves.Load(),
		GraphDiskHits:  p.graphDiskHits.Load(),
		ResultDiskHits: p.resultDiskHits.Load(),
		AppDiskHits:    p.appDiskHits.Load(),
		Quarantined:    p.quarantined.Load(),
		SaveErrors:     p.saveErrors.Load(),
	}
}
