package httpapi

// Tests for the observability and orchestration surface added alongside
// cluster mode: the readiness probe, the Prometheus exposition (and the
// JSON fallback), health detail merging, and the batch compute endpoint.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/graphio"
	"strongdecomp/internal/registry"
	"strongdecomp/internal/service"
)

// obsStubSeq makes stub names unique across multiple servers per test.
var obsStubSeq atomic.Int64

// newOptsServer is newTestServer with handler options.
func newOptsServer(t *testing.T, opts ...Option) (*httptest.Server, string) {
	t.Helper()
	algo := fmt.Sprintf("obs-stub-%s-%d", t.Name(), obsStubSeq.Add(1))
	err := registry.Register(algo, func() registry.Decomposer {
		return registry.Funcs{
			Meta: registry.Info{Name: algo, Model: "deterministic", Diameter: "strong"},
			DecomposeFunc: func(ctx context.Context, g *graph.Graph, opts registry.RunOptions) (*cluster.Decomposition, error) {
				return &cluster.Decomposition{Assign: make([]int, g.N()), Color: []int{0}, K: 1, Colors: 1}, nil
			},
			CarveFunc: func(ctx context.Context, g *graph.Graph, eps float64, opts registry.RunOptions) (*cluster.Carving, error) {
				return &cluster.Carving{Assign: make([]int, g.N()), K: 1}, nil
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { registry.Unregister(algo) })
	svc, err := service.New(service.Config{DefaultAlgorithm: algo})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(New(svc, opts...))
	t.Cleanup(srv.Close)
	return srv, algo
}

// get fetches a URL and returns (status, content type, body).
func get(t *testing.T, url string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), body
}

// TestServiceHTTPReadyz: without a probe installed readiness is
// unconditional; with one, its error surfaces as 503 + reason while
// liveness stays 200 — the split that lets a drain pull a node from load
// balancing without getting it killed.
func TestServiceHTTPReadyz(t *testing.T) {
	srv, _ := newOptsServer(t)
	status, _, body := get(t, srv.URL+"/readyz")
	if status != http.StatusOK || !strings.Contains(string(body), "ready") {
		t.Fatalf("bare readyz: status %d body %s", status, body)
	}

	unready := fmt.Errorf("shard s1 is draining")
	srv2, _ := newOptsServer(t, WithReadiness(func() error { return unready }))
	status, _, body = get(t, srv2.URL+"/readyz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("failing probe: status %d, want 503", status)
	}
	var out map[string]string
	if err := json.Unmarshal(body, &out); err != nil || out["status"] != "unready" || !strings.Contains(out["reason"], "draining") {
		t.Fatalf("unready body: %s (err %v)", body, err)
	}
	if status, _, _ := get(t, srv2.URL+"/healthz"); status != http.StatusOK {
		t.Fatalf("liveness followed readiness down: %d", status)
	}
}

// TestServiceHTTPHealthzDetail: WithHealthDetail merges topology fields
// into the liveness body without displacing the status field.
func TestServiceHTTPHealthzDetail(t *testing.T) {
	srv, _ := newOptsServer(t, WithHealthDetail(func() map[string]any {
		return map[string]any{"shard_id": "s2", "status": "spoofed"}
	}))
	status, _, body := get(t, srv.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out["status"] != "ok" || out["shard_id"] != "s2" {
		t.Fatalf("healthz detail body: %v", out)
	}
}

// TestServiceHTTPMetricsPrometheus: the default /metrics body is a
// text-exposition document whose counters move with traffic, and cluster
// stats surface under the strongdecomp_shard_ prefix.
func TestServiceHTTPMetricsPrometheus(t *testing.T) {
	srv, algo := newOptsServer(t, WithClusterStats(func() map[string]int64 {
		return map[string]int64{"proxied_total": 7, "peers_down": 1}
	}))
	g := graph.Cycle(8)
	if resp, body := postJSON(t, srv.URL+"/v1/decompose", map[string]any{"graph": graphio.ToDocument(g), "algo": algo}); resp.StatusCode != http.StatusOK {
		t.Fatalf("compute: %d %s", resp.StatusCode, body)
	}

	status, ctype, body := get(t, srv.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if !strings.HasPrefix(ctype, "text/plain") || !strings.Contains(ctype, "version=0.0.4") {
		t.Fatalf("content type %q is not the exposition format", ctype)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE strongdecomp_requests_total counter",
		"strongdecomp_requests_total 1",
		"# TYPE strongdecomp_uptime_seconds gauge",
		"strongdecomp_algorithm_requests_total{algorithm=\"" + algo + "\"} 1",
		"# TYPE strongdecomp_shard_proxied_total counter",
		"strongdecomp_shard_proxied_total 7",
		"# TYPE strongdecomp_shard_peers_down gauge",
		"strongdecomp_shard_peers_down 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestServiceHTTPMetricsFormats: ?format=json keeps the legacy JSON
// snapshot; unknown formats are 400, not silently defaulted.
func TestServiceHTTPMetricsFormats(t *testing.T) {
	srv, _ := newOptsServer(t)
	status, ctype, body := get(t, srv.URL+"/metrics?format=json")
	if status != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("json metrics: status %d type %q", status, ctype)
	}
	var stats struct {
		Requests *int64 `json:"requests"`
	}
	if err := json.Unmarshal(body, &stats); err != nil || stats.Requests == nil {
		t.Fatalf("json metrics body %s (err %v)", body, err)
	}
	if status, _, _ := get(t, srv.URL+"/metrics?format=xml"); status != http.StatusBadRequest {
		t.Fatalf("unknown format: status %d, want 400", status)
	}
}

// TestServiceHTTPBatch: one POST answers many compute requests, slots
// aligned to request order, per-item kinds honored, per-item failures
// isolated.
func TestServiceHTTPBatch(t *testing.T) {
	srv, algo := newOptsServer(t)
	g1, g2 := graph.Cycle(10), graph.Path(7)
	body := map[string]any{"requests": []map[string]any{
		{"graph": graphio.ToDocument(g1), "algo": algo},
		{"kind": "carve", "graph": graphio.ToDocument(g2), "algo": algo, "eps": 0.5},
		{"kind": "nonsense", "graph": graphio.ToDocument(g1), "algo": algo},
		{"hash": strings.Repeat("ab", 32), "algo": algo},
	}}
	resp, data := postJSON(t, srv.URL+"/v1/decompose/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, data)
	}
	var out struct {
		Results []struct {
			Result *struct {
				GraphHash string `json:"graph_hash"`
				Kind      string `json:"kind"`
				Assign    []int  `json:"assign"`
			} `json:"result"`
			Error string `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 4 {
		t.Fatalf("batch answered %d of 4 slots", len(out.Results))
	}
	if r := out.Results[0].Result; r == nil || r.Kind != "decompose" || len(r.Assign) != g1.N() || r.GraphHash != graphio.Hash(g1) {
		t.Fatalf("slot 0: %+v (%s)", out.Results[0].Result, out.Results[0].Error)
	}
	if r := out.Results[1].Result; r == nil || r.Kind != "carve" || len(r.Assign) != g2.N() {
		t.Fatalf("slot 1: %+v (%s)", out.Results[1].Result, out.Results[1].Error)
	}
	if e := out.Results[2].Error; !strings.Contains(e, "nonsense") {
		t.Fatalf("slot 2 error %q does not name the bad kind", e)
	}
	if e := out.Results[3].Error; !strings.Contains(e, "unknown graph") {
		t.Fatalf("slot 3 error %q is not the unknown-graph error", e)
	}

	// The request-count bound is enforced before any work starts.
	over := map[string]any{"requests": make([]map[string]any, 1025)}
	if resp, _ := postJSON(t, srv.URL+"/v1/decompose/batch", over); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400", resp.StatusCode)
	}
}
