// Package httpapi exposes a service.Service as an HTTP JSON API — the
// bytes-on-the-wire layer of the decomposition server:
//
//	GET  /healthz        liveness probe
//	GET  /metrics        expvar-style service + backend counters
//	GET  /v1/algorithms  the algorithm registry (name, model, bounds)
//	POST /v1/graphs      upload a graph, get its content hash
//	POST /v1/decompose   decompose a graph (inline or by hash)
//	POST /v1/carve       ball-carve a graph (inline or by hash)
//
// Graph uploads accept any graphio format (?format=edgelist|metis|json,
// default json); compute requests carry the graph inline as a JSON graph
// document or reference a previously uploaded content hash. Typed service
// errors map onto status codes: invalid requests → 400, unknown hashes →
// 404, canceled or timed-out runs → 504.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"strongdecomp/internal/graphio"
	"strongdecomp/internal/registry"
	"strongdecomp/internal/service"
)

// maxBodyBytes bounds request bodies (inline graphs included).
const maxBodyBytes = 128 << 20

// New returns the HTTP handler serving s.
func New(s *service.Service) http.Handler {
	api := &api{svc: s}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", api.healthz)
	mux.HandleFunc("GET /metrics", api.metrics)
	mux.HandleFunc("GET /v1/algorithms", api.algorithms)
	mux.HandleFunc("POST /v1/graphs", api.putGraph)
	mux.HandleFunc("POST /v1/decompose", api.compute(false))
	mux.HandleFunc("POST /v1/carve", api.compute(true))
	return mux
}

type api struct {
	svc *service.Service
}

func (a *api) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (a *api) metrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.svc.Stats())
}

// algorithmInfo is the wire form of a registry entry.
type algorithmInfo struct {
	Name      string `json:"name"`
	Display   string `json:"display"`
	Model     string `json:"model"`
	Diameter  string `json:"diameter"`
	Reference string `json:"reference,omitempty"`
	Default   bool   `json:"default,omitempty"`
}

func (a *api) algorithms(w http.ResponseWriter, r *http.Request) {
	infos := registry.Infos()
	out := make([]algorithmInfo, len(infos))
	for i, info := range infos {
		out[i] = algorithmInfo{
			Name:      info.Name,
			Display:   info.DisplayName(),
			Model:     info.Model,
			Diameter:  info.Diameter,
			Reference: info.Reference,
			Default:   info.Name == a.svc.DefaultAlgorithm(),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// graphResponse answers an upload: the content hash is the handle for
// subsequent by-hash compute requests.
type graphResponse struct {
	Hash string `json:"hash"`
	N    int    `json:"n"`
	M    int    `json:"m"`
}

func (a *api) putGraph(w http.ResponseWriter, r *http.Request) {
	format := graphio.FormatJSON
	if name := r.URL.Query().Get("format"); name != "" {
		var err error
		if format, err = graphio.ParseFormat(name); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	g, err := graphio.Read(http.MaxBytesReader(w, r.Body, maxBodyBytes), format)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	hash := a.svc.PutGraph(g)
	writeJSON(w, http.StatusOK, graphResponse{Hash: hash, N: g.N(), M: g.M()})
}

// computeRequest is the body of /v1/decompose and /v1/carve: an inline
// graph document or a content hash, plus run parameters.
type computeRequest struct {
	Graph *graphio.Document `json:"graph,omitempty"`
	Hash  string            `json:"hash,omitempty"`
	Algo  string            `json:"algo,omitempty"`
	Eps   float64           `json:"eps,omitempty"`
	Seed  int64             `json:"seed,omitempty"`
}

// computeResponse is a served result. Assign/Color follow the library
// conventions (Assign[v] == -1 marks a carved-away node).
type computeResponse struct {
	GraphHash string  `json:"graph_hash"`
	Kind      string  `json:"kind"`
	Algo      string  `json:"algo"`
	Seed      int64   `json:"seed"`
	Eps       float64 `json:"eps,omitempty"`
	K         int     `json:"k"`
	Colors    int     `json:"colors,omitempty"`
	Assign    []int   `json:"assign"`
	Color     []int   `json:"color,omitempty"`
	Rounds    int64   `json:"rounds"`
	Cached    bool    `json:"cached"`
	Shared    bool    `json:"shared"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

func (a *api) compute(carve bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var body computeRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err := dec.Decode(&body); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
			return
		}
		req := &service.Request{Hash: body.Hash, Algo: body.Algo, Eps: body.Eps, Seed: body.Seed}
		if body.Graph != nil {
			g, err := graphio.FromDocument(body.Graph)
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			req.Graph = g
		}
		var (
			res *service.Result
			err error
		)
		if carve {
			res, err = a.svc.Carve(r.Context(), req)
		} else {
			res, err = a.svc.Decompose(r.Context(), req)
		}
		if err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		out := computeResponse{
			GraphHash: res.GraphHash, Kind: res.Kind, Algo: res.Algo,
			Seed: res.Seed, Eps: res.Eps,
			Rounds: res.Rounds, Cached: res.CacheHit, Shared: res.Shared,
			ElapsedMS: float64(res.Elapsed) / float64(time.Millisecond),
		}
		if res.Carving != nil {
			out.K, out.Assign = res.Carving.K, res.Carving.Assign
		}
		if res.Decomposition != nil {
			out.K, out.Colors = res.Decomposition.K, res.Decomposition.Colors
			out.Assign, out.Color = res.Decomposition.Assign, res.Decomposition.Color
		}
		writeJSON(w, http.StatusOK, out)
	}
}

// statusOf maps the serving layer's typed errors onto HTTP status codes.
func statusOf(err error) int {
	switch {
	case errors.Is(err, service.ErrUnknownGraph):
		return http.StatusNotFound
	case errors.Is(err, service.ErrInvalidRequest),
		errors.Is(err, registry.ErrUnknownAlgorithm):
		return http.StatusBadRequest
	case errors.Is(err, registry.ErrCanceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
