// Package httpapi exposes a service.Service as an HTTP JSON API — the
// bytes-on-the-wire layer of the decomposition server:
//
//	GET    /healthz              liveness probe (cluster mode adds topology)
//	GET    /readyz               readiness probe; 503 while draining or
//	                             when a cluster shard loses peer quorum
//	GET    /metrics              Prometheus text exposition (default) or
//	                             the JSON snapshot with ?format=json
//	GET    /v1/algorithms        the algorithm registry (name, model, bounds)
//	POST   /v1/graphs            upload a graph, get its content hash
//	GET    /v1/graphs/{hash}     stored-graph metadata, or the graph
//	                             itself with ?format=edgelist|metis|json|csr
//	POST   /v1/decompose         decompose a graph (inline or by hash)
//	POST   /v1/carve             ball-carve a graph (inline or by hash)
//	POST   /v1/decompose/batch   execute many compute requests in one call,
//	                             answers aligned to request order
//	                             (fanned out across shards in cluster mode)
//	POST   /v2/jobs              submit an async job; 202 with a job ID
//	GET    /v2/jobs/{id}         job status (state machine: queued →
//	                             running → done|failed|canceled)
//	DELETE /v2/jobs/{id}         cancel by ID (idempotent)
//	GET    /v2/jobs/{id}/result  fetch a done job's result; ?stream=1
//	                             streams clusters as NDJSON
//	POST   /v2/apps/{app}        run an application (mis | coloring |
//	                             diameter | spanner) over the graph's
//	                             cached decomposition
//
// Graph uploads accept any graphio format (?format=edgelist|metis|json|csr,
// default json); compute requests carry the graph inline as a JSON graph
// document or reference a previously uploaded content hash. When the
// service runs with a data directory, by-hash lookups and repeated
// computations are served across restarts from the disk tier. Every request
// resolves into one canonical registry.Params inside the service, so v1
// and v2, sync and async, all share defaults, validation, and cache
// identity. Typed service errors map onto status codes: invalid requests
// → 400, unknown hashes/jobs → 404, a full job queue → 429 (backpressure),
// canceled or timed-out runs → 504.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"strongdecomp/internal/graphio"
	"strongdecomp/internal/obs"
	"strongdecomp/internal/registry"
	"strongdecomp/internal/service"
)

// ServedByHeader names the shard that actually served a response. The
// local handler stamps it (see WithServedBy) and the cluster proxy relays
// it untouched, so a client of any coordinator sees the true placement.
const ServedByHeader = "X-Strongdecomp-Served-By"

// maxBodyBytes bounds request bodies (inline graphs included).
const maxBodyBytes = 128 << 20

// MaxBatchRequests bounds one /v1/decompose/batch body. Exported so the
// cluster proxy enforces the identical cap before fanning a batch out
// across shards.
const MaxBatchRequests = 1024

// maxBatchRequests is the internal alias the handlers use.
const maxBatchRequests = MaxBatchRequests

// batchConcurrency bounds how many batch items execute at once on top of
// each runner's own internal parallelism.
const batchConcurrency = 8

// Option customizes the handler New returns. The zero set of options
// serves exactly the single-process API; cluster mode (internal/shard)
// uses options to surface topology in health, readiness, and metrics.
type Option func(*api)

// WithReadiness installs the readiness probe behind GET /readyz: a nil
// error means ready (200), a non-nil error is reported with a 503 — the
// signal a load balancer needs to stop routing to a draining or
// quorum-less shard. Liveness (GET /healthz) is unaffected.
func WithReadiness(fn func() error) Option {
	return func(a *api) { a.ready = fn }
}

// WithHealthDetail merges extra fields (e.g. shard ID, ring membership,
// peer liveness) into the GET /healthz response body. Without it the body
// stays exactly {"status":"ok"}.
func WithHealthDetail(fn func() map[string]any) Option {
	return func(a *api) { a.healthDetail = fn }
}

// WithClusterStats contributes per-shard counters (proxying, fan-out,
// peer cache, replication) to GET /metrics: as strongdecomp_shard_*
// series in the Prometheus exposition and under "shard" in the JSON body.
func WithClusterStats(fn func() map[string]int64) Option {
	return func(a *api) { a.clusterStats = fn }
}

// WithObs attaches the process observability collector: New wraps the
// handler in the collector's tracing middleware (idempotently — a request
// already traced by an outer wrap passes through), and GET /metrics gains
// the per-endpoint and per-algorithm latency histogram families plus the
// in-flight and Go runtime gauges.
func WithObs(c *obs.Collector) Option {
	return func(a *api) { a.obs = c }
}

// WithServedBy stamps id into the ServedByHeader of every response this
// handler serves. In a cluster each shard passes its own ID, and the
// proxy relays the header verbatim on forwards, so the value a client
// sees always names the shard that did the work, not the coordinator.
func WithServedBy(id string) Option {
	return func(a *api) { a.servedBy = id }
}

// New returns the HTTP handler serving s.
func New(s *service.Service, opts ...Option) http.Handler {
	api := &api{svc: s}
	for _, opt := range opts {
		opt(api)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", api.healthz)
	mux.HandleFunc("GET /readyz", api.readyz)
	mux.HandleFunc("GET /metrics", api.metrics)
	mux.HandleFunc("GET /v1/algorithms", api.algorithms)
	mux.HandleFunc("POST /v1/graphs", api.putGraph)
	mux.HandleFunc("GET /v1/graphs/{hash}", api.getGraph)
	mux.HandleFunc("POST /v1/decompose", api.compute(false))
	mux.HandleFunc("POST /v1/carve", api.compute(true))
	mux.HandleFunc("POST /v1/decompose/batch", api.batch)
	mux.HandleFunc("POST /v2/jobs", api.submitJob)
	mux.HandleFunc("GET /v2/jobs/{id}", api.getJob)
	mux.HandleFunc("DELETE /v2/jobs/{id}", api.cancelJob)
	mux.HandleFunc("GET /v2/jobs/{id}/result", api.jobResult)
	mux.HandleFunc("POST /v2/apps/{app}", api.runApp)
	var h http.Handler = mux
	if api.servedBy != "" {
		h = servedByHandler(api.servedBy, h)
	}
	if api.obs != nil {
		h = api.obs.Middleware(h)
	}
	return h
}

// servedByHandler stamps the serving shard ID before delegating, so the
// header reaches the wire ahead of the first WriteHeader call.
func servedByHandler(id string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(ServedByHeader, id)
		next.ServeHTTP(w, r)
	})
}

type api struct {
	svc          *service.Service
	ready        func() error
	healthDetail func() map[string]any
	clusterStats func() map[string]int64
	obs          *obs.Collector
	servedBy     string
}

// healthz is the liveness probe: answering at all is the signal. The body
// stays {"status":"ok"} unless WithHealthDetail adds topology fields.
func (a *api) healthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{"status": "ok"}
	if a.healthDetail != nil {
		for k, v := range a.healthDetail() {
			if k != "status" {
				body[k] = v
			}
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// readyz is the readiness probe, split from liveness: a live process may
// still be unready (draining before shutdown, or a cluster shard that has
// lost its peer quorum) and must be drained from load balancing without
// being killed.
func (a *api) readyz(w http.ResponseWriter, r *http.Request) {
	if a.ready != nil {
		if err := a.ready(); err != nil {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "unready", "reason": err.Error()})
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// metrics serves the service counters: Prometheus text exposition format
// by default, the JSON snapshot with ?format=json (the pre-Prometheus
// body, kept for compatibility).
func (a *api) metrics(w http.ResponseWriter, r *http.Request) {
	switch format := r.URL.Query().Get("format"); format {
	case "", "prometheus":
		var shard map[string]int64
		if a.clusterStats != nil {
			shard = a.clusterStats()
		}
		w.Header().Set("Content-Type", prometheusContentType)
		w.WriteHeader(http.StatusOK)
		writePrometheus(w, a.svc.Stats(), shard, a.obs)
	case "json":
		body := metricsJSON{Stats: a.svc.Stats()}
		if a.clusterStats != nil {
			body.Shard = a.clusterStats()
		}
		writeJSON(w, http.StatusOK, body)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown metrics format %q (want prometheus or json)", format))
	}
}

// metricsJSON is the ?format=json metrics body: the service Stats
// (embedded, so single-process bodies are byte-identical to the legacy
// /metrics) plus the per-shard counter block in cluster mode.
type metricsJSON struct {
	service.Stats
	// Shard carries the cluster counters; omitted outside cluster mode.
	Shard map[string]int64 `json:"shard,omitempty"`
}

// algorithmInfo is the wire form of a registry entry.
type algorithmInfo struct {
	Name      string `json:"name"`
	Display   string `json:"display"`
	Model     string `json:"model"`
	Diameter  string `json:"diameter"`
	Reference string `json:"reference,omitempty"`
	Default   bool   `json:"default,omitempty"`
}

func (a *api) algorithms(w http.ResponseWriter, r *http.Request) {
	infos := registry.Infos()
	out := make([]algorithmInfo, len(infos))
	for i, info := range infos {
		out[i] = algorithmInfo{
			Name:      info.Name,
			Display:   info.DisplayName(),
			Model:     info.Model,
			Diameter:  info.Diameter,
			Reference: info.Reference,
			Default:   info.Name == a.svc.DefaultAlgorithm(),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// graphResponse answers an upload: the content hash is the handle for
// subsequent by-hash compute requests.
type graphResponse struct {
	Hash string `json:"hash"`
	N    int    `json:"n"`
	M    int    `json:"m"`
}

func (a *api) putGraph(w http.ResponseWriter, r *http.Request) {
	format := graphio.FormatJSON
	if name := r.URL.Query().Get("format"); name != "" {
		var err error
		if format, err = graphio.ParseFormat(name); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	g, err := graphio.Read(http.MaxBytesReader(w, r.Body, maxBodyBytes), format)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	hash := a.svc.PutGraph(g)
	writeJSON(w, http.StatusOK, graphResponse{Hash: hash, N: g.N(), M: g.M()})
}

// getGraph is GET /v1/graphs/{hash}: metadata for a stored graph (memory
// or disk tier), or — with ?format=edgelist|metis|json|csr — the graph
// itself serialized in that format. 404 for hashes the store does not
// hold.
func (a *api) getGraph(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	g, ok := a.svc.GetGraph(hash)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %q", service.ErrUnknownGraph, hash))
		return
	}
	name := r.URL.Query().Get("format")
	if name == "" {
		writeJSON(w, http.StatusOK, graphResponse{Hash: hash, N: g.N(), M: g.M()})
		return
	}
	format, err := graphio.ParseFormat(name)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	switch format {
	case graphio.FormatJSON:
		w.Header().Set("Content-Type", "application/json")
	case graphio.FormatCSR:
		w.Header().Set("Content-Type", "application/octet-stream")
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	w.WriteHeader(http.StatusOK)
	_ = graphio.Write(w, g, format) // status line is out; a broken pipe is the client's problem
}

// computeRequest is the body of /v1/decompose, /v1/carve, and (with Kind)
// /v2/jobs: an inline graph document or a content hash, plus run
// parameters.
type computeRequest struct {
	// Kind selects the operation for /v2/jobs ("carve" or "decompose",
	// default "decompose"); the v1 endpoints encode it in the path.
	Kind  string            `json:"kind,omitempty"`
	Graph *graphio.Document `json:"graph,omitempty"`
	Hash  string            `json:"hash,omitempty"`
	Algo  string            `json:"algo,omitempty"`
	Eps   float64           `json:"eps,omitempty"`
	Seed  int64             `json:"seed,omitempty"`
	// TimeoutMS, when positive, bounds this caller's wait for the result
	// (the computation itself stays bounded by the service timeout).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// serviceRequest converts the wire body into a service.Request.
func (b *computeRequest) serviceRequest() (*service.Request, error) {
	req := &service.Request{
		Hash: b.Hash, Algo: b.Algo, Eps: b.Eps, Seed: b.Seed,
		Timeout: time.Duration(b.TimeoutMS) * time.Millisecond,
	}
	if b.Graph != nil {
		g, err := graphio.FromDocument(b.Graph)
		if err != nil {
			return nil, err
		}
		req.Graph = g
	}
	return req, nil
}

// decodeBody parses a bounded JSON request body.
func decodeBody(w http.ResponseWriter, r *http.Request, into any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("decode request: %w", err)
	}
	return nil
}

// computeResponse is a served result. Assign/Color follow the library
// conventions (Assign[v] == -1 marks a carved-away node).
type computeResponse struct {
	GraphHash string  `json:"graph_hash"`
	Kind      string  `json:"kind"`
	Algo      string  `json:"algo"`
	Seed      int64   `json:"seed"`
	Eps       float64 `json:"eps,omitempty"`
	K         int     `json:"k"`
	Colors    int     `json:"colors,omitempty"`
	Assign    []int   `json:"assign"`
	Color     []int   `json:"color,omitempty"`
	Rounds    int64   `json:"rounds"`
	Cached    bool    `json:"cached"`
	Shared    bool    `json:"shared"`
	// Peer reports the result was fetched from a cluster peer's cache
	// rather than recomputed; omitted (never false-y noise) outside
	// cluster mode, so single-process responses are unchanged.
	Peer      bool    `json:"peer,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

func (a *api) compute(carve bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var body computeRequest
		if err := decodeBody(w, r, &body); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		req, err := body.serviceRequest()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		var res *service.Result
		if carve {
			res, err = a.svc.Carve(r.Context(), req)
		} else {
			res, err = a.svc.Decompose(r.Context(), req)
		}
		if err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resultResponse(res))
	}
}

// resultResponse renders a served result in the wire form shared by the
// v1 compute endpoints and the v2 job result endpoint.
func resultResponse(res *service.Result) computeResponse {
	out := computeResponse{
		GraphHash: res.GraphHash, Kind: res.Kind, Algo: res.Algo,
		Seed: res.Seed, Eps: res.Eps,
		Rounds: res.Rounds, Cached: res.CacheHit, Shared: res.Shared,
		Peer:      res.PeerHit,
		ElapsedMS: float64(res.Elapsed) / float64(time.Millisecond),
	}
	if res.Carving != nil {
		out.K, out.Assign = res.Carving.K, res.Carving.Assign
	}
	if res.Decomposition != nil {
		out.K, out.Colors = res.Decomposition.K, res.Decomposition.Colors
		out.Assign, out.Color = res.Decomposition.Assign, res.Decomposition.Color
	}
	return out
}

// appResponse is a served application answer (POST /v2/apps/{app}).
// Payload fields are app-specific; schedule_cost, rounds, and the cache
// provenance flags are present on every app.
type appResponse struct {
	GraphHash string `json:"graph_hash"`
	App       string `json:"app"`
	Algo      string `json:"algo"`
	Seed      int64  `json:"seed"`

	InMIS       []bool `json:"in_mis,omitempty"`
	MISSize     int    `json:"mis_size,omitempty"`
	ColorOf     []int  `json:"color_of,omitempty"`
	PaletteSize int    `json:"palette_size,omitempty"`
	// Diameter is a pointer so the diameter app's legitimate 0 answer
	// (single node) still serializes while other apps omit the field.
	Diameter     *int     `json:"diameter,omitempty"`
	SpannerEdges [][2]int `json:"spanner_edges,omitempty"`
	TreeEdges    int      `json:"tree_edges,omitempty"`
	CrossEdges   int      `json:"cross_edges,omitempty"`

	// ScheduleCost is the C·D template cost of the underlying
	// decomposition on this graph — the paper's bound on what any
	// color-by-color application pays.
	ScheduleCost int   `json:"schedule_cost"`
	Rounds       int64 `json:"rounds"`
	Cached       bool  `json:"cached"`
	Shared       bool  `json:"shared,omitempty"`
	// DecompositionCached reports the underlying decomposition was served
	// from a cache tier instead of freshly computed.
	DecompositionCached bool    `json:"decomposition_cached"`
	Verified            bool    `json:"verified,omitempty"`
	ElapsedMS           float64 `json:"elapsed_ms"`
}

// appWire renders a served app answer.
func appWire(res *service.AppResult) appResponse {
	out := appResponse{
		GraphHash: res.GraphHash, App: res.App, Algo: res.Algo, Seed: res.Seed,
		InMIS: res.InMIS, ColorOf: res.ColorOf, PaletteSize: res.PaletteSize,
		SpannerEdges: res.SpannerEdges, TreeEdges: res.TreeEdges, CrossEdges: res.CrossEdges,
		ScheduleCost: res.ScheduleCost, Rounds: res.Rounds,
		Cached: res.CacheHit, Shared: res.Shared,
		DecompositionCached: res.DecompCacheHit, Verified: res.Verified,
		ElapsedMS: float64(res.Elapsed) / float64(time.Millisecond),
	}
	for _, in := range res.InMIS {
		if in {
			out.MISSize++
		}
	}
	if res.App == service.AppDiameter {
		d := res.Diameter
		out.Diameter = &d
	}
	return out
}

// runApp is POST /v2/apps/{app}: run an application over the graph's
// cached decomposition. The body is the compute-request shape (inline
// graph or hash, algo, seed, timeout); eps and kind do not apply.
func (a *api) runApp(w http.ResponseWriter, r *http.Request) {
	var body computeRequest
	if err := decodeBody(w, r, &body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req, err := body.serviceRequest()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := a.svc.RunApp(r.Context(), r.PathValue("app"), req)
	if err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, appWire(res))
}

// batchRequest is the body of POST /v1/decompose/batch: an ordered list
// of compute requests (each the same shape as a /v2/jobs body, so "kind"
// selects carve vs decompose per item).
type batchRequest struct {
	Requests []computeRequest `json:"requests"`
}

// batchItemResponse is one slot of a batch response: exactly one of
// Result and Error is set, at the index of the request it answers.
type batchItemResponse struct {
	Result *computeResponse `json:"result,omitempty"`
	Error  string           `json:"error,omitempty"`
}

// batchResponse answers POST /v1/decompose/batch with results aligned to
// the request order.
type batchResponse struct {
	Results []batchItemResponse `json:"results"`
}

// batch is POST /v1/decompose/batch: execute every request of the body —
// concurrently, bounded by batchConcurrency — and answer all of them in
// one response, per-item errors included. In cluster mode the coordinator
// splits a batch by owning shard and merges the sub-batches, so this
// handler also serves each shard's local share of a fanned-out batch.
func (a *api) batch(w http.ResponseWriter, r *http.Request) {
	var body batchRequest
	if err := decodeBody(w, r, &body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(body.Requests) > maxBatchRequests {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch carries %d requests, limit %d", len(body.Requests), maxBatchRequests))
		return
	}
	out := batchResponse{Results: make([]batchItemResponse, len(body.Requests))}
	sem := make(chan struct{}, batchConcurrency)
	var wg sync.WaitGroup
	for i := range body.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out.Results[i] = a.batchItem(r, &body.Requests[i])
		}(i)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, out)
}

// batchItem executes one slot of a batch through the same service path as
// the single-request endpoints.
func (a *api) batchItem(r *http.Request, item *computeRequest) batchItemResponse {
	req, err := item.serviceRequest()
	if err != nil {
		return batchItemResponse{Error: err.Error()}
	}
	var res *service.Result
	switch item.Kind {
	case "", string(registry.KindDecompose):
		res, err = a.svc.Decompose(r.Context(), req)
	case string(registry.KindCarve):
		res, err = a.svc.Carve(r.Context(), req)
	default:
		return batchItemResponse{Error: fmt.Sprintf("unknown kind %q", item.Kind)}
	}
	if err != nil {
		return batchItemResponse{Error: err.Error()}
	}
	wire := resultResponse(res)
	return batchItemResponse{Result: &wire}
}

// jobResponse is the wire form of a job snapshot.
type jobResponse struct {
	ID          string `json:"id"`
	Kind        string `json:"kind"`
	Algo        string `json:"algo"`
	State       string `json:"state"`
	Error       string `json:"error,omitempty"`
	SubmittedAt string `json:"submitted_at"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
	// ResultURL is set once the job is done.
	ResultURL string `json:"result_url,omitempty"`
}

func jobWire(j *service.Job) jobResponse {
	out := jobResponse{
		ID: j.ID, Kind: j.Kind, Algo: j.Algo,
		State: string(j.State), Error: j.Error,
		SubmittedAt: j.SubmittedAt.Format(time.RFC3339Nano),
	}
	if !j.StartedAt.IsZero() {
		out.StartedAt = j.StartedAt.Format(time.RFC3339Nano)
	}
	if !j.FinishedAt.IsZero() {
		out.FinishedAt = j.FinishedAt.Format(time.RFC3339Nano)
	}
	if j.State == service.JobDone {
		out.ResultURL = "/v2/jobs/" + j.ID + "/result"
	}
	return out
}

// submitJob is POST /v2/jobs: enqueue an async run, answer 202 with the
// job ID immediately (or 429 when the bounded queue pushes back).
func (a *api) submitJob(w http.ResponseWriter, r *http.Request) {
	var body computeRequest
	if err := decodeBody(w, r, &body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	kind := registry.Kind(body.Kind)
	if body.Kind == "" {
		kind = registry.KindDecompose
	}
	req, err := body.serviceRequest()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id, err := a.svc.Submit(kind, req)
	if err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	j, err := a.svc.Job(id)
	if err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, jobWire(j))
}

// getJob is GET /v2/jobs/{id}: the job state machine snapshot.
func (a *api) getJob(w http.ResponseWriter, r *http.Request) {
	j, err := a.svc.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, jobWire(j))
}

// cancelJob is DELETE /v2/jobs/{id}: cancel-by-ID, idempotent — canceling
// a terminal job just echoes its state.
func (a *api) cancelJob(w http.ResponseWriter, r *http.Request) {
	j, err := a.svc.CancelJob(r.PathValue("id"))
	if err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, jobWire(j))
}

// jobResult is GET /v2/jobs/{id}/result: the full result of a done job —
// as one JSON document by default, or as an NDJSON cluster stream with
// ?stream=1 (the path that never materializes a second full copy of a
// huge assignment).
func (a *api) jobResult(w http.ResponseWriter, r *http.Request) {
	j, err := a.svc.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	if j.State != service.JobDone || j.Result == nil {
		status := http.StatusConflict
		if j.State == service.JobFailed || j.State == service.JobCanceled {
			status = http.StatusGone
		}
		writeError(w, status, fmt.Errorf("%w: job %s is %s", service.ErrJobNotDone, j.ID, j.State))
		return
	}
	res := j.Result
	// Only a truthy stream value selects NDJSON: ?stream=0 / stream=false
	// must keep answering the plain JSON document.
	if stream, _ := strconv.ParseBool(r.URL.Query().Get("stream")); !stream {
		writeJSON(w, http.StatusOK, resultResponse(res))
		return
	}

	hdr := graphio.StreamHeader{
		Kind: res.Kind, Algo: res.Algo, GraphHash: res.GraphHash,
		Eps: res.Eps, Seed: res.Seed, Rounds: res.Rounds,
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	var streamErr error
	switch {
	case res.Carving != nil:
		hdr.N, hdr.K = len(res.Carving.Assign), res.Carving.K
		streamErr = graphio.WriteClusterStream(w, hdr, res.Carving.Clusters())
	case res.Decomposition != nil:
		hdr.N, hdr.K = len(res.Decomposition.Assign), res.Decomposition.K
		hdr.Colors = res.Decomposition.Colors
		streamErr = graphio.WriteClusterStream(w, hdr, res.Decomposition.Clusters())
	}
	_ = streamErr // the status line is out; a broken client connection is not recoverable
}

// statusOf maps the serving layer's typed errors onto HTTP status codes.
func statusOf(err error) int {
	switch {
	case errors.Is(err, service.ErrUnknownGraph),
		errors.Is(err, service.ErrUnknownJob),
		errors.Is(err, service.ErrUnknownApp):
		return http.StatusNotFound
	case errors.Is(err, service.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, service.ErrInvalidRequest),
		errors.Is(err, registry.ErrInvalidParams),
		errors.Is(err, registry.ErrUnknownAlgorithm):
		return http.StatusBadRequest
	case errors.Is(err, registry.ErrCanceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
