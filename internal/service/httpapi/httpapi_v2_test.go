package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/graphio"
	"strongdecomp/internal/registry"
	"strongdecomp/internal/service"
)

// waitJobState polls GET /v2/jobs/{id} until ok accepts the snapshot.
func waitJobState(t *testing.T, base, id string, ok func(jobResponse) bool) jobResponse {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var last jobResponse
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v2/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job: status %d, %s", resp.StatusCode, data)
		}
		if err := json.Unmarshal(data, &last); err != nil {
			t.Fatal(err)
		}
		if ok(last) {
			return last
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached the wanted state; last: %+v", id, last)
	return last
}

// TestV2JobSubmitPollResult drives the async happy path over the wire:
// submit → 202 queued/running → poll to done → fetch the result both as
// one document and as an NDJSON stream.
func TestV2JobSubmitPollResult(t *testing.T) {
	srv, algo := newTestServer(t)

	resp, body := postJSON(t, srv.URL+"/v2/jobs", map[string]any{
		"kind":  "decompose",
		"graph": map[string]any{"n": 6, "edges": [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}},
		"algo":  algo,
		"seed":  3,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var sub jobResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" || (sub.State != "queued" && sub.State != "running" && sub.State != "done") {
		t.Fatalf("submit answered %+v", sub)
	}
	if sub.Kind != "decompose" || sub.Algo != algo {
		t.Fatalf("submit echoed wrong params: %+v", sub)
	}

	j := waitJobState(t, srv.URL, sub.ID, func(j jobResponse) bool { return j.State == "done" })
	if j.ResultURL == "" {
		t.Fatal("done job has no result_url")
	}

	// Result as one JSON document.
	resp2, err := http.Get(srv.URL + j.ResultURL)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %s", resp2.StatusCode, data)
	}
	var res struct {
		Kind   string `json:"kind"`
		Assign []int  `json:"assign"`
		K      int    `json:"k"`
	}
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Kind != "decompose" || len(res.Assign) != 6 {
		t.Fatalf("result document wrong: %s", data)
	}

	// Result as an NDJSON stream.
	resp3, err := http.Get(srv.URL + j.ResultURL + "?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if ct := resp3.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	stream, err := readBodyStream(resp3.Body)
	if err != nil {
		t.Fatal(err)
	}
	if stream.Header.Kind != "decompose" || stream.Header.N != 6 {
		t.Fatalf("stream header wrong: %+v", stream.Header)
	}
	assign, err := stream.Assign()
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != len(res.Assign) {
		t.Fatalf("streamed assignment length %d vs %d", len(assign), len(res.Assign))
	}
	for v := range assign {
		if assign[v] != res.Assign[v] {
			t.Fatalf("streamed and inline assignments disagree at node %d", v)
		}
	}
}

// TestV2JobCancel cancels over the wire and checks the terminal state.
func TestV2JobCancel(t *testing.T) {
	srv, algo := newTestServer(t)

	resp, body := postJSON(t, srv.URL+"/v2/jobs", map[string]any{
		"graph": map[string]any{"n": 4, "edges": [][]int{{0, 1}, {1, 2}, {2, 3}}},
		"algo":  algo,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var sub jobResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v2/jobs/"+sub.ID, nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d: %s", resp2.StatusCode, data)
	}
	// The stub may already have finished — either terminal state is
	// legitimate; what matters is the job settles and stays addressable.
	j := waitJobState(t, srv.URL, sub.ID, func(j jobResponse) bool {
		return j.State == "done" || j.State == "canceled" || j.State == "failed"
	})
	if j.State == "failed" {
		t.Fatalf("job failed: %s", j.Error)
	}
}

// TestV2JobErrors covers the error surface: malformed submissions → 400,
// unknown IDs → 404, queue backpressure → 429, result of an unfinished
// job → 409/410.
func TestV2JobErrors(t *testing.T) {
	srv, algo := newTestServer(t)

	// Malformed: NaN eps is not even JSON — use out-of-range eps instead.
	resp, body := postJSON(t, srv.URL+"/v2/jobs", map[string]any{
		"kind": "carve", "eps": 7.5,
		"graph": map[string]any{"n": 2, "edges": [][]int{{0, 1}}},
		"algo":  algo,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad eps submit status %d: %s", resp.StatusCode, body)
	}
	// Malformed: negative timeout.
	resp, body = postJSON(t, srv.URL+"/v2/jobs", map[string]any{
		"graph": map[string]any{"n": 2, "edges": [][]int{{0, 1}}},
		"algo":  algo, "timeout_ms": -5,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative timeout submit status %d: %s", resp.StatusCode, body)
	}
	// Malformed: unknown kind.
	resp, body = postJSON(t, srv.URL+"/v2/jobs", map[string]any{
		"kind":  "paint",
		"graph": map[string]any{"n": 2, "edges": [][]int{{0, 1}}},
		"algo":  algo,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kind submit status %d: %s", resp.StatusCode, body)
	}

	// Unknown job IDs.
	for _, probe := range []string{"/v2/jobs/jnope", "/v2/jobs/jnope/result"} {
		resp, err := http.Get(srv.URL + probe)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s status %d", probe, resp.StatusCode)
		}
	}
}

// TestV2QueueBackpressure fills a one-slot queue behind a blocked worker
// and checks the wire answers 429.
func TestV2QueueBackpressure(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	started := make(chan struct{}, 1)
	algo := registerBlockingStub(t, gate, started)
	svc, err := service.New(service.Config{
		DefaultAlgorithm: algo, JobWorkers: 1, JobQueue: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(svc))
	t.Cleanup(srv.Close)

	doc := map[string]any{"graph": map[string]any{"n": 3, "edges": [][]int{{0, 1}, {1, 2}}}, "algo": algo}
	submit := func(seed int64) int {
		doc["seed"] = seed
		resp, _ := postJSON(t, srv.URL+"/v2/jobs", doc)
		return resp.StatusCode
	}
	if code := submit(1); code != http.StatusAccepted {
		t.Fatalf("first submit status %d", code)
	}
	<-started // worker occupied
	if code := submit(2); code != http.StatusAccepted {
		t.Fatalf("second submit status %d", code)
	}
	if code := submit(3); code != http.StatusTooManyRequests {
		t.Fatalf("overfull submit status %d, want 429", code)
	}
}

// readBodyStream decodes an NDJSON body via graphio's stream reader.
func readBodyStream(r io.Reader) (*graphio.StreamResult, error) {
	return graphio.ReadClusterStream(r)
}

// registerBlockingStub registers a decomposer that blocks until gate
// closes (or its context dies), signalling each start on started.
func registerBlockingStub(t *testing.T, gate, started chan struct{}) string {
	t.Helper()
	algo := fmt.Sprintf("http-block-stub-%s", t.Name())
	err := registry.Register(algo, func() registry.Decomposer {
		return registry.Funcs{
			Meta: registry.Info{Name: algo, Model: "deterministic", Diameter: "strong"},
			DecomposeFunc: func(ctx context.Context, g *graph.Graph, opts registry.RunOptions) (*cluster.Decomposition, error) {
				started <- struct{}{}
				select {
				case <-gate:
				case <-ctx.Done():
					return nil, registry.CtxErr(ctx)
				}
				return &cluster.Decomposition{Assign: make([]int, g.N()), Color: []int{0}, K: 1, Colors: 1}, nil
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { registry.Unregister(algo) })
	return algo
}

// TestV1TimeoutField: the shared computeRequest carries timeout_ms into
// the synchronous endpoints too — a negative value is rejected.
func TestV1TimeoutField(t *testing.T) {
	srv, algo := newTestServer(t)
	resp, body := postJSON(t, srv.URL+"/v1/decompose", map[string]any{
		"graph": map[string]any{"n": 2, "edges": [][]int{{0, 1}}},
		"algo":  algo, "timeout_ms": -1,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative timeout status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "timeout") {
		t.Fatalf("error does not mention the timeout: %s", body)
	}
}

// TestV2ResultStreamFalsy: ?stream=0 and ?stream=false keep answering the
// plain JSON document — only a truthy value selects NDJSON.
func TestV2ResultStreamFalsy(t *testing.T) {
	srv, algo := newTestServer(t)
	resp, body := postJSON(t, srv.URL+"/v2/jobs", map[string]any{
		"graph": map[string]any{"n": 3, "edges": [][]int{{0, 1}, {1, 2}}},
		"algo":  algo,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var sub jobResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	waitJobState(t, srv.URL, sub.ID, func(j jobResponse) bool { return j.State == "done" })

	for _, q := range []string{"?stream=0", "?stream=false", ""} {
		r, err := http.Get(srv.URL + "/v2/jobs/" + sub.ID + "/result" + q)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if ct := r.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%q answered content type %q, want the JSON document", q, ct)
		}
		var doc struct {
			Assign []int `json:"assign"`
		}
		if err := json.Unmarshal(data, &doc); err != nil || len(doc.Assign) != 3 {
			t.Fatalf("%q did not answer the result document: %s", q, data)
		}
	}
	for _, q := range []string{"?stream=1", "?stream=true"} {
		r, err := http.Get(srv.URL + "/v2/jobs/" + sub.ID + "/result" + q)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if ct := r.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("%q answered content type %q, want NDJSON", q, ct)
		}
	}
}
