package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/graphio"
	"strongdecomp/internal/registry"
	"strongdecomp/internal/service"
)

// newTestServer registers a stub construction and mounts a fresh service
// behind httptest.
func newTestServer(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	algo := fmt.Sprintf("http-stub-%s", t.Name())
	err := registry.Register(algo, func() registry.Decomposer {
		return registry.Funcs{
			Meta: registry.Info{Name: algo, Model: "deterministic", Diameter: "strong"},
			DecomposeFunc: func(ctx context.Context, g *graph.Graph, opts registry.RunOptions) (*cluster.Decomposition, error) {
				return &cluster.Decomposition{Assign: make([]int, g.N()), Color: []int{0}, K: 1, Colors: 1}, nil
			},
			CarveFunc: func(ctx context.Context, g *graph.Graph, eps float64, opts registry.RunOptions) (*cluster.Carving, error) {
				return &cluster.Carving{Assign: make([]int, g.N()), K: 1}, nil
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { registry.Unregister(algo) })
	svc, err := service.New(service.Config{DefaultAlgorithm: algo})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(svc))
	t.Cleanup(srv.Close)
	return srv, algo
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestServiceHTTPHealthz(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body["status"] != "ok" {
		t.Fatalf("body = %v, err = %v", body, err)
	}
}

func TestServiceHTTPAlgorithms(t *testing.T) {
	srv, algo := newTestServer(t)
	resp, err := http.Get(srv.URL + "/v1/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []struct {
		Name    string `json:"name"`
		Model   string `json:"model"`
		Default bool   `json:"default"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, info := range infos {
		if info.Name == algo {
			found = info.Default && info.Model == "deterministic"
		}
	}
	if !found {
		t.Fatalf("registered stub missing or mis-described in %+v", infos)
	}
}

func TestServiceHTTPUploadAndCompute(t *testing.T) {
	srv, algo := newTestServer(t)
	g := graph.Cycle(10)

	// Upload in METIS form to exercise non-default formats.
	var buf bytes.Buffer
	if err := graphio.WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/graphs?format=metis", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var up struct {
		Hash string `json:"hash"`
		N    int    `json:"n"`
		M    int    `json:"m"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || up.Hash != graphio.Hash(g) || up.N != 10 || up.M != 10 {
		t.Fatalf("upload: status %d, %+v", resp.StatusCode, up)
	}

	// Decompose by hash; repeat must be served from cache.
	var out struct {
		GraphHash string `json:"graph_hash"`
		Algo      string `json:"algo"`
		K         int    `json:"k"`
		Colors    int    `json:"colors"`
		Assign    []int  `json:"assign"`
		Cached    bool   `json:"cached"`
	}
	resp1, body1 := postJSON(t, srv.URL+"/v1/decompose", map[string]any{"hash": up.Hash})
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("decompose: %d %s", resp1.StatusCode, body1)
	}
	if err := json.Unmarshal(body1, &out); err != nil {
		t.Fatal(err)
	}
	if out.Cached || out.Algo != algo || len(out.Assign) != 10 || out.K != 1 {
		t.Fatalf("first decompose response: %+v", out)
	}
	resp2, body2 := postJSON(t, srv.URL+"/v1/decompose", map[string]any{"hash": up.Hash})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat decompose: %d %s", resp2.StatusCode, body2)
	}
	if err := json.Unmarshal(body2, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Cached {
		t.Fatalf("repeat decompose not cached: %s", body2)
	}

	// The hit is observable on /metrics.
	mresp, err := http.Get(srv.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var stats service.Stats
	if err := json.NewDecoder(mresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 1 || stats.CacheMisses != 1 || stats.StoredGraphs != 1 {
		t.Fatalf("metrics = %+v, want 1 hit / 1 miss / 1 graph", stats)
	}
}

func TestServiceHTTPInlineGraphAndCarve(t *testing.T) {
	srv, _ := newTestServer(t)
	doc := map[string]any{"n": 4, "edges": [][]int{{0, 1}, {1, 2}, {2, 3}}}

	resp, body := postJSON(t, srv.URL+"/v1/carve", map[string]any{"graph": doc, "eps": 0.5, "seed": 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("carve: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Kind   string  `json:"kind"`
		Eps    float64 `json:"eps"`
		Assign []int   `json:"assign"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != "carve" || out.Eps != 0.5 || len(out.Assign) != 4 {
		t.Fatalf("carve response: %+v", out)
	}

	// An inline request registers its graph: by-hash follow-up works.
	g, err := graphio.FromDocument(&graphio.Document{N: 4, Edges: [][]int{{0, 1}, {1, 2}, {2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, srv.URL+"/v1/decompose", map[string]any{"hash": graphio.Hash(g)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("by-hash after inline: %d %s", resp.StatusCode, body)
	}
}

func TestServiceHTTPErrors(t *testing.T) {
	srv, _ := newTestServer(t)
	cases := []struct {
		name string
		path string
		body any
		want int
	}{
		{"no graph", "/v1/decompose", map[string]any{}, http.StatusBadRequest},
		{"unknown hash", "/v1/decompose", map[string]any{"hash": "feed"}, http.StatusNotFound},
		{"unknown algo", "/v1/decompose", map[string]any{"hash": "x", "algo": "nope"}, http.StatusBadRequest},
		{"bad eps", "/v1/carve", map[string]any{"graph": map[string]any{"n": 2, "edges": [][]int{{0, 1}}}, "eps": 7.0}, http.StatusBadRequest},
		{"bad graph doc", "/v1/decompose", map[string]any{"graph": map[string]any{"n": 1, "edges": [][]int{{0, 9}}}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, srv.URL+tc.path, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, body)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body missing: %s", tc.name, body)
		}
	}

	// Malformed JSON body.
	resp, err := http.Post(srv.URL+"/v1/decompose", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}

	// Wrong method on a typed route.
	resp, err = http.Get(srv.URL + "/v1/decompose")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on POST route: status %d, want 405", resp.StatusCode)
	}

	// Bad upload format + bad upload bytes.
	resp, err = http.Post(srv.URL+"/v1/graphs?format=hdf5", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad format: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/graphs?format=metis", "text/plain", strings.NewReader("not a graph"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad metis: status %d, want 400", resp.StatusCode)
	}
}

// TestServiceHTTPGraphGetAndCSRDownload covers GET /v1/graphs/{hash}:
// metadata by default, the serialized graph with ?format=, a binary CSR
// download that decodes back to the same graph, and 404 for unknown
// hashes.
func TestServiceHTTPGraphGetAndCSRDownload(t *testing.T) {
	srv, _ := newTestServer(t)
	g := graph.Grid(3, 4)

	var buf bytes.Buffer
	if err := graphio.WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/graphs?format=csr", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var up struct {
		Hash string `json:"hash"`
		N    int    `json:"n"`
		M    int    `json:"m"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || up.Hash != graphio.Hash(g) {
		t.Fatalf("csr upload: status %d, %+v", resp.StatusCode, up)
	}

	// Metadata GET.
	mresp, err := http.Get(srv.URL + "/v1/graphs/" + up.Hash)
	if err != nil {
		t.Fatal(err)
	}
	var meta struct {
		Hash string `json:"hash"`
		N    int    `json:"n"`
		M    int    `json:"m"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK || meta.N != g.N() || meta.M != g.M() || meta.Hash != up.Hash {
		t.Fatalf("graph GET: status %d, %+v", mresp.StatusCode, meta)
	}

	// Binary download round-trips.
	dresp, err := http.Get(srv.URL + "/v1/graphs/" + up.Hash + "?format=csr")
	if err != nil {
		t.Fatal(err)
	}
	if ct := dresp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("csr download content-type %q", ct)
	}
	got, err := graphio.ReadCSR(dresp.Body)
	dresp.Body.Close()
	if err != nil {
		t.Fatalf("downloaded snapshot does not decode: %v", err)
	}
	if graphio.Hash(got) != up.Hash {
		t.Fatal("downloaded snapshot decodes to a different graph")
	}

	// Unknown hash → 404; bad format → 400.
	nresp, err := http.Get(srv.URL + "/v1/graphs/" + strings.Repeat("0", 64))
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown hash status %d, want 404", nresp.StatusCode)
	}
	bresp, err := http.Get(srv.URL + "/v1/graphs/" + up.Hash + "?format=nope")
	if err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad format status %d, want 400", bresp.StatusCode)
	}
}
