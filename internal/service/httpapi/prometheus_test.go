package httpapi

// A parser-level well-formedness test of the whole /metrics document:
// instead of grepping for a few known lines, this parses every line of
// the exposition under the text-format (version 0.0.4) rules — HELP/TYPE
// comments precede their family's samples, families are contiguous,
// every sample belongs to a declared family, and histogram families are
// cumulative with a +Inf bucket agreeing with _count. Any new family a
// future change adds is checked automatically.

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"

	"strongdecomp/internal/graph"
	"strongdecomp/internal/graphio"
	"strongdecomp/internal/obs"
)

// promFamily is one declared metric family of a parsed exposition.
type promFamily struct {
	help    bool
	typ     string
	samples []promSample
}

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseExposition parses a text-format document, failing the test on any
// structural violation: samples before their family's HELP/TYPE pair,
// interleaved families, or unparseable lines.
func parseExposition(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	families := make(map[string]*promFamily)
	var current string // family whose sample block is open
	closed := make(map[string]bool)
	for ln, line := range strings.Split(text, "\n") {
		ln++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.SplitN(line[2:], " ", 3)
			if len(fields) < 3 {
				t.Fatalf("line %d: malformed comment %q", ln, line)
			}
			name := fields[1]
			f := families[name]
			if f == nil {
				f = &promFamily{}
				families[name] = f
			}
			if len(f.samples) > 0 {
				t.Fatalf("line %d: %s comment for %q after its samples", ln, fields[0], name)
			}
			if fields[0] == "HELP" {
				f.help = true
			} else {
				f.typ = fields[2]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		s := parseSample(t, ln, line)
		fam := sampleFamily(families, s.name)
		if fam == "" {
			t.Fatalf("line %d: sample %q belongs to no declared family", ln, s.name)
		}
		f := families[fam]
		if !f.help || f.typ == "" {
			t.Fatalf("line %d: family %q has samples before both HELP and TYPE", ln, fam)
		}
		if fam != current {
			if closed[fam] {
				t.Fatalf("line %d: family %q reopened after other families' samples", ln, fam)
			}
			if current != "" {
				closed[current] = true
			}
			current = fam
		}
		f.samples = append(f.samples, s)
	}
	return families
}

// sampleFamily resolves a sample name to its declared family: the name
// itself, or — for histogram series — the name with its _bucket/_sum/
// _count suffix stripped.
func sampleFamily(families map[string]*promFamily, name string) string {
	if f, ok := families[name]; ok && f.typ != "histogram" {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if f, ok := families[base]; ok && f.typ == "histogram" {
				return base
			}
		}
	}
	if _, ok := families[name]; ok {
		return name
	}
	return ""
}

// parseSample parses one `name{labels} value` line.
func parseSample(t *testing.T, ln int, line string) promSample {
	t.Helper()
	s := promSample{labels: make(map[string]string)}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("line %d: no value separator in %q", ln, line)
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			t.Fatalf("line %d: unterminated label set in %q", ln, line)
		}
		parseLabels(t, ln, rest[1:end], s.labels)
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		t.Fatalf("line %d: unparseable value %q: %v", ln, rest, err)
	}
	s.value = v
	return s
}

// parseLabels parses `k="v",k2="v2"` honoring the \\, \", \n escapes.
func parseLabels(t *testing.T, ln int, in string, out map[string]string) {
	t.Helper()
	for len(in) > 0 {
		eq := strings.Index(in, "=")
		if eq < 0 || len(in) < eq+2 || in[eq+1] != '"' {
			t.Fatalf("line %d: malformed label pair in %q", ln, in)
		}
		key := in[:eq]
		rest := in[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			if rest[i] == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i+1])
				}
				i++
				continue
			}
			if rest[i] == '"' {
				break
			}
			val.WriteByte(rest[i])
		}
		if i == len(rest) {
			t.Fatalf("line %d: unterminated label value in %q", ln, in)
		}
		out[key] = val.String()
		in = rest[i+1:]
		in = strings.TrimPrefix(in, ",")
	}
}

// labelKey renders a sample's labels (minus le) as a stable grouping key.
func labelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, labels[k])
	}
	return b.String()
}

// checkHistogram asserts one histogram family is cumulative and
// internally consistent for every label set it carries.
func checkHistogram(t *testing.T, name string, f *promFamily) {
	t.Helper()
	type series struct {
		buckets []promSample // in document order
		sum     *promSample
		count   *promSample
	}
	byLabels := make(map[string]*series)
	get := func(s promSample) *series {
		k := labelKey(s.labels)
		if byLabels[k] == nil {
			byLabels[k] = &series{}
		}
		return byLabels[k]
	}
	for _, s := range f.samples {
		s := s
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			get(s).buckets = append(get(s).buckets, s)
		case strings.HasSuffix(s.name, "_sum"):
			get(s).sum = &s
		case strings.HasSuffix(s.name, "_count"):
			get(s).count = &s
		default:
			t.Errorf("%s: stray sample %q in histogram family", name, s.name)
		}
	}
	for k, sr := range byLabels {
		if len(sr.buckets) == 0 || sr.sum == nil || sr.count == nil {
			t.Errorf("%s{%s}: incomplete histogram (buckets %d, sum %v, count %v)",
				name, k, len(sr.buckets), sr.sum != nil, sr.count != nil)
			continue
		}
		prevLE := math.Inf(-1)
		prevCum := -1.0
		for i, b := range sr.buckets {
			leStr, ok := b.labels["le"]
			if !ok {
				t.Errorf("%s{%s}: bucket without le", name, k)
				continue
			}
			le := math.Inf(1)
			if leStr != "+Inf" {
				var err error
				if le, err = strconv.ParseFloat(leStr, 64); err != nil {
					t.Errorf("%s{%s}: bad le %q", name, k, leStr)
					continue
				}
			} else if i != len(sr.buckets)-1 {
				t.Errorf("%s{%s}: +Inf bucket not last", name, k)
			}
			if le <= prevLE {
				t.Errorf("%s{%s}: le %v not ascending", name, k, leStr)
			}
			if b.value < prevCum {
				t.Errorf("%s{%s}: bucket counts not cumulative at le=%s (%v < %v)", name, k, leStr, b.value, prevCum)
			}
			prevLE, prevCum = le, b.value
		}
		last := sr.buckets[len(sr.buckets)-1]
		if last.labels["le"] != "+Inf" {
			t.Errorf("%s{%s}: last bucket le=%q, want +Inf", name, k, last.labels["le"])
		}
		if last.value != sr.count.value {
			t.Errorf("%s{%s}: +Inf bucket %v != _count %v", name, k, last.value, sr.count.value)
		}
		if sr.count.value > 0 && sr.sum.value < 0 {
			t.Errorf("%s{%s}: negative _sum %v", name, k, sr.sum.value)
		}
	}
}

// TestServiceHTTPMetricsWellFormed drives traffic through an instrumented
// handler, scrapes /metrics, and verifies the whole document parses under
// the exposition-format rules — histogram families included.
func TestServiceHTTPMetricsWellFormed(t *testing.T) {
	col := obs.NewCollector(nil)
	srv, algo := newOptsServer(t,
		WithObs(col),
		WithServedBy("s0"),
		WithClusterStats(func() map[string]int64 {
			return map[string]int64{"proxied_total": 3, "peers_down": 0}
		}),
	)

	// Traffic: a compute (fills the per-algorithm histogram and stats), a
	// health probe, and a first scrape (so the scrape endpoint itself has
	// a histogram series by the time the asserted scrape happens).
	g := graph.Cycle(12)
	if resp, body := postJSON(t, srv.URL+"/v1/decompose", map[string]any{"graph": graphio.ToDocument(g), "algo": algo}); resp.StatusCode != http.StatusOK {
		t.Fatalf("compute: %d %s", resp.StatusCode, body)
	}
	if status, _, _ := get(t, srv.URL+"/healthz"); status != http.StatusOK {
		t.Fatal("healthz failed")
	}
	get(t, srv.URL+"/metrics")

	status, ctype, body := get(t, srv.URL+"/metrics")
	if status != http.StatusOK || !strings.Contains(ctype, "version=0.0.4") {
		t.Fatalf("scrape: status %d type %q", status, ctype)
	}

	families := parseExposition(t, string(body))
	for name, f := range families {
		if !f.help || f.typ == "" {
			t.Errorf("family %q missing HELP or TYPE", name)
		}
		if len(f.samples) == 0 {
			t.Errorf("family %q declared but has no samples", name)
		}
		if f.typ == "histogram" {
			checkHistogram(t, name, f)
		}
	}

	// The families this PR adds must be present, with real observations.
	for _, want := range []string{
		"strongdecomp_http_request_duration_seconds",
		"strongdecomp_algorithm_duration_seconds",
	} {
		f := families[want]
		if f == nil || f.typ != "histogram" {
			t.Fatalf("family %q missing or not a histogram", want)
		}
	}
	for _, want := range []string{
		"strongdecomp_inflight_requests",
		"strongdecomp_goroutines",
		"strongdecomp_heap_alloc_bytes",
		"strongdecomp_jobs_queue_depth",
		"strongdecomp_algorithm_latency_seconds_mean",
	} {
		if families[want] == nil {
			t.Errorf("family %q missing", want)
		}
	}

	// The per-algorithm histogram saw exactly the one fresh compute.
	var algoCount float64
	for _, s := range families["strongdecomp_algorithm_duration_seconds"].samples {
		if strings.HasSuffix(s.name, "_count") && s.labels["algorithm"] == algo {
			algoCount = s.value
		}
	}
	if algoCount != 1 {
		t.Errorf("algorithm histogram count = %v, want 1", algoCount)
	}
}
