package httpapi

// Hand-rolled Prometheus text exposition (version 0.0.4) of the service
// counters — no client library dependency, just the format: one optional
// HELP/TYPE comment pair per family, then `name{labels} value` samples.
// Counter families end in _total; point-in-time values are gauges.
// Durations are exported in seconds (the Prometheus base unit), as
// float64.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"strongdecomp/internal/obs"
	"strongdecomp/internal/service"
)

// prometheusContentType is the exposition-format content type scrapers
// negotiate for.
const prometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// promWriter accumulates one exposition document. Write errors are
// deliberately ignored: by the time samples are flowing the status line
// is out, and a scraper hanging up mid-scrape is its own problem.
type promWriter struct{ w io.Writer }

func (p promWriter) family(name, help, typ string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p promWriter) sample(name, labels string, value float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	// %g keeps integers integral and avoids trailing-zero noise on the
	// float-valued series.
	fmt.Fprintf(p.w, "%s%s %g\n", name, labels, value)
}

// promLabel renders one escaped label pair.
func promLabel(key, value string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return key + `="` + r.Replace(value) + `"`
}

// promName sanitizes a dynamic counter key into a metric-name suffix.
func promName(key string) string {
	var b strings.Builder
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// writePrometheus renders a Stats snapshot (plus the optional per-shard
// counter block and, when an obs collector is attached, the latency
// histogram and runtime families) as one exposition document.
func writePrometheus(w io.Writer, st service.Stats, shard map[string]int64, col *obs.Collector) {
	p := promWriter{w: w}

	p.family("strongdecomp_uptime_seconds", "Seconds since the service started.", "gauge")
	p.sample("strongdecomp_uptime_seconds", "", st.Uptime.Seconds())

	totals := []struct {
		name, help string
		value      int64
	}{
		{"strongdecomp_requests_total", "Requests across all algorithms.", st.Requests},
		{"strongdecomp_errors_total", "Failed requests.", st.Errors},
		{"strongdecomp_cache_hits_total", "Requests answered from the result cache (memory or disk tier).", st.CacheHits},
		{"strongdecomp_cache_misses_total", "Requests that missed the result cache.", st.CacheMisses},
		{"strongdecomp_dedup_shared_total", "Requests answered by joining an identical in-flight computation.", st.DedupShared},
		{"strongdecomp_peer_hits_total", "Misses answered from a cluster peer's cache instead of a recompute.", st.PeerHits},
	}
	for _, t := range totals {
		p.family(t.name, t.help, "counter")
		p.sample(t.name, "", float64(t.value))
	}

	p.family("strongdecomp_cached_results", "Entries resident in the result cache.", "gauge")
	p.sample("strongdecomp_cached_results", "", float64(st.CachedResults))
	p.family("strongdecomp_stored_graphs", "Graphs resident in the graph store.", "gauge")
	p.sample("strongdecomp_stored_graphs", "", float64(st.StoredGraphs))

	writePrometheusAlgorithms(p, st.Algorithms)
	writePrometheusApps(p, st.Apps)

	p.family("strongdecomp_jobs_total", "Async jobs by lifecycle event.", "counter")
	p.sample("strongdecomp_jobs_total", promLabel("event", "submitted"), float64(st.Jobs.Submitted))
	p.sample("strongdecomp_jobs_total", promLabel("event", "completed"), float64(st.Jobs.Completed))
	p.sample("strongdecomp_jobs_total", promLabel("event", "failed"), float64(st.Jobs.Failed))
	p.sample("strongdecomp_jobs_total", promLabel("event", "canceled"), float64(st.Jobs.Canceled))
	p.family("strongdecomp_jobs", "Async jobs by current state.", "gauge")
	p.sample("strongdecomp_jobs", promLabel("state", "queued"), float64(st.Jobs.Queued))
	p.sample("strongdecomp_jobs", promLabel("state", "running"), float64(st.Jobs.Running))
	p.sample("strongdecomp_jobs", promLabel("state", "retained"), float64(st.Jobs.Retained))
	// The unlabeled depth gauge duplicates strongdecomp_jobs{state="queued"}
	// on purpose: alert rules want one flat series to threshold on.
	p.family("strongdecomp_jobs_queue_depth", "Async jobs waiting in the bounded queue.", "gauge")
	p.sample("strongdecomp_jobs_queue_depth", "", float64(st.Jobs.Queued))

	if len(st.Runner) > 0 {
		p.family("strongdecomp_runner", "Backend (engine) counters, by counter name.", "untyped")
		for _, k := range sortedKeys(st.Runner) {
			p.sample("strongdecomp_runner", promLabel("counter", k), float64(st.Runner[k]))
		}
	}

	if st.Persist != nil {
		persist := []struct {
			name, help string
			value      int64
		}{
			{"strongdecomp_persist_graph_saves_total", "Graph snapshots spilled to the disk tier.", st.Persist.GraphSaves},
			{"strongdecomp_persist_result_saves_total", "Result records spilled to the disk tier.", st.Persist.ResultSaves},
			{"strongdecomp_persist_graph_disk_hits_total", "Graph memory misses answered from disk.", st.Persist.GraphDiskHits},
			{"strongdecomp_persist_result_disk_hits_total", "Result memory misses answered from disk.", st.Persist.ResultDiskHits},
			{"strongdecomp_persist_app_saves_total", "Application records spilled to the disk tier.", st.Persist.AppSaves},
			{"strongdecomp_persist_app_disk_hits_total", "App-cache memory misses answered from disk.", st.Persist.AppDiskHits},
			{"strongdecomp_persist_quarantined_total", "Corrupt files renamed aside instead of served.", st.Persist.Quarantined},
			{"strongdecomp_persist_save_errors_total", "Failed spill attempts.", st.Persist.SaveErrors},
		}
		for _, t := range persist {
			p.family(t.name, t.help, "counter")
			p.sample(t.name, "", float64(t.value))
		}
	}

	if len(shard) > 0 {
		// Per-shard cluster counters: dynamic keys from internal/shard,
		// exported verbatim under a stable prefix so dashboards can rely
		// on strongdecomp_shard_proxied_total etc.
		for _, k := range sortedKeys(shard) {
			name := "strongdecomp_shard_" + promName(k)
			typ := "gauge"
			if strings.HasSuffix(k, "_total") {
				typ = "counter"
			}
			p.family(name, "Cluster shard counter "+k+".", typ)
			p.sample(name, "", float64(shard[k]))
		}
	}

	if col != nil {
		writePrometheusObs(p, col)
	}
}

// writePrometheusObs renders the collector-owned families: the latency
// histograms (per endpoint and per algorithm), the in-flight gauge, and
// the Go runtime block.
func writePrometheusObs(p promWriter, col *obs.Collector) {
	writeHistogramVec(p, "strongdecomp_http_request_duration_seconds",
		"HTTP request latency by endpoint (method plus route pattern).",
		"endpoint", col.Endpoints())
	writeHistogramVec(p, "strongdecomp_algorithm_duration_seconds",
		"Fresh computation latency by algorithm (cache hits excluded).",
		"algorithm", col.Algorithms())
	writeHistogramVec(p, "strongdecomp_app_duration_seconds",
		"Application run latency by app (cache hits and decomposition resolution excluded).",
		"app", col.Apps())

	p.family("strongdecomp_inflight_requests", "HTTP requests currently being served.", "gauge")
	p.sample("strongdecomp_inflight_requests", "", float64(col.InFlight()))

	rt := obs.ReadRuntime()
	p.family("strongdecomp_goroutines", "Live goroutines.", "gauge")
	p.sample("strongdecomp_goroutines", "", float64(rt.Goroutines))
	p.family("strongdecomp_heap_alloc_bytes", "Heap bytes allocated and in use.", "gauge")
	p.sample("strongdecomp_heap_alloc_bytes", "", float64(rt.HeapAllocBytes))
	p.family("strongdecomp_heap_sys_bytes", "Heap bytes obtained from the OS.", "gauge")
	p.sample("strongdecomp_heap_sys_bytes", "", float64(rt.HeapSysBytes))
	p.family("strongdecomp_gc_cycles_total", "Completed GC cycles.", "counter")
	p.sample("strongdecomp_gc_cycles_total", "", float64(rt.GCCycles))
	p.family("strongdecomp_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", "counter")
	p.sample("strongdecomp_gc_pause_seconds_total", "", rt.GCPauseTotal.Seconds())
}

// writeHistogramVec renders one labeled histogram family in the
// exposition's cumulative form: _bucket samples with le edges from the
// shared obs bucket layout (everything above the top edge folds into
// +Inf), then _sum in seconds and _count.
func writeHistogramVec(p promWriter, name, help, label string, vec *obs.HistogramVec) {
	snaps := vec.Snapshots()
	if len(snaps) == 0 {
		return
	}
	keys := make([]string, 0, len(snaps))
	for k := range snaps {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bounds := obs.BucketBounds()

	p.family(name, help, "histogram")
	for _, k := range keys {
		snap := snaps[k]
		kv := promLabel(label, k)
		cum := snap.CumulativeBuckets()
		for i, b := range bounds {
			le := strconv.FormatFloat(b, 'g', -1, 64)
			p.sample(name+"_bucket", kv+","+promLabel("le", le), float64(cum[i]))
		}
		p.sample(name+"_bucket", kv+","+promLabel("le", "+Inf"), float64(snap.Count))
		p.sample(name+"_sum", kv, snap.Sum.Seconds())
		p.sample(name+"_count", kv, float64(snap.Count))
	}
}

// writePrometheusAlgorithms renders the per-algorithm families with an
// algorithm label, deterministically ordered.
func writePrometheusAlgorithms(p promWriter, algos map[string]service.AlgoStats) {
	if len(algos) == 0 {
		return
	}
	names := make([]string, 0, len(algos))
	for name := range algos {
		names = append(names, name)
	}
	sort.Strings(names)

	emit := func(metric, help, typ string, value func(service.AlgoStats) float64) {
		p.family(metric, help, typ)
		for _, name := range names {
			p.sample(metric, promLabel("algorithm", name), value(algos[name]))
		}
	}
	emit("strongdecomp_algorithm_requests_total", "Requests per algorithm.", "counter",
		func(a service.AlgoStats) float64 { return float64(a.Requests) })
	emit("strongdecomp_algorithm_errors_total", "Failed requests per algorithm.", "counter",
		func(a service.AlgoStats) float64 { return float64(a.Errors) })
	emit("strongdecomp_algorithm_cache_hits_total", "Cache hits per algorithm.", "counter",
		func(a service.AlgoStats) float64 { return float64(a.CacheHits) })
	emit("strongdecomp_algorithm_cache_misses_total", "Cache misses per algorithm.", "counter",
		func(a service.AlgoStats) float64 { return float64(a.CacheMisses) })
	emit("strongdecomp_algorithm_dedup_shared_total", "In-flight shared answers per algorithm.", "counter",
		func(a service.AlgoStats) float64 { return float64(a.DedupShared) })
	emit("strongdecomp_algorithm_peer_hits_total", "Peer-cache answers per algorithm.", "counter",
		func(a service.AlgoStats) float64 { return float64(a.PeerHits) })
	emit("strongdecomp_algorithm_computes_total", "Completed backend computations per algorithm.", "counter",
		func(a service.AlgoStats) float64 { return float64(a.Computes) })
	emit("strongdecomp_algorithm_latency_seconds_total", "Total computation latency per algorithm.", "counter",
		func(a service.AlgoStats) float64 { return a.LatencyTotal.Seconds() })
	emit("strongdecomp_algorithm_latency_seconds_max", "Max single-computation latency per algorithm.", "gauge",
		func(a service.AlgoStats) float64 { return a.LatencyMax.Seconds() })
	emit("strongdecomp_algorithm_latency_seconds_mean", "Mean computation latency per algorithm.", "gauge",
		func(a service.AlgoStats) float64 { return a.LatencyMeanSeconds })
}

// writePrometheusApps renders the per-application families (POST
// /v2/apps/{app} serving counters) with an app label, deterministically
// ordered. Absent outside app-serving processes — the families only
// appear once an app request has been counted.
func writePrometheusApps(p promWriter, apps map[string]service.AlgoStats) {
	if len(apps) == 0 {
		return
	}
	names := make([]string, 0, len(apps))
	for name := range apps {
		names = append(names, name)
	}
	sort.Strings(names)

	emit := func(metric, help, typ string, value func(service.AlgoStats) float64) {
		p.family(metric, help, typ)
		for _, name := range names {
			p.sample(metric, promLabel("app", name), value(apps[name]))
		}
	}
	emit("strongdecomp_app_requests_total", "Requests per application.", "counter",
		func(a service.AlgoStats) float64 { return float64(a.Requests) })
	emit("strongdecomp_app_errors_total", "Failed requests per application.", "counter",
		func(a service.AlgoStats) float64 { return float64(a.Errors) })
	emit("strongdecomp_app_cache_hits_total", "App-cache hits per application (memory or disk tier).", "counter",
		func(a service.AlgoStats) float64 { return float64(a.CacheHits) })
	emit("strongdecomp_app_cache_misses_total", "App-cache misses per application.", "counter",
		func(a service.AlgoStats) float64 { return float64(a.CacheMisses) })
	emit("strongdecomp_app_dedup_shared_total", "In-flight shared answers per application.", "counter",
		func(a service.AlgoStats) float64 { return float64(a.DedupShared) })
	emit("strongdecomp_app_runs_total", "Completed application runs per application.", "counter",
		func(a service.AlgoStats) float64 { return float64(a.Computes) })
	emit("strongdecomp_app_latency_seconds_total", "Total application run latency per application.", "counter",
		func(a service.AlgoStats) float64 { return a.LatencyTotal.Seconds() })
}

// sortedKeys returns the map's keys in sorted order for deterministic
// exposition output.
func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
