package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"strongdecomp/internal/obs"
)

// TestServiceHTTPApps drives POST /v2/apps/{app} end to end: an inline
// diameter request (payload + always-present schedule_cost), the
// cache-provenance flags across a repeat, and the per-app Prometheus
// families the call leaves behind on /metrics.
func TestServiceHTTPApps(t *testing.T) {
	srv, algo := newOptsServer(t, WithObs(obs.NewCollector(nil)))
	// A 9-node path: 2-sweep diameter is exact on trees → 8.
	edges := make([][]int, 0, 8)
	for v := 0; v < 8; v++ {
		edges = append(edges, []int{v, v + 1})
	}
	doc := map[string]any{"n": 9, "edges": edges}

	resp, body := postJSON(t, srv.URL+"/v2/apps/diameter", map[string]any{"graph": doc, "algo": algo, "seed": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diameter: %d %s", resp.StatusCode, body)
	}
	var out struct {
		App                 string `json:"app"`
		Algo                string `json:"algo"`
		Diameter            *int   `json:"diameter"`
		ScheduleCost        int    `json:"schedule_cost"`
		Cached              bool   `json:"cached"`
		DecompositionCached bool   `json:"decomposition_cached"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.App != "diameter" || out.Algo != algo || out.Diameter == nil || *out.Diameter != 8 {
		t.Fatalf("diameter response: %s", body)
	}
	if out.ScheduleCost <= 0 {
		t.Fatalf("schedule_cost missing from app response: %s", body)
	}
	if out.Cached || out.DecompositionCached {
		t.Fatalf("first app request flagged cached: %s", body)
	}

	// The repeat is an app-cache hit; a different app on the same graph
	// reuses the decomposition.
	resp, body = postJSON(t, srv.URL+"/v2/apps/diameter", map[string]any{"graph": doc, "algo": algo, "seed": 1})
	if err := json.Unmarshal(body, &out); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat: %d %s (%v)", resp.StatusCode, body, err)
	}
	if !out.Cached {
		t.Fatalf("repeat app request not cached: %s", body)
	}
	var mis struct {
		MISSize             int  `json:"mis_size"`
		DecompositionCached bool `json:"decomposition_cached"`
	}
	resp, body = postJSON(t, srv.URL+"/v2/apps/mis", map[string]any{"graph": doc, "algo": algo, "seed": 1})
	if err := json.Unmarshal(body, &mis); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("mis: %d %s (%v)", resp.StatusCode, body, err)
	}
	if !mis.DecompositionCached {
		t.Fatalf("mis did not reuse the cached decomposition: %s", body)
	}
	if mis.MISSize == 0 {
		t.Fatalf("mis answer empty: %s", body)
	}

	// App activity surfaces as its own metric families.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`strongdecomp_app_requests_total{app="diameter"} 2`,
		`strongdecomp_app_requests_total{app="mis"} 1`,
		`strongdecomp_app_cache_hits_total{app="diameter"} 1`,
		`strongdecomp_app_duration_seconds_bucket{app="diameter"`,
		`strongdecomp_app_duration_seconds_count{app="mis"} 1`,
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// TestServiceHTTPAppErrors maps the app-tier error identities to their
// HTTP statuses.
func TestServiceHTTPAppErrors(t *testing.T) {
	srv, algo := newTestServer(t)
	cases := []struct {
		name string
		path string
		body any
		want int
	}{
		{"unknown app", "/v2/apps/pagerank", map[string]any{"graph": map[string]any{"n": 2, "edges": [][]int{{0, 1}}}}, http.StatusNotFound},
		{"unknown graph", "/v2/apps/mis", map[string]any{"hash": "beef"}, http.StatusNotFound},
		{"no graph", "/v2/apps/mis", map[string]any{"algo": algo}, http.StatusBadRequest},
		{"bad algorithm", "/v2/apps/mis", map[string]any{"graph": map[string]any{"n": 2, "edges": [][]int{{0, 1}}}, "algo": "nope"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, srv.URL+tc.path, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d (want %d): %s", tc.name, resp.StatusCode, tc.want, body)
		}
	}
}
