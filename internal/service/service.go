// Package service is the request-shaped layer over the decomposition
// engine: a Service accepts (graph, algorithm, eps, seed) requests and
// answers them through a content-addressed result cache, deduplicating
// concurrent identical computations in flight (singleflight) and
// propagating per-request timeouts through context cancellation.
//
// The cache identity of a request is (graphio.Hash(g), algo, kind, eps,
// seed): every registered construction is deterministic given its seed, so
// a cached result is bit-identical to a recomputed one and the hot path of
// a repeated decomposition drops from O(BFS) to O(1).
//
// The package depends only on the internal substrate (graph, cluster,
// registry, rounds, graphio); the execution backend is injected as a
// Runner, which both a bare registry.Decomposer and the public
// strongdecomp.Engine satisfy. The facade's NewService wires the Engine
// in; tests can wire stubs.
package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/graphio"
	"strongdecomp/internal/registry"
	"strongdecomp/internal/rounds"
)

// Typed errors of the serving layer. HTTP handlers map these to status
// codes with errors.Is.
var (
	// ErrInvalidRequest marks malformed requests (no graph, bad eps, both
	// inline graph and hash, ...).
	ErrInvalidRequest = errors.New("service: invalid request")
	// ErrUnknownGraph is returned for a by-hash request whose hash is not
	// (or no longer) in the graph store.
	ErrUnknownGraph = errors.New("service: unknown graph hash")
)

// Runner executes decompositions; *strongdecomp.Engine and any
// registry.Decomposer satisfy it.
type Runner interface {
	Carve(ctx context.Context, g *graph.Graph, eps float64, opts *registry.RunOptions) (*cluster.Carving, error)
	Decompose(ctx context.Context, g *graph.Graph, opts *registry.RunOptions) (*cluster.Decomposition, error)
}

// Config parameterizes New. The zero value is serviceable: registry-backed
// runners, the paper's construction as default algorithm, and default
// cache sizes.
type Config struct {
	// NewRunner builds the execution backend for an algorithm name. Nil
	// means direct registry dispatch (no engine parallelism).
	NewRunner func(algo string) (Runner, error)
	// RunnerStats, when non-nil, contributes backend counters (e.g. engine
	// pool stats) to Stats().Runner.
	RunnerStats func() map[string]int64
	// DefaultAlgorithm is used when a request names none; default
	// "chang-ghaffari".
	DefaultAlgorithm string
	// CacheSize bounds the result cache entries (default 256; negative
	// disables caching).
	CacheSize int
	// GraphStoreSize bounds the uploaded-graph store entries (default 128;
	// negative disables the store, forcing inline graphs).
	GraphStoreSize int
	// GraphStoreBudget bounds the store's total size in bytes of resident
	// CSR adjacency, measured by graph.MemoryFootprint (default 1<<28,
	// 256 MiB); graphs that alone exceed the budget are not retained.
	GraphStoreBudget int
	// Timeout bounds each request's computation; 0 means no service-side
	// limit (the caller's context still applies).
	Timeout time.Duration
}

// Service answers decomposition requests through a cache, an in-flight
// deduplicator, and an injected execution backend. It is safe for
// concurrent use — one Service is meant to serve a whole process.
type Service struct {
	cfg     Config
	runners *runnerTable
	cache   *resultCache
	graphs  *graphStore
	flight  *flightGroup
	stats   *statsTable
	start   time.Time
}

// New builds a Service from cfg.
func New(cfg Config) *Service {
	if cfg.NewRunner == nil {
		cfg.NewRunner = func(algo string) (Runner, error) { return registry.Lookup(algo) }
	}
	if cfg.DefaultAlgorithm == "" {
		cfg.DefaultAlgorithm = "chang-ghaffari"
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 256
	}
	if cfg.GraphStoreSize == 0 {
		cfg.GraphStoreSize = 128
	}
	if cfg.GraphStoreBudget == 0 {
		cfg.GraphStoreBudget = 1 << 28
	}
	return &Service{
		cfg:     cfg,
		runners: newRunnerTable(cfg.NewRunner),
		cache:   newResultCache(cfg.CacheSize),
		graphs:  newGraphStore(cfg.GraphStoreSize, cfg.GraphStoreBudget),
		flight:  newFlightGroup(),
		stats:   newStatsTable(),
		start:   time.Now(),
	}
}

// Request is one decomposition or carving request. Exactly one of Graph
// (inline) and Hash (previously uploaded, see PutGraph) must be set.
type Request struct {
	Graph *graph.Graph
	Hash  string
	// Algo is a registry name; empty means the service default.
	Algo string
	// Eps is the carving boundary parameter (carve requests only).
	Eps float64
	// Seed drives randomized constructions and is part of the cache key.
	Seed int64
}

// Result is a served decomposition or carving. Payload pointers (Carving,
// Decomposition) may be shared with the cache and other callers — treat
// them as immutable.
type Result struct {
	// GraphHash is the content hash the result is cached under.
	GraphHash string
	// Kind is "carve" or "decompose".
	Kind string
	Algo string
	Eps  float64
	Seed int64

	Carving       *cluster.Carving
	Decomposition *cluster.Decomposition

	// Rounds is the simulated CONGEST cost of the underlying run.
	Rounds int64
	// Elapsed is the wall-clock compute time of the underlying run (not
	// of this request, which may have been served from cache).
	Elapsed time.Duration
	// CacheHit reports that the result came from the cache.
	CacheHit bool
	// Shared reports that the result was computed once by a concurrent
	// identical request and shared through the in-flight deduplicator.
	Shared bool
}

// request kinds; part of the cache key so a carving can never shadow a
// decomposition of the same graph.
const (
	kindCarve     = "carve"
	kindDecompose = "decompose"
)

// Decompose serves a full network decomposition.
func (s *Service) Decompose(ctx context.Context, req *Request) (*Result, error) {
	if req == nil {
		return nil, fmt.Errorf("%w: nil request", ErrInvalidRequest)
	}
	r := *req
	r.Eps = 0 // not a decomposition parameter; keep the cache key canonical
	return s.do(ctx, kindDecompose, &r)
}

// Carve serves a ball carving with boundary parameter req.Eps.
func (s *Service) Carve(ctx context.Context, req *Request) (*Result, error) {
	if req == nil {
		return nil, fmt.Errorf("%w: nil request", ErrInvalidRequest)
	}
	if !(req.Eps > 0 && req.Eps <= 1) { // written to also reject NaN
		return nil, fmt.Errorf("%w: eps %v outside (0, 1]", ErrInvalidRequest, req.Eps)
	}
	return s.do(ctx, kindCarve, req)
}

// PutGraph stores g in the graph store and returns its content hash, the
// identity later by-hash requests use.
func (s *Service) PutGraph(g *graph.Graph) string {
	hash := graphio.Hash(g)
	s.graphs.put(hash, g)
	return hash
}

// GetGraph returns the stored graph for a content hash.
func (s *Service) GetGraph(hash string) (*graph.Graph, bool) {
	return s.graphs.get(hash)
}

// DefaultAlgorithm returns the algorithm used when requests name none.
func (s *Service) DefaultAlgorithm() string { return s.cfg.DefaultAlgorithm }

// do is the shared request path: resolve graph → cache → singleflight →
// backend.
func (s *Service) do(ctx context.Context, kind string, req *Request) (*Result, error) {
	algo := req.Algo
	if algo == "" {
		algo = s.cfg.DefaultAlgorithm
	}
	// Validate the algorithm before creating its stats entry: the stats
	// table is keyed by caller-supplied strings and serialized into
	// /metrics, so unregistered names must never be admitted into it.
	runner, err := s.runners.get(algo)
	if err != nil {
		return nil, err
	}
	st := s.stats.algo(algo)
	st.requests.Add(1)

	g, hash, err := s.resolveGraph(req)
	if err != nil {
		st.errors.Add(1)
		return nil, err
	}

	key := cacheKey{hash: hash, algo: algo, kind: kind, eps: req.Eps, seed: req.Seed}
	if res, ok := s.cache.get(key); ok {
		st.cacheHits.Add(1)
		out := *res
		out.CacheHit = true
		return &out, nil
	}
	st.cacheMisses.Add(1)

	// The computation itself runs on the flight's detached context (so one
	// caller abandoning a shared flight cannot poison it); the service
	// timeout bounds that detached context, while each caller's own ctx
	// bounds only its wait.
	res, err, shared := s.flight.do(ctx, key, func(runCtx context.Context) (*Result, error) {
		if s.cfg.Timeout > 0 {
			var cancel context.CancelFunc
			runCtx, cancel = context.WithTimeout(runCtx, s.cfg.Timeout)
			defer cancel()
		}
		out, err := s.compute(runCtx, kind, runner, g, key)
		if err != nil {
			return nil, err
		}
		st.recordLatency(out.Elapsed)
		s.cache.put(key, out)
		return out, nil
	})
	if shared {
		st.dedupShared.Add(1)
	}
	if err != nil {
		// Counted per failed request — leader, followers, and abandoned
		// waiters alike — so Errors matches its "failed requests" contract.
		st.errors.Add(1)
		return nil, err
	}
	if shared {
		out := *res
		out.Shared = true
		return &out, nil
	}
	return res, nil
}

// compute runs the construction on the backend and packages the result.
func (s *Service) compute(ctx context.Context, kind string, runner Runner, g *graph.Graph, key cacheKey) (*Result, error) {
	meter := rounds.NewMeter()
	opts := &registry.RunOptions{Seed: key.seed, Meter: meter}
	out := &Result{GraphHash: key.hash, Kind: kind, Algo: key.algo, Eps: key.eps, Seed: key.seed}
	start := time.Now()
	switch kind {
	case kindCarve:
		c, err := runner.Carve(ctx, g, key.eps, opts)
		if err != nil {
			return nil, err
		}
		out.Carving = c
	case kindDecompose:
		d, err := runner.Decompose(ctx, g, opts)
		if err != nil {
			return nil, err
		}
		out.Decomposition = d
	default:
		return nil, fmt.Errorf("%w: unknown kind %q", ErrInvalidRequest, kind)
	}
	out.Elapsed = time.Since(start)
	out.Rounds = meter.Rounds()
	return out, nil
}

// resolveGraph turns a request into a (graph, content hash) pair. Inline
// graphs are hashed and retained in the store, so a caller can switch to
// by-hash requests without a separate upload.
func (s *Service) resolveGraph(req *Request) (*graph.Graph, string, error) {
	switch {
	case req.Graph != nil && req.Hash != "":
		return nil, "", fmt.Errorf("%w: provide an inline graph or a hash, not both", ErrInvalidRequest)
	case req.Graph != nil:
		return req.Graph, s.PutGraph(req.Graph), nil
	case req.Hash != "":
		g, ok := s.graphs.get(req.Hash)
		if !ok {
			return nil, "", fmt.Errorf("%w: %q", ErrUnknownGraph, req.Hash)
		}
		return g, req.Hash, nil
	default:
		return nil, "", fmt.Errorf("%w: request carries no graph and no hash", ErrInvalidRequest)
	}
}
