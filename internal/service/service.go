// Package service is the request-shaped layer over the decomposition
// engine: a Service accepts requests and answers them through a
// content-addressed result cache, deduplicating concurrent identical
// computations in flight (singleflight) and propagating per-request
// timeouts through context cancellation. Requests may also be submitted
// asynchronously (Submit) onto a bounded job queue with cancel-by-ID and
// TTL'd result retention — see jobs.go.
//
// Every request resolves into one canonical registry.Params: defaults via
// Params.Normalized, validation via Params.Validate, and the cache
// identity of a request is (graphio.Hash(g), Params.Key()) — the
// canonical byte encoding of the normalized Params. Every registered
// construction is deterministic given its seed, so a cached result is
// bit-identical to a recomputed one and the hot path of a repeated
// decomposition drops from O(BFS) to O(1).
//
// The package depends only on the internal substrate (graph, cluster,
// registry, rounds, graphio); the execution backend is injected as a
// registry.Runner, which both an AdaptDecomposer-wrapped registry entry
// and the public strongdecomp.Engine satisfy. The facade's NewService
// wires the Engine in; tests can wire stubs.
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/graphio"
	"strongdecomp/internal/obs"
	"strongdecomp/internal/registry"
)

// Typed errors of the serving layer. HTTP handlers map these to status
// codes with errors.Is.
var (
	// ErrInvalidRequest marks malformed requests (no graph, bad eps, both
	// inline graph and hash, ...).
	ErrInvalidRequest = errors.New("service: invalid request")
	// ErrUnknownGraph is returned for a by-hash request whose hash is not
	// (or no longer) in the graph store.
	ErrUnknownGraph = errors.New("service: unknown graph hash")
)

// Runner executes canonical Params; *strongdecomp.Engine satisfies it
// directly and a bare registry.Decomposer is lifted with
// registry.AdaptDecomposer.
type Runner = registry.Runner

// Config parameterizes New. The zero value is serviceable: registry-backed
// runners, the paper's construction as default algorithm, and default
// cache sizes.
type Config struct {
	// NewRunner builds the execution backend for an algorithm name. Nil
	// means direct registry dispatch (no engine parallelism).
	NewRunner func(algo string) (Runner, error)
	// RunnerStats, when non-nil, contributes backend counters (e.g. engine
	// pool stats) to Stats().Runner.
	RunnerStats func() map[string]int64
	// DefaultAlgorithm is used when a request names none; default
	// "chang-ghaffari".
	DefaultAlgorithm string
	// CacheSize bounds the result cache entries (default 256; negative
	// disables caching).
	CacheSize int
	// AppCacheSize bounds the application-result cache entries (default
	// 256; negative disables app-result caching). See apps.go.
	AppCacheSize int
	// StrictApps makes every served application answer pass its verifier
	// (VerifyMIS, VerifyColoring, shape checks for diameter and spanner)
	// before it leaves the service: freshly computed answers that fail
	// verification are errors, and persisted app records that fail are
	// quarantined and recomputed instead of served.
	StrictApps bool
	// GraphStoreSize bounds the uploaded-graph store entries (default 128;
	// negative disables the store, forcing inline graphs).
	GraphStoreSize int
	// GraphStoreBudget bounds the store's total size in bytes of resident
	// CSR adjacency, measured by graph.MemoryFootprint (default 1<<28,
	// 256 MiB); graphs that alone exceed the budget are not retained.
	GraphStoreBudget int
	// Timeout bounds each request's computation; 0 means no service-side
	// limit (the caller's context still applies). A Request.Timeout
	// additionally bounds that caller's own wait.
	Timeout time.Duration
	// JobQueue bounds the async job queue (default 64; negative disables
	// the job subsystem — Submit fails with ErrQueueFull).
	JobQueue int
	// JobWorkers is the number of goroutines draining the job queue
	// (default 2). Each job still fans out over its runner's own pool.
	JobWorkers int
	// JobTTL is how long a finished job's result is retained for
	// retrieval before it is purged (default 15 minutes).
	JobTTL time.Duration
	// DataDir, when non-empty, makes the service persistent: graphs spill
	// to binary CSR snapshots and results to JSON records under this
	// directory, and both tiers are consulted on memory misses — so a
	// restarted service serves previously uploaded graphs and cached
	// results without re-upload or recomputation. See persist.go.
	DataDir string
	// Cluster connects this service to a sharded serving tier. All hooks
	// are optional; the zero value keeps the service single-process with
	// behavior identical to pre-cluster builds.
	Cluster ClusterHooks
}

// ClusterHooks are the integration points between one Service process and
// a sharded cluster (see internal/shard). The service stays agnostic of
// ring topology and wire protocol: it only knows that a result it does not
// hold may live on a peer (PeerLookup extends the miss path) and that what
// it computes or stores may be worth replicating (the On* callbacks fire
// on fresh local work, never on cache hits or admitted peer data, so
// replication cannot echo around the ring).
type ClusterHooks struct {
	// PeerLookup is consulted on a full local miss (memory and disk),
	// before computing: given the graph hash, the canonical Params.Key
	// bytes, and the resolved graph's node count it returns a result held
	// by a peer, or ok == false to fall through to computation. It runs
	// inside the singleflight, so concurrent identical requests share one
	// peer fetch.
	PeerLookup func(ctx context.Context, graphHash string, paramsKey string, n int) (*Result, bool)
	// OnResultComputed fires after a freshly computed (not cached, not
	// peer-served) result has been admitted to the local tiers.
	OnResultComputed func(graphHash string, paramsKey string, res *Result)
	// OnGraphStored fires after PutGraph admits a graph to the local
	// tiers. It does not fire for graphs admitted via AdmitGraph, which
	// is how replicated copies arrive — again to keep replication
	// one-directional.
	OnGraphStored func(graphHash string, g *graph.Graph)
}

// Service answers decomposition requests through a cache, an in-flight
// deduplicator, and an injected execution backend. It is safe for
// concurrent use — one Service is meant to serve a whole process.
type Service struct {
	cfg       Config
	runners   *runnerTable
	cache     *resultCache
	graphs    *graphStore
	persist   *persistStore // nil when Config.DataDir is empty
	flight    *flightGroup[*Result]
	appCache  *lru[cacheKey, *AppResult]
	appFlight *flightGroup[*AppResult]
	stats     *statsTable
	jobs      *jobManager
	start     time.Time
}

// New builds a Service from cfg. It fails only when Config.DataDir is set
// and the data-directory layout cannot be created.
func New(cfg Config) (*Service, error) {
	if cfg.NewRunner == nil {
		cfg.NewRunner = func(algo string) (Runner, error) {
			d, err := registry.Lookup(algo)
			if err != nil {
				return nil, err
			}
			return registry.AdaptDecomposer(d), nil
		}
	}
	if cfg.DefaultAlgorithm == "" {
		cfg.DefaultAlgorithm = registry.DefaultAlgorithm
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 256
	}
	if cfg.AppCacheSize == 0 {
		cfg.AppCacheSize = 256
	}
	if cfg.GraphStoreSize == 0 {
		cfg.GraphStoreSize = 128
	}
	if cfg.GraphStoreBudget == 0 {
		cfg.GraphStoreBudget = 1 << 28
	}
	if cfg.JobQueue == 0 {
		cfg.JobQueue = 64
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 2
	}
	if cfg.JobTTL == 0 {
		cfg.JobTTL = 15 * time.Minute
	}
	s := &Service{
		cfg:       cfg,
		runners:   newRunnerTable(cfg.NewRunner),
		cache:     newResultCache(cfg.CacheSize),
		graphs:    newGraphStore(cfg.GraphStoreSize, cfg.GraphStoreBudget),
		flight:    newFlightGroup[*Result](),
		appCache:  newLRU[cacheKey, *AppResult](cfg.AppCacheSize),
		appFlight: newFlightGroup[*AppResult](),
		stats:     newStatsTable(),
		start:     time.Now(),
	}
	if cfg.DataDir != "" {
		p, err := newPersistStore(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		s.persist = p
	}
	s.jobs = newJobManager(s, cfg.JobQueue, cfg.JobWorkers, cfg.JobTTL)
	return s, nil
}

// Close stops the job subsystem: queued jobs are marked canceled, running
// jobs have their contexts canceled, and the worker goroutines are joined.
// Synchronous requests are unaffected. Close is idempotent.
func (s *Service) Close() { s.jobs.close() }

// Request is one decomposition or carving request. Exactly one of Graph
// (inline) and Hash (previously uploaded, see PutGraph) must be set.
type Request struct {
	Graph *graph.Graph
	Hash  string
	// Algo is a registry name; empty means the service default.
	Algo string
	// Eps is the carving boundary parameter (carve requests only).
	Eps float64
	// Seed drives randomized constructions and is part of the cache key.
	Seed int64
	// Timeout, when positive, bounds this caller's wait for the result.
	// The shared computation itself stays bounded by Config.Timeout, so
	// one caller's aggressive deadline can never kill a flight other
	// callers are waiting on. Negative timeouts are rejected with
	// ErrInvalidRequest.
	Timeout time.Duration
}

// params resolves a request into the canonical registry.Params — the
// single source of defaults, validation, and cache identity. Malformed
// requests (NaN/Inf or out-of-range eps, negative timeout, unknown kind)
// fail with errors matching ErrInvalidRequest.
func (s *Service) params(kind registry.Kind, req *Request) (registry.Params, error) {
	if req == nil {
		return registry.Params{}, fmt.Errorf("%w: nil request", ErrInvalidRequest)
	}
	if req.Timeout < 0 {
		return registry.Params{}, fmt.Errorf("%w: negative timeout %v", ErrInvalidRequest, req.Timeout)
	}
	p := registry.Params{Algorithm: req.Algo, Kind: kind, Eps: req.Eps, Seed: req.Seed, Meter: true}
	if p.Algorithm == "" {
		p.Algorithm = s.cfg.DefaultAlgorithm
	}
	p = p.Normalized()
	if err := p.Validate(); err != nil {
		return registry.Params{}, fmt.Errorf("%w: %w", ErrInvalidRequest, err)
	}
	return p, nil
}

// Result is a served decomposition or carving. Payload pointers (Carving,
// Decomposition) may be shared with the cache and other callers — treat
// them as immutable.
type Result struct {
	// GraphHash is the content hash the result is cached under.
	GraphHash string
	// Kind is "carve" or "decompose".
	Kind string
	Algo string
	Eps  float64
	Seed int64

	Carving       *cluster.Carving
	Decomposition *cluster.Decomposition

	// Rounds is the simulated CONGEST cost of the underlying run.
	Rounds int64
	// Elapsed is the wall-clock compute time of the underlying run (not
	// of this request, which may have been served from cache).
	Elapsed time.Duration
	// CacheHit reports that the result came from the cache.
	CacheHit bool
	// Shared reports that the result was computed once by a concurrent
	// identical request and shared through the in-flight deduplicator.
	Shared bool
	// PeerHit reports that the result was fetched from a cluster peer's
	// cache instead of being recomputed (cluster mode only).
	PeerHit bool
	// Stages is the engine's per-phase timing breakdown of the underlying
	// computation. It is populated only on instrumented fresh computes
	// (see registry.Outcome.Stages) and is process-local: cached,
	// persisted, and peer-served results carry none, because they did not
	// run the phases.
	Stages []registry.StageTiming
}

// coversN reports whether the result's assignment covers exactly n
// nodes. This is the revalidation serve paths apply to memory-cache
// hits: a record admitted from a peer before its graph was locally
// resolvable (AdmitResult with an unknown node count) was only checked
// for internal consistency, and every other range check in decodeResult
// is relative to the assignment length — so once the graph is known,
// matching lengths re-establishes the full validation.
func (r *Result) coversN(n int) bool {
	switch {
	case r.Carving != nil:
		return len(r.Carving.Assign) == n
	case r.Decomposition != nil:
		return len(r.Decomposition.Assign) == n
	}
	return false
}

// Decompose serves a full network decomposition. (Eps is not a
// decomposition parameter; Params.Normalized zeroes it so the cache key
// stays canonical.)
func (s *Service) Decompose(ctx context.Context, req *Request) (*Result, error) {
	return s.do(ctx, registry.KindDecompose, req)
}

// Carve serves a ball carving with boundary parameter req.Eps.
func (s *Service) Carve(ctx context.Context, req *Request) (*Result, error) {
	return s.do(ctx, registry.KindCarve, req)
}

// PutGraph stores g in the graph store and returns its content hash, the
// identity later by-hash requests use. With a data directory configured,
// the graph is also spilled to a binary CSR snapshot so it survives both
// LRU eviction and process restarts.
func (s *Service) PutGraph(g *graph.Graph) string {
	hash := s.AdmitGraph(g)
	if h := s.cfg.Cluster.OnGraphStored; h != nil {
		h(hash, g)
	}
	return hash
}

// AdmitGraph stores g in the local tiers (memory, and disk when
// configured) exactly like PutGraph but without firing the cluster's
// OnGraphStored hook — the admission path for graph replicas arriving
// from peers, which must not be re-replicated onward.
func (s *Service) AdmitGraph(g *graph.Graph) string {
	hash := graphio.Hash(g)
	s.graphs.put(hash, g)
	if s.persist != nil {
		s.persist.saveGraph(hash, g)
	}
	return hash
}

// GetGraph returns the stored graph for a content hash, falling through
// to the disk tier (mmap snapshot load) on a memory miss.
func (s *Service) GetGraph(hash string) (*graph.Graph, bool) {
	if g, ok := s.graphs.get(hash); ok {
		return g, true
	}
	if s.persist != nil {
		if g, ok := s.persist.loadGraph(hash); ok {
			s.graphs.put(hash, g)
			return g, true
		}
	}
	return nil, false
}

// DefaultAlgorithm returns the algorithm used when requests name none.
func (s *Service) DefaultAlgorithm() string { return s.cfg.DefaultAlgorithm }

// CachedResult looks a result up in the local tiers only — memory LRU,
// then (when the graph is locally resolvable, so the record can be
// validated) the disk tier. It never computes and never asks a peer: this
// is the lookup a cluster peer performs on another shard's behalf, and it
// must not recurse into the network. paramsKey is the canonical
// Params.Key bytes.
func (s *Service) CachedResult(graphHash string, paramsKey string) (*Result, bool) {
	key := cacheKey{hash: graphHash, params: paramsKey}
	if res, ok := s.cache.get(key); ok {
		// A record admitted before its graph was locally resolvable
		// skipped the node-count check; once the graph is here, drop a
		// copy whose assignment doesn't cover it — falling through to
		// the (validated) disk tier — instead of serving it.
		if g, ok := s.GetGraph(graphHash); !ok || res.coversN(g.N()) {
			return res, true
		}
		s.cache.remove(key)
	}
	if s.persist == nil {
		return nil, false
	}
	g, ok := s.GetGraph(graphHash)
	if !ok {
		return nil, false
	}
	if res, ok := s.persist.loadResult(key, g.N()); ok {
		s.cache.put(key, res)
		return res, true
	}
	return nil, false
}

// AdmitResult decodes a peer-encoded result record (EncodeResultRecord)
// and admits it to the local tiers. When the graph is locally resolvable
// the record is validated against its node count and admitted to both
// memory and disk; otherwise only the record's internal consistency is
// checked, and the record is admitted to the memory tier only — serve
// paths re-check it against the graph once one arrives (Result.coversN),
// and the disk tier holds nothing but fully validated records.
// Undecodable or inconsistent records are rejected with
// ErrInvalidRequest.
func (s *Service) AdmitResult(graphHash string, paramsKey string, data []byte) error {
	if !validHash(graphHash) {
		return fmt.Errorf("%w: malformed graph hash %q", ErrInvalidRequest, graphHash)
	}
	n := -1
	if g, ok := s.GetGraph(graphHash); ok {
		n = g.N()
	}
	res, ok := DecodeResultRecord(data, graphHash, paramsKey, n)
	if !ok {
		return fmt.Errorf("%w: undecodable or inconsistent result record", ErrInvalidRequest)
	}
	key := cacheKey{hash: graphHash, params: paramsKey}
	s.cache.put(key, res)
	if s.persist != nil && n >= 0 {
		s.persist.saveResult(key, res)
	}
	return nil
}

// do is the shared request path: canonicalize to Params → resolve graph →
// cache → singleflight → backend.
func (s *Service) do(ctx context.Context, kind registry.Kind, req *Request) (*Result, error) {
	p, err := s.params(kind, req)
	if err != nil {
		return nil, err
	}
	// Validate the algorithm before creating its stats entry: the stats
	// table is keyed by caller-supplied strings and serialized into
	// /metrics, so unregistered names must never be admitted into it.
	runner, err := s.runners.get(p.Algorithm)
	if err != nil {
		return nil, err
	}
	st := s.stats.algo(p.Algorithm)
	st.requests.Add(1)

	g, hash, err := s.resolveGraph(req)
	if err != nil {
		st.errors.Add(1)
		return nil, err
	}

	key := cacheKey{hash: hash, params: p.Key()}
	lookup := time.Now()
	if res, ok := s.cache.get(key); ok && res.coversN(g.N()) {
		st.cacheHits.Add(1)
		obs.Span(ctx, "cache", lookup,
			slog.String("tier", "lru"), slog.String("algo", p.Algorithm), slog.String("kind", string(kind)))
		out := *res
		out.CacheHit = true
		out.Stages = nil // the phases ran for the original compute, not this request
		return &out, nil
	} else if ok {
		// A replica admitted before the graph arrived locally could not
		// be checked against the node count; now that it can and fails,
		// evict it and fall through to disk/peer/compute.
		s.cache.remove(key)
	}
	// Memory miss: with a data directory, a previous run (or a previous
	// process) may have spilled this exact (graph, Params) result. A disk
	// hit is re-admitted to the memory tier and served as a cache hit —
	// this is the path that makes a restarted server answer repeated
	// requests without recomputation.
	if s.persist != nil {
		if res, ok := s.persist.loadResult(key, g.N()); ok {
			st.cacheHits.Add(1)
			obs.Span(ctx, "cache", lookup,
				slog.String("tier", "disk"), slog.String("algo", p.Algorithm), slog.String("kind", string(kind)))
			s.cache.put(key, res)
			out := *res
			out.CacheHit = true
			return &out, nil
		}
	}
	st.cacheMisses.Add(1)

	// The computation itself runs on the flight's detached context (so one
	// caller abandoning a shared flight cannot poison it); the service
	// timeout bounds that detached context. A request's own Timeout
	// bounds only this caller's wait — a concurrent identical request
	// sharing the flight is never killed by someone else's deadline.
	if req.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Timeout)
		defer cancel()
	}
	res, err, shared := s.flight.do(ctx, key, func(runCtx context.Context) (*Result, error) {
		// The flight deliberately detaches from the caller's cancellation
		// (context.WithoutCancel); the caller's trace and collector must
		// survive the detach for the peer/compute spans to keep flowing.
		runCtx = obs.Transfer(runCtx, ctx)
		if s.cfg.Timeout > 0 {
			var cancel context.CancelFunc
			runCtx, cancel = context.WithTimeout(runCtx, s.cfg.Timeout)
			defer cancel()
		}
		// Full local miss. In a cluster the owning peer may hold this
		// exact result — a network hop instead of a recompute. A peer hit
		// is admitted to the local tiers like a disk hit would be.
		if pl := s.cfg.Cluster.PeerLookup; pl != nil {
			peerStart := time.Now()
			if out, ok := pl(runCtx, hash, key.params, g.N()); ok && out != nil {
				st.peerHits.Add(1)
				obs.Span(runCtx, "cache", peerStart,
					slog.String("tier", "peer"), slog.String("algo", p.Algorithm), slog.String("kind", string(kind)))
				s.cache.put(key, out)
				if s.persist != nil {
					s.persist.saveResult(key, out)
				}
				served := *out
				served.PeerHit = true
				return &served, nil
			}
		}
		out, err := s.compute(runCtx, runner, g, hash, p)
		if err != nil {
			return nil, err
		}
		st.recordLatency(out.Elapsed)
		obs.ObserveAlgorithm(runCtx, p.Algorithm, out.Elapsed)
		for _, stage := range out.Stages {
			obs.SpanDuration(runCtx, stage.Name, stage.Elapsed,
				slog.String("scope", "engine"), slog.String("algo", p.Algorithm))
		}
		obs.SpanDuration(runCtx, "compute", out.Elapsed,
			slog.String("tier", "compute"), slog.String("algo", p.Algorithm), slog.String("kind", string(kind)))
		s.cache.put(key, out)
		if s.persist != nil {
			s.persist.saveResult(key, out)
		}
		if h := s.cfg.Cluster.OnResultComputed; h != nil {
			h(hash, key.params, out)
		}
		return out, nil
	})
	if shared {
		st.dedupShared.Add(1)
	}
	if err != nil {
		// Counted per failed request — leader, followers, and abandoned
		// waiters alike — so Errors matches its "failed requests" contract.
		st.errors.Add(1)
		return nil, err
	}
	if shared {
		out := *res
		out.Shared = true
		return &out, nil
	}
	return res, nil
}

// compute runs the canonical Params on the backend and packages the
// result.
func (s *Service) compute(ctx context.Context, runner Runner, g *graph.Graph, hash string, p registry.Params) (*Result, error) {
	start := time.Now()
	o, err := runner.Run(ctx, g, p)
	if err != nil {
		return nil, err
	}
	return &Result{
		GraphHash:     hash,
		Kind:          string(p.Kind),
		Algo:          p.Algorithm,
		Eps:           p.Eps,
		Seed:          p.Seed,
		Carving:       o.Carving,
		Decomposition: o.Decomposition,
		Rounds:        o.Rounds,
		Elapsed:       time.Since(start),
		Stages:        o.Stages,
	}, nil
}

// resolveGraph turns a request into a (graph, content hash) pair. Inline
// graphs are hashed and retained in the store, so a caller can switch to
// by-hash requests without a separate upload.
func (s *Service) resolveGraph(req *Request) (*graph.Graph, string, error) {
	switch {
	case req.Graph != nil && req.Hash != "":
		return nil, "", fmt.Errorf("%w: provide an inline graph or a hash, not both", ErrInvalidRequest)
	case req.Graph != nil:
		return req.Graph, s.PutGraph(req.Graph), nil
	case req.Hash != "":
		g, ok := s.GetGraph(req.Hash) // memory tier, then disk tier
		if !ok {
			return nil, "", fmt.Errorf("%w: %q", ErrUnknownGraph, req.Hash)
		}
		return g, req.Hash, nil
	default:
		return nil, "", fmt.Errorf("%w: request carries no graph and no hash", ErrInvalidRequest)
	}
}
