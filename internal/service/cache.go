package service

import (
	"container/list"
	"sync"

	"strongdecomp/internal/graph"
)

// cacheKey is the content-addressed identity of a request: the graph
// content hash plus the canonical byte encoding of the normalized
// registry.Params (Params.Key) — one encoding rule for every layer, so
// equivalent requests arriving through the facade, the HTTP API, or the
// job queue all land on the same cache line.
type cacheKey struct {
	hash   string
	params string
}

// lru is a minimal mutex-guarded LRU map used by both the result cache and
// the graph store. A max of <= 0 disables it (every get misses). An
// optional weight function adds a total-weight bound on top of the entry
// bound, so a few huge values cannot pin unbounded memory behind a small
// entry count.
type lru[K comparable, V any] struct {
	mu        sync.Mutex
	max       int
	maxWeight int         // 0: entries are unweighted
	weight    func(V) int // required when maxWeight > 0
	total     int         // current total weight
	order     *list.List  // front = most recent; values are *lruEntry[K, V]
	items     map[K]*list.Element
}

type lruEntry[K comparable, V any] struct {
	key    K
	val    V
	weight int
}

func newLRU[K comparable, V any](max int) *lru[K, V] {
	return &lru[K, V]{max: max, order: list.New(), items: make(map[K]*list.Element)}
}

func newWeightedLRU[K comparable, V any](max, maxWeight int, weight func(V) int) *lru[K, V] {
	c := newLRU[K, V](max)
	c.maxWeight, c.weight = maxWeight, weight
	return c
}

func (c *lru[K, V]) get(key K) (V, bool) {
	var zero V
	if c.max <= 0 {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return zero, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry[K, V]).val, true
}

func (c *lru[K, V]) put(key K, val V) {
	if c.max <= 0 {
		return
	}
	w := 0
	if c.weight != nil {
		w = c.weight(val)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*lruEntry[K, V])
		c.total += w - e.weight
		e.val, e.weight = val, w
		c.order.MoveToFront(el)
	} else {
		c.items[key] = c.order.PushFront(&lruEntry[K, V]{key: key, val: val, weight: w})
		c.total += w
	}
	over := func() bool {
		return len(c.items) > c.max || (c.maxWeight > 0 && c.total > c.maxWeight)
	}
	for len(c.items) > 1 && over() {
		c.evictOldest()
	}
	if over() {
		// The sole resident entry alone exceeds the budget: don't retain.
		c.evictOldest()
	}
}

// remove drops key from the cache if present.
func (c *lru[K, V]) remove(key K) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return
	}
	e := el.Value.(*lruEntry[K, V])
	c.order.Remove(el)
	delete(c.items, e.key)
	c.total -= e.weight
}

// evictOldest removes the least-recently-used entry; caller holds mu.
func (c *lru[K, V]) evictOldest() {
	oldest := c.order.Back()
	if oldest == nil {
		return
	}
	e := oldest.Value.(*lruEntry[K, V])
	c.order.Remove(oldest)
	delete(c.items, e.key)
	c.total -= e.weight
}

func (c *lru[K, V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// resultCache is the LRU over computed results.
type resultCache struct{ *lru[cacheKey, *Result] }

func newResultCache(max int) *resultCache { return &resultCache{newLRU[cacheKey, *Result](max)} }

// graphStore is the LRU over uploaded graphs, keyed by content hash.
// Storing the same graph twice is a no-op refresh (identical hash, and any
// value for a hash is by construction the same graph). Besides the entry
// bound it enforces a total size budget in bytes — each entry weighted by
// the real resident footprint of its CSR arrays (graph.MemoryFootprint),
// not abstract node+edge units — so tiny requests declaring huge node
// counts cannot pin gigabytes behind a small entry count; a graph too
// large for the whole budget is simply not retained (requests carrying it
// inline still compute).
type graphStore struct{ *lru[string, *graph.Graph] }

func newGraphStore(max, budget int) *graphStore {
	return &graphStore{newWeightedLRU[string](max, budget, (*graph.Graph).MemoryFootprint)}
}

// runnerTable lazily builds and caches one Runner per algorithm name, so a
// pooled backend (an Engine) is shared by every request for that
// algorithm.
type runnerTable struct {
	mu      sync.Mutex
	build   func(algo string) (Runner, error)
	runners map[string]Runner
}

func newRunnerTable(build func(algo string) (Runner, error)) *runnerTable {
	return &runnerTable{build: build, runners: make(map[string]Runner)}
}

func (t *runnerTable) get(algo string) (Runner, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if r, ok := t.runners[algo]; ok {
		return r, nil
	}
	r, err := t.build(algo)
	if err != nil {
		return nil, err
	}
	t.runners[algo] = r
	return r, nil
}
