package service

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"strongdecomp/internal/apps"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/graphio"
)

// TestServiceAppAmortization is the acceptance check of the applications
// tier: running mis and then coloring over the same graph resolves the
// underlying decomposition exactly once — the second app rides the
// decomposition cache — and a repeated app request is an app-cache hit
// that recomputes nothing.
func TestServiceAppAmortization(t *testing.T) {
	algo, count := registerStub(t, nil)
	s, _ := New(Config{})
	g := graph.Grid(6, 6)
	ctx := context.Background()

	mis, err := s.RunApp(ctx, AppMIS, &Request{Graph: g, Algo: algo, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if mis.CacheHit || mis.Shared {
		t.Fatalf("first app request flagged CacheHit=%v Shared=%v", mis.CacheHit, mis.Shared)
	}
	if mis.DecompCacheHit {
		t.Fatal("first app request cannot have found a cached decomposition")
	}
	if len(mis.InMIS) != g.N() {
		t.Fatalf("MIS vector covers %d of %d nodes", len(mis.InMIS), g.N())
	}
	if got := count.Load(); got != 1 {
		t.Fatalf("decomposition computed %d times after mis, want 1", got)
	}

	col, err := s.RunApp(ctx, AppColoring, &Request{Hash: mis.GraphHash, Algo: algo, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if col.CacheHit {
		t.Fatal("a different app over the same graph must not hit the app cache")
	}
	if !col.DecompCacheHit {
		t.Fatal("coloring did not reuse the cached decomposition")
	}
	if got := count.Load(); got != 1 {
		t.Fatalf("decomposition computed %d times after mis+coloring, want exactly 1", got)
	}
	if col.PaletteSize != g.MaxDegree()+1 {
		t.Fatalf("palette %d, want Δ+1 = %d", col.PaletteSize, g.MaxDegree()+1)
	}
	if col.ScheduleCost <= 0 {
		t.Fatalf("ScheduleCost = %d, want positive", col.ScheduleCost)
	}
	// The exported cost is exactly apps.ScheduleCost of the decomposition
	// the answer was computed over.
	dres, err := s.Decompose(ctx, &Request{Hash: mis.GraphHash, Algo: algo, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if want := apps.ScheduleCost(g, dres.Decomposition); col.ScheduleCost != want || mis.ScheduleCost != want {
		t.Fatalf("ScheduleCost %d/%d, want %d", mis.ScheduleCost, col.ScheduleCost, want)
	}

	again, err := s.RunApp(ctx, AppMIS, &Request{Hash: mis.GraphHash, Algo: algo, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatal("identical repeat app request not served from the app cache")
	}
	if got := count.Load(); got != 1 {
		t.Fatalf("repeat app request recomputed the decomposition (%d runs)", got)
	}

	st := s.Stats()
	m := st.Apps[AppMIS]
	if m.Requests != 2 || m.CacheHits != 1 || m.CacheMisses != 1 || m.Computes != 1 {
		t.Fatalf("mis stats = %+v, want requests 2, hits 1, misses 1, computes 1", m)
	}
	if c := st.Apps[AppColoring]; c.Requests != 1 || c.Computes != 1 {
		t.Fatalf("coloring stats = %+v", c)
	}
}

// TestServiceAppUnknown checks the roster gate and its error identity.
func TestServiceAppUnknown(t *testing.T) {
	algo, _ := registerStub(t, nil)
	s, _ := New(Config{})
	_, err := s.RunApp(context.Background(), "pagerank", &Request{Graph: graph.Cycle(4), Algo: algo})
	if !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("err = %v, want ErrUnknownApp", err)
	}
	if _, err := s.RunApp(context.Background(), AppMIS, &Request{Hash: "feed", Algo: algo}); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("err = %v, want ErrUnknownGraph", err)
	}
}

// TestServiceAppRestartPersistence proves app answers survive a process
// restart: a second service on the same data directory serves the app
// record from disk without touching the decomposition backend.
func TestServiceAppRestartPersistence(t *testing.T) {
	algo, count := registerStub(t, nil)
	dir := t.TempDir()
	g := graph.Grid(5, 5)
	hash := graphio.Hash(g)

	s1, err := New(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s1.RunApp(context.Background(), AppDiameter, &Request{Graph: g, Algo: algo, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if first.Diameter != 8 {
		t.Fatalf("grid-5x5 2-sweep diameter = %d, want 8", first.Diameter)
	}
	if got := count.Load(); got != 1 {
		t.Fatalf("backend ran %d times, want 1", got)
	}
	s1.Close()

	s2, err := New(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	res, err := s2.RunApp(context.Background(), AppDiameter, &Request{Hash: hash, Algo: algo, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("restarted service did not serve the app record from disk")
	}
	if res.Diameter != first.Diameter || res.ScheduleCost != first.ScheduleCost {
		t.Fatalf("persisted answer drifted: %+v vs %+v", res, first)
	}
	if got := count.Load(); got != 1 {
		t.Fatalf("restart recomputed the decomposition (%d backend runs)", got)
	}
	if st := s2.Stats(); st.Persist == nil || st.Persist.AppDiskHits != 1 {
		t.Fatalf("persist stats missing the app disk hit: %+v", st.Persist)
	}
}

// TestServiceAppStrictQuarantine tampers a persisted app record into a
// shape-valid but semantically wrong answer (an empty "MIS" on a graph
// with nodes, which VerifyMIS rejects as non-maximal) and checks a
// strict service quarantines it and serves a verified recomputation.
func TestServiceAppStrictQuarantine(t *testing.T) {
	algo, count := registerStub(t, nil)
	dir := t.TempDir()
	g := graph.Path(6)
	ctx := context.Background()

	s1, err := New(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s1.RunApp(ctx, AppMIS, &Request{Graph: g, Algo: algo, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if first.Verified {
		t.Fatal("non-strict service must not claim verification")
	}
	s1.Close()

	// Tamper the one persisted app record: keep every identity field so it
	// decodes cleanly, but blank the membership vector.
	recs, err := filepath.Glob(filepath.Join(dir, "apps", "*.json"))
	if err != nil || len(recs) != 1 {
		t.Fatalf("app records on disk = %v (err %v), want exactly 1", recs, err)
	}
	data, err := os.ReadFile(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	var rec map[string]any
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	rec["in_mis"] = make([]bool, g.N())
	data, err = json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(recs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{DataDir: dir, StrictApps: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	res, err := s2.RunApp(ctx, AppMIS, &Request{Hash: graphio.Hash(g), Algo: algo, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("tampered record served as a cache hit")
	}
	if !res.Verified {
		t.Fatal("strict recomputation not flagged Verified")
	}
	if trues(res.InMIS) == 0 {
		t.Fatal("recomputed MIS is empty")
	}
	// The app recomputes, but the decomposition under it rides the disk
	// tier — the backend never runs again even on the recovery path.
	if !res.DecompCacheHit {
		t.Fatal("strict recomputation did not reuse the persisted decomposition")
	}
	if got := count.Load(); got != 1 {
		t.Fatalf("backend ran %d times, want 1 (decomposition persisted)", got)
	}
	quarantined, _ := filepath.Glob(filepath.Join(dir, "apps", "*.corrupt"))
	if len(quarantined) != 1 {
		t.Fatalf("tampered record not quarantined: %v", quarantined)
	}
	// The recomputed record replaced the quarantined one on disk.
	fresh, _ := filepath.Glob(filepath.Join(dir, "apps", "*.json"))
	if len(fresh) != 1 || strings.HasSuffix(fresh[0], ".corrupt") {
		t.Fatalf("recomputed record missing from disk: %v", fresh)
	}
}

// trues counts set entries of a bool vector.
func trues(v []bool) int {
	n := 0
	for _, b := range v {
		if b {
			n++
		}
	}
	return n
}
