package service

import (
	"sync"
	"sync/atomic"
	"time"
)

// algoStats is the live per-algorithm counter block; mutated with atomics
// on the request path, snapshotted by Stats.
type algoStats struct {
	requests     atomic.Int64
	errors       atomic.Int64
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	dedupShared  atomic.Int64
	peerHits     atomic.Int64
	computes     atomic.Int64
	latencyNS    atomic.Int64
	latencyMaxNS atomic.Int64
}

// recordLatency folds one completed computation into the block.
func (a *algoStats) recordLatency(d time.Duration) {
	a.computes.Add(1)
	a.latencyNS.Add(int64(d))
	for {
		m := a.latencyMaxNS.Load()
		if int64(d) <= m || a.latencyMaxNS.CompareAndSwap(m, int64(d)) {
			return
		}
	}
}

// statsTable lazily allocates one counter block per algorithm name, and
// one per served application name (the two namespaces are disjoint: app
// names are a fixed enum, algorithm names come from the registry).
type statsTable struct {
	mu    sync.Mutex
	algos map[string]*algoStats
	apps  map[string]*algoStats
}

func newStatsTable() *statsTable {
	return &statsTable{
		algos: make(map[string]*algoStats),
		apps:  make(map[string]*algoStats),
	}
}

func (t *statsTable) algo(name string) *algoStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.algos[name]
	if !ok {
		st = &algoStats{}
		t.algos[name] = st
	}
	return st
}

// app returns the counter block of a served application. Application
// blocks reuse the algoStats layout: an app "compute" is one run of the
// application itself (the underlying decomposition's compute is counted
// by its own algorithm block), and PeerHits stays zero — app answers are
// never fetched from peers, only their decompositions are.
func (t *statsTable) app(name string) *algoStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.apps[name]
	if !ok {
		st = &algoStats{}
		t.apps[name] = st
	}
	return st
}

// AlgoStats is a point-in-time snapshot of one algorithm's serving
// counters.
type AlgoStats struct {
	// Requests counts every request naming this algorithm, however it was
	// answered.
	Requests int64 `json:"requests"`
	// Errors counts failed requests (validation, unknown graph, canceled
	// or failed computations).
	Errors int64 `json:"errors"`
	// CacheHits / CacheMisses split the requests that reached the result
	// cache.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// DedupShared counts requests answered by joining another request's
	// in-flight computation instead of starting their own.
	DedupShared int64 `json:"dedup_shared"`
	// PeerHits counts misses answered from a cluster peer's cache instead
	// of a recompute (always 0 outside cluster mode).
	PeerHits int64 `json:"peer_hits"`
	// Computes counts completed backend computations (the misses that ran
	// to success).
	Computes int64 `json:"computes"`
	// Latency aggregates over completed computations.
	LatencyTotal time.Duration `json:"latency_total_ns"`
	LatencyMax   time.Duration `json:"latency_max_ns"`
	LatencyMean  time.Duration `json:"latency_mean_ns"`
	// LatencyMeanSeconds is the mean computed in float seconds — the form
	// the Prometheus export consumes. The integer LatencyMean above
	// truncates toward zero at nanosecond granularity (total/computes in
	// integer division) and survives for JSON compatibility only.
	LatencyMeanSeconds float64 `json:"latency_mean_seconds"`
}

// Stats is a Service-wide snapshot: totals, cache occupancy, per-algorithm
// blocks, and (when configured) backend counters.
type Stats struct {
	Uptime        time.Duration        `json:"uptime_ns"`
	Requests      int64                `json:"requests"`
	Errors        int64                `json:"errors"`
	CacheHits     int64                `json:"cache_hits"`
	CacheMisses   int64                `json:"cache_misses"`
	DedupShared   int64                `json:"dedup_shared"`
	PeerHits      int64                `json:"peer_hits"`
	CachedResults int                  `json:"cached_results"`
	StoredGraphs  int                  `json:"stored_graphs"`
	Jobs          JobStats             `json:"jobs"`
	Algorithms    map[string]AlgoStats `json:"algorithms"`
	// Apps holds the per-application serving counters (POST
	// /v2/apps/{app}). App requests are counted here, not in the top-level
	// totals — the decompositions they resolve already count under their
	// algorithm — so adding an app tier never perturbs existing dashboards.
	Apps   map[string]AlgoStats `json:"apps,omitempty"`
	Runner map[string]int64     `json:"runner,omitempty"`
	// Persist is the disk-tier block; nil when the service runs without a
	// data directory.
	Persist *PersistStats `json:"persist,omitempty"`
}

// JobStats is the async-job block of a Stats snapshot.
type JobStats struct {
	// Submitted counts accepted Submit calls over the service lifetime.
	Submitted int64 `json:"submitted"`
	// Completed / Failed / Canceled partition the settled jobs.
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	// Queued and Running are point-in-time gauges.
	Queued  int `json:"queued"`
	Running int `json:"running"`
	// Retained counts jobs (any state) currently addressable by ID.
	Retained int `json:"retained"`
}

// snapshot copies one live counter block into its wire form. Counters
// are read atomically but individually, so cross-counter sums may be off
// by in-flight requests.
func (a *algoStats) snapshot() AlgoStats {
	out := AlgoStats{
		Requests:     a.requests.Load(),
		Errors:       a.errors.Load(),
		CacheHits:    a.cacheHits.Load(),
		CacheMisses:  a.cacheMisses.Load(),
		DedupShared:  a.dedupShared.Load(),
		PeerHits:     a.peerHits.Load(),
		Computes:     a.computes.Load(),
		LatencyTotal: time.Duration(a.latencyNS.Load()),
		LatencyMax:   time.Duration(a.latencyMaxNS.Load()),
	}
	if out.Computes > 0 {
		out.LatencyMean = out.LatencyTotal / time.Duration(out.Computes)
		out.LatencyMeanSeconds = out.LatencyTotal.Seconds() / float64(out.Computes)
	}
	return out
}

// Stats snapshots the service counters. Counters are read atomically but
// individually, so cross-counter sums may be off by in-flight requests.
func (s *Service) Stats() Stats {
	out := Stats{
		Uptime:        time.Since(s.start),
		CachedResults: s.cache.len(),
		StoredGraphs:  s.graphs.len(),
		Algorithms:    make(map[string]AlgoStats),
	}
	s.stats.mu.Lock()
	names := make([]string, 0, len(s.stats.algos))
	blocks := make([]*algoStats, 0, len(s.stats.algos))
	for name, st := range s.stats.algos {
		names = append(names, name)
		blocks = append(blocks, st)
	}
	appNames := make([]string, 0, len(s.stats.apps))
	appBlocks := make([]*algoStats, 0, len(s.stats.apps))
	for name, st := range s.stats.apps {
		appNames = append(appNames, name)
		appBlocks = append(appBlocks, st)
	}
	s.stats.mu.Unlock()
	for i, name := range names {
		a := blocks[i].snapshot()
		out.Algorithms[name] = a
		out.Requests += a.Requests
		out.Errors += a.Errors
		out.CacheHits += a.CacheHits
		out.CacheMisses += a.CacheMisses
		out.DedupShared += a.DedupShared
		out.PeerHits += a.PeerHits
	}
	if len(appNames) > 0 {
		out.Apps = make(map[string]AlgoStats, len(appNames))
		for i, name := range appNames {
			out.Apps[name] = appBlocks[i].snapshot()
		}
	}
	sub, comp, failed, canc, queued, running, retained := s.jobs.counts()
	out.Jobs = JobStats{
		Submitted: sub, Completed: comp, Failed: failed, Canceled: canc,
		Queued: queued, Running: running, Retained: retained,
	}
	if s.cfg.RunnerStats != nil {
		out.Runner = s.cfg.RunnerStats()
	}
	if s.persist != nil {
		out.Persist = s.persist.snapshot()
	}
	return out
}
