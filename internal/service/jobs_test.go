package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/registry"
)

// registerGatedStub registers a decomposer whose Decompose blocks until
// the gate closes (or the context dies), signalling on started each time
// a computation begins.
func registerGatedStub(t *testing.T, gate, started chan struct{}) string {
	t.Helper()
	name := fmt.Sprintf("job-stub-%s", t.Name())
	err := registry.Register(name, func() registry.Decomposer {
		return registry.Funcs{
			Meta: registry.Info{Name: name, Model: "deterministic", Diameter: "strong"},
			DecomposeFunc: func(ctx context.Context, g *graph.Graph, opts registry.RunOptions) (*cluster.Decomposition, error) {
				if started != nil {
					started <- struct{}{}
				}
				if gate != nil {
					select {
					case <-gate:
					case <-ctx.Done():
						return nil, registry.CtxErr(ctx)
					}
				}
				return &cluster.Decomposition{Assign: make([]int, g.N()), Color: []int{0}, K: 1, Colors: 1}, nil
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { registry.Unregister(name) })
	return name
}

// waitForJob polls until the job reaches a state accepted by ok.
func waitForJob(t *testing.T, s *Service, id string, ok func(*Job) bool) *Job {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		j, err := s.Job(id)
		if err != nil {
			t.Fatalf("Job(%s): %v", id, err)
		}
		if ok(j) {
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	j, _ := s.Job(id)
	t.Fatalf("job %s never reached the wanted state; last: %+v", id, j)
	return nil
}

func TestJobLifecycleDone(t *testing.T) {
	algo := registerGatedStub(t, nil, nil)
	s, _ := New(Config{})
	defer s.Close()
	g := graph.Cycle(8)

	id, err := s.Submit(registry.KindDecompose, &Request{Graph: g, Algo: algo, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	j := waitForJob(t, s, id, func(j *Job) bool { return j.State.Terminal() })
	if j.State != JobDone {
		t.Fatalf("state = %s (%s), want done", j.State, j.Error)
	}
	if j.Result == nil || j.Result.Decomposition == nil {
		t.Fatal("done job carries no result")
	}
	if j.Kind != "decompose" || j.Algo != algo {
		t.Fatalf("snapshot params wrong: %+v", j)
	}
	if j.SubmittedAt.IsZero() || j.StartedAt.IsZero() || j.FinishedAt.IsZero() {
		t.Fatalf("timestamps missing: %+v", j)
	}
	// The async path shares the synchronous cache: an identical
	// synchronous request is a hit.
	res, err := s.Decompose(context.Background(), &Request{Graph: g, Algo: algo, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("job result did not populate the shared cache")
	}
}

func TestJobCancelWhileQueued(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	started := make(chan struct{}, 16)
	algo := registerGatedStub(t, gate, started)
	// One worker: the first job occupies it, the second stays queued.
	s, _ := New(Config{JobWorkers: 1})
	defer s.Close()

	blocker, err := s.Submit(registry.KindDecompose, &Request{Graph: graph.Cycle(6), Algo: algo})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the blocker is running; the queue is stalled behind it

	queued, err := s.Submit(registry.KindDecompose, &Request{Graph: graph.Cycle(10), Algo: algo})
	if err != nil {
		t.Fatal(err)
	}
	if j, _ := s.Job(queued); j.State != JobQueued {
		t.Fatalf("second job state = %s, want queued", j.State)
	}
	j, err := s.CancelJob(queued)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != JobCanceled {
		t.Fatalf("canceled queued job state = %s", j.State)
	}
	if !j.StartedAt.IsZero() {
		t.Fatal("canceled-while-queued job claims to have started")
	}
	// The worker must skip the canceled job without running it: unblock
	// the first job and check the stub ran exactly once.
	_ = blocker
}

func TestJobCancelMidRun(t *testing.T) {
	gate := make(chan struct{}) // never closed: only cancellation ends the run
	started := make(chan struct{}, 1)
	algo := registerGatedStub(t, gate, started)
	s, _ := New(Config{})
	defer s.Close()

	id, err := s.Submit(registry.KindDecompose, &Request{Graph: graph.Cycle(6), Algo: algo})
	if err != nil {
		t.Fatal(err)
	}
	<-started // mid-run

	j, err := s.CancelJob(id)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != JobRunning && j.State != JobCanceled {
		t.Fatalf("state right after cancel = %s", j.State)
	}
	j = waitForJob(t, s, id, func(j *Job) bool { return j.State.Terminal() })
	if j.State != JobCanceled {
		t.Fatalf("final state = %s (%s), want canceled", j.State, j.Error)
	}
	// ErrCanceled propagated from the algorithm main loop into the job's
	// error message.
	if !strings.Contains(j.Error, registry.ErrCanceled.Error()) {
		t.Fatalf("job error %q does not carry ErrCanceled", j.Error)
	}
	// Canceling a terminal job is a stable no-op.
	again, err := s.CancelJob(id)
	if err != nil || again.State != JobCanceled {
		t.Fatalf("re-cancel: %+v, %v", again, err)
	}
}

func TestJobRetentionExpiry(t *testing.T) {
	algo := registerGatedStub(t, nil, nil)
	s, _ := New(Config{JobTTL: 30 * time.Millisecond})
	defer s.Close()

	id, err := s.Submit(registry.KindDecompose, &Request{Graph: graph.Cycle(6), Algo: algo})
	if err != nil {
		t.Fatal(err)
	}
	waitForJob(t, s, id, func(j *Job) bool { return j.State == JobDone })

	time.Sleep(60 * time.Millisecond)
	if _, err := s.Job(id); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("expired job lookup err = %v, want ErrUnknownJob", err)
	}
	if st := s.Stats().Jobs; st.Retained != 0 {
		t.Fatalf("Retained = %d after expiry", st.Retained)
	}
}

func TestJobQueueFullBackpressure(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	started := make(chan struct{}, 1)
	algo := registerGatedStub(t, gate, started)
	s, _ := New(Config{JobWorkers: 1, JobQueue: 2})
	defer s.Close()
	g := graph.Cycle(6)

	// Fill: one running (drained from the queue) + two queued.
	if _, err := s.Submit(registry.KindDecompose, &Request{Graph: g, Algo: algo, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	<-started
	for seed := int64(2); seed <= 3; seed++ {
		if _, err := s.Submit(registry.KindDecompose, &Request{Graph: g, Algo: algo, Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := s.Submit(registry.KindDecompose, &Request{Graph: g, Algo: algo, Seed: 4})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull submit err = %v, want ErrQueueFull", err)
	}
	if st := s.Stats().Jobs; st.Submitted != 3 {
		t.Fatalf("Submitted = %d, want 3 (rejected submits are not counted)", st.Submitted)
	}
}

func TestJobSubmitValidation(t *testing.T) {
	algo := registerGatedStub(t, nil, nil)
	s, _ := New(Config{})
	defer s.Close()
	g := graph.Cycle(4)

	cases := []struct {
		name string
		kind registry.Kind
		req  *Request
		want error
	}{
		{"nil request", registry.KindDecompose, nil, ErrInvalidRequest},
		{"no graph", registry.KindDecompose, &Request{Algo: algo}, ErrInvalidRequest},
		{"NaN eps", registry.KindCarve, &Request{Graph: g, Algo: algo, Eps: math.NaN()}, ErrInvalidRequest},
		{"negative timeout", registry.KindDecompose, &Request{Graph: g, Algo: algo, Timeout: -time.Second}, ErrInvalidRequest},
		{"unknown algorithm", registry.KindDecompose, &Request{Graph: g, Algo: "no-such"}, registry.ErrUnknownAlgorithm},
	}
	for _, tc := range cases {
		if _, err := s.Submit(tc.kind, tc.req); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	if st := s.Stats().Jobs; st.Submitted != 0 {
		t.Fatalf("invalid submits were counted: %d", st.Submitted)
	}
}

func TestJobUnknownID(t *testing.T) {
	s, _ := New(Config{})
	defer s.Close()
	if _, err := s.Job("jdeadbeef"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Job err = %v", err)
	}
	if _, err := s.CancelJob("jdeadbeef"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("CancelJob err = %v", err)
	}
}

func TestServiceCloseSettlesJobs(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	started := make(chan struct{}, 1)
	algo := registerGatedStub(t, gate, started)
	s, _ := New(Config{JobWorkers: 1, JobQueue: 4})
	g := graph.Cycle(6)

	running, err := s.Submit(registry.KindDecompose, &Request{Graph: g, Algo: algo, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := s.Submit(registry.KindDecompose, &Request{Graph: g, Algo: algo, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	s.Close() // joins workers: both jobs must be settled afterwards

	for _, id := range []string{running, queued} {
		j, err := s.Job(id)
		if err != nil {
			t.Fatalf("Job(%s) after close: %v", id, err)
		}
		// Shutdown settles both as canceled — never failed: the job did
		// not err, the service stopped.
		if j.State != JobCanceled {
			t.Fatalf("job %s settled as %s after Close, want canceled", id, j.State)
		}
	}
	if st := s.Stats().Jobs; st.Failed != 0 || st.Canceled != 2 {
		t.Fatalf("close counted failed=%d canceled=%d, want 0/2", st.Failed, st.Canceled)
	}
	// Close is idempotent and Submit after Close fails fast.
	s.Close()
	if _, err := s.Submit(registry.KindDecompose, &Request{Graph: g, Algo: algo}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit after close err = %v", err)
	}
}

// TestDrainJobs pins the graceful-shutdown contract: DrainJobs waits for
// queued and running jobs to finish, new submissions are refused while
// draining, and the drain returns once the last job lands.
func TestDrainJobs(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 4)
	algo := registerGatedStub(t, gate, started)
	s, _ := New(Config{})
	defer s.Close()
	g := graph.Cycle(8)

	id, err := s.Submit(registry.KindDecompose, &Request{Graph: g, Algo: algo, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the job is mid-computation, blocked on the gate

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.DrainJobs(ctx)
	}()

	// Submissions during the drain are refused with the backpressure
	// error, exactly like a full queue.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := s.Submit(registry.KindDecompose, &Request{Graph: g, Algo: algo, Seed: 2})
		if errors.Is(err, ErrQueueFull) {
			break
		}
		if err != nil {
			t.Fatalf("submit during drain: %v, want ErrQueueFull", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("submissions kept being accepted after DrainJobs began")
		}
		time.Sleep(2 * time.Millisecond)
	}

	select {
	case err := <-drained:
		t.Fatalf("drain returned %v while a job was still running", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(gate) // let the running job finish
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	j, err := s.Job(id)
	if err != nil || !j.State.Terminal() {
		t.Fatalf("job after drain: %+v, %v", j, err)
	}
}

// TestDrainJobsDeadline: a drain whose jobs never finish gives up with
// the context's error instead of hanging shutdown forever.
func TestDrainJobsDeadline(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	started := make(chan struct{}, 1)
	algo := registerGatedStub(t, gate, started)
	s, _ := New(Config{})
	defer s.Close()

	if _, err := s.Submit(registry.KindDecompose, &Request{Graph: graph.Cycle(6), Algo: algo}); err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.DrainJobs(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain past deadline: %v, want DeadlineExceeded", err)
	}
}
