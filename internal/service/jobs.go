package service

// Async job subsystem: Submit enqueues a request onto a bounded queue and
// returns a job ID immediately; worker goroutines drain the queue through
// the same cached/deduplicated request path as the synchronous API. Jobs
// move queued → running → done|failed|canceled, can be canceled by ID at
// any point before a terminal state (mid-run cancellation propagates
// through context as registry.ErrCanceled), and finished jobs are
// retained for a TTL so results can be fetched, then purged.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"strongdecomp/internal/registry"
)

// Typed errors of the job subsystem.
var (
	// ErrQueueFull is returned by Submit when the bounded job queue is at
	// capacity — the backpressure signal HTTP maps to 429.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrUnknownJob is returned for IDs that never existed or whose
	// retention TTL has expired.
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrJobNotDone is returned when fetching the result of a job that
	// has not (or not successfully) finished.
	ErrJobNotDone = errors.New("service: job not done")
)

// JobState is the lifecycle state of an async job.
type JobState string

// The job lifecycle: queued → running → done | failed | canceled. A
// queued job may also go straight to canceled.
const (
	JobQueued   JobState = "queued"   // accepted, waiting for a worker
	JobRunning  JobState = "running"  // executing on a worker
	JobDone     JobState = "done"     // finished; result retrievable until TTL
	JobFailed   JobState = "failed"   // computation errored; Error holds why
	JobCanceled JobState = "canceled" // canceled before or during execution
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// Job is a point-in-time snapshot of an async job.
type Job struct {
	ID string `json:"id"`
	// Kind and Algo echo the canonical params the job runs under.
	Kind  string   `json:"kind"`
	Algo  string   `json:"algo"`
	State JobState `json:"state"`
	// Error carries the failure (or cancellation) message in a terminal
	// non-done state.
	Error       string    `json:"error,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
	// Result is set once State == JobDone.
	Result *Result `json:"-"`
}

// job is the live record behind a Job snapshot; all fields are guarded by
// the manager's mutex except where noted.
type job struct {
	id        string
	kind      registry.Kind
	params    registry.Params // normalized; echoed in snapshots
	req       Request         // value copy; the inline *graph.Graph is shared and immutable
	state     JobState
	err       error
	res       *Result
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc // set while running
	cancelReq bool               // a cancel was requested (maybe mid-run)
	expires   time.Time          // purge deadline once terminal
}

// jobManager owns the queue, the worker pool, and the retention table.
type jobManager struct {
	svc *Service
	ttl time.Duration

	mu       sync.Mutex
	jobs     map[string]*job
	done     []*job // terminal jobs in finish order; TTL purge walks the front
	closed   bool
	draining bool // drain in progress: reject new submissions, let live ones settle

	queue chan *job
	wg    sync.WaitGroup

	submitted, completed, failed, canceled int64 // guarded by mu
}

func newJobManager(svc *Service, queueSize, workers int, ttl time.Duration) *jobManager {
	m := &jobManager{svc: svc, ttl: ttl, jobs: make(map[string]*job)}
	if queueSize < 0 {
		// Job subsystem disabled: a nil queue makes every Submit fail
		// with ErrQueueFull and starts no workers.
		return m
	}
	m.queue = make(chan *job, queueSize)
	m.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go m.worker()
	}
	return m
}

// Submit enqueues req for asynchronous execution and returns the job ID.
// Validation happens synchronously — a malformed request fails here, not
// in the job — and a full queue fails fast with ErrQueueFull.
func (s *Service) Submit(kind registry.Kind, req *Request) (string, error) {
	return s.jobs.submit(kind, req)
}

// Job returns a snapshot of the job's current state.
func (s *Service) Job(id string) (*Job, error) { return s.jobs.get(id) }

// CancelJob cancels a job by ID: a queued job is terminally canceled in
// place, a running job has its context canceled (the run unwinds with
// registry.ErrCanceled and the job lands in JobCanceled). Canceling a
// terminal job is a no-op. The returned snapshot reflects the state after
// the cancel took effect.
func (s *Service) CancelJob(id string) (*Job, error) { return s.jobs.cancelByID(id) }

func (m *jobManager) submit(kind registry.Kind, req *Request) (string, error) {
	p, err := m.svc.params(kind, req)
	if err != nil {
		return "", err
	}
	// Resolve the algorithm now so a job can only fail on real
	// computation errors, and the runner table is warm before the worker
	// picks the job up.
	if _, err := m.svc.runners.get(p.Algorithm); err != nil {
		return "", err
	}
	if req.Graph == nil && req.Hash == "" {
		return "", fmt.Errorf("%w: request carries no graph and no hash", ErrInvalidRequest)
	}

	j := &job{
		id:        newJobID(),
		kind:      kind,
		params:    p,
		req:       *req,
		state:     JobQueued,
		submitted: time.Now(),
	}

	m.mu.Lock()
	if m.closed || m.draining || m.queue == nil {
		m.mu.Unlock()
		return "", ErrQueueFull
	}
	m.purgeLocked(time.Now())
	select {
	case m.queue <- j:
		m.jobs[j.id] = j
		m.submitted++
		m.mu.Unlock()
		return j.id, nil
	default:
		m.mu.Unlock()
		return "", fmt.Errorf("%w: %d jobs queued", ErrQueueFull, cap(m.queue))
	}
}

func (m *jobManager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.run(j)
	}
}

// run executes one dequeued job through the service's synchronous path.
func (m *jobManager) run(j *job) {
	m.mu.Lock()
	if j.state != JobQueued || j.cancelReq || m.closed {
		// Canceled while queued (or the manager is shutting down): settle
		// as canceled without running.
		j.cancelReq = true
		m.finishLocked(j, nil, registry.ErrCanceled)
		m.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.state = JobRunning
	j.started = time.Now()
	j.cancel = cancel
	req := j.req
	kind := j.kind
	m.mu.Unlock()

	res, err := m.svc.do(ctx, kind, &req)
	cancel()

	m.mu.Lock()
	j.cancel = nil
	m.finishLocked(j, res, err)
	m.mu.Unlock()
}

// finishLocked settles a job into its terminal state; caller holds mu.
func (m *jobManager) finishLocked(j *job, res *Result, err error) {
	if j.state.Terminal() {
		return
	}
	j.finished = time.Now()
	j.expires = j.finished.Add(m.ttl)
	switch {
	case j.cancelReq:
		// An explicit cancel wins however the run unwound; a timeout that
		// races a cancel still reads as canceled, which is what the
		// caller asked for.
		j.state = JobCanceled
		if err == nil {
			err = registry.ErrCanceled
		}
		j.err = err
		m.canceled++
	case err != nil:
		j.state = JobFailed
		j.err = err
		m.failed++
	default:
		j.state = JobDone
		j.res = res
		m.completed++
	}
	m.done = append(m.done, j)
}

func (m *jobManager) get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.purgeLocked(time.Now())
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j.snapshotLocked(), nil
}

func (m *jobManager) cancelByID(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.purgeLocked(time.Now())
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	switch j.state {
	case JobQueued:
		j.cancelReq = true
		m.finishLocked(j, nil, registry.ErrCanceled)
	case JobRunning:
		j.cancelReq = true
		if j.cancel != nil {
			j.cancel() // the run unwinds with ErrCanceled and settles the job
		}
	}
	return j.snapshotLocked(), nil
}

// purgeLocked drops terminal jobs past their retention deadline; caller
// holds mu. done is in finish order and every job shares one TTL, so the
// walk stops at the first unexpired entry.
func (m *jobManager) purgeLocked(now time.Time) {
	for len(m.done) > 0 && now.After(m.done[0].expires) {
		j := m.done[0]
		m.done = m.done[1:]
		// A canceled-then-resettled job appears once in done; the map
		// entry may already point at a fresh job only if IDs collided,
		// which newJobID makes effectively impossible.
		delete(m.jobs, j.id)
	}
}

// DrainJobs stops accepting new async submissions (they fail fast with
// ErrQueueFull, the same backpressure signal a full queue sends) and
// blocks until every queued or running job has settled into a terminal
// state, or until ctx expires — whichever comes first. It is the shutdown
// half-step between "stop taking HTTP traffic" and Close: a SIGTERM
// arriving mid-job lets the job finish and its queued client collect the
// result, instead of orphaning it with an abrupt cancel. DrainJobs does
// not close the service; call Close after it returns.
func (s *Service) DrainJobs(ctx context.Context) error { return s.jobs.drain(ctx) }

func (m *jobManager) drain(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
	for {
		m.mu.Lock()
		active := 0
		for _, j := range m.jobs {
			if j.state == JobQueued || j.state == JobRunning {
				active++
			}
		}
		m.mu.Unlock()
		if active == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("service: job drain interrupted with %d jobs live: %w", active, ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func (m *jobManager) close() {
	m.mu.Lock()
	if m.closed || m.queue == nil {
		m.closed = true
		m.mu.Unlock()
		return
	}
	m.closed = true
	// Cancel running jobs; queued jobs settle as canceled when a worker
	// drains them (run observes closed).
	for _, j := range m.jobs {
		if j.state == JobRunning && j.cancel != nil {
			j.cancelReq = true
			j.cancel()
		}
	}
	close(m.queue)
	m.mu.Unlock()
	m.wg.Wait()
}

// counts reports (submitted, completed, failed, canceled, queued, running,
// retained) for the stats snapshot.
func (m *jobManager) counts() (submitted, completed, failed, canceled int64, queued, running, retained int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.purgeLocked(time.Now())
	for _, j := range m.jobs {
		switch j.state {
		case JobQueued:
			queued++
		case JobRunning:
			running++
		}
	}
	return m.submitted, m.completed, m.failed, m.canceled, queued, running, len(m.jobs)
}

// snapshotLocked renders the wire-friendly view; caller holds mu.
func (j *job) snapshotLocked() *Job {
	out := &Job{
		ID:          j.id,
		Kind:        string(j.params.Kind),
		Algo:        j.params.Algorithm,
		State:       j.state,
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
		Result:      j.res,
	}
	if j.err != nil {
		out.Error = j.err.Error()
	}
	return out
}

// newJobID returns a 128-bit random hex ID.
func newJobID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("service: job id entropy unavailable: %v", err))
	}
	return "j" + hex.EncodeToString(b[:])
}
