package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/graphio"
	"strongdecomp/internal/registry"
)

// registerStub registers a trivially-valid decomposer under a unique name
// and returns (name, compute counter). gate, when non-nil, is received
// from inside every computation — the test controls when computations
// finish.
func registerStub(t *testing.T, gate chan struct{}) (string, *atomic.Int64) {
	t.Helper()
	name := fmt.Sprintf("svc-stub-%s", t.Name())
	count := &atomic.Int64{}
	err := registry.Register(name, func() registry.Decomposer {
		return registry.Funcs{
			Meta: registry.Info{Name: name, Model: "deterministic", Diameter: "strong"},
			DecomposeFunc: func(ctx context.Context, g *graph.Graph, opts registry.RunOptions) (*cluster.Decomposition, error) {
				count.Add(1)
				if gate != nil {
					select {
					case <-gate:
					case <-ctx.Done():
						return nil, registry.CtxErr(ctx)
					}
				}
				return &cluster.Decomposition{
					Assign: make([]int, g.N()), Color: []int{int(opts.Seed)},
					K: 1, Colors: 1,
				}, nil
			},
			CarveFunc: func(ctx context.Context, g *graph.Graph, eps float64, opts registry.RunOptions) (*cluster.Carving, error) {
				count.Add(1)
				return &cluster.Carving{Assign: make([]int, g.N()), K: 1}, nil
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { registry.Unregister(name) })
	return name, count
}

// decomposeKey builds the cache identity the service computes for a
// decompose request — the graph content hash plus the canonical Params
// encoding (the service always opts into metering).
func decomposeKey(g *graph.Graph, algo string, seed int64) cacheKey {
	p := registry.Params{Algorithm: algo, Kind: registry.KindDecompose, Seed: seed, Meter: true}
	return cacheKey{hash: graphio.Hash(g), params: p.Key()}
}

func TestServiceCacheHit(t *testing.T) {
	algo, count := registerStub(t, nil)
	s, _ := New(Config{})
	g := graph.Cycle(12)
	ctx := context.Background()

	first, err := s.Decompose(ctx, &Request{Graph: g, Algo: algo, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit || first.Shared {
		t.Fatalf("first request flagged CacheHit=%v Shared=%v", first.CacheHit, first.Shared)
	}
	if first.GraphHash != graphio.Hash(g) {
		t.Fatal("result carries wrong graph hash")
	}

	second, err := s.Decompose(ctx, &Request{Graph: g, Algo: algo, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("identical repeat request not served from cache")
	}
	if second.Decomposition != first.Decomposition {
		t.Fatal("cache returned a different payload")
	}
	if got := count.Load(); got != 1 {
		t.Fatalf("backend computed %d times, want 1", got)
	}

	// A different seed is a different identity.
	third, err := s.Decompose(ctx, &Request{Graph: g, Algo: algo, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if third.CacheHit {
		t.Fatal("different seed must not hit the cache")
	}

	st := s.Stats()
	a := st.Algorithms[algo]
	if a.Requests != 3 || a.CacheHits != 1 || a.CacheMisses != 2 || a.Computes != 2 {
		t.Fatalf("stats = %+v, want requests 3, hits 1, misses 2, computes 2", a)
	}
	if st.CacheHits != 1 || st.CachedResults != 2 || st.StoredGraphs != 1 {
		t.Fatalf("service stats = %+v", st)
	}
}

// TestServiceSingleflight drives concurrent identical requests into the
// in-flight deduplicator: one backend computation, every follower shares
// it. The gate holds the leader's computation open until all followers are
// provably blocked on it, so the assertion is deterministic (and the -race
// CI job exercises the synchronization).
func TestServiceSingleflight(t *testing.T) {
	gate := make(chan struct{})
	algo, count := registerStub(t, gate)
	s, _ := New(Config{})
	g := graph.Grid(4, 4)
	key := decomposeKey(g, algo, 7)

	const followers = 7
	results := make([]*Result, followers+1)
	errs := make([]error, followers+1)
	var wg sync.WaitGroup
	for i := 0; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Decompose(context.Background(), &Request{Graph: g, Algo: algo, Seed: 7})
		}(i)
		if i == 0 {
			waitForCondition(t, func() bool { return count.Load() == 1 }) // leader is computing
		}
	}
	waitForCondition(t, func() bool {
		s.flight.mu.Lock()
		defer s.flight.mu.Unlock()
		c := s.flight.calls[key]
		return c != nil && c.parties.Load() == followers+1 // +1: the leader
	})
	close(gate)
	wg.Wait()

	if got := count.Load(); got != 1 {
		t.Fatalf("backend computed %d times, want 1", got)
	}
	shared := 0
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if results[i].Decomposition != results[0].Decomposition {
			t.Fatal("followers received a different payload")
		}
		if results[i].Shared {
			shared++
		}
	}
	if shared != followers {
		t.Fatalf("%d shared results, want %d", shared, followers)
	}
	if st := s.Stats().Algorithms[algo]; st.DedupShared != followers {
		t.Fatalf("DedupShared = %d, want %d", st.DedupShared, followers)
	}
}

// TestServiceLeaderCancelDoesNotPoisonFollowers: the computation runs on a
// context detached from the request that started it, so a leader client
// giving up (disconnect, deadline) fails only its own request — followers
// of the same flight still receive the shared result.
func TestServiceLeaderCancelDoesNotPoisonFollowers(t *testing.T) {
	gate := make(chan struct{})
	algo, count := registerStub(t, gate)
	s, _ := New(Config{})
	g := graph.Grid(4, 4)
	key := decomposeKey(g, algo, 11)
	req := func() *Request { return &Request{Graph: g, Algo: algo, Seed: 11} }

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	var (
		leaderErr            error
		followerRes          *Result
		followerErr          error
		leaderWG, followerWG sync.WaitGroup
	)
	leaderWG.Add(1)
	go func() {
		defer leaderWG.Done()
		_, leaderErr = s.Decompose(leaderCtx, req())
	}()
	waitForCondition(t, func() bool { return count.Load() == 1 })

	followerWG.Add(1)
	go func() {
		defer followerWG.Done()
		followerRes, followerErr = s.Decompose(context.Background(), req())
	}()
	waitForCondition(t, func() bool {
		s.flight.mu.Lock()
		defer s.flight.mu.Unlock()
		c := s.flight.calls[key]
		return c != nil && c.parties.Load() == 2
	})

	cancelLeader()
	leaderWG.Wait()
	if !errors.Is(leaderErr, registry.ErrCanceled) {
		t.Fatalf("leader err = %v, want ErrCanceled", leaderErr)
	}

	close(gate) // the computation was not canceled with the leader
	followerWG.Wait()
	if followerErr != nil {
		t.Fatalf("follower err = %v, want shared result", followerErr)
	}
	if !followerRes.Shared || followerRes.Decomposition == nil {
		t.Fatalf("follower result = %+v, want shared payload", followerRes)
	}
	if got := count.Load(); got != 1 {
		t.Fatalf("backend computed %d times, want 1", got)
	}
	st := s.Stats().Algorithms[algo]
	if st.Errors != 1 { // the abandoned leader counts as a failed request
		t.Fatalf("Errors = %d, want 1", st.Errors)
	}
}

// TestServiceAbandonedFlightCanceled: when the last caller interested in a
// flight gives up, the detached computation is canceled rather than left
// running.
func TestServiceAbandonedFlightCanceled(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	algo, _ := registerStub(t, gate)
	s, _ := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	g := graph.Path(6)
	done := make(chan error, 1)
	go func() {
		_, err := s.Decompose(ctx, &Request{Graph: g, Algo: algo, Seed: 1})
		done <- err
	}()
	waitForCondition(t, func() bool {
		s.flight.mu.Lock()
		defer s.flight.mu.Unlock()
		return len(s.flight.calls) == 1
	})
	cancel()
	if err := <-done; !errors.Is(err, registry.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// The gated stub only returns when its context dies; the flight
	// draining proves the computation was canceled, not left hanging.
	waitForCondition(t, func() bool {
		s.flight.mu.Lock()
		defer s.flight.mu.Unlock()
		return len(s.flight.calls) == 0
	})
	if hits := s.cache.len(); hits != 0 {
		t.Fatalf("canceled computation was cached (%d entries)", hits)
	}
}

// TestServiceFreshFlightAfterAbandon: once the last caller abandons a
// flight it is unlinked immediately, so a later identical request starts a
// fresh computation instead of joining the dying one and inheriting its
// cancellation error.
func TestServiceFreshFlightAfterAbandon(t *testing.T) {
	gate := make(chan struct{})
	algo, count := registerStub(t, gate)
	s, _ := New(Config{})
	g := graph.Cycle(8)
	req := func() *Request { return &Request{Graph: g, Algo: algo, Seed: 2} }

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Decompose(ctx, req())
		done <- err
	}()
	waitForCondition(t, func() bool { return count.Load() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, registry.ErrCanceled) {
		t.Fatalf("abandoned leader err = %v, want ErrCanceled", err)
	}

	// The abandoned flight's goroutine may still be draining, but the
	// retry must not see it: it starts computation #2 and succeeds.
	retry := make(chan struct{})
	var res *Result
	var err error
	go func() {
		res, err = s.Decompose(context.Background(), req())
		close(retry)
	}()
	waitForCondition(t, func() bool { return count.Load() == 2 })
	close(gate)
	<-retry
	if err != nil {
		t.Fatalf("retry err = %v, want fresh result", err)
	}
	if res.CacheHit || res.Shared {
		t.Fatalf("retry flagged CacheHit=%v Shared=%v, want a fresh computation", res.CacheHit, res.Shared)
	}
}

func waitForCondition(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("timeout waiting for condition")
}

func TestServiceByHash(t *testing.T) {
	algo, _ := registerStub(t, nil)
	s, _ := New(Config{})
	g := graph.Star(9)
	hash := s.PutGraph(g)
	if hash != graphio.Hash(g) {
		t.Fatal("PutGraph returned a non-content hash")
	}
	if got, ok := s.GetGraph(hash); !ok || got != g {
		t.Fatal("GetGraph does not return the stored graph")
	}

	res, err := s.Decompose(context.Background(), &Request{Hash: hash, Algo: algo})
	if err != nil {
		t.Fatal(err)
	}
	if res.GraphHash != hash {
		t.Fatal("by-hash result carries wrong hash")
	}

	// Inline requests self-register their graph for later by-hash use.
	s2, _ := New(Config{})
	if _, err := s2.Decompose(context.Background(), &Request{Graph: g, Algo: algo}); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Decompose(context.Background(), &Request{Hash: hash, Algo: algo}); err != nil {
		t.Fatalf("inline request did not register the graph: %v", err)
	}
}

func TestServiceErrors(t *testing.T) {
	algo, _ := registerStub(t, nil)
	s, _ := New(Config{})
	g := graph.Path(4)
	ctx := context.Background()

	cases := []struct {
		name string
		run  func() error
		want error
	}{
		{"no graph", func() error {
			_, err := s.Decompose(ctx, &Request{Algo: algo})
			return err
		}, ErrInvalidRequest},
		{"both graph and hash", func() error {
			_, err := s.Decompose(ctx, &Request{Graph: g, Hash: "x", Algo: algo})
			return err
		}, ErrInvalidRequest},
		{"unknown hash", func() error {
			_, err := s.Decompose(ctx, &Request{Hash: "deadbeef", Algo: algo})
			return err
		}, ErrUnknownGraph},
		{"unknown algorithm", func() error {
			_, err := s.Decompose(ctx, &Request{Graph: g, Algo: "no-such-algo"})
			return err
		}, registry.ErrUnknownAlgorithm},
		{"bad eps zero", func() error {
			_, err := s.Carve(ctx, &Request{Graph: g, Algo: algo, Eps: 0})
			return err
		}, ErrInvalidRequest},
		{"bad eps high", func() error {
			_, err := s.Carve(ctx, &Request{Graph: g, Algo: algo, Eps: 1.5})
			return err
		}, ErrInvalidRequest},
		{"bad eps NaN", func() error {
			_, err := s.Carve(ctx, &Request{Graph: g, Algo: algo, Eps: math.NaN()})
			return err
		}, ErrInvalidRequest},
		{"bad eps +Inf", func() error {
			_, err := s.Carve(ctx, &Request{Graph: g, Algo: algo, Eps: math.Inf(1)})
			return err
		}, ErrInvalidRequest},
		{"bad eps -Inf", func() error {
			_, err := s.Carve(ctx, &Request{Graph: g, Algo: algo, Eps: math.Inf(-1)})
			return err
		}, ErrInvalidRequest},
		{"bad eps negative", func() error {
			_, err := s.Carve(ctx, &Request{Graph: g, Algo: algo, Eps: -0.25})
			return err
		}, ErrInvalidRequest},
		{"negative timeout decompose", func() error {
			_, err := s.Decompose(ctx, &Request{Graph: g, Algo: algo, Timeout: -time.Second})
			return err
		}, ErrInvalidRequest},
		{"negative timeout carve", func() error {
			_, err := s.Carve(ctx, &Request{Graph: g, Algo: algo, Eps: 0.5, Timeout: -1})
			return err
		}, ErrInvalidRequest},
		{"nil request", func() error {
			_, err := s.Decompose(ctx, nil)
			return err
		}, ErrInvalidRequest},
	}
	for _, tc := range cases {
		if err := tc.run(); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	// Caller-supplied algorithm names reach the stats table (and /metrics)
	// only after registry validation.
	if _, polluted := s.Stats().Algorithms["no-such-algo"]; polluted {
		t.Error("unregistered algorithm name admitted into the stats table")
	}
}

// TestServiceGraphStoreBudget: the graph store is bounded by total size,
// not only entry count — cheap requests with huge graphs evict older
// entries, and a graph exceeding the whole budget is not retained.
func TestServiceGraphStoreBudget(t *testing.T) {
	algo, _ := registerStub(t, nil)
	// Weights are real CSR bytes: 8*(n+1) offsets + 8*2m targets + 64.
	s, _ := New(Config{GraphStoreBudget: 1000})
	small := graph.Path(10) // weight 8*(11+18) + 64 = 296
	hSmall := s.PutGraph(small)
	if _, ok := s.GetGraph(hSmall); !ok {
		t.Fatal("small graph not stored")
	}

	big := graph.Path(40) // weight 8*(41+78) + 64 = 1016 > 1000
	if hBig := s.PutGraph(big); hBig == "" {
		t.Fatal("PutGraph must still return the hash")
	} else if _, ok := s.GetGraph(hBig); ok {
		t.Fatal("over-budget graph was retained")
	}
	// The over-budget put must not have evicted the resident small graph
	// for nothing... it may have; what matters is the budget holds. An
	// inline request with the big graph still computes.
	if _, err := s.Decompose(context.Background(), &Request{Graph: big, Algo: algo}); err != nil {
		t.Fatalf("inline over-budget graph failed to compute: %v", err)
	}

	// Medium graphs evict older ones instead of overflowing the budget.
	g1, g2 := graph.Cycle(20), graph.Grid(4, 5) // weights 552 and 728
	h1, h2 := s.PutGraph(g1), s.PutGraph(g2)
	if _, ok := s.GetGraph(h2); !ok {
		t.Fatal("most recent graph missing from store")
	}
	if _, ok := s.GetGraph(h1); ok {
		t.Fatal("budget exceeded: both medium graphs retained (552+728 > 1000)")
	}
}

func TestServiceTimeout(t *testing.T) {
	gate := make(chan struct{}) // never closed: computations only end by cancellation
	defer close(gate)
	algo, _ := registerStub(t, gate)
	s, _ := New(Config{Timeout: 20 * time.Millisecond})
	_, err := s.Decompose(context.Background(), &Request{Graph: graph.Path(4), Algo: algo})
	if !errors.Is(err, registry.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if st := s.Stats().Algorithms[algo]; st.Errors != 1 {
		t.Fatalf("Errors = %d, want 1", st.Errors)
	}
}

func TestServiceCacheEviction(t *testing.T) {
	algo, count := registerStub(t, nil)
	s, _ := New(Config{CacheSize: 2})
	ctx := context.Background()
	g := graph.Cycle(6)
	for seed := int64(0); seed < 3; seed++ { // fills and overflows the 2-entry cache
		if _, err := s.Decompose(ctx, &Request{Graph: g, Algo: algo, Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	// Seed 0 was evicted by seed 2; seed 2 is still resident.
	res, err := s.Decompose(ctx, &Request{Graph: g, Algo: algo, Seed: 2})
	if err != nil || !res.CacheHit {
		t.Fatalf("expected cache hit for resident entry (err=%v, hit=%v)", err, res.CacheHit)
	}
	res, err = s.Decompose(ctx, &Request{Graph: g, Algo: algo, Seed: 0})
	if err != nil || res.CacheHit {
		t.Fatalf("expected recompute for evicted entry (err=%v, hit=%v)", err, res.CacheHit)
	}
	if got := count.Load(); got != 4 {
		t.Fatalf("backend computed %d times, want 4", got)
	}
}

func TestServiceCarveKindSeparation(t *testing.T) {
	algo, _ := registerStub(t, nil)
	s, _ := New(Config{})
	ctx := context.Background()
	g := graph.Grid(3, 3)
	if _, err := s.Decompose(ctx, &Request{Graph: g, Algo: algo}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Carve(ctx, &Request{Graph: g, Algo: algo, Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("carve hit the decompose cache entry")
	}
	if res.Carving == nil || res.Kind != "carve" {
		t.Fatalf("carve result malformed: %+v", res)
	}
}

func TestServiceDefaultAlgorithm(t *testing.T) {
	algo, count := registerStub(t, nil)
	s, _ := New(Config{DefaultAlgorithm: algo})
	res, err := s.Decompose(context.Background(), &Request{Graph: graph.Path(5)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algo != algo || count.Load() != 1 {
		t.Fatalf("default algorithm not used: %+v", res)
	}
}

// TestServiceRequestTimeoutBoundsOnlyCaller: a request's own Timeout
// bounds that caller's wait, not the shared flight — a concurrent
// identical request without a timeout still receives the result.
func TestServiceRequestTimeoutBoundsOnlyCaller(t *testing.T) {
	gate := make(chan struct{})
	algo, count := registerStub(t, gate)
	s, _ := New(Config{})
	g := graph.Grid(4, 4)
	req := func(d time.Duration) *Request { return &Request{Graph: g, Algo: algo, Seed: 2, Timeout: d} }

	// Impatient leader: 5ms wait bound on an open-gated computation.
	var leaderErr error
	var leaderWG sync.WaitGroup
	leaderWG.Add(1)
	go func() {
		defer leaderWG.Done()
		_, leaderErr = s.Decompose(context.Background(), req(5*time.Millisecond))
	}()
	waitForCondition(t, func() bool { return count.Load() == 1 })

	// Patient follower joins the same flight with no timeout.
	var (
		followerRes *Result
		followerErr error
		followerWG  sync.WaitGroup
	)
	followerWG.Add(1)
	go func() {
		defer followerWG.Done()
		followerRes, followerErr = s.Decompose(context.Background(), req(0))
	}()
	key := decomposeKey(g, algo, 2)
	waitForCondition(t, func() bool {
		s.flight.mu.Lock()
		defer s.flight.mu.Unlock()
		c := s.flight.calls[key]
		return c != nil && c.parties.Load() == 2
	})

	leaderWG.Wait() // the 5ms deadline fires while the gate is closed
	if !errors.Is(leaderErr, registry.ErrCanceled) {
		t.Fatalf("impatient caller err = %v, want ErrCanceled", leaderErr)
	}
	close(gate)
	followerWG.Wait()
	if followerErr != nil {
		t.Fatalf("patient follower err = %v — the impatient caller's timeout killed the shared flight", followerErr)
	}
	if followerRes == nil || followerRes.Decomposition == nil {
		t.Fatal("patient follower got no result")
	}
}

// TestServiceAdmitResultRevalidatedAfterGraphArrives pins the safety
// contract of blind replica admission: cluster replication can deliver a
// result record before its graph, so AdmitResult admits it with only
// internal-consistency checks — but once the graph arrives, every serve
// path must re-validate against the node count instead of serving an
// assignment that does not cover the graph, and nothing unvalidated may
// reach the disk tier.
func TestServiceAdmitResultRevalidatedAfterGraphArrives(t *testing.T) {
	algo, count := registerStub(t, nil)
	dir := t.TempDir()
	s, err := New(Config{DataDir: dir, DefaultAlgorithm: algo})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := graph.Cycle(12)
	hash := graphio.Hash(g)
	key := decomposeKey(g, algo, 0)

	// A record that is internally consistent but covers 5 nodes, not 12.
	short := &Result{
		GraphHash: hash, Kind: "decompose", Algo: algo, Seed: 0,
		Decomposition: &cluster.Decomposition{Assign: make([]int, 5), Color: []int{0}, K: 1, Colors: 1},
	}
	data, err := EncodeResultRecord(hash, key.params, short)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AdmitResult(hash, key.params, data); err != nil {
		t.Fatalf("internally consistent record rejected: %v", err)
	}

	// Unvalidated admission must not have been spilled to disk.
	entries, err := os.ReadDir(filepath.Join(dir, "results"))
	if err == nil && len(entries) != 0 {
		t.Fatalf("unvalidated replica record persisted to disk: %v", entries)
	}

	// The graph arrives (replica push). Serving the key must recompute,
	// not echo the wrong-length record out of the memory cache.
	s.AdmitGraph(g)
	res, err := s.Decompose(context.Background(), &Request{Hash: hash, Algo: algo})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("wrong-length replica served as a cache hit")
	}
	if len(res.Decomposition.Assign) != g.N() {
		t.Fatalf("assign length %d, want %d", len(res.Decomposition.Assign), g.N())
	}
	if count.Load() != 1 {
		t.Fatalf("backend computed %d times, want 1", count.Load())
	}

	// The peer-serving lookup applies the same re-validation: re-poison
	// the memory cache, and CachedResult must drop the record, then find
	// the good spilled copy on disk.
	if err := s.AdmitResult(hash, key.params, data); err == nil {
		// With the graph now resolvable the short record is rejected
		// outright — which is the point; force the stale-cache scenario
		// by injecting directly.
		t.Fatal("wrong-length record admitted while the graph is resolvable")
	}
	s.cache.put(cacheKey{hash: hash, params: key.params}, short)
	got, ok := s.CachedResult(hash, key.params)
	if !ok {
		t.Fatal("CachedResult missed the validated disk copy")
	}
	if len(got.Decomposition.Assign) != g.N() {
		t.Fatalf("CachedResult served assign length %d, want %d", len(got.Decomposition.Assign), g.N())
	}
}
