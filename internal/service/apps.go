package service

// The applications tier: serving MIS, (Δ+1) coloring, approximate
// diameter, and decomposition spanners over cached decompositions. One
// app request resolves its graph by hash, obtains the underlying
// decomposition through the full serving path (LRU → disk → peer →
// compute, via Service.do — so the decomposition is computed at most once
// across every app that needs it), runs the application, and caches the
// answer under its own content-addressed key (graph hash, app,
// Params.Key) with the same memory-LRU + disk-record tiering results get.
// Concurrent identical app requests share one run through a dedicated
// singleflight.
//
// With Config.StrictApps set, no answer leaves the service unverified:
// fresh MIS and coloring runs must pass VerifyMIS/VerifyColoring,
// diameter and spanner answers their shape checks, and a persisted app
// record that fails verification is quarantined and recomputed.

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"strongdecomp/internal/apps"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/obs"
	"strongdecomp/internal/registry"
	"strongdecomp/internal/rounds"
)

// Typed errors of the applications tier; HTTP handlers map them with
// errors.Is.
var (
	// ErrUnknownApp marks requests naming an application the service does
	// not serve.
	ErrUnknownApp = errors.New("service: unknown application")
	// ErrAppVerification marks strict-mode verification failures: an app
	// answer that does not pass its verifier is never served.
	ErrAppVerification = errors.New("service: app result failed verification")
)

// The served application names — the {app} segment of POST /v2/apps/{app}.
const (
	AppMIS      = "mis"
	AppColoring = "coloring"
	AppDiameter = "diameter"
	AppSpanner  = "spanner"
)

// Apps lists the applications the service serves, sorted.
func Apps() []string {
	return []string{AppColoring, AppDiameter, AppMIS, AppSpanner}
}

// validApp reports whether app names a served application.
func validApp(app string) bool {
	switch app {
	case AppMIS, AppColoring, AppDiameter, AppSpanner:
		return true
	}
	return false
}

// appKeyPrefix domain-separates application cache keys from decomposition
// keys, so an app record can never collide with (or be confused for) a
// decomposition record of the same graph and parameters.
const appKeyPrefix = "strongdecomp/app/v1\n"

// appParamsKey is the params half of an app result's cache identity: the
// app name joined to the canonical decomposition Params.Key under the
// domain prefix. Two app requests share an answer exactly when they name
// the same app over the same graph, algorithm, and seed.
func appParamsKey(app string, p registry.Params) string {
	return appKeyPrefix + app + "\x00" + p.Key()
}

// AppResult is one served application answer. Slice payloads may be
// shared with the cache and other callers — treat them as immutable.
type AppResult struct {
	// GraphHash is the content hash the answer is cached under.
	GraphHash string
	// App names the application ("mis", "coloring", "diameter",
	// "spanner").
	App string
	// Algo / Seed identify the underlying decomposition run.
	Algo string
	Seed int64

	// InMIS is the MIS membership vector (AppMIS only).
	InMIS []bool
	// ColorOf is the per-node palette color (AppColoring only).
	ColorOf []int
	// PaletteSize is the (Δ+1) palette bound of the coloring (AppColoring
	// only).
	PaletteSize int
	// Diameter is the 2-sweep approximation (AppDiameter only): a lower
	// bound on the true diameter, which is at most twice it.
	Diameter int
	// SpannerEdges lists the spanner's edges as (u, v) pairs with u < v
	// (AppSpanner only); TreeEdges and CrossEdges split the count.
	SpannerEdges [][2]int
	TreeEdges    int
	CrossEdges   int

	// ScheduleCost is the C·D template cost of the underlying
	// decomposition on this graph (apps.ScheduleCost) — reported on every
	// app answer, so clients see what a color-by-color application pays.
	ScheduleCost int
	// Rounds is the simulated CONGEST cost of the app run itself.
	Rounds int64
	// Elapsed is the wall-clock time of the app run (decomposition
	// resolution excluded — that cost is reported by the decomposition's
	// own result and is usually amortized away).
	Elapsed time.Duration
	// CacheHit reports the answer came from the app cache (memory or
	// disk tier).
	CacheHit bool
	// Shared reports the answer was computed once by a concurrent
	// identical request and shared through the in-flight deduplicator.
	Shared bool
	// DecompCacheHit reports the underlying decomposition was served from
	// a cache tier (memory, disk, or peer) rather than freshly computed —
	// the amortization the applications tier exists for.
	DecompCacheHit bool
	// Verified reports the answer passed its verifier before serving
	// (strict mode only).
	Verified bool
}

// coversN reports whether the answer's per-node payload covers exactly n
// nodes — the revalidation applied to memory-cache hits, mirroring
// Result.coversN. Answers without per-node payloads (diameter, spanner)
// carry node ids instead; those are range-checked at decode time.
func (r *AppResult) coversN(n int) bool {
	switch r.App {
	case AppMIS:
		return len(r.InMIS) == n
	case AppColoring:
		return len(r.ColorOf) == n
	case AppDiameter:
		return r.Diameter >= 0
	case AppSpanner:
		for _, e := range r.SpannerEdges {
			if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
				return false
			}
		}
		return true
	}
	return false
}

// verifyAppResult gates a served answer on its verifier: VerifyMIS and
// VerifyColoring for the symmetry-breaking apps, shape checks for
// diameter and spanner (which have no independent verifier).
func verifyAppResult(g *graph.Graph, res *AppResult) error {
	switch res.App {
	case AppMIS:
		return apps.VerifyMIS(g, res.InMIS)
	case AppColoring:
		return apps.VerifyColoring(g, res.ColorOf, g.MaxDegree()+1)
	case AppDiameter:
		if res.Diameter < 0 || (g.N() > 0 && res.Diameter >= g.N()) {
			return fmt.Errorf("apps: diameter %d outside [0,%d)", res.Diameter, g.N())
		}
		return nil
	case AppSpanner:
		if res.TreeEdges < 0 || res.CrossEdges < 0 || res.TreeEdges+res.CrossEdges != len(res.SpannerEdges) {
			return fmt.Errorf("apps: spanner edge accounting %d+%d vs %d edges",
				res.TreeEdges, res.CrossEdges, len(res.SpannerEdges))
		}
		for _, e := range res.SpannerEdges {
			if e[0] < 0 || e[0] >= g.N() || e[1] < 0 || e[1] >= g.N() || e[0] == e[1] {
				return fmt.Errorf("apps: spanner edge %v outside graph of %d nodes", e, g.N())
			}
		}
		return nil
	}
	return fmt.Errorf("%w: %q", ErrUnknownApp, res.App)
}

// RunApp serves one application request: resolve the graph, consult the
// app cache tiers, and on a miss resolve the decomposition through the
// full serving path and run the application — once per key, however many
// identical requests arrive concurrently.
func (s *Service) RunApp(ctx context.Context, app string, req *Request) (*AppResult, error) {
	if !validApp(app) {
		return nil, fmt.Errorf("%w: %q (served: %v)", ErrUnknownApp, app, Apps())
	}
	p, err := s.params(registry.KindDecompose, req)
	if err != nil {
		return nil, err
	}
	// Validate the algorithm before creating its stats entry — same
	// discipline as the decomposition path: caller-supplied names that are
	// not registered must never reach the stats table or the cache key.
	if _, err := s.runners.get(p.Algorithm); err != nil {
		return nil, err
	}
	st := s.stats.app(app)
	st.requests.Add(1)

	resolveStart := time.Now()
	g, hash, err := s.resolveGraph(req)
	if err != nil {
		st.errors.Add(1)
		return nil, err
	}
	obs.Span(ctx, "app-resolve", resolveStart,
		slog.String("app", app), slog.String("graph", hash))

	key := cacheKey{hash: hash, params: appParamsKey(app, p)}
	lookup := time.Now()
	if res, ok := s.appCache.get(key); ok && res.coversN(g.N()) {
		st.cacheHits.Add(1)
		obs.Span(ctx, "cache", lookup,
			slog.String("tier", "lru"), slog.String("app", app))
		out := *res
		out.CacheHit = true
		return &out, nil
	} else if ok {
		s.appCache.remove(key)
	}
	// Memory miss: the disk tier may hold this exact app record from a
	// previous run or process. In strict mode a persisted record must
	// re-pass its verifier before it is served; one that fails is
	// quarantined and recomputed, exactly like a corrupt record.
	if s.persist != nil {
		if res, ok := s.persist.loadApp(key, g.N()); ok {
			if s.cfg.StrictApps {
				if err := verifyAppResult(g, res); err != nil {
					s.persist.quarantineApp(key)
					res = nil
				} else {
					res.Verified = true
				}
			}
			if res != nil {
				st.cacheHits.Add(1)
				obs.Span(ctx, "cache", lookup,
					slog.String("tier", "disk"), slog.String("app", app))
				s.appCache.put(key, res)
				out := *res
				out.CacheHit = true
				return &out, nil
			}
		}
	}
	st.cacheMisses.Add(1)

	if req.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Timeout)
		defer cancel()
	}
	res, err, shared := s.appFlight.do(ctx, key, func(runCtx context.Context) (*AppResult, error) {
		// The flight detaches from the caller's cancellation; the trace
		// and collector must survive the detach (see Service.do).
		runCtx = obs.Transfer(runCtx, ctx)
		if s.cfg.Timeout > 0 {
			var cancel context.CancelFunc
			runCtx, cancel = context.WithTimeout(runCtx, s.cfg.Timeout)
			defer cancel()
		}
		out, err := s.runApp(runCtx, app, g, hash, p)
		if err != nil {
			return nil, err
		}
		st.recordLatency(out.Elapsed)
		obs.ObserveApp(runCtx, app, out.Elapsed)
		s.appCache.put(key, out)
		if s.persist != nil {
			s.persist.saveApp(key, out)
		}
		return out, nil
	})
	if shared {
		st.dedupShared.Add(1)
	}
	if err != nil {
		st.errors.Add(1)
		return nil, err
	}
	if shared {
		out := *res
		out.Shared = true
		return &out, nil
	}
	return res, nil
}

// runApp resolves the decomposition through the canonical request path
// and executes the application on it.
func (s *Service) runApp(ctx context.Context, app string, g *graph.Graph, hash string, p registry.Params) (*AppResult, error) {
	// The decomposition rides the existing serving path end to end: LRU,
	// disk tier, peer cache, singleflight, compute — so however many apps
	// run over one graph, the decomposition is computed at most once.
	dres, err := s.do(ctx, registry.KindDecompose, &Request{Hash: hash, Algo: p.Algorithm, Seed: p.Seed})
	if err != nil {
		return nil, err
	}
	d := dres.Decomposition
	if d == nil {
		return nil, fmt.Errorf("%w: decomposition request returned no decomposition", ErrInvalidRequest)
	}

	runStart := time.Now()
	meter := rounds.NewMeter()
	out := &AppResult{
		GraphHash:      hash,
		App:            app,
		Algo:           p.Algorithm,
		Seed:           p.Seed,
		DecompCacheHit: dres.CacheHit || dres.PeerHit || dres.Shared,
	}
	switch app {
	case AppMIS:
		out.InMIS, err = apps.MISContext(ctx, g, d, meter)
	case AppColoring:
		out.ColorOf, err = apps.ColorGraphContext(ctx, g, d, meter)
		out.PaletteSize = g.MaxDegree() + 1
	case AppDiameter:
		out.Diameter = apps.DiameterApprox(g, meter)
	case AppSpanner:
		var sp *apps.Spanner
		sp, err = apps.BuildSpannerContext(ctx, g, d, meter)
		if sp != nil {
			out.SpannerEdges, out.TreeEdges, out.CrossEdges = sp.Edges, sp.TreeEdges, sp.CrossEdges
		}
	}
	if err != nil {
		return nil, err
	}
	out.ScheduleCost = apps.ScheduleCost(g, d)
	out.Rounds = meter.Rounds()
	out.Elapsed = time.Since(runStart)
	if s.cfg.StrictApps {
		if err := verifyAppResult(g, out); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrAppVerification, err)
		}
		out.Verified = true
	}
	obs.SpanDuration(ctx, "app-run", out.Elapsed,
		slog.String("app", app), slog.String("algo", p.Algorithm),
		slog.Bool("decomp_cached", out.DecompCacheHit))
	return out, nil
}
