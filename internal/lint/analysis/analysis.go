// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis interface: an Analyzer is a named check
// with a Run function over a typechecked package, reporting Diagnostics
// through its Pass. The repo's analyzers (internal/lint/analyzers) are
// written against this interface so that one driver — the in-test runner,
// the standalone cmd/sdlint mode, and the `go vet -vettool` unitchecker
// protocol — executes all of them identically, without pulling the x/tools
// module into the build.
//
// The subset is deliberate: no Requires graph, no Facts, no suggested
// fixes. Every analyzer in this repository is a single package-local pass,
// which keeps the vettool protocol implementation (driver/unitchecker.go)
// free of cross-package fact plumbing.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. The struct mirrors the x/tools
// type of the same name closely enough that porting an analyzer between
// the two is a matter of changing the import path.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. By x/tools
	// convention it is a lowercase identifier.
	Name string
	// Doc is the one-paragraph help text; the first line is the summary.
	Doc string
	// Filter, when non-nil, restricts where the analyzer runs: drivers
	// call it with the candidate package's import path and skip the
	// package when it returns false. A nil Filter means "every package in
	// this module". Fixture runners (analysistest) bypass the filter.
	Filter func(pkgPath string) bool
	// Run executes the check over one package and reports findings via
	// pass.Report. The result value is unused by this framework's drivers
	// but kept for interface parity.
	Run func(pass *Pass) (any, error)
}

// Pass carries one analyzer's view of one typechecked package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions for every file in the package.
	Fset *token.FileSet
	// Files are the package's parsed syntax trees, comments included.
	Files []*ast.File
	// Pkg is the typechecked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression, definition, use and
	// selection maps for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message, plus an optional
// category for grouping.
type Diagnostic struct {
	// Pos is where the finding anchors.
	Pos token.Pos
	// Category optionally subdivides an analyzer's findings.
	Category string
	// Message is the human-readable report.
	Message string
}
