// The `go vet -vettool` protocol. cmd/go drives an external vet tool one
// compilation unit at a time: it first queries `tool -V=full` (a version
// line that keys the build cache) and `tool -flags` (a JSON description
// of accepted flags), then invokes `tool <unit>.cfg` per package with a
// JSON config naming the unit's files and the export-data files of its
// already-compiled imports. This file implements that contract the same
// way x/tools' unitchecker does, minus cross-package facts — none of the
// repo's analyzers need them — so dependency units (VetxOnly) only write
// their (empty) facts file and exit.
package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"strongdecomp/internal/lint/analysis"
)

// vetConfig mirrors the JSON emitted by cmd/go for each vet unit; fields
// this driver does not consume are omitted (unknown JSON fields are
// ignored by encoding/json).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// VettoolMain implements the full vettool side of the protocol and
// returns the process exit code: 0 clean, 1 on tool failure, 2 when
// diagnostics were reported (cmd/go surfaces stderr and fails the vet
// run on any nonzero exit).
func VettoolMain(progname string, args []string, analyzers []*analysis.Analyzer) int {
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			// cmd/go parses this as "<name> version <non-devel-id>" and
			// folds it into the cache key, so embed the binary's own
			// content hash: a rebuilt sdlint invalidates cached verdicts.
			fmt.Printf("%s version %s\n", progname, selfID())
			return 0
		case "-flags", "--flags":
			// No pass-through flags; cmd/go only needs a valid JSON reply.
			fmt.Println("[]")
			return 0
		}
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, "%s: expected a single vet config file, got %q (run via go vet -vettool, or pass package patterns)\n", progname, args)
		return 1
	}
	code, err := runUnit(args[0], analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 1
	}
	return code
}

// runUnit analyzes one vet unit described by the config file.
func runUnit(cfgFile string, analyzers []*analysis.Analyzer) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 1, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 1, fmt.Errorf("%s: %w", cfgFile, err)
	}
	// The facts file must exist for cmd/go's bookkeeping even though the
	// suite passes no facts between units.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("sdlint: no facts\n"), 0o666); err != nil {
			return 1, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil // a dependency unit: facts only, no diagnostics
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 1, err
		}
		files = append(files, f)
	}

	// Imports resolve through the export data cmd/go already compiled,
	// exactly as the real vet does.
	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImp.Import(path)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, envOr("GOARCH", runtime.GOARCH)),
		GoVersion: cfg.GoVersion,
	}
	tpkg, err := conf.Check(plainPath(cfg.ImportPath), fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 1, fmt.Errorf("typecheck %s: %w", cfg.ImportPath, err)
	}

	unit := &Package{
		ImportPath: cfg.ImportPath,
		PkgPath:    plainPath(cfg.ImportPath),
		Module:     true, // cmd/go only emits non-VetxOnly units for the vetted packages
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	diags, err := Run(fset, []*Package{unit}, analyzers)
	if err != nil {
		return 1, err
	}
	if len(diags) == 0 {
		return 0, nil
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos.Offset < diags[j].Pos.Offset })
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	return 2, nil
}

// selfID returns a content identifier for the running binary so that
// cmd/go's vet result cache is keyed by the actual tool build; a fixed
// fallback keeps -V=full functional if the executable cannot be read.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "sdlint-unversioned"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "sdlint-unversioned"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "sdlint-unversioned"
	}
	return fmt.Sprintf("sdlint-%x", h.Sum(nil)[:12])
}

func envOr(key, fallback string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return fallback
}

// ModuleRoot walks up from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("go.mod not found above %s", dir)
		}
		dir = parent
	}
}
