// Package driver loads and typechecks Go packages for the sdlint
// analyzer suite without golang.org/x/tools: package metadata comes from
// `go list -deps -test -json` and every package in the dependency
// closure — standard library included — is typechecked from source with
// go/parser and go/types. The one-time cost (a couple of seconds for
// this module and its stdlib closure) buys a loader with no dependency
// on export data, GOPATH layout, or network access, so the same code
// runs inside `go test`, inside cmd/sdlint's standalone mode, and under
// the analysistest fixture runner.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"strongdecomp/internal/lint/analysis"
)

// listedPackage is the subset of `go list -json` output the loader
// consumes. Test-augmented variants carry a bracketed ImportPath
// ("pkg [pkg.test]") and set ForTest.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	ForTest    string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
}

// Package is one typechecked unit ready for analysis. Test-augmented
// units keep their bracketed import path; PkgPath is always the plain
// path analyzers should filter on.
type Package struct {
	// ImportPath is the unit identity, bracketed for test variants.
	ImportPath string
	// PkgPath is the unbracketed import path.
	PkgPath string
	// Module reports whether the unit belongs to the analyzed module
	// (drivers run analyzers only over module units).
	Module bool
	// Files are the parsed syntax trees, comments included.
	Files []*ast.File
	// Types is the typechecked package object.
	Types *types.Package
	// Info holds the type-checker maps for Files.
	Info *types.Info
}

// Loader typechecks `go list` closures from source, caching typechecked
// packages across calls. Safe for concurrent use.
type Loader struct {
	// Dir is where `go list` runs; it must be inside the target module.
	Dir string
	// Fset is shared by every file the loader parses.
	Fset *token.FileSet

	mu     sync.Mutex
	listed map[string]*listedPackage
	typed  map[string]*types.Package
	units  map[string]*Package
}

// NewLoader returns a loader rooted at dir (the module root, or any
// directory inside the module).
func NewLoader(dir string) *Loader {
	return &Loader{
		Dir:    dir,
		Fset:   token.NewFileSet(),
		listed: make(map[string]*listedPackage),
		typed:  map[string]*types.Package{"unsafe": types.Unsafe},
		units:  make(map[string]*Package),
	}
}

// Load lists patterns (with -deps -test) and returns the typechecked
// module units among the matched packages: for each plain package with a
// test-augmented variant, only the augmented unit is returned (it is a
// strict superset), plus any external-test (xtest) units.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	// The `go list` subprocess runs before the lock is taken: the loader
	// is shared process-wide (analysistest funnels every fixture package
	// through one instance) and the per-import callback in LoadImports
	// contends on the same mutex, so holding it across a multi-hundred-
	// millisecond subprocess would stall all concurrent typechecking.
	lps, err := l.list(patterns)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.merge(lps)
	// Collect candidate unit paths first so map iteration order cannot
	// influence typecheck error reporting.
	var paths []string
	for path, lp := range l.listed {
		if lp.Standard || strings.HasSuffix(path, ".test") {
			continue
		}
		paths = append(paths, path)
	}
	sort.Strings(paths)
	augmented := make(map[string]bool)
	for _, path := range paths {
		if ft := l.listed[path].ForTest; ft != "" && path != ft {
			augmented[ft] = true
		}
	}
	var out []*Package
	for _, path := range paths {
		if augmented[path] {
			continue // the bracketed variant supersedes this unit
		}
		u, err := l.ensure(path)
		if err != nil {
			return nil, err
		}
		out = append(out, u)
	}
	return out, nil
}

// LoadImports typechecks the listed import paths (and their closure) and
// returns an importer resolving them — the analysistest hook: fixture
// packages import only what this importer can see.
func (l *Loader) LoadImports(paths ...string) (types.Importer, error) {
	l.mu.Lock()
	var need []string
	for _, p := range paths {
		if p != "unsafe" && l.listed[p] == nil {
			need = append(need, p)
		}
	}
	l.mu.Unlock()
	// As in Load, the subprocess runs outside the critical section; merge
	// discards entries another caller listed in the meantime.
	if len(need) > 0 {
		lps, err := l.list(need)
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		l.merge(lps)
		l.mu.Unlock()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, p := range paths {
		if _, err := l.ensureTypes(p); err != nil {
			return nil, err
		}
	}
	return importerFunc(func(path string) (*types.Package, error) {
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.ensureTypes(path)
	}), nil
}

// list runs `go list -deps -test -json` and decodes the units. It takes
// no locks — callers merge the result under l.mu. CGO_ENABLED=0 keeps
// every file in the closure plain Go, so source typechecking needs no
// cgo preprocessing.
func (l *Loader) list(patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-e", "-deps", "-test",
		"-json=Dir,ImportPath,Name,Standard,ForTest,GoFiles,Imports,ImportMap",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var lps []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err != nil {
			return nil, fmt.Errorf("decode go list output: %w", err)
		}
		lps = append(lps, lp)
	}
	return lps, nil
}

// merge records listed units, first listing wins: an import path already
// present (listed by a concurrent caller, possibly already typechecked)
// is never replaced. Caller holds l.mu.
func (l *Loader) merge(lps []*listedPackage) {
	for _, lp := range lps {
		if l.listed[lp.ImportPath] == nil {
			l.listed[lp.ImportPath] = lp
		}
	}
}

// ensure typechecks the unit (and, recursively, its imports) and caches
// the result. Caller holds l.mu.
func (l *Loader) ensure(path string) (*Package, error) {
	if u := l.units[path]; u != nil {
		return u, nil
	}
	lp := l.listed[path]
	if lp == nil {
		return nil, fmt.Errorf("package %q not listed", path)
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		fn := name
		if !filepath.IsAbs(fn) {
			fn = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := l.check(lp, files, info)
	if err != nil {
		return nil, err
	}
	u := &Package{
		ImportPath: path,
		PkgPath:    plainPath(path),
		Module:     !lp.Standard,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.units[path] = u
	l.typed[path] = tpkg
	return u, nil
}

// ensureTypes typechecks a unit for its exported type information only
// (no syntax retained — the dependency half of ensure). Caller holds l.mu.
//
// Module packages delegate to ensure: a path must never be typechecked
// twice (once as a dependency, once as a unit), or the two
// *types.Package instances fork the import graph's type identities and
// later units see "cannot use X (type T) as T" conflicts.
func (l *Loader) ensureTypes(path string) (*types.Package, error) {
	if tp := l.typed[path]; tp != nil {
		return tp, nil
	}
	lp := l.listed[path]
	if lp == nil {
		return nil, fmt.Errorf("package %q not listed", path)
	}
	if !lp.Standard {
		u, err := l.ensure(path)
		if err != nil {
			return nil, err
		}
		return u.Types, nil
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		fn := name
		if !filepath.IsAbs(fn) {
			fn = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		files = append(files, f)
	}
	tpkg, err := l.check(lp, files, nil)
	if err != nil {
		return nil, err
	}
	l.typed[path] = tpkg
	return tpkg, nil
}

// check runs the type checker over one unit, resolving imports through
// the loader (recursively typechecking them first).
func (l *Loader) check(lp *listedPackage, files []*ast.File, info *types.Info) (*types.Package, error) {
	imp := importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := lp.ImportMap[path]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return l.ensureTypes(path)
	})
	var errs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, err := conf.Check(plainPath(lp.ImportPath), l.Fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("typecheck %s: %w (and %d more)", lp.ImportPath, errs[0], len(errs)-1)
	}
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", lp.ImportPath, err)
	}
	return tpkg, nil
}

// plainPath strips the test-variant bracket suffix:
// "pkg [pkg.test]" -> "pkg".
func plainPath(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Diagnostic is one analyzer finding resolved to a file position.
type Diagnostic struct {
	// Analyzer names the reporting analyzer.
	Analyzer string
	// Pos is the resolved source position.
	Pos token.Position
	// Message is the finding text.
	Message string
}

// String renders the diagnostic as file:line:col: message [analyzer].
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Run executes the analyzers over the units, honoring each analyzer's
// Filter, and returns the deduplicated findings sorted by position.
// Only module units are analyzed.
func Run(fset *token.FileSet, units []*Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	seen := make(map[string]bool)
	var out []Diagnostic
	for _, u := range units {
		if !u.Module {
			continue
		}
		for _, a := range analyzers {
			if a.Filter != nil && !a.Filter(u.PkgPath) {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     u.Files,
				Pkg:       u.Types,
				TypesInfo: u.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := fset.Position(d.Pos)
				key := fmt.Sprintf("%s|%s|%d|%d|%s", a.Name, pos.Filename, pos.Line, pos.Column, d.Message)
				if seen[key] {
					return
				}
				seen[key] = true
				out = append(out, Diagnostic{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, u.ImportPath, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
