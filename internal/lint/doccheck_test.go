package lint

// The doc-comment lint: a revive/golint-style "exported" rule implemented
// over go/ast so it needs no external tool. It walks the packages named
// below and reports every exported declaration — functions, methods,
// types, and top-level var/const specs — that lacks a doc comment. Group
// docs count for grouped specs, as gofmt idiom allows.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lintedDirs are the packages the godoc contract covers, relative to the
// repository root: the public facade plus the persistence-era core.
var lintedDirs = []string{
	".",
	"internal/graph",
	"internal/graphio",
	"internal/obs",
	"internal/service",
	"internal/service/httpapi",
	"internal/shard",
}

// repoRoot walks up from the working directory to the directory holding
// go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

// TestExportedIdentifiersHaveDocComments is the lint entry point.
func TestExportedIdentifiersHaveDocComments(t *testing.T) {
	root := repoRoot(t)
	var missing []string
	for _, rel := range lintedDirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, filepath.Join(root, rel), func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", rel, err)
		}
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				missing = append(missing, checkFile(fset, file)...)
			}
		}
	}
	if len(missing) > 0 {
		t.Errorf("%d exported identifiers lack doc comments:\n  %s",
			len(missing), strings.Join(missing, "\n  "))
	}
}

// checkFile reports undocumented exported declarations in one file.
func checkFile(fset *token.FileSet, file *ast.File) []string {
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s %s", filepath.Base(p.Filename), p.Line, kind, name))
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc.Text() == "" && exportedRecv(d) {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			groupDoc := d.Doc.Text() != ""
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc.Text() == "" && !groupDoc {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					// A group doc ("// Typed errors of ...") covers every
					// spec in the block; otherwise each exported spec needs
					// its own comment (doc or trailing line comment).
					documented := groupDoc || s.Doc.Text() != "" || s.Comment.Text() != ""
					for _, name := range s.Names {
						if name.IsExported() && !documented {
							report(s.Pos(), "var/const", name.Name)
						}
					}
				}
			}
		}
	}
	return missing
}

// exportedRecv reports whether a method's receiver type is exported (an
// unexported type's methods are not part of the public godoc surface).
// Plain functions always count.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver lru[K, V]
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}
