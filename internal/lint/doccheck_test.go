package lint

// The doc-comment lint's legacy entry point. The rule itself now lives
// in the analyzer suite (internal/lint/analyzers.DocComment), where it
// also runs under `go vet -vettool=sdlint` and carries analysistest
// fixtures; this test keeps the long-standing name CI and contributors
// know while delegating to the analyzer, so there is exactly one
// implementation of the rule. Coverage is the docLintPackages allowlist
// in internal/lint/analyzers/doccomment.go.

import (
	"os"
	"testing"

	"strongdecomp/internal/lint/analysis"
	"strongdecomp/internal/lint/analyzers"
	"strongdecomp/internal/lint/driver"
)

// TestExportedIdentifiersHaveDocComments is the lint entry point: every
// exported identifier in the packages covered by the godoc contract must
// carry a doc comment.
func TestExportedIdentifiersHaveDocComments(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := driver.ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	ld := driver.NewLoader(root)
	units, err := ld.Load("./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	diags, err := driver.Run(ld.Fset, units, []*analysis.Analyzer{analyzers.DocComment})
	if err != nil {
		t.Fatalf("run doccomment: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
