// Package analysistest runs an analyzer over checked-in fixture packages
// and compares its diagnostics against `// want "regexp"` comments, the
// same contract as golang.org/x/tools/go/analysis/analysistest: every
// diagnostic must be expected by a want comment on its line, and every
// want comment must be matched by a diagnostic. Fixtures live under
// <caller>/testdata/src/<pkg>/ and may import anything the module's `go
// list` can see (in practice: the standard library), resolved through
// the same source-typechecking loader the repo driver uses.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"strongdecomp/internal/lint/analysis"
	"strongdecomp/internal/lint/driver"
)

var (
	loaderOnce sync.Once
	loader     *driver.Loader
	loaderErr  error
)

// sharedLoader returns the process-wide fixture-import loader, rooted at
// the enclosing module so `go list` resolves the standard library once
// for every fixture test in the binary.
func sharedLoader() (*driver.Loader, error) {
	loaderOnce.Do(func() {
		wd, err := os.Getwd()
		if err != nil {
			loaderErr = err
			return
		}
		root, err := driver.ModuleRoot(wd)
		if err != nil {
			loaderErr = err
			return
		}
		loader = driver.NewLoader(root)
	})
	return loader, loaderErr
}

// expectation is one parsed `// want` pattern, consumed when a
// diagnostic on its line matches.
type expectation struct {
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// Run executes the analyzer over each fixture package directory
// (relative to ./testdata/src) and asserts the want contract.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runOne(t, a, pkg)
	}
}

func runOne(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("%s: no fixture files in %s", a.Name, dir)
	}

	// Expectations: every `// want` comment, keyed by file:line.
	wants := make(map[string][]*expectation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				text = strings.TrimSpace(text)
				spec, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				exps, err := parseWants(spec)
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				wants[key] = append(wants[key], exps...)
			}
		}
	}

	// Typecheck the fixture with imports resolved from source.
	ld, err := sharedLoader()
	if err != nil {
		t.Fatalf("%s: loader: %v", a.Name, err)
	}
	importSet := make(map[string]bool)
	for _, f := range files {
		for _, spec := range f.Imports {
			p, _ := strconv.Unquote(spec.Path.Value)
			importSet[p] = true
		}
	}
	var imports []string
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)
	imp, err := ld.LoadImports(imports...)
	if err != nil {
		t.Fatalf("%s: fixture imports: %v", a.Name, err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkg, fset, files, info)
	if err != nil {
		t.Fatalf("%s: typecheck fixture %s: %v", a.Name, pkg, err)
	}

	// Run the analyzer directly — fixture runs bypass the path Filter.
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       tpkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: run: %v", a.Name, err)
	}

	// Match diagnostics against expectations.
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for _, exp := range wants[key] {
			if !exp.matched && exp.rx.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic at %s: %s", a.Name, key, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, exp := range wants[k] {
			if !exp.matched {
				t.Errorf("%s: expected diagnostic matching %q at %s, got none", a.Name, exp.raw, k)
			}
		}
	}
}

// parseWants parses the string-literal list after "want": one or more
// double- or back-quoted Go string literals, each a regexp.
func parseWants(spec string) ([]*expectation, error) {
	var out []*expectation
	rest := strings.TrimSpace(spec)
	for rest != "" {
		var lit string
		switch rest[0] {
		case '"':
			end := -1
			for i := 1; i < len(rest); i++ {
				if rest[i] == '\\' {
					i++
					continue
				}
				if rest[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated string in %q", spec)
			}
			var err error
			lit, err = strconv.Unquote(rest[:end+1])
			if err != nil {
				return nil, err
			}
			rest = strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated raw string in %q", spec)
			}
			lit = rest[1 : end+1]
			rest = strings.TrimSpace(rest[end+2:])
		default:
			return nil, fmt.Errorf("expected string literal at %q", rest)
		}
		rx, err := regexp.Compile(lit)
		if err != nil {
			return nil, err
		}
		out = append(out, &expectation{rx: rx, raw: lit})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no patterns in want comment")
	}
	return out, nil
}
