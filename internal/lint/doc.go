// Package lint holds the repository's self-contained static checks,
// built without external linter dependencies so `go test ./...` — and
// therefore CI — enforces them everywhere.
//
// The checks are go/analysis-style passes under internal/lint/analyzers,
// running on the mini framework in internal/lint/analysis with the
// source-based loader in internal/lint/driver. They run three ways:
// as ordinary tests (the analysistest fixtures plus the whole-repo
// TestRepoCleanUnderSdlint in internal/lint/analyzers), as a standalone
// command (`go run ./cmd/sdlint ./...`), and as a vet tool
// (`go vet -vettool=$(pwd)/bin/sdlint ./...`). See docs/LINTS.md for
// the analyzer catalogue and the //sdlint:hotpath annotation grammar.
//
// This package keeps the legacy doc-comment entry point
// (TestExportedIdentifiersHaveDocComments), which now delegates to the
// doccomment analyzer.
package lint
