// Package lint holds the repository's self-contained static checks. The
// only current check is the doc-comment lint (doccheck_test.go): every
// exported identifier in the public facade and the core internal packages
// (graph, graphio, service and its httpapi) must carry a godoc comment.
// It runs as an ordinary test, so `go test ./...` — and therefore CI —
// enforces it without external linter dependencies.
package lint
