package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"strongdecomp/internal/lint/analysis"
)

// HotPathDirective marks a function whose body must not allocate; it is
// the annotation the hotpathalloc analyzer enforces and belongs on the
// paths pinned by the repo's AllocsPerRun guards.
const HotPathDirective = "//sdlint:hotpath"

// HotPathAlloc reports allocating constructs inside functions annotated
// with //sdlint:hotpath.
var HotPathAlloc = &analysis.Analyzer{
	Name:   "hotpathalloc",
	Doc:    "reports allocating constructs (make/new, slice/map/closure literals, unbounded append, fmt calls, interface boxing) in //sdlint:hotpath functions",
	Filter: inModule,
	Run:    runHotPathAlloc,
}

func runHotPathAlloc(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, HotPathDirective) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkHotFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	report := func(pos token.Pos, format string, args ...any) {
		pass.Reportf(pos, "hot path ("+fd.Name.Name+"): "+format, args...)
	}
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal allocates")
			case *types.Map:
				report(n.Pos(), "map literal allocates")
			default:
				if len(stack) > 0 {
					if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
						report(n.Pos(), "&composite literal allocates")
					}
				}
			}
		case *ast.FuncLit:
			report(n.Pos(), "function literal allocates a closure")
			return false // its body is not part of this hot path
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates a goroutine")
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := pass.TypesInfo.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(n.Pos(), "string concatenation allocates")
					}
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, report, n, stack)
		}
		return true
	})
}

func checkHotCall(pass *analysis.Pass, report func(token.Pos, string, ...any), call *ast.CallExpr, stack []ast.Node) {
	info := pass.TypesInfo
	// Builtins: make, new, and append that does not feed back into its
	// own operand (the preallocated-capacity reuse shape).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				if !appendReusesOperand(call, stack) {
					report(call.Pos(), "append result is not reassigned to its operand; growth beyond preallocated capacity allocates")
				}
			}
			return
		}
	}
	// Conversions that copy: to string, from string, or to interface.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type.Underlying()
		src := info.TypeOf(call.Args[0])
		switch d := dst.(type) {
		case *types.Interface:
			if src != nil && boxes(src) {
				report(call.Pos(), "conversion to interface boxes %s", src)
			}
		case *types.Basic:
			if d.Info()&types.IsString != 0 && src != nil {
				if _, fromSlice := src.Underlying().(*types.Slice); fromSlice {
					report(call.Pos(), "[]byte/[]rune to string conversion allocates")
				}
			}
		case *types.Slice:
			if src != nil {
				if b, ok := src.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					report(call.Pos(), "string to slice conversion allocates")
				}
			}
		}
		return
	}
	fn := calleeFunc(info, call)
	switch funcPkgPath(fn) {
	case "fmt", "log", "log/slog":
		report(call.Pos(), "call to %s.%s allocates (formatting/boxing)", fn.Pkg().Name(), fn.Name())
		return
	case "errors":
		if fn.Name() == "New" {
			report(call.Pos(), "errors.New allocates")
			return
		}
	}
	// Interface-typed parameters box concrete non-pointer arguments.
	sig, _ := info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < sig.Params().Len()-1 || (!sig.Variadic() && i < sig.Params().Len()):
			pt = sig.Params().At(i).Type()
		case sig.Variadic():
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice
			}
			pt = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || isUntypedNil(info, arg) {
			continue
		}
		if _, argIface := at.Underlying().(*types.Interface); argIface {
			continue
		}
		if boxes(at) {
			report(arg.Pos(), "argument boxes %s into interface parameter", at)
		}
	}
}

// appendReusesOperand reports whether the append call's result is
// assigned back to the expression it appends to (x = append(x, ...)),
// the shape that reuses preallocated capacity.
func appendReusesOperand(call *ast.CallExpr, stack []ast.Node) bool {
	if len(call.Args) == 0 || len(stack) == 0 {
		return false
	}
	asg, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 || ast.Unparen(asg.Rhs[0]) != call {
		return false
	}
	return types.ExprString(asg.Lhs[0]) == types.ExprString(call.Args[0])
}

// boxes reports whether storing a value of concrete type t in an
// interface allocates: true unless the type is pointer-shaped (pointer,
// chan, map, func, unsafe.Pointer).
func boxes(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() != types.UnsafePointer
	}
	return true
}
