package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"strongdecomp/internal/lint/analysis"
)

// AtomicField reports mixed atomic/non-atomic access to struct fields:
// a field of a sync/atomic type (atomic.Int64 and friends) may only be
// touched through its methods or by address, and a plain field that is
// anywhere passed to a sync/atomic function (atomic.AddInt64(&s.f, ...))
// must be accessed that way everywhere in the package.
var AtomicField = &analysis.Analyzer{
	Name:   "atomicfield",
	Doc:    "reports non-atomic access to struct fields that are elsewhere accessed atomically",
	Filter: inModule,
	Run:    runAtomicField,
}

// atomicValueTypes are the sync/atomic wrapper types whose values must
// never be copied or reassigned wholesale.
var atomicValueTypes = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

func runAtomicField(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo

	// Pass 1: collect the plain fields addressed by sync/atomic calls.
	atomicFields := make(map[*types.Var]string) // field -> atomic func name seen
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if funcPkgPath(fn) != "sync/atomic" || fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				if v := selectedField(info, u.X); v != nil {
					atomicFields[v] = fn.Name()
				}
			}
			return true
		})
	}

	// Pass 2: flag offending uses of both field classes.
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			v := selectedField(info, sel)
			if v == nil {
				return true
			}
			if name, isAtomicTyped := atomicTypeName(v.Type()); isAtomicTyped {
				if !allowedAtomicValueUse(stack, sel) {
					pass.Reportf(sel.Pos(), "field %s is %s; use its atomic methods — copying or reassigning it tears the value", v.Name(), name)
				}
				return true
			}
			if fnName, tracked := atomicFields[v]; tracked {
				if !insideAtomicCallArg(info, stack) {
					pass.Reportf(sel.Pos(), "field %s is accessed with sync/atomic.%s elsewhere in this package; this plain access races with it", v.Name(), fnName)
				}
			}
			return true
		})
	}
	return nil, nil
}

// selectedField resolves e to the struct field it selects, or nil.
func selectedField(info *types.Info, e ast.Expr) *types.Var {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	// Qualified package selectors (pkg.Var) resolve through Uses.
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// atomicTypeName reports whether t is (or is an array of) a sync/atomic
// wrapper type, returning a printable name.
func atomicTypeName(t types.Type) (string, bool) {
	if arr, ok := t.Underlying().(*types.Array); ok {
		if name, ok := atomicTypeName(arr.Elem()); ok {
			return "an array of " + name, true
		}
		return "", false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" || !atomicValueTypes[obj.Name()] {
		return "", false
	}
	return "atomic." + obj.Name(), true
}

// allowedAtomicValueUse reports whether the atomic-typed selector is
// used safely: as a method receiver (x.f.Load()), behind & (passing the
// address), indexed into (x.buckets[i], itself then method-called or
// further checked), or ranged over by index only (for i := range
// x.buckets — the spec skips evaluating, and therefore copying, an
// array range expression when at most one iteration variable is used).
func allowedAtomicValueUse(stack []ast.Node, sel *ast.SelectorExpr) bool {
	cur := ast.Node(sel)
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			cur = p
			continue
		case *ast.SelectorExpr:
			// x.f.Load — safe only when cur is the operand, and the outer
			// selector is a method (not a further field copy); method vs
			// field is settled when the outer selector is itself visited.
			return p.X == cur
		case *ast.IndexExpr:
			if p.X != cur {
				return false
			}
			cur = p
			continue
		case *ast.UnaryExpr:
			return p.Op == token.AND && p.X == cur
		case *ast.RangeStmt:
			return p.X == cur && p.Value == nil
		}
		return false
	}
	return false
}

// insideAtomicCallArg reports whether the innermost enclosing call whose
// argument chain contains the node is a sync/atomic function taking the
// field by address: ... atomic.Fn(&x.f ...) ...
func insideAtomicCallArg(info *types.Info, stack []ast.Node) bool {
	// The immediate shape is &sel inside a call's argument list.
	if len(stack) < 2 {
		return false
	}
	u, ok := stack[len(stack)-1].(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return false
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	return funcPkgPath(fn) == "sync/atomic"
}
