package analyzers_test

import (
	"testing"

	"strongdecomp/internal/lint/analysistest"
	"strongdecomp/internal/lint/analyzers"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, analyzers.HotPathAlloc, "hotpathalloc")
}

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, analyzers.AtomicField, "atomicfield")
}

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, analyzers.CtxFlow, "ctxflow")
}

func TestErrSentinel(t *testing.T) {
	analysistest.Run(t, analyzers.ErrSentinel, "errsentinel")
}

func TestLockScope(t *testing.T) {
	analysistest.Run(t, analyzers.LockScope, "lockscope")
}

func TestDocComment(t *testing.T) {
	analysistest.Run(t, analyzers.DocComment, "doccomment")
}
