package analyzers

import (
	"go/ast"
	"go/types"

	"strongdecomp/internal/lint/analysis"
)

// CtxFlow enforces context threading: a function that receives a
// context.Context must actually flow it to its callees. Inside such a
// function it reports calls to context.Background()/context.TODO()
// (which silently detach the caller's deadline and trace), nil passed
// where a context.Context parameter is expected, and calls to F when a
// sibling FContext variant exists that would accept the context.
var CtxFlow = &analysis.Analyzer{
	Name:   "ctxflow",
	Doc:    "reports dropped contexts: Background()/TODO() calls, nil contexts, and non-Context call variants inside functions that receive a context.Context",
	Filter: inModule,
	Run:    runCtxFlow,
}

func runCtxFlow(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ftype, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ftype, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			if name := ctxParamName(ftype); name != "" {
				checkCtxBody(pass, name, body)
			}
			return true // nested functions are visited independently
		})
	}
	return nil, nil
}

// ctxParamName returns the name of the function's first usable (non-
// blank) context.Context parameter, or "".
func ctxParamName(ftype *ast.FuncType) string {
	if ftype == nil || ftype.Params == nil {
		return ""
	}
	for _, field := range ftype.Params.List {
		sel, ok := field.Type.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Context" {
			continue
		}
		if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "context" {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return name.Name
			}
		}
	}
	return ""
}

// checkCtxBody walks one ctx-receiving function body. Nested function
// literals that declare their own context parameter are pruned — they
// are checked against that inner context instead.
func checkCtxBody(pass *analysis.Pass, ctxName string, body *ast.BlockStmt) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && ctxParamName(fl.Type) != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if funcPkgPath(fn) == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
			pass.Reportf(call.Pos(), "context.%s() discards the in-scope context %s; pass %s (or derive from it, e.g. context.WithoutCancel) instead", fn.Name(), ctxName, ctxName)
			return true
		}
		sig, _ := info.TypeOf(call.Fun).(*types.Signature)
		if sig == nil {
			return true
		}
		for i, arg := range call.Args {
			if !isUntypedNil(info, arg) {
				continue
			}
			if pt := paramTypeAt(sig, i, call.Ellipsis.IsValid()); pt != nil && isCtxType(pt) {
				pass.Reportf(arg.Pos(), "nil context passed to %s; pass %s instead", calleeName(fn, call), ctxName)
			}
		}
		if fn != nil && !signatureAcceptsCtx(sig) {
			if alt := ctxSibling(fn); alt != "" {
				pass.Reportf(call.Pos(), "%s ignores the in-scope context %s; call %s instead", fn.Name(), ctxName, alt)
			}
		}
		return true
	})
}

// calleeName renders a short callee name for diagnostics.
func calleeName(fn *types.Func, call *ast.CallExpr) string {
	if fn != nil {
		return fn.Name()
	}
	return types.ExprString(call.Fun)
}

// ctxSibling returns the qualified name of a same-scope FContext variant
// of fn that accepts a context.Context, or "".
func ctxSibling(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	want := fn.Name() + "Context"
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return ""
		}
		if iface, ok := named.Underlying().(*types.Interface); ok {
			for i := 0; i < iface.NumMethods(); i++ {
				if m := iface.Method(i); m.Name() == want && signatureAcceptsCtx(m.Type().(*types.Signature)) {
					return named.Obj().Name() + "." + want
				}
			}
			return ""
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == want && signatureAcceptsCtx(m.Type().(*types.Signature)) {
				return named.Obj().Name() + "." + want
			}
		}
		return ""
	}
	if fn.Pkg() == nil {
		return ""
	}
	if alt, ok := fn.Pkg().Scope().Lookup(want).(*types.Func); ok && signatureAcceptsCtx(alt.Type().(*types.Signature)) {
		return fn.Pkg().Name() + "." + want
	}
	return ""
}
