package analyzers

import (
	"go/ast"
	"strings"

	"strongdecomp/internal/lint/analysis"
)

// docLintPackages is the godoc contract's coverage: the public facade,
// the persistence-era core, the serving tier, every command, and the
// lint infrastructure itself. Packages outside this allowlist (research
// prototypes under internal/rounds, internal/ls, etc.) are exempt until
// they graduate into the supported surface.
var docLintPackages = map[string]bool{
	modulePath:                                 true,
	modulePath + "/cmd/bench":                  true,
	modulePath + "/cmd/decompose":              true,
	modulePath + "/cmd/loadgen":                true,
	modulePath + "/cmd/sdlint":                 true,
	modulePath + "/cmd/serve":                  true,
	modulePath + "/cmd/tables":                 true,
	modulePath + "/cmd/verify":                 true,
	modulePath + "/internal/apps":              true,
	modulePath + "/internal/cluster":           true,
	modulePath + "/internal/graph":             true,
	modulePath + "/internal/graphio":           true,
	modulePath + "/internal/lint":              true,
	modulePath + "/internal/lint/analysis":     true,
	modulePath + "/internal/lint/analysistest": true,
	modulePath + "/internal/lint/analyzers":    true,
	modulePath + "/internal/lint/driver":       true,
	modulePath + "/internal/obs":               true,
	modulePath + "/internal/registry":          true,
	modulePath + "/internal/service":           true,
	modulePath + "/internal/service/httpapi":   true,
	modulePath + "/internal/shard":             true,
}

// DocComment is the godoc lint ported onto the analyzer interface: every
// exported identifier in the covered packages must carry a doc comment.
// It is purely syntactic (no type information), so it also backs the
// legacy TestExportedIdentifiersHaveDocComments entry point.
var DocComment = &analysis.Analyzer{
	Name:   "doccomment",
	Doc:    "reports exported identifiers without doc comments in the packages covered by the godoc contract",
	Filter: func(pkgPath string) bool { return docLintPackages[pkgPath] },
	Run:    runDocComment,
}

func runDocComment(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		// Test files are outside the godoc surface; under go vet the
		// augmented test unit includes them, so filter by filename.
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		checkFileDocs(pass, f)
	}
	return nil, nil
}

// checkFileDocs reports undocumented exported declarations in one file.
func checkFileDocs(pass *analysis.Pass, file *ast.File) {
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc.Text() == "" && exportedRecv(d) {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				pass.Reportf(d.Pos(), "exported %s %s lacks a doc comment", kind, d.Name.Name)
			}
		case *ast.GenDecl:
			groupDoc := d.Doc.Text() != ""
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc.Text() == "" && !groupDoc {
						pass.Reportf(s.Pos(), "exported type %s lacks a doc comment", s.Name.Name)
					}
				case *ast.ValueSpec:
					// A group doc ("// Typed errors of ...") covers every
					// spec in the block; otherwise each exported spec needs
					// its own comment (doc or trailing line comment).
					documented := groupDoc || s.Doc.Text() != "" || s.Comment.Text() != ""
					for _, name := range s.Names {
						if name.IsExported() && !documented {
							pass.Reportf(s.Pos(), "exported var/const %s lacks a doc comment", name.Name)
						}
					}
				}
			}
		}
	}
}

// exportedRecv reports whether a method's receiver type is exported (an
// unexported type's methods are not part of the public godoc surface).
// Plain functions always count.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver lru[K, V]
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}
