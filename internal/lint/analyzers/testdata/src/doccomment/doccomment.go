// Package doccomment exercises the doccomment analyzer: every exported
// identifier needs a doc comment; unexported ones and methods on
// unexported types are exempt.
package doccomment

// Documented has a doc comment and passes.
type Documented struct{}

// Exported carries its doc comment.
func Exported() {}

func Missing() {} // want `exported function Missing lacks a doc comment`

type Bare struct{} // want `exported type Bare lacks a doc comment`

// Method is documented.
func (Documented) Method() {}

func (Documented) Undoc() {} // want `exported method Undoc lacks a doc comment`

type hidden struct{}

// Methods on unexported types are outside the godoc surface.
func (hidden) Whatever() {}

func unexported() {}

// MaxRetries is documented.
const MaxRetries = 3

var DefaultLimits = map[string]int{ // want `exported var/const DefaultLimits lacks a doc comment`
	"queue": 10,
}

// Grouped constants share the block doc.
const (
	GroupA = 1
	GroupB = 2
)

var TrailingDoc = 1 // TrailingDoc's line comment counts as documentation.

var _ = unexported
