// Package hotpathalloc exercises the hotpathalloc analyzer: functions
// annotated //sdlint:hotpath must not allocate; unannotated functions
// may do anything.
package hotpathalloc

import (
	"errors"
	"fmt"
)

type state struct {
	buf []int
	m   map[int]int
}

//sdlint:hotpath
func hotSliceLit() []int {
	return []int{1, 2, 3} // want `hot path \(hotSliceLit\): slice literal allocates`
}

//sdlint:hotpath
func hotMapLit() map[int]int {
	return map[int]int{} // want `map literal allocates`
}

//sdlint:hotpath
func hotMakeNew(n int) {
	_ = make([]int, n) // want `make allocates`
	_ = new(state)     // want `new allocates`
}

//sdlint:hotpath
func hotCompositePtr() *state {
	return &state{} // want `&composite literal allocates`
}

//sdlint:hotpath
func hotClosure() func() {
	return func() {} // want `function literal allocates a closure`
}

//sdlint:hotpath
func hotGo() {
	go helper() // want `go statement allocates a goroutine`
}

//sdlint:hotpath
func hotConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//sdlint:hotpath
func hotAppendGrow(xs []int) []int {
	return append(xs, 1) // want `append result is not reassigned to its operand`
}

//sdlint:hotpath
func hotAppendReuse(s *state, xs []int) {
	s.buf = s.buf[:0]
	s.buf = append(s.buf, xs...) // reuse shape: allowed
}

//sdlint:hotpath
func hotFmt(v int) {
	fmt.Println(v) // want `call to fmt.Println allocates \(formatting/boxing\)`
}

//sdlint:hotpath
func hotErrorsNew() error {
	return errors.New("boom") // want `errors.New allocates`
}

//sdlint:hotpath
func hotBoxConversion(v int) any {
	return any(v) // want `conversion to interface boxes int`
}

//sdlint:hotpath
func hotBoxArg(v int) {
	sink(v) // want `argument boxes int into interface parameter`
}

//sdlint:hotpath
func hotBoxPointerOK(s *state) {
	sink(s) // pointers are interface-shaped: no boxing allocation
}

//sdlint:hotpath
func hotStringConv(b []byte) string {
	return string(b) // want `\[\]byte/\[\]rune to string conversion allocates`
}

//sdlint:hotpath
func hotSliceConv(s string) []byte {
	return []byte(s) // want `string to slice conversion allocates`
}

// cold is unannotated: every allocating construct is fine here.
func cold() *state {
	_ = fmt.Sprint(1)
	go helper()
	return &state{m: map[int]int{1: 2}}
}

func helper() {}

func sink(v any) { _ = v }
