// Package errsentinel exercises the errsentinel analyzer: sentinel
// errors must be matched with errors.Is, and error operands of
// fmt.Errorf must be wrapped with %w.
package errsentinel

import (
	"errors"
	"fmt"
)

// ErrQueueFull is the fixture's sentinel error.
var ErrQueueFull = errors.New("queue full")

func compareEq(err error) bool {
	return err == ErrQueueFull // want `comparison with ErrQueueFull misses wrapped errors; use errors.Is\(err, ErrQueueFull\)`
}

func compareNe(err error) bool {
	return ErrQueueFull != err // want `comparison with ErrQueueFull misses wrapped errors`
}

func compareNilOK(err error) bool {
	return err == nil // nil checks are fine
}

func matchOK(err error) bool {
	return errors.Is(err, ErrQueueFull)
}

func classify(err error) int {
	switch err {
	case nil:
		return 0
	case ErrQueueFull: // want `switch case compares the error to ErrQueueFull with ==; use if/else with errors.Is\(err, ErrQueueFull\)`
		return 1
	}
	return 2
}

func wrapV(err error) error {
	return fmt.Errorf("enqueue: %v", err) // want `error formatted with %v loses the wrap chain; use %w so errors.Is still matches`
}

func wrapS(err error) error {
	return fmt.Errorf("enqueue: %s", err) // want `error formatted with %s loses the wrap chain`
}

func wrapOK(err error) error {
	return fmt.Errorf("enqueue: %w", err)
}

func doubleWrapOK(err error) error {
	return fmt.Errorf("%w: %w", ErrQueueFull, err)
}

func formatValueOK(n int) error {
	return fmt.Errorf("bad count: %v", n) // non-error operand: %v is fine
}
