// Package lockscope exercises the lockscope analyzer: a held mutex must
// not span an outbound HTTP call, subprocess wait, channel send, or
// WaitGroup.Wait — including when the blocking call hides inside a
// same-package helper invoked with the lock held.
package lockscope

import (
	"net/http"
	"os/exec"
	"sync"
)

type server struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	ch    chan int
	wg    sync.WaitGroup
	peers []string
}

func (s *server) httpUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = http.Get(s.peers[0]) // want `http.Get blocks while s.mu is held`
}

func (s *server) httpAfterUnlock() {
	s.mu.Lock()
	peer := s.peers[0]
	s.mu.Unlock()
	_, _ = http.Get(peer)
}

func (s *server) clientDoUnderRLock(c *http.Client, req *http.Request) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	_, _ = c.Do(req) // want `\(http.Client\).Do blocks while s.rw is held`
}

func (s *server) sendUnderLock(v int) {
	s.mu.Lock()
	s.ch <- v // want `channel send may block while s.mu is held`
	s.mu.Unlock()
}

func (s *server) trySendUnderLock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- v: // non-blocking try-send: fine
	default:
	}
}

func (s *server) waitUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wg.Wait() // want `\(sync.WaitGroup\).Wait blocks while s.mu is held`
}

func (s *server) waitAfterUnlock() {
	s.mu.Lock()
	n := len(s.peers)
	s.mu.Unlock()
	s.wg.Wait()
	_ = n
}

// execViaHelper holds the lock across a same-package helper whose body
// blocks on a subprocess — the diagnostic lands on the blocking call.
func (s *server) execViaHelper() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.runTool()
}

func (s *server) runTool() {
	_ = exec.Command("true").Run() // want `\(exec.Cmd\).Run blocks while s.mu is held`
}

// goroutineBodyFresh: a function literal runs later, not under the
// lock the spawning function holds at the go statement.
func (s *server) goroutineBodyFresh() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.wg.Wait()
	}()
}
