// Package ctxflow exercises the ctxflow analyzer: a function that
// receives a context.Context must thread it — no Background()/TODO()
// detours, no nil contexts, no ignoring a FContext sibling.
package ctxflow

import "context"

func leaf(ctx context.Context) error { return ctx.Err() }

func lookup(key string) error { return nil }

func lookupContext(ctx context.Context, key string) error { return leaf(ctx) }

func good(ctx context.Context) error {
	return leaf(ctx)
}

func detaches(ctx context.Context) error {
	return leaf(context.Background()) // want `context.Background\(\) discards the in-scope context ctx`
}

func todoDetaches(ctx context.Context) error {
	return leaf(context.TODO()) // want `context.TODO\(\) discards the in-scope context ctx`
}

func nilCtx(ctx context.Context) error {
	return leaf(nil) // want `nil context passed to leaf; pass ctx instead`
}

func ignoresSibling(ctx context.Context) error {
	return lookup("k") // want `lookup ignores the in-scope context ctx; call ctxflow.lookupContext instead`
}

func usesSibling(ctx context.Context) error {
	return lookupContext(ctx, "k")
}

// root receives no context, so starting one is its job.
func root() error {
	return leaf(context.Background())
}

// spawn returns a function literal with its own context parameter; the
// literal is checked against that inner context, not spawn's.
func spawn(ctx context.Context) func(context.Context) error {
	if err := leaf(ctx); err != nil {
		return nil
	}
	return func(ctx context.Context) error { return leaf(ctx) }
}
