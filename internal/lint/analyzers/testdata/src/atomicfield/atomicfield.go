// Package atomicfield exercises the atomicfield analyzer: fields of
// sync/atomic wrapper types may only be used through their methods or
// by address, and plain fields addressed by sync/atomic functions
// anywhere must be accessed that way everywhere.
package atomicfield

import "sync/atomic"

type counters struct {
	hits  atomic.Int64
	mixed int64
	plain int64
}

func (c *counters) typedOK() int64 {
	c.hits.Add(1) // method receiver: fine
	p := &c.hits  // address-of: fine
	_ = p.Load()
	return c.hits.Load()
}

func (c *counters) typedCopy() {
	h := c.hits // want `field hits is atomic.Int64; use its atomic methods`
	_ = h.Load()
}

func (c *counters) oldStyleAdd() {
	atomic.AddInt64(&c.mixed, 1) // the atomic side of the mixed access
}

func (c *counters) mixedPlainRead() int64 {
	return c.mixed // want `field mixed is accessed with sync/atomic.AddInt64 elsewhere in this package; this plain access races with it`
}

func (c *counters) plainOnly() int64 {
	c.plain++ // never touched by sync/atomic: fine
	return c.plain
}

type histo struct {
	buckets [4]atomic.Uint64
}

func (h *histo) observe(i int) {
	h.buckets[i].Add(1) // index-then-method: fine
}

func (h *histo) snapshot() [4]uint64 {
	var out [4]uint64
	for i := range h.buckets { // index-only range does not copy the array: fine
		out[i] = h.buckets[i].Load()
	}
	return out
}

func (h *histo) tearCopy() [4]atomic.Uint64 {
	return h.buckets // want `field buckets is an array of atomic.Uint64; use its atomic methods`
}

func (h *histo) tearRange() uint64 {
	var sum uint64
	for _, b := range h.buckets { // want `field buckets is an array of atomic.Uint64`
		sum += b.Load()
	}
	return sum
}
