package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"

	"strongdecomp/internal/lint/analysis"
)

// ErrSentinel enforces wrap-aware sentinel handling: sentinel errors
// (package-level error variables such as ErrQueueFull or io.EOF) must be
// matched with errors.Is, never ==/!= or a switch on the error value,
// and error operands of fmt.Errorf must be wrapped with %w — %v or %s
// flattens the chain and silently breaks every downstream errors.Is.
var ErrSentinel = &analysis.Analyzer{
	Name:   "errsentinel",
	Doc:    "reports ==/!=/switch comparisons against sentinel errors and fmt.Errorf %v/%s formatting of errors where %w is required",
	Filter: inModule,
	Run:    runErrSentinel,
}

func runErrSentinel(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, pair := range [2][2]ast.Expr{{n.X, n.Y}, {n.Y, n.X}} {
					v := sentinelError(info, pair[0])
					if v == nil || isUntypedNil(info, pair[1]) {
						continue
					}
					pass.Reportf(n.Pos(), "comparison with %s misses wrapped errors; use errors.Is(err, %s)", v.Name(), v.Name())
					break
				}
			case *ast.SwitchStmt:
				if n.Tag == nil || !isErrorExpr(info, n.Tag) {
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if v := sentinelError(info, e); v != nil {
							pass.Reportf(e.Pos(), "switch case compares the error to %s with ==; use if/else with errors.Is(err, %s)", v.Name(), v.Name())
						}
					}
				}
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// sentinelError resolves e to a package-level error variable, or nil.
func sentinelError(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !types.AssignableTo(v.Type(), errorType) {
		return nil
	}
	return v
}

// isErrorExpr reports whether e's type is assignable to error — the
// precondition for %w wrapping and errors.Is matching.
func isErrorExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return t != nil && types.AssignableTo(t, errorType)
}

// checkErrorfWrap flags error-typed fmt.Errorf operands formatted with
// %v or %s instead of %w.
func checkErrorfWrap(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	fn := calleeFunc(info, call)
	if funcPkgPath(fn) != "fmt" || fn.Name() != "Errorf" || len(call.Args) < 2 {
		return
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	for _, v := range parseFmtVerbs(format) {
		if v.c != 'v' && v.c != 's' {
			continue
		}
		argIdx := 1 + v.arg
		if argIdx >= len(call.Args) || call.Ellipsis.IsValid() {
			continue
		}
		arg := call.Args[argIdx]
		if isUntypedNil(info, arg) || !isErrorExpr(info, arg) {
			continue
		}
		pass.Reportf(arg.Pos(), "error formatted with %%%c loses the wrap chain; use %%w so errors.Is still matches (%s)", v.c, quoteShort(format))
	}
}

// fmtVerb is one parsed formatting directive: the zero-based operand
// index it consumes and the verb character.
type fmtVerb struct {
	arg int
	c   byte
}

// parseFmtVerbs scans a Printf-style format string, handling %%,
// flags, *-width/precision (which consume an operand), and explicit
// [n] argument indexes.
func parseFmtVerbs(s string) []fmtVerb {
	var out []fmtVerb
	arg := 0
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			continue
		}
		i++
		if i < len(s) && s[i] == '%' {
			continue
		}
		for i < len(s) && (s[i] == '+' || s[i] == '-' || s[i] == '#' || s[i] == ' ' || s[i] == '0') {
			i++
		}
		if i < len(s) && s[i] == '[' {
			j := i
			for j < len(s) && s[j] != ']' {
				j++
			}
			if j == len(s) {
				return out // malformed; fmt would print %!(BADINDEX)
			}
			if n, err := strconv.Atoi(s[i+1 : j]); err == nil {
				arg = n - 1
			}
			i = j + 1
		}
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
		}
		if i < len(s) && s[i] == '*' {
			arg++
			i++
		}
		if i < len(s) && s[i] == '.' {
			i++
			for i < len(s) && s[i] >= '0' && s[i] <= '9' {
				i++
			}
			if i < len(s) && s[i] == '*' {
				arg++
				i++
			}
		}
		if i >= len(s) {
			break
		}
		out = append(out, fmtVerb{arg: arg, c: s[i]})
		arg++
	}
	return out
}

// quoteShort renders the format string for a diagnostic, truncated so
// messages stay one line.
func quoteShort(s string) string {
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return strconv.Quote(s)
}
