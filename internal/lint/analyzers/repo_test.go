package analyzers_test

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"strongdecomp/internal/lint/analyzers"
	"strongdecomp/internal/lint/driver"
)

// TestRepoCleanUnderSdlint is the tier-1 entry point of the lint suite:
// it loads the whole module (tests included) and runs every analyzer,
// the same work `go vet -vettool=sdlint ./...` does in CI. Any finding
// is a regression against an invariant this repo's performance and
// correctness claims rest on.
func TestRepoCleanUnderSdlint(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module typecheck is not short")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := driver.ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	ld := driver.NewLoader(root)
	units, err := ld.Load("./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	diags, err := driver.Run(ld.Fset, units, analyzers.All())
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// findingLine matches the driver's rendering:
// path:line:col: message [analyzer]
var findingLine = regexp.MustCompile(`^(\S+):(\d+):(\d+): (.+) \[([a-z]+)\]$`)

// TestPrefixFindingsRecord asserts the recorded pre-fix evidence: each
// analyzer except atomicfield found at least one real issue in this
// PR's starting tree (all fixed in this PR), and atomicfield's clean
// audit is recorded explicitly. The record keeps the suite honest — an
// analyzer that never fired on real code is untested against reality.
func TestPrefixFindingsRecord(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "prefix_findings.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	counts := make(map[string]int)
	auditNote := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			if strings.Contains(line, "atomicfield:  0 — audited clean") {
				auditNote = true
			}
			continue
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		m := findingLine.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed finding line: %q", line)
			continue
		}
		if n, err := strconv.Atoi(m[2]); err != nil || n <= 0 {
			t.Errorf("bad line number in %q", line)
		}
		counts[m[5]]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for _, a := range analyzers.All() {
		switch a.Name {
		case "atomicfield":
			if counts[a.Name] != 0 {
				t.Errorf("atomicfield records %d findings but is documented as audited-clean", counts[a.Name])
			}
			if !auditNote {
				t.Error("atomicfield audit note missing from prefix_findings.txt header")
			}
		default:
			if counts[a.Name] < 1 {
				t.Errorf("analyzer %s has no recorded real pre-fix finding", a.Name)
			}
		}
	}
	for name := range counts {
		known := false
		for _, a := range analyzers.All() {
			if a.Name == name {
				known = true
			}
		}
		if !known {
			t.Errorf("record names unknown analyzer %q", name)
		}
	}
}
