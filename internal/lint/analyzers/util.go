// Package analyzers holds the repo-specific sdlint analysis passes: the
// invariants the performance and correctness claims rest on (zero-alloc
// hot paths, atomics-only counter access, threaded contexts, errors.Is
// sentinel matching, lock scopes that never span blocking calls, and the
// godoc contract) expressed as static checks over typed ASTs. Every
// analyzer runs from `go test` (repo_test.go), from cmd/sdlint, and
// under `go vet -vettool`; see docs/LINTS.md for the catalogue.
package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"strongdecomp/internal/lint/analysis"
)

// modulePath is the import-path prefix of the module under analysis;
// analyzers never fire outside it (fixture runs bypass filters).
const modulePath = "strongdecomp"

// inModule is the default analyzer filter.
func inModule(pkgPath string) bool {
	return pkgPath == modulePath || strings.HasPrefix(pkgPath, modulePath+"/")
}

// walkStack walks root depth-first, calling fn with each node and the
// stack of its ancestors (outermost first, excluding the node itself).
// fn returning false prunes the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := fn(n, stack)
		if ok {
			stack = append(stack, n)
		}
		return ok
	})
}

// calleeFunc resolves a call's static callee, or nil for builtins,
// conversions, and calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcPkgPath returns the defining package path of fn ("" for builtins
// and universe-scope objects).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t is or implements error.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorType) || types.Implements(types.NewPointer(t), errorType) ||
		types.Identical(t.Underlying(), errorType)
}

// isUntypedNil reports whether e is the predeclared nil.
func isUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

// hasDirective reports whether the comment group contains the given
// //sdlint: directive line (directives are invisible to Text(), so the
// raw list is scanned).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// firstParamIsCtx reports whether the signature's first parameter is a
// context.Context.
func firstParamIsCtx(sig *types.Signature) bool {
	return sig != nil && sig.Params().Len() > 0 && isCtxType(sig.Params().At(0).Type())
}

// signatureAcceptsCtx reports whether any parameter is a context.Context.
func signatureAcceptsCtx(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isCtxType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// paramTypeAt returns the effective type of the i'th argument's
// parameter, unwrapping the variadic element type when the call does
// not forward a slice with `...`; nil when i is out of range.
func paramTypeAt(sig *types.Signature, i int, hasEllipsis bool) types.Type {
	n := sig.Params().Len()
	switch {
	case i < n-1 || (!sig.Variadic() && i < n):
		return sig.Params().At(i).Type()
	case sig.Variadic():
		last := sig.Params().At(n - 1).Type()
		if hasEllipsis {
			return last
		}
		if s, ok := last.(*types.Slice); ok {
			return s.Elem()
		}
	}
	return nil
}

// All returns the complete sdlint suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		HotPathAlloc,
		AtomicField,
		CtxFlow,
		ErrSentinel,
		LockScope,
		DocComment,
	}
}
