package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"strongdecomp/internal/lint/analysis"
)

// LockScope reports blocking operations performed while a sync.Mutex or
// sync.RWMutex is held: outbound HTTP round-trips, subprocess waits
// (os/exec Run/Output/Wait), channel sends (except non-blocking
// select-with-default sends), and WaitGroup.Wait. Any of these can
// stall every other goroutine contending for the lock — in the serving
// tier that turns one slow peer into a full shard stall. The scan is
// intra-procedural and source-ordered: a lock is considered held from
// the Lock/RLock call until a matching Unlock/RUnlock in the same
// function body; deferred unlocks keep the lock held to the end of the
// function, which is also true at runtime.
var LockScope = &analysis.Analyzer{
	Name:   "lockscope",
	Doc:    "reports HTTP calls, subprocess waits, channel sends, and WaitGroup.Wait while a sync.Mutex/RWMutex is held",
	Filter: inModule,
	Run:    runLockScope,
}

func runLockScope(pass *analysis.Pass) (any, error) {
	c := &lockChecker{
		pass:     pass,
		decls:    make(map[*types.Func]*ast.FuncDecl),
		reported: make(map[lockReportKey]bool),
	}
	var order []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			order = append(order, fd)
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.decls[fn] = fd
			}
		}
	}
	for _, fd := range order {
		c.walk(fd.Body, make(map[string]heldLock), make(map[*ast.FuncDecl]bool))
	}
	return nil, nil
}

// heldLock records one acquired lock: where and with which method.
type heldLock struct {
	pos    token.Pos
	method string // Lock or RLock
}

// lockReportKey dedups diagnostics: a blocking operation inside a
// shared helper is reported once per held lock, not once per locked
// caller that reaches it.
type lockReportKey struct {
	pos token.Pos
	key string
}

// lockChecker carries the per-package state of the lockscope walk: the
// package's function declarations (for descending into same-package
// callees while a lock is held) and the dedup set.
type lockChecker struct {
	pass     *analysis.Pass
	decls    map[*types.Func]*ast.FuncDecl
	reported map[lockReportKey]bool
}

// walk scans one function body in source order, tracking which mutexes
// (keyed by receiver expression) are held. While at least one lock is
// held, calls to same-package functions descend into the callee with
// the held-set shared — matching the "fooLocked helper" idiom where the
// blocking operation hides one call away — with visiting guarding
// against recursion. Function literals start with a fresh held-set:
// they run later, under whatever locks their call site holds, which
// this source-order scan cannot see.
func (c *lockChecker) walk(body *ast.BlockStmt, held map[string]heldLock, visiting map[*ast.FuncDecl]bool) {
	pass := c.pass
	info := pass.TypesInfo
	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.walk(n.Body, make(map[string]heldLock), visiting)
			return false
		case *ast.SendStmt:
			if len(held) == 0 || nonBlockingSelectSend(n, stack) {
				return true
			}
			for key, h := range held {
				c.reportf(n.Arrow, key, "channel send may block while %s is held (%s at %s); send after unlocking or use a select with default", key, h.method, pass.Fset.Position(h.pos))
			}
		case *ast.CallExpr:
			recv, method := mutexCall(info, n)
			if recv != "" {
				switch method {
				case "Lock", "RLock":
					held[recv] = heldLock{pos: n.Pos(), method: method}
				case "Unlock", "RUnlock":
					if !inDefer(stack) {
						delete(held, recv)
					}
				}
				return true
			}
			if len(held) == 0 {
				return true
			}
			if desc := blockingCallDesc(info, n); desc != "" {
				for key, h := range held {
					c.reportf(n.Pos(), key, "%s blocks while %s is held (%s at %s); release the lock before the call", desc, key, h.method, pass.Fset.Position(h.pos))
				}
				return true
			}
			if fn := calleeFunc(info, n); fn != nil {
				if fd := c.decls[fn]; fd != nil && !visiting[fd] {
					visiting[fd] = true
					c.walk(fd.Body, held, visiting)
					visiting[fd] = false
				}
			}
		}
		return true
	})
}

// reportf emits one diagnostic per (position, lock) pair.
func (c *lockChecker) reportf(pos token.Pos, key string, format string, args ...any) {
	rk := lockReportKey{pos: pos, key: key}
	if c.reported[rk] {
		return
	}
	c.reported[rk] = true
	c.pass.Reportf(pos, format, args...)
}

// mutexCall reports whether the call is Lock/RLock/Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex (direct or promoted through embedding),
// returning the receiver expression text and the method name.
func mutexCall(info *types.Info, call *ast.CallExpr) (recv, method string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	if name := recvTypeName(fn); name != "Mutex" && name != "RWMutex" {
		return "", ""
	}
	return types.ExprString(sel.X), fn.Name()
}

// recvTypeName returns the name of fn's receiver type ("" for plain
// functions), dereferencing a pointer receiver.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// blockingCallDesc classifies a call as a known blocking operation and
// returns a printable description, or "".
func blockingCallDesc(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil {
		return ""
	}
	switch funcPkgPath(fn) {
	case "net/http":
		recvName := recvTypeName(fn)
		if recvName == "" {
			switch fn.Name() {
			case "Get", "Head", "Post", "PostForm":
				return "http." + fn.Name()
			}
			return ""
		}
		switch fn.Name() {
		case "Do", "Get", "Head", "Post", "PostForm", "RoundTrip":
			return "(http." + recvName + ")." + fn.Name()
		}
	case "sync":
		if fn.Name() == "Wait" && recvTypeName(fn) == "WaitGroup" {
			return "(sync.WaitGroup).Wait"
		}
	case "os/exec":
		if recvTypeName(fn) != "Cmd" {
			return ""
		}
		switch fn.Name() {
		case "Run", "Output", "CombinedOutput", "Wait":
			return "(exec.Cmd)." + fn.Name()
		}
	}
	return ""
}

// nonBlockingSelectSend reports whether the send statement is the comm
// clause of a select that has a default case — the non-blocking
// try-send shape, which cannot stall the lock holder.
func nonBlockingSelectSend(send *ast.SendStmt, stack []ast.Node) bool {
	// Ancestors of the comm statement: ... SelectStmt, BlockStmt
	// (select body), CommClause.
	if len(stack) < 3 {
		return false
	}
	cc, ok := stack[len(stack)-1].(*ast.CommClause)
	if !ok || cc.Comm != ast.Stmt(send) {
		return false
	}
	sel, ok := stack[len(stack)-3].(*ast.SelectStmt)
	if !ok {
		return false
	}
	for _, s := range sel.Body.List {
		if c, ok := s.(*ast.CommClause); ok && c.Comm == nil {
			return true
		}
	}
	return false
}

// inDefer reports whether the node at the top of the stack is the call
// of a defer statement.
func inDefer(stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	_, ok := stack[len(stack)-1].(*ast.DeferStmt)
	return ok
}
