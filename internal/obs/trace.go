// Package obs is the observability substrate of the serving stack:
// request traces that survive shard hops, structured span records emitted
// as log/slog JSON lines, lock-free log-bucketed latency histograms, and
// the HTTP middleware that ties them to a request's context.Context.
//
// The package is deliberately passive: nothing here starts goroutines or
// owns configuration. A process builds one Collector, wraps its handler
// with Collector.Middleware, and every layer below (proxy, service,
// engine) observes through the context — when no collector is attached,
// every entry point is a cheap no-op, so library callers pay nothing.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// TraceHeader is the HTTP header carrying the trace context across shard
// hops (proxy forwards, peer-cache lookups), alongside the cluster's
// X-Strongdecomp-Shard auth header. Wire form: "traceID:spanID:hop".
const TraceHeader = "X-Strongdecomp-Trace"

// maxHops bounds the hop counter a parsed header may carry; anything
// larger is treated as garbage, not trusted input.
const maxHops = 64

// Trace identifies one request's journey through the cluster: a TraceID
// shared by every span the request produces on every shard, a SpanID
// fresh per hop, and the hop count (0 at the edge, +1 per forward).
type Trace struct {
	// TraceID is shared by all spans of one request, across shards.
	TraceID string
	// SpanID is unique to this hop of the request.
	SpanID string
	// Hop counts forwards: 0 where the request entered the cluster.
	Hop int
}

// NewTrace mints a fresh root trace (hop 0) with random IDs.
func NewTrace() Trace {
	return Trace{TraceID: randHex(16), SpanID: randHex(8)}
}

// Valid reports whether t carries usable IDs.
func (t Trace) Valid() bool { return t.TraceID != "" && t.SpanID != "" }

// Child returns the trace context for the next hop: same TraceID, a
// fresh SpanID, and the hop counter incremented.
func (t Trace) Child() Trace {
	return Trace{TraceID: t.TraceID, SpanID: randHex(8), Hop: t.Hop + 1}
}

// String renders the header wire form "traceID:spanID:hop".
func (t Trace) String() string {
	return t.TraceID + ":" + t.SpanID + ":" + strconv.Itoa(t.Hop)
}

// ParseTrace parses the header wire form. It accepts foreign trace IDs
// (clients may mint their own) but rejects anything that is not plain
// [0-9a-zA-Z_-] tokens of sane length, so a hostile header can neither
// grow logs without bound nor smuggle structure into them.
func ParseTrace(v string) (Trace, bool) {
	if v == "" {
		return Trace{}, false
	}
	parts := strings.Split(v, ":")
	if len(parts) != 3 || !validToken(parts[0]) || !validToken(parts[1]) {
		return Trace{}, false
	}
	hop, err := strconv.Atoi(parts[2])
	if err != nil || hop < 0 || hop > maxHops {
		return Trace{}, false
	}
	return Trace{TraceID: parts[0], SpanID: parts[1], Hop: hop}, true
}

// validToken bounds a trace/span ID to 1..64 chars of [0-9a-zA-Z_-].
func validToken(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// randHex returns n random bytes hex-encoded (2n characters).
func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failing is a broken platform; a constant ID keeps
		// tracing degraded-but-alive instead of panicking the serving path.
		return strings.Repeat("0", 2*n)
	}
	return hex.EncodeToString(b)
}

// ctxKey keys the per-request observability state in a context.Context.
type ctxKey struct{}

// state is the per-request observability context: the trace identity and
// the process collector spans and measurements flow into.
type state struct {
	trace Trace
	col   *Collector
}

// WithRequest attaches a collector and trace to ctx — what the HTTP
// middleware does once per request at the edge.
func WithRequest(ctx context.Context, c *Collector, t Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, &state{trace: t, col: c})
}

// stateFrom extracts the request state, or nil when observability is not
// attached (library callers, tests, background work).
func stateFrom(ctx context.Context) *state {
	s, _ := ctx.Value(ctxKey{}).(*state)
	return s
}

// Enabled reports whether ctx carries an observability state. Layers
// with otherwise-measurable bookkeeping (engine stage clocks) gate on
// this so un-instrumented callers pay one context lookup and nothing
// else.
func Enabled(ctx context.Context) bool { return stateFrom(ctx) != nil }

// TraceFrom returns the trace attached to ctx, if any.
func TraceFrom(ctx context.Context) (Trace, bool) {
	if s := stateFrom(ctx); s != nil && s.trace.Valid() {
		return s.trace, true
	}
	return Trace{}, false
}

// CollectorFrom returns the collector attached to ctx, or nil.
func CollectorFrom(ctx context.Context) *Collector {
	if s := stateFrom(ctx); s != nil {
		return s.col
	}
	return nil
}

// Transfer copies the observability state of src onto dst. It exists for
// computations that deliberately detach from the caller's cancellation
// (the service's singleflight runs on context.WithoutCancel) but must
// keep emitting spans under the caller's trace. A dst that already
// carries state is returned unchanged.
func Transfer(dst, src context.Context) context.Context {
	if s := stateFrom(src); s != nil && stateFrom(dst) == nil {
		return context.WithValue(dst, ctxKey{}, s)
	}
	return dst
}

// InjectTrace stamps the next hop's trace context onto an outbound
// request's headers: same trace ID, fresh span ID, hop incremented. A
// ctx without a trace leaves h untouched, so cluster-internal calls made
// outside any request (replication pushes, probes) stay header-free.
func InjectTrace(ctx context.Context, h http.Header) {
	if s := stateFrom(ctx); s != nil && s.trace.Valid() {
		h.Set(TraceHeader, s.trace.Child().String())
	}
}

// Span emits one structured span record for a stage that began at start.
// It is a no-op without a collector on ctx.
func Span(ctx context.Context, stage string, start time.Time, attrs ...slog.Attr) {
	SpanDuration(ctx, stage, time.Since(start), attrs...)
}

// SpanDuration is Span with an explicit duration — for stages whose
// elapsed time was measured elsewhere (engine stage timings, compute
// results). The record is one slog JSON line with msg "span" and fields
// trace_id, span_id, hop, stage, duration_ms plus the extra attrs.
func SpanDuration(ctx context.Context, stage string, d time.Duration, attrs ...slog.Attr) {
	s := stateFrom(ctx)
	if s == nil || s.col == nil || s.col.logger == nil {
		return
	}
	base := make([]slog.Attr, 0, 5+len(attrs))
	base = append(base,
		slog.String("trace_id", s.trace.TraceID),
		slog.String("span_id", s.trace.SpanID),
		slog.Int("hop", s.trace.Hop),
		slog.String("stage", stage),
		slog.Float64("duration_ms", float64(d)/float64(time.Millisecond)),
	)
	base = append(base, attrs...)
	s.col.logger.LogAttrs(ctx, slog.LevelInfo, "span", base...)
}

// ObserveAlgorithm records one computation's latency into the
// per-algorithm histogram of the collector on ctx (no-op without one).
func ObserveAlgorithm(ctx context.Context, algo string, d time.Duration) {
	if c := CollectorFrom(ctx); c != nil {
		c.algorithms.Observe(algo, d)
	}
}

// ObserveApp records one application run's latency into the per-app
// histogram of the collector on ctx (no-op without one).
func ObserveApp(ctx context.Context, app string, d time.Duration) {
	if c := CollectorFrom(ctx); c != nil {
		c.apps.Observe(app, d)
	}
}
