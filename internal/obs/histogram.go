package obs

// Log-bucketed latency histograms: fixed power-of-two buckets indexed by
// the bit length of the observation in nanoseconds, counted with atomics.
// Observe is lock-free and allocation-free — the hot-path property that
// lets every request be measured — and Snapshot/Quantile do the (cheap)
// reading-side work only when someone scrapes or reports.

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// numBuckets covers every possible observation: bucket i holds durations
// whose nanosecond count has bit length i, i.e. values in [2^(i-1), 2^i),
// and bits.Len64 of a non-negative int64 is at most 63.
const numBuckets = 64

// The Prometheus exposition exports a fixed window of the power-of-two
// bounds so the series count stays bounded (27 buckets + +Inf per label):
// everything at or below 2^10 ns (~1 µs) folds into the first bound and
// everything above 2^36 ns (~68.7 s) lands in +Inf.
const (
	minBucketExp = 10
	maxBucketExp = 36
)

// Histogram is a fixed-layout log₂-bucketed latency histogram. The zero
// value is ready to use; all methods are safe for concurrent use.
type Histogram struct {
	count   atomic.Uint64
	sumNS   atomic.Int64
	buckets [numBuckets]atomic.Uint64
}

// Observe folds one duration into the histogram: two atomic adds and one
// atomic increment, no locks, no allocations.
//
//sdlint:hotpath
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bits.Len64(uint64(ns))].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
}

// Snapshot returns a point-in-time copy of the histogram. Counters are
// read individually, so a snapshot taken under concurrent writes may be
// off by in-flight observations — never torn within one counter.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sumNS.Load())
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Snapshot is a point-in-time copy of a Histogram: total count, total
// sum, and the raw (non-cumulative) per-bucket counts.
type Snapshot struct {
	// Count is the number of observations.
	Count uint64
	// Sum is the total of all observations.
	Sum time.Duration
	// Buckets holds the raw count per log₂ bucket: Buckets[i] counts
	// observations whose nanosecond value has bit length i.
	Buckets [numBuckets]uint64
}

// Mean returns the average observation (0 when empty).
func (s Snapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile returns an upper bound on the q-quantile observation: the
// upper edge of the bucket the quantile falls in. q is clamped to [0, 1];
// an empty snapshot reports 0.
func (s Snapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := range s.Buckets {
		cum += s.Buckets[i]
		if cum >= target {
			if i == 0 {
				return 0
			}
			return time.Duration(uint64(1)<<uint(i) - 1)
		}
	}
	return time.Duration(math.MaxInt64)
}

// BucketBounds returns the exposition window's upper bounds in seconds,
// ascending, excluding +Inf — the `le` label values every exported
// histogram family shares.
func BucketBounds() []float64 {
	out := make([]float64, 0, maxBucketExp-minBucketExp+1)
	for e := minBucketExp; e <= maxBucketExp; e++ {
		out = append(out, float64(uint64(1)<<uint(e))/1e9)
	}
	return out
}

// CumulativeBuckets folds the raw buckets into cumulative counts aligned
// with BucketBounds. The +Inf bucket is Count, by definition of
// cumulative histograms, and is not included here.
func (s Snapshot) CumulativeBuckets() []uint64 {
	out := make([]uint64, maxBucketExp-minBucketExp+1)
	var cum uint64
	for i := 0; i <= maxBucketExp; i++ {
		cum += s.Buckets[i]
		if i >= minBucketExp {
			out[i-minBucketExp] = cum
		}
	}
	return out
}

// HistogramVec is a set of Histograms keyed by one label value (endpoint,
// algorithm). The read path — observing under an existing label — takes a
// shared lock and allocates nothing; creating a label is the only write.
type HistogramVec struct {
	mu sync.RWMutex
	m  map[string]*Histogram
}

// Get returns the histogram for label, creating it on first use.
func (v *HistogramVec) Get(label string) *Histogram {
	v.mu.RLock()
	h := v.m[label]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.m == nil {
		v.m = make(map[string]*Histogram)
	}
	if h := v.m[label]; h != nil {
		return h
	}
	h = &Histogram{}
	v.m[label] = h
	return h
}

// Observe folds one duration into the label's histogram.
func (v *HistogramVec) Observe(label string, d time.Duration) {
	v.Get(label).Observe(d)
}

// Snapshots returns a point-in-time copy of every label's histogram.
func (v *HistogramVec) Snapshots() map[string]Snapshot {
	v.mu.RLock()
	hs := make(map[string]*Histogram, len(v.m))
	for k, h := range v.m {
		hs[k] = h
	}
	v.mu.RUnlock()
	out := make(map[string]Snapshot, len(hs))
	for k, h := range hs {
		out[k] = h.Snapshot()
	}
	return out
}
