package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceRoundTrip(t *testing.T) {
	tr := NewTrace()
	if !tr.Valid() || tr.Hop != 0 {
		t.Fatalf("NewTrace() = %+v, want valid hop-0 trace", tr)
	}
	got, ok := ParseTrace(tr.String())
	if !ok || got != tr {
		t.Fatalf("ParseTrace(%q) = %+v, %v; want %+v", tr.String(), got, ok, tr)
	}
	child := tr.Child()
	if child.TraceID != tr.TraceID {
		t.Errorf("Child changed trace ID: %q -> %q", tr.TraceID, child.TraceID)
	}
	if child.SpanID == tr.SpanID {
		t.Error("Child kept the parent span ID")
	}
	if child.Hop != tr.Hop+1 {
		t.Errorf("Child hop = %d, want %d", child.Hop, tr.Hop+1)
	}
}

func TestParseTraceRejectsGarbage(t *testing.T) {
	for _, v := range []string{
		"", "abc", "a:b", "a:b:c:d", "a:b:-1", "a:b:9999",
		"a b:c:0", `a":c:0`, strings.Repeat("x", 65) + ":b:0",
	} {
		if _, ok := ParseTrace(v); ok {
			t.Errorf("ParseTrace(%q) accepted, want rejected", v)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("Count = %d, want 100", s.Count)
	}
	if s.Sum != 100*time.Millisecond {
		t.Fatalf("Sum = %v, want 100ms", s.Sum)
	}
	if s.Mean() != time.Millisecond {
		t.Fatalf("Mean = %v, want 1ms", s.Mean())
	}
	// 1ms lands in the bucket [2^19, 2^20) ns; the quantile reports the
	// bucket's upper edge, so it must bound the observation from above
	// within one power of two.
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := s.Quantile(q)
		if got < time.Millisecond || got > 2*time.Millisecond+time.Millisecond/10 {
			t.Errorf("Quantile(%g) = %v, want within [1ms, ~2.1ms]", q, got)
		}
	}
	if (Snapshot{}).Quantile(0.99) != 0 {
		t.Error("empty snapshot quantile should be 0")
	}
}

func TestHistogramSpread(t *testing.T) {
	var h Histogram
	h.Observe(time.Microsecond)       // fast
	h.Observe(100 * time.Millisecond) // slow
	s := h.Snapshot()
	if p0 := s.Quantile(0.25); p0 > 2*time.Microsecond+time.Microsecond/2 {
		t.Errorf("low quantile = %v, want ~µs scale", p0)
	}
	if p1 := s.Quantile(1); p1 < 100*time.Millisecond {
		t.Errorf("max quantile = %v, want >= 100ms", p1)
	}
}

func TestHistogramCumulativeExport(t *testing.T) {
	var h Histogram
	h.Observe(0)                // below the exported window
	h.Observe(time.Millisecond) // inside it
	h.Observe(10 * time.Minute) // above it: +Inf only
	h.Observe(-time.Second)     // clamped to 0
	bounds, cum := BucketBounds(), h.Snapshot().CumulativeBuckets()
	if len(bounds) != len(cum) {
		t.Fatalf("len(bounds) = %d, len(cum) = %d", len(bounds), len(cum))
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative buckets not monotonic at %d: %v", i, cum)
		}
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not ascending at %d: %v", i, bounds)
		}
	}
	if cum[0] != 2 { // the two ~0 observations fold into the first bound
		t.Errorf("first bound count = %d, want 2", cum[0])
	}
	if last := cum[len(cum)-1]; last != 3 { // 10min exceeds the window
		t.Errorf("last bound count = %d, want 3 (10min lands only in +Inf)", last)
	}
}

func TestHistogramVecConcurrent(t *testing.T) {
	var v HistogramVec
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := []string{"a", "b"}[w%2]
			for i := 0; i < per; i++ {
				v.Observe(label, time.Duration(i)*time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	snaps := v.Snapshots()
	if got := snaps["a"].Count + snaps["b"].Count; got != workers*per {
		t.Fatalf("total observations = %d, want %d", got, workers*per)
	}
}

// spanLog collects the middleware's slog JSON lines for assertions.
type spanLog struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (l *spanLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.Write(p)
}

func (l *spanLog) records(t *testing.T) []map[string]any {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(l.buf.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("undecodable slog line %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

func TestMiddlewareTraceAndSpans(t *testing.T) {
	log := &spanLog{}
	c := NewCollector(slog.New(slog.NewJSONHandler(log, nil)))
	var sawTrace Trace
	h := c.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawTrace, _ = TraceFrom(r.Context())
		Span(r.Context(), "inner", time.Now())
		w.WriteHeader(http.StatusTeapot)
	}))

	inbound := NewTrace().Child() // hop 1, as if forwarded
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set(TraceHeader, inbound.String())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	if sawTrace != inbound {
		t.Fatalf("handler saw trace %+v, want inbound %+v", sawTrace, inbound)
	}
	if got := rec.Header().Get(TraceHeader); got != inbound.String() {
		t.Errorf("response trace header = %q, want %q", got, inbound.String())
	}
	recs := log.records(t)
	if len(recs) != 2 {
		t.Fatalf("got %d span records, want 2 (inner + route)", len(recs))
	}
	for _, r := range recs {
		if r["trace_id"] != inbound.TraceID {
			t.Errorf("span trace_id = %v, want %v", r["trace_id"], inbound.TraceID)
		}
		if r["hop"] != float64(1) {
			t.Errorf("span hop = %v, want 1", r["hop"])
		}
	}
	route := recs[1]
	if route["stage"] != "route" || route["status"] != float64(http.StatusTeapot) {
		t.Errorf("route span = %v, want stage=route status=418", route)
	}
	if snaps := c.Endpoints().Snapshots(); snaps["GET /healthz"].Count != 1 {
		t.Errorf("endpoint histogram = %v, want one GET /healthz observation", snaps)
	}
}

func TestMiddlewareIdempotentComposition(t *testing.T) {
	c := NewCollector(nil)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	h := c.Middleware(c.Middleware(inner)) // proxy + local API both wrapped
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if got := c.Endpoints().Snapshots()["GET /metrics"].Count; got != 1 {
		t.Fatalf("double-wrapped middleware recorded %d observations, want 1", got)
	}
}

func TestInjectTraceAndTransfer(t *testing.T) {
	c := NewCollector(nil)
	tr := NewTrace()
	ctx := WithRequest(context.Background(), c, tr)

	h := make(http.Header)
	InjectTrace(ctx, h)
	child, ok := ParseTrace(h.Get(TraceHeader))
	if !ok || child.TraceID != tr.TraceID || child.Hop != 1 {
		t.Fatalf("injected header = %+v, %v; want child of %+v", child, ok, tr)
	}

	detached := context.WithoutCancel(ctx) // values survive WithoutCancel...
	fresh := Transfer(context.Background(), ctx)
	for _, c2 := range []context.Context{detached, fresh} {
		if got, ok := TraceFrom(c2); !ok || got != tr {
			t.Errorf("trace lost across transfer: %+v, %v", got, ok)
		}
	}
	InjectTrace(context.Background(), h) // no state: must not touch h
	if got, _ := ParseTrace(h.Get(TraceHeader)); got != child {
		t.Error("InjectTrace without state rewrote the header")
	}
	if Enabled(context.Background()) {
		t.Error("Enabled(background) = true")
	}
}
