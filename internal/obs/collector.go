package obs

// The Collector is one process's telemetry sink: the slog logger span
// records go to, the per-endpoint and per-algorithm latency histograms,
// and the in-flight request gauge. Its Middleware is the edge of the
// tracing story — it parses or mints the trace, attaches the state to the
// request context, and emits the "route" span when the handler returns.

import (
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"
)

// Collector aggregates one process's observability state. Build one with
// NewCollector, wrap the process handler with Middleware, and export the
// histograms from the metrics endpoint. All methods are safe for
// concurrent use; a nil *Collector is never required — absence is
// expressed by not attaching one to the context.
type Collector struct {
	logger     *slog.Logger
	endpoints  HistogramVec
	algorithms HistogramVec
	apps       HistogramVec
	inFlight   atomic.Int64
}

// NewCollector returns a collector emitting span records through logger.
// A nil logger disables span emission but keeps histograms live.
func NewCollector(logger *slog.Logger) *Collector {
	return &Collector{logger: logger}
}

// Logger returns the collector's span logger (nil when spans are off).
func (c *Collector) Logger() *slog.Logger { return c.logger }

// Endpoints returns the per-endpoint request-latency histograms.
func (c *Collector) Endpoints() *HistogramVec { return &c.endpoints }

// Algorithms returns the per-algorithm compute-latency histograms.
func (c *Collector) Algorithms() *HistogramVec { return &c.algorithms }

// Apps returns the per-application run-latency histograms (cache hits
// excluded, decomposition resolution excluded).
func (c *Collector) Apps() *HistogramVec { return &c.apps }

// InFlight returns the number of requests currently inside Middleware.
func (c *Collector) InFlight() int64 { return c.inFlight.Load() }

// Middleware wraps next with the per-request observability edge: it
// parses the inbound TraceHeader (or mints a root trace), attaches the
// trace and collector to the request context, echoes the trace back in
// the response headers, counts the request in the in-flight gauge, and —
// when the handler returns — records the latency into the per-endpoint
// histogram and emits the "route" span.
//
// The middleware is idempotent by context: a request whose context
// already carries observability state (a handler composed inside an
// already-wrapped outer handler) passes straight through, so the cluster
// proxy and the local API handler can both be wrapped without double
// counting or re-rooting the trace.
func (c *Collector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if Enabled(r.Context()) {
			next.ServeHTTP(w, r)
			return
		}
		start := time.Now()
		tr, ok := ParseTrace(r.Header.Get(TraceHeader))
		if !ok {
			tr = NewTrace()
		}
		ctx := WithRequest(r.Context(), c, tr)
		w.Header().Set(TraceHeader, tr.String())
		sw := &statusWriter{ResponseWriter: w}
		r2 := r.WithContext(ctx)
		c.inFlight.Add(1)
		next.ServeHTTP(sw, r2)
		c.inFlight.Add(-1)
		d := time.Since(start)
		ep := endpointLabel(r2)
		c.endpoints.Observe(ep, d)
		Span(ctx, "route", start,
			slog.String("endpoint", ep),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status()),
		)
	})
}

// endpointLabel resolves a request to a bounded-cardinality endpoint
// label. After the handler ran, r.Pattern holds the ServeMux pattern that
// matched (the mux sets it on the request in place); requests that never
// reached a pattern fall back to a fixed normalization of known paths, so
// a path-scanning client cannot mint unbounded label values.
func endpointLabel(r *http.Request) string {
	if p := r.Pattern; p != "" && p != "/" {
		return p
	}
	path := r.URL.Path
	switch path {
	case "/healthz", "/readyz", "/metrics",
		"/v1/algorithms", "/v1/graphs", "/v1/decompose", "/v1/carve",
		"/v1/decompose/batch", "/v2/jobs":
		return r.Method + " " + path
	}
	switch {
	case strings.HasPrefix(path, "/v1/graphs/"):
		return r.Method + " /v1/graphs/{hash}"
	case strings.HasPrefix(path, "/v2/jobs/") && strings.HasSuffix(path, "/result"):
		return r.Method + " /v2/jobs/{id}/result"
	case strings.HasPrefix(path, "/v2/jobs/"):
		return r.Method + " /v2/jobs/{id}"
	case strings.HasPrefix(path, "/v2/apps/"):
		return r.Method + " /v2/apps/{app}"
	case strings.HasPrefix(path, "/internal/"):
		return r.Method + " /internal"
	case strings.HasPrefix(path, "/debug/pprof"):
		return r.Method + " /debug/pprof"
	}
	return "other"
}

// statusWriter records the response status while relaying everything,
// flushes included, so streaming responses keep streaming through the
// middleware.
type statusWriter struct {
	http.ResponseWriter
	code int
}

// WriteHeader records the status before relaying it.
func (s *statusWriter) WriteHeader(code int) {
	if s.code == 0 {
		s.code = code
	}
	s.ResponseWriter.WriteHeader(code)
}

// Write defaults the status to 200 like net/http does.
func (s *statusWriter) Write(b []byte) (int, error) {
	if s.code == 0 {
		s.code = http.StatusOK
	}
	return s.ResponseWriter.Write(b)
}

// Flush forwards flushes so NDJSON result streams flow incrementally.
func (s *statusWriter) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// status returns the recorded status, defaulting to 200 for handlers
// that wrote a body without an explicit status line.
func (s *statusWriter) status() int {
	if s.code == 0 {
		return http.StatusOK
	}
	return s.code
}

// RuntimeStats is a point-in-time snapshot of the Go runtime gauges the
// metrics endpoint exports.
type RuntimeStats struct {
	// Goroutines is the live goroutine count.
	Goroutines int
	// HeapAllocBytes is the heap memory currently allocated and reachable.
	HeapAllocBytes uint64
	// HeapSysBytes is the heap memory obtained from the OS.
	HeapSysBytes uint64
	// GCCycles counts completed garbage-collection cycles.
	GCCycles uint32
	// GCPauseTotal is the cumulative stop-the-world pause time.
	GCPauseTotal time.Duration
}

// ReadRuntime snapshots the Go runtime gauges. It calls
// runtime.ReadMemStats, which briefly stops the world — fine at scrape
// frequency, not something to put on a request path.
func ReadRuntime() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStats{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		GCCycles:       ms.NumGC,
		GCPauseTotal:   time.Duration(ms.PauseTotalNs),
	}
}
