package mpx

import (
	"math"
	"math/rand"
	"testing"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/rounds"
)

func TestCarveRejectsBadEps(t *testing.T) {
	g := graph.Path(4)
	rng := rand.New(rand.NewSource(1))
	for _, eps := range []float64{0, -1, 2} {
		if _, err := Carve(g, nil, eps, rng, nil); err == nil {
			t.Fatalf("eps %v accepted", eps)
		}
	}
}

// diameterBound is the empirical O(log n / eps) cap used in assertions: the
// whp bound 4·(2/eps)·ln n with slack for small n.
func diameterBound(n int, eps float64) int {
	return int(8*math.Log(float64(n)+2)/eps) + 8
}

func TestCarveInvariantsAcrossFamilies(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(150)},
		{"grid", graph.Grid(12, 12)},
		{"gnp", graph.ConnectedGnp(150, 0.03, 7)},
		{"expander", graph.RandomRegularish(128, 4, 8)},
		{"tree", graph.BinaryTree(127)},
		{"subdivided", graph.SubdividedExpander(12, 4, 4, 5)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			for _, eps := range []float64{0.5, 0.25} {
				c, err := Carve(tt.g, nil, eps, rng, nil)
				if err != nil {
					t.Fatal(err)
				}
				// Strong carving: non-adjacent, connected clusters with
				// bounded induced diameter, dead fraction <= eps.
				if err := cluster.CheckCarving(tt.g, nil, c, eps, diameterBound(tt.g.N(), eps)); err != nil {
					t.Fatalf("eps=%v: %v", eps, err)
				}
			}
		})
	}
}

func TestCarveOnSubset(t *testing.T) {
	g := graph.Path(30)
	nodes := []int{0, 1, 2, 3, 4, 5, 20, 21, 22}
	rng := rand.New(rand.NewSource(2))
	c, err := Carve(g, nodes, 0.5, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 6; v < 20; v++ {
		if c.Assign[v] != cluster.Unclustered {
			t.Fatalf("node %d outside subset assigned", v)
		}
	}
	alive := make([]bool, g.N())
	for _, v := range nodes {
		alive[v] = true
	}
	if err := cluster.CheckCarving(g, alive, c, 0.5, diameterBound(len(nodes), 0.5)); err != nil {
		t.Fatal(err)
	}
}

func TestCarveChargesRaceRounds(t *testing.T) {
	g := graph.Grid(10, 10)
	m := rounds.NewMeter()
	rng := rand.New(rand.NewSource(4))
	if _, err := Carve(g, nil, 0.5, rng, m); err != nil {
		t.Fatal(err)
	}
	if m.Component("mpx/race") == 0 {
		t.Fatalf("no race rounds charged: %s", m)
	}
}

func TestCarveSeedReproducible(t *testing.T) {
	g := graph.ConnectedGnp(100, 0.04, 6)
	a, err := Carve(g, nil, 0.5, rand.New(rand.NewSource(5)), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Carve(g, nil, 0.5, rand.New(rand.NewSource(5)), nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Assign {
		if a.Assign[v] != b.Assign[v] {
			t.Fatalf("same seed diverged at node %d", v)
		}
	}
}

func TestDecomposeValidStrong(t *testing.T) {
	for _, tt := range []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", graph.Grid(10, 10)},
		{"gnp", graph.ConnectedGnp(120, 0.04, 23)},
		{"expander", graph.RandomRegularish(100, 4, 31)},
	} {
		t.Run(tt.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(8))
			d, err := Decompose(tt.g, rng, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := cluster.CheckDecomposition(tt.g, d, diameterBound(tt.g.N(), 0.5), true); err != nil {
				t.Fatal(err)
			}
			if d.Colors > 6*log2ceil(tt.g.N()) {
				t.Fatalf("used %d colors for n=%d", d.Colors, tt.g.N())
			}
		})
	}
}

// The corridor rule must keep each surviving cluster connected: verified by
// CheckCarving above, but this test additionally verifies the sharper
// property that each survivor's shortest path to its center survives.
func TestCarveCentersSurvive(t *testing.T) {
	g := graph.ConnectedGnp(150, 0.03, 77)
	rng := rand.New(rand.NewSource(10))
	c, err := Carve(g, nil, 0.5, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range c.Centers {
		if c.Assign[u] != i {
			t.Fatalf("center %d of cluster %d has assignment %d", u, i, c.Assign[u])
		}
	}
}

func log2ceil(n int) int {
	b := 1
	for 1<<b < n {
		b++
	}
	return b
}
