// Package mpx implements the randomized strong-diameter constructions based
// on exponential random shifts by Miller, Peng, and Xu [MPX13], in the form
// used by Elkin and Neiman [EN16]: a strong-diameter ball carving with
// clusters of diameter O(log n / ε) in O(log n / ε) rounds, and, by the
// standard iteration, a strong-diameter network decomposition with O(log n)
// colors and O(log n) diameter in O(log² n) rounds. These populate the
// "Strong / Randomized" rows of the paper's Tables 1 and 2.
//
// Every node u draws a shift δ_u ~ Exp(β) and the nodes race: v joins the
// cluster of the u minimizing d(u,v) − δ_u. A node dies iff the best
// arrival from a different cluster is within 1 of its winner (the corridor
// rule), which simultaneously guarantees that surviving clusters are
// non-adjacent and that each survivor keeps its whole shortest path to the
// winning center alive — hence the diameter guarantee is strong.
package mpx

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/registry"
	"strongdecomp/internal/rounds"
)

// maxCarveAttempts bounds the Las Vegas retry loop on the dead fraction.
const maxCarveAttempts = 40

// Carve computes a strong-diameter ball carving of the subgraph induced by
// nodes (nil = all of g), removing at most an eps fraction of them. The
// surviving clusters are non-adjacent, connected, and have strong diameter
// O(log n / eps) with high probability.
func Carve(g *graph.Graph, nodes []int, eps float64, rng *rand.Rand, m *rounds.Meter) (*cluster.Carving, error) {
	return CarveContext(context.Background(), g, nodes, eps, rng, m)
}

// CarveContext is Carve with cancellation observed between Las Vegas
// attempts.
func CarveContext(ctx context.Context, g *graph.Graph, nodes []int, eps float64, rng *rand.Rand, m *rounds.Meter) (*cluster.Carving, error) {
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("mpx: eps %v outside (0, 1]", eps)
	}
	if nodes == nil {
		nodes = make([]int, g.N())
		for i := range nodes {
			nodes[i] = i
		}
	}
	if len(nodes) == 0 {
		return emptyCarving(g.N()), nil
	}
	// The corridor rule kills a node with probability at most
	// 1 - e^{-β·2} ≈ 2β, so β = eps/4 targets an expected dead fraction
	// below eps; the retry loop makes the bound deterministic.
	beta := eps / 4
	for attempt := 0; attempt < maxCarveAttempts; attempt++ {
		if err := registry.CtxErr(ctx); err != nil {
			return nil, err
		}
		c := carveOnce(g, nodes, beta, rng, m)
		if c.DeadFraction(nodes) <= eps+1.0/float64(len(nodes)) {
			return c, nil
		}
	}
	return nil, fmt.Errorf("mpx: carving failed to meet eps=%v after %d attempts", eps, maxCarveAttempts)
}

// Decompose builds a strong-diameter network decomposition by iterating
// Carve with eps = 1/2; clusters of iteration i get color i. With high
// probability this uses O(log n) colors, O(log n) diameter, O(log² n)
// rounds — the Elkin–Neiman row of Table 1.
func Decompose(g *graph.Graph, rng *rand.Rand, m *rounds.Meter) (*cluster.Decomposition, error) {
	return DecomposeContext(context.Background(), g, rng, m)
}

// DecomposeContext is Decompose with cancellation observed before every
// color iteration.
func DecomposeContext(ctx context.Context, g *graph.Graph, rng *rand.Rand, m *rounds.Meter) (*cluster.Decomposition, error) {
	n := g.N()
	assign := make([]int, n)
	for i := range assign {
		assign[i] = cluster.Unclustered
	}
	var (
		color   []int
		centers []int
		k       int
	)
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	for iter := 0; len(remaining) > 0; iter++ {
		c, err := CarveContext(ctx, g, remaining, 0.5, rng, m)
		if err != nil {
			return nil, err
		}
		for i, members := range c.Members() {
			for _, v := range members {
				assign[v] = k
			}
			color = append(color, iter)
			centers = append(centers, c.Centers[i])
			k++
		}
		var rest []int
		for _, v := range remaining {
			if assign[v] == cluster.Unclustered {
				rest = append(rest, v)
			}
		}
		remaining = rest
	}
	colors := 0
	for _, col := range color {
		if col+1 > colors {
			colors = col + 1
		}
	}
	return &cluster.Decomposition{Assign: assign, Color: color, K: k, Colors: colors, Centers: centers}, nil
}

type arrival struct {
	time   float64
	source int
	node   int
}

type arrivalHeap []arrival

func (h arrivalHeap) Len() int { return len(h) }
func (h arrivalHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].source < h[j].source // deterministic tie-break
}
func (h arrivalHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x interface{}) { *h = append(*h, x.(arrival)) }
func (h *arrivalHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// carveOnce runs one shifted race. It tracks the best two arrivals with
// distinct sources per node; the winner defines the cluster, and the
// runner-up defines the corridor rule.
func carveOnce(g *graph.Graph, nodes []int, beta float64, rng *rand.Rand, m *rounds.Meter) *cluster.Carving {
	n := g.N()
	inS := make([]bool, n)
	for _, v := range nodes {
		inS[v] = true
	}
	shift := make([]float64, n)
	maxShift := 0.0
	for _, v := range nodes {
		shift[v] = rng.ExpFloat64() / beta
		if shift[v] > maxShift {
			maxShift = shift[v]
		}
	}

	const unset = math.MaxFloat64
	best := make([]arrival, n)
	second := make([]arrival, n)
	for i := range best {
		best[i] = arrival{time: unset, source: -1}
		second[i] = arrival{time: unset, source: -1}
	}
	h := &arrivalHeap{}
	for _, v := range nodes {
		heap.Push(h, arrival{time: -shift[v], source: v, node: v})
	}
	maxDist := 0.0
	for h.Len() > 0 {
		a := heap.Pop(h).(arrival)
		v := a.node
		if a.source == best[v].source || a.source == second[v].source {
			continue
		}
		switch {
		case a.time < best[v].time ||
			(a.time == best[v].time && a.source < best[v].source):
			second[v] = best[v]
			best[v] = arrival{time: a.time, source: a.source}
		case second[v].time == unset ||
			a.time < second[v].time ||
			(a.time == second[v].time && a.source < second[v].source):
			second[v] = arrival{time: a.time, source: a.source}
		default:
			continue // dominated: neither best nor second
		}
		if d := a.time + shift[a.source]; d > maxDist {
			maxDist = d
		}
		// Relax only if this arrival is one of the two kept; a node forwards
		// at most two race fronts, keeping the CONGEST simulation honest.
		for _, w := range g.Neighbors(v) {
			if inS[w] {
				heap.Push(h, arrival{time: a.time + 1, source: a.source, node: w})
			}
		}
	}
	// The race finishes within ceil(maxShift) + ceil(maxDist) synchronous
	// rounds in the delayed-start CONGEST implementation.
	m.Charge("mpx/race", int64(math.Ceil(maxShift)+math.Ceil(maxDist))+1)
	m.ChargeMessages(2 * int64(g.M()))

	assign := make([]int, n)
	for i := range assign {
		assign[i] = cluster.Unclustered
	}
	members := make(map[int][]int)
	for _, v := range nodes {
		if best[v].source < 0 {
			continue
		}
		if second[v].source >= 0 && second[v].time-best[v].time <= 1 {
			continue // corridor node: removed
		}
		members[best[v].source] = append(members[best[v].source], v)
	}
	centers := make([]int, 0, len(members))
	for u := range members {
		centers = append(centers, u)
	}
	sort.Ints(centers)
	for i, u := range centers {
		for _, v := range members[u] {
			assign[v] = i
		}
	}
	return &cluster.Carving{Assign: assign, K: len(centers), Centers: centers}
}

func emptyCarving(n int) *cluster.Carving {
	assign := make([]int, n)
	for i := range assign {
		assign[i] = cluster.Unclustered
	}
	return &cluster.Carving{Assign: assign}
}
