package mpx

// Self-registration of the MPX / Elkin–Neiman randomized strong-diameter
// construction with the algorithm registry.

import (
	"context"
	"math/rand"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/registry"
)

func init() {
	registry.MustRegister("mpx", func() registry.Decomposer {
		return registry.Funcs{
			Meta: registry.Info{
				Name:              "mpx",
				Display:           "mpx-elkin-neiman",
				Reference:         "[MPX13, EN16]",
				Model:             "randomized",
				Diameter:          "strong",
				PaperColors:       "O(log n)",
				PaperCarveDiam:    "O(log n / eps)",
				PaperCarveRounds:  "O(log n / eps)",
				PaperDecompDiam:   "O(log n)",
				PaperDecompRounds: "O(log^2 n)",
				Order:             30,
			},
			CarveFunc: func(ctx context.Context, g *graph.Graph, eps float64, o registry.RunOptions) (*cluster.Carving, error) {
				return CarveContext(ctx, g, o.Nodes, eps, rand.New(rand.NewSource(o.Seed)), o.Meter)
			},
			DecomposeFunc: func(ctx context.Context, g *graph.Graph, o registry.RunOptions) (*cluster.Decomposition, error) {
				return DecomposeContext(ctx, g, rand.New(rand.NewSource(o.Seed)), o.Meter)
			},
		}
	})
}
