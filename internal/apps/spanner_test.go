package apps

import (
	"context"
	"errors"
	"testing"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/registry"
	"strongdecomp/internal/rounds"
)

// spannerGraph rebuilds the spanner as a standalone graph on g's nodes.
func spannerGraph(t *testing.T, n int, sp *Spanner) *graph.Graph {
	t.Helper()
	out, err := graph.FromEdges(n, sp.Edges)
	if err != nil {
		t.Fatalf("spanner edges do not form a graph: %v", err)
	}
	return out
}

func TestSpannerAcrossFamilies(t *testing.T) {
	tests := map[string]*graph.Graph{
		"path":  graph.Path(200),
		"cycle": graph.Cycle(256),
		"grid":  graph.Grid(12, 12),
		"gnp":   graph.ConnectedGnp(150, 0.04, 3),
		"union": graph.DisjointUnion(graph.Path(40), graph.Cycle(30)),
	}
	for name, g := range tests {
		t.Run(name, func(t *testing.T) {
			d := decompose(t, g)
			m := rounds.NewMeter()
			sp, err := BuildSpanner(g, d, m)
			if err != nil {
				t.Fatal(err)
			}
			if sp.TreeEdges+sp.CrossEdges != len(sp.Edges) {
				t.Fatalf("edge accounting: %d tree + %d cross != %d total",
					sp.TreeEdges, sp.CrossEdges, len(sp.Edges))
			}
			// Every spanner edge must exist in g.
			have := make(map[[2]int]bool, g.M())
			for u := 0; u < g.N(); u++ {
				for _, w := range g.Neighbors(u) {
					if u < w {
						have[[2]int{u, w}] = true
					}
				}
			}
			for _, e := range sp.Edges {
				if !have[e] {
					t.Fatalf("spanner edge %v not in g", e)
				}
			}
			// The spanner preserves connectivity: same components as g.
			sg := spannerGraph(t, g.N(), sp)
			if got, want := len(graph.Components(sg, nil)), len(graph.Components(g, nil)); got != want {
				t.Fatalf("spanner has %d components, graph has %d", got, want)
			}
			if m.Component("apps/spanner") == 0 {
				t.Fatal("no schedule cost charged")
			}
		})
	}
}

func TestSpannerSparserThanDenseGraph(t *testing.T) {
	// On a dense graph the spanner must keep at most (n − k) tree edges
	// plus one edge per cluster pair — far below the full edge set.
	g := graph.Complete(40)
	d := decompose(t, g)
	sp, err := BuildSpanner(g, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	bound := g.N() - 1 + d.K*(d.K-1)/2
	if len(sp.Edges) > bound {
		t.Fatalf("spanner keeps %d edges, bound %d (n=%d k=%d)", len(sp.Edges), bound, g.N(), d.K)
	}
	if len(sp.Edges) >= g.M() && d.K > 1 {
		t.Fatalf("spanner (%d edges) not sparser than graph (%d edges)", len(sp.Edges), g.M())
	}
}

func TestSpannerRejectsSizeMismatch(t *testing.T) {
	g := graph.Path(5)
	d := &cluster.Decomposition{Assign: []int{0}, Color: []int{0}, K: 1, Colors: 1}
	if _, err := BuildSpanner(g, d, nil); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestContextVariantsHonorCancellation(t *testing.T) {
	g := graph.Grid(10, 10)
	d := decompose(t, g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MISContext(ctx, g, d, nil); !errors.Is(err, registry.ErrCanceled) {
		t.Fatalf("MISContext: err = %v, want ErrCanceled", err)
	}
	if _, err := ColorGraphContext(ctx, g, d, nil); !errors.Is(err, registry.ErrCanceled) {
		t.Fatalf("ColorGraphContext: err = %v, want ErrCanceled", err)
	}
	if _, err := BuildSpannerContext(ctx, g, d, nil); !errors.Is(err, registry.ErrCanceled) {
		t.Fatalf("BuildSpannerContext: err = %v, want ErrCanceled", err)
	}
}

func TestLegacyShimsMatchContextVariants(t *testing.T) {
	g := graph.ConnectedGnp(120, 0.05, 9)
	d := decompose(t, g)
	misA, err := MIS(g, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	misB, err := MISContext(context.Background(), g, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := range misA {
		if misA[v] != misB[v] {
			t.Fatalf("MIS diverges from MISContext at node %d", v)
		}
	}
	colA, err := ColorGraph(g, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	colB, err := ColorGraphContext(context.Background(), g, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := range colA {
		if colA[v] != colB[v] {
			t.Fatalf("ColorGraph diverges from ColorGraphContext at node %d", v)
		}
	}
}
