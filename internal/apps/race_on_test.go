//go:build race

package apps

// raceEnabled reports whether the race detector is active; see
// race_off_test.go for the intended split.
const raceEnabled = true
