package apps

import (
	"math/rand"
	"testing"
	"testing/quick"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/core"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/mpx"
	"strongdecomp/internal/rounds"
)

func decompose(t *testing.T, g *graph.Graph) *cluster.Decomposition {
	t.Helper()
	d, err := core.DecomposeRG(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMISAcrossFamilies(t *testing.T) {
	tests := map[string]*graph.Graph{
		"path":     graph.Path(200),
		"cycle":    graph.Cycle(256),
		"grid":     graph.Grid(12, 12),
		"gnp":      graph.ConnectedGnp(150, 0.04, 3),
		"star":     graph.Star(50),
		"complete": graph.Complete(30),
		"union":    graph.DisjointUnion(graph.Path(40), graph.Cycle(30)),
	}
	for name, g := range tests {
		t.Run(name, func(t *testing.T) {
			d := decompose(t, g)
			m := rounds.NewMeter()
			mis, err := MIS(g, d, m)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyMIS(g, mis); err != nil {
				t.Fatal(err)
			}
			if m.Component("apps/mis") == 0 {
				t.Fatal("no schedule cost charged")
			}
		})
	}
}

func TestMISWithRandomizedDecomposition(t *testing.T) {
	g := graph.Cycle(300)
	d, err := mpx.Decompose(g, rand.New(rand.NewSource(5)), nil)
	if err != nil {
		t.Fatal(err)
	}
	mis, err := MIS(g, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMIS(g, mis); err != nil {
		t.Fatal(err)
	}
}

func TestMISRejectsSizeMismatch(t *testing.T) {
	g := graph.Path(5)
	d := &cluster.Decomposition{Assign: []int{0}, Color: []int{0}, K: 1, Colors: 1}
	if _, err := MIS(g, d, nil); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := ColorGraph(g, d, nil); err == nil {
		t.Fatal("size mismatch accepted by ColorGraph")
	}
}

func TestColoringAcrossFamilies(t *testing.T) {
	tests := map[string]*graph.Graph{
		"cycle":    graph.Cycle(256),
		"grid":     graph.Grid(11, 11),
		"gnp":      graph.ConnectedGnp(140, 0.05, 7),
		"complete": graph.Complete(25),
		"star":     graph.Star(40),
	}
	for name, g := range tests {
		t.Run(name, func(t *testing.T) {
			d := decompose(t, g)
			colorOf, err := ColorGraph(g, d, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyColoring(g, colorOf, g.MaxDegree()+1); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestVerifyMISCatchesViolations(t *testing.T) {
	g := graph.Path(3)
	if err := VerifyMIS(g, []bool{true, true, false}); err == nil {
		t.Fatal("dependent set accepted")
	}
	if err := VerifyMIS(g, []bool{true, false, false}); err == nil {
		t.Fatal("non-maximal set accepted")
	}
	if err := VerifyMIS(g, []bool{true, false, true}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyColoringCatchesViolations(t *testing.T) {
	g := graph.Path(3)
	if err := VerifyColoring(g, []int{0, 0, 1}, 3); err == nil {
		t.Fatal("improper coloring accepted")
	}
	if err := VerifyColoring(g, []int{0, 1, 5}, 3); err == nil {
		t.Fatal("palette overflow accepted")
	}
	if err := VerifyColoring(g, []int{0, 1, 0}, 2); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyMISOnDisconnectedGraphs(t *testing.T) {
	// union: path 0-1-2, isolated node 3, edge 4-5
	g := graph.DisjointUnion(graph.Path(3), graph.Path(1), graph.Path(2))
	if err := VerifyMIS(g, []bool{true, false, true, true, true, false}); err != nil {
		t.Fatalf("valid MIS rejected: %v", err)
	}
	// Isolated nodes must always be in the MIS.
	if err := VerifyMIS(g, []bool{true, false, true, false, true, false}); err == nil {
		t.Fatal("MIS omitting an isolated node accepted")
	}
	// An adjacent pair in a far component must still be caught.
	if err := VerifyMIS(g, []bool{true, false, true, true, true, true}); err == nil {
		t.Fatal("adjacent pair in MIS accepted")
	}
	// Non-maximality confined to one component must still be caught.
	if err := VerifyMIS(g, []bool{true, false, false, true, true, false}); err == nil {
		t.Fatal("non-maximal MIS accepted")
	}
	// Length mismatch is a shape error, not a pass.
	if err := VerifyMIS(g, []bool{true, false}); err == nil {
		t.Fatal("short membership vector accepted")
	}
}

func TestVerifyColoringOnDisconnectedGraphs(t *testing.T) {
	g := graph.DisjointUnion(graph.Cycle(4), graph.Path(1), graph.Path(3))
	if err := VerifyColoring(g, []int{0, 1, 0, 1, 0, 0, 1, 0}, g.MaxDegree()+1); err != nil {
		t.Fatalf("valid coloring rejected: %v", err)
	}
	// Negative and overflowing colors anywhere — including the isolated
	// node — are out of range.
	if err := VerifyColoring(g, []int{0, 1, 0, 1, -1, 0, 1, 0}, g.MaxDegree()+1); err == nil {
		t.Fatal("negative color accepted")
	}
	if err := VerifyColoring(g, []int{0, 1, 0, 1, 7, 0, 1, 0}, g.MaxDegree()+1); err == nil {
		t.Fatal("color above palette accepted")
	}
	// An improper edge inside the last component must still be caught.
	if err := VerifyColoring(g, []int{0, 1, 0, 1, 0, 0, 1, 1}, g.MaxDegree()+1); err == nil {
		t.Fatal("improper edge in far component accepted")
	}
}

func TestScheduleCostPositive(t *testing.T) {
	g := graph.Cycle(128)
	d := decompose(t, g)
	if c := ScheduleCost(g, d); c <= 0 {
		t.Fatalf("schedule cost %d", c)
	}
}

func TestPropertyMISOnRandomGraphs(t *testing.T) {
	f := func(seed uint8, nRaw uint8) bool {
		n := 20 + int(nRaw)%100
		g := graph.ConnectedGnp(n, 0.06, int64(seed))
		d, err := core.DecomposeRG(g, nil)
		if err != nil {
			return false
		}
		mis, err := MIS(g, d, nil)
		if err != nil {
			return false
		}
		colorOf, err := ColorGraph(g, d, nil)
		if err != nil {
			return false
		}
		return VerifyMIS(g, mis) == nil && VerifyColoring(g, colorOf, g.MaxDegree()+1) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
