//go:build !race

package apps

// raceEnabled reports whether the race detector is active — same split
// as the root package's race_off_test.go/race_on_test.go pair: the
// plain run executes the AllocsPerRun guards, the -race run skips them
// (sync.Pool intentionally drops items under -race, making alloc counts
// nondeterministic) and covers everything else with the detector.
const raceEnabled = false
