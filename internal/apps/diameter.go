package apps

// The approximate-diameter application. Unlike MIS and coloring it needs
// no decomposition to run — it is the classic linear-time double sweep —
// but served alongside them it shares the serving tier's graph
// resolution, caching, and metering, and its response carries the
// decomposition's ScheduleCost so clients see what the amortized
// color-by-color applications would pay on the same graph.

import (
	"sync"

	"strongdecomp/internal/graph"
	"strongdecomp/internal/rounds"
)

// diamScratch pools traversal scratch for DiameterApprox, so repeated
// served diameter runs allocate nothing in steady state.
var diamScratch = sync.Pool{New: func() any { return graph.NewScratch() }}

// DiameterApprox returns the 2-sweep approximation of g's diameter: per
// connected component, a BFS from an arbitrary node finds a far node and
// a second BFS from it reports that node's eccentricity; the result is
// the maximum over components. It is a lower bound on the true diameter
// and never below half of it, computed in O(n + m). The meter is charged
// 2·diam + 2 simulated rounds — two distributed BFS waves plus the
// constant-round coordination of the sweep.
func DiameterApprox(g *graph.Graph, m *rounds.Meter) int {
	s := diamScratch.Get().(*graph.Scratch)
	diam := s.DiameterApprox(g, nil)
	diamScratch.Put(s)
	m.Charge("apps/diameter", 2*int64(diam)+2)
	return diam
}
