// Package apps implements the canonical applications of network
// decomposition described in the paper's introduction: deterministic
// distributed symmetry breaking by processing the decomposition's colors one
// by one. Clusters of the same color are non-adjacent, so they are processed
// simultaneously; within a cluster, coordination takes time proportional to
// the cluster's diameter — the *strong* diameter guarantee is what lets each
// cluster work entirely inside its own induced subgraph with no interference
// between same-color clusters.
//
// The simulated round cost of the template is the paper's C · D bound: the
// sum over colors of (2·max cluster diameter + O(1)).
package apps

import (
	"context"
	"fmt"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/registry"
	"strongdecomp/internal/rounds"
)

// MIS computes a maximal independent set of g by the color-by-color
// template over the given decomposition. The result is deterministic given
// the decomposition. It returns the membership vector and charges the
// simulated schedule cost to the meter.
func MIS(g *graph.Graph, d *cluster.Decomposition, m *rounds.Meter) ([]bool, error) {
	return MISContext(context.Background(), g, d, m)
}

// MISContext is MIS with cancellation: the color-by-color main loop
// checks ctx between colors, so a served app run honors request timeouts
// and job cancellation. A canceled run fails with an error matching
// registry.ErrCanceled.
func MISContext(ctx context.Context, g *graph.Graph, d *cluster.Decomposition, m *rounds.Meter) ([]bool, error) {
	if len(d.Assign) != g.N() {
		return nil, fmt.Errorf("apps: decomposition size %d vs graph %d", len(d.Assign), g.N())
	}
	inMIS := make([]bool, g.N())
	decided := make([]bool, g.N())
	members := d.Members()
	for color := 0; color < d.Colors; color++ {
		if err := registry.CtxErr(ctx); err != nil {
			return nil, err
		}
		maxDiam := 0
		for cl := 0; cl < d.K; cl++ {
			if d.Color[cl] != color {
				continue
			}
			if diam := graph.StrongDiameter(g, members[cl]); diam > maxDiam {
				maxDiam = diam
			}
			for _, v := range members[cl] {
				ok := true
				for _, w := range g.Neighbors(v) {
					if decided[w] && inMIS[w] {
						ok = false
						break
					}
				}
				if ok {
					inMIS[v] = true
				}
				decided[v] = true
			}
		}
		m.Charge("apps/mis", 2*int64(maxDiam)+2)
	}
	return inMIS, nil
}

// VerifyMIS checks independence and maximality.
func VerifyMIS(g *graph.Graph, inMIS []bool) error {
	if len(inMIS) != g.N() {
		return fmt.Errorf("apps: MIS size %d vs graph %d", len(inMIS), g.N())
	}
	for v := 0; v < g.N(); v++ {
		if inMIS[v] {
			for _, w := range g.Neighbors(v) {
				if inMIS[w] {
					return fmt.Errorf("apps: MIS not independent: %d-%d", v, w)
				}
			}
			continue
		}
		covered := false
		for _, w := range g.Neighbors(v) {
			if inMIS[w] {
				covered = true
				break
			}
		}
		if !covered && g.Degree(v) > 0 {
			return fmt.Errorf("apps: MIS not maximal at %d", v)
		}
		if !covered && g.Degree(v) == 0 {
			return fmt.Errorf("apps: isolated node %d must be in the MIS", v)
		}
	}
	return nil
}

// ColorGraph computes a (Δ+1) vertex coloring of g by the same template:
// per decomposition color, every cluster greedily colors its nodes with the
// smallest palette color not used by an already-colored neighbor. Since a
// node has at most Δ neighbors, Δ+1 colors always suffice.
func ColorGraph(g *graph.Graph, d *cluster.Decomposition, m *rounds.Meter) ([]int, error) {
	return ColorGraphContext(context.Background(), g, d, m)
}

// ColorGraphContext is ColorGraph with cancellation: the color-by-color
// main loop checks ctx between colors. A canceled run fails with an error
// matching registry.ErrCanceled.
func ColorGraphContext(ctx context.Context, g *graph.Graph, d *cluster.Decomposition, m *rounds.Meter) ([]int, error) {
	if len(d.Assign) != g.N() {
		return nil, fmt.Errorf("apps: decomposition size %d vs graph %d", len(d.Assign), g.N())
	}
	colorOf := make([]int, g.N())
	for i := range colorOf {
		colorOf[i] = -1
	}
	members := d.Members()
	palette := make([]bool, g.MaxDegree()+2)
	for color := 0; color < d.Colors; color++ {
		if err := registry.CtxErr(ctx); err != nil {
			return nil, err
		}
		maxDiam := 0
		for cl := 0; cl < d.K; cl++ {
			if d.Color[cl] != color {
				continue
			}
			if diam := graph.StrongDiameter(g, members[cl]); diam > maxDiam {
				maxDiam = diam
			}
			for _, v := range members[cl] {
				for i := range palette {
					palette[i] = false
				}
				for _, w := range g.Neighbors(v) {
					if c := colorOf[w]; c >= 0 {
						palette[c] = true
					}
				}
				for c := range palette {
					if !palette[c] {
						colorOf[v] = c
						break
					}
				}
			}
		}
		m.Charge("apps/coloring", 2*int64(maxDiam)+2)
	}
	return colorOf, nil
}

// VerifyColoring checks that the coloring is proper and uses at most
// maxColors colors (pass g.MaxDegree()+1 for the (Δ+1) guarantee).
func VerifyColoring(g *graph.Graph, colorOf []int, maxColors int) error {
	if len(colorOf) != g.N() {
		return fmt.Errorf("apps: coloring size %d vs graph %d", len(colorOf), g.N())
	}
	for v := 0; v < g.N(); v++ {
		if colorOf[v] < 0 || colorOf[v] >= maxColors {
			return fmt.Errorf("apps: node %d color %d outside [0,%d)", v, colorOf[v], maxColors)
		}
		for _, w := range g.Neighbors(v) {
			if colorOf[v] == colorOf[w] {
				return fmt.Errorf("apps: improper edge %d-%d with color %d", v, w, colorOf[v])
			}
		}
	}
	return nil
}

// ScheduleCost returns the C·D template cost of a decomposition on g: the
// sum over colors of twice the maximum cluster diameter plus constants —
// the quantity the paper's "time proportional to C · D" refers to.
func ScheduleCost(g *graph.Graph, d *cluster.Decomposition) int {
	members := d.Members()
	total := 0
	for color := 0; color < d.Colors; color++ {
		maxDiam := 0
		for cl := 0; cl < d.K; cl++ {
			if d.Color[cl] != color {
				continue
			}
			if diam := graph.StrongDiameter(g, members[cl]); diam > maxDiam {
				maxDiam = diam
			}
		}
		total += 2*maxDiam + 2
	}
	return total
}
