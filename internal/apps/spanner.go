package apps

// The spanner application, in the spirit of Elkin–Neiman
// (arXiv:1602.05437): a strong-diameter decomposition directly yields a
// sparse spanner. Every cluster keeps a BFS spanning tree of its induced
// subgraph — the strong-diameter guarantee bounds the tree's depth by the
// cluster diameter, so intra-cluster distances stretch by at most 2·D —
// and every adjacent cluster pair keeps exactly one connecting edge, so
// the spanner preserves the connectivity of g. The edge count is at most
// (n − k) tree edges plus one edge per adjacent cluster pair.

import (
	"context"
	"fmt"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/registry"
	"strongdecomp/internal/rounds"
)

// Spanner is a subgraph of g extracted from a decomposition: per-cluster
// BFS spanning trees plus one representative edge per adjacent cluster
// pair.
type Spanner struct {
	// Edges lists the spanner's edges as (u, v) pairs with u < v, tree
	// edges first in cluster order, then cross edges.
	Edges [][2]int
	// TreeEdges counts the intra-cluster BFS spanning-tree edges.
	TreeEdges int
	// CrossEdges counts the representative inter-cluster edges, one per
	// adjacent cluster pair.
	CrossEdges int
}

// BuildSpanner extracts a spanner from the decomposition by the
// color-by-color template, charging the simulated schedule cost to the
// meter.
func BuildSpanner(g *graph.Graph, d *cluster.Decomposition, m *rounds.Meter) (*Spanner, error) {
	return BuildSpannerContext(context.Background(), g, d, m)
}

// BuildSpannerContext is BuildSpanner with cancellation: the
// color-by-color main loop checks ctx between colors. A canceled run
// fails with an error matching registry.ErrCanceled.
func BuildSpannerContext(ctx context.Context, g *graph.Graph, d *cluster.Decomposition, m *rounds.Meter) (*Spanner, error) {
	if len(d.Assign) != g.N() {
		return nil, fmt.Errorf("apps: decomposition size %d vs graph %d", len(d.Assign), g.N())
	}
	sp := &Spanner{}
	members := d.Members()
	visited := make([]bool, g.N())
	queue := make([]int, 0, g.N())
	for color := 0; color < d.Colors; color++ {
		if err := registry.CtxErr(ctx); err != nil {
			return nil, err
		}
		maxDiam := 0
		for cl := 0; cl < d.K; cl++ {
			if d.Color[cl] != color || len(members[cl]) == 0 {
				continue
			}
			if diam := graph.StrongDiameter(g, members[cl]); diam > maxDiam {
				maxDiam = diam
			}
			// BFS spanning tree of the cluster's induced subgraph. A
			// cluster of a strong-diameter decomposition is connected, so
			// one root reaches every member; a disconnected (adversarial)
			// cluster degrades gracefully to one tree per member component.
			for _, root := range members[cl] {
				if visited[root] {
					continue
				}
				queue = queue[:0]
				queue = append(queue, root)
				visited[root] = true
				for head := 0; head < len(queue); head++ {
					u := queue[head]
					for _, w := range g.Neighbors(u) {
						if visited[w] || d.Assign[w] != cl {
							continue
						}
						visited[w] = true
						sp.Edges = append(sp.Edges, orderedEdge(u, w))
						sp.TreeEdges++
						queue = append(queue, w)
					}
				}
			}
		}
		m.Charge("apps/spanner", 2*int64(maxDiam)+2)
	}
	// One representative edge per adjacent cluster pair keeps the spanner
	// exactly as connected as g across cluster boundaries.
	crossSeen := make(map[[2]int]bool)
	for u := 0; u < g.N(); u++ {
		cu := d.Assign[u]
		if cu == cluster.Unclustered {
			continue
		}
		for _, w := range g.Neighbors(u) {
			if w < u {
				continue // undirected: visit each edge once
			}
			cw := d.Assign[w]
			if cw == cluster.Unclustered || cu == cw {
				continue
			}
			pair := orderedEdge(cu, cw)
			if crossSeen[pair] {
				continue
			}
			crossSeen[pair] = true
			sp.Edges = append(sp.Edges, orderedEdge(u, w))
			sp.CrossEdges++
		}
	}
	return sp, nil
}

// orderedEdge normalizes an edge to (min, max) form.
func orderedEdge(u, v int) [2]int {
	if u < v {
		return [2]int{u, v}
	}
	return [2]int{v, u}
}
