package apps

import (
	"testing"

	"strongdecomp/internal/graph"
	"strongdecomp/internal/rounds"
)

func TestDiameterApproxKnownFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"path-100", graph.Path(100), 99},
		{"cycle-64", graph.Cycle(64), 32},
		{"grid-8x9", graph.Grid(8, 9), 15},
		{"star-30", graph.Star(30), 2},
		{"union", graph.DisjointUnion(graph.Path(50), graph.Cycle(20)), 49},
		{"singleton", graph.Path(1), 0},
	}
	for _, tc := range cases {
		m := rounds.NewMeter()
		if got := DiameterApprox(tc.g, m); got != tc.want {
			t.Errorf("%s: DiameterApprox = %d, want %d", tc.name, got, tc.want)
		}
		if m.Component("apps/diameter") == 0 {
			t.Errorf("%s: no rounds charged", tc.name)
		}
	}
}

func TestDiameterApproxChargesTwoSweeps(t *testing.T) {
	g := graph.Path(100)
	m := rounds.NewMeter()
	diam := DiameterApprox(g, m)
	if want := 2*int64(diam) + 2; m.Component("apps/diameter") != want {
		t.Fatalf("charged %d rounds, want %d", m.Component("apps/diameter"), want)
	}
}

func TestDiameterApproxZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; alloc counts are nondeterministic")
	}
	g := graph.ConnectedGnp(256, 0.05, 1)
	DiameterApprox(g, nil) // warm the pooled scratch
	allocs := testing.AllocsPerRun(100, func() {
		DiameterApprox(g, nil)
	})
	if allocs != 0 {
		t.Fatalf("DiameterApprox allocates %v per run, want 0", allocs)
	}
}
