package ls

// Self-registration of the Linial–Saks randomized weak-diameter
// construction with the algorithm registry.

import (
	"context"
	"math/rand"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/registry"
)

func init() {
	registry.MustRegister("linial-saks", func() registry.Decomposer {
		return registry.Funcs{
			Meta: registry.Info{
				Name:              "linial-saks",
				Reference:         "[LS93]",
				Model:             "randomized",
				Diameter:          "weak",
				PaperColors:       "O(log n)",
				PaperCarveDiam:    "O(log n / eps)",
				PaperCarveRounds:  "O(log n / eps)",
				PaperDecompDiam:   "O(log n)",
				PaperDecompRounds: "O(log^2 n)",
				Order:             10,
			},
			CarveFunc: func(ctx context.Context, g *graph.Graph, eps float64, o registry.RunOptions) (*cluster.Carving, error) {
				return CarveContext(ctx, g, o.Nodes, eps, rand.New(rand.NewSource(o.Seed)), o.Meter)
			},
			DecomposeFunc: func(ctx context.Context, g *graph.Graph, o registry.RunOptions) (*cluster.Decomposition, error) {
				return DecomposeContext(ctx, g, rand.New(rand.NewSource(o.Seed)), o.Meter)
			},
		}
	})
}
