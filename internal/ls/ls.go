// Package ls implements the randomized weak-diameter constructions of
// Linial and Saks [LS93]: a weak-diameter ball carving with clusters of weak
// diameter O(log n / ε) in O(log n / ε) rounds, and, by the standard
// iteration, a weak-diameter network decomposition with O(log n) colors and
// O(log n) weak diameter in O(log² n) rounds. These populate the "Weak /
// Randomized" rows of the paper's Tables 1 and 2.
//
// Per carving iteration every live node u draws a truncated geometric radius
// r_u and broadcasts (id_u, r_u) up to r_u hops; each node v selects the
// maximum-id node u covering it (d(u,v) <= r_u) and is clustered iff it lies
// strictly inside that ball (d(u,v) < r_u). The classic argument shows
// clusters of one iteration are non-adjacent, and each boundary event has
// probability at most p by memorylessness, so the expected dead fraction is
// at most p. Carve retries with fresh randomness until the realized dead
// fraction meets ε (Las Vegas boosting), so its post-condition is
// deterministic.
package ls

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/registry"
	"strongdecomp/internal/rounds"
)

// maxCarveAttempts bounds the Las Vegas retry loop; the per-attempt success
// probability is at least 1/2 by Markov, so 40 failures indicate a bug.
const maxCarveAttempts = 40

// Radius returns the truncation bound B(n, p): radii are capped so that the
// truncation distorts the geometric distribution by less than 1/n.
func Radius(n int, p float64) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log(float64(n))/p)) + 1
}

// Carve computes a weak-diameter ball carving of the subgraph induced by
// nodes (nil = all of g) removing at most an eps fraction of them. Clusters
// have weak diameter at most 2·Radius(n, eps/2) and come with Steiner trees
// (the covering BFS trees truncated to members and their relay paths).
func Carve(g *graph.Graph, nodes []int, eps float64, rng *rand.Rand, m *rounds.Meter) (*cluster.Carving, error) {
	return CarveContext(context.Background(), g, nodes, eps, rng, m)
}

// CarveContext is Carve with cancellation observed between Las Vegas
// attempts.
func CarveContext(ctx context.Context, g *graph.Graph, nodes []int, eps float64, rng *rand.Rand, m *rounds.Meter) (*cluster.Carving, error) {
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("ls: eps %v outside (0, 1]", eps)
	}
	if nodes == nil {
		nodes = make([]int, g.N())
		for i := range nodes {
			nodes[i] = i
		}
	}
	if len(nodes) == 0 {
		return emptyCarving(g.N()), nil
	}
	p := eps / 2
	for attempt := 0; attempt < maxCarveAttempts; attempt++ {
		if err := registry.CtxErr(ctx); err != nil {
			return nil, err
		}
		c := carveOnce(g, nodes, p, rng, m)
		if c.DeadFraction(nodes) <= eps+1.0/float64(len(nodes)) {
			return c, nil
		}
	}
	return nil, fmt.Errorf("ls: carving failed to meet eps=%v after %d attempts", eps, maxCarveAttempts)
}

func carveOnce(g *graph.Graph, nodes []int, p float64, rng *rand.Rand, m *rounds.Meter) *cluster.Carving {
	n := g.N()
	maxR := Radius(len(nodes), p)
	inS := make([]bool, n)
	for _, v := range nodes {
		inS[v] = true
	}
	radius := make([]int, n)
	for _, v := range nodes {
		radius[v] = truncGeometric(p, maxR, rng)
	}

	// bestID[v]: maximum-id node covering v; bestDist[v]: its distance.
	bestID := make([]int, n)
	bestDist := make([]int, n)
	for i := range bestID {
		bestID[i] = -1
	}
	dist := make([]int, n)
	// Flood from every center, processed in increasing id; later (larger)
	// ids overwrite, so ties resolve to the maximum id.
	for _, u := range nodes {
		ball := truncatedBFS(g, inS, u, radius[u], dist)
		for _, v := range ball {
			if u >= bestID[v] {
				bestID[v] = u
				bestDist[v] = dist[v]
			}
		}
	}
	// The CONGEST implementation pipelines all floods in O(maxR) rounds.
	m.Charge("ls/flood", int64(maxR)+1)
	m.ChargeMessages(int64(g.M()))

	assign := make([]int, n)
	for i := range assign {
		assign[i] = cluster.Unclustered
	}
	// Strict interior rule; group members by center.
	members := make(map[int][]int)
	for _, v := range nodes {
		u := bestID[v]
		if u >= 0 && bestDist[v] < radius[u] {
			members[u] = append(members[u], v)
		}
	}
	centers := make([]int, 0, len(members))
	for u := range members {
		centers = append(centers, u)
	}
	sort.Ints(centers)
	trees := make([]*cluster.Tree, len(centers))
	for i, u := range centers {
		for _, v := range members[u] {
			assign[v] = i
		}
		trees[i] = steinerTree(g, inS, u, members[u])
	}
	return &cluster.Carving{Assign: assign, K: len(centers), Centers: centers, Trees: trees}
}

// Decompose builds a weak-diameter network decomposition by iterating Carve
// with eps = 1/2 on the remaining nodes; clusters found in iteration i get
// color i. With high probability this needs O(log n) colors.
func Decompose(g *graph.Graph, rng *rand.Rand, m *rounds.Meter) (*cluster.Decomposition, error) {
	return DecomposeContext(context.Background(), g, rng, m)
}

// DecomposeContext is Decompose with cancellation observed before every
// color iteration.
func DecomposeContext(ctx context.Context, g *graph.Graph, rng *rand.Rand, m *rounds.Meter) (*cluster.Decomposition, error) {
	n := g.N()
	assign := make([]int, n)
	for i := range assign {
		assign[i] = cluster.Unclustered
	}
	var (
		color   []int
		centers []int
		k       int
	)
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	for iter := 0; len(remaining) > 0; iter++ {
		c, err := CarveContext(ctx, g, remaining, 0.5, rng, m)
		if err != nil {
			return nil, err
		}
		for i, members := range c.Members() {
			for _, v := range members {
				assign[v] = k
			}
			color = append(color, iter)
			centers = append(centers, c.Centers[i])
			k++
		}
		var rest []int
		for _, v := range remaining {
			if assign[v] == cluster.Unclustered {
				rest = append(rest, v)
			}
		}
		remaining = rest
	}
	colors := 0
	for _, col := range color {
		if col+1 > colors {
			colors = col + 1
		}
	}
	return &cluster.Decomposition{Assign: assign, Color: color, K: k, Colors: colors, Centers: centers}, nil
}

func truncGeometric(p float64, maxR int, rng *rand.Rand) int {
	r := 0
	for r < maxR && rng.Float64() >= p {
		r++
	}
	return r
}

// truncatedBFS explores up to depth limit from src within inS and returns
// the visited nodes; dist is scratch of length g.N() and holds distances for
// visited nodes afterwards.
func truncatedBFS(g *graph.Graph, inS []bool, src, limit int, dist []int) []int {
	for i := range dist {
		dist[i] = -1
	}
	if !inS[src] {
		return nil
	}
	dist[src] = 0
	queue := []int{src}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		if dist[u] == limit {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if dist[v] == -1 && inS[v] {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return queue
}

// steinerTree builds the BFS tree from center u restricted to inS, truncated
// to the paths reaching members (relays along those paths stay in the tree).
func steinerTree(g *graph.Graph, inS []bool, u int, members []int) *cluster.Tree {
	dist, parent := graph.BFSTree(g, inS, u)
	_ = dist
	t := cluster.NewTree(u)
	var attach func(v int)
	attach = func(v int) {
		if t.Has(v) || v == u {
			return
		}
		attach(parent[v])
		if err := t.Add(v, parent[v]); err != nil {
			panic(fmt.Sprintf("ls: steiner tree: %v", err))
		}
	}
	for _, v := range members {
		attach(v)
	}
	return t
}

func emptyCarving(n int) *cluster.Carving {
	assign := make([]int, n)
	for i := range assign {
		assign[i] = cluster.Unclustered
	}
	return &cluster.Carving{Assign: assign}
}
