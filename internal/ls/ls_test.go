package ls

import (
	"math/rand"
	"testing"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/rounds"
)

func TestCarveRejectsBadEps(t *testing.T) {
	g := graph.Path(4)
	rng := rand.New(rand.NewSource(1))
	for _, eps := range []float64{0, -1, 1.01} {
		if _, err := Carve(g, nil, eps, rng, nil); err == nil {
			t.Fatalf("eps %v accepted", eps)
		}
	}
}

func TestCarveEmptySubset(t *testing.T) {
	g := graph.Path(4)
	rng := rand.New(rand.NewSource(1))
	c, err := Carve(g, []int{}, 0.5, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.K != 0 {
		t.Fatalf("empty subset produced %d clusters", c.K)
	}
}

func TestCarveInvariantsAcrossFamilies(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(120)},
		{"grid", graph.Grid(11, 11)},
		{"gnp", graph.ConnectedGnp(150, 0.03, 7)},
		{"expander", graph.RandomRegularish(100, 4, 8)},
		{"tree", graph.BinaryTree(100)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for _, eps := range []float64{0.5, 0.25} {
				c, err := Carve(tt.g, nil, eps, rng, nil)
				if err != nil {
					t.Fatal(err)
				}
				n := len(tt.g.Neighbors(0)) // silence unused in case of edits
				_ = n
				maxDepth := Radius(tt.g.N(), eps/2)
				// Congestion: the pipelined floods reuse BFS trees; each
				// cluster contributes one tree, and a relay can serve many
				// trees, so only validate against a generous bound.
				if err := cluster.CheckWeakCarving(tt.g, nil, c, eps, maxDepth, -1); err != nil {
					t.Fatalf("eps=%v: %v", eps, err)
				}
				// Weak diameter must respect 2*Radius.
				if d := cluster.MaxWeakDiameter(tt.g, c.Members()); d > 2*maxDepth {
					t.Fatalf("weak diameter %d exceeds %d", d, 2*maxDepth)
				}
			}
		})
	}
}

func TestCarveChargesRounds(t *testing.T) {
	g := graph.Grid(8, 8)
	m := rounds.NewMeter()
	rng := rand.New(rand.NewSource(3))
	if _, err := Carve(g, nil, 0.5, rng, m); err != nil {
		t.Fatal(err)
	}
	if m.Component("ls/flood") == 0 {
		t.Fatalf("no flood rounds charged: %s", m)
	}
}

func TestCarveSeedReproducible(t *testing.T) {
	g := graph.ConnectedGnp(80, 0.05, 5)
	a, err := Carve(g, nil, 0.5, rand.New(rand.NewSource(11)), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Carve(g, nil, 0.5, rand.New(rand.NewSource(11)), nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Assign {
		if a.Assign[v] != b.Assign[v] {
			t.Fatalf("same seed diverged at node %d", v)
		}
	}
}

func TestDecomposeValid(t *testing.T) {
	for _, tt := range []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", graph.Grid(10, 10)},
		{"gnp", graph.ConnectedGnp(120, 0.04, 13)},
		{"path", graph.Path(100)},
	} {
		t.Run(tt.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			d, err := Decompose(tt.g, rng, nil)
			if err != nil {
				t.Fatal(err)
			}
			// Weak diameter bound: 2 * Radius at eps/2 = 1/4.
			bound := 2 * Radius(tt.g.N(), 0.25)
			if err := cluster.CheckDecomposition(tt.g, d, bound, false); err != nil {
				t.Fatal(err)
			}
			if d.Colors > 6*log2ceil(tt.g.N()) {
				t.Fatalf("used %d colors for n=%d", d.Colors, tt.g.N())
			}
		})
	}
}

func TestRadiusGrowsWithNAndShrinkingP(t *testing.T) {
	if Radius(1024, 0.25) <= Radius(64, 0.25) {
		t.Fatal("radius not monotone in n")
	}
	if Radius(1024, 0.1) <= Radius(1024, 0.5) {
		t.Fatal("radius not monotone in 1/p")
	}
	if Radius(1, 0.25) != 1 {
		t.Fatalf("Radius(1) = %d", Radius(1, 0.25))
	}
}

func log2ceil(n int) int {
	b := 1
	for 1<<b < n {
		b++
	}
	return b
}
