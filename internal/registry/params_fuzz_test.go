package registry

import (
	"bytes"
	"math"
	"testing"
)

// FuzzParamsEncoding pins the two contracts the serving layer's cache
// identity rests on: encode→decode is lossless over arbitrary field
// values, and encoding is byte-stable (the same Params always produces
// the same bytes — "hash stability"). Nodes are derived from the seed
// bytes so the corpus explores empty, short, and negative-id slices.
func FuzzParamsEncoding(f *testing.F) {
	f.Add("chang-ghaffari", "decompose", 0.0, int64(0), false, []byte{})
	f.Add("mpx", "carve", 0.25, int64(-9), true, []byte{1, 2, 3})
	f.Add("", "", math.NaN(), int64(1)<<40, false, []byte{0xff, 0x00})
	f.Add("weird\x00name", "paint", math.Inf(-1), int64(-1), true, []byte{7})
	f.Fuzz(func(t *testing.T, algo, kind string, eps float64, seed int64, meter bool, nodeBytes []byte) {
		var nodes []int
		for _, b := range nodeBytes {
			nodes = append(nodes, int(int8(b)))
		}
		p := Params{Algorithm: algo, Kind: Kind(kind), Eps: eps, Seed: seed, Nodes: nodes, Meter: meter}

		enc := p.EncodeBinary()
		if again := p.EncodeBinary(); !bytes.Equal(enc, again) {
			t.Fatalf("encoding not stable: %x vs %x", enc, again)
		}
		got, err := DecodeParams(enc)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if got.Algorithm != p.Algorithm || got.Kind != p.Kind || got.Seed != p.Seed || got.Meter != p.Meter {
			t.Fatalf("round trip changed fields: %+v -> %+v", p, got)
		}
		if math.Float64bits(got.Eps) != math.Float64bits(p.Eps) {
			t.Fatalf("round trip changed eps bits: %v -> %v", p.Eps, got.Eps)
		}
		if len(got.Nodes) != len(p.Nodes) {
			t.Fatalf("round trip changed node count: %d -> %d", len(p.Nodes), len(got.Nodes))
		}
		for i := range got.Nodes {
			if got.Nodes[i] != p.Nodes[i] {
				t.Fatalf("round trip changed nodes[%d]: %d -> %d", i, p.Nodes[i], got.Nodes[i])
			}
		}
		if reenc := got.EncodeBinary(); !bytes.Equal(reenc, enc) {
			t.Fatalf("re-encoding after decode changed bytes: %x vs %x", enc, reenc)
		}
		// Key is total (never panics) and stable for any input, normalized
		// or not.
		if p.Key() != p.Key() {
			t.Fatal("Key not stable")
		}
	})
}

// FuzzDecodeParams feeds arbitrary bytes to the decoder: it must never
// panic or over-allocate, and anything it accepts must re-encode to
// exactly the bytes it consumed only if it is itself canonical — which we
// cannot assert for padded varints, so we assert the weaker invariant
// that a successful decode round-trips through encode/decode losslessly.
func FuzzDecodeParams(f *testing.F) {
	f.Add([]byte{})
	f.Add(Params{}.EncodeBinary())
	f.Add(Params{Algorithm: "mpx", Kind: KindCarve, Eps: 0.5, Seed: 3, Nodes: []int{1, 2, 9}, Meter: true}.EncodeBinary())
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeParams(data)
		if err != nil {
			return
		}
		enc := p.EncodeBinary()
		got, err := DecodeParams(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted value failed: %v", err)
		}
		if !bytes.Equal(got.EncodeBinary(), enc) {
			t.Fatal("accepted value does not round-trip canonically")
		}
	})
}
