// Package registry is the central dispatch table for decomposition
// constructions. Each algorithm package (core, mpx, ls, seqcarve)
// self-registers a factory under a stable name at init time; the public
// facade, the benchmark harness, and the cmd tools all resolve
// constructions through Lookup instead of hard-coding an algorithm switch.
//
// A registered construction implements Decomposer: a context-aware ball
// carving (Carve) and network decomposition (Decompose) over a host graph,
// parameterized by RunOptions. Adding a construction to the system is a
// single Register call — no facade edits required.
package registry

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/rounds"
)

// Typed errors shared by the registry and every registered construction.
var (
	// ErrUnknownAlgorithm is returned by Lookup for unregistered names.
	ErrUnknownAlgorithm = errors.New("strongdecomp: unknown algorithm")
	// ErrCanceled wraps a context cancellation or deadline observed
	// mid-run; errors.Is also matches the underlying ctx.Err().
	ErrCanceled = errors.New("strongdecomp: run canceled")
	// ErrDuplicateAlgorithm is returned by Register for a name collision.
	ErrDuplicateAlgorithm = errors.New("strongdecomp: duplicate algorithm")
)

// CtxErr returns nil while ctx is live and an ErrCanceled-wrapped error once
// it is canceled or past its deadline. Algorithm main loops call it at every
// iteration boundary, which is what makes runs cancelable mid-flight.
func CtxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return nil
}

// RunOptions carries the per-run parameters shared by every construction.
// The zero value (and a nil pointer) are valid and mean: seed 0, no meter,
// all nodes. Every seed — including 0 — is passed through verbatim so that
// pinned experiments stay reproducible.
type RunOptions struct {
	// Seed drives the randomized constructions; deterministic ones
	// ignore it.
	Seed int64
	// Meter, when non-nil, accumulates the simulated CONGEST cost.
	Meter *rounds.Meter
	// Nodes restricts Carve to the subgraph induced by these nodes
	// (nil = all nodes). Decompose always covers the whole graph.
	Nodes []int
}

// Normalized returns a value copy; safe on nil.
func (o *RunOptions) Normalized() RunOptions {
	if o == nil {
		return RunOptions{}
	}
	return *o
}

// Info describes a registered construction: identity, provenance, and the
// paper-stated bounds that the benchmark tables print next to measurements.
type Info struct {
	// Name is the registry key ("chang-ghaffari", "mpx", ...).
	Name string
	// Display is the long table name ("mpx-elkin-neiman"); defaults to
	// Name when empty.
	Display string
	// Reference cites the construction ("Theorem 2.3", "[LS93]").
	// CarveReference / DecompReference override it per operation when the
	// paper states the two results separately; empty means Reference.
	Reference       string
	CarveReference  string
	DecompReference string
	// Model is "deterministic" or "randomized".
	Model string
	// Diameter is "strong" or "weak" — whether cluster diameters are
	// bounded in the induced subgraph or only in the host graph.
	Diameter string
	// Paper-stated bounds, as printed in Tables 1 and 2. An empty
	// PaperCarveDiam marks a construction without a calibrated
	// eps-carving row (it is skipped by the Table 2 harness).
	PaperColors       string
	PaperCarveDiam    string
	PaperCarveRounds  string
	PaperDecompDiam   string
	PaperDecompRounds string
	// Order fixes the presentation order in Algorithms() and the tables.
	Order int
}

// DisplayName returns Display, falling back to Name.
func (i Info) DisplayName() string {
	if i.Display != "" {
		return i.Display
	}
	return i.Name
}

// CarveRef returns the citation for the ball-carving result.
func (i Info) CarveRef() string {
	if i.CarveReference != "" {
		return i.CarveReference
	}
	return i.Reference
}

// DecompRef returns the citation for the decomposition result.
func (i Info) DecompRef() string {
	if i.DecompReference != "" {
		return i.DecompReference
	}
	return i.Reference
}

// Decomposer is a registered construction. Implementations must be safe for
// concurrent use: the Engine runs one Decomposer value from many goroutines.
type Decomposer interface {
	// Info reports the construction's metadata.
	Info() Info
	// Carve computes a ball carving with boundary parameter eps on the
	// subgraph induced by opts.Nodes (nil = all of g).
	Carve(ctx context.Context, g *graph.Graph, eps float64, opts *RunOptions) (*cluster.Carving, error)
	// Decompose computes a full network decomposition of g.
	Decompose(ctx context.Context, g *graph.Graph, opts *RunOptions) (*cluster.Decomposition, error)
}

// Factory builds a Decomposer. Lookup invokes it on every call, so factories
// returning stateless values are cheapest; stateful implementations get a
// fresh instance per Lookup.
type Factory func() Decomposer

// Funcs adapts plain functions to the Decomposer interface; it is the
// adapter every in-tree algorithm package registers through. Both function
// fields receive normalized (nil-safe) options.
type Funcs struct {
	Meta          Info
	CarveFunc     func(ctx context.Context, g *graph.Graph, eps float64, opts RunOptions) (*cluster.Carving, error)
	DecomposeFunc func(ctx context.Context, g *graph.Graph, opts RunOptions) (*cluster.Decomposition, error)
}

// Info implements Decomposer.
func (f Funcs) Info() Info { return f.Meta }

// Carve implements Decomposer.
func (f Funcs) Carve(ctx context.Context, g *graph.Graph, eps float64, opts *RunOptions) (*cluster.Carving, error) {
	if f.CarveFunc == nil {
		return nil, fmt.Errorf("strongdecomp: %s does not implement Carve", f.Meta.Name)
	}
	if err := CtxErr(ctx); err != nil {
		return nil, err
	}
	return f.CarveFunc(ctx, g, eps, opts.Normalized())
}

// Decompose implements Decomposer.
func (f Funcs) Decompose(ctx context.Context, g *graph.Graph, opts *RunOptions) (*cluster.Decomposition, error) {
	if f.DecomposeFunc == nil {
		return nil, fmt.Errorf("strongdecomp: %s does not implement Decompose", f.Meta.Name)
	}
	if err := CtxErr(ctx); err != nil {
		return nil, err
	}
	return f.DecomposeFunc(ctx, g, opts.Normalized())
}

var (
	mu        sync.RWMutex
	factories = make(map[string]Factory)
	infos     = make(map[string]Info)
)

// Register adds a construction under name. The factory is invoked once
// immediately to capture its Info and validate the name.
func Register(name string, factory Factory) error {
	if name == "" || factory == nil {
		return fmt.Errorf("strongdecomp: Register needs a name and a factory")
	}
	d := factory()
	if d == nil {
		return fmt.Errorf("strongdecomp: factory for %q returned nil", name)
	}
	info := d.Info()
	if info.Name == "" {
		info.Name = name
	}
	if info.Name != name {
		return fmt.Errorf("strongdecomp: factory for %q reports name %q", name, info.Name)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := factories[name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateAlgorithm, name)
	}
	factories[name] = factory
	infos[name] = info
	return nil
}

// MustRegister is Register for init-time self-registration; it panics on
// error because a broken registration is a programming bug.
func MustRegister(name string, factory Factory) {
	if err := Register(name, factory); err != nil {
		panic(err)
	}
}

// Unregister removes a construction; it exists so tests can register
// throwaway algorithms without polluting the process-wide table.
func Unregister(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(factories, name)
	delete(infos, name)
}

// Lookup resolves a registered construction by name.
func Lookup(name string) (Decomposer, error) {
	mu.RLock()
	f, ok := factories[name]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (registered: %v)", ErrUnknownAlgorithm, name, Algorithms())
	}
	return f(), nil
}

// Algorithms returns the registered names ordered by Info.Order, then name.
func Algorithms() []string {
	all := Infos()
	names := make([]string, len(all))
	for i, info := range all {
		names[i] = info.Name
	}
	return names
}

// Infos returns the metadata of every registered construction ordered by
// Info.Order, then name.
func Infos() []Info {
	mu.RLock()
	out := make([]Info, 0, len(infos))
	for _, info := range infos {
		out = append(out, info)
	}
	mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Order != out[j].Order {
			return out[i].Order < out[j].Order
		}
		return out[i].Name < out[j].Name
	})
	return out
}
