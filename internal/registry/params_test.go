package registry

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
)

func TestParamsNormalizedDefaults(t *testing.T) {
	p := Params{}.Normalized()
	if p.Algorithm != DefaultAlgorithm {
		t.Errorf("Algorithm = %q, want %q", p.Algorithm, DefaultAlgorithm)
	}
	if p.Kind != KindDecompose {
		t.Errorf("Kind = %q, want %q", p.Kind, KindDecompose)
	}
}

func TestParamsNormalizedClearsCarveOnlyFields(t *testing.T) {
	p := Params{Kind: KindDecompose, Eps: 0.5, Nodes: []int{1, 2}}.Normalized()
	if p.Eps != 0 || p.Nodes != nil {
		t.Errorf("decompose kept carve-only fields: eps %v nodes %v", p.Eps, p.Nodes)
	}
	c := Params{Kind: KindCarve, Eps: 0.5, Nodes: []int{1, 2}}.Normalized()
	if c.Eps != 0.5 || len(c.Nodes) != 2 {
		t.Errorf("carve lost its fields: eps %v nodes %v", c.Eps, c.Nodes)
	}
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"zero value (defaults to decompose)", Params{}, true},
		{"carve valid", Params{Kind: KindCarve, Eps: 0.5}, true},
		{"carve eps one", Params{Kind: KindCarve, Eps: 1}, true},
		{"carve eps zero", Params{Kind: KindCarve}, false},
		{"carve eps negative", Params{Kind: KindCarve, Eps: -0.5}, false},
		{"carve eps above one", Params{Kind: KindCarve, Eps: 1.5}, false},
		{"carve eps NaN", Params{Kind: KindCarve, Eps: math.NaN()}, false},
		{"carve eps +Inf", Params{Kind: KindCarve, Eps: math.Inf(1)}, false},
		{"carve eps -Inf", Params{Kind: KindCarve, Eps: math.Inf(-1)}, false},
		{"unknown kind", Params{Kind: "paint"}, false},
		{"negative node", Params{Kind: KindCarve, Eps: 0.5, Nodes: []int{0, -3}}, false},
		{"decompose ignores eps", Params{Kind: KindDecompose, Eps: math.NaN()}, true},
	}
	for _, tc := range cases {
		err := tc.p.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("%s: expected an error", tc.name)
			} else if !errors.Is(err, ErrInvalidParams) {
				t.Errorf("%s: error %v does not match ErrInvalidParams", tc.name, err)
			}
		}
	}
}

func TestParamsEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Params{
		{},
		Params{}.Normalized(),
		{Algorithm: "mpx", Kind: KindCarve, Eps: 0.25, Seed: -7, Meter: true},
		{Algorithm: "sequential", Kind: KindDecompose, Seed: 1 << 40},
		{Kind: KindCarve, Eps: math.NaN(), Nodes: []int{0, 5, 2}},
	}
	for _, p := range cases {
		enc := p.EncodeBinary()
		got, err := DecodeParams(enc)
		if err != nil {
			t.Fatalf("DecodeParams(%+v): %v", p, err)
		}
		if !paramsEqual(got, p) {
			t.Errorf("round trip changed %+v into %+v", p, got)
		}
		if !bytes.Equal(got.EncodeBinary(), enc) {
			t.Errorf("re-encoding %+v is not byte-stable", p)
		}
	}
}

func TestParamsKeyCanonical(t *testing.T) {
	// Equivalent requests — defaults spelled out or left empty, decompose
	// eps set or not — must share one cache identity.
	a := Params{Kind: KindDecompose, Eps: 0.5, Seed: 3}
	b := Params{Algorithm: DefaultAlgorithm, Seed: 3}
	if a.Key() != b.Key() {
		t.Error("equivalent decompose requests have different keys")
	}
	// Distinct requests must not collide.
	distinct := []Params{
		{Kind: KindCarve, Eps: 0.5},
		{Kind: KindCarve, Eps: 0.25},
		{Kind: KindCarve, Eps: 0.5, Seed: 1},
		{Kind: KindCarve, Eps: 0.5, Meter: true},
		{Kind: KindCarve, Eps: 0.5, Nodes: []int{1}},
		{Kind: KindDecompose},
		{Kind: KindDecompose, Algorithm: "mpx"},
	}
	seen := make(map[string]int)
	for i, p := range distinct {
		k := p.Key()
		if j, dup := seen[k]; dup {
			t.Errorf("params %d and %d share a key", i, j)
		}
		seen[k] = i
	}
}

func TestDecodeParamsRejectsCorruptInput(t *testing.T) {
	enc := Params{Algorithm: "mpx", Kind: KindCarve, Eps: 0.5, Nodes: []int{1, 2}}.EncodeBinary()
	if _, err := DecodeParams(enc[:len(enc)-1]); err == nil {
		t.Error("truncated encoding decoded")
	}
	if _, err := DecodeParams(append(append([]byte{}, enc...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	if _, err := DecodeParams([]byte("not a params blob")); err == nil {
		t.Error("garbage decoded")
	}
	if _, err := DecodeParams(nil); err == nil {
		t.Error("empty input decoded")
	}
}

// stubDecomposer registers a trivial construction (every node its own
// cluster, one color) under name and returns a cleanup-registered handle,
// so execution-path tests need no real algorithm package (importing one
// here would be an import cycle).
func stubDecomposer(t *testing.T, name string) {
	t.Helper()
	MustRegister(name, func() Decomposer {
		return Funcs{
			Meta: Info{Name: name},
			CarveFunc: func(ctx context.Context, g *graph.Graph, eps float64, o RunOptions) (*cluster.Carving, error) {
				if o.Meter != nil {
					o.Meter.Charge("stub", 1)
				}
				assign := make([]int, g.N())
				for i := range assign {
					assign[i] = i
				}
				return &cluster.Carving{Assign: assign, K: g.N()}, nil
			},
			DecomposeFunc: func(ctx context.Context, g *graph.Graph, o RunOptions) (*cluster.Decomposition, error) {
				if o.Meter != nil {
					o.Meter.Charge("stub", 1)
				}
				assign := make([]int, g.N())
				color := make([]int, g.N())
				for i := range assign {
					assign[i] = i
				}
				return &cluster.Decomposition{Assign: assign, Color: color, K: g.N(), Colors: 1}, nil
			},
		}
	})
	t.Cleanup(func() { Unregister(name) })
}

// TestRegistryRun covers the canonical one-call entry: both kinds,
// metering, and unknown-algorithm / invalid-params errors.
func TestRegistryRun(t *testing.T) {
	stubDecomposer(t, "test-params-run")
	g, err := graph.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(context.Background(), g, Params{Algorithm: "test-params-run", Meter: true})
	if err != nil {
		t.Fatalf("Run(decompose): %v", err)
	}
	if out.Decomposition == nil || out.Carving != nil {
		t.Fatal("decompose outcome shape wrong")
	}
	if out.Params.Kind != KindDecompose {
		t.Errorf("outcome params not normalized: %+v", out.Params)
	}
	if out.Rounds <= 0 {
		t.Error("metered run reports no rounds")
	}

	out, err = Run(context.Background(), g, Params{Algorithm: "test-params-run", Kind: KindCarve, Eps: 0.5})
	if err != nil {
		t.Fatalf("Run(carve): %v", err)
	}
	if out.Carving == nil || out.Decomposition != nil {
		t.Fatal("carve outcome shape wrong")
	}
	if out.Rounds != 0 {
		t.Error("unmetered run reports rounds")
	}

	if _, err := Run(context.Background(), g, Params{Algorithm: "no-such"}); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Errorf("unknown algorithm error = %v", err)
	}
	if _, err := Run(context.Background(), g, Params{Algorithm: "test-params-run", Kind: KindCarve, Eps: math.NaN()}); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("NaN eps error = %v", err)
	}
}

// TestAdaptDecomposer checks the Decomposer→Runner bridge used for direct
// registry dispatch.
func TestAdaptDecomposer(t *testing.T) {
	stubDecomposer(t, "test-params-adapt")
	g, err := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Lookup("test-params-adapt")
	if err != nil {
		t.Fatal(err)
	}
	out, err := AdaptDecomposer(d).Run(context.Background(), g, Params{Algorithm: "test-params-adapt", Kind: KindCarve, Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if out.Carving == nil {
		t.Fatal("adapter returned no carving")
	}
}

// paramsEqual compares Params treating NaN eps as equal by bit pattern and
// nil/empty Nodes as distinct only when lengths differ.
func paramsEqual(a, b Params) bool {
	if a.Algorithm != b.Algorithm || a.Kind != b.Kind || a.Seed != b.Seed || a.Meter != b.Meter {
		return false
	}
	if math.Float64bits(a.Eps) != math.Float64bits(b.Eps) {
		return false
	}
	if len(a.Nodes) != len(b.Nodes) {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return false
		}
	}
	return true
}
