package registry

import (
	"context"
	"errors"
	"testing"

	"strongdecomp/internal/graph"
)

func TestCtxErr(t *testing.T) {
	if err := CtxErr(context.Background()); err != nil {
		t.Fatalf("live context reported %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := CtxErr(ctx)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled context reported %v", err)
	}
}

func TestRunOptionsNormalized(t *testing.T) {
	var nilOpts *RunOptions
	o := nilOpts.Normalized()
	if o.Seed != 0 || o.Meter != nil || o.Nodes != nil {
		t.Fatalf("nil options normalized to %+v", o)
	}
	// Every seed passes through verbatim — 0 is a valid, distinct seed.
	for _, seed := range []int64{0, 9} {
		if got := (&RunOptions{Seed: seed}).Normalized().Seed; got != seed {
			t.Fatalf("seed %d normalized to %d", seed, got)
		}
	}
}

func TestInfoFallbacks(t *testing.T) {
	i := Info{Name: "x", Reference: "ref"}
	if i.DisplayName() != "x" || i.CarveRef() != "ref" || i.DecompRef() != "ref" {
		t.Fatalf("fallbacks broken: %+v", i)
	}
	i.Display, i.CarveReference, i.DecompReference = "X", "c", "d"
	if i.DisplayName() != "X" || i.CarveRef() != "c" || i.DecompRef() != "d" {
		t.Fatalf("overrides broken: %+v", i)
	}
}

func TestFuncsNilImplementations(t *testing.T) {
	f := Funcs{Meta: Info{Name: "partial"}}
	g := graph.Path(3)
	if _, err := f.Carve(context.Background(), g, 0.5, nil); err == nil {
		t.Fatal("nil CarveFunc accepted")
	}
	if _, err := f.Decompose(context.Background(), g, nil); err == nil {
		t.Fatal("nil DecomposeFunc accepted")
	}
}

func TestRegisterLifecycle(t *testing.T) {
	name := "test-lifecycle"
	if err := Register(name, func() Decomposer { return Funcs{Meta: Info{Name: name}} }); err != nil {
		t.Fatal(err)
	}
	defer Unregister(name)
	if _, err := Lookup(name); err != nil {
		t.Fatal(err)
	}
	if err := Register(name, func() Decomposer { return Funcs{Meta: Info{Name: name}} }); !errors.Is(err, ErrDuplicateAlgorithm) {
		t.Fatalf("duplicate accepted: %v", err)
	}
	Unregister(name)
	if _, err := Lookup(name); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Fatalf("unregistered name still resolves: %v", err)
	}
}
