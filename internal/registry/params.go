package registry

// This file is the canonical request shape of the v2 run API: one Params
// value describes a whole decomposition or ball-carving run (algorithm,
// kind, eps, seed, node restriction, meter opt-in) and is the single
// source of request defaults (Normalized), request validation (Validate),
// and cache identity (the canonical binary encoding behind Key). The
// facade, the Engine, the serving layer, and the HTTP API all resolve
// their inputs into a Params and hand it to Run/Exec; the legacy
// (eps float64, *RunOptions) signatures survive only as thin shims.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/rounds"
)

// ErrInvalidParams marks a Params value that cannot be executed (unknown
// kind, non-finite or out-of-range eps, negative node ids). The serving
// layer wraps it into its own ErrInvalidRequest.
var ErrInvalidParams = errors.New("strongdecomp: invalid params")

// Kind selects the operation a Params value describes.
type Kind string

const (
	// KindCarve is a ball carving with boundary parameter Eps.
	KindCarve Kind = "carve"
	// KindDecompose is a full network decomposition.
	KindDecompose Kind = "decompose"
)

// DefaultAlgorithm is the construction used when a Params names none: the
// paper's deterministic Theorem 2.2/2.3 construction.
const DefaultAlgorithm = "chang-ghaffari"

// Params is the canonical description of one run. It is a pure value:
// comparable field-by-field, independent of any execution backend, and
// canonically encodable (EncodeBinary), which is what makes it usable as a
// cache key end to end — the same Params that validates a CLI flag set or
// an HTTP body also addresses the serving layer's result cache.
//
// The zero value is not directly runnable; call Normalized to fill
// defaults (algorithm, kind) before Validate or manual dispatch. Run, Exec
// and the Engine normalize internally.
type Params struct {
	// Algorithm is a registry name; empty means DefaultAlgorithm.
	Algorithm string
	// Kind is the operation; empty means KindDecompose.
	Kind Kind
	// Eps is the carving boundary parameter, in (0, 1]. Decompositions
	// take no eps; Normalized zeroes it so equivalent requests encode
	// identically.
	Eps float64
	// Seed drives the randomized constructions; deterministic ones ignore
	// it. Every value — including 0 — is passed through verbatim.
	Seed int64
	// Nodes restricts a carving to the subgraph induced by these nodes
	// (nil = all nodes). Decompositions always cover the whole graph.
	Nodes []int
	// Meter opts into simulated CONGEST round metering; the accumulated
	// total is reported on Outcome.Rounds.
	Meter bool
}

// Normalized returns p with defaults filled and non-parameters cleared:
// an empty Algorithm becomes DefaultAlgorithm, an empty Kind becomes
// KindDecompose, and a decomposition's Eps and Nodes are zeroed (they are
// carve-only parameters and must not split the cache identity of
// equivalent requests).
func (p Params) Normalized() Params {
	if p.Algorithm == "" {
		p.Algorithm = DefaultAlgorithm
	}
	if p.Kind == "" {
		p.Kind = KindDecompose
	}
	if p.Kind == KindDecompose {
		p.Eps = 0
		p.Nodes = nil
	}
	return p
}

// Validate reports whether p describes an executable run. Validation is
// applied to the normalized form, so callers may validate raw inputs
// directly. Algorithm existence is deliberately not checked here — Params
// stays a pure value; Lookup resolves (and rejects) names at dispatch.
func (p Params) Validate() error {
	n := p.Normalized()
	switch n.Kind {
	case KindCarve:
		if math.IsNaN(n.Eps) || math.IsInf(n.Eps, 0) {
			return fmt.Errorf("%w: eps %v is not finite", ErrInvalidParams, n.Eps)
		}
		if !(n.Eps > 0 && n.Eps <= 1) {
			return fmt.Errorf("%w: eps %v outside (0, 1]", ErrInvalidParams, n.Eps)
		}
	case KindDecompose:
		// Eps and Nodes were cleared by Normalized.
	default:
		return fmt.Errorf("%w: unknown kind %q", ErrInvalidParams, n.Kind)
	}
	for i, v := range n.Nodes {
		if v < 0 {
			return fmt.Errorf("%w: nodes[%d] = %d is negative", ErrInvalidParams, i, v)
		}
	}
	return nil
}

// paramsDomain versions the canonical encoding; bump it if the scheme
// changes so stale cache identities can never collide with fresh ones.
const paramsDomain = "strongdecomp/params/v2\n"

// AppendBinary appends the canonical binary encoding of p to b and returns
// the extended slice. The encoding is total and injective over field
// values (NaN eps encodes by bit pattern), so it doubles as a cache key;
// it deliberately does NOT normalize — callers wanting the canonical
// identity of a request encode p.Normalized() (which Key does).
func (p Params) AppendBinary(b []byte) []byte {
	b = append(b, paramsDomain...)
	b = binary.AppendUvarint(b, uint64(len(p.Algorithm)))
	b = append(b, p.Algorithm...)
	b = binary.AppendUvarint(b, uint64(len(p.Kind)))
	b = append(b, p.Kind...)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(p.Eps))
	b = binary.AppendVarint(b, p.Seed)
	if p.Meter {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(len(p.Nodes)))
	for _, v := range p.Nodes {
		b = binary.AppendVarint(b, int64(v))
	}
	return b
}

// EncodeBinary returns the canonical binary encoding of p.
func (p Params) EncodeBinary() []byte { return p.AppendBinary(nil) }

// Key returns the canonical cache identity of p: the binary encoding of
// its normalized form, as a string so it can key ordinary Go maps. Two
// Params have equal Keys iff they describe the same run.
func (p Params) Key() string { return string(p.Normalized().EncodeBinary()) }

// DecodeParams reverses EncodeBinary. It rejects trailing bytes, wrong
// domains, and truncated fields, so encode→decode→encode is the identity
// on every value EncodeBinary produces (the property pinned by the fuzz
// target). Decoded values are not validated — run them through Validate.
func DecodeParams(data []byte) (Params, error) {
	var p Params
	d := paramsDecoder{buf: data}
	if err := d.expect(paramsDomain); err != nil {
		return p, err
	}
	var err error
	if p.Algorithm, err = d.str("algorithm"); err != nil {
		return p, err
	}
	kind, err := d.str("kind")
	if err != nil {
		return p, err
	}
	p.Kind = Kind(kind)
	if p.Eps, err = d.float("eps"); err != nil {
		return p, err
	}
	if p.Seed, err = d.varint("seed"); err != nil {
		return p, err
	}
	meter, err := d.byte("meter")
	if err != nil {
		return p, err
	}
	if meter > 1 {
		return p, fmt.Errorf("params: meter byte %d not 0 or 1", meter)
	}
	p.Meter = meter == 1
	count, err := d.uvarint("nodes count")
	if err != nil {
		return p, err
	}
	// Each node costs at least one encoded byte; an impossible count means
	// a corrupt or hostile input, not a huge allocation.
	if count > uint64(len(d.buf)) {
		return p, fmt.Errorf("params: nodes count %d exceeds remaining %d bytes", count, len(d.buf))
	}
	if count > 0 {
		p.Nodes = make([]int, count)
		for i := range p.Nodes {
			v, err := d.varint("node")
			if err != nil {
				return p, err
			}
			p.Nodes[i] = int(v)
		}
	}
	if len(d.buf) != 0 {
		return p, fmt.Errorf("params: %d trailing bytes", len(d.buf))
	}
	return p, nil
}

// paramsDecoder is a cursor over an encoded Params.
type paramsDecoder struct{ buf []byte }

func (d *paramsDecoder) expect(domain string) error {
	if len(d.buf) < len(domain) || string(d.buf[:len(domain)]) != domain {
		return fmt.Errorf("params: missing domain prefix %q", domain)
	}
	d.buf = d.buf[len(domain):]
	return nil
}

func (d *paramsDecoder) uvarint(field string) (uint64, error) {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		return 0, fmt.Errorf("params: truncated %s", field)
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *paramsDecoder) varint(field string) (int64, error) {
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		return 0, fmt.Errorf("params: truncated %s", field)
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *paramsDecoder) str(field string) (string, error) {
	n, err := d.uvarint(field + " length")
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.buf)) {
		return "", fmt.Errorf("params: %s length %d exceeds remaining %d bytes", field, n, len(d.buf))
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s, nil
}

func (d *paramsDecoder) float(field string) (float64, error) {
	if len(d.buf) < 8 {
		return 0, fmt.Errorf("params: truncated %s", field)
	}
	bits := binary.BigEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return math.Float64frombits(bits), nil
}

func (d *paramsDecoder) byte(field string) (byte, error) {
	if len(d.buf) < 1 {
		return 0, fmt.Errorf("params: truncated %s", field)
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b, nil
}

// StageTiming is one phase of a run's wall-clock breakdown. The paper's
// constructions decompose naturally into a component split, the
// ball-carving rounds, and a merge; exposing those as first-class timings
// (instead of one opaque elapsed total) is what lets per-phase costs be
// compared against the per-round analysis.
type StageTiming struct {
	// Name identifies the phase ("split", "carve-rounds", "merge").
	Name string `json:"name"`
	// Elapsed is the phase's wall-clock duration.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Outcome is the result of executing one Params: exactly one of Carving
// and Decomposition is set, matching Params.Kind. It is the canonical
// result shape shared by Run, Exec, the Engine, and the serving layer.
type Outcome struct {
	// Params is the normalized value the run executed under.
	Params Params
	// Carving is set for KindCarve runs.
	Carving *cluster.Carving
	// Decomposition is set for KindDecompose runs.
	Decomposition *cluster.Decomposition
	// Rounds is the simulated CONGEST round total when Params.Meter was
	// set (0 otherwise).
	Rounds int64
	// Stages is the per-phase wall-clock breakdown of the run. It is
	// populated only by backends with phase structure (the Engine) and
	// only when the caller's context carries an observability collector —
	// nil otherwise, so un-instrumented runs pay nothing for it.
	Stages []StageTiming
}

// Runner executes canonical Params — the v2 execution interface satisfied
// by the public Engine and by AdaptDecomposer-wrapped registry entries.
// Implementations must be safe for concurrent use.
type Runner interface {
	Run(ctx context.Context, g *graph.Graph, p Params) (*Outcome, error)
}

// Run normalizes and validates p, resolves its algorithm through Lookup,
// and executes it on g — the one-call entry of the v2 API.
func Run(ctx context.Context, g *graph.Graph, p Params) (*Outcome, error) {
	p = p.Normalized()
	d, err := Lookup(p.Algorithm)
	if err != nil {
		return nil, err
	}
	return Exec(ctx, d, g, p)
}

// Exec executes p on an already-resolved construction. Metering is driven
// by p.Meter; use ExecMeter to accumulate into an external meter (the
// legacy WithMeter path).
func Exec(ctx context.Context, d Decomposer, g *graph.Graph, p Params) (*Outcome, error) {
	p = p.Normalized()
	var meter *rounds.Meter
	if p.Meter {
		meter = rounds.NewMeter()
	}
	return ExecMeter(ctx, d, g, p, meter)
}

// ExecMeter is Exec with an explicit meter (which may be nil): the bridge
// that lets the legacy facade keep its accumulate-into-caller's-Meter
// semantics while routing defaults and validation through Params.
func ExecMeter(ctx context.Context, d Decomposer, g *graph.Graph, p Params, meter *rounds.Meter) (*Outcome, error) {
	p = p.Normalized()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	opts := &RunOptions{Seed: p.Seed, Meter: meter, Nodes: p.Nodes}
	out := &Outcome{Params: p}
	switch p.Kind {
	case KindCarve:
		c, err := d.Carve(ctx, g, p.Eps, opts)
		if err != nil {
			return nil, err
		}
		out.Carving = c
	case KindDecompose:
		dec, err := d.Decompose(ctx, g, opts)
		if err != nil {
			return nil, err
		}
		out.Decomposition = dec
	}
	if meter != nil {
		out.Rounds = meter.Rounds()
	}
	return out, nil
}

// AdaptDecomposer lifts a Decomposer to the canonical Runner interface —
// what the serving layer uses for direct registry dispatch when no Engine
// backend is configured.
func AdaptDecomposer(d Decomposer) Runner { return decomposerRunner{d} }

type decomposerRunner struct{ d Decomposer }

func (r decomposerRunner) Run(ctx context.Context, g *graph.Graph, p Params) (*Outcome, error) {
	return Exec(ctx, r.d, g, p)
}
