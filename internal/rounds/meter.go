// Package rounds provides the distributed cost model used by the graph-level
// implementations of the paper's algorithms.
//
// Algorithms in this repository execute at graph level (for laptop-scale
// speed) but charge every distributed step to a Meter with the number of
// CONGEST rounds the step's message-passing implementation uses. The charge
// schedule for each primitive is validated against real executions on the
// message-passing engine in internal/congest (experiment E8 in DESIGN.md).
//
// A nil *Meter is valid and ignores all charges, so metering is optional for
// callers that only want the combinatorial output.
package rounds

import (
	"fmt"
	"sort"
	"strings"
)

// Meter accumulates simulated CONGEST round and message costs, broken down
// into named components so experiments can reproduce the per-term round
// complexity expressions of the paper (e.g. the three terms of Theorem 2.1).
type Meter struct {
	rounds     int64
	messages   int64
	components map[string]int64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{components: make(map[string]int64)}
}

// Charge adds r rounds under the given component label. Negative charges are
// ignored; charging a nil meter is a no-op.
func (m *Meter) Charge(component string, r int64) {
	if m == nil || r <= 0 {
		return
	}
	m.rounds += r
	m.components[component] += r
}

// ChargeParallel adds the maximum of rs under the given label. It models
// independent executions that run simultaneously in disjoint parts of the
// network (e.g. per-component recursions): parallel branches cost the
// slowest branch, not the sum.
func (m *Meter) ChargeParallel(component string, rs ...int64) {
	if m == nil {
		return
	}
	var max int64
	for _, r := range rs {
		if r > max {
			max = r
		}
	}
	m.Charge(component, max)
}

// ChargeMessages adds k messages to the message counter.
func (m *Meter) ChargeMessages(k int64) {
	if m == nil || k <= 0 {
		return
	}
	m.messages += k
}

// Rounds returns the total charged rounds.
func (m *Meter) Rounds() int64 {
	if m == nil {
		return 0
	}
	return m.rounds
}

// Messages returns the total charged messages.
func (m *Meter) Messages() int64 {
	if m == nil {
		return 0
	}
	return m.messages
}

// Component returns the rounds charged under a specific label.
func (m *Meter) Component(label string) int64 {
	if m == nil {
		return 0
	}
	return m.components[label]
}

// Components returns a copy of the per-label round breakdown.
func (m *Meter) Components() map[string]int64 {
	if m == nil {
		return nil
	}
	out := make(map[string]int64, len(m.components))
	for k, v := range m.components {
		out[k] = v
	}
	return out
}

// Merge adds all of other's charges into m sequentially (rounds add up).
func (m *Meter) Merge(other *Meter) {
	if m == nil || other == nil {
		return
	}
	m.rounds += other.rounds
	m.messages += other.messages
	for k, v := range other.components {
		m.components[k] += v
	}
}

// MergeParallel folds other into m as a parallel branch: component-wise and
// total rounds become the maximum of the two meters, messages add up.
func (m *Meter) MergeParallel(other *Meter) {
	if m == nil || other == nil {
		return
	}
	if other.rounds > m.rounds {
		m.rounds = other.rounds
	}
	m.messages += other.messages
	for k, v := range other.components {
		if v > m.components[k] {
			m.components[k] = v
		}
	}
}

// String renders the meter as a single human-readable line.
func (m *Meter) String() string {
	if m == nil {
		return "rounds=0"
	}
	labels := make([]string, 0, len(m.components))
	for k := range m.components {
		labels = append(labels, k)
	}
	sort.Strings(labels)
	var b strings.Builder
	fmt.Fprintf(&b, "rounds=%d messages=%d", m.rounds, m.messages)
	for _, k := range labels {
		fmt.Fprintf(&b, " %s=%d", k, m.components[k])
	}
	return b.String()
}
