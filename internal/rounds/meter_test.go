package rounds

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNilMeterIsSafe(t *testing.T) {
	var m *Meter
	m.Charge("x", 10)
	m.ChargeParallel("y", 1, 2, 3)
	m.ChargeMessages(5)
	m.Merge(NewMeter())
	m.MergeParallel(NewMeter())
	if m.Rounds() != 0 || m.Messages() != 0 || m.Component("x") != 0 {
		t.Fatalf("nil meter accumulated state")
	}
	if m.Components() != nil {
		t.Fatalf("nil meter returned components")
	}
	if got := m.String(); got != "rounds=0" {
		t.Fatalf("nil meter String = %q", got)
	}
}

func TestChargeAccumulates(t *testing.T) {
	m := NewMeter()
	m.Charge("bfs", 5)
	m.Charge("bfs", 7)
	m.Charge("agg", 3)
	if got := m.Rounds(); got != 15 {
		t.Fatalf("Rounds = %d, want 15", got)
	}
	if got := m.Component("bfs"); got != 12 {
		t.Fatalf("Component(bfs) = %d, want 12", got)
	}
	if got := m.Component("agg"); got != 3 {
		t.Fatalf("Component(agg) = %d, want 3", got)
	}
	if got := m.Component("missing"); got != 0 {
		t.Fatalf("Component(missing) = %d, want 0", got)
	}
}

func TestNegativeAndZeroChargesIgnored(t *testing.T) {
	m := NewMeter()
	m.Charge("x", 0)
	m.Charge("x", -5)
	m.ChargeMessages(-1)
	if m.Rounds() != 0 || m.Messages() != 0 {
		t.Fatalf("negative/zero charges counted: %s", m)
	}
}

func TestChargeParallelTakesMax(t *testing.T) {
	m := NewMeter()
	m.ChargeParallel("comp", 3, 9, 5)
	if got := m.Rounds(); got != 9 {
		t.Fatalf("Rounds = %d, want 9", got)
	}
	m.ChargeParallel("comp") // no branches: no charge
	if got := m.Rounds(); got != 9 {
		t.Fatalf("Rounds after empty parallel = %d, want 9", got)
	}
}

func TestMergeSequential(t *testing.T) {
	a, b := NewMeter(), NewMeter()
	a.Charge("x", 4)
	a.ChargeMessages(10)
	b.Charge("x", 6)
	b.Charge("y", 1)
	b.ChargeMessages(5)
	a.Merge(b)
	if a.Rounds() != 11 || a.Messages() != 15 {
		t.Fatalf("merged meter %s", a)
	}
	if a.Component("x") != 10 || a.Component("y") != 1 {
		t.Fatalf("merged components %v", a.Components())
	}
}

func TestMergeParallel(t *testing.T) {
	a, b := NewMeter(), NewMeter()
	a.Charge("x", 4)
	b.Charge("x", 9)
	b.Charge("y", 2)
	a.ChargeMessages(3)
	b.ChargeMessages(4)
	a.MergeParallel(b)
	// b charged 9 + 2 = 11 rounds in total; the parallel fold takes the
	// slower branch.
	if a.Rounds() != 11 {
		t.Fatalf("parallel rounds = %d, want 11", a.Rounds())
	}
	if a.Messages() != 7 {
		t.Fatalf("parallel messages = %d, want 7 (messages add up)", a.Messages())
	}
	if a.Component("x") != 9 || a.Component("y") != 2 {
		t.Fatalf("parallel components %v", a.Components())
	}
}

func TestComponentsReturnsCopy(t *testing.T) {
	m := NewMeter()
	m.Charge("x", 1)
	c := m.Components()
	c["x"] = 999
	if m.Component("x") != 1 {
		t.Fatalf("Components leaked internal map")
	}
}

func TestStringListsComponentsSorted(t *testing.T) {
	m := NewMeter()
	m.Charge("zeta", 1)
	m.Charge("alpha", 2)
	s := m.String()
	if !strings.Contains(s, "alpha=2") || !strings.Contains(s, "zeta=1") {
		t.Fatalf("String missing components: %q", s)
	}
	if strings.Index(s, "alpha") > strings.Index(s, "zeta") {
		t.Fatalf("String components unsorted: %q", s)
	}
}

func TestPropertyMergeMatchesSumOfCharges(t *testing.T) {
	f := func(charges []uint16) bool {
		a, b := NewMeter(), NewMeter()
		var want int64
		for i, c := range charges {
			r := int64(c%1000) + 1
			want += r
			if i%2 == 0 {
				a.Charge("even", r)
			} else {
				b.Charge("odd", r)
			}
		}
		a.Merge(b)
		return a.Rounds() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyParallelMergeIsMonotone(t *testing.T) {
	f := func(x, y uint16) bool {
		a, b := NewMeter(), NewMeter()
		a.Charge("c", int64(x)+1)
		b.Charge("c", int64(y)+1)
		before := a.Rounds()
		a.MergeParallel(b)
		return a.Rounds() >= before && a.Rounds() >= b.Rounds()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
