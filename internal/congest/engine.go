// Package congest provides a synchronous message-passing simulator for the
// CONGEST model of Section 1.1 of the paper, together with faithful
// implementations of the distributed primitives that the graph-level cost
// model (internal/rounds) charges for. Experiment E8 reconciles the two.
//
// The network is an undirected graph; computation proceeds in synchronous
// rounds; per round each node may send one B-bit message to each neighbor.
// The engine enforces the bandwidth bound, counts rounds and message bits,
// executes node programs concurrently on worker goroutines (nodes only touch
// their own state, and delivery order is canonicalized, so executions are
// deterministic), and fast-forwards through quiescent rounds so that
// protocols with long silent stretches still simulate cheaply.
package congest

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"strongdecomp/internal/graph"
)

// Payload is the content of a message; Bits reports its encoded size, which
// the engine checks against the bandwidth bound B.
type Payload interface {
	Bits() int
}

// Message is a payload in transit between two adjacent nodes.
type Message struct {
	From, To int
	Payload  Payload
}

// Config controls a simulation run.
type Config struct {
	// B is the per-message bandwidth bound in bits. Zero selects
	// DefaultBandwidth(n).
	B int
	// MaxRounds aborts runaway protocols. Zero selects 64·n + 64.
	MaxRounds int
}

// DefaultBandwidth is the standard CONGEST budget of Θ(log n) bits.
func DefaultBandwidth(n int) int {
	return 4*log2ceil(n) + 16
}

// Metrics summarizes a finished run.
type Metrics struct {
	Rounds         int   // logical rounds elapsed (including skipped ones)
	ActiveRounds   int   // rounds in which some node executed
	Messages       int64 // messages delivered
	TotalBits      int64
	MaxMessageBits int
}

// Program is a node's state machine. Init runs once at round 0; OnRound runs
// whenever the node is active (has inbound messages or a due alarm). All
// interaction with the network goes through the Context.
type Program interface {
	Init(ctx *Context)
	OnRound(ctx *Context, inbox []Message)
}

// Context is the per-node API surface during Init/OnRound calls.
type Context struct {
	id    int
	round int
	g     *graph.Graph
	cfg   Config

	sends   []Message
	sentTo  map[int]bool
	alarm   int // -1: none
	halted  bool
	err     error
	metrics localMetrics
}

type localMetrics struct {
	messages int64
	bits     int64
	maxBits  int
}

// ID returns this node's identifier.
func (c *Context) ID() int { return c.id }

// Round returns the current round number.
func (c *Context) Round() int { return c.round }

// Neighbors returns the node's neighbor list (shared; do not modify).
func (c *Context) Neighbors() []int { return c.g.Neighbors(c.id) }

// Degree returns the node's degree.
func (c *Context) Degree() int { return c.g.Degree(c.id) }

// Send queues a message to a neighbor for delivery next round. It fails if
// the target is not a neighbor, the payload exceeds the bandwidth bound, or
// a message was already sent to that neighbor this round.
func (c *Context) Send(to int, p Payload) {
	if c.err != nil {
		return
	}
	if !c.g.HasEdge(c.id, to) {
		c.err = fmt.Errorf("congest: node %d sent to non-neighbor %d", c.id, to)
		return
	}
	if bits := p.Bits(); bits > c.cfg.B {
		c.err = fmt.Errorf("congest: node %d message of %d bits exceeds B=%d", c.id, bits, c.cfg.B)
		return
	}
	if c.sentTo[to] {
		c.err = fmt.Errorf("congest: node %d sent twice to %d in round %d", c.id, to, c.round)
		return
	}
	c.sentTo[to] = true
	c.sends = append(c.sends, Message{From: c.id, To: to, Payload: p})
	c.metrics.messages++
	b := p.Bits()
	c.metrics.bits += int64(b)
	if b > c.metrics.maxBits {
		c.metrics.maxBits = b
	}
}

// Broadcast sends the payload to every neighbor.
func (c *Context) Broadcast(p Payload) {
	for _, w := range c.Neighbors() {
		c.Send(w, p)
	}
}

// SetAlarm schedules OnRound at the given absolute round even if no message
// arrives. Earlier alarms win; past rounds are ignored.
func (c *Context) SetAlarm(round int) {
	if round <= c.round {
		return
	}
	if c.alarm == -1 || round < c.alarm {
		c.alarm = round
	}
}

// Halt permanently deactivates the node; it receives no further OnRound
// calls (in-flight messages to it are still counted but dropped).
func (c *Context) Halt() { c.halted = true }

// Run simulates programs on g until quiescence (no messages in flight, no
// alarms pending) or cfg.MaxRounds, whichever comes first. programs[v] is
// node v's program; len(programs) must equal g.N().
func Run(g *graph.Graph, programs []Program, cfg Config) (*Metrics, error) {
	n := g.N()
	if len(programs) != n {
		return nil, fmt.Errorf("congest: %d programs for %d nodes", len(programs), n)
	}
	if cfg.B == 0 {
		cfg.B = DefaultBandwidth(n)
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 64*n + 64
	}
	ctxs := make([]*Context, n)
	for v := 0; v < n; v++ {
		ctxs[v] = &Context{id: v, g: g, cfg: cfg, alarm: -1, sentTo: make(map[int]bool)}
	}

	met := &Metrics{}
	// Round 0: Init everywhere.
	runParallel(n, func(v int) {
		ctxs[v].round = 0
		programs[v].Init(ctxs[v])
	})
	if err := firstError(ctxs); err != nil {
		return nil, err
	}
	met.ActiveRounds++
	inboxes := collectSends(ctxs, n)

	round := 0
	for {
		// Decide the next round with activity.
		next := -1
		if len(inboxes) > 0 {
			next = round + 1
		}
		for _, c := range ctxs {
			if c.halted || c.alarm == -1 {
				continue
			}
			if next == -1 || c.alarm < next {
				next = c.alarm
			}
		}
		if next == -1 {
			break // quiescent: protocol finished
		}
		if next > cfg.MaxRounds {
			return nil, fmt.Errorf("congest: exceeded MaxRounds=%d", cfg.MaxRounds)
		}
		round = next

		active := make([]int, 0, len(inboxes))
		seen := make(map[int]bool, len(inboxes))
		for v := range inboxes {
			if !ctxs[v].halted {
				active = append(active, v)
				seen[v] = true
			}
		}
		for v, c := range ctxs {
			if !c.halted && c.alarm == round && !seen[v] {
				active = append(active, v)
			}
		}
		sort.Ints(active)

		cur := inboxes
		runParallel(len(active), func(i int) {
			v := active[i]
			c := ctxs[v]
			c.round = round
			if c.alarm == round {
				c.alarm = -1
			}
			inbox := cur[v]
			sort.Slice(inbox, func(a, b int) bool { return inbox[a].From < inbox[b].From })
			programs[v].OnRound(c, inbox)
		})
		if err := firstError(ctxs); err != nil {
			return nil, err
		}
		met.ActiveRounds++
		inboxes = collectSends(ctxs, n)
	}

	met.Rounds = round + 1
	for _, c := range ctxs {
		met.Messages += c.metrics.messages
		met.TotalBits += c.metrics.bits
		if c.metrics.maxBits > met.MaxMessageBits {
			met.MaxMessageBits = c.metrics.maxBits
		}
	}
	return met, nil
}

// collectSends drains per-node outboxes into per-recipient inboxes and
// resets the per-round send state.
func collectSends(ctxs []*Context, n int) map[int][]Message {
	inboxes := make(map[int][]Message)
	for v := 0; v < n; v++ {
		c := ctxs[v]
		for _, msg := range c.sends {
			inboxes[msg.To] = append(inboxes[msg.To], msg)
		}
		c.sends = c.sends[:0]
		for k := range c.sentTo {
			delete(c.sentTo, k)
		}
	}
	return inboxes
}

func firstError(ctxs []*Context) error {
	var errs []error
	for _, c := range ctxs {
		if c.err != nil {
			errs = append(errs, c.err)
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return errors.Join(errs...)
}

// runParallel executes fn(0..n-1) across worker goroutines and waits.
func runParallel(n int, fn func(int)) {
	if n == 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

func log2ceil(n int) int {
	if n <= 1 {
		return 1
	}
	b := 1
	for 1<<b < n {
		b++
	}
	return b
}
