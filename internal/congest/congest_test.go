package congest

import (
	"math/rand"
	"strings"
	"testing"

	"strongdecomp/internal/graph"
)

func TestRunRejectsProgramCountMismatch(t *testing.T) {
	g := graph.Path(3)
	if _, err := Run(g, make([]Program, 2), Config{}); err == nil {
		t.Fatal("mismatched program count accepted")
	}
}

func TestBFSMatchesGraphLevel(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"path":  graph.Path(40),
		"grid":  graph.Grid(8, 8),
		"gnp":   graph.ConnectedGnp(80, 0.05, 3),
		"tree":  graph.BinaryTree(63),
		"cycle": graph.Cycle(30),
	} {
		t.Run(name, func(t *testing.T) {
			dist, parent, met, err := RunBFS(g, 0, Config{})
			if err != nil {
				t.Fatal(err)
			}
			wantDist := make([]int, g.N())
			graph.BFS(g, nil, []int{0}, wantDist)
			ecc := 0
			for v := range wantDist {
				if dist[v] != wantDist[v] {
					t.Fatalf("dist[%d] = %d, want %d", v, dist[v], wantDist[v])
				}
				if wantDist[v] > ecc {
					ecc = wantDist[v]
				}
				if v != 0 && parent[v] >= 0 {
					if !g.HasEdge(v, parent[v]) || wantDist[parent[v]]+1 != wantDist[v] {
						t.Fatalf("bad parent %d for %d", parent[v], v)
					}
				}
			}
			// E8 reconciliation: the protocol finishes within ecc + 2
			// rounds, matching the cost model's "BFS to depth d costs
			// d + O(1) rounds".
			if met.Rounds < ecc || met.Rounds > ecc+2 {
				t.Fatalf("BFS rounds %d vs eccentricity %d", met.Rounds, ecc)
			}
			if met.MaxMessageBits > DefaultBandwidth(g.N()) {
				t.Fatalf("message of %d bits exceeded budget", met.MaxMessageBits)
			}
		})
	}
}

func TestMinIDElectsZero(t *testing.T) {
	g := graph.ConnectedGnp(60, 0.06, 5)
	mins, met, err := RunMinID(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for v, m := range mins {
		if m != 0 {
			t.Fatalf("node %d learned min %d", v, m)
		}
	}
	if met.Messages == 0 {
		t.Fatal("no messages exchanged")
	}
}

func TestTreeCountCountsAllNodes(t *testing.T) {
	g := graph.Grid(7, 7)
	_, parent, _, err := RunBFS(g, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	total, met, err := RunTreeCount(g, parent, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if total != g.N() {
		t.Fatalf("counted %d of %d nodes", total, g.N())
	}
	// Convergecast finishes within ~2x tree depth.
	dist := make([]int, g.N())
	graph.BFS(g, nil, []int{0}, dist)
	depth := 0
	for _, d := range dist {
		if d > depth {
			depth = d
		}
	}
	if met.Rounds > 2*depth+3 {
		t.Fatalf("count rounds %d vs depth %d", met.Rounds, depth)
	}
}

func TestTreeCountSingleton(t *testing.T) {
	g := graph.Path(1)
	total, _, err := RunTreeCount(g, []int{-1}, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if total != 1 {
		t.Fatalf("singleton count %d", total)
	}
}

// --- failure injection ---------------------------------------------------

type badSender struct{ target int }

func (b *badSender) Init(ctx *Context) {
	ctx.Send(b.target, idPayload{id: 0, idBits: 4})
}
func (b *badSender) OnRound(*Context, []Message) {}

type inert struct{}

func (inert) Init(*Context)               {}
func (inert) OnRound(*Context, []Message) {}

func TestSendToNonNeighborFails(t *testing.T) {
	g := graph.Path(3) // 0-1-2: 0 and 2 not adjacent
	ps := []Program{&badSender{target: 2}, inert{}, inert{}}
	_, err := Run(g, ps, Config{})
	if err == nil || !strings.Contains(err.Error(), "non-neighbor") {
		t.Fatalf("err = %v", err)
	}
}

type oversized struct{}

type hugePayload struct{}

func (hugePayload) Bits() int { return 1 << 20 }

func (oversized) Init(ctx *Context) {
	if ctx.ID() == 0 {
		ctx.Send(1, hugePayload{})
	}
}
func (oversized) OnRound(*Context, []Message) {}

func TestOversizedMessageFails(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(g, []Program{oversized{}, oversized{}}, Config{})
	if err == nil || !strings.Contains(err.Error(), "exceeds B") {
		t.Fatalf("err = %v", err)
	}
}

type doubleSender struct{}

func (doubleSender) Init(ctx *Context) {
	if ctx.ID() == 0 {
		ctx.Send(1, idPayload{id: 1, idBits: 4})
		ctx.Send(1, idPayload{id: 2, idBits: 4})
	}
}
func (doubleSender) OnRound(*Context, []Message) {}

func TestDoubleSendFails(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(g, []Program{doubleSender{}, doubleSender{}}, Config{})
	if err == nil || !strings.Contains(err.Error(), "sent twice") {
		t.Fatalf("err = %v", err)
	}
}

type babbler struct{}

func (babbler) Init(ctx *Context)                 { ctx.SetAlarm(1) }
func (babbler) OnRound(ctx *Context, _ []Message) { ctx.SetAlarm(ctx.Round() + 1) }

func TestMaxRoundsAborts(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(g, []Program{babbler{}, babbler{}}, Config{MaxRounds: 10})
	if err == nil || !strings.Contains(err.Error(), "MaxRounds") {
		t.Fatalf("err = %v", err)
	}
}

// --- alarms and fast-forward ----------------------------------------------

type lateStarter struct {
	fired int
}

func (l *lateStarter) Init(ctx *Context) { ctx.SetAlarm(1000) }
func (l *lateStarter) OnRound(ctx *Context, _ []Message) {
	l.fired = ctx.Round()
	ctx.Halt()
}

func TestFastForwardSkipsQuietRounds(t *testing.T) {
	g := graph.Path(2)
	ps := []Program{&lateStarter{}, &lateStarter{}}
	met, err := Run(g, ps, Config{MaxRounds: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if ps[0].(*lateStarter).fired != 1000 {
		t.Fatalf("alarm fired at %d", ps[0].(*lateStarter).fired)
	}
	if met.Rounds != 1001 {
		t.Fatalf("logical rounds %d, want 1001", met.Rounds)
	}
	// Only two active rounds (init + alarm): the engine must not have
	// simulated the 999 silent rounds.
	if met.ActiveRounds > 3 {
		t.Fatalf("simulated %d active rounds", met.ActiveRounds)
	}
}

// --- MPX race --------------------------------------------------------------

func TestRaceMatchesReferenceImplementation(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"grid": graph.Grid(9, 9),
		"gnp":  graph.ConnectedGnp(90, 0.05, 11),
		"path": graph.Path(60),
	} {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			shifts := GeometricShifts(g.N(), 0.25, 4*log2ceil(g.N()), rng)
			got, met, err := RunRace(g, shifts, Config{})
			if err != nil {
				t.Fatal(err)
			}
			want := ReferenceRace(g, shifts)
			for v := range got {
				if got[v].Source != want[v].Source || got[v].Arrival != want[v].Arrival {
					t.Fatalf("node %d: protocol (%d,%d) vs reference (%d,%d)",
						v, got[v].Source, got[v].Arrival, want[v].Source, want[v].Arrival)
				}
				if got[v].Second != want[v].Second || got[v].SecSrc != want[v].SecSrc {
					t.Fatalf("node %d runner-up mismatch: (%d,%d) vs (%d,%d)",
						v, got[v].SecSrc, got[v].Second, want[v].SecSrc, want[v].Second)
				}
			}
			if met.MaxMessageBits > DefaultBandwidth(g.N()) {
				t.Fatalf("race message too large: %d bits", met.MaxMessageBits)
			}
		})
	}
}

func TestRaceEveryNodeClustered(t *testing.T) {
	g := graph.Grid(6, 6)
	rng := rand.New(rand.NewSource(13))
	shifts := GeometricShifts(g.N(), 0.3, 20, rng)
	res, _, err := RunRace(g, shifts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range res {
		if r.Source == -1 {
			t.Fatalf("node %d never reached", v)
		}
	}
}

func TestGeometricShiftsBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shifts := GeometricShifts(1000, 0.5, 7, rng)
	for _, s := range shifts {
		if s < 0 || s > 7 {
			t.Fatalf("shift %d out of range", s)
		}
	}
}

func TestDefaultBandwidthLogarithmic(t *testing.T) {
	if DefaultBandwidth(1<<16) >= 200 {
		t.Fatalf("bandwidth too large: %d", DefaultBandwidth(1<<16))
	}
	if DefaultBandwidth(4) < 8 {
		t.Fatalf("bandwidth too small: %d", DefaultBandwidth(4))
	}
}
