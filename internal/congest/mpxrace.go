package congest

import (
	"math/rand"

	"strongdecomp/internal/graph"
)

// This file implements the MPX shifted-start clustering race as a real
// message-passing protocol: every node u starts its own BFS front at round
// maxShift − shift_u and nodes adopt the earliest-arriving front
// (ties by smaller source id). Each node keeps and forwards its best two
// distinct-source arrivals, which is exactly the information the corridor
// rule of internal/mpx needs, so the graph-level and message-level
// implementations can be reconciled token for token (experiment E8).

// raceToken announces up to two fronts adopted in the same round, packed
// into one message to respect the one-message-per-edge-per-round rule while
// staying within O(log n) bits. Tokens beyond the best two of a round are
// dominated downstream and are legitimately dropped.
type raceToken struct {
	sources [2]int // second entry -1 if absent
	idBits  int
}

func (t raceToken) Bits() int { return 2*t.idBits + 2 }

// RaceResult is one node's outcome of the race.
type RaceResult struct {
	Source  int // winning source (-1 if never reached)
	Arrival int // arrival round of the winner
	Second  int // best distinct-source runner-up arrival (-1 if none)
	SecSrc  int
}

// RaceProgram runs the shifted BFS race at one node.
type RaceProgram struct {
	Shift    int // integer shift of this node
	MaxShift int
	N        int

	res       RaceResult
	started   bool
	forwarded map[int]bool // sources already forwarded
}

var _ Program = (*RaceProgram)(nil)

// NewRacePrograms builds the per-node programs from integer shifts.
func NewRacePrograms(g *graph.Graph, shifts []int) []Program {
	maxShift := 0
	for _, s := range shifts {
		if s > maxShift {
			maxShift = s
		}
	}
	ps := make([]Program, g.N())
	for v := 0; v < g.N(); v++ {
		ps[v] = &RaceProgram{
			Shift:     shifts[v],
			MaxShift:  maxShift,
			N:         g.N(),
			res:       RaceResult{Source: -1, Arrival: -1, Second: -1, SecSrc: -1},
			forwarded: make(map[int]bool),
		}
	}
	return ps
}

// Init schedules the node's own start.
func (p *RaceProgram) Init(ctx *Context) {
	start := p.MaxShift - p.Shift
	if start == 0 {
		p.adopt(ctx.ID(), 0)
		p.started = true
		p.flush(ctx)
	} else {
		ctx.SetAlarm(start)
	}
}

// OnRound handles the delayed self-start and incoming fronts, then forwards
// the round's surviving adoptions as a single packed message.
func (p *RaceProgram) OnRound(ctx *Context, inbox []Message) {
	if !p.started && ctx.Round() == p.MaxShift-p.Shift {
		p.adopt(ctx.ID(), ctx.Round())
		p.started = true
	}
	for _, msg := range inbox {
		tok := msg.Payload.(raceToken)
		for _, src := range tok.sources {
			if src >= 0 {
				p.adopt(src, ctx.Round())
			}
		}
	}
	p.flush(ctx)
}

// adopt updates the best-two arrivals (no sends; flush forwards survivors).
func (p *RaceProgram) adopt(source, round int) {
	switch {
	case p.res.Source == -1:
		p.res.Source, p.res.Arrival = source, round
	case source == p.res.Source || source == p.res.SecSrc:
		// stale duplicate
	case round < p.res.Arrival || (round == p.res.Arrival && source < p.res.Source):
		p.res.Second, p.res.SecSrc = p.res.Arrival, p.res.Source
		p.res.Source, p.res.Arrival = source, round
	case p.res.Second == -1 || round < p.res.Second || (round == p.res.Second && source < p.res.SecSrc):
		p.res.Second, p.res.SecSrc = round, source
	}
}

// flush broadcasts the slot-holders that have not been forwarded yet: at
// most two per round, packed into one message. A source adopted but
// displaced within the same round is dominated downstream by the two
// forwarded slot-holders, so dropping it preserves every node's best-two.
func (p *RaceProgram) flush(ctx *Context) {
	tok := raceToken{sources: [2]int{-1, -1}, idBits: log2ceil(p.N)}
	i := 0
	for _, src := range []int{p.res.Source, p.res.SecSrc} {
		if src >= 0 && !p.forwarded[src] {
			p.forwarded[src] = true
			tok.sources[i] = src
			i++
		}
	}
	if i > 0 {
		ctx.Broadcast(tok)
	}
}

// RunRace executes the race and returns per-node results.
func RunRace(g *graph.Graph, shifts []int, cfg Config) ([]RaceResult, *Metrics, error) {
	ps := NewRacePrograms(g, shifts)
	met, err := Run(g, ps, cfg)
	if err != nil {
		return nil, nil, err
	}
	out := make([]RaceResult, g.N())
	for v, p := range ps {
		out[v] = p.(*RaceProgram).res
	}
	return out, met, nil
}

// GeometricShifts samples integer shifts Geom(p) truncated at cap, the
// integerized analogue of the exponential shifts of internal/mpx.
func GeometricShifts(n int, p float64, cap int, rng *rand.Rand) []int {
	shifts := make([]int, n)
	for i := range shifts {
		s := 0
		for s < cap && rng.Float64() >= p {
			s++
		}
		shifts[i] = s
	}
	return shifts
}

// ReferenceRace computes the same best-two race at graph level (multi-source
// BFS with start offsets), used to validate the protocol: returns per-node
// (winning source, arrival round).
func ReferenceRace(g *graph.Graph, shifts []int) []RaceResult {
	n := g.N()
	maxShift := 0
	for _, s := range shifts {
		if s > maxShift {
			maxShift = s
		}
	}
	res := make([]RaceResult, n)
	for v := range res {
		res[v] = RaceResult{Source: -1, Arrival: -1, Second: -1, SecSrc: -1}
	}
	// Round-synchronous relaxation, mirroring the protocol exactly.
	type ev struct{ node, source int }
	frontier := make(map[int][]ev)
	for v := 0; v < n; v++ {
		frontier[maxShift-shifts[v]] = append(frontier[maxShift-shifts[v]], ev{node: v, source: v})
	}
	for round := 0; len(frontier) > 0; round++ {
		evs, ok := frontier[round]
		if !ok {
			delete(frontier, round)
			continue
		}
		delete(frontier, round)
		// Deterministic processing order: by (source, node).
		for i := 1; i < len(evs); i++ {
			for j := i; j > 0 && (evs[j].source < evs[j-1].source ||
				(evs[j].source == evs[j-1].source && evs[j].node < evs[j-1].node)); j-- {
				evs[j], evs[j-1] = evs[j-1], evs[j]
			}
		}
		for _, e := range evs {
			r := &res[e.node]
			switch {
			case r.Source == -1:
				r.Source, r.Arrival = e.source, round
			case e.source == r.Source || e.source == r.SecSrc:
				continue
			case round < r.Arrival || (round == r.Arrival && e.source < r.Source):
				r.Second, r.SecSrc = r.Arrival, r.Source
				r.Source, r.Arrival = e.source, round
			case r.Second == -1 || round < r.Second || (round == r.Second && e.source < r.SecSrc):
				r.Second, r.SecSrc = round, e.source
			default:
				continue
			}
			for _, w := range g.Neighbors(e.node) {
				frontier[round+1] = append(frontier[round+1], ev{node: w, source: e.source})
			}
		}
	}
	return res
}
