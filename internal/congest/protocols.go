package congest

import (
	"strongdecomp/internal/graph"
)

// This file implements the primitive protocols that the graph-level cost
// model charges for: BFS tree construction, min-id flooding (leader
// election), and tree convergecast (subtree counting). Each is written as a
// plain Program so tests can reconcile its measured round count with the
// model's charge (experiment E8 in DESIGN.md).

// idPayload is a single node identifier: the workhorse O(log n)-bit message.
type idPayload struct {
	id     int
	idBits int
}

func (p idPayload) Bits() int { return p.idBits + 2 }

// --- BFS ---------------------------------------------------------------

// BFSProgram builds a BFS tree from a designated source. After Run, Dist
// and Parent hold the result for this node (-1 when unreached).
type BFSProgram struct {
	Src    int
	N      int
	Dist   int
	Parent int

	visited bool
}

var _ Program = (*BFSProgram)(nil)

// NewBFSPrograms allocates one BFS program per node of g.
func NewBFSPrograms(g *graph.Graph, src int) []Program {
	ps := make([]Program, g.N())
	for v := 0; v < g.N(); v++ {
		ps[v] = &BFSProgram{Src: src, N: g.N(), Dist: -1, Parent: -1}
	}
	return ps
}

// Init starts the flood at the source.
func (b *BFSProgram) Init(ctx *Context) {
	if ctx.ID() == b.Src {
		b.visited = true
		b.Dist = 0
		ctx.Broadcast(idPayload{id: ctx.ID(), idBits: log2ceil(b.N)})
	}
}

// OnRound adopts the first token received and forwards it once.
func (b *BFSProgram) OnRound(ctx *Context, inbox []Message) {
	if b.visited || len(inbox) == 0 {
		return
	}
	b.visited = true
	b.Dist = ctx.Round()
	b.Parent = inbox[0].From // inbox sorted by sender id: deterministic
	ctx.Broadcast(idPayload{id: ctx.ID(), idBits: log2ceil(b.N)})
	ctx.Halt()
}

// RunBFS executes the BFS protocol and returns (dist, parent, metrics).
func RunBFS(g *graph.Graph, src int, cfg Config) ([]int, []int, *Metrics, error) {
	ps := NewBFSPrograms(g, src)
	met, err := Run(g, ps, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	dist := make([]int, g.N())
	parent := make([]int, g.N())
	for v, p := range ps {
		bp := p.(*BFSProgram)
		dist[v], parent[v] = bp.Dist, bp.Parent
	}
	return dist, parent, met, nil
}

// --- Min-id flooding (leader election) ----------------------------------

// MinIDProgram floods the minimum identifier; on a connected graph every
// node learns the global minimum within diameter rounds, electing a leader
// with O(log n)-bit messages.
type MinIDProgram struct {
	N   int
	Min int
}

var _ Program = (*MinIDProgram)(nil)

// NewMinIDPrograms allocates one program per node.
func NewMinIDPrograms(g *graph.Graph) []Program {
	ps := make([]Program, g.N())
	for v := 0; v < g.N(); v++ {
		ps[v] = &MinIDProgram{N: g.N(), Min: v}
	}
	return ps
}

// Init announces the node's own id.
func (p *MinIDProgram) Init(ctx *Context) {
	p.Min = ctx.ID()
	ctx.Broadcast(idPayload{id: p.Min, idBits: log2ceil(p.N)})
}

// OnRound forwards improvements; quiescence is termination.
func (p *MinIDProgram) OnRound(ctx *Context, inbox []Message) {
	improved := false
	for _, msg := range inbox {
		if id := msg.Payload.(idPayload).id; id < p.Min {
			p.Min = id
			improved = true
		}
	}
	if improved {
		ctx.Broadcast(idPayload{id: p.Min, idBits: log2ceil(p.N)})
	}
}

// RunMinID executes leader election and returns each node's learned minimum.
func RunMinID(g *graph.Graph, cfg Config) ([]int, *Metrics, error) {
	ps := NewMinIDPrograms(g)
	met, err := Run(g, ps, cfg)
	if err != nil {
		return nil, nil, err
	}
	mins := make([]int, g.N())
	for v, p := range ps {
		mins[v] = p.(*MinIDProgram).Min
	}
	return mins, met, nil
}

// --- Convergecast (subtree count) ---------------------------------------

// countPayload carries a partial subtree count up a tree edge.
type countPayload struct {
	count   int
	valBits int
}

func (p countPayload) Bits() int { return p.valBits + 2 }

// CountProgram convergecasts the number of nodes in a rooted tree given by
// Parent pointers (computed, e.g., by RunBFS). Leaves report 1; internal
// nodes add children's counts and forward; the root's Total is the answer.
// This is the "gather cluster size over the Steiner tree" primitive of
// Theorem 2.1, whose cost the model charges as depth × congestion.
type CountProgram struct {
	Parent   []int // parent pointer per node (-1 at root / non-tree nodes)
	N        int
	Total    int // valid at the root after Run
	children int
	reported int
	sum      int
	isRoot   bool
}

var _ Program = (*CountProgram)(nil)

// NewCountPrograms builds programs for the tree defined by parent pointers;
// nodes with parent[v] == -1 and no children are inert.
func NewCountPrograms(g *graph.Graph, parent []int, root int) []Program {
	n := g.N()
	childCount := make([]int, n)
	inTree := make([]bool, n)
	inTree[root] = true
	for v := 0; v < n; v++ {
		if p := parent[v]; p >= 0 {
			childCount[p]++
			inTree[v] = true
		}
	}
	ps := make([]Program, n)
	for v := 0; v < n; v++ {
		cp := &CountProgram{Parent: parent, N: n, isRoot: v == root}
		cp.children = childCount[v]
		if !inTree[v] {
			cp.children = -1 // inert
		}
		ps[v] = cp
	}
	return ps
}

// Init lets leaves fire immediately.
func (p *CountProgram) Init(ctx *Context) {
	if p.children == -1 {
		ctx.Halt()
		return
	}
	p.sum = 1
	if p.children == 0 && !p.isRoot {
		ctx.Send(p.Parent[ctx.ID()], countPayload{count: p.sum, valBits: log2ceil(p.N + 1)})
		ctx.Halt()
	}
	if p.children == 0 && p.isRoot {
		p.Total = p.sum
		ctx.Halt()
	}
}

// OnRound accumulates child reports and forwards when complete.
func (p *CountProgram) OnRound(ctx *Context, inbox []Message) {
	for _, msg := range inbox {
		p.sum += msg.Payload.(countPayload).count
		p.reported++
	}
	if p.reported < p.children {
		return
	}
	if p.isRoot {
		p.Total = p.sum
	} else {
		ctx.Send(p.Parent[ctx.ID()], countPayload{count: p.sum, valBits: log2ceil(p.N + 1)})
	}
	ctx.Halt()
}

// RunTreeCount counts the nodes of the tree rooted at root (parent pointers
// as produced by RunBFS) and returns (count, metrics).
func RunTreeCount(g *graph.Graph, parent []int, root int, cfg Config) (int, *Metrics, error) {
	ps := NewCountPrograms(g, parent, root)
	met, err := Run(g, ps, cfg)
	if err != nil {
		return 0, nil, err
	}
	return ps[root].(*CountProgram).Total, met, nil
}
