package bench

import (
	"fmt"
	"math/rand"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/core"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/ls"
	"strongdecomp/internal/rounds"
)

// AblationRow measures the Theorem 2.1 transformation instantiated with a
// particular black-box weak carver. The transformation is carver-agnostic
// ("If the former algorithm is deterministic, so is the latter"), so its
// output diameter tracks the *carver's* Steiner depth R: plugging in the
// randomized Linial–Saks carver (R = O(log n/ε)) yields a randomized strong
// carving with O(log n/ε) diameter, while the deterministic RG20 carver
// (R = O(log³ n/ε)) yields the paper's deterministic Theorem 2.2 bound.
type AblationRow struct {
	Carver     string  `json:"carver"`
	N          int     `json:"n"`
	Eps        float64 `json:"eps"`
	StrongDiam int     `json:"strongDiam"`
	Rounds     int64   `json:"rounds"`
	DeadFrac   float64 `json:"deadFrac"`
	Clusters   int     `json:"clusters"`
}

// AblateWeakCarver runs StrongCarve with each available weak carver on the
// same workload, demonstrating the black-box property of Theorem 2.1.
func AblateWeakCarver(family string, n int, eps float64, seed int64) ([]AblationRow, error) {
	g, err := Workload(family, n, seed)
	if err != nil {
		return nil, err
	}
	carvers := []struct {
		name string
		weak core.WeakCarver
	}{
		{name: "rg20-deterministic", weak: rgCarve},
		{name: "linial-saks-randomized", weak: func(gg *graph.Graph, nodes []int, e float64, m *rounds.Meter) (*cluster.Carving, error) {
			return ls.Carve(gg, nodes, e, rand.New(rand.NewSource(seed)), m)
		}},
	}
	var out []AblationRow
	for _, c := range carvers {
		m := rounds.NewMeter()
		carving, err := core.StrongCarve(g, nil, eps, c.weak, m)
		if err != nil {
			return nil, fmt.Errorf("bench: ablation %s: %w", c.name, err)
		}
		if err := cluster.CheckCarving(g, nil, carving, eps, -1); err != nil {
			return nil, fmt.Errorf("bench: ablation %s invalid: %w", c.name, err)
		}
		out = append(out, AblationRow{
			Carver: c.name, N: n, Eps: eps,
			StrongDiam: cluster.MaxStrongDiameter(g, carving.Members()),
			Rounds:     m.Rounds(),
			DeadFrac:   carving.DeadFraction(nil),
			Clusters:   carving.K,
		})
	}
	return out, nil
}
