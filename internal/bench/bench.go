// Package bench is the experiment harness that regenerates the paper's
// evaluation artifacts — Table 1 (network decomposition), Table 2 (ball
// carving) — and the scaling "figures" implied by the asymptotic claims
// (experiments E1–E7 in DESIGN.md). It is shared by cmd/tables and the
// root-level testing.B benchmarks.
package bench

import (
	"context"
	"fmt"
	"math"
	"strings"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/congest"
	"strongdecomp/internal/core"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/graphio"
	"strongdecomp/internal/registry"
	"strongdecomp/internal/rg"
	"strongdecomp/internal/rounds"
	"strongdecomp/internal/seqcarve"

	// Registered constructions the harness reaches only through the
	// registry; the blank imports trigger their self-registration.
	_ "strongdecomp/internal/ls"
	_ "strongdecomp/internal/mpx"
)

// Row is one measured line of a reproduced table.
type Row struct {
	Table     string  `json:"table"`     // "table1" or "table2"
	Type      string  `json:"type"`      // "weak" or "strong"
	Model     string  `json:"model"`     // "randomized" or "deterministic"
	Algorithm string  `json:"algorithm"` // implementation name
	Reference string  `json:"reference"` // paper citation for the row
	N         int     `json:"n"`
	Eps       float64 `json:"eps,omitempty"`

	Colors     int     `json:"colors,omitempty"`
	StrongDiam int     `json:"strongDiam"` // -1 when a cluster is disconnected
	WeakDiam   int     `json:"weakDiam"`
	Rounds     int64   `json:"rounds"`
	DeadFrac   float64 `json:"deadFrac,omitempty"`
	Clusters   int     `json:"clusters"`

	PaperColors string `json:"paperColors,omitempty"`
	PaperDiam   string `json:"paperDiam"`
	PaperRounds string `json:"paperRounds"`
}

// Workload builds the experiment graph for a family name. The default
// family is "cycle": its Θ(n) diameter keeps the polylogarithmic diameter
// bounds of the algorithms *binding* at laptop-scale n, which is what makes
// the log / log² / log³ hierarchy of the paper's tables visible in the
// measurements. Low-diameter families ("gnp", "grid") are also available;
// on those every polylog algorithm legitimately returns near-whole-graph
// clusters.
//
// A family of the form "file:<path>" — or a bare path with a recognized
// graphio extension — loads a real graph file instead, so the whole table
// harness runs unchanged against external workloads (n and seed are
// ignored for files).
func Workload(family string, n int, seed int64) (*graph.Graph, error) {
	if path, ok := fileFamily(family); ok {
		return graphio.Load(path)
	}
	switch family {
	case "", "cycle":
		return graph.Cycle(n), nil
	case "path":
		return graph.Path(n), nil
	case "gnp":
		return graph.ConnectedGnp(n, 4.0/float64(n), seed), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return graph.Grid(side, side), nil
	case "subdivided":
		return graph.SubdividedExpander(n/32+4, 4, 16, seed), nil
	default:
		return nil, fmt.Errorf("bench: unknown workload family %q", family)
	}
}

// fileFamily reports whether a workload family names a graph file: either
// the explicit "file:<path>" form or a bare path with a recognized graphio
// extension.
func fileFamily(family string) (string, bool) {
	if path, ok := strings.CutPrefix(family, "file:"); ok {
		return path, true
	}
	if _, err := graphio.DetectFormat(family); err == nil {
		return family, true
	}
	return "", false
}

// selected builds the per-name filter for an optional `only` list; nil or
// empty means every registered construction. Unknown names are an error, so
// a typo'd filter cannot silently produce empty tables.
func selected(only []string) (func(string) bool, error) {
	if len(only) == 0 {
		return func(string) bool { return true }, nil
	}
	set := make(map[string]bool, len(only))
	for _, name := range only {
		if _, err := registry.Lookup(name); err != nil {
			return nil, err
		}
		set[name] = true
	}
	return func(name string) bool { return set[name] }, nil
}

// Table1 reproduces every row of the paper's Table 1 (network decomposition
// in the CONGEST model) as a measured experiment on an n-node workload. It
// iterates the algorithm registry, so a newly registered construction gets
// a measured row with no harness edit; the optional `only` list restricts
// the run to the named constructions.
func Table1(family string, n int, seed int64, only ...string) ([]Row, error) {
	g, err := Workload(family, n, seed)
	if err != nil {
		return nil, err
	}
	keep, err := selected(only)
	if err != nil {
		return nil, err
	}
	var out []Row
	for _, info := range registry.Infos() {
		if !keep(info.Name) {
			continue
		}
		dec, err := registry.Lookup(info.Name)
		if err != nil {
			return nil, err
		}
		m := rounds.NewMeter()
		d, err := dec.Decompose(context.Background(), g, &registry.RunOptions{Seed: seed, Meter: m})
		if err != nil {
			return nil, fmt.Errorf("bench: table1 %s: %w", info.Name, err)
		}
		if err := cluster.CheckDecomposition(g, d, -1, false); err != nil {
			return nil, fmt.Errorf("bench: table1 %s invalid: %w", info.Name, err)
		}
		members := d.Members()
		out = append(out, Row{
			Table: "table1", Type: info.Diameter, Model: info.Model,
			Algorithm: info.DisplayName(), Reference: info.DecompRef(),
			N: g.N(), Colors: d.Colors,
			StrongDiam: cluster.MaxStrongDiameter(g, members),
			WeakDiam:   cluster.MaxWeakDiameter(g, members),
			Rounds:     m.Rounds(), Clusters: d.K,
			PaperColors: info.PaperColors, PaperDiam: info.PaperDecompDiam,
			PaperRounds: info.PaperDecompRounds,
		})
	}
	return out, nil
}

// Table2 reproduces the rows of the paper's Table 2 (ball carving) at a
// given boundary parameter eps. Like Table1 it iterates the registry;
// constructions without a calibrated eps-carving bound (empty
// PaperCarveDiam, e.g. the sequential baseline) are skipped.
func Table2(family string, n int, eps float64, seed int64, only ...string) ([]Row, error) {
	g, err := Workload(family, n, seed)
	if err != nil {
		return nil, err
	}
	keep, err := selected(only)
	if err != nil {
		return nil, err
	}
	var out []Row
	for _, info := range registry.Infos() {
		if !keep(info.Name) || info.PaperCarveDiam == "" {
			continue
		}
		dec, err := registry.Lookup(info.Name)
		if err != nil {
			return nil, err
		}
		m := rounds.NewMeter()
		c, err := dec.Carve(context.Background(), g, eps, &registry.RunOptions{Seed: seed, Meter: m})
		if err != nil {
			return nil, fmt.Errorf("bench: table2 %s: %w", info.Name, err)
		}
		if err := cluster.CheckCarving(g, nil, c, eps, -1); err != nil {
			return nil, fmt.Errorf("bench: table2 %s invalid: %w", info.Name, err)
		}
		members := c.Members()
		out = append(out, Row{
			Table: "table2", Type: info.Diameter, Model: info.Model,
			Algorithm: info.DisplayName(), Reference: info.CarveRef(),
			N: g.N(), Eps: eps,
			StrongDiam: cluster.MaxStrongDiameter(g, members),
			WeakDiam:   cluster.MaxWeakDiameter(g, members),
			Rounds:     m.Rounds(), DeadFrac: c.DeadFraction(nil), Clusters: c.K,
			PaperDiam: info.PaperCarveDiam, PaperRounds: info.PaperCarveRounds,
		})
	}
	return out, nil
}

// rgCarve names the deterministic weak carver used across the harness.
func rgCarve(g *graph.Graph, nodes []int, eps float64, m *rounds.Meter) (*cluster.Carving, error) {
	return rg.Carve(g, nodes, eps, m)
}

// EdgeRow is one measured line of the edge-version carving experiment (the
// paper's remark after Table 2).
type EdgeRow struct {
	N           int     `json:"n"`
	Eps         float64 `json:"eps"`
	Clusters    int     `json:"clusters"`
	CutEdges    int     `json:"cutEdges"`
	CutFraction float64 `json:"cutFraction"`
	MaxDiam     int     `json:"maxDiam"` // diameter within the remaining graph
	Rounds      int64   `json:"rounds"`
}

// TableEdge measures the deterministic edge-version strong carving
// (core.CarveEdgesRG) on the workload: cut fraction <= eps with every node
// clustered, reproducing the paper's edge-version remark.
func TableEdge(family string, n int, eps float64, seed int64) (*EdgeRow, error) {
	g, err := Workload(family, n, seed)
	if err != nil {
		return nil, err
	}
	m := rounds.NewMeter()
	ec, err := core.CarveEdgesRG(g, nil, eps, m)
	if err != nil {
		return nil, err
	}
	if err := cluster.CheckEdgeCarving(g, nil, ec.Assign, ec.K, ec.Cut, eps, -1); err != nil {
		return nil, fmt.Errorf("bench: edge carving invalid: %w", err)
	}
	// Diameter within the remaining graph: measure per cluster using the
	// cut-aware oracle by rebuilding the remaining subgraph.
	b := graph.NewBuilder(g.N())
	isCut := make(map[[2]int]bool, len(ec.Cut))
	for _, e := range ec.Cut {
		isCut[e] = true
	}
	for _, e := range g.Edges() {
		if !isCut[e] {
			b.AddEdge(e[0], e[1])
		}
	}
	remaining := b.MustBuild()
	members := make([][]int, ec.K)
	for v, cl := range ec.Assign {
		if cl != cluster.Unclustered {
			members[cl] = append(members[cl], v)
		}
	}
	maxDiam := cluster.MaxStrongDiameter(remaining, members)
	return &EdgeRow{
		N: n, Eps: eps,
		Clusters: ec.K, CutEdges: len(ec.Cut),
		CutFraction: float64(len(ec.Cut)) / float64(g.M()),
		MaxDiam:     maxDiam,
		Rounds:      m.Rounds(),
	}, nil
}

// Accounting is the Theorem 2.1 round breakdown of experiment E3.
type Accounting struct {
	N          int              `json:"n"`
	Eps        float64          `json:"eps"`
	Rounds     int64            `json:"rounds"`
	Components map[string]int64 `json:"components"`
	StrongDiam int              `json:"strongDiam"`
	DiamBound  int              `json:"diamBound"` // 2R + O(log n/eps) with realized R
	DeadFrac   float64          `json:"deadFrac"`
	Clusters   int              `json:"clusters"`
}

// Thm21Accounting runs the Theorem 2.2 carver and reports the measured
// round split across the transformation's three terms together with the
// realized diameter against the 2R + O(log n / eps) guarantee.
func Thm21Accounting(family string, n int, eps float64, seed int64) (*Accounting, error) {
	g, err := Workload(family, n, seed)
	if err != nil {
		return nil, err
	}
	m := rounds.NewMeter()
	c, err := core.CarveRG(g, nil, eps, m)
	if err != nil {
		return nil, err
	}
	if err := cluster.CheckCarving(g, nil, c, eps, -1); err != nil {
		return nil, err
	}
	// Realized weak-carver depth bound: recover from a fresh weak run at
	// the transformed boundary parameter.
	epsWeak := eps / (2 * float64(log2ceil(n)))
	wc, err := rgCarve(g, nil, epsWeak, nil)
	if err != nil {
		return nil, err
	}
	depth := 0
	for _, t := range wc.Trees {
		if t != nil {
			if d := t.Depth(); d > depth {
				depth = d
			}
		}
	}
	window := int(math.Ceil(math.Log(float64(n))/-math.Log(1-eps/2))) + 1
	return &Accounting{
		N: n, Eps: eps,
		Rounds: m.Rounds(), Components: m.Components(),
		StrongDiam: cluster.MaxStrongDiameter(g, c.Members()),
		DiamBound:  2*depth + 2*window + 2,
		DeadFrac:   c.DeadFraction(nil),
		Clusters:   c.K,
	}, nil
}

// BarrierResult compares the Section 3 barrier graph against a benign graph
// of similar size (experiment E4).
type BarrierResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	Eps         float64 `json:"eps"`
	CutOutcomes int     `json:"cutOutcomes"`
	CompOutcome int     `json:"componentOutcomes"`
	MaxDiam     int     `json:"maxDiam"` // improved-carving cluster diameter
	Log2N       int     `json:"log2n"`
}

// Barrier runs the improved carving on the subdivided expander and on a
// torus of comparable size, reporting Lemma 3.1 outcome counts and realized
// diameters. On the barrier graph diameters are forced to the log²(n)/eps
// scale; on the torus they are much smaller.
func Barrier(nExp, deg, pathLen int, eps float64, seed int64) ([]BarrierResult, error) {
	barrier := graph.SubdividedExpander(nExp, deg, pathLen, seed)
	side := int(math.Sqrt(float64(barrier.N())))
	benign := graph.Torus(side, side)
	var out []BarrierResult
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{{"subdivided-expander", barrier}, {"torus", benign}} {
		cuts, comps := 0, 0
		c, err := core.CarveImproved(tc.g, nil, eps, nil)
		if err != nil {
			return nil, err
		}
		if err := cluster.CheckCarving(tc.g, nil, c, eps, -1); err != nil {
			return nil, err
		}
		// Outcome census: run the lemma once per final cluster.
		for _, members := range c.Members() {
			if len(members) < 4 {
				continue
			}
			res, err := core.CutOrComponent(tc.g, members, eps, nil)
			if err != nil {
				return nil, err
			}
			if res.IsCut {
				cuts++
			} else {
				comps++
			}
		}
		out = append(out, BarrierResult{
			Name: tc.name, N: tc.g.N(), Eps: eps,
			CutOutcomes: cuts, CompOutcome: comps,
			MaxDiam: cluster.MaxStrongDiameter(tc.g, c.Members()),
			Log2N:   log2ceil(tc.g.N()),
		})
	}
	return out, nil
}

// MessageSizeResult contrasts CONGEST-compliant message sizes with the
// ABCP96 transformation's gathered topologies (experiment E5).
type MessageSizeResult struct {
	N               int   `json:"n"`
	CongestBudget   int   `json:"congestBudgetBits"`
	EngineMaxBits   int   `json:"engineMaxBits"`
	ABCPMaxBits     int64 `json:"abcpMaxBits"`
	ABCPGatherEdges int64 `json:"abcpGatherEdges"`
	ABCPPowerRounds int64 `json:"abcpPowerRounds"`
}

// MessageSizes measures the maximum message size of a real protocol run on
// the engine versus the ABCP96 transformation's topology gathering.
func MessageSizes(n int, seed int64) (*MessageSizeResult, error) {
	g, err := Workload("gnp", n, seed)
	if err != nil {
		return nil, err
	}
	_, _, met, err := congest.RunBFS(g, 0, congest.Config{})
	if err != nil {
		return nil, err
	}
	m := rounds.NewMeter()
	_, stats, err := seqcarve.ABCPTransform(g, func(p *graph.Graph, pm *rounds.Meter) (*cluster.Decomposition, error) {
		return core.DecomposeRG(p, pm)
	}, m)
	if err != nil {
		return nil, err
	}
	return &MessageSizeResult{
		N:               n,
		CongestBudget:   congest.DefaultBandwidth(n),
		EngineMaxBits:   met.MaxMessageBits,
		ABCPMaxBits:     stats.MaxMessageBits,
		ABCPGatherEdges: stats.GatherEdges,
		ABCPPowerRounds: stats.PowerGraphRounds,
	}, nil
}

// ScalingPoint is one measurement of a scaling series (experiments E6/E7).
type ScalingPoint struct {
	Algorithm  string `json:"algorithm"`
	N          int    `json:"n"`
	Rounds     int64  `json:"rounds"`
	StrongDiam int    `json:"strongDiam"`
	WeakDiam   int    `json:"weakDiam"`
	Colors     int    `json:"colors"`
}

// Scaling sweeps n over the given sizes for every decomposition algorithm
// (or the optional `only` subset) and returns the series of (rounds,
// diameter, colors) measurements. File-backed workloads are rejected: a
// file pins the graph, so a size sweep would measure the same point
// repeatedly and the fitted log-exponent would be undefined.
func Scaling(family string, ns []int, seed int64, only ...string) ([]ScalingPoint, error) {
	if _, ok := fileFamily(family); ok {
		return nil, fmt.Errorf("bench: scaling needs a generated family that varies with n; %q is a fixed graph file", family)
	}
	var out []ScalingPoint
	for _, n := range ns {
		rows, err := Table1(family, n, seed, only...)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			out = append(out, ScalingPoint{
				Algorithm:  r.Algorithm,
				N:          r.N,
				Rounds:     r.Rounds,
				StrongDiam: r.StrongDiam,
				WeakDiam:   r.WeakDiam,
				Colors:     r.Colors,
			})
		}
	}
	return out, nil
}

// FitLogExponent fits rounds ≈ c·(log₂ n)^k over a series of (n, value)
// points by least squares in log-log-log space and returns k. It quantifies
// the "polylogarithmic" claims: the fitted exponent of each algorithm's
// round growth should be a small constant.
func FitLogExponent(ns []int, values []int64) float64 {
	if len(ns) != len(values) || len(ns) < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	k := 0
	for i := range ns {
		if values[i] <= 0 || ns[i] < 2 {
			continue
		}
		x := math.Log(math.Log2(float64(ns[i])))
		y := math.Log(float64(values[i]))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		k++
	}
	if k < 2 {
		return math.NaN()
	}
	fk := float64(k)
	den := fk*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (fk*sxy - sx*sy) / den
}

func log2ceil(n int) int {
	if n <= 1 {
		return 1
	}
	b := 1
	for 1<<b < n {
		b++
	}
	return b
}
