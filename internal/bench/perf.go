package bench

// This file is the substrate performance suite behind the committed
// BENCH_*.json trajectory artifacts: allocation and throughput
// measurements of the CSR graph core (build, parse, traverse, subgraph)
// and of the engine decompose/carve paths. cmd/bench emits the results as
// a machine-readable baseline; the root-level BenchmarkCSR* functions
// measure the same workloads interactively via `go test -bench`.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/graphio"
	"strongdecomp/internal/registry"
)

// PerfRunner is the execution surface the engine-path cases measure;
// *strongdecomp.Engine satisfies it (the same shape as service.Runner,
// redeclared because internal/bench cannot import the root package).
type PerfRunner interface {
	Decompose(ctx context.Context, g *graph.Graph, opts *registry.RunOptions) (*cluster.Decomposition, error)
	Carve(ctx context.Context, g *graph.Graph, eps float64, opts *registry.RunOptions) (*cluster.Carving, error)
}

// PerfResult is one measured line of the substrate suite.
type PerfResult struct {
	// Name identifies the measured path, e.g. "parse-edgelist" or
	// "engine-decompose/chang-ghaffari".
	Name string `json:"name"`
	// Workload describes the input graph family and size.
	Workload string `json:"workload"`
	// Algorithm is the registry name for engine cases, empty for substrate
	// cases.
	Algorithm string `json:"algorithm,omitempty"`

	NsPerOp     int64   `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	NodesPerSec float64 `json:"nodesPerSec"`
	// PeakRSSKB is the process's resident high-water mark (ru_maxrss) after
	// this case ran. It is monotone over the suite: attribute growth, not
	// absolute values, to a case.
	PeakRSSKB int64 `json:"peakRSSKB"`
}

// CSRWorkloadGraph is the shared multi-component measurement workload:
// structurally different components (random, cycle, grid, tree) so engine
// runs exercise the per-component split, remap, and merge paths rather
// than the single-component fast path.
func CSRWorkloadGraph() *graph.Graph {
	return graph.DisjointUnion(
		graph.ConnectedGnp(512, 0.01, 7),
		graph.Cycle(257),
		graph.Grid(16, 16),
		graph.RandomTree(255, 3),
	)
}

// CSRWorkloadName describes CSRWorkloadGraph in the emitted artifact.
const CSRWorkloadName = "disjoint(gnp512+cycle257+grid16x16+tree255)"

// perfCase is one measurement body over a fixed workload of n nodes; run
// must execute the measured path iters times.
type perfCase struct {
	name string
	n    int
	run  func(iters int) error
}

// PerfSuite measures the substrate paths plus the engine decompose/carve
// path for every requested algorithm. newRunner builds the engine for one
// algorithm name (nil skips the engine cases); algos lists the registry
// names to measure. Short mode uses a fixed small iteration count instead
// of testing.Benchmark's one-second auto-tuning, so the CI smoke job
// covers every path in seconds.
func PerfSuite(newRunner func(algo string) PerfRunner, algos []string, short bool) ([]PerfResult, error) {
	w := CSRWorkloadGraph()
	var elData, metisData, jsonData bytes.Buffer
	if err := graphio.Write(&elData, w, graphio.FormatEdgeList); err != nil {
		return nil, err
	}
	if err := graphio.Write(&metisData, w, graphio.FormatMETIS); err != nil {
		return nil, err
	}
	if err := graphio.Write(&jsonData, w, graphio.FormatJSON); err != nil {
		return nil, err
	}
	comps := graph.Components(w, nil)
	dist := make([]int, w.N())

	cases := []perfCase{
		{"build-connectedgnp", 2048, func(iters int) error {
			for i := 0; i < iters; i++ {
				if g := graph.ConnectedGnp(2048, 4.0/2048, 7); g.N() != 2048 {
					return errors.New("bad build")
				}
			}
			return nil
		}},
		{"parse-edgelist", w.N(), parseCase(elData.Bytes(), graphio.FormatEdgeList)},
		{"parse-metis", w.N(), parseCase(metisData.Bytes(), graphio.FormatMETIS)},
		{"parse-json", w.N(), parseCase(jsonData.Bytes(), graphio.FormatJSON)},
		{"bfs", w.N(), func(iters int) error {
			for i := 0; i < iters; i++ {
				graph.BFS(w, nil, []int{0}, dist)
			}
			return nil
		}},
		{"components", w.N(), func(iters int) error {
			for i := 0; i < iters; i++ {
				if len(graph.Components(w, nil)) != 4 {
					return errors.New("want 4 components")
				}
			}
			return nil
		}},
		{"induced-subgraph", w.N(), func(iters int) error {
			for i := 0; i < iters; i++ {
				for _, c := range comps {
					if sub, _ := graph.InducedSubgraph(w, c); sub.N() != len(c) {
						return errors.New("bad subgraph")
					}
				}
			}
			return nil
		}},
		{"is-connected", w.N(), func(iters int) error {
			for i := 0; i < iters; i++ {
				for _, c := range comps {
					if !graph.IsConnected(w, c) {
						return errors.New("component disconnected")
					}
				}
			}
			return nil
		}},
	}
	if newRunner != nil {
		ctx := context.Background()
		for _, algo := range algos {
			if _, err := registry.Lookup(algo); err != nil {
				return nil, err
			}
			e := newRunner(algo)
			cases = append(cases,
				perfCase{"engine-decompose/" + algo, w.N(), func(iters int) error {
					for i := 0; i < iters; i++ {
						if _, err := e.Decompose(ctx, w, &registry.RunOptions{Seed: 42}); err != nil {
							return err
						}
					}
					return nil
				}},
				perfCase{"engine-carve/" + algo, w.N(), func(iters int) error {
					for i := 0; i < iters; i++ {
						if _, err := e.Carve(ctx, w, 0.5, &registry.RunOptions{Seed: 42}); err != nil {
							return err
						}
					}
					return nil
				}},
			)
		}
	}

	out := make([]PerfResult, 0, len(cases))
	for _, c := range cases {
		res, err := runPerfCase(c, short)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", c.name, err)
		}
		res.Workload = CSRWorkloadName
		if i := len("engine-decompose/"); len(c.name) > i && c.name[:i] == "engine-decompose/" {
			res.Algorithm = c.name[i:]
		} else if i := len("engine-carve/"); len(c.name) > i && c.name[:i] == "engine-carve/" {
			res.Algorithm = c.name[i:]
		}
		out = append(out, res)
	}
	return out, nil
}

func parseCase(data []byte, f graphio.Format) func(iters int) error {
	return func(iters int) error {
		for i := 0; i < iters; i++ {
			if _, err := graphio.Read(bytes.NewReader(data), f); err != nil {
				return err
			}
		}
		return nil
	}
}

// shortIters is the fixed per-case iteration count of the CI smoke run.
const shortIters = 5

func runPerfCase(c perfCase, short bool) (PerfResult, error) {
	var res PerfResult
	res.Name = c.name
	if short {
		// Warm pools and caches once, then take one timed, GC-quiesced
		// measurement over a fixed iteration count.
		if err := c.run(1); err != nil {
			return res, err
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		if err := c.run(shortIters); err != nil {
			return res, err
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		res.NsPerOp = elapsed.Nanoseconds() / shortIters
		res.AllocsPerOp = int64(after.Mallocs-before.Mallocs) / shortIters
		res.BytesPerOp = int64(after.TotalAlloc-before.TotalAlloc) / shortIters
	} else {
		var runErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			if err := c.run(b.N); err != nil {
				runErr = err
				b.FailNow()
			}
		})
		if runErr != nil {
			return res, runErr
		}
		res.NsPerOp = r.NsPerOp()
		res.AllocsPerOp = r.AllocsPerOp()
		res.BytesPerOp = r.AllocedBytesPerOp()
	}
	res.PeakRSSKB = peakRSSKB()
	if res.NsPerOp > 0 {
		res.NodesPerSec = float64(c.n) / (float64(res.NsPerOp) / 1e9)
	}
	return res, nil
}

// FormatPerf renders results as an aligned text block (cmd/bench default
// output).
func FormatPerf(results []PerfResult) string {
	var sb bytes.Buffer
	for _, r := range results {
		fmt.Fprintf(&sb, "%-44s %12d ns/op %10d B/op %8d allocs/op %14.0f nodes/s rss=%dKB\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.NodesPerSec, r.PeakRSSKB)
	}
	return sb.String()
}
