//go:build !linux

package bench

// peakRSSKB is unavailable off Linux (getrusage is missing on Windows
// and darwin reports ru_maxrss in bytes, not KiB); results record 0 per
// the PeakRSSKB field contract.
func peakRSSKB() int64 { return 0 }
