package bench

import "syscall"

// peakRSSKB returns the process resident high-water mark in KiB (Linux
// reports ru_maxrss in kilobytes), or 0 if getrusage fails.
func peakRSSKB() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return int64(ru.Maxrss)
}
