package bench

import "testing"

func TestAblateWeakCarverBlackBox(t *testing.T) {
	rows, err := AblateWeakCarver("cycle", 512, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 ablation rows, got %d", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Carver] = r
		if r.StrongDiam < 0 {
			t.Fatalf("%s produced a disconnected cluster", r.Carver)
		}
		if r.DeadFrac > 0.5+0.01 {
			t.Fatalf("%s dead fraction %f", r.Carver, r.DeadFrac)
		}
	}
	// The transformation's diameter tracks the weak carver's Steiner depth:
	// LS (R = O(log n/eps)) must beat RG20 (R = O(log^3 n/eps)).
	lsRow, rgRow := byName["linial-saks-randomized"], byName["rg20-deterministic"]
	if lsRow.StrongDiam >= rgRow.StrongDiam {
		t.Fatalf("LS-instantiated diameter %d should undercut RG20-instantiated %d",
			lsRow.StrongDiam, rgRow.StrongDiam)
	}
}
