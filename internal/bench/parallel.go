package bench

// Parallel-traversal suite (BENCH_pr10): the frontier-parallel BFS
// primitives and the engine's single-giant-component decompose path
// measured across worker counts, on a workload that is itself produced by
// the out-of-core pipeline — the generated component is streamed through
// graphio.BuildCSRStream into a .csr snapshot and mmap-loaded back, so
// the external build and the mmap open are measured rows, not fixtures.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"strongdecomp/internal/graph"
	"strongdecomp/internal/graphio"
	"strongdecomp/internal/registry"
)

// ParallelWorkers are the fan-out widths the suite sweeps.
var ParallelWorkers = []int{1, 2, 4, 8}

// ParallelSuite measures the parallel-traversal rows. newRunner builds a
// single-component-parallel engine for a worker count (cmd/bench passes
// WithParallelBFS(true) with threshold 0); csrPath, when non-empty,
// mmap-loads an existing snapshot as the traversal workload instead of
// generating one (the -csr flag), skipping the stream-build row.
func ParallelSuite(newRunner func(workers int) PerfRunner, short bool, csrPath string) ([]PerfResult, error) {
	travN, travDeg := 150_000, 14.0
	decompN, decompDeg := 40_000, 6.0
	if short {
		travN, travDeg = 80_000, 8.0
		decompN, decompDeg = 16_000, 6.0
	}

	tmp, err := os.MkdirTemp("", "bench-par-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	var out []PerfResult
	var travGraph *graph.Graph
	travLoad := csrPath
	if csrPath == "" {
		// Generate the single connected component, then stream it through
		// the out-of-core builder: edge stream -> sorted runs -> merge ->
		// snapshot. The stream-build row measures that whole pipeline.
		gen := graph.ConnectedGnp(travN, travDeg/float64(travN), 31)
		travLoad = filepath.Join(tmp, "workload.csr")
		workload := fmt.Sprintf("connected-gnp(n=%d,deg=%.0f)", travN, travDeg)
		res, err := runPerfCase(perfCase{"stream-build-csr", gen.N(), func(iters int) error {
			for i := 0; i < iters; i++ {
				if err := streamOut(travLoad, gen); err != nil {
					return err
				}
			}
			return nil
		}}, short)
		if err != nil {
			return nil, fmt.Errorf("bench: stream-build-csr: %w", err)
		}
		res.Workload = workload
		out = append(out, res)
	}

	travGraph, err = graphio.LoadCSR(travLoad)
	if err != nil {
		return nil, fmt.Errorf("bench: load traversal workload: %w", err)
	}
	workload := filepath.Base(travLoad)
	if csrPath == "" {
		workload = fmt.Sprintf("connected-gnp(n=%d,deg=%.0f) via stream+mmap", travN, travDeg)
	}
	res, err := runPerfCase(perfCase{"csr-mmap-load", travGraph.N(), func(iters int) error {
		for i := 0; i < iters; i++ {
			if _, err := graphio.LoadCSR(travLoad); err != nil {
				return err
			}
		}
		return nil
	}}, short)
	if err != nil {
		return nil, fmt.Errorf("bench: csr-mmap-load: %w", err)
	}
	res.Workload = workload
	out = append(out, res)

	g := travGraph
	dist := make([]int, g.N())
	for _, w := range ParallelWorkers {
		w := w
		res, err := runPerfCase(perfCase{fmt.Sprintf("par-bfs/w%d", w), g.N(), func(iters int) error {
			for i := 0; i < iters; i++ {
				if order := graph.ParallelBFS(g, nil, []int{0}, dist, w); len(order) != g.N() {
					return errors.New("bfs did not reach the whole component")
				}
			}
			return nil
		}}, short)
		if err != nil {
			return nil, fmt.Errorf("bench: par-bfs/w%d: %w", w, err)
		}
		res.Workload = workload
		out = append(out, res)
	}
	for _, w := range []int{1, ParallelWorkers[len(ParallelWorkers)-1]} {
		w := w
		res, err := runPerfCase(perfCase{fmt.Sprintf("par-components/w%d", w), g.N(), func(iters int) error {
			for i := 0; i < iters; i++ {
				if comps := graph.ParallelComponents(g, nil, w); len(comps) != 1 {
					return errors.New("workload is not one component")
				}
			}
			return nil
		}}, short)
		if err != nil {
			return nil, fmt.Errorf("bench: par-components/w%d: %w", w, err)
		}
		res.Workload = workload
		out = append(out, res)
	}

	if newRunner != nil {
		dg := graph.ConnectedGnp(decompN, decompDeg/float64(decompN), 43)
		dWorkload := fmt.Sprintf("connected-gnp(n=%d,deg=%.0f) single component", decompN, decompDeg)
		ctx := context.Background()
		for _, w := range ParallelWorkers {
			e := newRunner(w)
			res, err := runPerfCase(perfCase{fmt.Sprintf("decompose-giant/w%d", w), dg.N(), func(iters int) error {
				for i := 0; i < iters; i++ {
					if _, err := e.Decompose(ctx, dg, &registry.RunOptions{Seed: 42}); err != nil {
						return err
					}
				}
				return nil
			}}, short)
			if err != nil {
				return nil, fmt.Errorf("bench: decompose-giant/w%d: %w", w, err)
			}
			res.Workload = dWorkload
			out = append(out, res)
		}
	}
	return out, nil
}

// streamOut feeds g's edges (u < v once each) through BuildCSRStream.
func streamOut(path string, g *graph.Graph) error {
	return graphio.BuildCSRStream(path, g.N(), func(emit func(u, v int)) error {
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Neighbors(u) {
				if u < v {
					emit(u, v)
				}
			}
		}
		return nil
	})
}
