package bench

import (
	"math"
	"path/filepath"
	"testing"

	"strongdecomp/internal/graph"
	"strongdecomp/internal/graphio"
)

type workloadGraph = graph.Graph

func TestTable1RowsCompleteAndOrdered(t *testing.T) {
	// n = 512 is the smallest size at which the log² vs log³ separation of
	// the improved variant is visible on the cycle workload.
	rows, err := Table1("cycle", 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("table 1 has %d rows, want 6", len(rows))
	}
	byAlgo := make(map[string]Row, len(rows))
	for _, r := range rows {
		byAlgo[r.Algorithm] = r
		if r.Colors == 0 || r.Rounds == 0 {
			t.Fatalf("row %s has empty measurements: %+v", r.Algorithm, r)
		}
		if r.WeakDiam < 0 {
			t.Fatalf("row %s weakly disconnected cluster", r.Algorithm)
		}
	}
	// Strong-diameter rows must have connected clusters.
	for _, algo := range []string{"mpx-elkin-neiman", "sequential-baseline", "chang-ghaffari", "chang-ghaffari-improved"} {
		if byAlgo[algo].StrongDiam < 0 {
			t.Fatalf("%s produced a disconnected cluster", algo)
		}
	}
	// Qualitative Table 1 shape: the randomized strong construction has the
	// smallest diameter among strong constructions, and the improved
	// deterministic variant beats the basic one once n is large enough for
	// the log² vs log³ asymptotics to bind.
	if byAlgo["mpx-elkin-neiman"].StrongDiam >= byAlgo["chang-ghaffari-improved"].StrongDiam {
		t.Fatalf("MPX diameter %d should undercut improved deterministic %d",
			byAlgo["mpx-elkin-neiman"].StrongDiam, byAlgo["chang-ghaffari-improved"].StrongDiam)
	}
	if byAlgo["chang-ghaffari-improved"].StrongDiam > byAlgo["chang-ghaffari"].StrongDiam {
		t.Fatalf("improved diameter %d worse than basic %d at n=512",
			byAlgo["chang-ghaffari-improved"].StrongDiam, byAlgo["chang-ghaffari"].StrongDiam)
	}
	// Round ordering: randomized constructions are cheaper than the
	// deterministic transformation chain.
	if byAlgo["mpx-elkin-neiman"].Rounds >= byAlgo["chang-ghaffari"].Rounds {
		t.Fatalf("MPX rounds %d should undercut Thm 2.3 rounds %d",
			byAlgo["mpx-elkin-neiman"].Rounds, byAlgo["chang-ghaffari"].Rounds)
	}
}

func TestTable2RowsCompleteWithDeadBound(t *testing.T) {
	for _, eps := range []float64{0.5, 0.25} {
		rows, err := Table2("cycle", 256, eps, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 5 {
			t.Fatalf("table 2 has %d rows, want 5", len(rows))
		}
		for _, r := range rows {
			if r.DeadFrac > eps+0.01 {
				t.Fatalf("%s dead fraction %f exceeds eps %f", r.Algorithm, r.DeadFrac, eps)
			}
			if r.Rounds == 0 {
				t.Fatalf("%s charged no rounds", r.Algorithm)
			}
		}
	}
}

func TestThm21AccountingTermsPresent(t *testing.T) {
	acc, err := Thm21Accounting("cycle", 256, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, comp := range []string{"thm21/gather", "thm21/bfs", "rg/propose"} {
		if acc.Components[comp] == 0 {
			t.Fatalf("missing component %s: %v", comp, acc.Components)
		}
	}
	if acc.StrongDiam > acc.DiamBound {
		t.Fatalf("measured diameter %d exceeds 2R+O(log n/eps) bound %d", acc.StrongDiam, acc.DiamBound)
	}
	if acc.DeadFrac > 0.5+0.01 {
		t.Fatalf("dead fraction %f", acc.DeadFrac)
	}
}

func TestBarrierForcesLargeDiameter(t *testing.T) {
	res, err := Barrier(24, 4, 6, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("want 2 barrier results, got %d", len(res))
	}
	barrier, torus := res[0], res[1]
	if barrier.Name != "subdivided-expander" {
		barrier, torus = res[1], res[0]
	}
	// The barrier graph must force larger clusters diameters than the
	// benign torus of comparable size.
	if barrier.MaxDiam <= torus.MaxDiam {
		t.Fatalf("barrier diameter %d not larger than torus %d", barrier.MaxDiam, torus.MaxDiam)
	}
}

func TestMessageSizesContrast(t *testing.T) {
	res, err := MessageSizes(128, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.EngineMaxBits > res.CongestBudget {
		t.Fatalf("engine message %d bits exceeds budget %d", res.EngineMaxBits, res.CongestBudget)
	}
	if res.ABCPMaxBits <= int64(res.CongestBudget) {
		t.Fatalf("ABCP max message %d bits does not exceed CONGEST budget %d — the motivation experiment failed",
			res.ABCPMaxBits, res.CongestBudget)
	}
}

func TestScalingSeries(t *testing.T) {
	pts, err := Scaling("cycle", []int{64, 128}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 12 {
		t.Fatalf("want 12 scaling points, got %d", len(pts))
	}
}

func TestFitLogExponent(t *testing.T) {
	// Perfect (log n)^3 data must fit k = 3.
	ns := []int{1 << 4, 1 << 6, 1 << 8, 1 << 10, 1 << 12}
	vals := make([]int64, len(ns))
	for i, n := range ns {
		l := math.Log2(float64(n))
		vals[i] = int64(l * l * l)
	}
	k := FitLogExponent(ns, vals)
	if math.Abs(k-3) > 0.05 {
		t.Fatalf("fitted exponent %f, want 3", k)
	}
	if !math.IsNaN(FitLogExponent([]int{4}, []int64{1})) {
		t.Fatal("underdetermined fit should be NaN")
	}
	if !math.IsNaN(FitLogExponent([]int{4, 8}, []int64{1})) {
		t.Fatal("mismatched lengths should be NaN")
	}
}

func TestTableEdgeValid(t *testing.T) {
	row, err := TableEdge("cycle", 512, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if row.CutFraction > 0.5+0.01 {
		t.Fatalf("cut fraction %f", row.CutFraction)
	}
	if row.MaxDiam < 0 {
		t.Fatal("disconnected cluster in remaining graph")
	}
	if row.Clusters == 0 || row.Rounds == 0 {
		t.Fatalf("empty measurements: %+v", row)
	}
}

func TestWorkloadFamilies(t *testing.T) {
	for _, family := range []string{"cycle", "path", "gnp", "grid", "subdivided", ""} {
		g := mustWorkload(t, family, 200, 1)
		if g.N() == 0 {
			t.Fatalf("family %q produced empty graph", family)
		}
	}
	if _, err := Workload("nope", 10, 1); err == nil {
		t.Fatal("unknown family accepted")
	}
}

// TestWorkloadFromFile pins the file-backed workload path: the harness
// benches real graph files through the same entry point as the synthetic
// families, via both the "file:" prefix and a bare recognized path.
func TestWorkloadFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.metis")
	want := graph.Cycle(64)
	if err := graphio.Save(path, want); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{"file:" + path, path} {
		g := mustWorkload(t, family, 0, 0)
		if g.N() != want.N() || g.M() != want.M() {
			t.Fatalf("family %q: loaded n=%d m=%d, want n=%d m=%d", family, g.N(), g.M(), want.N(), want.M())
		}
	}
	if _, err := Workload("file:"+filepath.Join(t.TempDir(), "missing.el"), 0, 0); err == nil {
		t.Fatal("missing workload file accepted")
	}

	// The full Table 1 harness runs against a file workload.
	rows, err := Table1("file:"+path, 0, 1, "sequential")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].N != 64 || rows[0].Clusters == 0 {
		t.Fatalf("file-backed Table1 rows: %+v", rows)
	}

	// A size sweep over a fixed file is meaningless and must be rejected.
	if _, err := Scaling("file:"+path, []int{64, 128}, 1, "sequential"); err == nil {
		t.Fatal("Scaling accepted a fixed graph file")
	}
}

func mustWorkload(t *testing.T, family string, n int, seed int64) *workloadGraph {
	t.Helper()
	g, err := Workload(family, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
