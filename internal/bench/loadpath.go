package bench

// The load-path suite behind BENCH_pr5.json: how long does it take to get
// a usable graph.Graph from bytes on disk? It measures every text parser
// against the binary CSR snapshot paths on one large workload, because
// the snapshot format exists precisely to amortize parse cost — a graph
// is parsed once, spilled as a snapshot, and every later boot (or every
// service restart over a data directory) reopens it via mmap.
//
// Three snapshot paths are measured, in decreasing work order:
//
//	csr-read          streaming decode + checksum + structural validation
//	csr-mmap          mmap + checksum + structural validation (graphio.LoadCSR)
//	csr-mmap-trusted  mmap + checksum only (graphio.LoadCSRTrusted) — the
//	                  serving layer's disk-tier path for its own spill files
//
// Fairness notes: every case starts from a file on disk (same page-cache
// warmth), and every case touches N and M plus one adjacency row, so a
// loader cannot win by deferring all work.

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"strongdecomp/internal/graph"
	"strongdecomp/internal/graphio"
)

// LoadWorkloadGraph is the large load-path workload: a connected sparse
// random graph of 2^16 nodes at average degree ~8 (≈260k edges), the
// shape a production service actually re-loads.
func LoadWorkloadGraph() *graph.Graph {
	n := 1 << 16
	return graph.ConnectedGnp(n, 8.0/float64(n), 7)
}

// LoadWorkloadName describes LoadWorkloadGraph in the emitted artifact.
const LoadWorkloadName = "connected-gnp(n=65536, avg-deg≈8)"

// LoadPathSuite writes the workload to disk in every format and measures
// each load path. Results reuse the PerfResult schema; short mode uses
// the suite's fixed small iteration count (CI smoke).
func LoadPathSuite(short bool) ([]PerfResult, error) {
	w := LoadWorkloadGraph()
	dir, err := os.MkdirTemp("", "strongdecomp-loadpath-*")
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	defer os.RemoveAll(dir)

	paths := map[graphio.Format]string{
		graphio.FormatEdgeList: filepath.Join(dir, "w.el"),
		graphio.FormatMETIS:    filepath.Join(dir, "w.metis"),
		graphio.FormatJSON:     filepath.Join(dir, "w.json"),
		graphio.FormatCSR:      filepath.Join(dir, "w.csr"),
	}
	for _, path := range paths {
		if err := graphio.Save(path, w); err != nil {
			return nil, err
		}
	}

	// check guards against dead-code elimination and forces a minimum of
	// real work out of every loader.
	check := func(g *graph.Graph, err error) error {
		if err != nil {
			return err
		}
		if g.N() != w.N() || g.M() != w.M() || g.Degree(0) != w.Degree(0) {
			return errors.New("loaded graph differs from workload")
		}
		return nil
	}
	loadCase := func(name, path string, load func(string) (*graph.Graph, error)) perfCase {
		return perfCase{name, w.N(), func(iters int) error {
			for i := 0; i < iters; i++ {
				if err := check(load(path)); err != nil {
					return err
				}
			}
			return nil
		}}
	}

	cases := []perfCase{
		loadCase("loadpath-parse-edgelist", paths[graphio.FormatEdgeList], graphio.Load),
		loadCase("loadpath-parse-metis", paths[graphio.FormatMETIS], graphio.Load),
		loadCase("loadpath-parse-json", paths[graphio.FormatJSON], graphio.Load),
		loadCase("loadpath-csr-read", paths[graphio.FormatCSR], readCSRFromFile),
		loadCase("loadpath-csr-mmap", paths[graphio.FormatCSR], graphio.LoadCSR),
		loadCase("loadpath-csr-mmap-trusted", paths[graphio.FormatCSR], graphio.LoadCSRTrusted),
	}

	out := make([]PerfResult, 0, len(cases))
	for _, c := range cases {
		res, err := runPerfCase(c, short)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", c.name, err)
		}
		res.Workload = LoadWorkloadName
		out = append(out, res)
	}
	return out, nil
}

// readCSRFromFile is the snapshot streaming-decode path pinned to a file
// source, so it pays the same I/O as the others (LoadCSR would mmap).
func readCSRFromFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graphio.ReadCSR(bufio.NewReaderSize(f, 1<<16))
}
