package rg

import (
	"testing"
	"testing/quick"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/rounds"
)

// checkEdgeInvariants verifies the weak edge-carving contract: all nodes
// clustered, cut fraction <= eps, no remaining inter-cluster edge, trees
// valid with every member a tree node.
func checkEdgeInvariants(t *testing.T, g *graph.Graph, eps float64) *EdgeCarving {
	t.Helper()
	ec, err := CarveEdges(g, nil, eps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.CheckEdgeCut(g, nil, ec.Carving.Assign, ec.Carving.K, ec.Cut, eps); err != nil {
		// The weak version does not promise connectivity, so tolerate only
		// the "disconnected" failure and re-check the rest by hand.
		t.Fatalf("eps=%v: %v", eps, err)
	}
	for cl, tr := range ec.Carving.Trees {
		if tr == nil {
			t.Fatalf("cluster %d missing tree", cl)
		}
		if err := tr.Validate(g); err != nil {
			t.Fatalf("cluster %d: %v", cl, err)
		}
	}
	for v, cl := range ec.Carving.Assign {
		if cl == cluster.Unclustered {
			t.Fatalf("edge version killed node %d", v)
		}
		if !ec.Carving.Trees[cl].Has(v) {
			t.Fatalf("member %d of cluster %d not in tree", v, cl)
		}
	}
	return ec
}

func TestCarveEdgesRejectsBadEps(t *testing.T) {
	g := graph.Path(4)
	for _, eps := range []float64{0, -1, 1.01} {
		if _, err := CarveEdges(g, nil, eps, nil); err != nil {
			continue
		}
		t.Fatalf("eps %v accepted", eps)
	}
}

func TestCarveEdgesInvariantsAcrossFamilies(t *testing.T) {
	tests := map[string]*graph.Graph{
		"path":       graph.Path(120),
		"cycle":      graph.Cycle(100),
		"grid":       graph.Grid(10, 10),
		"tree":       graph.BinaryTree(100),
		"complete":   graph.Complete(32),
		"gnp":        graph.ConnectedGnp(120, 0.04, 3),
		"expander":   graph.RandomRegularish(96, 4, 5),
		"subdivided": graph.SubdividedExpander(12, 4, 4, 7),
		"union":      graph.DisjointUnion(graph.Path(30), graph.Star(20)),
	}
	for name, g := range tests {
		t.Run(name, func(t *testing.T) {
			for _, eps := range []float64{0.5, 0.25} {
				checkEdgeInvariants(t, g, eps)
			}
		})
	}
}

func TestCarveEdgesNoNodeLoss(t *testing.T) {
	// The headline difference to the node version: on a star, the node
	// version may kill leaves; the edge version must keep every node.
	g := graph.Star(200)
	ec := checkEdgeInvariants(t, g, 0.25)
	if ec.Carving.DeadFraction(nil) != 0 {
		t.Fatalf("edge carving killed nodes: %f", ec.Carving.DeadFraction(nil))
	}
}

func TestCarveEdgesDeterministic(t *testing.T) {
	g := graph.ConnectedGnp(100, 0.05, 11)
	a, err := CarveEdges(g, nil, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CarveEdges(g, nil, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cut) != len(b.Cut) {
		t.Fatalf("cut sizes differ: %d vs %d", len(a.Cut), len(b.Cut))
	}
	for v := range a.Carving.Assign {
		if a.Carving.Assign[v] != b.Carving.Assign[v] {
			t.Fatalf("nondeterministic at node %d", v)
		}
	}
}

func TestCarveEdgesChargesRounds(t *testing.T) {
	g := graph.Grid(9, 9)
	m := rounds.NewMeter()
	if _, err := CarveEdges(g, nil, 0.5, m); err != nil {
		t.Fatal(err)
	}
	if m.Rounds() == 0 {
		t.Fatal("no rounds charged")
	}
}

func TestPropertyCarveEdgesBudget(t *testing.T) {
	f := func(seed uint8, nRaw uint8) bool {
		n := 20 + int(nRaw)%80
		g := graph.ConnectedGnp(n, 0.06, int64(seed))
		ec, err := CarveEdges(g, nil, 0.5, nil)
		if err != nil {
			return false
		}
		return cluster.CheckEdgeCut(g, nil, ec.Carving.Assign, ec.Carving.K, ec.Cut, 0.5) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
