package rg

import (
	"fmt"
	"testing"
	"testing/quick"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/rounds"
)

func allNodes(n int) []int {
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i
	}
	return nodes
}

func TestCarveRejectsBadEps(t *testing.T) {
	g := graph.Path(4)
	for _, eps := range []float64{0, -0.5, 1.5} {
		if _, err := Carve(g, nil, eps, nil); err == nil {
			t.Fatalf("eps %v accepted", eps)
		}
	}
}

func TestCarveEmptyAndSingleton(t *testing.T) {
	g, err := graph.NewBuilder(0).Build()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Carve(g, nil, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.K != 0 {
		t.Fatalf("empty graph produced %d clusters", c.K)
	}

	g1 := graph.Path(1)
	c, err = Carve(g1, nil, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.K != 1 || c.Assign[0] != 0 {
		t.Fatalf("singleton carving wrong: %+v", c)
	}
}

// checkInvariants validates the full weak-carving contract for a run.
func checkInvariants(t *testing.T, g *graph.Graph, nodes []int, eps float64) *cluster.Carving {
	t.Helper()
	c, err := Carve(g, nodes, eps, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	if nodes == nil {
		nodes = allNodes(n)
	}
	var alive []bool
	if len(nodes) != n {
		alive = make([]bool, n)
		for _, v := range nodes {
			alive[v] = true
		}
	}
	p := ParamsFor(n, eps)
	if err := cluster.CheckWeakCarving(g, alive, c, eps, p.MaxDepth, p.Congestion); err != nil {
		t.Fatalf("n=%d eps=%v: %v", n, eps, err)
	}
	return c
}

func TestCarveInvariantsAcrossFamilies(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"path100", graph.Path(100)},
		{"cycle64", graph.Cycle(64)},
		{"grid10x10", graph.Grid(10, 10)},
		{"tree127", graph.BinaryTree(127)},
		{"star50", graph.Star(50)},
		{"complete32", graph.Complete(32)},
		{"gnp", graph.ConnectedGnp(150, 0.03, 1)},
		{"expander", graph.RandomRegularish(128, 4, 2)},
		{"subdivided", graph.SubdividedExpander(16, 4, 4, 3)},
		{"clusters", graph.ClusterGraph(5, 12, 0.4, 4)},
		{"disconnected", graph.DisjointUnion(graph.Path(20), graph.Cycle(30), graph.Star(10))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for _, eps := range []float64{0.5, 0.25} {
				checkInvariants(t, tt.g, nil, eps)
			}
		})
	}
}

func TestCarveOnSubsetLeavesRestUntouched(t *testing.T) {
	g := graph.Path(20)
	nodes := []int{0, 1, 2, 3, 4, 5, 6, 7}
	c, err := Carve(g, nodes, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 8; v < 20; v++ {
		if c.Assign[v] != cluster.Unclustered {
			t.Fatalf("node %d outside S was assigned %d", v, c.Assign[v])
		}
	}
	// At least (1-eps) of the subset survives.
	dead := 0
	for _, v := range nodes {
		if c.Assign[v] == cluster.Unclustered {
			dead++
		}
	}
	if float64(dead) > 0.5*float64(len(nodes))+1 {
		t.Fatalf("%d of %d subset nodes dead", dead, len(nodes))
	}
}

func TestCarveIsDeterministic(t *testing.T) {
	g := graph.ConnectedGnp(120, 0.04, 9)
	a, err := Carve(g, nil, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Carve(g, nil, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.K != b.K {
		t.Fatalf("K differs: %d vs %d", a.K, b.K)
	}
	for v := range a.Assign {
		if a.Assign[v] != b.Assign[v] {
			t.Fatalf("assign[%d] differs: %d vs %d", v, a.Assign[v], b.Assign[v])
		}
	}
}

func TestCarveChargesRounds(t *testing.T) {
	g := graph.ConnectedGnp(100, 0.05, 5)
	m := rounds.NewMeter()
	if _, err := Carve(g, nil, 0.5, m); err != nil {
		t.Fatal(err)
	}
	if m.Rounds() == 0 {
		t.Fatal("no rounds charged")
	}
	if m.Component("rg/propose") == 0 || m.Component("rg/congestion") == 0 {
		t.Fatalf("missing components: %s", m)
	}
}

func TestCarveCompleteGraphSingleCluster(t *testing.T) {
	// On K_n all nodes merge quickly; nobody should die because every
	// proposal set is large relative to cluster sizes early on.
	c := checkInvariants(t, graph.Complete(64), nil, 0.5)
	if c.DeadFraction(nil) > 0.5 {
		t.Fatalf("complete graph dead fraction %f", c.DeadFraction(nil))
	}
}

func TestParamsForMonotone(t *testing.T) {
	small := ParamsFor(64, 0.5)
	large := ParamsFor(4096, 0.5)
	if large.Bits <= small.Bits {
		t.Fatalf("bits not monotone: %d vs %d", small.Bits, large.Bits)
	}
	if large.MaxDepth <= small.MaxDepth {
		t.Fatalf("depth bound not monotone")
	}
	tight := ParamsFor(1024, 0.5)
	loose := ParamsFor(1024, 0.1)
	if loose.MaxDepth <= tight.MaxDepth {
		t.Fatalf("depth bound must grow as eps shrinks")
	}
	if p := ParamsFor(1, 0.5); p.Bits != 1 {
		t.Fatalf("n=1 bits = %d", p.Bits)
	}
}

func TestPropertyCarveInvariants(t *testing.T) {
	f := func(seedRaw uint8, nRaw uint8, epsRaw uint8) bool {
		n := 20 + int(nRaw)%120
		eps := 0.2 + float64(epsRaw%60)/100.0
		g := graph.ConnectedGnp(n, 0.05, int64(seedRaw))
		c, err := Carve(g, nil, eps, nil)
		if err != nil {
			return false
		}
		p := ParamsFor(n, eps)
		return cluster.CheckWeakCarving(g, nil, c, eps, p.MaxDepth, p.Congestion) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCarveDepthWithinRealizedBound(t *testing.T) {
	// The realized tree depth should be far below the worst-case bound on
	// benign graphs; this guards against accidental depth blowups.
	g := graph.Grid(12, 12)
	c, err := Carve(g, nil, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := ParamsFor(g.N(), 0.5)
	for i, tr := range c.Trees {
		if d := tr.Depth(); d > p.MaxDepth {
			t.Fatalf("cluster %d tree depth %d exceeds bound %d", i, d, p.MaxDepth)
		}
	}
}

func ExampleCarve() {
	g := graph.Grid(8, 8)
	c, _ := Carve(g, nil, 0.5, nil)
	fmt.Println(c.K > 0, c.DeadFraction(nil) <= 0.5)
	// Output: true true
}

// carvingsEqual reports whether two carvings are bit-identical: same
// assignment vector, cluster count, centers, and Steiner trees.
func carvingsEqual(a, b *cluster.Carving) bool {
	if a.K != b.K || len(a.Assign) != len(b.Assign) {
		return false
	}
	for v := range a.Assign {
		if a.Assign[v] != b.Assign[v] {
			return false
		}
	}
	for i := range a.Centers {
		if a.Centers[i] != b.Centers[i] {
			return false
		}
	}
	for i := range a.Trees {
		ta, tb := a.Trees[i], b.Trees[i]
		if ta.Root != tb.Root || len(ta.Parent) != len(tb.Parent) {
			return false
		}
		for v, p := range ta.Parent {
			if q, ok := tb.Parent[v]; !ok || q != p {
				return false
			}
		}
	}
	return true
}

// TestCarveParallelMatchesSequential is the carving arm of the
// differential harness: CarveParallel must reproduce Carve bit-for-bit —
// assignment, centers, Steiner trees, AND the round/message charges —
// for every worker count, since the parallel scans are defined to be a
// pure reordering of the sequential loops' reads.
func TestCarveParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		name  string
		g     *graph.Graph
		nodes []int
	}{
		{"connected-gnp", graph.ConnectedGnp(800, 0.01, 5), nil},
		{"grid", graph.Grid(25, 30), nil},
		{"star", graph.Star(1500), nil},
		{"regularish", graph.RandomRegularish(2000, 6, 9), nil},
		{"cluster-graph", graph.ClusterGraph(8, 60, 0.2, 13), nil},
		{"subset", graph.ConnectedGnp(600, 0.02, 7), allNodes(300)},
		{"big-gnp", graph.ConnectedGnp(12000, 6.0/12000, 11), nil},
	}
	for _, tc := range cases {
		seqMeter := rounds.NewMeter()
		want, err := Carve(tc.g, tc.nodes, 0.3, seqMeter)
		if err != nil {
			t.Fatalf("%s: sequential carve: %v", tc.name, err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			parMeter := rounds.NewMeter()
			cfg := graph.ParallelConfig{Workers: workers, Threshold: 1}
			got, err := CarveParallel(tc.g, tc.nodes, 0.3, parMeter, cfg)
			if err != nil {
				t.Fatalf("%s workers=%d: parallel carve: %v", tc.name, workers, err)
			}
			if !carvingsEqual(want, got) {
				t.Fatalf("%s workers=%d: parallel carving diverges from sequential", tc.name, workers)
			}
			if seqMeter.Rounds() != parMeter.Rounds() || seqMeter.Messages() != parMeter.Messages() {
				t.Fatalf("%s workers=%d: charges diverge: seq (%d rounds, %d msgs) vs par (%d rounds, %d msgs)",
					tc.name, workers, seqMeter.Rounds(), seqMeter.Messages(), parMeter.Rounds(), parMeter.Messages())
			}
		}
	}
}

// TestCarveParallelThresholdGate checks the size gate: below the
// threshold CarveParallel must not fan out (workers stays 1), and either
// way the result matches Carve.
func TestCarveParallelThresholdGate(t *testing.T) {
	g := graph.ConnectedGnp(400, 0.02, 3)
	want, err := Carve(g, nil, 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, threshold := range []int{1, 401} {
		got, err := CarveParallel(g, nil, 0.25, nil, graph.ParallelConfig{Workers: 4, Threshold: threshold})
		if err != nil {
			t.Fatal(err)
		}
		if !carvingsEqual(want, got) {
			t.Fatalf("threshold=%d: carving diverges from sequential", threshold)
		}
	}
}
