package rg

// This file implements the *edge version* of the deterministic weak-diameter
// carving, which the paper states alongside the node version ("all results
// in Table 2 ... also apply to the edge version, where we remove at most an
// ε fraction of the edges, instead of removing nodes. The proofs for the
// edge version are essentially the same").
//
// The skeleton is the node version's bit-phase growth with two changes:
//
//   - when a red cluster retires, the *edges* between it and its proposers
//     are cut instead of killing the proposers — every node stays alive and
//     ends up in some cluster;
//   - acceptance is measured in volume: a red cluster X accepts iff the
//     number of proposal edges is at least δ·vol(X) (vol = degree sum of
//     members in the remaining graph), with δ = ε/(4b). A retiring cluster
//     therefore cuts fewer than δ·vol(X) edges; summing vol over clusters
//     bounds each phase's cuts by 2δ·m, and the b phases by ε·m/2.
//
// The phase-end invariant carries over verbatim: any remaining (uncut) edge
// from a live blue node to a red cluster would have triggered a proposal, so
// after all phases every remaining inter-cluster edge is gone, i.e. the
// clusters are non-adjacent in the remaining graph.

import (
	"fmt"
	"sort"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/rounds"
)

// EdgeCarving is the result of the edge-version weak carving: a clustering
// of all nodes (nobody dies) plus the set of removed edges. Within the
// remaining graph (g minus Cut), distinct clusters are non-adjacent.
type EdgeCarving struct {
	Carving *cluster.Carving
	Cut     [][2]int // removed edges, canonical (u < v) order
}

// CarveEdges runs the edge-version weak carving on the subgraph induced by
// nodes (nil = all of g): it cuts at most an eps fraction of that subgraph's
// edges and clusters every node, with per-cluster Steiner trees as in the
// node version. Steiner trees only use uncut edges.
func CarveEdges(g *graph.Graph, nodes []int, eps float64, m *rounds.Meter) (*EdgeCarving, error) {
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("rg: eps %v outside (0, 1]", eps)
	}
	n := g.N()
	if nodes == nil {
		nodes = make([]int, n)
		for v := range nodes {
			nodes[v] = v
		}
	}
	st := newEdgeState(g, nodes, eps)
	for phase := 0; phase < st.b; phase++ {
		st.runPhase(phase, m)
	}
	return st.result(), nil
}

type edgeState struct {
	g     *graph.Graph
	b     int
	delta float64

	inS      []bool
	label    []int
	cut      map[[2]int]bool
	clusters map[int]*edgeClusterInfo

	activeBlue []int
	inActive   []bool
}

type edgeClusterInfo struct {
	label    int
	vol      int // degree sum of members in the remaining subgraph
	tree     *cluster.Tree
	depth    map[int]int
	maxDepth int
	retired  bool
}

func newEdgeState(g *graph.Graph, nodes []int, eps float64) *edgeState {
	n := g.N()
	st := &edgeState{
		g:        g,
		b:        labelBits(n),
		delta:    eps / (4 * float64(labelBits(n))),
		inS:      make([]bool, n),
		label:    make([]int, n),
		cut:      make(map[[2]int]bool),
		clusters: make(map[int]*edgeClusterInfo, len(nodes)),
		inActive: make([]bool, n),
	}
	for v := range st.label {
		st.label[v] = -1
	}
	for _, v := range nodes {
		st.inS[v] = true
		st.label[v] = v
	}
	for _, v := range nodes {
		st.clusters[v] = &edgeClusterInfo{
			label: v,
			vol:   st.degreeIn(v),
			tree:  cluster.NewTree(v),
			depth: map[int]int{v: 0},
		}
	}
	return st
}

// degreeIn returns v's degree within the induced, uncut subgraph.
func (st *edgeState) degreeIn(v int) int {
	d := 0
	for _, u := range st.g.Neighbors(v) {
		if st.inS[u] && !st.isCut(v, u) {
			d++
		}
	}
	return d
}

func (st *edgeState) isCut(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	return st.cut[[2]int{u, v}]
}

func (st *edgeState) cutEdge(u, v int) {
	if u > v {
		u, v = v, u
	}
	if !st.cut[[2]int{u, v}] {
		st.cut[[2]int{u, v}] = true
		// Volumes shrink with the cut edge.
		st.clusters[st.label[u]].vol--
		st.clusters[st.label[v]].vol--
	}
}

func (st *edgeState) runPhase(phase int, m *rounds.Meter) {
	for _, c := range st.clusters {
		c.retired = false
	}
	st.seedActiveBlue(phase)
	for {
		proposals := st.collectProposals(phase)
		if len(proposals) == 0 {
			break
		}
		m.Charge("rg/propose", 2)
		st.resolveProposals(proposals, m)
	}
	depth := 0
	for _, c := range st.clusters {
		if c.maxDepth > depth {
			depth = c.maxDepth
		}
	}
	m.Charge("rg/congestion", int64(depth+1)*int64(phase+1))
}

func (st *edgeState) seedActiveBlue(phase int) {
	st.activeBlue = st.activeBlue[:0]
	for v := range st.inActive {
		st.inActive[v] = false
	}
	for v, ok := range st.inS {
		if !ok || bit(st.label[v], phase) != 0 {
			continue
		}
		for _, u := range st.g.Neighbors(v) {
			if st.inS[u] && !st.isCut(v, u) && bit(st.label[u], phase) == 1 {
				st.addActive(v)
				break
			}
		}
	}
}

func (st *edgeState) addActive(v int) {
	if !st.inActive[v] {
		st.inActive[v] = true
		st.activeBlue = append(st.activeBlue, v)
	}
}

// edgeProposal is one (blue node, red cluster) proposal carrying all of the
// node's uncut edges into that cluster (via is the smallest-id endpoint,
// used for the tree attachment). Unlike the node version, a blue node
// proposes to EVERY adjacent live red cluster: this guarantees that when a
// cluster retires, every remaining blue-to-it edge belongs to a proposer and
// gets cut, which is what preserves the phase-end invariant without killing
// nodes.
type edgeProposal struct {
	node   int
	target int // label of the proposed-to cluster
	via    int
	edges  int
}

func (st *edgeState) collectProposals(phase int) map[int][]edgeProposal {
	sort.Ints(st.activeBlue)
	kept := st.activeBlue[:0]
	proposals := make(map[int][]edgeProposal)
	for _, v := range st.activeBlue {
		if bit(st.label[v], phase) != 0 {
			st.inActive[v] = false
			continue
		}
		// Group v's uncut red edges by live target cluster.
		perTarget := make(map[int]*edgeProposal)
		anyLive := false
		for _, u := range st.g.Neighbors(v) {
			if !st.inS[u] || st.isCut(v, u) || bit(st.label[u], phase) != 1 {
				continue
			}
			lu := st.label[u]
			if st.clusters[lu].retired {
				continue
			}
			anyLive = true
			if p, ok := perTarget[lu]; ok {
				p.edges++
				if u < p.via {
					p.via = u
				}
			} else {
				perTarget[lu] = &edgeProposal{node: v, target: lu, via: u, edges: 1}
			}
		}
		if anyLive {
			for lu, p := range perTarget {
				proposals[lu] = append(proposals[lu], *p)
			}
			kept = append(kept, v)
		} else {
			st.inActive[v] = false
		}
	}
	st.activeBlue = kept
	return proposals
}

func (st *edgeState) resolveProposals(proposals map[int][]edgeProposal, m *rounds.Meter) {
	labels := make([]int, 0, len(proposals))
	maxDepth := 0
	for l := range proposals {
		labels = append(labels, l)
		if d := st.clusters[l].maxDepth; d > maxDepth {
			maxDepth = d
		}
	}
	sort.Ints(labels)
	m.Charge("rg/aggregate", 2*int64(maxDepth+1))
	m.ChargeMessages(int64(len(proposals)))

	// Simultaneous accept/retire decisions against this step's proposals.
	accepted := make(map[int]bool, len(labels))
	for _, l := range labels {
		x := st.clusters[l]
		edgeCount := 0
		for _, p := range proposals[l] {
			edgeCount += p.edges
		}
		if float64(edgeCount) >= st.delta*float64(x.vol) {
			accepted[l] = true
		} else {
			x.retired = true
		}
	}
	// Joins: each proposer joins its smallest-label accepting target.
	joinTarget := make(map[int]*edgeProposal)
	for _, l := range labels {
		if !accepted[l] {
			continue
		}
		for i := range proposals[l] {
			p := &proposals[l][i]
			if cur, ok := joinTarget[p.node]; !ok || cur.target > l {
				joinTarget[p.node] = p
			}
		}
	}
	for _, l := range labels {
		if accepted[l] {
			continue
		}
		// Retired: cut every proposal edge into this cluster, unless the
		// proposer joins it... which it cannot (it is retired), so cut all.
		for _, p := range proposals[l] {
			for _, u := range st.g.Neighbors(p.node) {
				if st.inS[u] && !st.isCut(p.node, u) && st.label[u] == l {
					st.cutEdge(p.node, u)
				}
			}
		}
	}
	// Apply joins in deterministic node order.
	joiners := make([]int, 0, len(joinTarget))
	for v := range joinTarget {
		joiners = append(joiners, v)
	}
	sort.Ints(joiners)
	for _, v := range joiners {
		p := joinTarget[v]
		st.join(st.clusters[p.target], *p)
	}
}

func (st *edgeState) join(x *edgeClusterInfo, p edgeProposal) {
	v := p.node
	if st.label[v] == x.label {
		return
	}
	old := st.clusters[st.label[v]]
	dv := st.degreeIn(v)
	old.vol -= dv
	st.label[v] = x.label
	x.vol += dv
	if err := x.tree.Add(v, p.via); err != nil {
		panic(fmt.Sprintf("rg: edge tree invariant broken: %v", err))
	}
	if d, ok := x.depth[v]; !ok || d > x.depth[p.via]+1 {
		x.depth[v] = x.depth[p.via] + 1
	}
	if x.depth[v] > x.maxDepth {
		x.maxDepth = x.depth[v]
	}
	for _, w := range st.g.Neighbors(v) {
		if st.inS[w] && !st.isCut(v, w) {
			st.addActive(w)
		}
	}
}

func (st *edgeState) result() *EdgeCarving {
	assign := make([]int, st.g.N())
	for v := range assign {
		assign[v] = cluster.Unclustered
	}
	var labels []int
	counts := make(map[int]int)
	for v, ok := range st.inS {
		if ok {
			counts[st.label[v]]++
		}
	}
	for l := range counts {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	id := make(map[int]int, len(labels))
	centers := make([]int, len(labels))
	trees := make([]*cluster.Tree, len(labels))
	for i, l := range labels {
		id[l] = i
		centers[i] = st.clusters[l].tree.Root
		trees[i] = st.clusters[l].tree
	}
	for v, ok := range st.inS {
		if ok {
			assign[v] = id[st.label[v]]
		}
	}
	cut := make([][2]int, 0, len(st.cut))
	for e := range st.cut {
		cut = append(cut, e)
	}
	sort.Slice(cut, func(i, j int) bool {
		if cut[i][0] != cut[j][0] {
			return cut[i][0] < cut[j][0]
		}
		return cut[i][1] < cut[j][1]
	})
	return &EdgeCarving{
		Carving: &cluster.Carving{Assign: assign, K: len(labels), Centers: centers, Trees: trees},
		Cut:     cut,
	}
}
