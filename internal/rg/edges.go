package rg

// This file implements the *edge version* of the deterministic weak-diameter
// carving, which the paper states alongside the node version ("all results
// in Table 2 ... also apply to the edge version, where we remove at most an
// ε fraction of the edges, instead of removing nodes. The proofs for the
// edge version are essentially the same").
//
// The skeleton is the node version's bit-phase growth with two changes:
//
//   - when a red cluster retires, the *edges* between it and its proposers
//     are cut instead of killing the proposers — every node stays alive and
//     ends up in some cluster;
//   - acceptance is measured in volume: a red cluster X accepts iff the
//     number of proposal edges is at least δ·vol(X) (vol = degree sum of
//     members in the remaining graph), with δ = ε/(4b). A retiring cluster
//     therefore cuts fewer than δ·vol(X) edges; summing vol over clusters
//     bounds each phase's cuts by 2δ·m, and the b phases by ε·m/2.
//
// The phase-end invariant carries over verbatim: any remaining (uncut) edge
// from a live blue node to a red cluster would have triggered a proposal, so
// after all phases every remaining inter-cluster edge is gone, i.e. the
// clusters are non-adjacent in the remaining graph.

import (
	"fmt"
	"sort"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/rounds"
)

// EdgeCarving is the result of the edge-version weak carving: a clustering
// of all nodes (nobody dies) plus the set of removed edges. Within the
// remaining graph (g minus Cut), distinct clusters are non-adjacent.
type EdgeCarving struct {
	Carving *cluster.Carving
	Cut     [][2]int // removed edges, canonical (u < v) order
}

// CarveEdges runs the edge-version weak carving on the subgraph induced by
// nodes (nil = all of g): it cuts at most an eps fraction of that subgraph's
// edges and clusters every node, with per-cluster Steiner trees as in the
// node version. Steiner trees only use uncut edges.
func CarveEdges(g *graph.Graph, nodes []int, eps float64, m *rounds.Meter) (*EdgeCarving, error) {
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("rg: eps %v outside (0, 1]", eps)
	}
	n := g.N()
	if nodes == nil {
		nodes = make([]int, n)
		for v := range nodes {
			nodes[v] = v
		}
	}
	st := newEdgeState(g, nodes, eps)
	for phase := 0; phase < st.b; phase++ {
		st.runPhase(phase, m)
	}
	return st.result(), nil
}

type edgeState struct {
	g     *graph.Graph
	b     int
	delta float64

	inS      []bool
	label    []int
	cut      map[[2]int]bool
	clusters map[int]*edgeClusterInfo

	activeBlue []int
	inActive   []bool

	// Proposal scratch, reused every step (mirroring the node version in
	// rg.go — the per-step maps this replaces were the hot-loop allocators
	// sdlint's hotpathalloc flagged): props collects this step's proposals
	// in blue-node order, grouped buckets them by target label (counting
	// scatter), propLabels/propEnds delimit the groups, propCount is the
	// per-label counting array (reset to zero after each step), and slot
	// dedups one node's proposals per target during its neighbor scan.
	props      []edgeProposal
	grouped    []edgeProposal
	propLabels []int
	propEnds   []int
	propCount  []int
	slot       []int

	// Resolution scratch: accepted marks this step's accepting labels,
	// joiners/joinIdx select each proposer's smallest-label accepted
	// target. All masks are reset before resolveProposals returns.
	accepted []bool
	joiners  []int
	joinIdx  []int
}

type edgeClusterInfo struct {
	label    int
	vol      int // degree sum of members in the remaining subgraph
	tree     *cluster.Tree
	depth    map[int]int
	maxDepth int
	retired  bool
}

func newEdgeState(g *graph.Graph, nodes []int, eps float64) *edgeState {
	n := g.N()
	st := &edgeState{
		g:         g,
		b:         labelBits(n),
		delta:     eps / (4 * float64(labelBits(n))),
		inS:       make([]bool, n),
		label:     make([]int, n),
		cut:       make(map[[2]int]bool),
		clusters:  make(map[int]*edgeClusterInfo, len(nodes)),
		inActive:  make([]bool, n),
		propCount: make([]int, n),
		slot:      make([]int, n),
		accepted:  make([]bool, n),
		joinIdx:   make([]int, n),
	}
	for v := range st.label {
		st.label[v] = -1
	}
	for _, v := range nodes {
		st.inS[v] = true
		st.label[v] = v
	}
	for _, v := range nodes {
		st.clusters[v] = &edgeClusterInfo{
			label: v,
			vol:   st.degreeIn(v),
			tree:  cluster.NewTree(v),
			depth: map[int]int{v: 0},
		}
	}
	return st
}

// degreeIn returns v's degree within the induced, uncut subgraph.
func (st *edgeState) degreeIn(v int) int {
	d := 0
	for _, u := range st.g.Neighbors(v) {
		if st.inS[u] && !st.isCut(v, u) {
			d++
		}
	}
	return d
}

func (st *edgeState) isCut(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	return st.cut[[2]int{u, v}]
}

func (st *edgeState) cutEdge(u, v int) {
	if u > v {
		u, v = v, u
	}
	if !st.cut[[2]int{u, v}] {
		st.cut[[2]int{u, v}] = true
		// Volumes shrink with the cut edge.
		st.clusters[st.label[u]].vol--
		st.clusters[st.label[v]].vol--
	}
}

func (st *edgeState) runPhase(phase int, m *rounds.Meter) {
	for _, c := range st.clusters {
		c.retired = false
	}
	st.seedActiveBlue(phase)
	for {
		if st.collectProposals(phase) == 0 {
			break
		}
		m.Charge("rg/propose", 2)
		st.resolveProposals(m)
	}
	depth := 0
	for _, c := range st.clusters {
		if c.maxDepth > depth {
			depth = c.maxDepth
		}
	}
	m.Charge("rg/congestion", int64(depth+1)*int64(phase+1))
}

// seedActiveBlue initializes the proposer candidate set for a phase: every
// blue node with at least one uncut edge to a red node.
//
//sdlint:hotpath
func (st *edgeState) seedActiveBlue(phase int) {
	st.activeBlue = st.activeBlue[:0]
	for v := range st.inActive {
		st.inActive[v] = false
	}
	for v, ok := range st.inS {
		if !ok || bit(st.label[v], phase) != 0 {
			continue
		}
		for _, u := range st.g.Neighbors(v) {
			if st.inS[u] && !st.isCut(v, u) && bit(st.label[u], phase) == 1 {
				st.addActive(v)
				break
			}
		}
	}
}

// addActive adds v to the candidate proposer set once.
//
//sdlint:hotpath
func (st *edgeState) addActive(v int) {
	if !st.inActive[v] {
		st.inActive[v] = true
		st.activeBlue = append(st.activeBlue, v)
	}
}

// edgeProposal is one (blue node, red cluster) proposal carrying all of the
// node's uncut edges into that cluster (via is the smallest-id endpoint,
// used for the tree attachment). Unlike the node version, a blue node
// proposes to EVERY adjacent live red cluster: this guarantees that when a
// cluster retires, every remaining blue-to-it edge belongs to a proposer and
// gets cut, which is what preserves the phase-end invariant without killing
// nodes.
type edgeProposal struct {
	node   int
	target int // label of the proposed-to cluster
	via    int
	edges  int
}

// collectProposals computes this step's proposals in deterministic order:
// every live blue candidate proposes to EVERY adjacent live red cluster
// (see edgeProposal), its uncut edges into each target merged into one
// proposal during the neighbor scan via the slot cursor. The proposals
// are bucketed by target into the reusable grouped/propLabels scratch
// (counting scatter — no per-step map) and their count is returned.
//
//sdlint:hotpath
func (st *edgeState) collectProposals(phase int) int {
	sort.Ints(st.activeBlue)
	kept := st.activeBlue[:0]
	st.props = st.props[:0]
	for _, v := range st.activeBlue {
		if bit(st.label[v], phase) != 0 {
			st.inActive[v] = false
			continue
		}
		// Merge v's uncut red edges by live target cluster. slot holds
		// 1-based indexes into props for targets seen during this node's
		// scan and is zeroed again before the next node.
		vStart := len(st.props)
		for _, u := range st.g.Neighbors(v) {
			if !st.inS[u] || st.isCut(v, u) || bit(st.label[u], phase) != 1 {
				continue
			}
			lu := st.label[u]
			if st.clusters[lu].retired {
				continue
			}
			if idx := st.slot[lu]; idx != 0 {
				p := &st.props[idx-1]
				p.edges++
				if u < p.via {
					p.via = u
				}
			} else {
				st.props = append(st.props, edgeProposal{node: v, target: lu, via: u, edges: 1})
				st.slot[lu] = len(st.props)
			}
		}
		for i := vStart; i < len(st.props); i++ {
			st.slot[st.props[i].target] = 0
		}
		if len(st.props) > vStart {
			kept = append(kept, v)
		} else {
			st.inActive[v] = false
		}
	}
	st.activeBlue = kept
	st.groupProposals()
	return len(st.props)
}

// groupProposals buckets st.props by target label into st.grouped:
// distinct labels sorted in st.propLabels, group i ending at
// st.propEnds[i], proposals within a group in blue-node order (the
// order the former per-label map append produced). propCount is used as
// the counting/cursor array and left zeroed.
//
//sdlint:hotpath
func (st *edgeState) groupProposals() {
	st.propLabels = st.propLabels[:0]
	for _, p := range st.props {
		if st.propCount[p.target] == 0 {
			st.propLabels = append(st.propLabels, p.target)
		}
		st.propCount[p.target]++
	}
	sort.Ints(st.propLabels)
	// Size grouped to props by appending (reuse idiom — steady state has
	// the capacity); every slot is rewritten by the scatter below.
	st.grouped = st.grouped[:0]
	st.grouped = append(st.grouped, st.props...)
	st.propEnds = st.propEnds[:0]
	start := 0
	for _, l := range st.propLabels {
		c := st.propCount[l]
		st.propCount[l] = start // repurpose as scatter cursor
		start += c
		st.propEnds = append(st.propEnds, start)
	}
	for _, p := range st.props {
		st.grouped[st.propCount[p.target]] = p
		st.propCount[p.target]++
	}
	for _, l := range st.propLabels {
		st.propCount[l] = 0
	}
}

// resolveProposals applies accept/retire decisions for one step over the
// grouped proposals, entirely on the reusable resolution scratch.
func (st *edgeState) resolveProposals(m *rounds.Meter) {
	maxDepth := 0
	for _, l := range st.propLabels {
		if d := st.clusters[l].maxDepth; d > maxDepth {
			maxDepth = d
		}
	}
	m.Charge("rg/aggregate", 2*int64(maxDepth+1))
	m.ChargeMessages(int64(len(st.propLabels)))

	// Simultaneous accept/retire decisions against this step's proposals.
	start := 0
	for i, l := range st.propLabels {
		x := st.clusters[l]
		edgeCount := 0
		for _, p := range st.grouped[start:st.propEnds[i]] {
			edgeCount += p.edges
		}
		start = st.propEnds[i]
		if float64(edgeCount) >= st.delta*float64(x.vol) {
			st.accepted[l] = true
		} else {
			x.retired = true
		}
	}
	// Joins: each proposer joins its smallest-label accepting target.
	// Groups run in ascending label order, so the first accepted group
	// claiming a node is that node's smallest-label target.
	st.joiners = st.joiners[:0]
	start = 0
	for i, l := range st.propLabels {
		end := st.propEnds[i]
		if st.accepted[l] {
			for j := start; j < end; j++ {
				if v := st.grouped[j].node; st.joinIdx[v] == 0 {
					st.joinIdx[v] = j + 1
					st.joiners = append(st.joiners, v)
				}
			}
		}
		start = end
	}
	start = 0
	for i, l := range st.propLabels {
		end := st.propEnds[i]
		if !st.accepted[l] {
			// Retired: cut every proposal edge into this cluster, unless the
			// proposer joins it... which it cannot (it is retired), so cut all.
			for j := start; j < end; j++ {
				p := st.grouped[j]
				for _, u := range st.g.Neighbors(p.node) {
					if st.inS[u] && !st.isCut(p.node, u) && st.label[u] == l {
						st.cutEdge(p.node, u)
					}
				}
			}
		}
		start = end
	}
	// Apply joins in deterministic node order.
	sort.Ints(st.joiners)
	for _, v := range st.joiners {
		p := st.grouped[st.joinIdx[v]-1]
		st.join(st.clusters[p.target], p)
	}
	// Reset the per-step scratch masks.
	for _, v := range st.joiners {
		st.joinIdx[v] = 0
	}
	for _, l := range st.propLabels {
		st.accepted[l] = false
	}
}

func (st *edgeState) join(x *edgeClusterInfo, p edgeProposal) {
	v := p.node
	if st.label[v] == x.label {
		return
	}
	old := st.clusters[st.label[v]]
	dv := st.degreeIn(v)
	old.vol -= dv
	st.label[v] = x.label
	x.vol += dv
	if err := x.tree.Add(v, p.via); err != nil {
		panic(fmt.Sprintf("rg: edge tree invariant broken: %v", err))
	}
	if d, ok := x.depth[v]; !ok || d > x.depth[p.via]+1 {
		x.depth[v] = x.depth[p.via] + 1
	}
	if x.depth[v] > x.maxDepth {
		x.maxDepth = x.depth[v]
	}
	for _, w := range st.g.Neighbors(v) {
		if st.inS[w] && !st.isCut(v, w) {
			st.addActive(w)
		}
	}
}

func (st *edgeState) result() *EdgeCarving {
	assign := make([]int, st.g.N())
	for v := range assign {
		assign[v] = cluster.Unclustered
	}
	var labels []int
	counts := make(map[int]int)
	for v, ok := range st.inS {
		if ok {
			counts[st.label[v]]++
		}
	}
	for l := range counts {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	id := make(map[int]int, len(labels))
	centers := make([]int, len(labels))
	trees := make([]*cluster.Tree, len(labels))
	for i, l := range labels {
		id[l] = i
		centers[i] = st.clusters[l].tree.Root
		trees[i] = st.clusters[l].tree
	}
	for v, ok := range st.inS {
		if ok {
			assign[v] = id[st.label[v]]
		}
	}
	cut := make([][2]int, 0, len(st.cut))
	for e := range st.cut {
		cut = append(cut, e)
	}
	sort.Slice(cut, func(i, j int) bool {
		if cut[i][0] != cut[j][0] {
			return cut[i][0] < cut[j][0]
		}
		return cut[i][1] < cut[j][1]
	})
	return &EdgeCarving{
		Carving: &cluster.Carving{Assign: assign, K: len(labels), Centers: centers, Trees: trees},
		Cut:     cut,
	}
}
