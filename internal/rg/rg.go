// Package rg implements the deterministic weak-diameter ball carving of
// Rozhoň and Ghaffari [RG20], which the paper uses as its black-box
// algorithm A (the paper plugs in the optimized variant of Ghaffari, Grunau,
// and Rozhoň [GGR21]; see DESIGN.md for the substitution note).
//
// Given an n-node graph and a boundary parameter ε, Carve removes at most an
// ε fraction of the nodes and clusters the rest into non-adjacent clusters,
// each augmented with a Steiner tree in the host graph such that
//
//   - every cluster member is a tree node (relays may be non-members or even
//     dead nodes, which is exactly why the diameter guarantee is weak);
//   - the tree depth is R(n,ε) = O(log³ n / ε);
//   - each edge belongs to at most L(n,ε) = b = ⌈log₂ n⌉ trees.
//
// The algorithm runs in b phases, one per identifier bit. In phase i, a
// cluster is red if bit i of its label is 1 and blue otherwise. Each step,
// every live blue node adjacent to a live, non-retired red cluster proposes
// to its smallest-label candidate through its smallest-id neighbor in that
// cluster. A red cluster that would grow by at least δ·|C| (δ = ε/(2b))
// accepts all proposers — they adopt its label and attach to its Steiner
// tree through the proposal edge — and otherwise it retires for the phase
// and its proposers die. The classic invariant makes this correct: a node
// only ever joins an *adjacent* cluster, and adjacent live nodes agree on
// all previously processed label bits, so processed bits never regress.
package rg

import (
	"fmt"
	"math/bits"
	"sort"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/rounds"
)

// Params reports the theoretical guarantees of Carve for a given n and ε,
// with explicit constants matching the implementation. Theorem 2.1 consumes
// these bounds when sizing its BFS windows.
type Params struct {
	Bits       int // b: number of label bits (phases)
	Delta      float64
	MaxDepth   int // R(n, ε) bound on Steiner tree depth
	Congestion int // L(n, ε) bound on per-edge tree count
}

// ParamsFor computes the parameter bounds for an n-node run with boundary ε.
func ParamsFor(n int, eps float64) Params {
	b := labelBits(n)
	delta := eps / (2 * float64(b))
	// A cluster grows for at most log_{1+δ}(n) accepting steps per phase and
	// can grow in every phase; each accepting step deepens its tree by at
	// most one hop.
	perPhase := growthSteps(n, delta)
	return Params{
		Bits:       b,
		Delta:      delta,
		MaxDepth:   b * perPhase,
		Congestion: b,
	}
}

// Carve runs the deterministic weak-diameter ball carving on the subgraph
// induced by nodes (nil means all of g), with boundary parameter
// eps ∈ (0, 1]. The returned carving assigns cluster ids to surviving nodes
// of the subgraph and leaves every other node Unclustered.
func Carve(g *graph.Graph, nodes []int, eps float64, m *rounds.Meter) (*cluster.Carving, error) {
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("rg: eps %v outside (0, 1]", eps)
	}
	n := g.N()
	if nodes == nil {
		nodes = make([]int, n)
		for v := range nodes {
			nodes[v] = v
		}
	}
	st := newState(g, nodes, eps)
	for phase := 0; phase < st.b; phase++ {
		st.runPhase(phase, m)
	}
	return st.carving(), nil
}

type proposal struct {
	node int
	via  int
}

type clusterInfo struct {
	label    int
	size     int // live members
	tree     *cluster.Tree
	depth    map[int]int
	maxDepth int
	retired  bool
}

type state struct {
	g     *graph.Graph
	b     int
	delta float64

	inS      []bool
	alive    []bool
	label    []int // current cluster label, -1 for dead / outside S
	clusters map[int]*clusterInfo

	activeBlue []int  // candidate proposers, maintained incrementally
	inActive   []bool // membership mask for activeBlue
}

func newState(g *graph.Graph, nodes []int, eps float64) *state {
	n := g.N()
	st := &state{
		g:        g,
		b:        labelBits(n),
		delta:    eps / (2 * float64(labelBits(n))),
		inS:      make([]bool, n),
		alive:    make([]bool, n),
		label:    make([]int, n),
		clusters: make(map[int]*clusterInfo, len(nodes)),
		inActive: make([]bool, n),
	}
	for v := range st.label {
		st.label[v] = -1
	}
	for _, v := range nodes {
		st.inS[v] = true
		st.alive[v] = true
		st.label[v] = v
		st.clusters[v] = &clusterInfo{
			label: v,
			size:  1,
			tree:  cluster.NewTree(v),
			depth: map[int]int{v: 0},
		}
	}
	return st
}

func bit(x, i int) int { return (x >> i) & 1 }

func labelBits(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// growthSteps returns the maximum number of accepting steps a cluster can
// have within one phase: growing by a factor (1+δ) from size 1 cannot exceed
// n members.
func growthSteps(n int, delta float64) int {
	steps := 1
	size := 1.0
	for size < float64(n) {
		size *= 1 + delta
		size += 1 // acceptance adds at least one node even for tiny clusters
		steps++
		if steps > 64*1024*1024 {
			break // defensive; unreachable for sane (n, δ)
		}
	}
	return steps
}

// runPhase executes one bit phase to quiescence.
func (st *state) runPhase(phase int, m *rounds.Meter) {
	for _, c := range st.clusters {
		c.retired = false
	}
	st.seedActiveBlue(phase)

	for {
		proposals := st.collectProposals(phase)
		if len(proposals) == 0 {
			break
		}
		m.Charge("rg/propose", 2)
		st.resolveProposals(phase, proposals, m)
	}
	// Once per phase: pipelined tree maintenance over congested edges.
	depth := 0
	for _, c := range st.clusters {
		if c.maxDepth > depth {
			depth = c.maxDepth
		}
	}
	m.Charge("rg/congestion", int64(depth+1)*int64(phase+1))
}

// seedActiveBlue initializes the proposer candidate set for a phase: every
// live blue node with at least one live red neighbor.
func (st *state) seedActiveBlue(phase int) {
	st.activeBlue = st.activeBlue[:0]
	for v := range st.inActive {
		st.inActive[v] = false
	}
	for v, ok := range st.alive {
		if !ok || bit(st.label[v], phase) != 0 {
			continue
		}
		for _, u := range st.g.Neighbors(v) {
			if st.alive[u] && bit(st.label[u], phase) == 1 {
				st.addActive(v)
				break
			}
		}
	}
}

func (st *state) addActive(v int) {
	if !st.inActive[v] {
		st.inActive[v] = true
		st.activeBlue = append(st.activeBlue, v)
	}
}

// collectProposals computes this step's proposals in deterministic order:
// every live blue candidate proposes to the smallest-label non-retired red
// cluster among its neighbors, through its smallest-id member neighbor.
func (st *state) collectProposals(phase int) map[int][]proposal {
	sort.Ints(st.activeBlue)
	kept := st.activeBlue[:0]
	proposals := make(map[int][]proposal)
	for _, v := range st.activeBlue {
		if !st.alive[v] || bit(st.label[v], phase) != 0 {
			st.inActive[v] = false // joined a red cluster or died
			continue
		}
		bestLabel, bestVia, anyRed := -1, -1, false
		for _, u := range st.g.Neighbors(v) {
			if !st.alive[u] || bit(st.label[u], phase) != 1 {
				continue
			}
			anyRed = true
			lu := st.label[u]
			if st.clusters[lu].retired {
				continue
			}
			if bestLabel == -1 || lu < bestLabel || (lu == bestLabel && u < bestVia) {
				bestLabel, bestVia = lu, u
			}
		}
		if bestLabel >= 0 {
			proposals[bestLabel] = append(proposals[bestLabel], proposal{node: v, via: bestVia})
			kept = append(kept, v)
		} else if anyRed {
			// All adjacent red clusters are retired; the node can never be
			// asked again this phase unless a neighbor joins a live red
			// cluster, which re-adds it.
			st.inActive[v] = false
		} else {
			st.inActive[v] = false
		}
	}
	st.activeBlue = kept
	return proposals
}

// resolveProposals applies accept/retire decisions for one step.
func (st *state) resolveProposals(phase int, proposals map[int][]proposal, m *rounds.Meter) {
	labels := make([]int, 0, len(proposals))
	maxDepth := 0
	for l := range proposals {
		labels = append(labels, l)
		if d := st.clusters[l].maxDepth; d > maxDepth {
			maxDepth = d
		}
	}
	sort.Ints(labels)
	m.Charge("rg/aggregate", 2*int64(maxDepth+1))
	m.ChargeMessages(int64(len(proposals)))

	for _, l := range labels {
		x := st.clusters[l]
		ps := proposals[l]
		if float64(len(ps)) >= st.delta*float64(x.size) {
			st.accept(x, ps)
		} else {
			x.retired = true
			for _, p := range ps {
				if st.label[p.node] != l && st.alive[p.node] && bit(st.label[p.node], phase) == 0 {
					st.kill(p.node)
				}
			}
		}
	}
}

func (st *state) accept(x *clusterInfo, ps []proposal) {
	for _, p := range ps {
		v := p.node
		if !st.alive[v] || st.label[v] == x.label {
			continue // resolved earlier in this step by a smaller-label cluster
		}
		old := st.clusters[st.label[v]]
		old.size--
		st.label[v] = x.label
		x.size++
		// The via node is a live member of x, hence already in x's tree.
		if err := x.tree.Add(v, p.via); err != nil {
			// Cannot happen by the membership invariant; fail loudly in
			// tests rather than corrupting the tree.
			panic(fmt.Sprintf("rg: tree invariant broken: %v", err))
		}
		if d, ok := x.depth[v]; !ok || d > x.depth[p.via]+1 {
			x.depth[v] = x.depth[p.via] + 1
		}
		if x.depth[v] > x.maxDepth {
			x.maxDepth = x.depth[v]
		}
		// Blue neighbors of the newly red node become candidates.
		for _, w := range st.g.Neighbors(v) {
			if st.alive[w] {
				st.addActive(w)
			}
		}
	}
}

func (st *state) kill(v int) {
	st.clusters[st.label[v]].size--
	st.alive[v] = false
	st.label[v] = -1
}

// carving materializes the final clusters in deterministic label order.
func (st *state) carving() *cluster.Carving {
	assign := make([]int, st.g.N())
	for v := range assign {
		assign[v] = cluster.Unclustered
	}
	labels := make([]int, 0, len(st.clusters))
	for l, c := range st.clusters {
		if c.size > 0 {
			labels = append(labels, l)
		}
	}
	sort.Ints(labels)
	id := make(map[int]int, len(labels))
	centers := make([]int, len(labels))
	trees := make([]*cluster.Tree, len(labels))
	for i, l := range labels {
		id[l] = i
		centers[i] = st.clusters[l].tree.Root
		trees[i] = st.clusters[l].tree
	}
	for v, ok := range st.alive {
		if ok {
			assign[v] = id[st.label[v]]
		}
	}
	return &cluster.Carving{Assign: assign, K: len(labels), Centers: centers, Trees: trees}
}
