// Package rg implements the deterministic weak-diameter ball carving of
// Rozhoň and Ghaffari [RG20], which the paper uses as its black-box
// algorithm A (the paper plugs in the optimized variant of Ghaffari, Grunau,
// and Rozhoň [GGR21]; see DESIGN.md for the substitution note).
//
// Given an n-node graph and a boundary parameter ε, Carve removes at most an
// ε fraction of the nodes and clusters the rest into non-adjacent clusters,
// each augmented with a Steiner tree in the host graph such that
//
//   - every cluster member is a tree node (relays may be non-members or even
//     dead nodes, which is exactly why the diameter guarantee is weak);
//   - the tree depth is R(n,ε) = O(log³ n / ε);
//   - each edge belongs to at most L(n,ε) = b = ⌈log₂ n⌉ trees.
//
// The algorithm runs in b phases, one per identifier bit. In phase i, a
// cluster is red if bit i of its label is 1 and blue otherwise. Each step,
// every live blue node adjacent to a live, non-retired red cluster proposes
// to its smallest-label candidate through its smallest-id neighbor in that
// cluster. A red cluster that would grow by at least δ·|C| (δ = ε/(2b))
// accepts all proposers — they adopt its label and attach to its Steiner
// tree through the proposal edge — and otherwise it retires for the phase
// and its proposers die. The classic invariant makes this correct: a node
// only ever joins an *adjacent* cluster, and adjacent live nodes agree on
// all previously processed label bits, so processed bits never regress.
package rg

import (
	"fmt"
	"math/bits"
	"slices"

	"strongdecomp/internal/cluster"
	"strongdecomp/internal/graph"
	"strongdecomp/internal/rounds"
)

// Params reports the theoretical guarantees of Carve for a given n and ε,
// with explicit constants matching the implementation. Theorem 2.1 consumes
// these bounds when sizing its BFS windows.
type Params struct {
	Bits       int // b: number of label bits (phases)
	Delta      float64
	MaxDepth   int // R(n, ε) bound on Steiner tree depth
	Congestion int // L(n, ε) bound on per-edge tree count
}

// ParamsFor computes the parameter bounds for an n-node run with boundary ε.
func ParamsFor(n int, eps float64) Params {
	b := labelBits(n)
	delta := eps / (2 * float64(b))
	// A cluster grows for at most log_{1+δ}(n) accepting steps per phase and
	// can grow in every phase; each accepting step deepens its tree by at
	// most one hop.
	perPhase := growthSteps(n, delta)
	return Params{
		Bits:       b,
		Delta:      delta,
		MaxDepth:   b * perPhase,
		Congestion: b,
	}
}

// Carve runs the deterministic weak-diameter ball carving on the subgraph
// induced by nodes (nil means all of g), with boundary parameter
// eps ∈ (0, 1]. The returned carving assigns cluster ids to surviving nodes
// of the subgraph and leaves every other node Unclustered.
func Carve(g *graph.Graph, nodes []int, eps float64, m *rounds.Meter) (*cluster.Carving, error) {
	return carve(g, nodes, eps, m, graph.ParallelConfig{})
}

// CarveParallel is Carve with frontier-parallel phase scans: when cfg
// enables parallelism for the carved set's size, the two embarrassingly
// parallel read-only scans of each step — seeding the proposer candidate
// set and computing every candidate's best (label, via) choice — are
// chunked across cfg.Workers goroutines. All state mutation (proposal
// resolution, acceptance, tree growth) stays sequential, so the carving
// is bit-identical to Carve's: the parallel scans fill position-indexed
// slots that a sequential merge consumes in the exact order the
// sequential loop would have produced. Round-complexity charges to m are
// likewise identical — parallelism is a wall-clock optimization, not a
// model change.
func CarveParallel(g *graph.Graph, nodes []int, eps float64, m *rounds.Meter, cfg graph.ParallelConfig) (*cluster.Carving, error) {
	return carve(g, nodes, eps, m, cfg)
}

func carve(g *graph.Graph, nodes []int, eps float64, m *rounds.Meter, cfg graph.ParallelConfig) (*cluster.Carving, error) {
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("rg: eps %v outside (0, 1]", eps)
	}
	n := g.N()
	if nodes == nil {
		nodes = make([]int, n)
		for v := range nodes {
			nodes[v] = v
		}
	}
	st := newState(g, nodes, eps)
	if cfg.Enabled(len(nodes)) {
		st.workers = cfg.Workers
	}
	for phase := 0; phase < st.b; phase++ {
		st.runPhase(phase, m)
	}
	return st.carving(), nil
}

type proposal struct {
	label int // proposed-to cluster
	node  int
	via   int
}

// clusterInfo is the per-cluster growth state. Labels are node ids, so the
// state stores these as one flat slice indexed by label instead of a
// map[int]*clusterInfo — no per-node allocation. The Steiner tree and depth
// table are nil until the cluster's first acceptance: a nil tree means "the
// singleton tree rooted at the label" and a nil depth table means
// "{root: 0}", which is what the overwhelming majority of clusters (they
// retire without ever growing) would otherwise allocate eagerly.
type clusterInfo struct {
	size     int // live members
	tree     *cluster.Tree
	depth    map[int]int
	maxDepth int
	retired  bool
}

// propSlot is one candidate's result from a parallel collect scan,
// indexed by the candidate's position in the sorted activeBlue slice.
// label -1 means the candidate found no live non-retired red cluster (or
// died / turned red) and drops out of the active set at merge time.
type propSlot struct {
	label int
	via   int
}

type state struct {
	g       *graph.Graph
	b       int
	delta   float64
	workers int // >1 enables the frontier-parallel phase scans

	nodes    []int // the carved set S; every cluster label is one of these
	inS      []bool
	alive    []bool
	label    []int         // current cluster label, -1 for dead / outside S
	clusters []clusterInfo // indexed by label; meaningful only for labels in S

	activeBlue []int      // candidate proposers, maintained incrementally
	inActive   []bool     // membership mask for activeBlue
	slots      []propSlot // parallel collect results, one per activeBlue index

	// Proposal scratch, reused every step: props collects this step's
	// proposals in blue-node order, grouped holds them bucketed by label
	// (CSR-style counting scatter), propLabels the sorted distinct labels,
	// propEnds the per-group end offsets into grouped, and propCount the
	// per-label counting array (always reset to zero after a step).
	props      []proposal
	grouped    []proposal
	propLabels []int
	propEnds   []int
	propCount  []int
}

func newState(g *graph.Graph, nodes []int, eps float64) *state {
	n := g.N()
	st := &state{
		g:         g,
		b:         labelBits(n),
		delta:     eps / (2 * float64(labelBits(n))),
		nodes:     nodes,
		inS:       make([]bool, n),
		alive:     make([]bool, n),
		label:     make([]int, n),
		clusters:  make([]clusterInfo, n),
		inActive:  make([]bool, n),
		propCount: make([]int, n),
	}
	for v := range st.label {
		st.label[v] = -1
	}
	for _, v := range nodes {
		st.inS[v] = true
		st.alive[v] = true
		st.label[v] = v
		st.clusters[v].size = 1
	}
	return st
}

// ensureTree materializes x's Steiner tree and depth table on first growth;
// l is x's label (and tree root).
func (st *state) ensureTree(x *clusterInfo, l int) {
	if x.tree == nil {
		x.tree = cluster.NewTree(l)
		x.depth = map[int]int{l: 0}
	}
}

func bit(x, i int) int { return (x >> i) & 1 }

func labelBits(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// growthSteps returns the maximum number of accepting steps a cluster can
// have within one phase: growing by a factor (1+δ) from size 1 cannot exceed
// n members.
func growthSteps(n int, delta float64) int {
	steps := 1
	size := 1.0
	for size < float64(n) {
		size *= 1 + delta
		size += 1 // acceptance adds at least one node even for tiny clusters
		steps++
		if steps > 64*1024*1024 {
			break // defensive; unreachable for sane (n, δ)
		}
	}
	return steps
}

// runPhase executes one bit phase to quiescence.
func (st *state) runPhase(phase int, m *rounds.Meter) {
	// Cluster labels are exactly the node ids of S, so the per-phase scans
	// walk the carved set, not all of the host graph's cluster slots.
	for _, l := range st.nodes {
		st.clusters[l].retired = false
	}
	if st.workers > 1 {
		st.seedActiveBlueParallel(phase)
	} else {
		st.seedActiveBlue(phase)
	}

	for {
		var pending int
		if st.workers > 1 {
			pending = st.collectProposalsParallel(phase)
		} else {
			pending = st.collectProposals(phase)
		}
		if pending == 0 {
			break
		}
		m.Charge("rg/propose", 2)
		st.resolveProposals(phase, m)
	}
	// Once per phase: pipelined tree maintenance over congested edges.
	depth := 0
	for _, l := range st.nodes {
		if d := st.clusters[l].maxDepth; d > depth {
			depth = d
		}
	}
	m.Charge("rg/congestion", int64(depth+1)*int64(phase+1))
}

// seedActiveBlue initializes the proposer candidate set for a phase: every
// live blue node with at least one live red neighbor.
//
//sdlint:hotpath
func (st *state) seedActiveBlue(phase int) {
	st.activeBlue = st.activeBlue[:0]
	for v := range st.inActive {
		st.inActive[v] = false
	}
	for v, ok := range st.alive {
		if !ok || bit(st.label[v], phase) != 0 {
			continue
		}
		for _, u := range st.g.Neighbors(v) {
			if st.alive[u] && bit(st.label[u], phase) == 1 {
				st.addActive(v)
				break
			}
		}
	}
}

// seedActiveBlueParallel computes the same candidate set as
// seedActiveBlue with the per-node test chunked across workers: each
// chunk writes inActive[v] for every v in its range (which doubles as
// the reset the sequential path does up front), then a sequential
// ascending compaction rebuilds activeBlue — the same ascending order
// the sequential scan appends in.
func (st *state) seedActiveBlueParallel(phase int) {
	n := len(st.inActive)
	graph.ForChunks(n, st.workers, func(_, lo, hi int) {
		st.seedScan(phase, lo, hi)
	})
	st.activeBlue = st.activeBlue[:0]
	for v := 0; v < n; v++ {
		if st.inActive[v] {
			st.activeBlue = append(st.activeBlue, v)
		}
	}
}

// seedScan is seedActiveBlueParallel's chunk body: a pure function of
// the (stable during seeding) alive/label arrays, writing only the
// chunk's own inActive range.
//
//sdlint:hotpath
func (st *state) seedScan(phase, lo, hi int) {
	for v := lo; v < hi; v++ {
		active := false
		if st.alive[v] && bit(st.label[v], phase) == 0 {
			for _, u := range st.g.Neighbors(v) {
				if st.alive[u] && bit(st.label[u], phase) == 1 {
					active = true
					break
				}
			}
		}
		st.inActive[v] = active
	}
}

// addActive adds v to the candidate proposer set once.
//
//sdlint:hotpath
func (st *state) addActive(v int) {
	if !st.inActive[v] {
		st.inActive[v] = true
		st.activeBlue = append(st.activeBlue, v)
	}
}

// collectProposals computes this step's proposals in deterministic order:
// every live blue candidate proposes to the smallest-label non-retired red
// cluster among its neighbors, through its smallest-id member neighbor. The
// proposals are bucketed by label into the reusable grouped/propLabels
// scratch (counting scatter — no per-step map) and their count is returned.
//
//sdlint:hotpath
func (st *state) collectProposals(phase int) int {
	slices.Sort(st.activeBlue)
	kept := st.activeBlue[:0]
	st.props = st.props[:0]
	for _, v := range st.activeBlue {
		if !st.alive[v] || bit(st.label[v], phase) != 0 {
			st.inActive[v] = false // joined a red cluster or died
			continue
		}
		bestLabel, bestVia, anyRed := -1, -1, false
		for _, u := range st.g.Neighbors(v) {
			if !st.alive[u] || bit(st.label[u], phase) != 1 {
				continue
			}
			anyRed = true
			lu := st.label[u]
			if st.clusters[lu].retired {
				continue
			}
			if bestLabel == -1 || lu < bestLabel || (lu == bestLabel && u < bestVia) {
				bestLabel, bestVia = lu, u
			}
		}
		if bestLabel >= 0 {
			st.props = append(st.props, proposal{label: bestLabel, node: v, via: bestVia})
			kept = append(kept, v)
		} else if anyRed {
			// All adjacent red clusters are retired; the node can never be
			// asked again this phase unless a neighbor joins a live red
			// cluster, which re-adds it.
			st.inActive[v] = false
		} else {
			st.inActive[v] = false
		}
	}
	st.activeBlue = kept
	st.groupProposals()
	return len(st.props)
}

// collectProposalsParallel computes the same proposals as
// collectProposals: the per-candidate best-(label, via) search — a
// read-only scan over alive/label/retired, which only resolveProposals
// mutates — is chunked across workers into position-indexed slots, and a
// sequential merge then replays the sequential loop's exact
// keep/drop/append decisions from those slots.
func (st *state) collectProposalsParallel(phase int) int {
	slices.Sort(st.activeBlue)
	if cap(st.slots) < len(st.activeBlue) {
		st.slots = make([]propSlot, len(st.activeBlue))
	}
	st.slots = st.slots[:len(st.activeBlue)]
	graph.ForChunks(len(st.activeBlue), st.workers, func(_, lo, hi int) {
		st.slotScan(phase, lo, hi)
	})
	kept := st.activeBlue[:0]
	st.props = st.props[:0]
	for i, v := range st.activeBlue {
		if l := st.slots[i].label; l >= 0 {
			st.props = append(st.props, proposal{label: l, node: v, via: st.slots[i].via})
			kept = append(kept, v)
		} else {
			st.inActive[v] = false
		}
	}
	st.activeBlue = kept
	st.groupProposals()
	return len(st.props)
}

// slotScan is collectProposalsParallel's chunk body: candidate i's
// smallest-(label, via) red neighbor, or label -1 when it has none (dead,
// turned red, or all adjacent red clusters retired — the cases the
// sequential loop drops from the active set).
//
//sdlint:hotpath
func (st *state) slotScan(phase, lo, hi int) {
	for i := lo; i < hi; i++ {
		v := st.activeBlue[i]
		sl := &st.slots[i]
		sl.label, sl.via = -1, -1
		if !st.alive[v] || bit(st.label[v], phase) != 0 {
			continue
		}
		for _, u := range st.g.Neighbors(v) {
			if !st.alive[u] || bit(st.label[u], phase) != 1 {
				continue
			}
			lu := st.label[u]
			if st.clusters[lu].retired {
				continue
			}
			if sl.label == -1 || lu < sl.label || (lu == sl.label && u < sl.via) {
				sl.label, sl.via = lu, u
			}
		}
	}
}

// groupProposals buckets st.props by label into st.grouped: distinct labels
// sorted in st.propLabels, group i ending at st.propEnds[i], proposals
// within a group in blue-node order (matching the former per-label append
// order). propCount is used as the counting/cursor array and left zeroed.
//
//sdlint:hotpath
func (st *state) groupProposals() {
	st.propLabels = st.propLabels[:0]
	for _, p := range st.props {
		if st.propCount[p.label] == 0 {
			st.propLabels = append(st.propLabels, p.label)
		}
		st.propCount[p.label]++
	}
	slices.Sort(st.propLabels)
	// Size grouped to props by appending (reuse idiom — steady state has
	// the capacity); every slot is rewritten by the scatter below.
	st.grouped = st.grouped[:0]
	st.grouped = append(st.grouped, st.props...)
	st.propEnds = st.propEnds[:0]
	start := 0
	for _, l := range st.propLabels {
		c := st.propCount[l]
		st.propCount[l] = start // repurpose as scatter cursor
		start += c
		st.propEnds = append(st.propEnds, start)
	}
	for _, p := range st.props {
		st.grouped[st.propCount[p.label]] = p
		st.propCount[p.label]++
	}
	for _, l := range st.propLabels {
		st.propCount[l] = 0
	}
}

// resolveProposals applies accept/retire decisions for one step over the
// grouped proposals.
func (st *state) resolveProposals(phase int, m *rounds.Meter) {
	maxDepth := 0
	for _, l := range st.propLabels {
		if d := st.clusters[l].maxDepth; d > maxDepth {
			maxDepth = d
		}
	}
	m.Charge("rg/aggregate", 2*int64(maxDepth+1))
	m.ChargeMessages(int64(len(st.propLabels)))

	start := 0
	for i, l := range st.propLabels {
		x := &st.clusters[l]
		ps := st.grouped[start:st.propEnds[i]]
		start = st.propEnds[i]
		if float64(len(ps)) >= st.delta*float64(x.size) {
			st.accept(x, l, ps)
		} else {
			x.retired = true
			for _, p := range ps {
				if st.label[p.node] != l && st.alive[p.node] && bit(st.label[p.node], phase) == 0 {
					st.kill(p.node)
				}
			}
		}
	}
}

func (st *state) accept(x *clusterInfo, l int, ps []proposal) {
	for _, p := range ps {
		v := p.node
		if !st.alive[v] || st.label[v] == l {
			continue // resolved earlier in this step by a smaller-label cluster
		}
		st.ensureTree(x, l)
		st.clusters[st.label[v]].size--
		st.label[v] = l
		x.size++
		// The via node is a live member of x, hence already in x's tree.
		if err := x.tree.Add(v, p.via); err != nil {
			// Cannot happen by the membership invariant; fail loudly in
			// tests rather than corrupting the tree.
			panic(fmt.Sprintf("rg: tree invariant broken: %v", err))
		}
		if d, ok := x.depth[v]; !ok || d > x.depth[p.via]+1 {
			x.depth[v] = x.depth[p.via] + 1
		}
		if x.depth[v] > x.maxDepth {
			x.maxDepth = x.depth[v]
		}
		// Blue neighbors of the newly red node become candidates.
		for _, w := range st.g.Neighbors(v) {
			if st.alive[w] {
				st.addActive(w)
			}
		}
	}
}

func (st *state) kill(v int) {
	st.clusters[st.label[v]].size--
	st.alive[v] = false
	st.label[v] = -1
}

// carving materializes the final clusters in deterministic label order.
// Labels are node ids, so ascending slice order IS sorted label order; the
// label-to-dense-id table is one flat slice, not a map. Clusters that never
// grew past their initial singleton get their trivial tree materialized
// here — the only point where anyone can observe it.
func (st *state) carving() *cluster.Carving {
	assign := make([]int, st.g.N())
	for v := range assign {
		assign[v] = cluster.Unclustered
	}
	k := 0
	id := make([]int, len(st.clusters))
	for l := range st.clusters {
		if st.inS[l] && st.clusters[l].size > 0 {
			id[l] = k
			k++
		}
	}
	centers := make([]int, k)
	trees := make([]*cluster.Tree, k)
	for l := range st.clusters {
		if !st.inS[l] || st.clusters[l].size <= 0 {
			continue
		}
		st.ensureTree(&st.clusters[l], l)
		centers[id[l]] = st.clusters[l].tree.Root
		trees[id[l]] = st.clusters[l].tree
	}
	for v, ok := range st.alive {
		if ok {
			assign[v] = id[st.label[v]]
		}
	}
	return &cluster.Carving{Assign: assign, K: k, Centers: centers, Trees: trees}
}
