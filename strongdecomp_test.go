package strongdecomp

import (
	"fmt"
	"testing"
)

func TestBallCarveAllAlgorithms(t *testing.T) {
	g := ConnectedGnpGraph(120, 0.04, 3)
	for _, algo := range []Algorithm{ChangGhaffari, ChangGhaffariImproved, MPX, Sequential} {
		t.Run(algo.String(), func(t *testing.T) {
			c, err := BallCarve(g, 0.5, WithAlgorithm(algo), WithSeed(7))
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyCarving(g, c, 0.5, -1); err != nil {
				t.Fatal(err)
			}
			// All listed algorithms produce connected clusters.
			if d := MaxStrongDiameter(g, c.Members()); d < 0 {
				t.Fatal("disconnected cluster from strong carver")
			}
		})
	}
	// Linial–Saks is weak-diameter: verify without the connectivity demand.
	c, err := BallCarve(g, 0.5, WithAlgorithm(LinialSaks), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCarving(g, c, 0.5, -1); err != nil {
		t.Fatal(err)
	}
	if d := MaxWeakDiameter(g, c.Members()); d < 0 {
		t.Fatal("weakly disconnected Linial-Saks cluster")
	}
}

func TestDecomposeAllAlgorithms(t *testing.T) {
	g := GridGraph(10, 10)
	for _, algo := range []Algorithm{ChangGhaffari, ChangGhaffariImproved, MPX, Sequential} {
		t.Run(algo.String(), func(t *testing.T) {
			d, err := Decompose(g, WithAlgorithm(algo), WithSeed(11))
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyDecomposition(g, d, -1, false); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestWithMeterAccumulates(t *testing.T) {
	g := GridGraph(8, 8)
	m := NewMeter()
	if _, err := Decompose(g, WithMeter(m)); err != nil {
		t.Fatal(err)
	}
	if m.Rounds() == 0 {
		t.Fatal("meter empty after metered run")
	}
}

func TestWithNodesRestricts(t *testing.T) {
	g := PathGraph(20)
	c, err := BallCarve(g, 0.5, WithNodes([]int{0, 1, 2, 3, 4}))
	if err != nil {
		t.Fatal(err)
	}
	for v := 5; v < 20; v++ {
		if c.Assign[v] != Unclustered {
			t.Fatalf("node %d outside subset clustered", v)
		}
	}
}

func TestUnknownAlgorithmRejected(t *testing.T) {
	g := PathGraph(4)
	if _, err := BallCarve(g, 0.5, WithAlgorithm(Algorithm(99))); err == nil {
		t.Fatal("unknown algorithm accepted by BallCarve")
	}
	if _, err := Decompose(g, WithAlgorithm(Algorithm(99))); err == nil {
		t.Fatal("unknown algorithm accepted by Decompose")
	}
}

func TestAlgorithmStrings(t *testing.T) {
	if ChangGhaffari.String() != "chang-ghaffari" || Algorithm(42).String() == "" {
		t.Fatal("algorithm names broken")
	}
}

func TestNewGraphErrors(t *testing.T) {
	if _, err := NewGraph(2, [][2]int{{0, 5}}); err == nil {
		t.Fatal("invalid edge accepted")
	}
}

func ExampleDecompose() {
	g, _ := NewGraph(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}})
	d, _ := Decompose(g)
	fmt.Println(VerifyDecomposition(g, d, -1, true) == nil)
	// Output: true
}
