// Benchmarks regenerating the paper's evaluation artifacts (DESIGN.md
// experiments E1–E8). Each benchmark reports the *measured* quantities of
// its table row — colors, diameters, simulated CONGEST rounds — via
// b.ReportMetric, so `go test -bench . -benchmem` prints the reproduced
// tables alongside wall-clock costs. EXPERIMENTS.md interprets the output
// against the paper's asymptotic claims.
package strongdecomp

import (
	"fmt"
	"math/rand"
	"testing"

	"strongdecomp/internal/bench"
	"strongdecomp/internal/congest"
	"strongdecomp/internal/graph"
)

const (
	benchN    = 1024
	benchSeed = 1
)

func reportRow(b *testing.B, r bench.Row) {
	b.ReportMetric(float64(r.Colors), "colors")
	b.ReportMetric(float64(r.StrongDiam), "strongDiam")
	b.ReportMetric(float64(r.WeakDiam), "weakDiam")
	b.ReportMetric(float64(r.Rounds), "congestRounds")
	b.ReportMetric(float64(r.Clusters), "clusters")
}

func table1Row(b *testing.B, algo string) {
	b.Helper()
	var row bench.Row
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1("cycle", benchN, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		found := false
		for _, r := range rows {
			if r.Algorithm == algo {
				row, found = r, true
			}
		}
		if !found {
			b.Fatalf("algorithm %s missing from table 1", algo)
		}
	}
	reportRow(b, row)
}

// --- E1: Table 1, one benchmark per row ---------------------------------

func BenchmarkTable1_WeakRandomized_LinialSaks(b *testing.B) {
	table1Row(b, "linial-saks")
}

func BenchmarkTable1_WeakDeterministic_RozhonGhaffari(b *testing.B) {
	table1Row(b, "rozhon-ghaffari")
}

func BenchmarkTable1_StrongRandomized_MPX(b *testing.B) {
	table1Row(b, "mpx-elkin-neiman")
}

func BenchmarkTable1_StrongDeterministic_SequentialBaseline(b *testing.B) {
	table1Row(b, "sequential-baseline")
}

func BenchmarkTable1_StrongDeterministic_Theorem23(b *testing.B) {
	table1Row(b, "chang-ghaffari")
}

func BenchmarkTable1_StrongDeterministic_Theorem34(b *testing.B) {
	table1Row(b, "chang-ghaffari-improved")
}

// --- E2: Table 2, one benchmark per row across the eps sweep -------------

func table2Row(b *testing.B, algo string, eps float64) {
	b.Helper()
	var row bench.Row
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table2("cycle", benchN, eps, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		found := false
		for _, r := range rows {
			if r.Algorithm == algo {
				row, found = r, true
			}
		}
		if !found {
			b.Fatalf("algorithm %s missing from table 2", algo)
		}
	}
	reportRow(b, row)
	b.ReportMetric(row.DeadFrac, "deadFrac")
}

func BenchmarkTable2_WeakRandomized_LinialSaks(b *testing.B) {
	table2Row(b, "linial-saks", 0.5)
}

func BenchmarkTable2_WeakDeterministic_RozhonGhaffari(b *testing.B) {
	table2Row(b, "rozhon-ghaffari", 0.5)
}

func BenchmarkTable2_StrongRandomized_MPX(b *testing.B) {
	table2Row(b, "mpx-elkin-neiman", 0.5)
}

func BenchmarkTable2_StrongDeterministic_Theorem22(b *testing.B) {
	table2Row(b, "chang-ghaffari", 0.5)
}

func BenchmarkTable2_StrongDeterministic_Theorem33(b *testing.B) {
	table2Row(b, "chang-ghaffari-improved", 0.5)
}

func BenchmarkTable2_EpsSweep_Theorem22(b *testing.B) {
	for _, eps := range []float64{0.5, 0.25, 0.125} {
		b.Run(fmt.Sprintf("eps=%.3f", eps), func(b *testing.B) {
			table2Row(b, "chang-ghaffari", eps)
		})
	}
}

// --- Table 2 edge-version remark ------------------------------------------

func BenchmarkTable2_EdgeVersion_Theorem22(b *testing.B) {
	var row *bench.EdgeRow
	for i := 0; i < b.N; i++ {
		var err error
		row, err = bench.TableEdge("cycle", benchN, 0.5, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(row.Clusters), "clusters")
	b.ReportMetric(float64(row.CutEdges), "cutEdges")
	b.ReportMetric(row.CutFraction, "cutFraction")
	b.ReportMetric(float64(row.MaxDiam), "strongDiam")
	b.ReportMetric(float64(row.Rounds), "congestRounds")
}

// --- Ablation: Theorem 2.1 is black-box in the weak carver -----------------

func BenchmarkAblation_WeakCarverChoice(b *testing.B) {
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.AblateWeakCarver("cycle", benchN, 0.5, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Carver {
		case "rg20-deterministic":
			b.ReportMetric(float64(r.StrongDiam), "diamRG20")
		case "linial-saks-randomized":
			b.ReportMetric(float64(r.StrongDiam), "diamLS")
		}
	}
}

// --- E3: Theorem 2.1 term accounting -------------------------------------

func BenchmarkThm21_Accounting(b *testing.B) {
	var acc *bench.Accounting
	for i := 0; i < b.N; i++ {
		var err error
		acc, err = bench.Thm21Accounting("cycle", benchN, 0.5, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(acc.Rounds), "congestRounds")
	b.ReportMetric(float64(acc.Components["thm21/gather"]), "gatherRounds")
	b.ReportMetric(float64(acc.Components["thm21/bfs"]), "bfsRounds")
	b.ReportMetric(float64(acc.StrongDiam), "strongDiam")
	b.ReportMetric(float64(acc.DiamBound), "diamBound2R")
}

// --- E4: Lemma 3.1 outcomes and the Section 3 barrier --------------------

func BenchmarkBarrier(b *testing.B) {
	var res []bench.BarrierResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.Barrier(32, 4, 10, 0.5, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res {
		name := "torusDiam"
		if r.Name == "subdivided-expander" {
			name = "barrierDiam"
		}
		b.ReportMetric(float64(r.MaxDiam), name)
	}
}

// --- E5: message sizes ----------------------------------------------------

func BenchmarkMessageSize_CongestVsABCP(b *testing.B) {
	var res *bench.MessageSizeResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.MessageSizes(256, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.CongestBudget), "congestBudgetBits")
	b.ReportMetric(float64(res.EngineMaxBits), "engineMaxBits")
	b.ReportMetric(float64(res.ABCPMaxBits), "abcpMaxBits")
}

// --- E6/E7: scaling figures ------------------------------------------------

func BenchmarkScaling_RoundsAndDiameter(b *testing.B) {
	ns := []int{256, 512, 1024}
	var pts []bench.ScalingPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.Scaling("cycle", ns, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	series := map[string][]bench.ScalingPoint{}
	for _, p := range pts {
		series[p.Algorithm] = append(series[p.Algorithm], p)
	}
	for algo, ps := range series {
		var xs []int
		var rounds []int64
		for _, p := range ps {
			xs = append(xs, p.N)
			rounds = append(rounds, p.Rounds)
		}
		b.ReportMetric(bench.FitLogExponent(xs, rounds), "logExp_"+algo)
	}
}

// --- E8: engine vs cost model ----------------------------------------------

func BenchmarkCongest_BFS(b *testing.B) {
	g := graph.Grid(32, 32)
	var met *congest.Metrics
	for i := 0; i < b.N; i++ {
		var err error
		_, _, met, err = congest.RunBFS(g, 0, congest.Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(met.Rounds), "protocolRounds")
	b.ReportMetric(float64(met.MaxMessageBits), "maxMsgBits")
}

func BenchmarkCongest_MPXRace(b *testing.B) {
	g := graph.Grid(32, 32)
	rng := rand.New(rand.NewSource(benchSeed))
	shifts := congest.GeometricShifts(g.N(), 0.25, 40, rng)
	var met *congest.Metrics
	for i := 0; i < b.N; i++ {
		var err error
		_, met, err = congest.RunRace(g, shifts, congest.Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(met.Rounds), "protocolRounds")
	b.ReportMetric(float64(met.MaxMessageBits), "maxMsgBits")
}

// --- library-level micro benchmarks ----------------------------------------

func BenchmarkBallCarve_ChangGhaffari(b *testing.B) {
	g := CycleGraph(benchN)
	for i := 0; i < b.N; i++ {
		if _, err := BallCarve(g, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBallCarve_Improved(b *testing.B) {
	g := CycleGraph(benchN)
	for i := 0; i < b.N; i++ {
		if _, err := BallCarve(g, 0.5, WithAlgorithm(ChangGhaffariImproved)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompose_ChangGhaffari(b *testing.B) {
	g := CycleGraph(benchN)
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(g); err != nil {
			b.Fatal(err)
		}
	}
}
